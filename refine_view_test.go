package vebo

import (
	"math"
	"testing"
)

// refSeqDepths is a sequential BFS-depth oracle over a snapshot (-1
// unreached), matching RefineBFS's result semantics.
func refSeqDepths(snap *Graph, root VertexID) []int32 {
	depth := make([]int32, snap.NumVertices())
	for i := range depth {
		depth[i] = -1
	}
	depth[root] = 0
	queue := []VertexID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, t := range snap.OutNeighbors(u) {
			if depth[t] < 0 {
				depth[t] = depth[u] + 1
				queue = append(queue, t)
			}
		}
	}
	return depth
}

// refSeqLabels is a sequential oracle for RefineCC's canonical labels: the
// smallest vertex ID reaching each vertex under directed propagation,
// iterated to fixpoint.
func refSeqLabels(snap *Graph) []uint32 {
	label := make([]uint32, snap.NumVertices())
	for v := range label {
		label[v] = uint32(v)
	}
	edges := snap.Edges()
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if label[e.Src] < label[e.Dst] {
				label[e.Dst] = label[e.Src]
				changed = true
			}
		}
	}
	return label
}

// checkRefined compares one epoch's refined results against scratch oracles
// computed on the same view.
func checkRefined(t *testing.T, v *View, sys System, root VertexID) (bfsPath, prPath string) {
	t.Helper()
	snap := v.Snapshot()

	depths, st, err := v.RefineBFS(sys, root)
	if err != nil {
		t.Fatalf("epoch %d %v: RefineBFS: %v", v.Epoch(), sys, err)
	}
	bfsPath = st.Path
	for i, want := range refSeqDepths(snap, root) {
		if depths[i] != want {
			t.Fatalf("epoch %d %v (%s): RefineBFS depth[%d] = %d, want %d",
				v.Epoch(), sys, st.Path, i, depths[i], want)
		}
	}

	labels, st, err := v.RefineCC(sys)
	if err != nil {
		t.Fatalf("epoch %d %v: RefineCC: %v", v.Epoch(), sys, err)
	}
	for i, want := range refSeqLabels(snap) {
		if labels[i] != want {
			t.Fatalf("epoch %d %v (%s): RefineCC label[%d] = %d, want %d",
				v.Epoch(), sys, st.Path, i, labels[i], want)
		}
	}

	dist, st, err := v.RefineSSSP(sys, root)
	if err != nil {
		t.Fatalf("epoch %d %v: RefineSSSP: %v", v.Epoch(), sys, err)
	}
	wantDist, err := v.BellmanFord(sys, root)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantDist {
		if dist[i] != wantDist[i] {
			t.Fatalf("epoch %d %v (%s): RefineSSSP dist[%d] = %d, want %d",
				v.Epoch(), sys, st.Path, i, dist[i], wantDist[i])
		}
	}

	ranks, st, err := v.RefinePageRank(sys, 0)
	if err != nil {
		t.Fatalf("epoch %d %v: RefinePageRank: %v", v.Epoch(), sys, err)
	}
	prPath = st.Path
	wantRanks, err := v.PageRankDelta(sys, 400, DefaultRefineEps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantRanks {
		if math.Abs(ranks[i]-wantRanks[i]) > 1e-6*(1+math.Abs(wantRanks[i])) {
			t.Fatalf("epoch %d %v (%s): RefinePageRank rank[%d] = %.12g, want %.12g",
				v.Epoch(), sys, st.Path, i, ranks[i], wantRanks[i])
		}
	}
	return bfsPath, prPath
}

// TestRefineMatchesScratchAcrossEpochs is the tentpole property test: a
// mixed repair/growth powerlaw stream queried every epoch, rotating the
// framework model, with every refined result checked against a scratch
// oracle on the same view. The refine path (not just the fallback) must
// actually run for the test to mean anything.
func TestRefineMatchesScratchAcrossEpochs(t *testing.T) {
	g, updates, err := GenerateStreamOpts("powerlaw", 0.03, 4000, 7, StreamOptions{GrowFrac: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 64, AutoGrow: true, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}

	const batch = 256
	systems := []System{Ligra, Polymer, GraphGrind}
	growthEpochs, refined := 0, 0
	epoch := 0
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		r, err := d.ApplyBatch(updates[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if r.Admitted > 0 {
			growthEpochs++
		}
		v := d.View()
		bfsPath, prPath := checkRefined(t, v, systems[epoch%len(systems)], 0)
		if bfsPath == RefineRefined {
			refined++
		}
		if epoch == 0 {
			if bfsPath != RefineScratchSeed || prPath != RefineScratchSeed {
				t.Fatalf("first epoch paths = %s/%s, want scratch-seed", bfsPath, prPath)
			}
		}
		epoch++
	}
	if growthEpochs == 0 {
		t.Fatal("stream admitted no vertices; growth refinement was not exercised")
	}
	if refined < epoch/2 {
		t.Fatalf("refine path ran on only %d of %d epochs; basis seeding is broken", refined, epoch)
	}
}

// TestRefineCachedOnSameView checks that a second identical query on the
// same view is answered from the view's own capture.
func TestRefineCachedOnSameView(t *testing.T) {
	g, updates, err := GenerateStream("powerlaw", 0.03, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 32, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(updates); err != nil {
		t.Fatal(err)
	}
	v := d.View()
	first, st, err := v.RefineBFS(Ligra, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Path != RefineScratchSeed {
		t.Fatalf("first query path = %s, want scratch-seed", st.Path)
	}
	// Same key on a different system: captures are model-independent.
	again, st, err := v.RefineBFS(Polymer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Path != RefineCached {
		t.Fatalf("second query path = %s, want cached", st.Path)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("cached result diverges at %d", i)
		}
	}
	// A different root is a different key and must not hit the cache.
	if _, st, err = v.RefineBFS(Ligra, 1); err != nil {
		t.Fatal(err)
	}
	if st.Path != RefineScratchSeed {
		t.Fatalf("distinct-root query path = %s, want scratch-seed", st.Path)
	}
}

// TestRefineNeverServesStaleAfterRebuild is the invalidation regression: a
// converged result is captured, then edge deletions — across epochs that
// renumber the whole vertex space (RepairReplace renumbers on every repair)
// — must never be answered with the pre-deletion values. Hand-crafted path
// topology makes staleness detectable at specific vertices.
func TestRefineNeverServesStaleAfterRebuild(t *testing.T) {
	const n = 64
	var edges []Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{Src: VertexID(i), Dst: VertexID(i + 1)})
	}
	g, err := FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{
		Partitions: 8, Repair: RepairReplace, Engine: viewTestOpts,
	})
	if err != nil {
		t.Fatal(err)
	}

	v1 := d.View()
	depths, _, err := v1.RefineBFS(Ligra, 0)
	if err != nil {
		t.Fatal(err)
	}
	if depths[n-1] != n-1 {
		t.Fatalf("path depth[%d] = %d, want %d", n-1, depths[n-1], n-1)
	}

	// Epoch 2: cut the path at 10→11 and bridge 0→20. Everything in [11,20]
	// goes unreachable; [20,n) re-routes through the bridge.
	batch := []EdgeUpdate{
		{Time: 1, Src: 10, Dst: 11, Del: true},
		{Time: 2, Src: 0, Dst: 20, Weight: 1},
	}
	if _, err := d.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	v2 := d.View()
	depths, st, err := v2.RefineBFS(Ligra, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refSeqDepths(v2.Snapshot(), 0) {
		if depths[i] != want {
			t.Fatalf("epoch 2 (%s): depth[%d] = %d, want %d (stale pre-deletion value served?)",
				st.Path, i, depths[i], want)
		}
	}
	if depths[15] != -1 {
		t.Fatalf("cut segment still reachable: depth[15] = %d", depths[15])
	}

	// Epoch 3: heavy skewed churn to force maintenance (a renumbering
	// rebuild-cause epoch under RepairReplace), plus another cut at 25→26.
	churn := []EdgeUpdate{{Time: 3, Src: 25, Dst: 26, Del: true}}
	tm := int64(4)
	for i := 0; i < 300; i++ {
		churn = append(churn, EdgeUpdate{Time: tm, Src: VertexID(40 + i%4), Dst: VertexID(i % n), Weight: 1})
		tm++
	}
	if _, err := d.ApplyBatch(churn); err != nil {
		t.Fatal(err)
	}
	v3 := d.View()
	if st := d.Stats(); st.Repairs == 0 && st.FullRebuilds == 0 {
		t.Fatal("churn epoch triggered no maintenance; rebuild-cause staleness not exercised")
	}
	depths, st, err = v3.RefineBFS(Ligra, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refSeqDepths(v3.Snapshot(), 0) {
		if depths[i] != want {
			t.Fatalf("epoch 3 (%s): depth[%d] = %d, want %d (stale result after rebuild-cause epoch)",
				st.Path, i, depths[i], want)
		}
	}
}

// TestRefineFallbackGate checks that a delta touching more than the gated
// fraction of vertices takes the scratch-fallback path and still returns
// correct results.
func TestRefineFallbackGate(t *testing.T) {
	g, updates, err := GenerateStream("powerlaw", 0.03, 3000, 23)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 32, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	// Small first batch: seeds the capture chain.
	if _, err := d.ApplyBatch(updates[:64]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.View().RefineBFS(Ligra, 0); err != nil {
		t.Fatal(err)
	}
	// One huge batch: the delta touches far more than n/5 distinct vertices.
	if _, err := d.ApplyBatch(updates[64:]); err != nil {
		t.Fatal(err)
	}
	v := d.View()
	depths, st, err := v.RefineBFS(Ligra, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Path != RefineScratchFallback {
		t.Fatalf("huge-delta path = %s, want scratch-fallback", st.Path)
	}
	for i, want := range refSeqDepths(v.Snapshot(), 0) {
		if depths[i] != want {
			t.Fatalf("fallback depth[%d] = %d, want %d", i, depths[i], want)
		}
	}
}
