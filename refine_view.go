package vebo

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/algorithms"
	"repro/internal/dynamic"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/obs"
)

// This file implements result patching across epochs (DESIGN.md §5d): a
// query on epoch E seeds from the basis view's converged result — cached in
// a lineage-keyed Refined capture — extends the array for vertices admitted
// since, and refines only the region the ViewDelta can have affected. The
// monotone algorithms (BFS depths, canonical CC labels, Bellman-Ford
// distances) take the KickStarter-style route: conservatively reset the
// delta-reachable dependence cone, then re-relax it from its intact rim plus
// the inserted-edge sources. PageRank takes the GraphBolt-style route: the
// recurrence is linear, so the exact correction is the initial residual of
// the graph delta propagated with dirty-vertex frontiers until it falls
// under ε everywhere. Both routes fall back to a cold start when the delta
// touches more than a gated fraction of the graph, where refinement would
// cost more than it saves.
//
// Soundness rests on two invariants the rest of the module maintains:
// internal (original) vertex IDs are append-only — so a basis result array
// indexed by original IDs is prefix-valid at any later epoch, even across
// full renumberings — and View.delta exactly covers the basis→view window
// (the publish-side re-anchoring arithmetic keeps the edge multiset exact).

// RefineStats paths. A query reports which route produced its result.
const (
	// RefineCached: the capture for this exact view already existed.
	RefineCached = "cached"
	// RefineScratchSeed: no usable basis capture; computed cold and cached.
	RefineScratchSeed = "scratch-seed"
	// RefineRefined: seeded from the basis capture and refined by the delta.
	RefineRefined = "refined"
	// RefineScratchFallback: a basis capture existed but the delta tripped
	// the fallback gate; computed cold and cached.
	RefineScratchFallback = "scratch-fallback"
)

// RefineStats reports how a Refine* query was answered.
type RefineStats struct {
	// Path is one of the Refine* path constants above.
	Path string
	// SeedEpoch is the epoch of the basis capture the query seeded from
	// (-1 on scratch paths).
	SeedEpoch int64
	// ResetVertices counts the vertices invalidated by the dependence-cone
	// analysis (monotone algorithms only).
	ResetVertices int
	// FrontierVertices is the size of the initial refinement frontier (for
	// PageRank: the number of endpoints the edge delta touches).
	FrontierVertices int
}

// refineKey identifies one cached result: the algorithm plus its source
// vertex (zero for the rootless algorithms). The framework model is *not*
// part of the key — all three models compute the same canonical values, so
// a capture computed on one seeds refinement on another.
type refineKey struct {
	alg  string
	root VertexID
}

// Refined is one converged result capture, pinned to the epoch of the view
// that computed it and stored in original-ID space (length n), which is the
// representation that survives repair, growth and renumbering epochs.
// Captures are immutable after construction; their slices are shared, never
// written.
//
//vebo:frozen
type Refined struct {
	alg   string
	root  VertexID
	epoch int64
	n     int
	vals  []int64   // BFS depths / packed CC states / SSSP distances
	ranks []float64 // PageRank
	eps   float64   // the convergence threshold the ranks satisfy
}

// refineCache holds a view's captures. It hangs off the frozen View behind a
// pointer so the mutating accessors below stay outside the frozen type; all
// access goes through them.
type refineCache struct {
	mu sync.Mutex
	//vebo:guardedby mu
	m map[refineKey]*Refined
}

func newRefineCache() *refineCache {
	return &refineCache{m: make(map[refineKey]*Refined)}
}

func (c *refineCache) get(k refineKey) *Refined {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

func (c *refineCache) put(k refineKey, r *Refined) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = r
}

// basisCapture returns the basis view's capture for key, or nil when there
// is no basis (scratch epochs, reuse disabled, delta outgrew the anchor) or
// the capture cannot seed this view. The epoch and length guards make
// staleness structurally impossible: a capture seeds refinement only when it
// is pinned to the exact anchor point v.delta measures from — any
// rebuild-cause epoch in between published a fresh view whose delta still
// spans basis→view, so the refinement replays it rather than serving the
// old values.
func (v *View) basisCapture(key refineKey) *Refined {
	b := v.basis.Load()
	if b == nil {
		return nil
	}
	r := b.ref.get(key)
	if r == nil || r.epoch != b.epoch || r.n != b.nverts {
		return nil
	}
	return r
}

// Fallback gating: refinement resets at most n/refineConeDenom vertices
// (and PageRank perturbs at most that many endpoints) before a cold start
// is declared cheaper; the cone walk additionally carries an edge-scan
// budget of max(refineBudgetMin, m/4).
const (
	refineConeDenom = 5
	refineBudgetMin = 4096
)

// prScratchIters caps the propagation rounds of both the cold-start
// (PageRankDelta) and resumed PageRank runs; with the default ε the frontier
// empties far earlier.
const prScratchIters = 400

// DefaultRefineEps is the PageRank convergence threshold Refine uses when
// the caller passes eps <= 0. It is deliberately tight: capture residuals
// compound across refinement chains, and a tight ε keeps chains of any
// practical length well inside test tolerances.
const DefaultRefineEps = 1e-9

// observeRefine records one Refine* query: per-(alg, path) counters, a
// per-(alg, sys) latency histogram, a "refine" trace event, a staleness
// sample, and a "query" span child-linked to the publish span of v's epoch
// whose cause names the answer path (cached/scratch-seed/refined/
// scratch-fallback).
func (w *viewWork) observeRefine(v *View, alg string, sys System, start time.Time, st RefineStats) {
	since := time.Since(start)
	w.reg.Counter("vebo_refine_total", "alg", alg, "path", st.Path).Inc()
	w.reg.Histogram("vebo_refine_ns", "alg", alg, "sys", sys.String()).Observe(int64(since))
	w.reg.Counter("vebo_refine_vertices_total", "kind", "reset").Add(int64(st.ResetVertices))
	w.reg.Counter("vebo_refine_vertices_total", "kind", "frontier").Add(int64(st.FrontierVertices))
	w.epochAge.Observe(int64(time.Since(v.published)))
	w.tr.Emit(obs.Event{Epoch: v.epoch, Kind: "refine", Cause: st.Path, Sys: sys.String(),
		Dur: since, N: map[string]int64{
			"reset": int64(st.ResetVertices), "frontier": int64(st.FrontierVertices),
			"seed_epoch": st.SeedEpoch,
		}})
	w.sp.Record(obs.Span{
		Parent: v.pubSpan.ID, Name: "query:refine-" + alg, Kind: "query", Cause: st.Path,
		Sys: sys.String(), Epoch: v.epoch, Start: start, Dur: since,
		Attrs: map[string]int64{"reset": int64(st.ResetVertices),
			"frontier": int64(st.FrontierVertices), "seed_epoch": st.SeedEpoch},
	})
}

// extendVals copies a basis result array into this view's (longer or equal)
// original-ID space; fill supplies the value of each admitted vertex.
func extendVals(vals []int64, n int, fill func(orig int) int64) []int64 {
	out := make([]int64, n)
	copy(out, vals)
	for o := len(vals); o < n; o++ {
		out[o] = fill(o)
	}
	return out
}

// coneHeap is a binary min-heap of (value, vertex) candidates; processing
// candidates in value order is what makes the alternate-supporter pruning in
// invalidationCone sound (see DESIGN.md §5d).
type coneItem struct {
	key int64
	v   VertexID
}

type coneHeap []coneItem

func (h *coneHeap) push(key int64, v VertexID) {
	*h = append(*h, coneItem{key, v})
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p].key <= s[i].key {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *coneHeap) pop() coneItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].key < s[min].key {
			min = l
		}
		if r < len(s) && s[r].key < s[min].key {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}

// invalidationCone computes the set of vertices whose seeded value may be
// unachievable after the deletions — KickStarter's tag-the-dependency
// approximation, without stored dependency trees. A deleted edge (a,b)
// seeds b only if it supported b's value (val[b] == val[a]+w); a candidate u
// joins the cone only if no surviving in-edge (q,u) from a non-cone q still
// supports val[u]; and a cone member u recruits exactly the out-neighbors
// its value supports (val[t] == val[u]+w). Candidates are processed in
// ascending value order, so a strictly smaller-valued supporter q is already
// settled when u is examined — sound for non-negative weights (every stored
// weight here is ≥ 1; zero-weight in-edges are simply never counted as
// supporters, which can only enlarge the cone). Aborts (ok=false) when the
// cone outgrows limit vertices or the walk exceeds budget edge scans.
func invalidationCone(rg *Graph, val []int64, dels []graph.Edge, weighted bool, limit int, budget int64) ([]VertexID, bool) {
	step := func(w int32) int64 {
		if weighted {
			return int64(w)
		}
		return 1
	}
	var h coneHeap
	for _, d := range dels {
		if va := val[d.Src]; va < algorithms.RelaxInf && val[d.Dst] == va+step(d.Weight) {
			h.push(val[d.Dst], d.Dst)
		}
	}
	if len(h) == 0 {
		return nil, true
	}
	done := make(map[VertexID]bool, len(h))
	inCone := make(map[VertexID]bool, len(h))
	var cone []VertexID
	for len(h) > 0 {
		u := h.pop().v
		if done[u] {
			continue
		}
		done[u] = true
		ins := rg.InNeighbors(u)
		ws := rg.InWeights(u)
		budget -= int64(len(ins))
		supported := false
		for i, q := range ins {
			w := step(ws[i])
			if w > 0 && !inCone[q] && val[q] < algorithms.RelaxInf && val[q]+w == val[u] {
				supported = true
				break
			}
		}
		if supported {
			continue
		}
		inCone[u] = true
		cone = append(cone, u)
		if len(cone) > limit {
			return nil, false
		}
		outs := rg.OutNeighbors(u)
		ows := rg.OutWeights(u)
		budget -= int64(len(outs))
		for i, t := range outs {
			if val[t] < algorithms.RelaxInf && val[t] == val[u]+step(ows[i]) {
				h.push(val[t], t)
			}
		}
		if budget < 0 {
			return nil, false
		}
	}
	return cone, true
}

// refineSpec parameterizes refineRelax per monotone algorithm.
type refineSpec struct {
	weighted bool
	// resetVal is the value a cone member falls back to: "unknown" for the
	// rooted traversals, the vertex's own injection for CC.
	resetVal func(eng VertexID) int64
	// resetJoins/grownJoins: whether reset members / admitted vertices carry
	// their own injection into the initial frontier (CC does; the rooted
	// traversals reach them from the rim instead).
	resetJoins, grownJoins bool
}

// refineRelax is the shared monotone-refinement route: invalidate the
// deletion cone, reset it, assemble the repair frontier (the cone's intact
// rim, the inserted-edge sources, the moved vertices, plus the per-spec
// injections) and relax to fixpoint. seed is engine-space and mutated in
// place. ok=false means the fallback gate tripped and the caller should
// compute cold.
func (v *View) refineRelax(e Engine, seed []int64, plan dynamic.RefinePlan, spec refineSpec) (RefineStats, bool) {
	rg := e.Graph()
	perm := v.ord.Perm
	mapEndpoints(plan.Adds, perm)
	mapEndpoints(plan.Dels, perm)
	budget := int64(refineBudgetMin)
	if m := rg.NumEdges() / 4; m > budget {
		budget = m
	}
	cone, ok := invalidationCone(rg, seed, plan.Dels, spec.weighted, v.nverts/refineConeDenom+1, budget)
	if !ok {
		return RefineStats{}, false
	}
	for _, u := range cone {
		seed[u] = spec.resetVal(u)
	}
	fr := make([]bool, len(seed))
	var list []VertexID
	mark := func(u VertexID) {
		if !fr[u] {
			fr[u] = true
			list = append(list, u)
		}
	}
	for _, u := range cone {
		if spec.resetJoins {
			mark(u)
		}
		for _, q := range rg.InNeighbors(u) {
			if seed[q] < algorithms.RelaxInf {
				mark(q)
			}
		}
	}
	for _, ed := range plan.Adds {
		if seed[ed.Src] < algorithms.RelaxInf {
			mark(ed.Src)
		}
	}
	for _, w := range plan.Moved {
		if u := perm[w]; seed[u] < algorithms.RelaxInf {
			mark(u)
		}
	}
	if spec.grownJoins {
		for o := v.nverts - int(plan.GrownTotal); o < v.nverts; o++ {
			mark(perm[o])
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	algorithms.RelaxResume(e, seed, spec.weighted, frontier.FromVertices(rg, list))
	return RefineStats{Path: RefineRefined, ResetVertices: len(cone), FrontierVertices: len(list)}, true
}

// refineMonotone drives one monotone Refine* query end to end: cache hit,
// scratch seed, delta refinement or gated fallback. scratch computes the
// engine-space result cold; extendFill supplies admitted vertices' seeds.
// Returns the original-ID result (shared with the stored capture — callers
// convert, never mutate).
func (v *View) refineMonotone(sys System, alg string, root VertexID, spec refineSpec,
	scratch func(e Engine) []int64, extendFill func(orig int) int64) ([]int64, RefineStats, error) {
	start := time.Now()
	key := refineKey{alg: alg, root: root}
	if r := v.ref.get(key); r != nil {
		st := RefineStats{Path: RefineCached, SeedEpoch: r.epoch}
		v.work.observeRefine(v, alg, sys, start, st)
		return r.vals, st, nil
	}
	e, err := v.Engine(sys)
	if err != nil {
		return nil, RefineStats{}, err
	}
	cold := func(path string) ([]int64, RefineStats, error) {
		vals := unpermute(v.ord.Perm, scratch(e))
		v.ref.put(key, &Refined{alg: alg, root: root, epoch: v.epoch, n: v.nverts, vals: vals})
		st := RefineStats{Path: path, SeedEpoch: -1}
		v.work.observeRefine(v, alg, sys, start, st)
		return vals, st, nil
	}
	cap_ := v.basisCapture(key)
	if cap_ == nil {
		return cold(RefineScratchSeed)
	}
	plan := dynamic.DeriveRefinePlan(v.delta)
	if plan.Empty() {
		r := &Refined{alg: alg, root: root, epoch: v.epoch, n: v.nverts, vals: cap_.vals}
		v.ref.put(key, r)
		st := RefineStats{Path: RefineRefined, SeedEpoch: cap_.epoch}
		v.work.observeRefine(v, alg, sys, start, st)
		return r.vals, st, nil
	}
	if plan.Touched() > v.nverts/refineConeDenom {
		return cold(RefineScratchFallback)
	}
	seed := permuteIn(v.ord.Perm, extendVals(cap_.vals, v.nverts, extendFill), v.slots())
	st, ok := v.refineRelax(e, seed, plan, spec)
	if !ok {
		return cold(RefineScratchFallback)
	}
	vals := unpermute(v.ord.Perm, seed)
	v.ref.put(key, &Refined{alg: alg, root: root, epoch: v.epoch, n: v.nverts, vals: vals})
	st.SeedEpoch = cap_.epoch
	v.work.observeRefine(v, alg, sys, start, st)
	return vals, st, nil
}

// RefineBFS answers a BFS-depth query (depth from root, -1 unreached,
// indexed by original vertex ID) by refining the basis view's converged
// result when the lineage allows, recomputing from scratch otherwise. The
// first query per (view, root) seeds the cache; subsequent epochs refine.
// Depths, not parents, are the refinable form: they are a canonical function
// of the graph, while parent choices are traversal-order artifacts.
func (v *View) RefineBFS(sys System, root VertexID) ([]int32, RefineStats, error) {
	if err := v.checkRoot(root); err != nil {
		return nil, RefineStats{}, err
	}
	inf := func(int) int64 { return algorithms.RelaxInf }
	spec := refineSpec{resetVal: func(VertexID) int64 { return algorithms.RelaxInf }}
	vals, st, err := v.refineMonotone(sys, "bfs", root, spec,
		func(e Engine) []int64 { return algorithms.BFSDepths(e, v.ord.Perm[root]) }, inf)
	if err != nil {
		return nil, st, err
	}
	out := make([]int32, len(vals))
	for i, d := range vals {
		if d >= algorithms.RelaxInf {
			out[i] = -1
		} else {
			out[i] = int32(d)
		}
	}
	return out, st, nil
}

// RefineCC answers a connected-components query with canonical labels (the
// smallest original vertex ID reaching each vertex — stable across epochs,
// unlike CC's opaque labels) by refining the basis view's converged result
// when the lineage allows. Internally each vertex's state carries the label
// plus its propagation hop count, giving deletions the same supporting-edge
// structure BFS has.
func (v *View) RefineCC(sys System) ([]uint32, RefineStats, error) {
	inv := v.invPerm()
	spec := refineSpec{
		resetVal:   func(u VertexID) int64 { return algorithms.PackCC(uint32(inv[u]), 0) },
		resetJoins: true,
		grownJoins: true,
	}
	vals, st, err := v.refineMonotone(sys, "cc", 0, spec,
		func(e Engine) []int64 {
			// init spans the engine's slot space; reserved headroom slots
			// seed with inv's zero entry, which is inert — they have no
			// edges, so their label never propagates, and unpermute drops
			// their state.
			init := make([]uint32, v.slots())
			for eng := range init {
				init[eng] = uint32(inv[eng])
			}
			return algorithms.CCSeeded(e, init)
		},
		func(orig int) int64 { return algorithms.PackCC(uint32(orig), 0) })
	if err != nil {
		return nil, st, err
	}
	out := make([]uint32, len(vals))
	for i, s := range vals {
		out[i] = algorithms.UnpackCCLabel(s)
	}
	return out, st, nil
}

// RefineSSSP answers a single-source shortest-path query (distances from
// root, Unreached for unreachable vertices, indexed by original vertex ID —
// BellmanFord's exact semantics) by refining the basis view's converged
// result when the lineage allows.
func (v *View) RefineSSSP(sys System, root VertexID) ([]int64, RefineStats, error) {
	if err := v.checkRoot(root); err != nil {
		return nil, RefineStats{}, err
	}
	inf := func(int) int64 { return algorithms.RelaxInf }
	spec := refineSpec{weighted: true, resetVal: func(VertexID) int64 { return algorithms.RelaxInf }}
	vals, st, err := v.refineMonotone(sys, "sssp", root, spec,
		func(e Engine) []int64 {
			rg := e.Graph()
			dist := make([]int64, v.slots())
			for i := range dist {
				dist[i] = algorithms.RelaxInf
			}
			dist[v.ord.Perm[root]] = 0
			return algorithms.BellmanFordResume(e, dist, frontier.FromVertex(rg, v.ord.Perm[root]))
		}, inf)
	if err != nil {
		return nil, st, err
	}
	out := make([]int64, len(vals))
	for i, d := range vals {
		if d >= algorithms.RelaxInf {
			out[i] = math.MaxInt64
		} else {
			out[i] = d
		}
	}
	return out, st, nil
}

// RefinePageRank answers a PageRank query converged to within eps (eps <= 0
// selects DefaultRefineEps; ranks indexed by original vertex ID) by resuming
// the iteration from the basis view's converged vector with dirty-vertex
// frontiers. Cold starts use the delta-update formulation with the same
// convergence threshold, so both paths approximate the same fixpoint — the
// honest comparison baseline, unlike the fixed-iteration PageRank. The
// returned slice is shared with the cache; callers must not mutate it.
func (v *View) RefinePageRank(sys System, eps float64) ([]float64, RefineStats, error) {
	if eps <= 0 {
		eps = DefaultRefineEps
	}
	start := time.Now()
	key := refineKey{alg: "pagerank"}
	if r := v.ref.get(key); r != nil && r.eps <= eps {
		st := RefineStats{Path: RefineCached, SeedEpoch: r.epoch}
		v.work.observeRefine(v, "pagerank", sys, start, st)
		return r.ranks, st, nil
	}
	e, err := v.Engine(sys)
	if err != nil {
		return nil, RefineStats{}, err
	}
	cold := func(path string) ([]float64, RefineStats, error) {
		ranks := unpermute(v.ord.Perm, algorithms.PageRankDeltaN(e, prScratchIters, eps, v.nverts))
		v.ref.put(key, &Refined{alg: "pagerank", epoch: v.epoch, n: v.nverts, ranks: ranks, eps: eps})
		st := RefineStats{Path: path, SeedEpoch: -1}
		v.work.observeRefine(v, "pagerank", sys, start, st)
		return ranks, st, nil
	}
	cap_ := v.basisCapture(key)
	if cap_ == nil || cap_.eps > eps {
		return cold(RefineScratchSeed)
	}
	plan := dynamic.DeriveRefinePlan(v.delta)
	if plan.Empty() {
		r := &Refined{alg: "pagerank", epoch: v.epoch, n: v.nverts, ranks: cap_.ranks, eps: cap_.eps}
		v.ref.put(key, r)
		st := RefineStats{Path: RefineRefined, SeedEpoch: cap_.epoch}
		v.work.observeRefine(v, "pagerank", sys, start, st)
		return r.ranks, st, nil
	}
	touched := plan.Touched()
	if touched > v.nverts/refineConeDenom {
		return cold(RefineScratchFallback)
	}
	perm := v.ord.Perm
	rg := e.Graph()
	mapEndpoints(plan.Adds, perm)
	mapEndpoints(plan.Dels, perm)
	odOld := make(map[VertexID]int64, len(plan.OutDegDelta))
	for s, dd := range plan.OutDegDelta {
		odOld[perm[s]] = rg.OutDegree(perm[s]) - dd
	}
	seed := make([]float64, v.nverts)
	copy(seed, cap_.ranks)
	var grown []VertexID
	for o := cap_.n; o < v.nverts; o++ {
		grown = append(grown, perm[o])
	}
	ranks := algorithms.PageRankResume(e, permuteIn(perm, seed, v.slots()),
		algorithms.RankDelta{Adds: plan.Adds, Dels: plan.Dels, OldOutDeg: odOld,
			NOld: cap_.n, NNew: v.nverts, Grown: grown},
		prScratchIters, eps)
	out := unpermute(perm, ranks)
	v.ref.put(key, &Refined{alg: "pagerank", epoch: v.epoch, n: v.nverts, ranks: out, eps: eps})
	st := RefineStats{Path: RefineRefined, SeedEpoch: cap_.epoch, FrontierVertices: touched}
	v.work.observeRefine(v, "pagerank", sys, start, st)
	return out, st, nil
}
