package vebo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/graphgrind"
	"repro/internal/layout"
	"repro/internal/ligra"
	"repro/internal/obs"
	"repro/internal/polymer"
)

// View is an immutable, epoch-pinned capture of a Dynamic graph: a consistent
// snapshot, its VEBO ordering, and lazily built, cached engines for all three
// framework models (plus their transposes, for BC). Views are published by
// the ingest side with a lock-free pointer swap; any number of reader
// goroutines may hold one View and run algorithms on it while ApplyBatch
// keeps mutating the Dynamic underneath. All algorithm inputs and outputs use
// original vertex IDs — the internal relabeling is invisible.
//
// Engine state is reused across epochs: when a new View's numbering lineage
// is intact relative to the previous materialized View — identical
// placement, or a placement-preserving swap repair that only permuted IDs
// inside the affected partitions' segments (dynamic.ViewDelta.Moved) — its
// relabeled graph is patched row-wise from the predecessor's through the
// segment-local permutation, and per-partition engine structures
// (GraphGrind COOs, Polymer scheduling units, partition metadata) are
// rebuilt only for partitions whose edge content changed or that touch a
// moved vertex. The snapshot in original vertex IDs is likewise patched
// from the basis view's snapshot (original IDs never change, so snapshot
// patching survives even full renumberings). ViewWork reports the
// resulting rebuild-versus-patch-versus-relabel work split.
//
//vebo:frozen
type View struct {
	epoch      int64
	renumEpoch int64 // numbering lineage (dynamic.RenumEpoch) at publish
	anchorID   int64 // delta lineage the view was published under
	nverts     int
	parts      int
	exts       []uint64     // internal → external IDs (nil without external ingest)
	ord        *core.Result // shared immutable Perm/PartitionOf, counts frozen at publish
	frozen     dynamic.Frozen
	opts       EngineOptions
	delta      dynamic.ViewDelta    // changes since the basis (== the anchor point)
	basis      atomic.Pointer[View] // materialized view at the anchor point; nil forces scratch builds
	d          *Dynamic
	work       *viewWork
	ref        *refineCache    // lineage-keyed Refined captures (refine_view.go)
	published  time.Time       // publication instant — the base of the staleness clock
	pubSpan    obs.SpanContext // the publish span queries child-link their spans to

	snapOnce sync.Once
	snapP    atomic.Pointer[Graph]

	rgOnce sync.Once
	rgp    atomic.Pointer[Graph]
	rgErr  error

	rgTOnce sync.Once
	rgT     *Graph
	rgTErr  error

	invOnce sync.Once
	inv     []VertexID // new ID -> original ID

	dirtyOnce sync.Once
	dirtyIDs  []VertexID // sorted dirty destinations + moved positions, relabeled space

	srcOnce  sync.Once
	srcDirty []VertexID // sorted dests of edges whose source moved, relabeled space

	segOnce sync.Once
	seg     []VertexID // basis new-ID -> this view's new-ID; nil when nothing moved

	eng  [3]engineSlot
	engT [3]engineSlot
}

// engineSlot lazily holds one framework engine. The atomic value lets the
// next epoch's view check "already built?" without forcing a build.
type engineSlot struct {
	once  sync.Once
	val   atomic.Value // Engine
	built Engine
	err   error
}

func (s *engineSlot) peek() Engine {
	if e, ok := s.val.Load().(Engine); ok {
		return e
	}
	return nil
}

// viewWork accumulates engine-construction work counters across a Dynamic's
// lifetime; readers add to it from whichever goroutine triggers a lazy build.
// The counters live in the Dynamic's metrics registry (the vebo_view_* and
// vebo_query_* series), so the modeled work units and the wall-clock
// latencies land side by side in one scrape; the tracer receives one event
// per graph/engine build or patch with the decision's cause.
type viewWork struct {
	reg *obs.Registry
	tr  *obs.Tracer
	sp  *obs.Spans

	// The staleness plane (DESIGN.md §6): epochAge samples, at query time,
	// how old the queried view's epoch is (vebo_epoch_age_ns); publishLag
	// measures batch receipt → view publication (vebo_publish_lag_ns);
	// backlog gauges the delta the newest view carries over its basis
	// (vebo_delta_backlog).
	epochAge   *obs.Histogram
	publishLag *obs.Histogram
	backlog    *obs.Gauge

	epochs        *obs.Counter
	graphBuilds   *obs.Counter
	graphPatches  *obs.Counter
	engineBuilds  *obs.Counter
	enginePatches *obs.Counter
	rebuildEdges  *obs.Counter
	patchedEdges  *obs.Counter
	reusedEdges   *obs.Counter
	relabelEdges  *obs.Counter
	partsRebuilt  *obs.Counter
	partsReused   *obs.Counter
	partsRelabel  *obs.Counter
}

// newViewWork wires the work counters into reg (nil-tolerant: a nil registry
// yields no-op handles, a nil tracer drops events).
func newViewWork(reg *obs.Registry, tr *obs.Tracer, sp *obs.Spans) *viewWork {
	return &viewWork{
		reg:           reg,
		tr:            tr,
		sp:            sp,
		epochAge:      reg.Histogram("vebo_epoch_age_ns"),
		publishLag:    reg.Histogram("vebo_publish_lag_ns"),
		backlog:       reg.Gauge("vebo_delta_backlog"),
		epochs:        reg.Counter("vebo_view_epochs_total"),
		graphBuilds:   reg.Counter("vebo_view_graph_total", "path", "build"),
		graphPatches:  reg.Counter("vebo_view_graph_total", "path", "patch"),
		engineBuilds:  reg.Counter("vebo_view_engine_total", "path", "build"),
		enginePatches: reg.Counter("vebo_view_engine_total", "path", "patch"),
		rebuildEdges:  reg.Counter("vebo_view_edges_total", "path", "rebuild"),
		patchedEdges:  reg.Counter("vebo_view_edges_total", "path", "patched"),
		reusedEdges:   reg.Counter("vebo_view_edges_total", "path", "reused"),
		relabelEdges:  reg.Counter("vebo_view_edges_total", "path", "relabeled"),
		partsRebuilt:  reg.Counter("vebo_view_partitions_total", "path", "rebuilt"),
		partsReused:   reg.Counter("vebo_view_partitions_total", "path", "reused"),
		partsRelabel:  reg.Counter("vebo_view_partitions_total", "path", "relabeled"),
	}
}

// observeQuery records one algorithm run against v: a per-(alg, sys)
// latency histogram sample (vebo_query_ns) and count (vebo_queries_total),
// a staleness sample (vebo_epoch_age_ns — how old v's epoch was when this
// query read it), and a "query" span child-linked to the publish span of
// v's epoch carrying {alg, sys, path, epoch}. The measured span is the
// whole user-visible call, including any lazy engine build it triggered;
// path distinguishes full runs from the refine answer paths.
func (w *viewWork) observeQuery(v *View, alg, path string, sys System, start time.Time) {
	since := time.Since(start)
	w.reg.Histogram("vebo_query_ns", "alg", alg, "sys", sys.String()).Observe(int64(since))
	w.reg.Counter("vebo_queries_total", "alg", alg, "sys", sys.String()).Inc()
	w.epochAge.Observe(int64(time.Since(v.published)))
	w.sp.Record(obs.Span{
		Parent: v.pubSpan.ID, Name: "query:" + alg, Kind: "query", Cause: path,
		Sys: sys.String(), Epoch: v.epoch, Start: start, Dur: since,
	})
}

// emitGraph records one snapshot/relabeled-graph materialization decision:
// the per-cause latency histogram sample, a "graph" trace event, and a
// "build" span child-linked to v's publish span.
func (w *viewWork) emitGraph(v *View, cause string, start time.Time, touched, reused int64) {
	w.reg.Histogram("vebo_graph_build_ns", "cause", cause).ObserveSince(start)
	w.tr.Emit(obs.Event{Epoch: v.epoch, Kind: "graph", Cause: cause, Dur: time.Since(start),
		N: map[string]int64{"edges_touched": touched, "edges_reused": reused}})
	w.sp.Record(obs.Span{
		Parent: v.pubSpan.ID, Name: "graph", Kind: "build", Cause: cause,
		Epoch: v.epoch, Start: start, Dur: time.Since(start),
		Attrs: map[string]int64{"edges_touched": touched, "edges_reused": reused},
	})
}

// emitEngine records one engine construction decision ("patch"/"rebind"
// versus "build"): the per-(mode, sys) latency histogram sample, an
// "engine" trace event, and a "build" span child-linked to v's publish
// span.
func (w *viewWork) emitEngine(v *View, cause string, sys System, start time.Time) {
	w.reg.Histogram("vebo_engine_build_ns", "mode", cause, "sys", sys.String()).ObserveSince(start)
	w.tr.Emit(obs.Event{Epoch: v.epoch, Kind: "engine", Cause: cause, Sys: sys.String(),
		Dur: time.Since(start)})
	w.sp.Record(obs.Span{
		Parent: v.pubSpan.ID, Name: "engine", Kind: "build", Cause: cause,
		Sys: sys.String(), Epoch: v.epoch, Start: start, Dur: time.Since(start),
	})
}

// ViewWork is a snapshot of the engine-construction work a Dynamic's views
// have done. Edges are the unit: RebuildEdges counts edges processed by
// from-scratch construction (snapshot materialization, relabeling, COO and
// partition builds), PatchedEdges counts edges reprocessed by the patch
// paths (merged adjacency rows, rebuilt dirty partitions), RelabeledEdges
// counts edges rewritten by segment-local renumbering remaps after a
// placement-preserving repair (a linear ID rewrite, cheaper than a patch
// merge), and ReusedEdges counts edges carried over untouched (shared COO
// pointers, block-copied rows) — work avoided relative to rebuilding.
type ViewWork struct {
	Epochs                      int64
	GraphBuilds, GraphPatches   int64
	EngineBuilds, EnginePatches int64
	RebuildEdges                int64
	PatchedEdges                int64
	RelabeledEdges              int64
	ReusedEdges                 int64
	PartitionsRebuilt           int64
	PartitionsReused            int64
	PartitionsRelabeled         int64
}

func (w *viewWork) snapshot() ViewWork {
	return ViewWork{
		Epochs:              w.epochs.Value(),
		GraphBuilds:         w.graphBuilds.Value(),
		GraphPatches:        w.graphPatches.Value(),
		EngineBuilds:        w.engineBuilds.Value(),
		EnginePatches:       w.enginePatches.Value(),
		RebuildEdges:        w.rebuildEdges.Value(),
		PatchedEdges:        w.patchedEdges.Value(),
		RelabeledEdges:      w.relabelEdges.Value(),
		ReusedEdges:         w.reusedEdges.Value(),
		PartitionsRebuilt:   w.partsRebuilt.Value(),
		PartitionsReused:    w.partsReused.Value(),
		PartitionsRelabeled: w.partsRelabel.Value(),
	}
}

// View returns the most recently published epoch-pinned view. The call is a
// single atomic load and never blocks the ingest side; it is safe from any
// goroutine. Successive calls may return different views as batches land;
// one View is forever consistent.
func (d *Dynamic) View() *View {
	return d.cur.Load()
}

// ViewWork returns the accumulated engine-construction work counters.
func (d *Dynamic) ViewWork() ViewWork { return d.work.snapshot() }

// publish captures the post-batch state as a fresh View and swaps it in.
// Called only from the ingest (writer) side.
//
// Basis tracking: the writer accumulates the delta since an anchor point —
// the publish instant of basisView, the newest view known to have
// materialized its relabeled graph. Readers register views they materialize
// in latestMat; at each publish the writer re-anchors onto the newest one by
// subtracting that view's own anchor-relative delta (exact for the edge
// multiset, superset for dirty partitions). This keeps patching available no
// matter how many epochs pass between queries, while a reader that never
// comes back costs only the bounded sinceAnchor map — which resets, dropping
// the basis, if it ever outgrows the delta-log compaction bound.
// buildView assembles the next epoch's View. It is the type's one builder
// (frozenwrite enforces that): the returned value is fully initialized
// before publish stores it, and nothing mutates it afterwards outside the
// once-guarded lazy caches.
func (d *Dynamic) buildView(basis *View, pub obs.SpanContext) *View {
	v := &View{
		epoch:      d.inner.Epoch(),
		renumEpoch: d.inner.RenumEpoch(),
		anchorID:   d.anchorID,
		nverts:     d.inner.NumVertices(),
		parts:      d.inner.Partitions(),
		ord:        d.inner.Ordering(),
		frozen:     d.inner.Freeze(),
		opts:       d.engOpts,
		delta:      d.sinceAnchor,
		d:          d,
		work:       d.work,
		ref:        newRefineCache(),
		published:  time.Now(),
		pubSpan:    pub,
	}
	if alloc := d.alloc.Load(); alloc != nil {
		v.exts = alloc.Externals(v.nverts)
	}
	v.basis.Store(basis)
	return v
}

// publish's received argument is the wall-clock instant the triggering
// batch was handed to the facade (ApplyBatch/IngestBatch entry); the gap
// to view publication is the vebo_publish_lag_ns sample — the freshness
// cost one batch pays end to end.
func (d *Dynamic) publish(received time.Time) {
	// The publish span parents onto the batch span that produced this
	// epoch, extending the causal chain batch → maintenance → publish;
	// queries against the view then child-link to the publish span.
	psp := d.spans.Start("publish", "publish", d.inner.Epoch(), d.inner.LastBatchSpan())
	drained := d.inner.DrainViewDelta()
	var basis *View
	if d.reuse {
		d.sinceAnchor = d.sinceAnchor.Merge(drained)
		if m := d.latestMat.Load(); m != nil && m.anchorID == d.anchorID &&
			(d.basisView == nil || m.epoch > d.basisView.epoch) {
			d.sinceAnchor = d.sinceAnchor.Subtract(m.delta)
			d.sinceAnchor.PlacementChanged = d.inner.RenumEpoch() != m.renumEpoch
			if d.sinceAnchor.PlacementChanged {
				d.sinceAnchor.Moved = nil
			} else if len(d.sinceAnchor.Moved) > 0 {
				// Subtract over-approximates Moved with the union of both
				// windows; the numbering lineage is intact, so trim it to
				// the vertices whose position actually differs from m's.
				// Vertices admitted after m published have no position in
				// m's space; growth accounting covers them, not Moved.
				cur := d.inner.Ordering().Perm
				base := m.ord.Perm
				for w := range d.sinceAnchor.Moved {
					if int(w) >= len(base) {
						delete(d.sinceAnchor.Moved, w)
					} else if cur[w] == base[w] {
						delete(d.sinceAnchor.Moved, w)
					}
				}
			}
			d.anchorID++
			d.basisView = m
			// m patches from its own basis only while building artifacts it
			// hasn't built yet; dropping the link bounds the retained chain.
			m.basis.Store(nil)
		}
		if int64(len(d.sinceAnchor.Net))+int64(len(d.sinceAnchor.Moved)) > d.inner.NumEdges()/4+8192 {
			// No reader has materialized a view for a long stretch; give up
			// on the stale basis rather than hold an ever-growing delta.
			d.anchorID++
			d.basisView = nil
			d.sinceAnchor = dynamic.ViewDelta{}
		}
		if d.basisView != nil &&
			(d.basisView.rgp.Load() != nil || d.basisView.snapP.Load() != nil) {
			basis = d.basisView
		}
	}
	v := d.buildView(basis, psp.Context())
	d.work.epochs.Add(1)
	d.cur.Store(v)
	lag := time.Since(received)
	d.work.publishLag.Observe(int64(lag))
	backlog := int64(len(v.delta.Net)) + int64(len(v.delta.Moved)) + v.delta.GrownTotal()
	d.work.backlog.Set(backlog)
	basisEpoch := int64(-1)
	if basis != nil {
		basisEpoch = basis.epoch
	}
	d.work.tr.Emit(obs.Event{Epoch: v.epoch, Kind: "publish", Dur: lag,
		N: map[string]int64{
			"renum_epoch": v.renumEpoch, "basis_epoch": basisEpoch,
			"delta_net": int64(len(v.delta.Net)), "delta_moved": int64(len(v.delta.Moved)),
			"delta_grown": v.delta.GrownTotal(),
		}})
	psp.Attr("basis_epoch", basisEpoch).Attr("delta_backlog", backlog).
		Attr("publish_lag_ns", int64(lag)).End()
}

// registerMaterialized below and the basis tracking in publish treat a view
// as a patching basis once it built either its relabeled graph or its
// original-ID snapshot; whichever artifacts the basis actually holds are
// patched, the rest build from scratch.

// registerMaterialized records that v built a patchable artifact (relabeled
// graph or snapshot), making it a basis candidate for future epochs. Keeps
// the newest such view, but never trades a basis holding the relabeled
// graph for a snapshot-only one: engine patching would silently degrade to
// scratch builds in workloads that interleave snapshot-only readers with
// engine readers. (If v builds its relabeled graph later, Reordered
// re-registers it.)
func (d *Dynamic) registerMaterialized(v *View) {
	for {
		m := d.latestMat.Load()
		if m != nil && m.epoch >= v.epoch {
			return
		}
		if m != nil && m.rgp.Load() != nil && v.rgp.Load() == nil {
			return
		}
		if d.latestMat.CompareAndSwap(m, v) {
			return
		}
	}
}

// Epoch identifies the mutation epoch the view is pinned to; it increases
// monotonically across published views.
func (v *View) Epoch() int64 { return v.epoch }

// NumVertices reports the vertex count at the view's epoch. Internal
// (original) vertex IDs are append-only across epochs: a vertex keeps its ID
// forever, and views of later epochs extend earlier result arrays
// position-for-position.
func (v *View) NumVertices() int { return v.nverts }

// ExternalIDs returns the internal→external ID table of the view's epoch
// (index = the original vertex ID every algorithm result array is keyed by),
// or nil when the graph was never fed through external ingest
// (Dynamic.IngestBatch). The slice is immutable and safe to retain.
func (v *View) ExternalIDs() []uint64 { return v.exts }

// External resolves an internal (original) vertex ID to its external ID;
// ok is false when the view predates external ingest or id is out of range.
func (v *View) External(id VertexID) (ext uint64, ok bool) {
	if v.exts == nil || int(id) >= len(v.exts) {
		return 0, false
	}
	return v.exts[id], true
}

// Resolve maps an external vertex ID to the internal (original) ID all
// algorithm inputs and outputs use; ok is false when the external ID was
// unknown at the view's epoch (it may exist in later views) or the view
// predates external ingest entirely (ExternalIDs() == nil, so Resolve
// stays consistent with External on the same view).
func (v *View) Resolve(ext uint64) (VertexID, bool) {
	if v.exts == nil || v.d == nil {
		return 0, false
	}
	alloc := v.d.alloc.Load()
	if alloc == nil {
		return 0, false
	}
	// The allocator is append-only, so its lookup agrees with the pinned
	// exts table for every ID below the view's vertex count.
	id, ok := alloc.Lookup(ext)
	if !ok || int(id) >= v.nverts {
		return 0, false
	}
	return id, true
}

// NumEdges reports the live edge count at the view's epoch.
func (v *View) NumEdges() int64 { return v.frozen.NumEdges() }

// Ordering returns the view's VEBO ordering.
func (v *View) Ordering() *Result { return &Result{inner: v.ord} }

// Snapshot materializes (once, lazily) the view's graph in original vertex
// IDs. When the basis view already materialized its snapshot, this view's
// is patched from it row-wise through the identity ordering — original IDs
// never change and admitted vertices only extend the row array, so snapshot
// patching works across repair, growth and even rebuild epochs — instead of
// being materialized from the delta log in O(m). The result is immutable
// and safe to share.
func (v *View) Snapshot() *Graph {
	v.snapOnce.Do(func() {
		start := time.Now()
		if b := v.basis.Load(); b != nil {
			if bs := b.snapP.Load(); bs != nil {
				adds, dels := v.delta.AddsDels()
				if s, st, err := bs.PatchEdgesN(v.nverts, adds, dels); err == nil {
					v.work.graphPatches.Add(1)
					v.work.patchedEdges.Add(st.EdgesMerged)
					v.work.relabelEdges.Add(st.EdgesRemapped)
					v.work.reusedEdges.Add(st.EdgesCopied)
					v.snapP.Store(s)
					v.work.emitGraph(v, "snapshot-patch", start, st.EdgesMerged, st.EdgesCopied)
					return
				}
				// Unreachable for deltas recorded by the dynamic subsystem;
				// fall back to a scratch materialization if it ever happens.
			}
		}
		v.snapP.Store(v.frozen.Materialize())
		v.work.rebuildEdges.Add(v.frozen.NumEdges())
		v.work.graphBuilds.Add(1)
		v.work.emitGraph(v, "snapshot-build", start, v.frozen.NumEdges(), 0)
	})
	snap := v.snapP.Load()
	v.d.registerMaterialized(v)
	return snap
}

// segPerm returns the segment-local injection mapping the basis view's
// new-ID space into this view's, or nil for the identity. Growth alone no
// longer produces an injection at all: within a numbering lineage the slot
// space is fixed and admissions fill reserved headroom slots, so every
// basis position keeps its ID — identity outside the grown segments, and
// the identity on them too (admitted slots have no basis preimage; their
// content arrives as explicit adds). Only placement-preserving moves (swap
// repairs, rotations, segment re-sorts) yield a real map: identity
// everywhere except the moved vertices' positions. Valid only while the
// numbering lineage is intact (!delta.PlacementChanged).
func (v *View) segPerm(b *View) []VertexID {
	v.segOnce.Do(func() {
		if len(v.delta.Moved) == 0 {
			return
		}
		// Internal IDs are append-only, so the basis's internal space is
		// exactly the prefix [0, b.nverts) of this view's; composing the
		// two orderings over it yields the basis-position → this-position
		// map directly. The map spans the basis engine's whole slot space:
		// reserved-headroom holes carry empty rows but still need injective
		// targets — identity where free (in-lineage moves only exchange
		// occupied positions, so it always is), matched to leftover free
		// slots otherwise.
		bSlots := int(b.ord.Slots())
		vSlots := int(v.ord.Slots())
		seg := make([]VertexID, bSlots)
		src := make([]bool, bSlots)
		taken := make([]bool, vSlots)
		for w := 0; w < b.nverts; w++ {
			s, t := b.ord.Perm[w], v.ord.Perm[w]
			seg[s] = t
			src[s] = true
			taken[t] = true
		}
		free := 0
		for s := 0; s < bSlots; s++ {
			if src[s] {
				continue
			}
			if s < vSlots && !taken[s] {
				seg[s] = VertexID(s)
				taken[s] = true
				continue
			}
			for taken[free] {
				free++
			}
			seg[s] = VertexID(free)
			taken[free] = true
		}
		v.seg = seg
	})
	return v.seg
}

// Reordered returns (building once, lazily) the view's graph relabeled with
// its VEBO ordering — the graph the cached engines traverse. When the
// previous materialized view shares the same numbering lineage (identical
// placement, or placement-preserving repairs whose segment-local
// permutation is known), the graph is patched row-wise from it instead of
// being rebuilt from a fresh snapshot.
func (v *View) Reordered() (*Graph, error) {
	v.rgOnce.Do(func() {
		start := time.Now()
		if b := v.basis.Load(); b != nil && !v.delta.PlacementChanged {
			if brg := b.rgp.Load(); brg != nil {
				adds, dels := v.delta.AddsDels()
				perm := v.ord.Perm
				mapEndpoints(adds, perm)
				mapEndpoints(dels, perm)
				rg, st, err := brg.PatchEdgesPermN(v.slots(), adds, dels, v.segPerm(b))
				if err == nil {
					v.work.graphPatches.Add(1)
					v.work.patchedEdges.Add(st.EdgesMerged)
					v.work.relabelEdges.Add(st.EdgesRemapped)
					v.work.reusedEdges.Add(st.EdgesCopied)
					v.rgp.Store(rg)
					v.work.emitGraph(v, "reorder-patch", start, st.EdgesMerged, st.EdgesCopied)
					return
				}
				// Unreachable for deltas recorded by the dynamic subsystem;
				// fall back to a scratch build if it ever happens.
			}
		}
		rg, err := core.Apply(v.Snapshot(), v.ord)
		if err != nil {
			v.rgErr = err
			return
		}
		v.work.graphBuilds.Add(1)
		v.work.rebuildEdges.Add(rg.NumEdges())
		v.rgp.Store(rg)
		v.work.emitGraph(v, "reorder-build", start, rg.NumEdges(), 0)
	})
	if rg := v.rgp.Load(); rg != nil {
		v.d.registerMaterialized(v)
		return rg, nil
	}
	return nil, v.rgErr
}

// mapEndpoints rewrites edge endpoints through a permutation in place.
func mapEndpoints(edges []graph.Edge, perm []VertexID) {
	for i := range edges {
		edges[i].Src = perm[edges[i].Src]
		edges[i].Dst = perm[edges[i].Dst]
	}
}

// transposed returns (building once, lazily) the transpose of the reordered
// graph, which BC's backward sweep traverses. Transposition shares the CSR
// and CSC arrays, so this costs O(1) on top of Reordered.
func (v *View) transposed() (*Graph, error) {
	v.rgTOnce.Do(func() {
		rg, err := v.Reordered()
		if err != nil {
			v.rgTErr = err
			return
		}
		v.rgT = rg.Transpose()
	})
	return v.rgT, v.rgTErr
}

// rangePredicate turns a sorted ID list into a "does [lo, hi) contain any
// of them" predicate.
func rangePredicate(ids []VertexID) func(lo, hi VertexID) bool {
	return func(lo, hi VertexID) bool {
		i := sort.Search(len(ids), func(i int) bool { return ids[i] >= lo })
		return i < len(ids) && ids[i] < hi
	}
}

// dirtyPredicate reports whether a destination-vertex range owns any edge
// that changed since the basis view, contains a vertex repositioned by a
// placement-preserving repair, or contains a vertex admitted since the
// basis. Destination-partitioned engine structures (COOs, partition
// metadata, scheduling units) depend only on the in-edges of their range,
// so the exact dirty set is the net delta's destination endpoints, the
// moved vertices' positions and the admitted vertices' positions, mapped
// into the view's relabeled space. (Moves permute IDs within a closed
// position set — a swap, rotation or re-sort always parks an incoming
// vertex where an outgoing one sat — so flagging the current positions
// covers every partition whose membership changed.)
func (v *View) dirtyPredicate() func(lo, hi VertexID) bool {
	v.dirtyOnce.Do(func() {
		perm := v.ord.Perm
		grown := int(v.delta.GrownTotal())
		seen := make(map[VertexID]struct{}, len(v.delta.Net)+len(v.delta.Moved)+grown)
		dirty := make([]VertexID, 0, len(v.delta.Net)+len(v.delta.Moved)+grown)
		add := func(id VertexID) {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				dirty = append(dirty, id)
			}
		}
		for e := range v.delta.Net {
			add(perm[e.Dst])
		}
		for w := range v.delta.Moved {
			add(perm[w])
		}
		// Admissions are append-only in the internal space, so the vertices
		// admitted in the delta's window are exactly the internal tail.
		for w := v.nverts - grown; w < v.nverts; w++ {
			add(perm[w])
		}
		sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
		v.dirtyIDs = dirty
	})
	return rangePredicate(v.dirtyIDs)
}

// srcMovedPredicate reports whether a destination-vertex range owns an edge
// whose source vertex was repositioned since the basis view. Such a range's
// in-edge content is unchanged, but engine structures that store source IDs
// (GraphGrind's COOs) hold stale references and must be remapped through
// the segment permutation. The set is the destinations of the moved
// vertices' current out-edges; edges they lost since the basis appear in
// the net delta and dirty their destinations through dirtyPredicate.
// Growth does not enter: admissions fill reserved headroom slots, so no
// pre-existing source ID ever shifts — a grown epoch without repairs leaves
// this set empty and every clean partition's COO is shared outright.
func (v *View) srcMovedPredicate(rg *Graph) func(lo, hi VertexID) bool {
	v.srcOnce.Do(func() {
		if len(v.delta.Moved) == 0 {
			return
		}
		perm := v.ord.Perm
		seen := make(map[VertexID]struct{})
		var list []VertexID
		for w := range v.delta.Moved {
			for _, t := range rg.OutNeighbors(perm[w]) {
				if _, ok := seen[t]; !ok {
					seen[t] = struct{}{}
					list = append(list, t)
				}
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		v.srcDirty = list
	})
	return rangePredicate(v.srcDirty)
}

// Engine returns (building once, lazily) the cached engine for the selected
// framework model. The engine traverses the reordered graph, partitioned on
// the view's VEBO boundaries (coarsened per socket for Polymer). When the
// basis view already built the same engine and the placement is unchanged,
// the engine is patched: structures of clean partitions are shared, dirty
// ones rebuilt.
func (v *View) Engine(sys System) (Engine, error) {
	if sys < Ligra || sys > GraphGrind {
		return nil, fmt.Errorf("vebo: unknown system %v", sys)
	}
	s := &v.eng[sys]
	s.once.Do(func() {
		s.built, s.err = v.buildEngine(sys)
		if s.err == nil {
			s.val.Store(s.built)
		}
	})
	return s.built, s.err
}

// TransposeEngine returns (building once, lazily) the cached engine over the
// transpose of the reordered graph, partitioned by the paper's Algorithm 1
// (VEBO boundaries balance in-edges, which are out-edges in the transpose).
func (v *View) TransposeEngine(sys System) (Engine, error) {
	if sys < Ligra || sys > GraphGrind {
		return nil, fmt.Errorf("vebo: unknown system %v", sys)
	}
	s := &v.engT[sys]
	s.once.Do(func() {
		s.built, s.err = v.buildTransposeEngine(sys)
		if s.err == nil {
			s.val.Store(s.built)
		}
	})
	return s.built, s.err
}

func (v *View) buildEngine(sys System) (Engine, error) {
	rg, err := v.Reordered()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	// Ligra keeps no ID-bearing partitioned state, so its rebind survives
	// even full renumberings; the partitioned engines patch only while the
	// numbering lineage is intact (segment-local moves at most).
	if b := v.basis.Load(); b != nil && (sys == Ligra || !v.delta.PlacementChanged) {
		if be := b.eng[sys].peek(); be != nil {
			if e, ok := v.patchEngine(sys, b, be, rg); ok {
				cause := "patch"
				if sys == Ligra {
					cause = "rebind"
				}
				v.work.emitEngine(v, cause, sys, start)
				return e, nil
			}
		}
	}
	ecfg := engine.Config{Topology: v.opts.topology()}
	defer v.work.emitEngine(v, "build", sys, start)
	switch sys {
	case Ligra:
		v.work.engineBuilds.Add(1)
		return ligra.New(rg, ligra.Config{Engine: ecfg}), nil
	case Polymer:
		v.work.engineBuilds.Add(1)
		v.work.rebuildEdges.Add(rg.NumEdges())
		bounds := core.CoarsenBounds(v.ord.Boundaries(), v.opts.topology().Sockets)
		return polymer.New(rg, polymer.Config{Engine: ecfg, Bounds: bounds})
	default:
		v.work.engineBuilds.Add(1)
		v.work.rebuildEdges.Add(rg.NumEdges())
		return graphgrind.New(rg, graphgrind.Config{
			Engine:     ecfg,
			Partitions: v.parts,
			Order:      v.cooOrder(),
			Bounds:     v.ord.Boundaries(),
		})
	}
}

// patchEngine derives this view's engine from the basis view b's by
// rebuilding only dirty partitions, remapping partitions whose stored
// source IDs moved, and sharing the rest. Partition boundaries are always
// passed as nil ("unchanged"): within a numbering lineage the slot space is
// fixed — admissions fill reserved headroom slots inside existing segment
// boundaries — so the engines share ranges and partition lookup tables
// outright even across grown epochs, and only a spill (which breaks the
// lineage and forces scratch builds) ever changes the boundaries. Reports
// ok=false to fall back to a scratch build.
func (v *View) patchEngine(sys System, b *View, base Engine, rg *Graph) (Engine, bool) {
	switch sys {
	case Ligra:
		le, ok := base.(*ligra.Ligra)
		if !ok {
			return nil, false
		}
		// Ligra has no partitioned state: reuse the relabeled graph and the
		// vertex-count-derived scheduling units as-is (the slot space is
		// constant within a lineage, so Rebind reuses the units even across
		// grown epochs).
		v.work.enginePatches.Add(1)
		v.work.reusedEdges.Add(rg.NumEdges())
		return le.Rebind(rg), true
	case Polymer:
		pe, ok := base.(*polymer.Polymer)
		if !ok {
			return nil, false
		}
		e, st, err := pe.Patch(rg, v.segPerm(b), nil, v.dirtyPredicate())
		if err != nil {
			return nil, false
		}
		v.recordPatch(st)
		return e, true
	default:
		ge, ok := base.(*graphgrind.GraphGrind)
		if !ok {
			return nil, false
		}
		e, st, err := ge.Patch(rg, v.segPerm(b), nil, v.dirtyPredicate(), v.srcMovedPredicate(rg))
		if err != nil {
			return nil, false
		}
		v.recordPatch(st)
		return e, true
	}
}

func (v *View) recordPatch(st engine.PatchStats) {
	v.work.enginePatches.Add(1)
	v.work.patchedEdges.Add(st.EdgesRebuilt)
	v.work.reusedEdges.Add(st.EdgesReused)
	v.work.relabelEdges.Add(st.EdgesRemapped)
	v.work.partsRebuilt.Add(int64(st.PartsRebuilt))
	v.work.partsReused.Add(int64(st.PartsReused))
	v.work.partsRelabel.Add(int64(st.PartsRemapped))
}

func (v *View) buildTransposeEngine(sys System) (Engine, error) {
	rgT, err := v.transposed()
	if err != nil {
		return nil, err
	}
	ecfg := engine.Config{Topology: v.opts.topology()}
	v.work.engineBuilds.Add(1)
	switch sys {
	case Ligra:
		return ligra.New(rgT, ligra.Config{Engine: ecfg}), nil
	case Polymer:
		v.work.rebuildEdges.Add(rgT.NumEdges())
		return polymer.New(rgT, polymer.Config{Engine: ecfg})
	default:
		v.work.rebuildEdges.Add(rgT.NumEdges())
		return graphgrind.New(rgT, graphgrind.Config{
			Engine:     ecfg,
			Partitions: v.parts,
			Order:      v.cooOrder(),
		})
	}
}

func (v *View) cooOrder() layout.Order {
	if v.opts.HilbertCOO {
		return layout.HilbertOrder
	}
	return layout.CSROrder
}

// slots returns the size of the view's engine vertex space: the slot count
// of its (possibly slotted) ordering, ≥ nverts. Engine-space arrays are
// sized by it; original-ID arrays by nverts.
func (v *View) slots() int { return int(v.ord.Slots()) }

// invPerm returns the new-ID → original-ID map, computed once. Reserved
// headroom slots have no original vertex; their entries are zero and must
// not be consulted (algorithm results at hole positions are dropped by
// unpermute before any inv lookup).
func (v *View) invPerm() []VertexID {
	v.invOnce.Do(func() {
		v.inv = make([]VertexID, v.slots())
		for old, nw := range v.ord.Perm {
			v.inv[nw] = VertexID(old)
		}
	})
	return v.inv
}

func (v *View) checkRoot(root VertexID) error {
	if int(root) >= v.nverts {
		return fmt.Errorf("vebo: root %d out of range n=%d", root, v.nverts)
	}
	return nil
}

// unpermute reindexes an engine-space value array back to original IDs. The
// result has one entry per original vertex (len(perm)); values at reserved
// headroom slots — engine positions with no original vertex — are dropped.
func unpermute[T any](perm []VertexID, res []T) []T {
	out := make([]T, len(perm))
	for old, nw := range perm {
		out[old] = res[nw]
	}
	return out
}

// permuteIn reindexes an original-ID value array into an engine space of n
// positions (≥ len(xs) on slotted orderings). Reserved headroom slots take
// the zero value; callers for whom zero is not inert must overwrite them.
func permuteIn[T any](perm []VertexID, xs []T, n int) []T {
	out := make([]T, n)
	for old, nw := range perm {
		out[nw] = xs[old]
	}
	return out
}

// PageRank runs power-method PageRank for iters iterations on the selected
// framework model; ranks are indexed by original vertex ID.
func (v *View) PageRank(sys System, iters int) ([]float64, error) {
	start := time.Now()
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	ranks := unpermute(v.ord.Perm, algorithms.PageRankN(e, iters, v.nverts))
	v.work.observeQuery(v, "pagerank", "full", sys, start)
	return ranks, nil
}

// PageRankDelta runs delta-update PageRank; ranks are indexed by original
// vertex ID.
func (v *View) PageRankDelta(sys System, iters int, eps float64) ([]float64, error) {
	start := time.Now()
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	ranks := unpermute(v.ord.Perm, algorithms.PageRankDeltaN(e, iters, eps, v.nverts))
	v.work.observeQuery(v, "pagerankdelta", "full", sys, start)
	return ranks, nil
}

// BFS returns the breadth-first parent array from root; both the indices and
// the stored parents are original vertex IDs (-1 marks unreached vertices).
func (v *View) BFS(sys System, root VertexID) ([]int32, error) {
	if err := v.checkRoot(root); err != nil {
		return nil, err
	}
	start := time.Now()
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	parents := unpermute(v.ord.Perm, algorithms.BFS(e, v.ord.Perm[root]))
	inv := v.invPerm()
	for i, p := range parents {
		if p >= 0 {
			parents[i] = int32(inv[p])
		}
	}
	v.work.observeQuery(v, "bfs", "full", sys, start)
	return parents, nil
}

// CC returns connected-component labels indexed by original vertex ID. Two
// vertices share a component iff their labels are equal; label values are
// otherwise opaque.
func (v *View) CC(sys System) ([]uint32, error) {
	start := time.Now()
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	labels := unpermute(v.ord.Perm, algorithms.CC(e))
	inv := v.invPerm()
	for i, l := range labels {
		labels[i] = inv[l]
	}
	v.work.observeQuery(v, "cc", "full", sys, start)
	return labels, nil
}

// SPMV multiplies the adjacency matrix with x; both x and the result are
// indexed by original vertex ID.
func (v *View) SPMV(sys System, x []float64) ([]float64, error) {
	start := time.Now()
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	if len(x) != v.nverts {
		return nil, fmt.Errorf("vebo: SPMV input length %d != n %d", len(x), v.nverts)
	}
	y := unpermute(v.ord.Perm, algorithms.SPMV(e, permuteIn(v.ord.Perm, x, v.slots())))
	v.work.observeQuery(v, "spmv", "full", sys, start)
	return y, nil
}

// BellmanFord returns single-source shortest-path distances from root,
// indexed by original vertex ID.
func (v *View) BellmanFord(sys System, root VertexID) ([]int64, error) {
	if err := v.checkRoot(root); err != nil {
		return nil, err
	}
	start := time.Now()
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	dists := unpermute(v.ord.Perm, algorithms.BellmanFord(e, v.ord.Perm[root]))
	v.work.observeQuery(v, "bellmanford", "full", sys, start)
	return dists, nil
}

// BC returns single-source betweenness-centrality scores from root, indexed
// by original vertex ID. The transpose engine for the backward sweep is
// built and cached internally.
func (v *View) BC(sys System, root VertexID) ([]float64, error) {
	if err := v.checkRoot(root); err != nil {
		return nil, err
	}
	start := time.Now()
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	eT, err := v.TransposeEngine(sys)
	if err != nil {
		return nil, err
	}
	scores := unpermute(v.ord.Perm, algorithms.BC(e, eT, v.ord.Perm[root]))
	v.work.observeQuery(v, "bc", "full", sys, start)
	return scores, nil
}

// BP runs the belief-propagation workload for iters iterations; prior and
// the result are indexed by original vertex ID.
func (v *View) BP(sys System, iters int, prior []float64) ([]float64, error) {
	start := time.Now()
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	if len(prior) != v.nverts {
		return nil, fmt.Errorf("vebo: BP prior length %d != n %d", len(prior), v.nverts)
	}
	beliefs := unpermute(v.ord.Perm, algorithms.BP(e, iters, permuteIn(v.ord.Perm, prior, v.slots())))
	v.work.observeQuery(v, "bp", "full", sys, start)
	return beliefs, nil
}
