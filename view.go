package vebo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/graphgrind"
	"repro/internal/layout"
	"repro/internal/ligra"
	"repro/internal/polymer"
)

// View is an immutable, epoch-pinned capture of a Dynamic graph: a consistent
// snapshot, its VEBO ordering, and lazily built, cached engines for all three
// framework models (plus their transposes, for BC). Views are published by
// the ingest side with a lock-free pointer swap; any number of reader
// goroutines may hold one View and run algorithms on it while ApplyBatch
// keeps mutating the Dynamic underneath. All algorithm inputs and outputs use
// original vertex IDs — the internal relabeling is invisible.
//
// Engine state is reused across epochs: when a new View's placement is
// unchanged relative to the previous materialized View, its relabeled graph
// is patched row-wise from the predecessor's, and per-partition engine
// structures (GraphGrind COOs, Polymer scheduling units, partition metadata)
// are rebuilt only for partitions whose edge content changed. ViewWork
// reports the resulting rebuild-versus-patch work split.
type View struct {
	epoch      int64
	placeEpoch int64
	anchorID   int64 // delta lineage the view was published under
	nverts     int
	parts      int
	ord        *core.Result // shared immutable Perm/PartitionOf, counts frozen at publish
	frozen     dynamic.Frozen
	opts       EngineOptions
	delta      dynamic.ViewDelta    // changes since the basis (== the anchor point)
	basis      atomic.Pointer[View] // materialized view at the anchor point; nil forces scratch builds
	d          *Dynamic
	work       *viewWork

	snapOnce sync.Once
	snap     *Graph

	rgOnce sync.Once
	rgp    atomic.Pointer[Graph]
	rgErr  error

	rgTOnce sync.Once
	rgT     *Graph
	rgTErr  error

	invOnce sync.Once
	inv     []VertexID // new ID -> original ID

	dirtyOnce sync.Once
	dirtyDsts []VertexID // sorted dirty destinations in relabeled space

	eng  [3]engineSlot
	engT [3]engineSlot
}

// engineSlot lazily holds one framework engine. The atomic value lets the
// next epoch's view check "already built?" without forcing a build.
type engineSlot struct {
	once  sync.Once
	val   atomic.Value // Engine
	built Engine
	err   error
}

func (s *engineSlot) peek() Engine {
	if e, ok := s.val.Load().(Engine); ok {
		return e
	}
	return nil
}

// viewWork accumulates engine-construction work counters across a Dynamic's
// lifetime; readers add to it from whichever goroutine triggers a lazy build.
type viewWork struct {
	epochs        atomic.Int64
	graphBuilds   atomic.Int64
	graphPatches  atomic.Int64
	engineBuilds  atomic.Int64
	enginePatches atomic.Int64
	rebuildEdges  atomic.Int64
	patchedEdges  atomic.Int64
	reusedEdges   atomic.Int64
	partsRebuilt  atomic.Int64
	partsReused   atomic.Int64
}

// ViewWork is a snapshot of the engine-construction work a Dynamic's views
// have done. Edges are the unit: RebuildEdges counts edges processed by
// from-scratch construction (snapshot materialization, relabeling, COO and
// partition builds), PatchedEdges counts edges reprocessed by the patch
// paths (merged adjacency rows, rebuilt dirty partitions), and ReusedEdges
// counts edges carried over untouched (shared COO pointers, block-copied
// rows) — work avoided relative to rebuilding.
type ViewWork struct {
	Epochs                      int64
	GraphBuilds, GraphPatches   int64
	EngineBuilds, EnginePatches int64
	RebuildEdges                int64
	PatchedEdges                int64
	ReusedEdges                 int64
	PartitionsRebuilt           int64
	PartitionsReused            int64
}

func (w *viewWork) snapshot() ViewWork {
	return ViewWork{
		Epochs:            w.epochs.Load(),
		GraphBuilds:       w.graphBuilds.Load(),
		GraphPatches:      w.graphPatches.Load(),
		EngineBuilds:      w.engineBuilds.Load(),
		EnginePatches:     w.enginePatches.Load(),
		RebuildEdges:      w.rebuildEdges.Load(),
		PatchedEdges:      w.patchedEdges.Load(),
		ReusedEdges:       w.reusedEdges.Load(),
		PartitionsRebuilt: w.partsRebuilt.Load(),
		PartitionsReused:  w.partsReused.Load(),
	}
}

// View returns the most recently published epoch-pinned view. The call is a
// single atomic load and never blocks the ingest side; it is safe from any
// goroutine. Successive calls may return different views as batches land;
// one View is forever consistent.
func (d *Dynamic) View() *View {
	return d.cur.Load()
}

// ViewWork returns the accumulated engine-construction work counters.
func (d *Dynamic) ViewWork() ViewWork { return d.work.snapshot() }

// publish captures the post-batch state as a fresh View and swaps it in.
// Called only from the ingest (writer) side.
//
// Basis tracking: the writer accumulates the delta since an anchor point —
// the publish instant of basisView, the newest view known to have
// materialized its relabeled graph. Readers register views they materialize
// in latestMat; at each publish the writer re-anchors onto the newest one by
// subtracting that view's own anchor-relative delta (exact for the edge
// multiset, superset for dirty partitions). This keeps patching available no
// matter how many epochs pass between queries, while a reader that never
// comes back costs only the bounded sinceAnchor map — which resets, dropping
// the basis, if it ever outgrows the delta-log compaction bound.
func (d *Dynamic) publish() {
	drained := d.inner.DrainViewDelta()
	var basis *View
	if d.reuse {
		d.sinceAnchor = d.sinceAnchor.Merge(drained)
		if m := d.latestMat.Load(); m != nil && m.anchorID == d.anchorID &&
			(d.basisView == nil || m.epoch > d.basisView.epoch) {
			d.sinceAnchor = d.sinceAnchor.Subtract(m.delta)
			d.sinceAnchor.PlacementChanged = d.inner.PlaceEpoch() != m.placeEpoch
			d.anchorID++
			d.basisView = m
			// m patches from its own basis only while building artifacts it
			// hasn't built yet; dropping the link bounds the retained chain.
			m.basis.Store(nil)
		}
		if int64(len(d.sinceAnchor.Net)) > d.inner.NumEdges()/4+8192 {
			// No reader has materialized a view for a long stretch; give up
			// on the stale basis rather than hold an ever-growing delta.
			d.anchorID++
			d.basisView = nil
			d.sinceAnchor = dynamic.ViewDelta{}
		}
		if d.basisView != nil && d.basisView.rgp.Load() != nil {
			basis = d.basisView
		}
	}
	v := &View{
		epoch:      d.inner.Epoch(),
		placeEpoch: d.inner.PlaceEpoch(),
		anchorID:   d.anchorID,
		nverts:     d.inner.NumVertices(),
		parts:      d.inner.Partitions(),
		ord:        d.inner.Ordering(),
		frozen:     d.inner.Freeze(),
		opts:       d.engOpts,
		delta:      d.sinceAnchor,
		d:          d,
		work:       d.work,
	}
	v.basis.Store(basis)
	d.work.epochs.Add(1)
	d.cur.Store(v)
}

// registerMaterialized records that v built its relabeled graph, making it a
// basis candidate for future epochs. Keeps the newest such view.
func (d *Dynamic) registerMaterialized(v *View) {
	for {
		m := d.latestMat.Load()
		if m != nil && m.epoch >= v.epoch {
			return
		}
		if d.latestMat.CompareAndSwap(m, v) {
			return
		}
	}
}

// Epoch identifies the mutation epoch the view is pinned to; it increases
// monotonically across published views.
func (v *View) Epoch() int64 { return v.epoch }

// NumVertices reports the vertex count.
func (v *View) NumVertices() int { return v.nverts }

// NumEdges reports the live edge count at the view's epoch.
func (v *View) NumEdges() int64 { return v.frozen.NumEdges() }

// Ordering returns the view's VEBO ordering.
func (v *View) Ordering() *Result { return &Result{inner: v.ord} }

// Snapshot materializes (once, lazily) the view's graph in original vertex
// IDs. The result is immutable and safe to share.
func (v *View) Snapshot() *Graph {
	v.snapOnce.Do(func() {
		v.snap = v.frozen.Materialize()
		v.work.rebuildEdges.Add(v.frozen.NumEdges())
		v.work.graphBuilds.Add(1)
	})
	return v.snap
}

// Reordered returns (building once, lazily) the view's graph relabeled with
// its VEBO ordering — the graph the cached engines traverse. When the
// previous materialized view shares the same placement, the graph is patched
// row-wise from it instead of being rebuilt from a fresh snapshot.
func (v *View) Reordered() (*Graph, error) {
	v.rgOnce.Do(func() {
		if b := v.basis.Load(); b != nil && !v.delta.PlacementChanged {
			if brg := b.rgp.Load(); brg != nil {
				adds, dels := v.delta.AddsDels()
				perm := v.ord.Perm
				mapEndpoints(adds, perm)
				mapEndpoints(dels, perm)
				rg, st, err := brg.PatchEdges(adds, dels)
				if err == nil {
					v.work.graphPatches.Add(1)
					v.work.patchedEdges.Add(st.EdgesMerged)
					v.work.reusedEdges.Add(st.EdgesCopied)
					v.rgp.Store(rg)
					return
				}
				// Unreachable for deltas recorded by the dynamic subsystem;
				// fall back to a scratch build if it ever happens.
			}
		}
		rg, err := core.Apply(v.Snapshot(), v.ord)
		if err != nil {
			v.rgErr = err
			return
		}
		v.work.graphBuilds.Add(1)
		v.work.rebuildEdges.Add(rg.NumEdges())
		v.rgp.Store(rg)
	})
	if rg := v.rgp.Load(); rg != nil {
		v.d.registerMaterialized(v)
		return rg, nil
	}
	return nil, v.rgErr
}

// mapEndpoints rewrites edge endpoints through a permutation in place.
func mapEndpoints(edges []graph.Edge, perm []VertexID) {
	for i := range edges {
		edges[i].Src = perm[edges[i].Src]
		edges[i].Dst = perm[edges[i].Dst]
	}
}

// transposed returns (building once, lazily) the transpose of the reordered
// graph, which BC's backward sweep traverses. Transposition shares the CSR
// and CSC arrays, so this costs O(1) on top of Reordered.
func (v *View) transposed() (*Graph, error) {
	v.rgTOnce.Do(func() {
		rg, err := v.Reordered()
		if err != nil {
			v.rgTErr = err
			return
		}
		v.rgT = rg.Transpose()
	})
	return v.rgT, v.rgTErr
}

// dirtyPredicate reports whether a destination-vertex range owns any edge
// that changed since the basis view. Destination-partitioned engine
// structures (COOs, partition metadata, scheduling units) depend only on
// the in-edges of their range, so the exact dirty set is the net delta's
// destination endpoints mapped into the view's relabeled space.
func (v *View) dirtyPredicate() func(lo, hi VertexID) bool {
	v.dirtyOnce.Do(func() {
		perm := v.ord.Perm
		seen := make(map[VertexID]struct{}, len(v.delta.Net))
		dirty := make([]VertexID, 0, len(v.delta.Net))
		for e := range v.delta.Net {
			nd := perm[e.Dst]
			if _, ok := seen[nd]; !ok {
				seen[nd] = struct{}{}
				dirty = append(dirty, nd)
			}
		}
		sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
		v.dirtyDsts = dirty
	})
	dirty := v.dirtyDsts
	return func(lo, hi VertexID) bool {
		i := sort.Search(len(dirty), func(i int) bool { return dirty[i] >= lo })
		return i < len(dirty) && dirty[i] < hi
	}
}

// Engine returns (building once, lazily) the cached engine for the selected
// framework model. The engine traverses the reordered graph, partitioned on
// the view's VEBO boundaries (coarsened per socket for Polymer). When the
// basis view already built the same engine and the placement is unchanged,
// the engine is patched: structures of clean partitions are shared, dirty
// ones rebuilt.
func (v *View) Engine(sys System) (Engine, error) {
	if sys < Ligra || sys > GraphGrind {
		return nil, fmt.Errorf("vebo: unknown system %v", sys)
	}
	s := &v.eng[sys]
	s.once.Do(func() {
		s.built, s.err = v.buildEngine(sys)
		if s.err == nil {
			s.val.Store(s.built)
		}
	})
	return s.built, s.err
}

// TransposeEngine returns (building once, lazily) the cached engine over the
// transpose of the reordered graph, partitioned by the paper's Algorithm 1
// (VEBO boundaries balance in-edges, which are out-edges in the transpose).
func (v *View) TransposeEngine(sys System) (Engine, error) {
	if sys < Ligra || sys > GraphGrind {
		return nil, fmt.Errorf("vebo: unknown system %v", sys)
	}
	s := &v.engT[sys]
	s.once.Do(func() {
		s.built, s.err = v.buildTransposeEngine(sys)
		if s.err == nil {
			s.val.Store(s.built)
		}
	})
	return s.built, s.err
}

func (v *View) buildEngine(sys System) (Engine, error) {
	rg, err := v.Reordered()
	if err != nil {
		return nil, err
	}
	if b := v.basis.Load(); b != nil && !v.delta.PlacementChanged {
		if be := b.eng[sys].peek(); be != nil {
			if e, ok := v.patchEngine(sys, be, rg); ok {
				return e, nil
			}
		}
	}
	ecfg := engine.Config{Topology: v.opts.topology()}
	switch sys {
	case Ligra:
		v.work.engineBuilds.Add(1)
		return ligra.New(rg, ligra.Config{Engine: ecfg}), nil
	case Polymer:
		v.work.engineBuilds.Add(1)
		v.work.rebuildEdges.Add(rg.NumEdges())
		bounds := core.CoarsenBounds(v.ord.Boundaries(), v.opts.topology().Sockets)
		return polymer.New(rg, polymer.Config{Engine: ecfg, Bounds: bounds})
	default:
		v.work.engineBuilds.Add(1)
		v.work.rebuildEdges.Add(rg.NumEdges())
		return graphgrind.New(rg, graphgrind.Config{
			Engine:     ecfg,
			Partitions: v.parts,
			Order:      v.cooOrder(),
			Bounds:     v.ord.Boundaries(),
		})
	}
}

// patchEngine derives this view's engine from the basis view's by rebuilding
// only dirty partitions. Reports ok=false to fall back to a scratch build.
func (v *View) patchEngine(sys System, base Engine, rg *Graph) (Engine, bool) {
	dirty := v.dirtyPredicate()
	switch sys {
	case Ligra:
		le, ok := base.(*ligra.Ligra)
		if !ok {
			return nil, false
		}
		// Ligra has no partitioned state: reuse the relabeled graph and the
		// vertex-count-derived scheduling units as-is.
		v.work.enginePatches.Add(1)
		v.work.reusedEdges.Add(rg.NumEdges())
		return le.Rebind(rg), true
	case Polymer:
		pe, ok := base.(*polymer.Polymer)
		if !ok {
			return nil, false
		}
		e, st, err := pe.Patch(rg, dirty)
		if err != nil {
			return nil, false
		}
		v.recordPatch(st)
		return e, true
	default:
		ge, ok := base.(*graphgrind.GraphGrind)
		if !ok {
			return nil, false
		}
		e, st, err := ge.Patch(rg, dirty)
		if err != nil {
			return nil, false
		}
		v.recordPatch(st)
		return e, true
	}
}

func (v *View) recordPatch(st engine.PatchStats) {
	v.work.enginePatches.Add(1)
	v.work.patchedEdges.Add(st.EdgesRebuilt)
	v.work.reusedEdges.Add(st.EdgesReused)
	v.work.partsRebuilt.Add(int64(st.PartsRebuilt))
	v.work.partsReused.Add(int64(st.PartsReused))
}

func (v *View) buildTransposeEngine(sys System) (Engine, error) {
	rgT, err := v.transposed()
	if err != nil {
		return nil, err
	}
	ecfg := engine.Config{Topology: v.opts.topology()}
	v.work.engineBuilds.Add(1)
	switch sys {
	case Ligra:
		return ligra.New(rgT, ligra.Config{Engine: ecfg}), nil
	case Polymer:
		v.work.rebuildEdges.Add(rgT.NumEdges())
		return polymer.New(rgT, polymer.Config{Engine: ecfg})
	default:
		v.work.rebuildEdges.Add(rgT.NumEdges())
		return graphgrind.New(rgT, graphgrind.Config{
			Engine:     ecfg,
			Partitions: v.parts,
			Order:      v.cooOrder(),
		})
	}
}

func (v *View) cooOrder() layout.Order {
	if v.opts.HilbertCOO {
		return layout.HilbertOrder
	}
	return layout.CSROrder
}

// invPerm returns the new-ID → original-ID permutation, computed once.
func (v *View) invPerm() []VertexID {
	v.invOnce.Do(func() {
		v.inv = make([]VertexID, len(v.ord.Perm))
		for old, nw := range v.ord.Perm {
			v.inv[nw] = VertexID(old)
		}
	})
	return v.inv
}

func (v *View) checkRoot(root VertexID) error {
	if int(root) >= v.nverts {
		return fmt.Errorf("vebo: root %d out of range n=%d", root, v.nverts)
	}
	return nil
}

// unpermute reindexes an engine-space value array back to original IDs.
func unpermute[T any](perm []VertexID, res []T) []T {
	out := make([]T, len(res))
	for old, nw := range perm {
		out[old] = res[nw]
	}
	return out
}

// permuteIn reindexes an original-ID value array into engine space.
func permuteIn[T any](perm []VertexID, xs []T) []T {
	out := make([]T, len(xs))
	for old, nw := range perm {
		out[nw] = xs[old]
	}
	return out
}

// PageRank runs power-method PageRank for iters iterations on the selected
// framework model; ranks are indexed by original vertex ID.
func (v *View) PageRank(sys System, iters int) ([]float64, error) {
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	return unpermute(v.ord.Perm, algorithms.PageRank(e, iters)), nil
}

// PageRankDelta runs delta-update PageRank; ranks are indexed by original
// vertex ID.
func (v *View) PageRankDelta(sys System, iters int, eps float64) ([]float64, error) {
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	return unpermute(v.ord.Perm, algorithms.PageRankDelta(e, iters, eps)), nil
}

// BFS returns the breadth-first parent array from root; both the indices and
// the stored parents are original vertex IDs (-1 marks unreached vertices).
func (v *View) BFS(sys System, root VertexID) ([]int32, error) {
	if err := v.checkRoot(root); err != nil {
		return nil, err
	}
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	parents := unpermute(v.ord.Perm, algorithms.BFS(e, v.ord.Perm[root]))
	inv := v.invPerm()
	for i, p := range parents {
		if p >= 0 {
			parents[i] = int32(inv[p])
		}
	}
	return parents, nil
}

// CC returns connected-component labels indexed by original vertex ID. Two
// vertices share a component iff their labels are equal; label values are
// otherwise opaque.
func (v *View) CC(sys System) ([]uint32, error) {
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	labels := unpermute(v.ord.Perm, algorithms.CC(e))
	inv := v.invPerm()
	for i, l := range labels {
		labels[i] = inv[l]
	}
	return labels, nil
}

// SPMV multiplies the adjacency matrix with x; both x and the result are
// indexed by original vertex ID.
func (v *View) SPMV(sys System, x []float64) ([]float64, error) {
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	if len(x) != v.nverts {
		return nil, fmt.Errorf("vebo: SPMV input length %d != n %d", len(x), v.nverts)
	}
	return unpermute(v.ord.Perm, algorithms.SPMV(e, permuteIn(v.ord.Perm, x))), nil
}

// BellmanFord returns single-source shortest-path distances from root,
// indexed by original vertex ID.
func (v *View) BellmanFord(sys System, root VertexID) ([]int64, error) {
	if err := v.checkRoot(root); err != nil {
		return nil, err
	}
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	return unpermute(v.ord.Perm, algorithms.BellmanFord(e, v.ord.Perm[root])), nil
}

// BC returns single-source betweenness-centrality scores from root, indexed
// by original vertex ID. The transpose engine for the backward sweep is
// built and cached internally.
func (v *View) BC(sys System, root VertexID) ([]float64, error) {
	if err := v.checkRoot(root); err != nil {
		return nil, err
	}
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	eT, err := v.TransposeEngine(sys)
	if err != nil {
		return nil, err
	}
	return unpermute(v.ord.Perm, algorithms.BC(e, eT, v.ord.Perm[root])), nil
}

// BP runs the belief-propagation workload for iters iterations; prior and
// the result are indexed by original vertex ID.
func (v *View) BP(sys System, iters int, prior []float64) ([]float64, error) {
	e, err := v.Engine(sys)
	if err != nil {
		return nil, err
	}
	if len(prior) != v.nverts {
		return nil, fmt.Errorf("vebo: BP prior length %d != n %d", len(prior), v.nverts)
	}
	return unpermute(v.ord.Perm, algorithms.BP(e, iters, permuteIn(v.ord.Perm, prior))), nil
}
