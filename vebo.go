// Package vebo is the public facade of the VEBO reproduction: a Go
// implementation of "VEBO: A Vertex- and Edge-Balanced Ordering Heuristic to
// Load Balance Parallel Graph Processing" (Sun, Vandierendonck,
// Nikolopoulos; PPoPP 2019), together with the three shared-memory
// graph-processing framework models (Ligra, Polymer, GraphGrind styles) the
// paper evaluates on, eight graph algorithms, baseline orderings and a
// benchmark harness regenerating every table and figure of the paper.
//
// The typical pipeline mirrors the paper's Figure 2:
//
//	g, _ := vebo.Generate("twitter", 0.2, 42)      // or LoadAdjacency
//	res, _ := vebo.Reorder(g, 384)                  // VEBO ordering
//	rg, _ := res.Apply(g)                           // isomorphic reordered graph
//	eng, _ := vebo.NewEngine(vebo.GraphGrind, rg,   // processing engine
//	    vebo.EngineOptions{Bounds: res.Boundaries()})
//	ranks := vebo.PageRank(eng, 10)
//
// See DESIGN.md for the system inventory and DESIGN.md §3 for the experiment
// index regenerating the paper's tables and figures (cmd/bench).
package vebo

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphgrind"
	"repro/internal/layout"
	"repro/internal/ligra"
	"repro/internal/numa"
	"repro/internal/obs"
	"repro/internal/order"
	"repro/internal/polymer"
)

// Graph is a directed graph in CSR+CSC form (see internal/graph).
type Graph = graph.Graph

// Edge is a weighted directed edge.
type Edge = graph.Edge

// VertexID identifies a vertex.
type VertexID = graph.VertexID

// Result is a VEBO ordering (permutation, partition assignment and balance
// counts).
type Result struct {
	inner *core.Result
}

// Perm returns the permutation (old ID → new ID).
func (r *Result) Perm() []VertexID { return r.inner.Perm }

// Boundaries returns the partition end points in the new ID space.
func (r *Result) Boundaries() []int64 { return r.inner.Boundaries() }

// EdgeImbalance returns Δ(n), the spread of per-partition edge counts.
func (r *Result) EdgeImbalance() int64 { return r.inner.EdgeImbalance() }

// VertexImbalance returns δ(n), the spread of per-partition vertex counts.
func (r *Result) VertexImbalance() int64 { return r.inner.VertexImbalance() }

// Apply relabels g with the ordering, returning the reordered graph.
func (r *Result) Apply(g *Graph) (*Graph, error) { return core.Apply(g, r.inner) }

// Reorder computes the VEBO ordering of g into p partitions: per-partition
// in-edge counts and destination-vertex counts are jointly balanced
// (optimally so, for power-law graphs meeting the paper's Theorem 1/2
// preconditions).
func Reorder(g *Graph, p int) (*Result, error) {
	r, err := core.Reorder(g, p, core.Options{})
	if err != nil {
		return nil, err
	}
	return &Result{inner: r}, nil
}

// Generate builds one of the paper's workload graphs by recipe name
// (twitter, friendster, orkut, livejournal, yahoo, usaroad, powerlaw, rmat)
// at the given scale (1.0 ≈ 10^5 vertices).
func Generate(recipe string, scale float64, seed int64) (*Graph, error) {
	r, err := gen.RecipeByName(recipe)
	if err != nil {
		return nil, err
	}
	return r.Build(scale, seed)
}

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges []Edge, weighted bool) (*Graph, error) {
	return graph.FromEdges(n, edges, weighted)
}

// LoadAdjacency reads a graph in Ligra (Weighted)AdjacencyGraph format.
func LoadAdjacency(r io.Reader) (*Graph, error) { return graph.ReadAdjacency(r) }

// SaveAdjacency writes a graph in Ligra (Weighted)AdjacencyGraph format.
func SaveAdjacency(w io.Writer, g *Graph) error { return graph.WriteAdjacency(w, g) }

// System selects a framework model.
type System int

const (
	// Ligra models Shun & Blelloch's Ligra: no partitioning, dynamic
	// scheduling.
	Ligra System = iota
	// Polymer models Zhang et al.'s Polymer: one partition per NUMA socket,
	// static scheduling.
	Polymer
	// GraphGrind models Sun et al.'s GraphGrind: many partitions, two-level
	// scheduling, COO dense traversal.
	GraphGrind
)

func (s System) String() string {
	switch s {
	case Ligra:
		return "ligra"
	case Polymer:
		return "polymer"
	case GraphGrind:
		return "graphgrind"
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// Engine is the edgemap/vertexmap processing interface shared by the three
// framework models; see internal/engine for the full contract.
type Engine = engine.Engine

// EngineOptions tunes engine construction.
type EngineOptions struct {
	// Sockets and ThreadsPerSocket describe the virtual NUMA machine
	// (default: the paper's 4×12).
	Sockets, ThreadsPerSocket int
	// Partitions is GraphGrind's partition count (default 384).
	Partitions int
	// Bounds supplies explicit partition boundaries (e.g.
	// Result.Boundaries()); nil selects the paper's Algorithm 1.
	Bounds []int64
	// HilbertCOO selects Hilbert-ordered COO for GraphGrind's dense
	// traversal instead of the default CSR order.
	HilbertCOO bool
}

func (o EngineOptions) topology() numa.Topology {
	t := numa.Default()
	if o.Sockets > 0 {
		t.Sockets = o.Sockets
	}
	if o.ThreadsPerSocket > 0 {
		t.ThreadsPerSocket = o.ThreadsPerSocket
	}
	return t
}

// NewEngine constructs the selected framework model over g.
func NewEngine(sys System, g *Graph, opts EngineOptions) (Engine, error) {
	ecfg := engine.Config{Topology: opts.topology()}
	switch sys {
	case Ligra:
		return ligra.New(g, ligra.Config{Engine: ecfg}), nil
	case Polymer:
		return polymer.New(g, polymer.Config{Engine: ecfg, Bounds: opts.Bounds})
	case GraphGrind:
		o := layout.CSROrder
		if opts.HilbertCOO {
			o = layout.HilbertOrder
		}
		return graphgrind.New(g, graphgrind.Config{
			Engine:     ecfg,
			Partitions: opts.Partitions,
			Order:      o,
			Bounds:     opts.Bounds,
		})
	default:
		return nil, fmt.Errorf("vebo: unknown system %v", sys)
	}
}

// The eight benchmark algorithms of the paper's Table II, re-exported from
// internal/algorithms. Each runs on any Engine.

// PageRank runs the power-method PageRank for iters iterations.
func PageRank(e Engine, iters int) []float64 { return algorithms.PageRank(e, iters) }

// PageRankDelta runs delta-update PageRank; vertices leave the frontier when
// their rank change falls below eps relative to their rank.
func PageRankDelta(e Engine, iters int, eps float64) []float64 {
	return algorithms.PageRankDelta(e, iters, eps)
}

// BFS returns the parent array of a breadth-first search from root.
func BFS(e Engine, root VertexID) []int32 { return algorithms.BFS(e, root) }

// CC returns label-propagation component labels.
func CC(e Engine) []uint32 { return algorithms.CC(e) }

// SPMV multiplies the adjacency matrix with x.
func SPMV(e Engine, x []float64) []float64 { return algorithms.SPMV(e, x) }

// BellmanFord returns single-source shortest-path distances from root.
func BellmanFord(e Engine, root VertexID) []int64 { return algorithms.BellmanFord(e, root) }

// BC returns single-source betweenness-centrality scores; eT must process
// the transpose of e's graph.
func BC(e, eT Engine, root VertexID) []float64 { return algorithms.BC(e, eT, root) }

// BP runs the belief-propagation workload for iters iterations with the
// given priors.
func BP(e Engine, iters int, prior []float64) []float64 { return algorithms.BP(e, iters, prior) }

// Dynamic graphs: streaming edge ingestion with incremental VEBO
// maintenance (see internal/dynamic and DESIGN.md §5).

// EdgeUpdate is one timestamped edge insertion or deletion in a stream.
type EdgeUpdate = graph.EdgeUpdate

// DynamicStats re-exports the dynamic subsystem's work counters.
type DynamicStats = dynamic.Stats

// DynamicBatchResult re-exports the per-batch maintenance report.
type DynamicBatchResult = dynamic.BatchResult

// RepairMode selects the maintenance strategy of a Dynamic graph.
type RepairMode = dynamic.RepairMode

const (
	// RepairPreserve (default) repairs balance with segment-local vertex
	// swaps, keeping cached view engines patchable across repair epochs.
	RepairPreserve = dynamic.RepairPreserve
	// RepairReplace is the legacy dirty-vertex greedy re-placement, which
	// renumbers the vertex space on every repair.
	RepairReplace = dynamic.RepairReplace
)

// DynamicOptions tunes a dynamic graph. The zero value selects the defaults
// documented in internal/dynamic.Config.
type DynamicOptions struct {
	// Partitions is the VEBO partition count maintained live (default 64).
	Partitions int
	// RebuildThreshold is the Δ(n) above which maintenance runs (default 2).
	RebuildThreshold int64
	// VertexRebuildThreshold is the δ(n) above which maintenance runs
	// (default 4); see internal/dynamic.Config.
	VertexRebuildThreshold int64
	// CompactEvery bounds the delta log before compaction (default:
	// adaptive, max(8192, liveEdges/8)).
	CompactEvery int
	// Repair selects the maintenance strategy (default RepairPreserve).
	Repair RepairMode
	// DisableAdaptiveThreshold pins the Δ(n) gate to RebuildThreshold
	// instead of scaling it with the degree spread; see
	// internal/dynamic.Config.
	DisableAdaptiveThreshold bool
	// AutoGrow admits vertices on demand: an inserted edge whose endpoint
	// is at or beyond the current vertex count grows the vertex space with
	// zero-degree vertices (assigned to the least-loaded partitions)
	// instead of failing the batch. Set it for dense-ID ApplyBatch streams
	// that introduce vertices; sparse external IDs go through IngestBatch
	// instead, which admits unseen vertices itself — the two admission
	// paths cannot be mixed on one Dynamic (see IngestBatch).
	AutoGrow bool
	// MinHeadroom is the floor on the growth headroom reserved at each
	// partition segment's tail whenever an ordering is (re)built while the
	// graph is growing (default 4). Admissions fill these pre-reserved
	// slots, so a growth epoch patches in O(delta); a relabeling epoch only
	// happens when every segment's headroom is exhausted.
	MinHeadroom int64
	// HeadroomFrac is the proportional term of the headroom policy: each
	// segment reserves max(MinHeadroom, frac·occupied) slots (default
	// 0.125). Negative disables the proportional term, leaving the
	// MinHeadroom floor only.
	HeadroomFrac float64
	// DisableSegmentResort turns off the background one-segment-per-batch
	// re-sort that counters intra-segment locality decay under
	// placement-preserving maintenance; see internal/dynamic.Config.
	DisableSegmentResort bool
	// Engine configures the engines cached on published views: the virtual
	// NUMA topology and GraphGrind's COO order. Partition counts and bounds
	// come from the live ordering and are not configurable here.
	Engine EngineOptions
	// DisableViewReuse forces every view to rebuild its relabeled graph and
	// engines from scratch instead of patching them from the previous
	// epoch's. Exists for the engine-build amortization experiment
	// (bench -exp view).
	DisableViewReuse bool
	// TraceCapacity sizes the epoch-lifecycle trace ring (number of retained
	// events; default obs.DefaultTraceCapacity). The tracer and the metrics
	// registry are always on — both are lock-free atomics on the hot paths —
	// and reachable via Metrics, Trace and ObsHandler.
	TraceCapacity int
	// SpanCapacity sizes the causal span ring (number of retained spans;
	// default obs.DefaultSpanCapacity). Spans link each query to the publish
	// span of the epoch it read and each maintenance step to the batch that
	// triggered it; reachable via Spans and exported as Chrome Trace Event
	// JSON on the /spans endpoint of ObsHandler and serve -http.
	SpanCapacity int
}

// Dynamic is a mutable graph whose VEBO ordering is maintained incrementally
// under streaming edge updates. Mutation is single-writer: one goroutine
// calls ApplyBatch (and Compact). Any number of concurrent reader goroutines
// query through View(), which pins an immutable epoch; the writer publishes
// a fresh view after every batch with a lock-free pointer swap. The
// remaining methods (Snapshot, Ordering, Imbalance, Stats) read live state
// and belong to the writer side.
type Dynamic struct {
	inner   *dynamic.Graph
	engOpts EngineOptions
	reuse   bool
	work    *viewWork
	reg     *obs.Registry
	tracer  *obs.Tracer
	spans   *obs.Spans
	cur     atomic.Pointer[View]

	// Writer-side basis tracking (see publish in view.go): the delta
	// accumulated since the current anchor point, the lineage it belongs
	// to, and the materialized view at that point, if any. latestMat is the
	// reader-to-writer channel: the newest view whose relabeled graph was
	// built.
	anchorID    int64
	sinceAnchor dynamic.ViewDelta
	basisView   *View
	latestMat   atomic.Pointer[View]

	// alloc maps external vertex IDs onto the dense internal space; nil
	// until the first IngestBatch call (dense-ID callers never pay for it).
	// Atomic because reader goroutines resolve externals through views
	// (View.Resolve) concurrently with the writer installing it.
	alloc atomic.Pointer[dynamic.Allocator]
}

// NewDynamic wraps g for streaming updates, computing the initial ordering
// and publishing the epoch-0 view.
func NewDynamic(g *Graph, opts DynamicOptions) (*Dynamic, error) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(opts.TraceCapacity)
	spans := obs.NewSpans(opts.SpanCapacity)
	inner, err := dynamic.New(g, dynamic.Config{
		Partitions:               opts.Partitions,
		RebuildThreshold:         opts.RebuildThreshold,
		VertexRebuildThreshold:   opts.VertexRebuildThreshold,
		CompactEvery:             opts.CompactEvery,
		Repair:                   opts.Repair,
		DisableAdaptiveThreshold: opts.DisableAdaptiveThreshold,
		AutoGrow:                 opts.AutoGrow,
		MinHeadroom:              opts.MinHeadroom,
		HeadroomFrac:             opts.HeadroomFrac,
		DisableSegmentResort:     opts.DisableSegmentResort,
		Metrics:                  reg,
		Tracer:                   tracer,
		Spans:                    spans,
	})
	if err != nil {
		return nil, err
	}
	d := &Dynamic{
		inner:   inner,
		engOpts: opts.Engine,
		reuse:   !opts.DisableViewReuse,
		work:    newViewWork(reg, tracer, spans),
		reg:     reg,
		tracer:  tracer,
		spans:   spans,
	}
	d.publish(time.Now())
	return d, nil
}

// MetricsRegistry re-exports the observability registry type; see
// internal/obs and DESIGN.md §6 for the metric vocabulary.
type MetricsRegistry = obs.Registry

// Tracer re-exports the epoch-lifecycle tracer type.
type Tracer = obs.Tracer

// TraceEvent re-exports one structured epoch-lifecycle trace event.
type TraceEvent = obs.Event

// SpanCollector re-exports the causal span ring: completed spans linking
// each query to the publish span of the epoch it read, and each
// maintenance step to the batch that caused it. See internal/obs.Spans.
type SpanCollector = obs.Spans

// SpanEvent re-exports one completed causal span.
type SpanEvent = obs.Span

// Metrics returns the graph's metrics registry: every vebo_* counter, gauge
// and latency histogram the ingest, maintenance, view and query layers emit.
// Safe from any goroutine.
func (d *Dynamic) Metrics() *MetricsRegistry { return d.reg }

// Trace returns the epoch-lifecycle tracer: a bounded ring of structured
// events recording, per epoch, what the pipeline did and why (batch applied,
// threshold tripped, repair vs rotation vs rebuild, growth admission, engine
// patched vs rebuilt). Safe from any goroutine.
func (d *Dynamic) Trace() *Tracer { return d.tracer }

// Spans returns the causal span ring. Every batch, maintenance step,
// publish and query files a span; parent links encode the causality
// (batch → repair/rebuild/grow → publish → query). Safe from any
// goroutine; export via SpanCollector.WriteChromeTrace or the /spans
// endpoint.
func (d *Dynamic) Spans() *SpanCollector { return d.spans }

// ObsHandler returns an http.Handler serving /metrics (Prometheus text),
// /metrics.json, /trace and /spans (Chrome Trace Event JSON) for this
// graph.
func (d *Dynamic) ObsHandler() http.Handler { return obs.Handler(d.reg, d.tracer, d.spans) }

// ApplyBatch applies the updates in order, runs the threshold-gated
// incremental ordering maintenance at the end of the batch, and publishes a
// fresh View of the post-batch epoch. Single-writer.
func (d *Dynamic) ApplyBatch(updates []EdgeUpdate) (DynamicBatchResult, error) {
	received := time.Now()
	res, err := d.inner.ApplyBatch(updates)
	d.publish(received)
	return res, err
}

// ExternalEdgeUpdate is one timestamped edge insertion or deletion whose
// endpoints are arbitrary, application-chosen external vertex IDs (sparse
// 64-bit values). IngestBatch maps them onto the dense internal ID space
// through the graph's allocator, admitting never-before-seen vertices.
type ExternalEdgeUpdate struct {
	Time int64
	Src  uint64
	Dst  uint64
	// Weight is the weight of an inserted edge (0 means 1 on weighted
	// graphs); for deletions a non-zero value selects among parallel edges.
	Weight int32
	// Del selects deletion of one (Src,Dst) edge occurrence.
	Del bool
}

// IngestBatch is the external-ID ingest path: updates may mention vertices
// that have never been seen before. Unseen endpoints of insertions are
// interned — allocated the next dense internal IDs and admitted to the
// graph as zero-degree vertices on the least-loaded partitions — before the
// batch is applied and a fresh View published. Deletions mentioning an
// unknown external ID fail (there is no such edge), stopping the batch like
// any invalid update; updates before the failing one remain applied.
// Single-writer, like ApplyBatch. Views expose the external↔internal
// mapping via View.ExternalIDs, View.External and View.Resolve; algorithm
// result arrays stay indexed by internal ID, whose external key is stable
// across epochs because internal IDs are append-only.
//
// IngestBatch and dense-ID AutoGrow admissions cannot be mixed on one
// Dynamic: a vertex admitted by ApplyBatch has no external ID, so a later
// IngestBatch would hand its internal ID to a fresh external. Once
// external ingest has begun, an IngestBatch that finds such vertices
// returns an error without applying anything.
func (d *Dynamic) IngestBatch(updates []ExternalEdgeUpdate) (DynamicBatchResult, error) {
	received := time.Now()
	alloc := d.alloc.Load()
	if alloc == nil {
		alloc = dynamic.NewAllocator()
		// Vertices that predate external ingest keep their dense IDs as
		// external identity.
		alloc.SeedIdentity(d.inner.NumVertices())
		d.alloc.Store(alloc)
	} else if alloc.Len() < d.inner.NumVertices() {
		return DynamicBatchResult{}, fmt.Errorf(
			"vebo: %d vertices were admitted outside external ingest (dense AutoGrow); IngestBatch and AutoGrow cannot be mixed",
			d.inner.NumVertices()-alloc.Len())
	}
	ups := make([]EdgeUpdate, 0, len(updates))
	var ingestErr error
	for i, u := range updates {
		var src, dst VertexID
		if u.Del {
			var ok bool
			if src, ok = alloc.Lookup(u.Src); ok {
				dst, ok = alloc.Lookup(u.Dst)
			}
			if !ok {
				ingestErr = fmt.Errorf("vebo: ingest update %d: delete of edge (%d,%d) with unknown endpoint", i, u.Src, u.Dst)
				break
			}
		} else {
			src, _ = alloc.Intern(u.Src)
			dst, _ = alloc.Intern(u.Dst)
		}
		ups = append(ups, EdgeUpdate{Time: u.Time, Src: src, Dst: dst, Weight: u.Weight, Del: u.Del})
	}
	// Admit every interned vertex even when a later update failed, keeping
	// the allocator and the graph's vertex space in lockstep.
	admitted := alloc.Len() - d.inner.NumVertices()
	if admitted > 0 {
		d.inner.Grow(admitted)
	}
	res, err := d.inner.ApplyBatch(ups)
	res.Admitted += admitted
	d.publish(received)
	if err == nil {
		err = ingestErr
	}
	return res, err
}

// Snapshot materializes the live graph as an immutable CSR+CSC Graph any of
// the three engines can traverse. Snapshots are cached per mutation epoch
// and never mutated afterwards.
func (d *Dynamic) Snapshot() *Graph { return d.inner.Snapshot() }

// NumVertices reports the current vertex count; IngestBatch and AutoGrow
// admissions raise it.
func (d *Dynamic) NumVertices() int { return d.inner.NumVertices() }

// Imbalance returns the incrementally tracked Δ(n) (edge) and δ(n) (vertex)
// partition imbalances.
func (d *Dynamic) Imbalance() (edge, vertex int64) {
	return d.inner.EdgeImbalance(), d.inner.VertexImbalance()
}

// Ordering returns the current VEBO ordering of the live graph.
func (d *Dynamic) Ordering() *Result { return &Result{inner: d.inner.Ordering()} }

// Stats returns the accumulated maintenance work counters.
func (d *Dynamic) Stats() DynamicStats { return d.inner.Stats() }

// Headroom reports the growth headroom of the current ordering: the number
// of free reserved slots across all partition segments and the total slot
// capacity. Both are 0 until the first admission converts the lineage to a
// slotted ordering (and transiently while an ordering rebuild is pending).
func (d *Dynamic) Headroom() (free, capacity int64) { return d.inner.Headroom() }

// Compact promotes the current snapshot to the new delta-log base.
func (d *Dynamic) Compact() { d.inner.Compact() }

// NewEngine builds the selected framework model over the current view's
// snapshot, reordered with its VEBO ordering and partitioned on its
// boundaries. The engine keeps traversing its epoch even while the dynamic
// graph continues to mutate.
//
// Deprecated: use View().Engine (or the View algorithm methods), which
// additionally caches engines per epoch and patches them incrementally
// across epochs. NewEngine remains as a thin shim for callers that need
// non-default per-call EngineOptions; it reuses the view's cached relabeled
// graph but constructs a fresh engine every call.
func (d *Dynamic) NewEngine(sys System, opts EngineOptions) (Engine, error) {
	v := d.View()
	rg, err := v.Reordered()
	if err != nil {
		return nil, err
	}
	r := v.Ordering()
	if opts.Bounds == nil {
		switch sys {
		case Polymer:
			// Polymer wants one partition per socket.
			opts.Bounds = core.CoarsenBounds(r.Boundaries(), opts.topology().Sockets)
		default:
			opts.Bounds = r.Boundaries()
			if opts.Partitions == 0 {
				opts.Partitions = d.inner.Partitions()
			}
		}
	}
	return NewEngine(sys, rg, opts)
}

// GenerateStream builds the named recipe graph and a derived churn stream of
// ops timestamped edge updates whose deletion rate and attachment skew match
// the recipe's real-world counterpart.
func GenerateStream(recipe string, scale float64, ops int, seed int64) (*Graph, []EdgeUpdate, error) {
	return gen.StreamFromRecipe(recipe, scale, ops, seed)
}

// StreamOptions tunes GenerateStreamOpts beyond the recipe churn profile:
// Mirror for undirected symmetry, GrowFrac for vertex arrivals.
type StreamOptions = gen.RecipeStreamOptions

// GenerateStreamOpts is GenerateStream with extra options. With a non-zero
// GrowFrac the stream interleaves vertex arrivals with the edge churn; feed
// it to a Dynamic configured with AutoGrow (new vertices take dense IDs
// beyond the base graph).
func GenerateStreamOpts(recipe string, scale float64, ops int, seed int64, opts StreamOptions) (*Graph, []EdgeUpdate, error) {
	return gen.StreamFromRecipeOpts(recipe, scale, ops, seed, opts)
}

// Baseline orderings (permutations old ID → new ID), for comparison with
// Reorder.

// OrderRCM computes the Reverse Cuthill-McKee ordering.
func OrderRCM(g *Graph) []VertexID { return order.RCM(g) }

// OrderGorder computes the Gorder ordering with window w (0 = default 5).
func OrderGorder(g *Graph, w int) []VertexID {
	return order.Gorder(g, order.GorderConfig{Window: w})
}

// OrderRandom computes a seeded uniformly random permutation.
func OrderRandom(g *Graph, seed int64) []VertexID { return order.Random(g, seed) }

// OrderDegreeSort orders vertices by decreasing in-degree.
func OrderDegreeSort(g *Graph) []VertexID { return order.DegreeSort(g) }
