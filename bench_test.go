package vebo_test

// One benchmark per paper table/figure (regenerating it at reduced scale via
// the internal/bench harness), plus micro-benchmarks of the core pipeline
// stages and ablation benchmarks for the design choices DESIGN.md §4 calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks write their report to the benchmark log on -v.

import (
	"fmt"
	"io"
	"testing"

	vebo "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphgrind"
	"repro/internal/layout"
	"repro/internal/numa"
	"repro/internal/order"
)

// benchConfig is the reduced-scale configuration used by the per-experiment
// benchmarks; the full-scale runs are done by cmd/bench.
func benchConfig() bench.Config {
	return bench.Config{
		Scale:      0.05,
		Seed:       42,
		Partitions: 48,
		Topology:   numa.Topology{Sockets: 4, ThreadsPerSocket: 2},
		Out:        io.Discard,
	}
}

func benchmarkExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(name, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-table/figure experiment benchmarks (DESIGN.md §3 index).

func BenchmarkFig1PartitionTimes(b *testing.B)       { benchmarkExperiment(b, "fig1") }
func BenchmarkTable1Characterization(b *testing.B)   { benchmarkExperiment(b, "table1") }
func BenchmarkTable3Runtimes(b *testing.B)           { benchmarkExperiment(b, "table3") }
func BenchmarkTable4SparseFrontier(b *testing.B)     { benchmarkExperiment(b, "table4") }
func BenchmarkFig4Microarchitecture(b *testing.B)    { benchmarkExperiment(b, "fig4") }
func BenchmarkFig5RandomPermutation(b *testing.B)    { benchmarkExperiment(b, "fig5") }
func BenchmarkTable5VertexVsEdgeMap(b *testing.B)    { benchmarkExperiment(b, "table5") }
func BenchmarkFig6SpaceFillingCurves(b *testing.B)   { benchmarkExperiment(b, "fig6") }
func BenchmarkTable6ReorderingOverhead(b *testing.B) { benchmarkExperiment(b, "table6") }

// Micro-benchmarks of the pipeline stages.

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		N: 50_000, S: 1.0, MaxDegree: 1000, ZeroInFrac: 0.14,
		SourceSkew: 0.6, IDCorrelation: 0.5, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkVEBOReorder(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Reorder(g, 384, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumVertices()), "vertices")
}

func BenchmarkRCMReorder(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order.RCM(g)
	}
}

func BenchmarkGorderReorder(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order.Gorder(g, order.GorderConfig{MaxSiblingDegree: 64})
	}
}

func BenchmarkApplyPermutation(b *testing.B) {
	g := benchGraph(b)
	r, err := core.Reorder(g, 384, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Apply(g, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHilbertCOOBuild(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Build(g, layout.HilbertOrder); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSRCOOBuild(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Build(g, layout.CSROrder); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankIteration(b *testing.B) {
	g := benchGraph(b)
	for _, sys := range []vebo.System{vebo.Ligra, vebo.Polymer, vebo.GraphGrind} {
		b.Run(sys.String(), func(b *testing.B) {
			eng, err := vebo.NewEngine(sys, g, vebo.EngineOptions{Partitions: 384})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vebo.PageRank(eng, 1)
			}
			b.ReportMetric(float64(g.NumEdges())/float64(b.Elapsed().Seconds())*float64(b.N)/1e6, "Medges/s")
		})
	}
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b)
	eng, err := vebo.NewEngine(vebo.GraphGrind, g, vebo.EngineOptions{Partitions: 384})
	if err != nil {
		b.Fatal(err)
	}
	root := pickHighDegree(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vebo.BFS(eng, root)
	}
}

func pickHighDegree(g *graph.Graph) graph.VertexID {
	var best graph.VertexID
	var bd int64 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > bd {
			bd = d
			best = graph.VertexID(v)
		}
	}
	return best
}

// Ablation benchmarks (DESIGN.md §4).

// Ablation 1: min-heap vs linear arg-min in VEBO's greedy phases.
func BenchmarkAblationArgMin(b *testing.B) {
	g := benchGraph(b)
	degrees := g.InDegrees()
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"heap", core.Options{}},
		{"linear", core.Options{LinearArgMin: true}},
	} {
		for _, p := range []int{48, 384, 3072} {
			b.Run(fmt.Sprintf("%s/P=%d", tc.name, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.ReorderDegrees(degrees, p, tc.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Ablation 2: degree-block locality refinement on/off (cost of the extra
// pass; balance is identical by construction).
func BenchmarkAblationLocalityBlocks(b *testing.B) {
	g := benchGraph(b)
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"blocks", core.Options{}},
		{"plain", core.Options{DisableLocalityBlocks: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Reorder(g, 384, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 3: GraphGrind partition count sweep (the GraphGrind paper
// recommends 384; the crossover between scheduling overhead and balance).
func BenchmarkAblationPartitionCount(b *testing.B) {
	g := benchGraph(b)
	for _, p := range []int{48, 96, 192, 384, 768} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			eng, err := graphgrind.New(g, graphgrind.Config{
				Engine:     engine.Config{Topology: numa.Default()},
				Partitions: p,
				Order:      layout.CSROrder,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var makespan int64
			for i := 0; i < b.N; i++ {
				eng.Metrics().Reset()
				vebo.PageRank(eng, 1)
				makespan = eng.Metrics().ModelTime
			}
			b.ReportMetric(float64(makespan), "model-units")
		})
	}
}

// Ablation 4: Hilbert vs CSR COO order under the GraphGrind dense traversal.
func BenchmarkAblationCOOOrder(b *testing.B) {
	g := benchGraph(b)
	for _, o := range []layout.Order{layout.CSROrder, layout.HilbertOrder} {
		b.Run(o.String(), func(b *testing.B) {
			eng, err := graphgrind.New(g, graphgrind.Config{
				Engine:     engine.Config{Topology: numa.Default()},
				Partitions: 384,
				Order:      o,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vebo.PageRank(eng, 1)
			}
		})
	}
}

// Ablation 5: direction-optimization sensitivity — force all-sparse vs
// adaptive by exercising EdgeMap at different frontier densities.
func BenchmarkAblationFrontierDensity(b *testing.B) {
	g := benchGraph(b)
	eng, err := vebo.NewEngine(vebo.Ligra, g, vebo.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	kernel := engine.EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { return false },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { return false },
	}
	for _, frac := range []int{1000, 100, 10, 1} {
		b.Run(fmt.Sprintf("active=1/%d", frac), func(b *testing.B) {
			var vs []graph.VertexID
			for v := 0; v < g.NumVertices(); v += frac {
				vs = append(vs, graph.VertexID(v))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := frontier.FromVertices(g, vs)
				eng.EdgeMap(f, kernel)
			}
		})
	}
}
