package vebo

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestViewPatchedAcrossGrowthEpochs is the growth acceptance property: a
// stream interleaving vertex arrivals with edge churn is replayed through
// two facades — engine reuse on (views patch across repair AND growth
// epochs) versus DisableViewReuse (every view rebuilds from scratch) — and
// BFS, CC and BellmanFord must agree exactly on every epoch for all three
// framework models, across at least three epochs that each admit vertices.
func TestViewPatchedAcrossGrowthEpochs(t *testing.T) {
	g, updates, err := GenerateStreamOpts("powerlaw", 0.03, 4000, 7, StreamOptions{GrowFrac: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	opts := DynamicOptions{Partitions: 64, AutoGrow: true, Engine: viewTestOpts}
	scratchOpts := opts
	scratchOpts.DisableViewReuse = true
	dp, err := NewDynamic(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamic(g, scratchOpts)
	if err != nil {
		t.Fatal(err)
	}

	const batch = 64
	growthEpochs := 0
	n := g.NumVertices()
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		rp, err := dp.ApplyBatch(updates[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ds.ApplyBatch(updates[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if rp.Admitted != rs.Admitted {
			t.Fatalf("admission skew: %d vs %d", rp.Admitted, rs.Admitted)
		}
		if rp.Admitted > 0 {
			growthEpochs++
		}
		vp, vs := dp.View(), ds.View()
		if vp.NumVertices() != vs.NumVertices() {
			t.Fatalf("vertex count skew: %d vs %d", vp.NumVertices(), vs.NumVertices())
		}
		// Root from the batch so traversals reach fresh structure; results
		// are indexed by original ID, so arrays extend epoch over epoch.
		root := VertexID(int(updates[lo].Dst) % n)
		for _, sys := range []System{Ligra, Polymer, GraphGrind} {
			cp, err := vp.CC(sys)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := vs.CC(sys)
			if err != nil {
				t.Fatal(err)
			}
			if len(cp) != vp.NumVertices() {
				t.Fatalf("CC result length %d != n %d", len(cp), vp.NumVertices())
			}
			for i := range cp {
				if cp[i] != cs[i] {
					t.Fatalf("epoch %d %v: patched CC diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, cp[i], cs[i])
				}
			}
			bp, err := vp.BellmanFord(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			bs, err := vs.BellmanFord(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			for i := range bp {
				if bp[i] != bs[i] {
					t.Fatalf("epoch %d %v: patched BellmanFord diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, bp[i], bs[i])
				}
			}
			pp, err := vp.BFS(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := vs.BFS(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			lp, ls := bfsLevels(t, pp, root), bfsLevels(t, ps, root)
			for i := range lp {
				if lp[i] != ls[i] {
					t.Fatalf("epoch %d %v: patched BFS level diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, lp[i], ls[i])
				}
			}
		}
	}

	if growthEpochs < 3 {
		t.Fatalf("only %d growth epochs; the property was not exercised", growthEpochs)
	}
	if dp.NumVertices() == n {
		t.Fatal("stream admitted no vertices")
	}
	work := dp.ViewWork()
	if work.GraphPatches == 0 || work.EnginePatches == 0 {
		t.Fatalf("growth run never patched: %+v", work)
	}
	sw := ds.ViewWork()
	if work.RebuildEdges+work.PatchedEdges+work.RelabeledEdges >= sw.RebuildEdges {
		t.Fatalf("patching across growth epochs saved no work: %d+%d+%d vs %d",
			work.RebuildEdges, work.PatchedEdges, work.RelabeledEdges, sw.RebuildEdges)
	}
}

// TestViewSnapshotPatchedAcrossGrowth checks the identity-ordering snapshot
// patch path over a growing vertex space: a patched snapshot equals the
// scratch materialization at every epoch.
func TestViewSnapshotPatchedAcrossGrowth(t *testing.T) {
	g, updates, err := GenerateStreamOpts("powerlaw", 0.03, 2000, 29, StreamOptions{GrowFrac: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDynamic(g, DynamicOptions{Partitions: 32, AutoGrow: true, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 128
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := dp.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		v := dp.View()
		snap := v.Snapshot()
		if snap.NumVertices() != v.NumVertices() {
			t.Fatalf("snapshot has %d vertices, view %d", snap.NumVertices(), v.NumVertices())
		}
		want, err := FromEdges(v.NumVertices(), snap.Edges(), snap.Weighted())
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(snap, want) {
			t.Fatalf("epoch %d: patched snapshot is not canonical", v.Epoch())
		}
	}
	if dp.ViewWork().GraphPatches == 0 {
		t.Fatal("snapshot never took the patch path")
	}
}

// TestIngestBatchExternalIDs drives the external-ID ingest path: sparse
// 64-bit IDs are interned onto dense internal IDs, unseen vertices are
// admitted, views expose the mapping, and results keep their external
// keying across growth epochs.
func TestIngestBatchExternalIDs(t *testing.T) {
	g, err := Generate("powerlaw", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(g.NumVertices())
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	// Sparse externals far outside the dense range.
	extA, extB := uint64(1)<<40+17, uint64(1)<<50+99
	res, err := d.IngestBatch([]ExternalEdgeUpdate{
		{Src: extA, Dst: 3},    // new source, existing (identity) destination
		{Src: 3, Dst: extB},    // new destination
		{Src: extA, Dst: extB}, // both already interned now
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 2 {
		t.Fatalf("admitted %d, want 2", res.Admitted)
	}
	v := d.View()
	if v.NumVertices() != int(n)+2 {
		t.Fatalf("view has %d vertices, want %d", v.NumVertices(), n+2)
	}
	ia, ok := v.Resolve(extA)
	if !ok || uint64(ia) != n {
		t.Fatalf("Resolve(%d)=%d,%v want %d", extA, ia, ok, n)
	}
	ib, ok := v.Resolve(extB)
	if !ok || uint64(ib) != n+1 {
		t.Fatalf("Resolve(%d)=%d,%v want %d", extB, ib, ok, n+1)
	}
	if ext, ok := v.External(ia); !ok || ext != extA {
		t.Fatalf("External(%d)=%d,%v want %d", ia, ext, ok, extA)
	}
	if ext, ok := v.External(2); !ok || ext != 2 {
		t.Fatalf("identity seed broken: External(2)=%d,%v", ext, ok)
	}
	exts := v.ExternalIDs()
	if len(exts) != v.NumVertices() || exts[ia] != extA || exts[ib] != extB {
		t.Fatalf("ExternalIDs table wrong: len=%d", len(exts))
	}
	// The graph actually contains the ingested edges.
	snap := v.Snapshot()
	if !snap.HasEdge(ia, 3) || !snap.HasEdge(3, ib) || !snap.HasEdge(ia, ib) {
		t.Fatal("ingested edges missing from snapshot")
	}
	// Deletion through externals; unknown externals fail without admitting.
	if _, err := d.IngestBatch([]ExternalEdgeUpdate{{Src: extA, Dst: 3, Del: true}}); err != nil {
		t.Fatal(err)
	}
	if d.View().Snapshot().HasEdge(ia, 3) {
		t.Fatal("external deletion did not land")
	}
	nBefore := d.NumVertices()
	if _, err := d.IngestBatch([]ExternalEdgeUpdate{{Src: 1 << 60, Dst: 3, Del: true}}); err == nil {
		t.Fatal("expected error deleting through an unknown external")
	}
	if d.NumVertices() != nBefore {
		t.Fatalf("failed deletion admitted vertices: %d -> %d", nBefore, d.NumVertices())
	}
	// Algorithm results stay keyed position-for-position: a vertex's CC
	// label index equals its internal ID, whose external key never moves.
	labels, err := d.View().CC(GraphGrind)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != d.NumVertices() {
		t.Fatalf("CC length %d != n %d", len(labels), d.NumVertices())
	}
	// extB is reachable from vertex 3 (edge 3→extB survives), so label
	// propagation pulls it into 3's component.
	if labels[ib] != labels[3] {
		t.Fatalf("reachable external in a different component: %d vs %d", labels[ib], labels[3])
	}
	// An old view keeps its shorter epoch: Resolve of a later-interned
	// external must fail on it.
	old := d.View()
	if _, err := d.IngestBatch([]ExternalEdgeUpdate{{Src: 1<<45 + 5, Dst: extA}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := old.Resolve(1<<45 + 5); ok {
		t.Fatal("old view resolved an external interned after its epoch")
	}
	if _, ok := d.View().Resolve(1<<45 + 5); !ok {
		t.Fatal("new view cannot resolve the fresh external")
	}
}

// TestIngestBatchRejectsMixedAdmission pins the admission-path exclusivity:
// a vertex admitted by dense AutoGrow has no external ID, so a later
// IngestBatch must refuse rather than hand its internal ID to a fresh
// external.
func TestIngestBatchRejectsMixedAdmission(t *testing.T) {
	g, err := Generate("powerlaw", 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16, AutoGrow: true, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.IngestBatch([]ExternalEdgeUpdate{{Src: 1 << 40, Dst: 0}}); err != nil {
		t.Fatalf("first ingest should succeed: %v", err)
	}
	n := graph.VertexID(d.NumVertices())
	if _, err := d.ApplyBatch([]EdgeUpdate{{Src: n, Dst: 0}}); err != nil {
		t.Fatalf("dense AutoGrow admission failed: %v", err)
	}
	if _, err := d.IngestBatch([]ExternalEdgeUpdate{{Src: 1 << 41, Dst: 0}}); err == nil {
		t.Fatal("expected mixed-admission error")
	}
}

// TestIngestBatchConcurrentResolve races reader-side Resolve/External
// against writer-side external ingest (meaningful under -race): views
// published before the first IngestBatch must answer safely while the
// allocator is being installed and grown.
func TestIngestBatchConcurrentResolve(t *testing.T) {
	g, err := Generate("powerlaw", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	pre := d.View() // predates the allocator
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-done:
					return
				default:
				}
				ext := 1<<42 + i%200
				if id, ok := pre.Resolve(ext); ok && int(id) >= pre.NumVertices() {
					t.Errorf("pre-ingest view resolved %d to out-of-epoch id %d", ext, id)
					return
				}
				v := d.View()
				if id, ok := v.Resolve(ext); ok {
					if back, ok2 := v.External(id); !ok2 || back != ext {
						t.Errorf("round trip broke for %d", ext)
						return
					}
				}
			}
		}()
	}
	for i := uint64(0); i < 200; i++ {
		if _, err := d.IngestBatch([]ExternalEdgeUpdate{{Src: 1<<42 + i, Dst: i % 100}}); err != nil {
			t.Error(err)
			break
		}
	}
	close(done)
	wg.Wait()
}

// TestGrowthEpochSkipsRelabel pins the O(delta) growth regression: with
// maintenance moves disabled, every admission after the lineage's first
// (which converts the compact ordering to a slotted one and rebuilds from
// scratch) lands in reserved headroom, so the old→new injection is the
// identity outside grown segments and no partition may ever take the
// relabel (remap) path — unshifted partitions are reused outright, only
// dirty ones rebuilt.
func TestGrowthEpochSkipsRelabel(t *testing.T) {
	g, updates, err := GenerateStreamOpts("powerlaw", 0.03, 1500, 13, StreamOptions{GrowFrac: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{
		Partitions: 32, AutoGrow: true, Engine: viewTestOpts,
		RebuildThreshold: 1 << 40, VertexRebuildThreshold: 1 << 40,
		DisableAdaptiveThreshold: true, DisableSegmentResort: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 128
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		// Materialize the epoch's engine so the patch-vs-rebuild decision is
		// actually exercised, not just recorded lazily.
		if _, err := d.View().CC(GraphGrind); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().Admitted == 0 {
		t.Fatal("stream admitted no vertices")
	}
	if _, capacity := d.Headroom(); capacity == 0 {
		t.Fatal("lineage never became slotted")
	}
	work := d.ViewWork()
	if work.EnginePatches == 0 || work.PartitionsReused == 0 {
		t.Fatalf("growth epochs never took the patched path: %+v", work)
	}
	if work.PartitionsRelabeled != 0 || work.RelabeledEdges != 0 {
		t.Fatalf("identity-outside-growth violated: %d partitions / %d edges relabeled",
			work.PartitionsRelabeled, work.RelabeledEdges)
	}
}

// TestViewPatchedAcrossHeadroomSpills forces headroom exhaustion mid-stream
// (one reserved slot per partition, no proportional term) and checks that
// patched and scratch-built views still agree on BFS, CC and BellmanFord for
// all three framework models across the spill boundaries.
func TestViewPatchedAcrossHeadroomSpills(t *testing.T) {
	g, updates, err := GenerateStreamOpts("powerlaw", 0.02, 1500, 19, StreamOptions{GrowFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	opts := DynamicOptions{
		Partitions: 16, AutoGrow: true, Engine: viewTestOpts,
		MinHeadroom: 1, HeadroomFrac: -1,
	}
	scratchOpts := opts
	scratchOpts.DisableViewReuse = true
	dp, err := NewDynamic(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamic(g, scratchOpts)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	growthEpochs := 0
	n := g.NumVertices()
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		rp, err := dp.ApplyBatch(updates[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if rp.Admitted > 0 {
			growthEpochs++
		}
		vp, vs := dp.View(), ds.View()
		root := VertexID(int(updates[lo].Dst) % n)
		for _, sys := range []System{Ligra, Polymer, GraphGrind} {
			cp, err := vp.CC(sys)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := vs.CC(sys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cp {
				if cp[i] != cs[i] {
					t.Fatalf("epoch %d %v: patched CC diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, cp[i], cs[i])
				}
			}
			bp, err := vp.BellmanFord(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			bs, err := vs.BellmanFord(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			for i := range bp {
				if bp[i] != bs[i] {
					t.Fatalf("epoch %d %v: patched BellmanFord diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, bp[i], bs[i])
				}
			}
			pp, err := vp.BFS(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := vs.BFS(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			lp, ls := bfsLevels(t, pp, root), bfsLevels(t, ps, root)
			for i := range lp {
				if lp[i] != ls[i] {
					t.Fatalf("epoch %d %v: patched BFS level diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, lp[i], ls[i])
				}
			}
		}
	}
	if growthEpochs < 3 {
		t.Fatalf("only %d growth epochs; the property was not exercised", growthEpochs)
	}
	if st := dp.Stats(); st.HeadroomSpills == 0 {
		t.Fatalf("minimal headroom never spilled (admitted %d): %+v", st.Admitted, st)
	}
}
