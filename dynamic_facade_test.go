package vebo

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestDynamicFacadePipeline exercises the streaming facade end to end:
// generate a recipe graph plus churn stream, apply it in batches, and check
// the tracked imbalance and snapshot bookkeeping.
func TestDynamicFacadePipeline(t *testing.T) {
	g, updates, err := GenerateStream("powerlaw", 0.05, 5000, 21)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 32})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 500
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatalf("ApplyBatch(%d:%d): %v", lo, hi, err)
		}
	}
	edge, vert := d.Imbalance()
	if edge < 0 || vert < 0 {
		t.Fatalf("negative imbalance Δ=%d δ=%d", edge, vert)
	}
	r := d.Ordering()
	if r.EdgeImbalance() != edge || r.VertexImbalance() != vert {
		t.Fatalf("Ordering imbalances (%d,%d) disagree with Imbalance (%d,%d)",
			r.EdgeImbalance(), r.VertexImbalance(), edge, vert)
	}
	st := d.Stats()
	if st.Updates != int64(len(updates)) {
		t.Fatalf("stats recorded %d updates, want %d", st.Updates, len(updates))
	}
}

// TestDynamicEnginesMatchFreshGraph is the acceptance check that all three
// engines produce identical algorithm results on a post-stream snapshot and
// on a freshly built equivalent graph.
func TestDynamicEnginesMatchFreshGraph(t *testing.T) {
	g, updates, err := GenerateStream("powerlaw", 0.04, 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(updates); err != nil {
		t.Fatal(err)
	}

	snap := d.Snapshot()
	fresh, err := FromEdges(snap.NumVertices(), snap.Edges(), snap.Weighted())
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(snap, fresh) {
		t.Fatal("snapshot and freshly built graph differ structurally")
	}

	opts := EngineOptions{Sockets: 2, ThreadsPerSocket: 2, Partitions: 32}
	for _, sys := range []System{Ligra, Polymer, GraphGrind} {
		// Engine over the dynamic view (reordered snapshot, live bounds),
		// via the deprecated shim this test exists to cover.
		//lint:ignore SA1019 the shim's compatibility contract is under test
		de, err := d.NewEngine(sys, opts)
		if err != nil {
			t.Fatalf("%v: dynamic engine: %v", sys, err)
		}
		// The same construction over the freshly built graph.
		r := d.Ordering()
		rg, err := r.Apply(fresh)
		if err != nil {
			t.Fatal(err)
		}
		fopts := opts
		switch sys {
		case Polymer:
			fopts.Bounds = core.CoarsenBounds(r.Boundaries(), 2)
		default:
			fopts.Bounds = r.Boundaries()
		}
		fe, err := NewEngine(sys, rg, fopts)
		if err != nil {
			t.Fatalf("%v: fresh engine: %v", sys, err)
		}

		// PageRank runs dense-only (the frontier is All every iteration), so
		// per-destination accumulation order — and hence the float output —
		// is deterministic for structurally equal graphs. CC converges to
		// the unique min-label fixpoint regardless of update order.
		dr := PageRank(de, 5)
		fr := PageRank(fe, 5)
		for i := range dr {
			if dr[i] != fr[i] {
				t.Fatalf("%v: PageRank diverges at vertex %d: %v vs %v", sys, i, dr[i], fr[i])
			}
		}
		dc := CC(de)
		fc := CC(fe)
		for i := range dc {
			if dc[i] != fc[i] {
				t.Fatalf("%v: CC diverges at vertex %d: %d vs %d", sys, i, dc[i], fc[i])
			}
		}
	}
}
