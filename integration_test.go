package vebo

// Integration matrix: the full paper pipeline — generate → reorder →
// partition → process — across every workload recipe, every framework model
// and every algorithm, at tiny scale. Complements the per-package unit
// tests by exercising the exact compositions the benchmark harness uses.

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestPipelineAllRecipesAllSystems(t *testing.T) {
	for _, recipe := range gen.Recipes() {
		recipe := recipe
		t.Run(recipe.Name, func(t *testing.T) {
			g, err := recipe.Build(0.02, 5)
			if err != nil {
				t.Fatal(err)
			}
			const P = 24
			res, err := Reorder(g, P)
			if err != nil {
				t.Fatal(err)
			}
			rg, err := res.Apply(g)
			if err != nil {
				t.Fatal(err)
			}
			if !graph.IsIsomorphicUnder(g, rg, res.Perm()) {
				t.Fatal("reordered graph not isomorphic")
			}
			// balance sanity: never worse than a couple of max-degree units
			if res.VertexImbalance() > 2 {
				t.Errorf("δ(n) = %d", res.VertexImbalance())
			}

			root := res.Perm()[0]
			want := algorithms.RefBFSDepths(rg, root)
			wantPR := algorithms.RefPageRank(rg, 3)
			for _, sys := range []System{Ligra, Polymer, GraphGrind} {
				opts := EngineOptions{Sockets: 2, ThreadsPerSocket: 2, Partitions: P}
				if sys == GraphGrind {
					opts.Bounds = res.Boundaries()
				}
				eng, err := NewEngine(sys, rg, opts)
				if err != nil {
					t.Fatalf("%v: %v", sys, err)
				}
				got := algorithms.Depths(BFS(eng, root), root)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%v: BFS depth mismatch at %d: %d vs %d", sys, v, got[v], want[v])
					}
				}
				pr := PageRank(eng, 3)
				for v := range wantPR {
					if math.Abs(pr[v]-wantPR[v]) > 1e-9*math.Max(1, math.Abs(wantPR[v])) {
						t.Fatalf("%v: PR mismatch at %d", sys, v)
					}
				}
				// engine accounting sanity: model time accumulated and
				// resettable
				if eng.Metrics().ModelTime <= 0 {
					t.Fatalf("%v: no model time accumulated", sys)
				}
				eng.Metrics().Reset()
				if eng.Metrics().ModelTime != 0 {
					t.Fatalf("%v: reset failed", sys)
				}
			}
		})
	}
}

func TestPipelineAllAlgorithmsAgreeAcrossEngines(t *testing.T) {
	g, err := Generate("livejournal", 0.03, 8)
	if err != nil {
		t.Fatal(err)
	}
	gt := g.Transpose()
	opts := EngineOptions{Sockets: 2, ThreadsPerSocket: 2, Partitions: 16}
	type enginePair struct{ fwd, bwd Engine }
	pairs := map[string]enginePair{}
	for _, sys := range []System{Ligra, Polymer, GraphGrind} {
		fwd, err := NewEngine(sys, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		bwd, err := NewEngine(sys, gt, opts)
		if err != nil {
			t.Fatal(err)
		}
		pairs[sys.String()] = enginePair{fwd, bwd}
	}
	root := VertexID(1)
	x := make([]float64, g.NumVertices())
	prior := make([]float64, g.NumVertices())
	for i := range x {
		x[i] = float64(i%5) + 1
		prior[i] = 0.01 * float64(i%11)
	}

	type result struct {
		bfs  []int32
		cc   []uint32
		bf   []int64
		spmv []float64
		bc   []float64
		prd  []float64
		bp   []float64
	}
	results := map[string]result{}
	for name, p := range pairs {
		results[name] = result{
			bfs:  algorithms.Depths(BFS(p.fwd, root), root),
			cc:   CC(p.fwd),
			bf:   BellmanFord(p.fwd, root),
			spmv: SPMV(p.fwd, x),
			bc:   BC(p.fwd, p.bwd, root),
			prd:  PageRankDelta(p.fwd, 8, 1e-4),
			bp:   BP(p.fwd, 4, prior),
		}
	}
	ref := results["ligra"]
	for name, r := range results {
		for v := 0; v < g.NumVertices(); v++ {
			if r.bfs[v] != ref.bfs[v] {
				t.Fatalf("%s: BFS differs at %d", name, v)
			}
			if r.cc[v] != ref.cc[v] {
				t.Fatalf("%s: CC differs at %d", name, v)
			}
			if r.bf[v] != ref.bf[v] {
				t.Fatalf("%s: BF differs at %d", name, v)
			}
			for fname, pair := range map[string][2]float64{
				"SPMV": {r.spmv[v], ref.spmv[v]},
				"BC":   {r.bc[v], ref.bc[v]},
				"PRD":  {r.prd[v], ref.prd[v]},
				"BP":   {r.bp[v], ref.bp[v]},
			} {
				if math.Abs(pair[0]-pair[1]) > 1e-8*math.Max(1, math.Abs(pair[1])) {
					t.Fatalf("%s: %s differs at %d: %g vs %g", name, fname, v, pair[0], pair[1])
				}
			}
		}
	}
}
