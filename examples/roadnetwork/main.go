// Roadnetwork demonstrates the paper's negative result (Section V-B): on a
// road network — near-uniform degrees and strong spatial locality in the
// original numbering — VEBO's degree-driven reordering cannot improve load
// balance (it is already balanced) and breaks the locality instead. The
// example runs single-source shortest paths (Bellman-Ford) and compares the
// mean vertex-ID gap across edges, a direct locality measure, plus modeled
// runtimes.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"
	"math"

	vebo "repro"
)

func main() {
	g, err := vebo.Generate("usaroad", 1.0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d vertices, %d edges, max degree %d (near-uniform)\n",
		g.NumVertices(), g.NumEdges(), g.MaxInDegree())

	const partitions = 192
	res, err := vebo.Reorder(g, partitions)
	if err != nil {
		log.Fatal(err)
	}
	rg, err := res.Apply(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VEBO balance: Δ(n)=%d δ(n)=%d — already near-perfect before reordering\n",
		res.EdgeImbalance(), res.VertexImbalance())
	fmt.Printf("mean |src-dst| ID gap: original %.1f vs VEBO %.1f (locality destroyed)\n",
		meanGap(g), meanGap(rg))

	origEng, err := vebo.NewEngine(vebo.GraphGrind, g, vebo.EngineOptions{Partitions: partitions})
	if err != nil {
		log.Fatal(err)
	}
	veboEng, err := vebo.NewEngine(vebo.GraphGrind, rg, vebo.EngineOptions{
		Partitions: partitions, Bounds: res.Boundaries(),
	})
	if err != nil {
		log.Fatal(err)
	}
	d1 := vebo.BellmanFord(origEng, 0)
	d2 := vebo.BellmanFord(veboEng, res.Perm()[0])
	// distances must agree through the permutation
	for v := range d1 {
		if d1[v] != d2[res.Perm()[v]] {
			log.Fatalf("distance mismatch at vertex %d", v)
		}
	}
	fmt.Printf("Bellman-Ford modeled time: original %d vs VEBO %d cost units\n",
		origEng.Metrics().ModelTime, veboEng.Metrics().ModelTime)
	fmt.Println("(the paper reports the same pattern: road networks do not profit from VEBO,")
	fmt.Println(" with connected components as the curious exception)")
}

func meanGap(g *vebo.Graph) float64 {
	var sum float64
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.OutNeighbors(vebo.VertexID(v)) {
			sum += math.Abs(float64(int64(v) - int64(w)))
		}
	}
	return sum / float64(g.NumEdges())
}
