// Frameworks runs the same BFS and connected-components computation on all
// three framework models (Ligra-, Polymer- and GraphGrind-style) with and
// without VEBO, and compares the modeled execution times — a miniature of
// the paper's Table III demonstrating that statically scheduled systems
// benefit most from load balancing.
//
//	go run ./examples/frameworks
package main

import (
	"fmt"
	"log"

	vebo "repro"
)

func main() {
	g, err := vebo.Generate("livejournal", 0.1, 11)
	if err != nil {
		log.Fatal(err)
	}
	const partitions = 192
	res, err := vebo.Reorder(g, partitions)
	if err != nil {
		log.Fatal(err)
	}
	rg, err := res.Apply(g)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the highest-out-degree vertex as BFS root; map it through the
	// permutation for the reordered run.
	var root vebo.VertexID
	var best int64 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(vebo.VertexID(v)); d > best {
			best = d
			root = vebo.VertexID(v)
		}
	}

	fmt.Printf("%-12s %-6s %14s %14s %9s\n", "system", "algo", "original", "vebo", "speedup")
	for _, sys := range []vebo.System{vebo.Ligra, vebo.Polymer, vebo.GraphGrind} {
		origEng, err := vebo.NewEngine(sys, g, vebo.EngineOptions{Partitions: partitions})
		if err != nil {
			log.Fatal(err)
		}
		veboEng, err := vebo.NewEngine(sys, rg, vebo.EngineOptions{
			Partitions: partitions, Bounds: boundsFor(sys, res),
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, algo := range []string{"BFS", "CC"} {
			origEng.Metrics().Reset()
			veboEng.Metrics().Reset()
			switch algo {
			case "BFS":
				vebo.BFS(origEng, root)
				vebo.BFS(veboEng, res.Perm()[root])
			case "CC":
				vebo.CC(origEng)
				vebo.CC(veboEng)
			}
			to := origEng.Metrics().ModelTime
			tv := veboEng.Metrics().ModelTime
			fmt.Printf("%-12s %-6s %14d %14d %8.2fx\n",
				sys, algo, to, tv, float64(to)/float64(tv))
		}
	}
	fmt.Println("\n(times are modeled cost units; see DESIGN.md on the timing substitution)")
}

// boundsFor adapts VEBO's fine boundaries to each system: Polymer needs one
// partition per socket, GraphGrind the full set, Ligra none.
func boundsFor(sys vebo.System, res interface{ Boundaries() []int64 }) []int64 {
	switch sys {
	case vebo.GraphGrind:
		return res.Boundaries()
	case vebo.Polymer:
		fine := res.Boundaries()
		nf := len(fine) - 1
		const sockets = 4
		out := make([]int64, sockets+1)
		for i := 0; i <= sockets; i++ {
			out[i] = fine[i*nf/sockets]
		}
		out[sockets] = fine[nf]
		return out
	default:
		return nil
	}
}
