// Quickstart: generate a scale-free graph, reorder it with VEBO, and run
// PageRank on the GraphGrind-style engine with VEBO's own partition
// boundaries. Prints the achieved balance and the top-ranked vertices.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	vebo "repro"
)

func main() {
	// A twitter-like power-law graph at 1/10 scale (~10k vertices).
	g, err := vebo.Generate("twitter", 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, max in-degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxInDegree())

	// VEBO: balance in-edges and destination vertices over 384 partitions.
	const partitions = 384
	res, err := vebo.Reorder(g, partitions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VEBO over %d partitions: edge imbalance Δ(n)=%d, vertex imbalance δ(n)=%d\n",
		partitions, res.EdgeImbalance(), res.VertexImbalance())

	rg, err := res.Apply(g)
	if err != nil {
		log.Fatal(err)
	}

	// Process on the GraphGrind model using VEBO's partition boundaries.
	eng, err := vebo.NewEngine(vebo.GraphGrind, rg, vebo.EngineOptions{
		Partitions: partitions,
		Bounds:     res.Boundaries(),
	})
	if err != nil {
		log.Fatal(err)
	}
	ranks := vebo.PageRank(eng, 10)

	// Show the five highest-ranked vertices in ORIGINAL IDs: new ID
	// res.Perm()[v] holds old vertex v's rank.
	perm := res.Perm()
	type rv struct {
		old  int
		rank float64
	}
	top := make([]rv, g.NumVertices())
	for old := range top {
		top[old] = rv{old, ranks[perm[old]]}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top PageRank vertices (original IDs):")
	for _, t := range top[:5] {
		fmt.Printf("  vertex %6d  rank %.6f  in-degree %d\n",
			t.old, t.rank, g.InDegree(vebo.VertexID(t.old)))
	}
}
