// Loadbalance reproduces the paper's motivating observation (Section II /
// Figure 1) end to end: partition a skewed graph with the standard
// edge-balancing heuristic (Algorithm 1) and show that, although edge counts
// are balanced, the number of destination vertices per partition — and hence
// processing time — varies wildly; then show VEBO collapsing the variation.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	vebo "repro"
)

func main() {
	g, err := vebo.Generate("twitter", 0.1, 7)
	if err != nil {
		log.Fatal(err)
	}
	const partitions = 128

	fmt.Println("standard edge-balanced partitioning (Algorithm 1) on the original order:")
	report(g, nil, partitions)

	res, err := vebo.Reorder(g, partitions)
	if err != nil {
		log.Fatal(err)
	}
	rg, err := res.Apply(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nVEBO reordering + its own partition boundaries:")
	report(rg, res.Boundaries(), partitions)
}

// report partitions g (by Algorithm 1 when bounds is nil, else by the given
// boundaries) and prints the per-partition edge and vertex spread.
func report(g *vebo.Graph, bounds []int64, partitions int) {
	edges := make([]int64, 0, partitions)
	verts := make([]int64, 0, partitions)
	if bounds == nil {
		// Algorithm 1: greedy chunks of ~|E|/P in-edges.
		avg := g.NumEdges() / int64(partitions)
		var e, v int64
		for d := 0; d < g.NumVertices(); d++ {
			if e >= avg && avg > 0 && len(edges) < partitions-1 {
				edges = append(edges, e)
				verts = append(verts, v)
				e, v = 0, 0
			}
			e += g.InDegree(vebo.VertexID(d))
			v++
		}
		edges = append(edges, e)
		verts = append(verts, v)
	} else {
		for i := 0; i+1 < len(bounds); i++ {
			var e int64
			for d := bounds[i]; d < bounds[i+1]; d++ {
				e += g.InDegree(vebo.VertexID(d))
			}
			edges = append(edges, e)
			verts = append(verts, bounds[i+1]-bounds[i])
		}
	}
	eMin, eMax := minMax(edges)
	vMin, vMax := minMax(verts)
	fmt.Printf("  %d partitions: edges [%d..%d] (spread %d), vertices [%d..%d] (spread %d)\n",
		len(edges), eMin, eMax, eMax-eMin, vMin, vMax, vMax-vMin)
}

func minMax(xs []int64) (lo, hi int64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
