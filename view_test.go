package vebo

import (
	"math"
	"sync"
	"testing"

	"repro/internal/graph"
)

// viewTestOpts keeps view-engine topologies small so tests stay fast.
var viewTestOpts = EngineOptions{Sockets: 2, ThreadsPerSocket: 2}

// applyInBatches replays updates through the facade in fixed-size batches.
func applyInBatches(t *testing.T, d *Dynamic, updates []EdgeUpdate, batch int) {
	t.Helper()
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatalf("ApplyBatch(%d:%d): %v", lo, hi, err)
		}
	}
}

// TestViewAlgorithmsMatchStatic checks that algorithms run through the View
// API (engines over the relabeled graph, results mapped back to original
// vertex IDs) agree with the same algorithms run on a static engine built
// directly over the view's snapshot in original ID order.
func TestViewAlgorithmsMatchStatic(t *testing.T) {
	g, updates, err := GenerateStream("powerlaw", 0.05, 6000, 17)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 32, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, d, updates, 512)

	v := d.View()
	snap := v.Snapshot()
	ref, err := NewEngine(Ligra, snap, viewTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	refRanks := PageRank(ref, 5)
	refDist := BellmanFord(ref, 0)
	refParents := BFS(ref, 0)
	// CC's directed label-propagation fixpoint is unique per graph but not
	// isomorphism-invariant as a partition, so compare across the view's
	// three engines (same graph) rather than against the reference ordering.
	ccFirst, err := v.CC(Ligra)
	if err != nil {
		t.Fatal(err)
	}

	for _, sys := range []System{Ligra, Polymer, GraphGrind} {
		ranks, err := v.PageRank(sys, 5)
		if err != nil {
			t.Fatalf("%v: PageRank: %v", sys, err)
		}
		for i := range ranks {
			if math.Abs(ranks[i]-refRanks[i]) > 1e-9*(1+math.Abs(refRanks[i])) {
				t.Fatalf("%v: PageRank diverges at %d: %v vs %v", sys, i, ranks[i], refRanks[i])
			}
		}
		dist, err := v.BellmanFord(sys, 0)
		if err != nil {
			t.Fatalf("%v: BellmanFord: %v", sys, err)
		}
		for i := range dist {
			if dist[i] != refDist[i] {
				t.Fatalf("%v: BellmanFord diverges at %d: %d vs %d", sys, i, dist[i], refDist[i])
			}
		}
		// All three engines traverse the same relabeled graph, so the CC
		// fixpoint (mapped back to original IDs) must agree exactly.
		labels, err := v.CC(sys)
		if err != nil {
			t.Fatalf("%v: CC: %v", sys, err)
		}
		for i := range labels {
			if labels[i] != ccFirst[i] {
				t.Fatalf("%v: CC diverges from ligra at vertex %d: %d vs %d", sys, i, labels[i], ccFirst[i])
			}
		}
		// BFS parents need not be unique; check the reached set matches and
		// every parent edge exists in the snapshot.
		parents, err := v.BFS(sys, 0)
		if err != nil {
			t.Fatalf("%v: BFS: %v", sys, err)
		}
		for i := range parents {
			if (parents[i] < 0) != (refParents[i] < 0) {
				t.Fatalf("%v: BFS reachability differs at vertex %d: %d vs %d", sys, i, parents[i], refParents[i])
			}
			if parents[i] >= 0 && i != 0 && !snap.HasEdge(VertexID(parents[i]), VertexID(i)) {
				t.Fatalf("%v: BFS parent %d of %d is not an in-neighbor", sys, parents[i], i)
			}
		}
		if parents[0] != 0 {
			t.Fatalf("%v: root parent = %d, want 0", sys, parents[0])
		}
		// BC exercises the internally cached transpose engine.
		bc, err := v.BC(sys, 0)
		if err != nil {
			t.Fatalf("%v: BC: %v", sys, err)
		}
		if len(bc) != snap.NumVertices() {
			t.Fatalf("%v: BC returned %d scores for %d vertices", sys, len(bc), snap.NumVertices())
		}
	}
}

// TestViewPatchedMatchesScratch runs the same stream through a reusing
// Dynamic and a reuse-disabled one, querying every epoch, and requires
// identical results — the patched relabeled graph and patched engines must
// be indistinguishable from scratch-built ones. Thresholds are raised so the
// placement stays fixed and the patch path actually runs.
func TestViewPatchedMatchesScratch(t *testing.T) {
	// powerlaw is unweighted; orkut is weighted with parallel edges, so its
	// SPMV results are only reproducible if patched rows are byte-identical
	// to scratch-built ones (weight-aware row ordering).
	for _, recipe := range []string{"powerlaw", "orkut"} {
		t.Run(recipe, func(t *testing.T) { testPatchedMatchesScratch(t, recipe) })
	}
}

func testPatchedMatchesScratch(t *testing.T, recipe string) {
	g, updates, err := GenerateStream(recipe, 0.04, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	// High thresholds keep the placement fixed so the patch path runs, and
	// batches much smaller than the partition count leave most partitions
	// untouched per epoch — the regime engine reuse targets.
	stable := DynamicOptions{
		Partitions:             64,
		RebuildThreshold:       1 << 40,
		VertexRebuildThreshold: 1 << 40,
		Engine:                 viewTestOpts,
	}
	scratchOpts := stable
	scratchOpts.DisableViewReuse = true

	dp, err := NewDynamic(g, stable)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamic(g, scratchOpts)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.NumVertices())
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	const batch = 64
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := dp.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if _, err := ds.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		vp, vs := dp.View(), ds.View()
		for _, sys := range []System{Ligra, Polymer, GraphGrind} {
			rp, err := vp.PageRank(sys, 3)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := vs.PageRank(sys, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i := range rp {
				if rp[i] != rs[i] {
					t.Fatalf("epoch %d %v: patched PageRank diverges at %d: %v vs %v",
						vp.Epoch(), sys, i, rp[i], rs[i])
				}
			}
		}
		// SPMV is weight-sensitive: float accumulation follows row order, so
		// exact equality here proves patched rows match scratch-built rows
		// byte for byte.
		yp, err := vp.SPMV(GraphGrind, x)
		if err != nil {
			t.Fatal(err)
		}
		ys, err := vs.SPMV(GraphGrind, x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range yp {
			if yp[i] != ys[i] {
				t.Fatalf("epoch %d: patched SPMV diverges at %d: %v vs %v", vp.Epoch(), i, yp[i], ys[i])
			}
		}
	}

	work := dp.ViewWork()
	if work.GraphPatches == 0 || work.EnginePatches == 0 {
		t.Fatalf("reuse run never patched: %+v", work)
	}
	if work.PartitionsReused == 0 || work.ReusedEdges == 0 {
		t.Fatalf("reuse run reused nothing: %+v", work)
	}
	sw := ds.ViewWork()
	if sw.GraphPatches != 0 || sw.EnginePatches != 0 {
		t.Fatalf("DisableViewReuse run patched anyway: %+v", sw)
	}
	// The point of the exercise: patching does measurably less construction
	// work than rebuilding every epoch.
	if work.RebuildEdges+work.PatchedEdges >= sw.RebuildEdges {
		t.Fatalf("patching saved no work: patched run %d+%d edges, scratch run %d",
			work.RebuildEdges, work.PatchedEdges, sw.RebuildEdges)
	}
}

// TestViewAcrossEpochsStaysPinned checks that a retained view keeps
// answering for its epoch while the graph moves on.
func TestViewAcrossEpochsStaysPinned(t *testing.T) {
	g, updates, err := GenerateStream("powerlaw", 0.04, 3000, 23)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	old := d.View()
	oldEdges := old.NumEdges()
	oldRanks, err := old.PageRank(GraphGrind, 3)
	if err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, d, updates, 500)
	if d.View() == old {
		t.Fatal("publishing batches did not move the current view")
	}
	if old.NumEdges() != oldEdges {
		t.Fatalf("retained view edge count moved: %d -> %d", oldEdges, old.NumEdges())
	}
	again, err := old.PageRank(GraphGrind, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != oldRanks[i] {
			t.Fatalf("retained view result changed at %d", i)
		}
	}
	if d.View().Epoch() <= old.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", old.Epoch(), d.View().Epoch())
	}
}

// TestViewConcurrentIngestQuery is the concurrency stress test: one ingest
// goroutine streams batches while N reader goroutines continuously pin views
// and run algorithms on all three models (including BC's lazily built
// transpose engines). Run with -race; correctness here is absence of races
// plus per-view internal consistency.
func TestViewConcurrentIngestQuery(t *testing.T) {
	const readers = 4
	g, updates, err := GenerateStream("powerlaw", 0.03, 6000, 31)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sys := System(r % 3)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				v := d.View()
				switch i % 3 {
				case 0:
					ranks, err := v.PageRank(sys, 2)
					if err != nil || len(ranks) != n {
						t.Errorf("reader %d: PageRank: len %d err %v", r, len(ranks), err)
						return
					}
				case 1:
					parents, err := v.BFS(sys, VertexID(i%n))
					if err != nil || len(parents) != n {
						t.Errorf("reader %d: BFS: len %d err %v", r, len(parents), err)
						return
					}
				case 2:
					bc, err := v.BC(sys, VertexID(i%n))
					if err != nil || len(bc) != n {
						t.Errorf("reader %d: BC: len %d err %v", r, len(bc), err)
						return
					}
				}
			}
		}(r)
	}
	const batch = 300
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			t.Errorf("ApplyBatch: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()
	if w := d.ViewWork(); w.Epochs < 2 {
		t.Fatalf("expected multiple published epochs, got %d", w.Epochs)
	}
}

// bfsLevels converts a parent array (original IDs) into BFS levels, which
// are deterministic even though parent choice is CAS-race-dependent.
func bfsLevels(t *testing.T, parents []int32, root VertexID) []int {
	t.Helper()
	levels := make([]int, len(parents))
	for i := range levels {
		levels[i] = -1
	}
	levels[root] = 0
	var walk func(v int) int
	walk = func(v int) int {
		if levels[v] >= 0 {
			return levels[v]
		}
		p := int(parents[v])
		if p < 0 {
			return -1
		}
		lp := walk(p)
		if lp < 0 {
			t.Fatalf("vertex %d: parent %d unreached", v, p)
		}
		levels[v] = lp + 1
		return levels[v]
	}
	for v := range parents {
		if parents[v] >= 0 {
			walk(v)
		}
	}
	return levels
}

// TestViewPatchedAcrossRepairEpochs is the placement-preserving repair
// property test: at DEFAULT maintenance thresholds — where swap repairs fire
// continuously — a reusing Dynamic must produce BFS/CC/BellmanFord results
// identical to a reuse-disabled Dynamic whose engines are built from scratch
// on the same epochs, for all three framework models, across at least three
// repair epochs. This is exactly the configuration that previously never
// patched (any repair renumbered the vertex space); now repairs are
// segment-local and the patch paths follow the permutation.
func TestViewPatchedAcrossRepairEpochs(t *testing.T) {
	g, updates, err := GenerateStream("powerlaw", 0.03, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := DynamicOptions{Partitions: 64, Engine: viewTestOpts}
	scratchOpts := opts
	scratchOpts.DisableViewReuse = true
	dp, err := NewDynamic(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamic(g, scratchOpts)
	if err != nil {
		t.Fatal(err)
	}

	const batch = 64
	repairEpochs := 0
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		rp, err := dp.ApplyBatch(updates[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if rp.Repaired && !rp.Rebuilt {
			repairEpochs++
		}
		vp, vs := dp.View(), ds.View()
		if vp.Epoch() != vs.Epoch() {
			t.Fatalf("epoch skew: %d vs %d", vp.Epoch(), vs.Epoch())
		}
		root := VertexID(int(updates[lo].Dst) % g.NumVertices())
		for _, sys := range []System{Ligra, Polymer, GraphGrind} {
			cp, err := vp.CC(sys)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := vs.CC(sys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cp {
				if cp[i] != cs[i] {
					t.Fatalf("epoch %d %v: patched CC diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, cp[i], cs[i])
				}
			}
			bp, err := vp.BellmanFord(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			bs, err := vs.BellmanFord(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			for i := range bp {
				if bp[i] != bs[i] {
					t.Fatalf("epoch %d %v: patched BellmanFord diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, bp[i], bs[i])
				}
			}
			pp, err := vp.BFS(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := vs.BFS(sys, root)
			if err != nil {
				t.Fatal(err)
			}
			lp, ls := bfsLevels(t, pp, root), bfsLevels(t, ps, root)
			for i := range lp {
				if lp[i] != ls[i] {
					t.Fatalf("epoch %d %v: patched BFS level diverges at %d: %d vs %d",
						vp.Epoch(), sys, i, lp[i], ls[i])
				}
			}
		}
	}

	if repairEpochs < 3 {
		t.Fatalf("only %d repair epochs; the property was not exercised", repairEpochs)
	}
	st := dp.Stats()
	if st.Swaps == 0 || st.FullRebuilds != 0 {
		t.Fatalf("expected pure swap maintenance, got swaps=%d rebuilds=%d", st.Swaps, st.FullRebuilds)
	}
	work := dp.ViewWork()
	if work.GraphPatches == 0 || work.EnginePatches == 0 {
		t.Fatalf("default-threshold run never patched: %+v", work)
	}
	sw := ds.ViewWork()
	if sw.GraphPatches != 0 || sw.EnginePatches != 0 {
		t.Fatalf("DisableViewReuse run patched anyway: %+v", sw)
	}
	if work.RebuildEdges+work.PatchedEdges+work.RelabeledEdges >= sw.RebuildEdges {
		t.Fatalf("patching across repair epochs saved no work: %d+%d+%d vs %d",
			work.RebuildEdges, work.PatchedEdges, work.RelabeledEdges, sw.RebuildEdges)
	}
}

// TestViewSnapshotPatchedMatchesMaterialized checks the snapshot patch
// path: View.Snapshot() derives from the basis view's snapshot via
// graph.PatchEdges on the identity ordering instead of materializing from
// the delta log in O(m), and the result is identical to the materialized
// snapshot — across repair epochs too, since original IDs never move.
func TestViewSnapshotPatchedMatchesMaterialized(t *testing.T) {
	g, updates, err := GenerateStream("orkut", 0.04, 3000, 13)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDynamic(g, DynamicOptions{Partitions: 32, Engine: viewTestOpts})
	if err != nil {
		t.Fatal(err)
	}
	scratchOpts := DynamicOptions{Partitions: 32, Engine: viewTestOpts, DisableViewReuse: true}
	ds, err := NewDynamic(g, scratchOpts)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 128
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := dp.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if _, err := ds.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		// Only snapshots are queried, so every patch counted below came
		// from the snapshot path, not the relabeled graph.
		sp := dp.View().Snapshot()
		ss := ds.View().Snapshot()
		if !graph.Equal(sp, ss) {
			t.Fatalf("epoch %d: patched snapshot differs from materialized (%d vs %d edges)",
				dp.View().Epoch(), sp.NumEdges(), ss.NumEdges())
		}
	}
	work := dp.ViewWork()
	if work.GraphPatches == 0 {
		t.Fatalf("snapshot path never patched: %+v", work)
	}
	if sw := ds.ViewWork(); sw.GraphPatches != 0 {
		t.Fatalf("DisableViewReuse snapshots patched anyway: %+v", sw)
	}
}

// TestViewPatchedAfterRebuildEpoch pins the rebuild→swap window accounting:
// when a full rebuild (lineage break) and a later swap repair land in the
// same anchor window, re-anchoring onto a post-rebuild view must not lose
// the swap — the delta's Moved set survives the merge even though the
// window's PlacementChanged was true. A uniform-degree stream with the
// adaptive gate disabled forces rebuilds; interleaved drifting churn then
// forces swaps right after them.
func TestViewPatchedAfterRebuildEpoch(t *testing.T) {
	const n = 600
	edges := make([]Edge, 0, n*5)
	for v := 0; v < n; v++ {
		for j := 1; j <= 5; j++ {
			edges = append(edges, Edge{Src: VertexID((v + j) % n), Dst: VertexID(v), Weight: 1})
		}
	}
	g, err := FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic churn: delete an edge, insert one at a shifted dst.
	// One pass over the vertex space so no edge is deleted twice.
	var updates []EdgeUpdate
	for i := 0; i < n; i++ {
		v := (i * 7) % n
		updates = append(updates,
			EdgeUpdate{Src: VertexID((v + 1) % n), Dst: VertexID(v), Del: true},
			EdgeUpdate{Src: VertexID((v + 1) % n), Dst: VertexID((v + 13) % n)})
	}
	opts := DynamicOptions{
		Partitions:               16,
		DisableAdaptiveThreshold: true,
		Engine:                   viewTestOpts,
	}
	scratchOpts := opts
	scratchOpts.DisableViewReuse = true
	dp, err := NewDynamic(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamic(g, scratchOpts)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 50
	rebuilds, repairs := 0, 0
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		rp, err := dp.ApplyBatch(updates[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if rp.Rebuilt {
			rebuilds++
		} else if rp.Repaired {
			repairs++
		}
		vp, vs := dp.View(), ds.View()
		for _, sys := range []System{Ligra, Polymer, GraphGrind} {
			cp, err := vp.CC(sys)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := vs.CC(sys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cp {
				if cp[i] != cs[i] {
					t.Fatalf("epoch %d %v: CC diverges at %d after rebuild/swap window (rebuilds so far %d)",
						vp.Epoch(), sys, i, rebuilds)
				}
			}
			bp, err := vp.BellmanFord(sys, 0)
			if err != nil {
				t.Fatal(err)
			}
			bs, err := vs.BellmanFord(sys, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range bp {
				if bp[i] != bs[i] {
					t.Fatalf("epoch %d %v: BellmanFord diverges at %d after rebuild/swap window (rebuilds so far %d)",
						vp.Epoch(), sys, i, rebuilds)
				}
			}
		}
	}
	if rebuilds == 0 || repairs == 0 {
		t.Fatalf("stream exercised rebuilds=%d repairs=%d; need both to pin the window accounting", rebuilds, repairs)
	}
}
