// Command vebovet runs the project's static-analysis suite
// (internal/analysis: atomicfield, frozenwrite, lockedfield, obshandle —
// the machine-checked forms of the DESIGN.md §5–§7 concurrency contracts).
//
// Standalone, from anywhere in the module:
//
//	go run ./cmd/vebovet ./...
//
// As a go vet tool, which also covers test files of every package:
//
//	go build -o bin/vebovet ./cmd/vebovet
//	go vet -vettool=$PWD/bin/vebovet ./...
//
// In vettool mode the binary speaks go vet's unitchecker protocol: it
// answers -flags and -V=full probes, fast-exits dependency units marked
// VetxOnly, and type-checks each analyzed unit against the gc export data
// go vet hands it (ImportMap/PackageFile), so no reimplementation of the
// build graph is involved.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// suiteVersion participates in go vet's result-cache key; bump it whenever
// analyzer behavior changes so stale cached findings are invalidated.
const suiteVersion = "1"

func main() {
	args := os.Args[1:]
	// go vet protocol probes.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			fmt.Printf("vebovet version %s\n", suiteVersion)
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

func runStandalone(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	l, err := analysis.NewLoader(cwd)
	if err != nil {
		return fail(err)
	}
	pkgs, err := l.Load(cwd, patterns...)
	if err != nil {
		return fail(err)
	}
	bad := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintln(os.Stderr, terr)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	diags, err := analysis.Run(pkgs, analysis.All(), l.Ann)
	if err != nil {
		return fail(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", l.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "vebovet:", err)
	return 1
}

// unitConfig is the subset of go vet's per-package JSON config this tool
// consumes.
type unitConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	GoVersion                 string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fail(err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(err)
	}
	// Facts flow between units through the vetx files; this suite keeps no
	// cross-unit facts, but go vet requires the output file to exist.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			return fail(err)
		}
		files = append(files, f)
	}

	imp := &unitImporter{
		importMap: cfg.ImportMap,
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
	}
	ipath := cfg.ImportPath
	if i := strings.Index(ipath, " ["); i >= 0 {
		ipath = ipath[:i] // test variants: "pkg [pkg.test]"
	}
	info := analysis.NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(ipath, fset, files, info)
	if err != nil && len(typeErrs) == 0 {
		typeErrs = append(typeErrs, err)
	}
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		for _, e := range typeErrs {
			fmt.Fprintln(os.Stderr, e)
		}
		return 1
	}

	modRoot, modPath, err := moduleOf(cfg.Dir)
	if err != nil {
		modRoot, modPath = "", "" // outside a module: local annotations only
	}
	ann := analysis.NewAnnotations(modRoot, modPath)
	for _, f := range files {
		ann.AddFile(ipath, f)
	}
	ann.MarkScanned(ipath)

	pkg := &analysis.Package{
		Path: ipath, Name: tpkg.Name(), Fset: fset,
		Files: files, Types: tpkg, Info: info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analysis.All(), ann)
	if err != nil {
		return fail(err)
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

type unitImporter struct {
	importMap map[string]string
	gc        types.Importer
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := u.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}

func moduleOf(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
	}
}
