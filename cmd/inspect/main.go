// Command inspect characterizes a graph file and evaluates partitioning
// balance, in the shape of the paper's Table I row:
//
//	inspect -p 384 graph.adj
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

func run() error {
	parts := flag.Int("p", 384, "partitions for balance analysis")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: inspect [-p partitions] <graph.adj>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graph.ReadAdjacency(f)
	if err != nil {
		return err
	}
	s := g.Characterize()
	fmt.Printf("vertices:        %d\n", s.Vertices)
	fmt.Printf("edges:           %d\n", s.Edges)
	fmt.Printf("max in-degree:   %d\n", s.MaxInDegree)
	fmt.Printf("max out-degree:  %d\n", s.MaxOutDegree)
	fmt.Printf("zero in-degree:  %d (%.1f%%)\n", s.ZeroInDegree, s.ZeroInPercent)
	fmt.Printf("zero out-degree: %d (%.1f%%)\n", s.ZeroOutDegree, s.ZeroOutPercent)

	ps, err := partition.ByDestination(g, *parts)
	if err != nil {
		return err
	}
	sm := partition.Summarize(g, ps)
	fmt.Printf("Algorithm 1 over %d partitions: edge spread %d (min %d max %d), vertex spread %d\n",
		*parts, sm.EdgeSpread, sm.MinEdges, sm.MaxEdges, sm.VertexSpread)

	r, err := core.Reorder(g, *parts, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("VEBO over %d partitions: Δ(n)=%d δ(n)=%d\n", *parts, r.EdgeImbalance(), r.VertexImbalance())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
}
