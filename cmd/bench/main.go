// Command bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	bench -exp table3 -scale 0.2 -seed 42 -partitions 384
//	bench -exp all
//
// See DESIGN.md §3 for the experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/numa"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(bench.Experiments(), ", ")+", or all")
	scale := flag.Float64("scale", 0.2, "graph scale factor (1.0 ≈ 10^5 vertices per graph)")
	seed := flag.Int64("seed", 42, "generator seed")
	partitions := flag.Int("partitions", 384, "GraphGrind partition count")
	sockets := flag.Int("sockets", 4, "modeled NUMA sockets")
	threads := flag.Int("threads", 12, "modeled threads per socket")
	flag.Parse()

	cfg := bench.Config{
		Scale:      *scale,
		Seed:       *seed,
		Partitions: *partitions,
		Topology:   numa.Topology{Sockets: *sockets, ThreadsPerSocket: *threads},
		Out:        os.Stdout,
	}
	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
