// Command bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	bench -exp table3 -scale 0.2 -seed 42 -partitions 384
//	bench -exp all
//	bench -wall -quick -json out/
//
// -wall is shorthand for -exp wall, the wall-clock latency harness: real
// (not modeled) ingest and query latencies with p50/p95/p99, written as
// BENCH_wall.json when -json names a directory. -exp refine measures
// refined-vs-scratch query latency across ingest batch sizes (View.Refine*,
// DESIGN.md §5d) and fails in -quick mode when refinement stops beating
// scratch at the smallest batch. See DESIGN.md §3 for the experiment index
// and §6 for the JSON report schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/numa"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(bench.Experiments(), ", ")+", or all")
	scale := flag.Float64("scale", 0.2, "graph scale factor (1.0 ≈ 10^5 vertices per graph)")
	seed := flag.Int64("seed", 42, "generator seed")
	partitions := flag.Int("partitions", 384, "GraphGrind partition count")
	sockets := flag.Int("sockets", 4, "modeled NUMA sockets")
	threads := flag.Int("threads", 12, "modeled threads per socket")
	quick := flag.Bool("quick", false, "CI smoke mode: small graphs, few streaming batches, and fail on gate regressions (view work ratio ≤ 1×, refine speedup ≤ 1×)")
	wall := flag.Bool("wall", false, "shorthand for -exp wall: measure real ingest/query latency (p50/p95/p99) instead of modeled work")
	jsonDir := flag.String("json", "", "directory receiving BENCH_<experiment>.json reports (empty: no JSON)")
	baseline := flag.String("baseline", "", "directory of recorded BENCH_*.json baselines (e.g. bench-records/): after the run, compare the -json reports against them (tolerances.json honored) and exit 1 on regressions; use -exp none to compare without re-running")
	flag.Parse()

	if *wall {
		*exp = "wall"
	}

	if *quick {
		scaleSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				scaleSet = true
			}
		})
		if !scaleSet {
			*scale = 0.05
		}
	}
	cfg := bench.Config{
		Scale:      *scale,
		Seed:       *seed,
		Partitions: *partitions,
		Topology:   numa.Topology{Sockets: *sockets, ThreadsPerSocket: *threads},
		Out:        os.Stdout,
		Quick:      *quick,
		JSONDir:    *jsonDir,
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	// -exp none skips the experiments: with -baseline it turns the
	// invocation into a pure comparison of already-emitted reports (the CI
	// bench-regression step, run after the quick experiments filled -json).
	if *exp != "none" {
		if err := bench.Run(*exp, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		if *jsonDir == "" {
			fmt.Fprintln(os.Stderr, "bench: -baseline requires -json (the directory holding the current reports)")
			os.Exit(1)
		}
		rep, err := bench.CompareBaseline(*jsonDir, *baseline, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if rep.Regressions > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d metric(s) regressed beyond tolerance against %s\n",
				rep.Regressions, *baseline)
			os.Exit(1)
		}
	}
}
