// Command graphgen generates the synthetic workload graphs used by the
// reproduction and writes them in AdjacencyGraph format.
//
//	graphgen -recipe twitter -scale 0.5 -seed 42 -o twitter.adj
//	graphgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func run() error {
	recipe := flag.String("recipe", "twitter", "recipe name (see -list)")
	scale := flag.Float64("scale", 1.0, "scale factor (1.0 ≈ 10^5 vertices)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available recipes and exit")
	flag.Parse()

	if *list {
		for _, r := range gen.Recipes() {
			fmt.Printf("%-12s stands in for %s (%s)\n", r.Name, r.PaperName, r.PaperStats)
		}
		return nil
	}

	r, err := gen.RecipeByName(*recipe)
	if err != nil {
		return err
	}
	g, err := r.Build(*scale, *seed)
	if err != nil {
		return err
	}
	s := g.Characterize()
	fmt.Fprintf(os.Stderr, "%s: %d vertices, %d edges, max in-degree %d, %.1f%% zero in-degree\n",
		r.Name, s.Vertices, s.Edges, s.MaxInDegree, s.ZeroInPercent)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteAdjacency(w, g)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
