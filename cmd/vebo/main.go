// Command vebo reorders a graph with the VEBO heuristic, mirroring the
// paper's artifact CLI:
//
//	vebo -r 100 -p 384 original.adj reordered.adj
//
// where -r names a start vertex to track through the reordering, -p the
// number of partitions, and the positional arguments are the input and
// output graphs in (Weighted)AdjacencyGraph format. The output graph is
// isomorphic to the input; the tool prints the achieved vertex and edge
// balance and the new ID of the tracked vertex.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

func run() error {
	track := flag.Int("r", -1, "vertex to track through the reordering (-1: none)")
	parts := flag.Int("p", 384, "number of graph partitions")
	noBlocks := flag.Bool("noblocks", false, "disable the degree-block locality refinement")
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: vebo [-r vertex] [-p partitions] <input.adj> <output.adj>")
	}

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	g, err := graph.ReadAdjacency(in)
	if err != nil {
		return fmt.Errorf("reading %s: %w", flag.Arg(0), err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", flag.Arg(0), g.NumVertices(), g.NumEdges())

	start := time.Now()
	r, err := core.Reorder(g, *parts, core.Options{DisableLocalityBlocks: *noBlocks})
	if err != nil {
		return err
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		return err
	}
	fmt.Printf("reordered in %v: δ(n)=%d Δ(n)=%d over %d partitions\n",
		time.Since(start).Round(time.Millisecond), r.VertexImbalance(), r.EdgeImbalance(), *parts)
	if *track >= 0 && *track < g.NumVertices() {
		fmt.Printf("vertex %d -> new ID %d (partition %d)\n",
			*track, r.Perm[*track], r.PartitionOf[*track])
	}

	out, err := os.Create(flag.Arg(1))
	if err != nil {
		return err
	}
	defer out.Close()
	if err := graph.WriteAdjacency(out, rg); err != nil {
		return fmt.Errorf("writing %s: %w", flag.Arg(1), err)
	}
	fmt.Printf("wrote %s\n", flag.Arg(1))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vebo:", err)
		os.Exit(1)
	}
}
