// Command vebo reorders a graph with the VEBO heuristic, mirroring the
// paper's artifact CLI:
//
//	vebo -r 100 -p 384 original.adj reordered.adj
//
// where -r names a start vertex to track through the reordering, -p the
// number of partitions, and the positional arguments are the input and
// output graphs in (Weighted)AdjacencyGraph format. The output graph is
// isomorphic to the input; the tool prints the achieved vertex and edge
// balance and the new ID of the tracked vertex.
//
// The stream subcommand replays a synthetic edge-update stream against a
// workload recipe graph through the dynamic subsystem (internal/dynamic),
// reporting maintenance work and the final balance next to a full reorder:
//
//	vebo stream -recipe powerlaw -scale 0.2 -ops 100000 -batch 1024 -p 64
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
)

func runStream(args []string) error {
	fs := flag.NewFlagSet("vebo stream", flag.ExitOnError)
	recipe := fs.String("recipe", "powerlaw", "workload recipe to stream against")
	scale := fs.Float64("scale", 0.2, "graph scale factor (1.0 ≈ 10^5 vertices)")
	ops := fs.Int("ops", 100_000, "number of edge updates to replay")
	batch := fs.Int("batch", 1024, "updates per ingestion batch")
	parts := fs.Int("p", dynamic.DefaultPartitions, "number of graph partitions maintained live")
	threshold := fs.Int64("threshold", 0, "Δ(n) maintenance threshold (0: default)")
	compactEvery := fs.Int("compact", 0, "delta-log compaction bound (0: default)")
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("stream: unexpected positional argument %q (stream takes flags only)", fs.Arg(0))
	}
	if *batch < 1 {
		return fmt.Errorf("stream: -batch must be at least 1, got %d", *batch)
	}
	if *ops < 0 {
		return fmt.Errorf("stream: -ops must be non-negative, got %d", *ops)
	}
	if *parts < 1 {
		return fmt.Errorf("stream: -p must be at least 1, got %d", *parts)
	}

	g, updates, err := gen.StreamFromRecipe(*recipe, *scale, *ops, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("generated %s: %d vertices, %d edges, %d-update stream\n",
		*recipe, g.NumVertices(), g.NumEdges(), len(updates))

	start := time.Now()
	d, err := dynamic.New(g, dynamic.Config{
		Partitions: *parts, RebuildThreshold: *threshold, CompactEvery: *compactEvery,
	})
	if err != nil {
		return err
	}
	fmt.Printf("initial ordering in %v: Δ(n)=%d δ(n)=%d over %d partitions\n",
		time.Since(start).Round(time.Millisecond), d.EdgeImbalance(), d.VertexImbalance(), *parts)

	start = time.Now()
	batches := 0
	for lo := 0; lo < len(updates); lo += *batch {
		hi := lo + *batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			return err
		}
		batches++
	}
	elapsed := time.Since(start)
	st := d.Stats()
	fmt.Printf("replayed %d updates (%d batches) in %v: %.0f updates/s\n",
		st.Updates, batches, elapsed.Round(time.Millisecond),
		float64(st.Updates)/elapsed.Seconds())
	fmt.Printf("maintenance: %d repairs (%d vertices), %d full rebuilds, %d compactions\n",
		st.Repairs, st.RepairedVertices, st.FullRebuilds, st.Compactions)
	fmt.Printf("final Δ(n)=%d δ(n)=%d, live edges %d\n",
		d.EdgeImbalance(), d.VertexImbalance(), d.NumEdges())

	// Compare against a from-scratch reorder of the post-stream graph.
	start = time.Now()
	snap := d.Snapshot()
	scratch, err := core.Reorder(snap, *parts, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("full reorder of final graph in %v: Δ(n)=%d δ(n)=%d\n",
		time.Since(start).Round(time.Millisecond), scratch.EdgeImbalance(), scratch.VertexImbalance())
	rebuildEvery := int64(batches) * int64(g.NumVertices())
	fmt.Printf("work: %d incremental placements vs %d for reorder-every-batch (%.1f× less)\n",
		st.Placements, rebuildEvery, float64(rebuildEvery)/float64(st.Placements))
	return nil
}

func run() error {
	track := flag.Int("r", -1, "vertex to track through the reordering (-1: none)")
	parts := flag.Int("p", 384, "number of graph partitions")
	noBlocks := flag.Bool("noblocks", false, "disable the degree-block locality refinement")
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: vebo [-r vertex] [-p partitions] <input.adj> <output.adj>")
	}

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	g, err := graph.ReadAdjacency(in)
	if err != nil {
		return fmt.Errorf("reading %s: %w", flag.Arg(0), err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", flag.Arg(0), g.NumVertices(), g.NumEdges())

	start := time.Now()
	r, err := core.Reorder(g, *parts, core.Options{DisableLocalityBlocks: *noBlocks})
	if err != nil {
		return err
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		return err
	}
	fmt.Printf("reordered in %v: δ(n)=%d Δ(n)=%d over %d partitions\n",
		time.Since(start).Round(time.Millisecond), r.VertexImbalance(), r.EdgeImbalance(), *parts)
	if *track >= 0 && *track < g.NumVertices() {
		fmt.Printf("vertex %d -> new ID %d (partition %d)\n",
			*track, r.Perm[*track], r.PartitionOf[*track])
	}

	out, err := os.Create(flag.Arg(1))
	if err != nil {
		return err
	}
	defer out.Close()
	if err := graph.WriteAdjacency(out, rg); err != nil {
		return fmt.Errorf("writing %s: %w", flag.Arg(1), err)
	}
	fmt.Printf("wrote %s\n", flag.Arg(1))
	return nil
}

func main() {
	var err error
	if len(os.Args) > 1 && os.Args[1] == "stream" {
		err = runStream(os.Args[2:])
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vebo:", err)
		os.Exit(1)
	}
}
