// Command vebo reorders a graph with the VEBO heuristic, mirroring the
// paper's artifact CLI:
//
//	vebo -r 100 -p 384 original.adj reordered.adj
//
// where -r names a start vertex to track through the reordering, -p the
// number of partitions, and the positional arguments are the input and
// output graphs in (Weighted)AdjacencyGraph format. The output graph is
// isomorphic to the input; the tool prints the achieved vertex and edge
// balance and the new ID of the tracked vertex.
//
// The stream subcommand replays a synthetic edge-update stream against a
// workload recipe graph through the dynamic subsystem (internal/dynamic),
// reporting maintenance work and the final balance next to a full reorder:
//
//	vebo stream -recipe powerlaw -scale 0.2 -ops 100000 -batch 1024 -p 64
//
// The serve subcommand runs the same stream through the epoch-pinned View
// API with one ingest goroutine and N concurrent query goroutines, the
// serving topology the facade is built for:
//
//	vebo serve -recipe powerlaw -scale 0.2 -ops 50000 -batch 256 -queriers 4 -alg pagerank
//
// While serving it exposes the observability endpoints on -http (default: an
// ephemeral localhost port, printed at startup): /metrics (Prometheus text),
// /metrics.json, /trace (the epoch-lifecycle event ring) and /debug/pprof.
// A stats line prints every -stats interval, and SIGINT/SIGTERM stops the
// ingest gracefully, prints the summary and flushes the final metrics and
// trace snapshot to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	vebo "repro"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

func runStream(args []string) error {
	fs := flag.NewFlagSet("vebo stream", flag.ExitOnError)
	recipe := fs.String("recipe", "powerlaw", "workload recipe to stream against")
	scale := fs.Float64("scale", 0.2, "graph scale factor (1.0 ≈ 10^5 vertices)")
	ops := fs.Int("ops", 100_000, "number of edge updates to replay")
	batch := fs.Int("batch", 1024, "updates per ingestion batch")
	parts := fs.Int("p", dynamic.DefaultPartitions, "number of graph partitions maintained live")
	threshold := fs.Int64("threshold", 0, "Δ(n) maintenance threshold (0: default)")
	compactEvery := fs.Int("compact", 0, "delta-log compaction bound (0: default)")
	grow := fs.Float64("grow", 0, "per-insertion vertex-arrival probability (new vertices are admitted on the fly)")
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("stream: unexpected positional argument %q (stream takes flags only)", fs.Arg(0))
	}
	if *batch < 1 {
		return fmt.Errorf("stream: -batch must be at least 1, got %d", *batch)
	}
	if *ops < 0 {
		return fmt.Errorf("stream: -ops must be non-negative, got %d", *ops)
	}
	if *parts < 1 {
		return fmt.Errorf("stream: -p must be at least 1, got %d", *parts)
	}

	g, updates, err := gen.StreamFromRecipeOpts(*recipe, *scale, *ops, *seed,
		gen.RecipeStreamOptions{GrowFrac: *grow})
	if err != nil {
		return err
	}
	fmt.Printf("generated %s: %d vertices, %d edges, %d-update stream\n",
		*recipe, g.NumVertices(), g.NumEdges(), len(updates))

	start := time.Now()
	d, err := dynamic.New(g, dynamic.Config{
		Partitions: *parts, RebuildThreshold: *threshold, CompactEvery: *compactEvery,
		AutoGrow: *grow > 0,
	})
	if err != nil {
		return err
	}
	fmt.Printf("initial ordering in %v: Δ(n)=%d δ(n)=%d over %d partitions\n",
		time.Since(start).Round(time.Millisecond), d.EdgeImbalance(), d.VertexImbalance(), *parts)

	start = time.Now()
	batches := 0
	for lo := 0; lo < len(updates); lo += *batch {
		hi := lo + *batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			return err
		}
		batches++
	}
	elapsed := time.Since(start)
	st := d.Stats()
	fmt.Printf("replayed %d updates (%d batches) in %v: %.0f updates/s\n",
		st.Updates, batches, elapsed.Round(time.Millisecond),
		float64(st.Updates)/elapsed.Seconds())
	fmt.Printf("maintenance: %d repairs (%d vertices), %d full rebuilds, %d compactions\n",
		st.Repairs, st.RepairedVertices, st.FullRebuilds, st.Compactions)
	if st.RotationAttempts > 0 {
		fmt.Printf("rotation search: %d attempts, %d index fallbacks, %d stalls\n",
			st.RotationAttempts, st.RotationFallbacks, st.RotationStalls)
	}
	if st.Admitted > 0 {
		free, capacity := d.Headroom()
		fmt.Printf("admitted %d vertices (n now %d); headroom %d/%d slots occupied, %d relabeling spills\n",
			st.Admitted, d.NumVertices(), capacity-free, capacity, st.HeadroomSpills)
	}
	fmt.Printf("final Δ(n)=%d δ(n)=%d, live edges %d\n",
		d.EdgeImbalance(), d.VertexImbalance(), d.NumEdges())

	// Compare against a from-scratch reorder of the post-stream graph.
	start = time.Now()
	snap := d.Snapshot()
	scratch, err := core.Reorder(snap, *parts, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("full reorder of final graph in %v: Δ(n)=%d δ(n)=%d\n",
		time.Since(start).Round(time.Millisecond), scratch.EdgeImbalance(), scratch.VertexImbalance())
	rebuildEvery := int64(batches) * int64(g.NumVertices())
	fmt.Printf("work: %d incremental placements vs %d for reorder-every-batch (%.1f× less)\n",
		st.Placements, rebuildEvery, float64(rebuildEvery)/float64(st.Placements))
	return nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("vebo serve", flag.ExitOnError)
	recipe := fs.String("recipe", "powerlaw", "workload recipe to stream against")
	scale := fs.Float64("scale", 0.2, "graph scale factor (1.0 ≈ 10^5 vertices)")
	ops := fs.Int("ops", 50_000, "number of edge updates to ingest")
	batch := fs.Int("batch", 256, "updates per ingestion batch (one view epoch each)")
	parts := fs.Int("p", dynamic.DefaultPartitions, "number of graph partitions maintained live")
	queriers := fs.Int("queriers", 4, "concurrent query goroutines")
	alg := fs.String("alg", "pagerank", "query workload: pagerank, bfs, cc or bc")
	system := fs.String("system", "graphgrind", "framework model serving queries: ligra, polymer or graphgrind")
	threshold := fs.Int64("threshold", 0, "Δ(n) maintenance threshold (0: default, scaled adaptively with the degree spread)")
	vthreshold := fs.Int64("vthreshold", 0, "δ(n) maintenance threshold (0: default)")
	repairMode := fs.String("repair", "preserve", "maintenance strategy: preserve (segment-local swaps, engines stay patchable) or replace (legacy greedy re-placement)")
	grow := fs.Float64("grow", 0, "per-insertion vertex-arrival probability (new vertices are admitted on the fly)")
	noreuse := fs.Bool("noreuse", false, "rebuild engines from scratch every epoch instead of patching")
	pace := fs.Duration("pace", 0, "delay between ingestion batches (0: ingest at full speed)")
	seed := fs.Int64("seed", 42, "generator seed")
	httpAddr := fs.String("http", "127.0.0.1:0", "address serving /metrics, /metrics.json, /trace and /debug/pprof (empty: disabled)")
	statsEvery := fs.Duration("stats", 5*time.Second, "interval between periodic stats lines (0: disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected positional argument %q (serve takes flags only)", fs.Arg(0))
	}
	if *batch < 1 || *ops < 0 || *parts < 1 || *queriers < 1 {
		return fmt.Errorf("serve: -batch, -p and -queriers must be positive, -ops non-negative")
	}
	var sys vebo.System
	switch strings.ToLower(*system) {
	case "ligra":
		sys = vebo.Ligra
	case "polymer":
		sys = vebo.Polymer
	case "graphgrind":
		sys = vebo.GraphGrind
	default:
		return fmt.Errorf("serve: unknown system %q", *system)
	}
	switch *alg {
	case "pagerank", "bfs", "cc", "bc":
	default:
		return fmt.Errorf("serve: unknown query workload %q", *alg)
	}
	var repair vebo.RepairMode
	switch *repairMode {
	case "preserve":
		repair = vebo.RepairPreserve
	case "replace":
		repair = vebo.RepairReplace
	default:
		return fmt.Errorf("serve: unknown repair mode %q (preserve or replace)", *repairMode)
	}

	g, updates, err := gen.StreamFromRecipeOpts(*recipe, *scale, *ops, *seed,
		gen.RecipeStreamOptions{GrowFrac: *grow})
	if err != nil {
		return err
	}
	fmt.Printf("generated %s: %d vertices, %d edges, %d-update stream\n",
		*recipe, g.NumVertices(), g.NumEdges(), len(updates))

	d, err := vebo.NewDynamic(g, vebo.DynamicOptions{
		Partitions:             *parts,
		RebuildThreshold:       *threshold,
		VertexRebuildThreshold: *vthreshold,
		Repair:                 repair,
		AutoGrow:               *grow > 0,
		DisableViewReuse:       *noreuse,
	})
	if err != nil {
		return err
	}

	// Observability endpoints: the dynamic graph's registry and tracer plus
	// the standard pprof handlers, on an ephemeral port by default.
	if *httpAddr != "" {
		ln, lerr := net.Listen("tcp", *httpAddr)
		if lerr != nil {
			return fmt.Errorf("serve: -http listen: %w", lerr)
		}
		mux := http.NewServeMux()
		obs.Register(mux, d.Metrics(), d.Trace(), d.Spans())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics (and /metrics.json, /trace, /spans, /debug/pprof)\n", ln.Addr())
	}

	// Graceful shutdown: SIGINT/SIGTERM stops the ingest loop at the next
	// batch boundary; the summary and a final metrics+trace flush follow.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	n := g.NumVertices()
	var queries, queryNanos, staleSum atomic.Int64
	var queryErrOnce sync.Once
	var queryErr error
	done := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < *queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := q; ; i += 7 {
				select {
				case <-done:
					return
				default:
				}
				v := d.View()
				root := vebo.VertexID(i % n)
				qs := time.Now()
				var qerr error
				switch *alg {
				case "pagerank":
					_, qerr = v.PageRank(sys, 10)
				case "bfs":
					_, qerr = v.BFS(sys, root)
				case "cc":
					_, qerr = v.CC(sys)
				case "bc":
					_, qerr = v.BC(sys, root)
				}
				if qerr != nil {
					queryErrOnce.Do(func() { queryErr = fmt.Errorf("query (%s/%s): %w", *system, *alg, qerr) })
					return
				}
				queries.Add(1)
				queryNanos.Add(int64(time.Since(qs)))
				staleSum.Add(d.View().Epoch() - v.Epoch())
			}
		}(q)
	}

	// Periodic stats line, read entirely from the atomic registry handles so
	// it never races the ingest writer.
	if *statsEvery > 0 {
		reg := d.Metrics()
		qh := reg.Histogram("vebo_query_ns", "alg", *alg, "sys", sys.String())
		ageH := reg.Histogram("vebo_epoch_age_ns")
		lagH := reg.Histogram("vebo_publish_lag_ns")
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					var hrFree int64
					for p := 0; p < *parts; p++ {
						hrFree += reg.Gauge("vebo_headroom_slots", "partition", strconv.Itoa(p)).Value()
					}
					fmt.Printf("[stats] epoch=%d edges=%d Δ=%d pending=%d hr_free=%d spills=%d backlog=%d served=%d q_p50=%v q_p99=%v age_p99=%v lag_p99=%v\n",
						reg.Gauge("vebo_epoch").Value(),
						reg.Gauge("vebo_live_edges").Value(),
						reg.Gauge("vebo_edge_imbalance").Value(),
						reg.Gauge("vebo_pending_ops").Value(),
						hrFree,
						reg.Counter("vebo_headroom_spill_total").Value(),
						reg.Gauge("vebo_delta_backlog").Value(),
						queries.Load(),
						time.Duration(qh.Quantile(0.50)).Round(time.Microsecond),
						time.Duration(qh.Quantile(0.99)).Round(time.Microsecond),
						time.Duration(ageH.Quantile(0.99)).Round(time.Microsecond),
						time.Duration(lagH.Quantile(0.99)).Round(time.Microsecond))
				}
			}
		}()
	}

	start := time.Now()
	batches, ingested := 0, 0
	interrupted := false
	for lo := 0; lo < len(updates) && !interrupted; lo += *batch {
		select {
		case <-ctx.Done():
			interrupted = true
			continue
		default:
		}
		hi := lo + *batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			close(done)
			wg.Wait()
			return err
		}
		batches++
		ingested = hi
		if *pace > 0 {
			time.Sleep(*pace)
		}
	}
	ingestElapsed := time.Since(start)
	close(done)
	wg.Wait()
	wall := time.Since(start)
	if queryErr != nil {
		return queryErr
	}

	if interrupted {
		fmt.Printf("interrupted: stopped ingest after %d of %d updates\n", ingested, len(updates))
	}
	served := queries.Load()
	fmt.Printf("ingested %d updates (%d batches) in %v while serving: %.0f updates/s\n",
		ingested, batches, ingestElapsed.Round(time.Millisecond),
		float64(ingested)/ingestElapsed.Seconds())
	fmt.Printf("served %d %s/%s queries from %d goroutines: %.1f queries/s",
		served, *system, *alg, *queriers, float64(served)/wall.Seconds())
	if served > 0 {
		fmt.Printf(", mean latency %v, mean staleness %.0f updates",
			(time.Duration(queryNanos.Load()) / time.Duration(served)).Round(time.Microsecond),
			float64(staleSum.Load())/float64(served))
	}
	fmt.Println()
	work := d.ViewWork()
	fmt.Printf("views: %d epochs published; engine builds %d full / %d patched (%d partitions reused, %d relabeled, %d rebuilt)\n",
		work.Epochs, work.EngineBuilds, work.EnginePatches,
		work.PartitionsReused, work.PartitionsRelabeled, work.PartitionsRebuilt)
	fmt.Printf("construction edges: %d rebuilt, %d patched, %d relabeled, %d reused\n",
		work.RebuildEdges, work.PatchedEdges, work.RelabeledEdges, work.ReusedEdges)
	st := d.Stats()
	fmt.Printf("maintenance: %d repairs (%d swaps, %d rotations), %d segment re-sorts, %d full rebuilds\n",
		st.Repairs, st.Swaps, st.Rotations, st.Resorts, st.FullRebuilds)
	if st.RotationAttempts > 0 {
		fmt.Printf("rotation search: %d attempts, %d index fallbacks, %d stalls\n",
			st.RotationAttempts, st.RotationFallbacks, st.RotationStalls)
	}
	if st.Admitted > 0 {
		free, capacity := d.Headroom()
		fmt.Printf("admitted %d vertices (n now %d); headroom %d/%d slots occupied, %d relabeling spills\n",
			st.Admitted, d.NumVertices(), capacity-free, capacity, st.HeadroomSpills)
	}
	edge, vert := d.Imbalance()
	fmt.Printf("final Δ(n)=%d δ(n)=%d over %d partitions\n", edge, vert, *parts)
	reg := d.Metrics()
	fmt.Printf("staleness: epoch age p50=%v p99=%v, publish lag p99=%v, delta backlog=%d\n",
		time.Duration(reg.Histogram("vebo_epoch_age_ns").Quantile(0.50)).Round(time.Microsecond),
		time.Duration(reg.Histogram("vebo_epoch_age_ns").Quantile(0.99)).Round(time.Microsecond),
		time.Duration(reg.Histogram("vebo_publish_lag_ns").Quantile(0.99)).Round(time.Microsecond),
		reg.Gauge("vebo_delta_backlog").Value())

	// On interrupt, flush the complete final state so a scrape-free run still
	// leaves a machine-readable record of where the pipeline stopped.
	if interrupted {
		fmt.Println("--- final metrics (prometheus text) ---")
		if err := d.Metrics().WritePrometheus(os.Stdout); err != nil {
			return err
		}
		fmt.Println("--- final trace (json) ---")
		if err := d.Trace().WriteJSON(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func run() error {
	track := flag.Int("r", -1, "vertex to track through the reordering (-1: none)")
	parts := flag.Int("p", 384, "number of graph partitions")
	noBlocks := flag.Bool("noblocks", false, "disable the degree-block locality refinement")
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: vebo [-r vertex] [-p partitions] <input.adj> <output.adj>")
	}

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	g, err := graph.ReadAdjacency(in)
	if err != nil {
		return fmt.Errorf("reading %s: %w", flag.Arg(0), err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", flag.Arg(0), g.NumVertices(), g.NumEdges())

	start := time.Now()
	r, err := core.Reorder(g, *parts, core.Options{DisableLocalityBlocks: *noBlocks})
	if err != nil {
		return err
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		return err
	}
	fmt.Printf("reordered in %v: δ(n)=%d Δ(n)=%d over %d partitions\n",
		time.Since(start).Round(time.Millisecond), r.VertexImbalance(), r.EdgeImbalance(), *parts)
	if *track >= 0 && *track < g.NumVertices() {
		fmt.Printf("vertex %d -> new ID %d (partition %d)\n",
			*track, r.Perm[*track], r.PartitionOf[*track])
	}

	out, err := os.Create(flag.Arg(1))
	if err != nil {
		return err
	}
	defer out.Close()
	if err := graph.WriteAdjacency(out, rg); err != nil {
		return fmt.Errorf("writing %s: %w", flag.Arg(1), err)
	}
	fmt.Printf("wrote %s\n", flag.Arg(1))
	return nil
}

func main() {
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "stream":
		err = runStream(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "serve":
		err = runServe(os.Args[2:])
	default:
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vebo:", err)
		os.Exit(1)
	}
}
