package vebo

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
)

// applyStream pushes updates through ApplyBatch in fixed-size batches.
func applyStream(t *testing.T, d *Dynamic, updates []EdgeUpdate, batch int) {
	t.Helper()
	for lo := 0; lo < len(updates); lo += batch {
		hi := min(lo+batch, len(updates))
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuerySpansLinkToPublish is the causality acceptance check: every query
// span in the collector parent-links to the publish span of the epoch it
// read, and every publish span (after the first) parent-links to the ingest
// batch that produced its epoch.
func TestQuerySpansLinkToPublish(t *testing.T) {
	g, updates, err := gen.StreamFromRecipe("powerlaw", 0.05, 512, 11)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, 128)

	v := d.View()
	if _, err := v.BFS(Ligra, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := v.PageRank(GraphGrind, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.RefineBFS(Ligra, 0); err != nil {
		t.Fatal(err)
	}

	byID := make(map[obs.SpanID]obs.Span)
	var queries, publishes, batches int
	for _, sp := range d.Spans().Snapshot() {
		byID[sp.ID] = sp
		switch sp.Kind {
		case "query":
			queries++
		case "publish":
			publishes++
		case "ingest":
			batches++
		}
	}
	if queries < 3 || publishes == 0 || batches == 0 {
		t.Fatalf("span mix too thin: %d queries, %d publishes, %d batches", queries, publishes, batches)
	}

	for _, sp := range byID {
		switch sp.Kind {
		case "query", "build":
			if sp.Parent == 0 {
				t.Fatalf("%s span %q has no parent link", sp.Kind, sp.Name)
			}
			parent, ok := byID[sp.Parent]
			if !ok {
				t.Fatalf("%s span %q parent %d not retained", sp.Kind, sp.Name, sp.Parent)
			}
			if parent.Kind != "publish" {
				t.Errorf("%s span %q parents a %q span, want publish", sp.Kind, sp.Name, parent.Kind)
			}
			if parent.Epoch != sp.Epoch {
				t.Errorf("%s span %q epoch %d != publish epoch %d", sp.Kind, sp.Name, sp.Epoch, parent.Epoch)
			}
		case "publish":
			// All but the initial epoch-0 publish chain back to a batch.
			if sp.Parent == 0 {
				if sp.Epoch != 0 {
					t.Errorf("publish of epoch %d has no batch parent", sp.Epoch)
				}
				continue
			}
			parent, ok := byID[sp.Parent]
			if !ok {
				t.Fatalf("publish span parent %d not retained", sp.Parent)
			}
			if parent.Kind != "ingest" {
				t.Errorf("publish parents a %q span, want ingest", parent.Kind)
			}
		case "maintain":
			if sp.Parent == 0 {
				t.Errorf("maintain span %q (cause %q) has no batch parent", sp.Name, sp.Cause)
			}
		}
	}
}

// TestEpochAgeGrowsBetweenPublishes is the staleness regression test:
// vebo_epoch_age_ns samples grow monotonically while no new epoch is
// published, then drop once a fresh view supersedes the stale one.
func TestEpochAgeGrowsBetweenPublishes(t *testing.T) {
	g, updates, err := gen.StreamFromRecipe("powerlaw", 0.05, 256, 13)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates[:128], 128)

	ageH := d.Metrics().Histogram("vebo_epoch_age_ns")
	sample := func() int64 {
		prevSum, prevCount := ageH.Sum(), ageH.Count()
		if _, err := d.View().BFS(Ligra, 0); err != nil {
			t.Fatal(err)
		}
		if ageH.Count() != prevCount+1 {
			t.Fatalf("query did not observe epoch age: count %d -> %d", prevCount, ageH.Count())
		}
		return ageH.Sum() - prevSum
	}

	age1 := sample()
	time.Sleep(20 * time.Millisecond)
	age2 := sample()
	if age2 <= age1 {
		t.Fatalf("epoch age not monotonic against a stale view: %v then %v",
			time.Duration(age1), time.Duration(age2))
	}

	// A new publish resets the clock: the very next query reads a younger
	// view than the stale sample above.
	applyStream(t, d, updates[128:], 128)
	age3 := sample()
	if age3 >= age2 {
		t.Fatalf("epoch age did not drop after a fresh publish: %v then %v",
			time.Duration(age2), time.Duration(age3))
	}
	if d.Metrics().Histogram("vebo_publish_lag_ns").Count() == 0 {
		t.Fatal("vebo_publish_lag_ns never observed a publish")
	}
}

// TestSpansEndpoint serves /spans off the obs handler and checks the export
// is a loadable Chrome trace carrying the run's spans, and that the runtime
// sampler feeds go_* series into /metrics on scrape.
func TestSpansEndpoint(t *testing.T) {
	g, updates, err := gen.StreamFromRecipe("powerlaw", 0.05, 256, 17)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, 128)
	if _, err := d.View().BFS(Ligra, 0); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(d.ObsHandler())
	defer srv.Close()

	trace := scrape(t, srv.URL, "/spans")
	for _, want := range []string{`"traceEvents"`, `"recordedSpans"`, `"publish"`, `"query:bfs"`, `"thread_name"`} {
		if !strings.Contains(trace, want) {
			t.Fatalf("/spans export missing %s:\n%.2000s", want, trace)
		}
	}

	metrics := scrape(t, srv.URL, "/metrics")
	for _, name := range []string{"go_goroutines ", "go_heap_alloc_bytes ", "vebo_epoch_age_ns_count", "vebo_publish_lag_ns_count", "vebo_delta_backlog "} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("/metrics scrape missing %q", name)
		}
	}
	if metricValue(t, metrics, "go_goroutines") <= 0 {
		t.Fatal("go_goroutines not sampled on scrape")
	}
}
