package graph

import (
	"math/rand"
	"testing"
)

// edgeMultiset canonicalizes a graph's edges for order-insensitive compare.
func edgeMultiset(g *Graph) map[Edge]int {
	m := make(map[Edge]int, g.NumEdges())
	for _, e := range g.Edges() {
		m[e]++
	}
	return m
}

func sameMultiset(t *testing.T, a, b map[Edge]int) {
	t.Helper()
	for e, c := range a {
		if b[e] != c {
			t.Fatalf("edge %+v: multiplicity %d vs %d", e, c, b[e])
		}
	}
	for e, c := range b {
		if a[e] != c {
			t.Fatalf("edge %+v: multiplicity %d vs %d", e, a[e], c)
		}
	}
}

// TestPatchEdgesMatchesRebuild drives random add/delete patches against
// random (weighted and unweighted) graphs and checks the patched graph is
// multiset-identical to building from scratch, with consistent CSR/CSC
// structure and honest work stats.
func TestPatchEdgesMatchesRebuild(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		const n = 60
		edges := make([]Edge, 0, 400)
		for i := 0; i < 400; i++ {
			w := int32(1)
			if weighted {
				w = int32(rng.Intn(5) + 1)
			}
			edges = append(edges, Edge{
				Src: VertexID(rng.Intn(n)), Dst: VertexID(rng.Intn(n)), Weight: w,
			})
		}
		g, err := FromEdges(n, edges, weighted)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			live := g.Edges()
			var dels []Edge
			for i := 0; i < 30 && len(live) > 0; i++ {
				j := rng.Intn(len(live))
				dels = append(dels, live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			var adds []Edge
			for i := 0; i < 40; i++ {
				w := int32(1)
				if weighted {
					w = int32(rng.Intn(5) + 1)
				}
				adds = append(adds, Edge{
					Src: VertexID(rng.Intn(n)), Dst: VertexID(rng.Intn(n)), Weight: w,
				})
			}
			patched, st, err := g.PatchEdges(adds, dels)
			if err != nil {
				t.Fatalf("weighted=%v trial %d: %v", weighted, trial, err)
			}
			want, err := FromEdges(n, append(append([]Edge(nil), live...), adds...), weighted)
			if err != nil {
				t.Fatal(err)
			}
			sameMultiset(t, edgeMultiset(patched), edgeMultiset(want))
			if patched.NumEdges() != want.NumEdges() {
				t.Fatalf("edge count %d, want %d", patched.NumEdges(), want.NumEdges())
			}
			// CSC must mirror CSR.
			sameMultiset(t, edgeMultiset(patched.Transpose()), edgeMultiset(want.Transpose()))
			if st.RowsMerged == 0 || st.EdgesMerged == 0 {
				t.Fatalf("patch stats recorded no merge work: %+v", st)
			}
			if st.EdgesCopied+st.EdgesMerged < patched.NumEdges() {
				t.Fatalf("stats cover %d edges of %d (one direction should dominate)",
					st.EdgesCopied+st.EdgesMerged, patched.NumEdges())
			}
			g = patched // chain patches across trials
		}
	}
}

// TestPatchEdgesSortedRows checks merged rows stay sorted by neighbor so
// binary-search consumers (HasEdge, the dynamic delta log) keep working.
func TestPatchEdgesSortedRows(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 4, 1}, {0, 1, 1}, {2, 3, 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := g.PatchEdges([]Edge{{0, 3, 1}, {0, 0, 1}, {4, 2, 1}}, []Edge{{0, 4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < p.NumVertices(); v++ {
		nbrs := p.OutNeighbors(VertexID(v))
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] > nbrs[i] {
				t.Fatalf("row %d not sorted: %v", v, nbrs)
			}
		}
	}
	if !p.HasEdge(0, 0) || !p.HasEdge(0, 3) || p.HasEdge(0, 4) {
		t.Fatal("patched adjacency content wrong")
	}
}

// TestPatchEdgesErrors checks range validation and deletion of missing
// edges, including the weighted exact-match rule.
func TestPatchEdgesErrors(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 5}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.PatchEdges([]Edge{{0, 9, 1}}, nil); err == nil {
		t.Error("expected range error for add")
	}
	if _, _, err := g.PatchEdges(nil, []Edge{{9, 0, 1}}); err == nil {
		t.Error("expected range error for delete")
	}
	if _, _, err := g.PatchEdges(nil, []Edge{{0, 2, 1}}); err == nil {
		t.Error("expected missing-edge error")
	}
	// Weight must match exactly as stored.
	if _, _, err := g.PatchEdges(nil, []Edge{{0, 1, 4}}); err == nil {
		t.Error("expected weight-mismatch error")
	}
	if _, _, err := g.PatchEdges(nil, []Edge{{0, 1, 5}}); err != nil {
		t.Errorf("exact-weight delete failed: %v", err)
	}
	// Unweighted graphs normalize all weights to 1.
	ug, err := FromEdges(3, []Edge{{0, 1, 7}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ug.PatchEdges(nil, []Edge{{0, 1, 9}}); err != nil {
		t.Errorf("unweighted delete should ignore weights: %v", err)
	}
}

// applyPermToEdges maps both endpoints of every edge through perm.
func applyPermToEdges(edges []Edge, perm []VertexID) []Edge {
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{Src: perm[e.Src], Dst: perm[e.Dst], Weight: e.Weight}
	}
	return out
}

// TestPatchEdgesPermMatchesRelabel drives PatchEdgesPerm with random
// swap-product permutations (the shape placement-preserving repair emits)
// combined with random adds and deletes, and checks the result is
// byte-identical to relabeling from scratch and rebuilding: same offsets,
// sorted rows, CSR and CSC both.
func TestPatchEdgesPermMatchesRelabel(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(11))
		const n = 80
		edges := make([]Edge, 0, 500)
		for i := 0; i < 500; i++ {
			w := int32(1)
			if weighted {
				w = int32(rng.Intn(5) + 1)
			}
			edges = append(edges, Edge{
				Src: VertexID(rng.Intn(n)), Dst: VertexID(rng.Intn(n)), Weight: w,
			})
		}
		g, err := FromEdges(n, edges, weighted)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			// A product of random transpositions, identity elsewhere.
			perm := make([]VertexID, n)
			for i := range perm {
				perm[i] = VertexID(i)
			}
			for s := 0; s < 1+rng.Intn(4); s++ {
				a, b := rng.Intn(n), rng.Intn(n)
				perm[a], perm[b] = perm[b], perm[a]
			}
			// Deletes against surviving pre-perm edges, expressed post-perm;
			// adds in post-perm IDs.
			live := g.Edges()
			var dels []Edge
			for i := 0; i < 25 && len(live) > 0; i++ {
				j := rng.Intn(len(live))
				e := live[j]
				dels = append(dels, Edge{Src: perm[e.Src], Dst: perm[e.Dst], Weight: e.Weight})
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			var adds []Edge
			for i := 0; i < 30; i++ {
				w := int32(1)
				if weighted {
					w = int32(rng.Intn(5) + 1)
				}
				adds = append(adds, Edge{
					Src: VertexID(rng.Intn(n)), Dst: VertexID(rng.Intn(n)), Weight: w,
				})
			}
			patched, st, err := g.PatchEdgesPerm(adds, dels, perm)
			if err != nil {
				t.Fatalf("weighted=%v trial %d: %v", weighted, trial, err)
			}
			want, err := FromEdges(n,
				append(applyPermToEdges(live, perm), adds...), weighted)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(patched, want) {
				t.Fatalf("weighted=%v trial %d: patched graph differs from relabel+rebuild", weighted, trial)
			}
			if covered := st.EdgesCopied + st.EdgesMerged + st.EdgesRemapped; covered < patched.NumEdges() {
				t.Fatalf("stats cover %d edges of %d", covered, patched.NumEdges())
			}
			g = patched // chain: later trials patch an already-patched graph
		}
	}
}

// TestPatchEdgesPermPure checks a pure renumbering (no adds or deletes)
// equals Relabel, and that rows untouched by the permutation are copied,
// not merged.
func TestPatchEdgesPermPure(t *testing.T) {
	g, err := FromEdges(6, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}, {5, 0, 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	perm := []VertexID{0, 1, 2, 4, 3, 5} // swap 3 and 4
	patched, st, err := g.PatchEdgesPerm(nil, nil, perm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, edgeMultiset(patched), edgeMultiset(want))
	if st.EdgesCopied == 0 {
		t.Fatalf("pure swap should block-copy untouched rows: %+v", st)
	}
	// Rows incident to the swap are remapped (no adds or deletes touch
	// them); the 0->1->2 chain is untouched and nothing needs a merge.
	if st.EdgesRemapped == 0 || st.EdgesMerged != 0 {
		t.Fatalf("unexpected rewrite split: %+v", st)
	}
}

// TestPatchEdgesNGrowth checks identity-map growth: the patched graph equals
// rebuilding from scratch over the larger vertex space, appended rows start
// empty unless adds reference them, and untouched rows block-copy.
func TestPatchEdgesNGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, nNew = 40, 55
	edges := make([]Edge, 0, 300)
	for i := 0; i < 300; i++ {
		edges = append(edges, Edge{Src: VertexID(rng.Intn(n)), Dst: VertexID(rng.Intn(n)), Weight: 1})
	}
	g, err := FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	adds := []Edge{{Src: 41, Dst: 3, Weight: 1}, {Src: 2, Dst: 50, Weight: 1}, {Src: 54, Dst: 54, Weight: 1}}
	dels := []Edge{g.Edges()[0]}
	patched, st, err := g.PatchEdgesN(nNew, adds, dels)
	if err != nil {
		t.Fatal(err)
	}
	if patched.NumVertices() != nNew {
		t.Fatalf("vertex count %d, want %d", patched.NumVertices(), nNew)
	}
	live := g.Edges()[1:]
	want, err := FromEdges(nNew, append(append([]Edge(nil), live...), adds...), false)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(patched, want) {
		t.Fatal("grown patch differs from scratch rebuild")
	}
	if st.EdgesCopied == 0 {
		t.Fatalf("growth patch should block-copy untouched rows: %+v", st)
	}
	if patched.OutDegree(45) != 0 || patched.InDegree(45) != 0 {
		t.Fatal("appended vertex without adds should have empty rows")
	}
	// Deleting from an appended (empty) row must fail.
	if _, _, err := g.PatchEdgesN(nNew, nil, []Edge{{Src: 50, Dst: 0, Weight: 1}}); err == nil {
		t.Error("expected missing-edge error for appended-row delete")
	}
	// Shrinking is rejected.
	if _, _, err := g.PatchEdgesN(n-1, nil, nil); err == nil {
		t.Error("expected shrink error")
	}
}

// growthInjection builds the segment-growth map shape: old IDs shift up by
// the number of slots inserted before them, leaving holes for new vertices.
func growthInjection(n, nNew int, holes []VertexID) []VertexID {
	isHole := make(map[VertexID]bool, len(holes))
	for _, h := range holes {
		isHole[h] = true
	}
	perm := make([]VertexID, 0, n)
	for id := VertexID(0); int(id) < nNew && len(perm) < n; id++ {
		if !isHole[id] {
			perm = append(perm, id)
		}
	}
	return perm
}

// TestPatchEdgesPermNGrowth drives the segment-growth contract: an injective
// shift map with interior holes for admitted vertices, combined with swaps
// and edge churn, equals relabel+rebuild over the grown space, and the
// shifted rows go through the cheap remap path rather than merges.
func TestPatchEdgesPermNGrowth(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(23))
		const n = 60
		edges := make([]Edge, 0, 400)
		for i := 0; i < 400; i++ {
			w := int32(1)
			if weighted {
				w = int32(rng.Intn(5) + 1)
			}
			edges = append(edges, Edge{Src: VertexID(rng.Intn(n)), Dst: VertexID(rng.Intn(n)), Weight: w})
		}
		g, err := FromEdges(n, edges, weighted)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			nOld := g.NumVertices()
			growth := 1 + rng.Intn(5)
			nNew := nOld + growth
			holes := make([]VertexID, 0, growth)
			seen := make(map[VertexID]bool)
			for len(holes) < growth {
				h := VertexID(rng.Intn(nNew))
				if !seen[h] {
					seen[h] = true
					holes = append(holes, h)
				}
			}
			perm := growthInjection(nOld, nNew, holes)
			// A couple of swaps on top of the shift, as a repair would leave.
			for s := 0; s < rng.Intn(3); s++ {
				a, b := rng.Intn(nOld), rng.Intn(nOld)
				perm[a], perm[b] = perm[b], perm[a]
			}
			live := g.Edges()
			var dels []Edge
			for i := 0; i < 10 && len(live) > 0; i++ {
				j := rng.Intn(len(live))
				e := live[j]
				dels = append(dels, Edge{Src: perm[e.Src], Dst: perm[e.Dst], Weight: e.Weight})
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			var adds []Edge
			for i := 0; i < 15; i++ {
				w := int32(1)
				if weighted {
					w = int32(rng.Intn(5) + 1)
				}
				// Half the adds touch the new vertices.
				var e Edge
				if i%2 == 0 && len(holes) > 0 {
					e = Edge{Src: holes[rng.Intn(len(holes))], Dst: VertexID(rng.Intn(nNew)), Weight: w}
				} else {
					e = Edge{Src: VertexID(rng.Intn(nNew)), Dst: VertexID(rng.Intn(nNew)), Weight: w}
				}
				adds = append(adds, e)
			}
			patched, st, err := g.PatchEdgesPermN(nNew, adds, dels, perm)
			if err != nil {
				t.Fatalf("weighted=%v trial %d: %v", weighted, trial, err)
			}
			want, err := FromEdges(nNew, append(applyPermToEdges(live, perm), adds...), weighted)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(patched, want) {
				t.Fatalf("weighted=%v trial %d: grown perm patch differs from relabel+rebuild", weighted, trial)
			}
			if covered := st.EdgesCopied + st.EdgesMerged + st.EdgesRemapped; covered < patched.NumEdges() {
				t.Fatalf("stats cover %d edges of %d", covered, patched.NumEdges())
			}
			g = patched // chain growth across trials
		}
	}
}

// TestPatchEdgesPermNErrors validates the injection argument.
func TestPatchEdgesPermNErrors(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.PatchEdgesPermN(4, nil, nil, []VertexID{0, 1, 1}); err == nil {
		t.Error("expected non-injective error")
	}
	if _, _, err := g.PatchEdgesPermN(4, nil, nil, []VertexID{0, 1, 4}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, _, err := g.PatchEdgesPermN(4, nil, nil, []VertexID{0, 1, 3}); err != nil {
		t.Errorf("injection into grown space should be accepted: %v", err)
	}
}

// TestPatchEdgesPermErrors validates the permutation argument.
func TestPatchEdgesPermErrors(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.PatchEdgesPerm(nil, nil, []VertexID{0, 1}); err == nil {
		t.Error("expected length error")
	}
	if _, _, err := g.PatchEdgesPerm(nil, nil, []VertexID{0, 1, 1}); err == nil {
		t.Error("expected non-permutation error")
	}
	if _, _, err := g.PatchEdgesPerm(nil, nil, []VertexID{0, 1, 3}); err == nil {
		t.Error("expected out-of-range error")
	}
}
