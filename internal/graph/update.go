package graph

// EdgeUpdate is one timestamped mutation in an edge stream: the insertion or
// deletion of a single directed edge. Streams of EdgeUpdates are produced by
// internal/gen and consumed by internal/dynamic.
type EdgeUpdate struct {
	// Time orders the update within its stream. Generators emit strictly
	// increasing times; consumers treat the value as opaque.
	Time int64
	Src  VertexID
	Dst  VertexID
	// Weight is the weight of an inserted edge (ignored for deletions; 0
	// means 1 on weighted graphs, as in FromEdges).
	Weight int32
	// Del selects deletion of one (Src,Dst) edge occurrence instead of
	// insertion.
	Del bool
}
