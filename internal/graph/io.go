package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text formats implemented here mirror the Ligra adjacency format used by
// the paper's artifact:
//
//	AdjacencyGraph
//	<n>
//	<m>
//	<offset 0> ... <offset n-1>
//	<target 0> ... <target m-1>
//
// WeightedAdjacencyGraph appends m weights after the targets. An edge-list
// format ("<src> <dst> [weight]" per line) is also supported for
// interoperability with SNAP-style downloads.

const (
	headerAdjacency         = "AdjacencyGraph"
	headerWeightedAdjacency = "WeightedAdjacencyGraph"
)

// WriteAdjacency serializes g in (Weighted)AdjacencyGraph format. The CSR
// view (out-edges) is written.
func WriteAdjacency(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	header := headerAdjacency
	if g.weighted {
		header = headerWeightedAdjacency
	}
	if _, err := fmt.Fprintf(bw, "%s\n%d\n%d\n", header, g.n, g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		if _, err := fmt.Fprintf(bw, "%d\n", g.outOff[v]); err != nil {
			return err
		}
	}
	for _, d := range g.outDst {
		if _, err := fmt.Fprintf(bw, "%d\n", d); err != nil {
			return err
		}
	}
	if g.weighted {
		for _, wt := range g.outW {
			if _, err := fmt.Fprintf(bw, "%d\n", wt); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadAdjacency parses a (Weighted)AdjacencyGraph stream.
func ReadAdjacency(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	sc.Split(bufio.ScanWords)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	nextInt := func() (int64, error) {
		tok, err := next()
		if err != nil {
			return 0, err
		}
		return strconv.ParseInt(tok, 10, 64)
	}

	header, err := next()
	if err != nil {
		return nil, err
	}
	weighted := false
	switch header {
	case headerAdjacency:
	case headerWeightedAdjacency:
		weighted = true
	default:
		return nil, fmt.Errorf("graph: unknown header %q", header)
	}
	n64, err := nextInt()
	if err != nil {
		return nil, err
	}
	m, err := nextInt()
	if err != nil {
		return nil, err
	}
	n := int(n64)
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: invalid sizes n=%d m=%d", n, m)
	}
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		off[v], err = nextInt()
		if err != nil {
			return nil, fmt.Errorf("graph: reading offset %d: %w", v, err)
		}
	}
	off[n] = m
	for v := 0; v < n; v++ {
		if off[v] > off[v+1] || off[v] < 0 {
			return nil, fmt.Errorf("graph: non-monotonic offset at vertex %d", v)
		}
	}
	edges := make([]Edge, 0, m)
	dsts := make([]VertexID, m)
	for i := int64(0); i < m; i++ {
		d, err := nextInt()
		if err != nil {
			return nil, fmt.Errorf("graph: reading target %d: %w", i, err)
		}
		if d < 0 || d >= n64 {
			return nil, fmt.Errorf("graph: target %d out of range", d)
		}
		dsts[i] = VertexID(d)
	}
	weights := make([]int32, m)
	for i := range weights {
		weights[i] = 1
	}
	if weighted {
		for i := int64(0); i < m; i++ {
			w, err := nextInt()
			if err != nil {
				return nil, fmt.Errorf("graph: reading weight %d: %w", i, err)
			}
			weights[i] = int32(w)
		}
	}
	for v := 0; v < n; v++ {
		for i := off[v]; i < off[v+1]; i++ {
			edges = append(edges, Edge{Src: VertexID(v), Dst: dsts[i], Weight: weights[i]})
		}
	}
	return FromEdges(n, edges, weighted)
}

// WriteEdgeList serializes g as "<src> <dst> <weight>" lines (weight omitted
// for unweighted graphs).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for v := 0; v < g.n; v++ {
		for i := g.outOff[v]; i < g.outOff[v+1]; i++ {
			var err error
			if g.weighted {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", v, g.outDst[i], g.outW[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, g.outDst[i])
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses whitespace-separated "<src> <dst> [weight]" lines.
// Lines beginning with '#' or '%' are comments. The vertex count is one more
// than the largest ID seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var edges []Edge
	weighted := false
	maxID := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least 2 fields", lineNo)
		}
		s, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		d, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if s < 0 || d < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		w := int64(1)
		if len(fields) >= 3 {
			w, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			weighted = true
		}
		if s > maxID {
			maxID = s
		}
		if d > maxID {
			maxID = d
		}
		edges = append(edges, Edge{Src: VertexID(s), Dst: VertexID(d), Weight: int32(w)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(int(maxID+1), edges, weighted)
}
