package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// small fixture: the 6-vertex example graph of the paper's Figure 3.
// In-degrees: v0:1 v1:2 v2:2 v3:2 v4:4 v5:3 (total 14 edges).
func fig3Graph(t *testing.T) *Graph {
	t.Helper()
	edges := []Edge{
		{Src: 1, Dst: 0}, // v0 in-degree 1
		{Src: 0, Dst: 1}, {Src: 2, Dst: 1},
		{Src: 1, Dst: 2}, {Src: 3, Dst: 2},
		{Src: 4, Dst: 3}, {Src: 5, Dst: 3},
		{Src: 0, Dst: 4}, {Src: 1, Dst: 4}, {Src: 3, Dst: 4}, {Src: 5, Dst: 4},
		{Src: 0, Dst: 5}, {Src: 2, Dst: 5}, {Src: 4, Dst: 5},
	}
	g, err := FromEdges(6, edges, false)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasics(t *testing.T) {
	g := fig3Graph(t)
	if g.NumVertices() != 6 {
		t.Fatalf("vertices = %d, want 6", g.NumVertices())
	}
	if g.NumEdges() != 14 {
		t.Fatalf("edges = %d, want 14", g.NumEdges())
	}
	wantIn := []int64{1, 2, 2, 2, 4, 3}
	for v, want := range wantIn {
		if got := g.InDegree(VertexID(v)); got != want {
			t.Errorf("InDegree(%d) = %d, want %d", v, got, want)
		}
	}
	var sumOut int64
	for v := 0; v < 6; v++ {
		sumOut += g.OutDegree(VertexID(v))
	}
	if sumOut != 14 {
		t.Errorf("sum of out-degrees = %d, want 14", sumOut)
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	_, err := FromEdges(2, []Edge{{Src: 0, Dst: 5}}, false)
	if err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
	_, err = FromEdges(-1, nil, false)
	if err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil, false)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.CountZeroInDegree() != 0 {
		t.Fatal("zero-in-degree count of empty graph should be 0")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := FromEdges(5, []Edge{{Src: 0, Dst: 1}}, false)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if got := g.CountZeroInDegree(); got != 4 {
		t.Errorf("zero in-degree = %d, want 4", got)
	}
	if got := g.CountZeroOutDegree(); got != 4 {
		t.Errorf("zero out-degree = %d, want 4", got)
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := fig3Graph(t)
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutNeighbors(VertexID(v))
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] > nbrs[i] {
				t.Fatalf("out-neighbours of %d not sorted: %v", v, nbrs)
			}
		}
		in := g.InNeighbors(VertexID(v))
		for i := 1; i < len(in); i++ {
			if in[i-1] > in[i] {
				t.Fatalf("in-neighbours of %d not sorted: %v", v, in)
			}
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := fig3Graph(t)
	if !g.HasEdge(0, 4) {
		t.Error("expected edge (0,4)")
	}
	if g.HasEdge(4, 0) {
		t.Error("unexpected edge (4,0)")
	}
}

func TestTranspose(t *testing.T) {
	g := fig3Graph(t)
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose edges = %d, want %d", tr.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.InDegree(VertexID(v)) != tr.OutDegree(VertexID(v)) {
			t.Errorf("vertex %d: in-degree %d != transpose out-degree %d",
				v, g.InDegree(VertexID(v)), tr.OutDegree(VertexID(v)))
		}
	}
	// transposing twice restores the original structure
	if !Equal(g, tr.Transpose()) {
		t.Error("double transpose differs from original")
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := fig3Graph(t)
	perm := make([]VertexID, g.NumVertices())
	for i := range perm {
		perm[i] = VertexID(i)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	if !Equal(g, h) {
		t.Error("identity relabel changed the graph")
	}
}

func TestRelabelIsomorphism(t *testing.T) {
	g := fig3Graph(t)
	perm := []VertexID{3, 0, 5, 1, 2, 4}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	if !IsIsomorphicUnder(g, h, perm) {
		t.Error("relabelled graph is not isomorphic under perm")
	}
	// degree multiset must be preserved
	gh := g.DegreeHistogramIn()
	hh := h.DegreeHistogramIn()
	if len(gh) != len(hh) {
		t.Fatalf("degree histogram lengths differ: %d vs %d", len(gh), len(hh))
	}
	for d := range gh {
		if gh[d] != hh[d] {
			t.Errorf("count of in-degree %d: %d vs %d", d, gh[d], hh[d])
		}
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := fig3Graph(t)
	if _, err := g.Relabel([]VertexID{0, 0, 1, 2, 3, 4}); err == nil {
		t.Error("expected error for duplicate mapping")
	}
	if _, err := g.Relabel([]VertexID{0, 1, 2}); err == nil {
		t.Error("expected error for short permutation")
	}
	if _, err := g.Relabel([]VertexID{0, 1, 2, 3, 4, 99}); err == nil {
		t.Error("expected error for out-of-range mapping")
	}
}

func TestCharacterize(t *testing.T) {
	g := fig3Graph(t)
	s := g.Characterize()
	if s.Vertices != 6 || s.Edges != 14 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxInDegree != 4 {
		t.Errorf("MaxInDegree = %d, want 4", s.MaxInDegree)
	}
	if s.ZeroInDegree != 0 {
		t.Errorf("ZeroInDegree = %d, want 0", s.ZeroInDegree)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := fig3Graph(t)
	edges := g.Edges()
	h, err := FromEdges(g.NumVertices(), edges, false)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if !Equal(g, h) {
		t.Error("rebuilding from Edges() changed the graph")
	}
}

func TestAdjacencyIORoundTrip(t *testing.T) {
	g := fig3Graph(t)
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatalf("WriteAdjacency: %v", err)
	}
	h, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatalf("ReadAdjacency: %v", err)
	}
	if !Equal(g, h) {
		t.Error("adjacency round-trip changed the graph")
	}
}

func TestWeightedAdjacencyIORoundTrip(t *testing.T) {
	edges := []Edge{{0, 1, 5}, {1, 2, 7}, {2, 0, 9}, {0, 2, 1}}
	g, err := FromEdges(3, edges, true)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatalf("WriteAdjacency: %v", err)
	}
	h, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatalf("ReadAdjacency: %v", err)
	}
	if !h.Weighted() {
		t.Fatal("weighted flag lost")
	}
	if !Equal(g, h) {
		t.Error("weighted adjacency round-trip changed the graph")
	}
}

func TestEdgeListIORoundTrip(t *testing.T) {
	g := fig3Graph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if !Equal(g, h) {
		t.Error("edge-list round-trip changed the graph")
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% other comment\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestReadAdjacencyRejectsGarbage(t *testing.T) {
	cases := []string{
		"NotAHeader\n1\n0\n0\n",
		"AdjacencyGraph\n2\n1\n0\n0\n7\n", // target out of range
		"AdjacencyGraph\n2\n1\n5\n0\n0\n", // non-monotonic offsets
		"AdjacencyGraph\n2\n",             // truncated
	}
	for i, c := range cases {
		if _, err := ReadAdjacency(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			Src:    VertexID(rng.Intn(n)),
			Dst:    VertexID(rng.Intn(n)),
			Weight: int32(rng.Intn(100) + 1),
		}
	}
	return edges
}

func randomPerm(rng *rand.Rand, n int) []VertexID {
	perm := make([]VertexID, n)
	for i, p := range rng.Perm(n) {
		perm[i] = VertexID(p)
	}
	return perm
}

// Property: relabelling preserves isomorphism and degree multisets for random
// graphs and random permutations.
func TestRelabelPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		m := rng.Intn(300)
		g, err := FromEdges(n, randomEdges(rng, n, m), true)
		if err != nil {
			return false
		}
		perm := randomPerm(rng, n)
		h, err := g.Relabel(perm)
		if err != nil {
			return false
		}
		return IsIsomorphicUnder(g, h, perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adjacency-format round trip is identity for random graphs.
func TestAdjacencyRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		m := rng.Intn(200)
		g, err := FromEdges(n, randomEdges(rng, n, m), seed%2 == 0)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteAdjacency(&buf, g); err != nil {
			return false
		}
		h, err := ReadAdjacency(&buf)
		if err != nil {
			return false
		}
		return Equal(g, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		g, err := FromEdges(n, randomEdges(rng, n, rng.Intn(250)), false)
		if err != nil {
			return false
		}
		return Equal(g, g.Transpose().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
