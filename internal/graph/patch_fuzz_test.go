package graph

import (
	"testing"
)

// FuzzPatchEdgesPermN drives the grown-injection contract with fuzzed
// graphs, injections, swaps and edge churn, using relabel+rebuild over the
// grown space as the oracle. Invalid shapes the fuzzer produces must be
// rejected with an error, never a panic or a silently wrong graph.
func FuzzPatchEdgesPermN(f *testing.F) {
	f.Add(uint8(8), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(1), uint8(1), []byte{0, 0, 0})
	f.Add(uint8(31), uint8(7), []byte{0xff, 0x80, 0x40, 0x20, 0x10, 8, 4, 2, 1, 0})
	f.Add(uint8(5), uint8(0), []byte{9, 9, 9, 9, 1, 2})
	// Headroom-growth seeds: a zero mode byte after the edge stream selects
	// the identity-outside-grown-segment injection.
	f.Add(uint8(12), uint8(4), []byte{2, 1, 2, 3, 4, 0, 5, 6, 7, 8, 9})
	f.Add(uint8(6), uint8(2), []byte{1, 3, 1, 2, 0, 4, 6, 1})
	f.Fuzz(func(t *testing.T, nOldB, growB uint8, data []byte) {
		next := byteStream(data)
		nOld := 1 + int(nOldB%32)
		growth := int(growB % 8)
		nNew := nOld + growth
		weighted := len(data)%2 == 0

		// Base graph from the byte stream.
		nEdges := int(next()) % 64
		edges := make([]Edge, 0, nEdges)
		for i := 0; i < nEdges; i++ {
			w := int32(1)
			if weighted {
				w = int32(next()%4) + 1
			}
			edges = append(edges, Edge{
				Src:    VertexID(int(next()) % nOld),
				Dst:    VertexID(int(next()) % nOld),
				Weight: w,
			})
		}
		g, err := FromEdges(nOld, edges, weighted)
		if err != nil {
			t.Fatalf("FromEdges on in-range inputs: %v", err)
		}

		// Injection shape: one in four inputs takes the headroom-growth form
		// — old IDs untouched (identity prefix), admitted rows in reserved
		// tail slots — which must hit the no-remap fast path. The rest is a
		// growth shift with byte-chosen holes plus a few swaps, the shape
		// pre-headroom repair + admission epochs produce.
		identity := next()%4 == 0
		var holes []VertexID
		var perm []VertexID
		if identity {
			for h := nOld; h < nNew; h++ {
				holes = append(holes, VertexID(h))
			}
			perm = make([]VertexID, nOld)
			for v := range perm {
				perm[v] = VertexID(v)
			}
		} else {
			used := make(map[VertexID]bool)
			for len(holes) < growth {
				h := VertexID(int(next()) % nNew)
				for used[h] {
					h = (h + 1) % VertexID(nNew)
				}
				used[h] = true
				holes = append(holes, h)
			}
			perm = growthInjection(nOld, nNew, holes)
			for s := int(next()) % 4; s > 0; s-- {
				a, b := int(next())%nOld, int(next())%nOld
				perm[a], perm[b] = perm[b], perm[a]
			}
		}

		// Churn: delete live edges (named in new-ID space), add edges that
		// may touch grown IDs.
		live := g.Edges()
		var dels []Edge
		for i := int(next()) % 8; i > 0 && len(live) > 0; i-- {
			j := int(next()) % len(live)
			e := live[j]
			dels = append(dels, Edge{Src: perm[e.Src], Dst: perm[e.Dst], Weight: e.Weight})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		var adds []Edge
		for i := int(next()) % 8; i > 0; i-- {
			w := int32(1)
			if weighted {
				w = int32(next()%4) + 1
			}
			src := VertexID(int(next()) % nNew)
			if len(holes) > 0 && next()%2 == 0 {
				src = holes[int(next())%len(holes)]
			}
			adds = append(adds, Edge{Src: src, Dst: VertexID(int(next()) % nNew), Weight: w})
		}

		patched, st, err := g.PatchEdgesPermN(nNew, adds, dels, perm)
		if err != nil {
			t.Fatalf("valid grown patch rejected: %v", err)
		}
		want, err := FromEdges(nNew, append(applyPermToEdges(live, perm), adds...), weighted)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(patched, want) {
			t.Fatalf("nOld=%d nNew=%d: grown perm patch differs from relabel+rebuild", nOld, nNew)
		}
		if covered := st.EdgesCopied + st.EdgesMerged + st.EdgesRemapped; covered < patched.NumEdges() {
			t.Fatalf("stats cover %d of %d edges", covered, patched.NumEdges())
		}
		if identity && st.EdgesRemapped != 0 {
			t.Fatalf("identity injection remapped %d edges; the O(delta) fast path was skipped", st.EdgesRemapped)
		}

		// The validation surface: malformed injections must error out.
		if _, _, err := g.PatchEdgesPermN(nOld-1, nil, nil, nil); err == nil {
			t.Fatal("shrinking patch accepted")
		}
		if nOld >= 2 {
			bad := make([]VertexID, nOld)
			copy(bad, perm[:nOld])
			bad[1] = bad[0] // collide: no longer injective
			if _, _, err := g.PatchEdgesPermN(nNew, nil, nil, bad); err == nil {
				t.Fatal("non-injective perm accepted")
			}
		}
		if _, _, err := g.PatchEdgesPermN(nNew, []Edge{{Src: VertexID(nNew), Dst: 0, Weight: 1}}, nil, perm); err == nil {
			t.Fatal("out-of-range add accepted")
		}
	})
}

// byteStream returns a cursor over data that yields 0 forever once
// exhausted, keeping derivations total on arbitrary fuzz inputs.
func byteStream(data []byte) func() byte {
	i := 0
	return func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
}
