package graph

import (
	"fmt"
	"sort"
)

// PatchStats reports how much construction work a PatchEdges call did, in
// edges. Merged edges go through the full per-row merge-and-sort path;
// copied edges are block memcpy of untouched rows, an order of magnitude
// cheaper per edge than building a graph from scratch (which counting-sorts
// and scatters every edge twice).
type PatchStats struct {
	RowsMerged  int   // dirty CSR rows + dirty CSC rows rebuilt
	EdgesMerged int64 // edges written through row merges (both directions)
	EdgesCopied int64 // edges block-copied from untouched rows (both directions)
}

// PatchEdges returns a new graph equal to g with dels removed and adds
// inserted, without rebuilding untouched adjacency rows: only the rows of
// vertices incident to a change are merged, everything else is block-copied.
// Each deletion removes one occurrence of exactly (Src, Dst, Weight) as
// stored — i.e. with weights normalized the way FromEdges stores them (1 on
// unweighted graphs and for zero input weights); it is an error if no such
// occurrence exists. The receiver is not modified. Merged rows are sorted by
// (neighbor, weight); untouched rows keep their original order.
func (g *Graph) PatchEdges(adds, dels []Edge) (*Graph, PatchStats, error) {
	return g.PatchEdgesPerm(adds, dels, nil)
}

// PatchEdgesPerm generalizes PatchEdges with a segment-local renumbering:
// the result equals g relabeled by perm, then patched with dels removed and
// adds inserted (both given in post-perm IDs). perm maps each of g's vertex
// IDs to its new ID and must be a permutation of [0, n); nil selects the
// identity. The cost scales with the change, not the graph: only rows owned
// by or referencing a moved vertex (perm[v] != v), plus rows incident to an
// explicit add or delete, are merged — everything else is block-copied. This
// is the patch-path contract behind placement-preserving repair: a swap
// exchanges two IDs, so perm differs from the identity at exactly the
// swapped positions and the rest of the graph is reused wholesale.
func (g *Graph) PatchEdgesPerm(adds, dels []Edge, perm []VertexID) (*Graph, PatchStats, error) {
	var st PatchStats
	for _, e := range adds {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			return nil, st, fmt.Errorf("graph: patch add (%d,%d) out of range n=%d", e.Src, e.Dst, g.n)
		}
	}
	for _, e := range dels {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			return nil, st, fmt.Errorf("graph: patch delete (%d,%d) out of range n=%d", e.Src, e.Dst, g.n)
		}
	}
	var inv, moved []VertexID
	if perm != nil {
		if len(perm) != g.n {
			return nil, st, fmt.Errorf("graph: patch perm length %d != n %d", len(perm), g.n)
		}
		inv = make([]VertexID, g.n)
		for i := range inv {
			inv[i] = VertexID(g.n) // sentinel: not yet assigned
		}
		for old, nw := range perm {
			if int(nw) >= g.n || inv[nw] != VertexID(g.n) {
				return nil, st, fmt.Errorf("graph: patch perm is not a permutation at %d -> %d", old, nw)
			}
			inv[nw] = VertexID(old)
			if VertexID(old) != nw {
				moved = append(moved, VertexID(old))
			}
		}
	}
	m := g.NumEdges() + int64(len(adds)) - int64(len(dels))
	if m < 0 {
		return nil, st, fmt.Errorf("graph: patch deletes %d edges from a graph with %d + %d added", len(dels), g.NumEdges(), len(adds))
	}
	out := &Graph{n: g.n, weighted: g.weighted}

	var err error
	out.outOff, out.outDst, out.outW, err = patchSide(
		g.n, g.outOff, g.outDst, g.outW, adds, dels, g.weighted,
		func(e Edge) (VertexID, VertexID) { return e.Src, e.Dst },
		perm, inv, moved, g.InNeighbors, &st)
	if err != nil {
		return nil, st, fmt.Errorf("graph: patch out-edges: %w", err)
	}
	out.inOff, out.inSrc, out.inW, err = patchSide(
		g.n, g.inOff, g.inSrc, g.inW, adds, dels, g.weighted,
		func(e Edge) (VertexID, VertexID) { return e.Dst, e.Src },
		perm, inv, moved, g.OutNeighbors, &st)
	if err != nil {
		return nil, st, fmt.Errorf("graph: patch in-edges: %w", err)
	}
	return out, st, nil
}

// patchSide rebuilds one adjacency direction. key maps an edge to its (row
// owner, stored neighbor) for this direction; refRows returns the rows (in
// pre-perm IDs) whose adjacency lists mention a given pre-perm vertex, so
// rows holding stale references to moved vertices can be located without
// scanning the graph. adds and dels are in post-perm IDs.
func patchSide(n int, off []int64, ids []VertexID, ws []int32,
	adds, dels []Edge, weighted bool,
	key func(Edge) (VertexID, VertexID),
	perm, inv, moved []VertexID, refRows func(VertexID) []VertexID,
	st *PatchStats,
) ([]int64, []VertexID, []int32, error) {
	type entry struct {
		id VertexID
		w  int32
	}
	normW := func(w int32) int32 {
		if !weighted || w == 0 {
			return 1
		}
		return w
	}
	rowAdds := make(map[VertexID][]entry)
	for _, e := range adds {
		v, nb := key(e)
		rowAdds[v] = append(rowAdds[v], entry{nb, normW(e.Weight)})
	}
	rowDels := make(map[VertexID][]entry)
	for _, e := range dels {
		v, nb := key(e)
		rowDels[v] = append(rowDels[v], entry{nb, normW(e.Weight)})
	}

	// Dirty rows, in post-perm IDs: rows with explicit changes, rows owned
	// by moved vertices (their content relocates and may self-reference),
	// and rows whose lists mention a moved vertex (their stored neighbor IDs
	// went stale). Everything else block-copies: an untouched row is owned
	// by an unmoved vertex and references only unmoved vertices.
	dirty := make(map[VertexID]struct{}, len(rowAdds)+len(rowDels)+2*len(moved))
	for v := range rowAdds {
		dirty[v] = struct{}{}
	}
	for v := range rowDels {
		dirty[v] = struct{}{}
	}
	for _, a := range moved {
		dirty[perm[a]] = struct{}{}
		for _, r := range refRows(a) {
			dirty[perm[r]] = struct{}{}
		}
	}

	oldRow := func(v VertexID) VertexID {
		if inv == nil {
			return v
		}
		return inv[v]
	}
	mapID := func(id VertexID) VertexID {
		if perm == nil {
			return id
		}
		return perm[id]
	}

	newOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		u := oldRow(VertexID(v))
		deg := off[u+1] - off[u]
		deg += int64(len(rowAdds[VertexID(v)])) - int64(len(rowDels[VertexID(v)]))
		if deg < 0 {
			return nil, nil, nil, fmt.Errorf("row %d: more deletions than edges", v)
		}
		newOff[v+1] = newOff[v] + deg
	}
	newIDs := make([]VertexID, newOff[n])
	newWs := make([]int32, newOff[n])

	for v := 0; v < n; v++ {
		u := oldRow(VertexID(v))
		dst := newIDs[newOff[v]:newOff[v+1]]
		dw := newWs[newOff[v]:newOff[v+1]]
		if _, isDirty := dirty[VertexID(v)]; !isDirty {
			// Clean rows are owned by unmoved vertices (u == v) and mention
			// only unmoved neighbors, so the stored IDs are still valid.
			copy(dst, ids[off[u]:off[u+1]])
			copy(dw, ws[off[u]:off[u+1]])
			st.EdgesCopied += off[u+1] - off[u]
			continue
		}
		va := rowAdds[VertexID(v)]
		vd := rowDels[VertexID(v)]
		// Merge the dirty row: remap surviving neighbors through perm, drop
		// one occurrence per deletion, append the additions, and re-sort by
		// (neighbor, weight).
		pending := make(map[entry]int, len(vd))
		for _, e := range vd {
			pending[e]++
		}
		k := 0
		for i := off[u]; i < off[u+1]; i++ {
			e := entry{mapID(ids[i]), ws[i]}
			if pending[e] > 0 {
				pending[e]--
				continue
			}
			if k == len(dst) {
				// Only reachable when a deletion below will not match.
				break
			}
			dst[k] = e.id
			dw[k] = e.w
			k++
		}
		for e, c := range pending {
			if c > 0 {
				return nil, nil, nil, fmt.Errorf("row %d: deletion of non-existent edge to %d (weight %d)", v, e.id, e.w)
			}
		}
		for _, e := range va {
			dst[k] = e.id
			dw[k] = e.w
			k++
		}
		// Re-sort the merged row with the same (neighbor, weight) comparator
		// construction uses, keeping patched rows byte-identical to
		// scratch-built ones.
		sort.Sort(adjSegment{ids: dst, ws: dw})
		st.RowsMerged++
		st.EdgesMerged += int64(k)
	}
	return newOff, newIDs, newWs, nil
}
