package graph

import (
	"fmt"
	"sort"
)

// PatchStats reports how much construction work a PatchEdges call did, in
// edges. Merged edges go through the full per-row merge-and-sort path;
// remapped edges are entries whose stored neighbor ID was rewritten through
// the permutation (the affected row is re-sorted only when the rewrite
// broke its order); copied edges are block memcpy — untouched rows, and the
// unchanged entries of remap-only rows, including rows that merely
// relocated to a new index — an order of magnitude cheaper per edge than
// building a graph from scratch (which counting-sorts and scatters every
// edge twice).
type PatchStats struct {
	RowsMerged    int   // dirty CSR rows + dirty CSC rows rebuilt via merge
	RowsRemapped  int   // rows with at least one entry rewritten, or relocated
	EdgesMerged   int64 // edges written through row merges (both directions)
	EdgesRemapped int64 // entries rewritten through the permutation (both directions)
	EdgesCopied   int64 // edges block-copied unchanged (both directions)
}

// PatchEdges returns a new graph equal to g with dels removed and adds
// inserted, without rebuilding untouched adjacency rows: only the rows of
// vertices incident to a change are merged, everything else is block-copied.
// Each deletion removes one occurrence of exactly (Src, Dst, Weight) as
// stored — i.e. with weights normalized the way FromEdges stores them (1 on
// unweighted graphs and for zero input weights); it is an error if no such
// occurrence exists. The receiver is not modified. Merged rows are sorted by
// (neighbor, weight); untouched rows keep their original order.
func (g *Graph) PatchEdges(adds, dels []Edge) (*Graph, PatchStats, error) {
	return g.PatchEdgesPermN(g.n, adds, dels, nil)
}

// PatchEdgesN is PatchEdges over a grown vertex space: the result has
// nNew ≥ g.NumVertices() vertices, the appended vertices starting with
// empty adjacency rows (plus whatever adds reference them). This is the
// snapshot-growth contract: original vertex IDs are append-only, so a
// snapshot of a graph that admitted vertices patches from an older
// snapshot by row-array extension, never by re-materialization.
func (g *Graph) PatchEdgesN(nNew int, adds, dels []Edge) (*Graph, PatchStats, error) {
	return g.PatchEdgesPermN(nNew, adds, dels, nil)
}

// PatchEdgesPerm generalizes PatchEdges with a segment-local renumbering:
// the result equals g relabeled by perm, then patched with dels removed and
// adds inserted (both given in post-perm IDs). perm maps each of g's vertex
// IDs to its new ID and must be a permutation of [0, n); nil selects the
// identity. The cost scales with the change, not the graph: only rows owned
// by or referencing a moved vertex (perm[v] != v), plus rows incident to an
// explicit add or delete, are merged or remapped — everything else is
// block-copied. This is the patch-path contract behind placement-preserving
// repair: a swap exchanges two IDs, so perm differs from the identity at
// exactly the swapped positions and the rest of the graph is reused
// wholesale.
func (g *Graph) PatchEdgesPerm(adds, dels []Edge, perm []VertexID) (*Graph, PatchStats, error) {
	return g.PatchEdgesPermN(g.n, adds, dels, perm)
}

// PatchEdgesPermN is PatchEdgesPerm over a grown vertex space. The result
// has nNew vertices; perm (length g.NumVertices()) must be injective into
// [0, nNew), and new IDs without a preimage under perm start with empty
// rows. This is the segment-growth contract: admissions land in reserved
// headroom slots at their partition segment's tail, so the injection is the
// identity outside the grown segments — typically the identity everywhere,
// since the pre-existing vertices keep their slots. An identity injection
// (no vertex moved) is detected and takes the nil-perm path: no remap row
// class at all, every untouched row block-copies, and the patch cost is
// O(delta). Only maintenance that actually relocates vertices (swap repair,
// segment re-sorts, spill relabeling) produces non-identity injections, and
// those remap exactly the rows owned by or referencing a moved vertex.
func (g *Graph) PatchEdgesPermN(nNew int, adds, dels []Edge, perm []VertexID) (*Graph, PatchStats, error) {
	var st PatchStats
	if nNew < g.n {
		return nil, st, fmt.Errorf("graph: patch shrinks vertex space %d -> %d", g.n, nNew)
	}
	for _, e := range adds {
		if int(e.Src) >= nNew || int(e.Dst) >= nNew {
			return nil, st, fmt.Errorf("graph: patch add (%d,%d) out of range n=%d", e.Src, e.Dst, nNew)
		}
	}
	for _, e := range dels {
		if int(e.Src) >= nNew || int(e.Dst) >= nNew {
			return nil, st, fmt.Errorf("graph: patch delete (%d,%d) out of range n=%d", e.Src, e.Dst, nNew)
		}
	}
	var inv, moved []VertexID
	if perm != nil {
		if len(perm) != g.n {
			return nil, st, fmt.Errorf("graph: patch perm length %d != n %d", len(perm), g.n)
		}
		inv = make([]VertexID, nNew)
		for i := range inv {
			inv[i] = VertexID(g.n) // sentinel: no preimage
		}
		for old, nw := range perm {
			if int(nw) >= nNew || inv[nw] != VertexID(g.n) {
				return nil, st, fmt.Errorf("graph: patch perm is not injective at %d -> %d", old, nw)
			}
			inv[nw] = VertexID(old)
			if VertexID(old) != nw {
				moved = append(moved, VertexID(old))
			}
		}
		if len(moved) == 0 {
			// Identity injection (headroom growth without relocation): inv is
			// the identity prefix the nil-perm branch below would build, so
			// drop perm entirely — no remap row class, clean rows block-copy.
			perm = nil
		}
	} else if nNew > g.n {
		// Identity map into a larger space: preimages are the identity
		// prefix, appended rows have none.
		inv = make([]VertexID, nNew)
		for i := range inv {
			if i < g.n {
				inv[i] = VertexID(i)
			} else {
				inv[i] = VertexID(g.n)
			}
		}
	}
	m := g.NumEdges() + int64(len(adds)) - int64(len(dels))
	if m < 0 {
		return nil, st, fmt.Errorf("graph: patch deletes %d edges from a graph with %d + %d added", len(dels), g.NumEdges(), len(adds))
	}
	out := &Graph{n: nNew, weighted: g.weighted}

	var err error
	out.outOff, out.outDst, out.outW, err = patchSide(
		g.n, nNew, g.outOff, g.outDst, g.outW, adds, dels, g.weighted,
		func(e Edge) (VertexID, VertexID) { return e.Src, e.Dst },
		perm, inv, moved, g.InNeighbors, &st)
	if err != nil {
		return nil, st, fmt.Errorf("graph: patch out-edges: %w", err)
	}
	out.inOff, out.inSrc, out.inW, err = patchSide(
		g.n, nNew, g.inOff, g.inSrc, g.inW, adds, dels, g.weighted,
		func(e Edge) (VertexID, VertexID) { return e.Dst, e.Src },
		perm, inv, moved, g.OutNeighbors, &st)
	if err != nil {
		return nil, st, fmt.Errorf("graph: patch in-edges: %w", err)
	}
	return out, st, nil
}

// patchSide rebuilds one adjacency direction. key maps an edge to its (row
// owner, stored neighbor) for this direction; refRows returns the rows (in
// pre-perm IDs) whose adjacency lists mention a given pre-perm vertex, so
// rows holding stale references to moved vertices can be located without
// scanning the graph. adds and dels are in post-perm IDs. Rows fall into
// three classes: rows with explicit adds/dels are merged (rewrite + re-sort),
// rows merely owned by or referencing a moved vertex are remapped (linear ID
// rewrite, re-sorted only if the rewrite broke the order — segment shifts
// are monotone and preserve it), and everything else is block-copied.
func patchSide(nOld, n int, off []int64, ids []VertexID, ws []int32,
	adds, dels []Edge, weighted bool,
	key func(Edge) (VertexID, VertexID),
	perm, inv, moved []VertexID, refRows func(VertexID) []VertexID,
	st *PatchStats,
) ([]int64, []VertexID, []int32, error) {
	type entry struct {
		id VertexID
		w  int32
	}
	normW := func(w int32) int32 {
		if !weighted || w == 0 {
			return 1
		}
		return w
	}
	rowAdds := make(map[VertexID][]entry)
	for _, e := range adds {
		v, nb := key(e)
		rowAdds[v] = append(rowAdds[v], entry{nb, normW(e.Weight)})
	}
	rowDels := make(map[VertexID][]entry)
	for _, e := range dels {
		v, nb := key(e)
		rowDels[v] = append(rowDels[v], entry{nb, normW(e.Weight)})
	}

	// Remap-dirty rows, in post-perm IDs: rows owned by moved vertices
	// (their content relocates and may self-reference) and rows whose lists
	// mention a moved vertex (their stored neighbor IDs went stale). When
	// most of the graph moved — the segment-growth regime, where every
	// vertex after the first grown partition shifts — locating referencing
	// rows through the reverse adjacency costs as much as flagging
	// everything, so flag everything.
	var remap map[VertexID]struct{}
	allRemap := perm != nil && 2*len(moved) > nOld
	if !allRemap && len(moved) > 0 {
		remap = make(map[VertexID]struct{}, 2*len(moved))
		for _, a := range moved {
			remap[perm[a]] = struct{}{}
			for _, r := range refRows(a) {
				remap[perm[r]] = struct{}{}
			}
		}
	}

	oldRow := func(v VertexID) VertexID {
		if inv == nil {
			return v
		}
		return inv[v]
	}
	mapID := func(id VertexID) VertexID {
		if perm == nil {
			return id
		}
		return perm[id]
	}

	newOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		var deg int64
		if u := oldRow(VertexID(v)); int(u) < nOld {
			deg = off[u+1] - off[u]
		}
		deg += int64(len(rowAdds[VertexID(v)])) - int64(len(rowDels[VertexID(v)]))
		if deg < 0 {
			return nil, nil, nil, fmt.Errorf("row %d: more deletions than edges", v)
		}
		newOff[v+1] = newOff[v] + deg
	}
	newIDs := make([]VertexID, newOff[n])
	newWs := make([]int32, newOff[n])

	for v := 0; v < n; v++ {
		u := oldRow(VertexID(v))
		dst := newIDs[newOff[v]:newOff[v+1]]
		dw := newWs[newOff[v]:newOff[v+1]]
		va := rowAdds[VertexID(v)]
		vd := rowDels[VertexID(v)]
		if int(u) >= nOld {
			// Appended vertex: no base row, only additions.
			if len(vd) > 0 {
				return nil, nil, nil, fmt.Errorf("row %d: deletion of non-existent edge to %d (weight %d)", v, vd[0].id, vd[0].w)
			}
			for k, e := range va {
				dst[k] = e.id
				dw[k] = e.w
			}
			sort.Sort(adjSegment{ids: dst, ws: dw})
			st.RowsMerged++
			st.EdgesMerged += int64(len(va))
			continue
		}
		if len(va) == 0 && len(vd) == 0 {
			dirty := allRemap
			if !dirty {
				_, dirty = remap[VertexID(v)]
			}
			if !dirty {
				// Clean rows are owned by unmoved vertices (u == v) and
				// mention only unmoved neighbors, so the stored IDs are
				// still valid.
				copy(dst, ids[off[u]:off[u+1]])
				copy(dw, ws[off[u]:off[u+1]])
				st.EdgesCopied += off[u+1] - off[u]
				continue
			}
			// Remap-only row: content unchanged, stale IDs rewritten through
			// perm. Segment shifts are monotone inside a row's neighbor
			// list, so sortedness usually survives; re-sort only when a
			// swapped neighbor broke it. Entries whose neighbor did not move
			// copy through unchanged — a row that merely relocated (its
			// owner moved, its neighbors did not) is a block copy at a new
			// index, so only the genuinely rewritten entries count as remap
			// work.
			sorted := true
			var rewritten int64
			for i := off[u]; i < off[u+1]; i++ {
				k := i - off[u]
				dst[k] = mapID(ids[i])
				if dst[k] != ids[i] {
					rewritten++
				}
				dw[k] = ws[i]
				if k > 0 && (dst[k] < dst[k-1] || (dst[k] == dst[k-1] && dw[k] < dw[k-1])) {
					sorted = false
				}
			}
			if !sorted {
				sort.Sort(adjSegment{ids: dst, ws: dw})
			}
			st.RowsRemapped++
			st.EdgesRemapped += rewritten
			st.EdgesCopied += off[u+1] - off[u] - rewritten
			continue
		}
		// Merge the dirty row: remap surviving neighbors through perm, drop
		// one occurrence per deletion, append the additions, and re-sort by
		// (neighbor, weight).
		pending := make(map[entry]int, len(vd))
		for _, e := range vd {
			pending[e]++
		}
		k := 0
		for i := off[u]; i < off[u+1]; i++ {
			e := entry{mapID(ids[i]), ws[i]}
			if pending[e] > 0 {
				pending[e]--
				continue
			}
			if k == len(dst) {
				// Only reachable when a deletion below will not match.
				break
			}
			dst[k] = e.id
			dw[k] = e.w
			k++
		}
		for e, c := range pending {
			if c > 0 {
				return nil, nil, nil, fmt.Errorf("row %d: deletion of non-existent edge to %d (weight %d)", v, e.id, e.w)
			}
		}
		for _, e := range va {
			dst[k] = e.id
			dw[k] = e.w
			k++
		}
		// Re-sort the merged row with the same (neighbor, weight) comparator
		// construction uses, keeping patched rows byte-identical to
		// scratch-built ones.
		sort.Sort(adjSegment{ids: dst, ws: dw})
		st.RowsMerged++
		st.EdgesMerged += int64(k)
	}
	return newOff, newIDs, newWs, nil
}
