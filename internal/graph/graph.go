// Package graph provides the in-memory graph representations used throughout
// the VEBO reproduction: compressed sparse row (CSR, out-edges), compressed
// sparse column (CSC, in-edges) and coordinate (COO) forms, together with
// construction, transposition, relabelling and characterization utilities.
//
// Vertex identifiers are dense uint32 values in [0, NumVertices). Edge counts
// use int64 so that graphs larger than 2^31 edges remain representable even
// though the test workloads are far smaller.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: every value in
// [0, Graph.NumVertices()) names a vertex.
type VertexID = uint32

// Edge is a single directed edge with an optional weight. Unweighted graphs
// carry Weight 1 on every edge.
type Edge struct {
	Src    VertexID
	Dst    VertexID
	Weight int32
}

// Graph is a directed graph stored simultaneously in CSR (out-edges, grouped
// by source) and CSC (in-edges, grouped by destination) form. Both views are
// built once at construction and are immutable afterwards; the processing
// engines read whichever view suits the traversal direction.
//
//vebo:frozen allow=sortAdjacency
type Graph struct {
	n int // number of vertices

	// CSR: out-edges. outOff has n+1 entries; the out-neighbours of v are
	// outDst[outOff[v]:outOff[v+1]] with weights outW at the same indices.
	outOff []int64
	outDst []VertexID
	outW   []int32

	// CSC: in-edges. inOff has n+1 entries; the in-neighbours (sources of
	// edges pointing at v) are inSrc[inOff[v]:inOff[v+1]].
	inOff []int64
	inSrc []VertexID
	inW   []int32

	weighted bool
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.outDst)) }

// Weighted reports whether the graph carries non-unit edge weights.
func (g *Graph) Weighted() bool { return g.weighted }

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int64 { return g.outOff[v+1] - g.outOff[v] }

// InDegree reports the in-degree of v.
func (g *Graph) InDegree(v VertexID) int64 { return g.inOff[v+1] - g.inOff[v] }

// OutNeighbors returns the slice of destinations of v's out-edges. The slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outDst[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns the slice of sources of v's in-edges. The slice aliases
// internal storage and must not be modified.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.inSrc[g.inOff[v]:g.inOff[v+1]]
}

// OutWeights returns the weights parallel to OutNeighbors(v).
func (g *Graph) OutWeights(v VertexID) []int32 {
	return g.outW[g.outOff[v]:g.outOff[v+1]]
}

// InWeights returns the weights parallel to InNeighbors(v).
func (g *Graph) InWeights(v VertexID) []int32 {
	return g.inW[g.inOff[v]:g.inOff[v+1]]
}

// OutOffsets exposes the CSR offset array (length n+1). Read-only.
func (g *Graph) OutOffsets() []int64 { return g.outOff }

// InOffsets exposes the CSC offset array (length n+1). Read-only.
func (g *Graph) InOffsets() []int64 { return g.inOff }

// OutEdgeTargets exposes the flat CSR destination array. Read-only.
func (g *Graph) OutEdgeTargets() []VertexID { return g.outDst }

// InEdgeSources exposes the flat CSC source array. Read-only.
func (g *Graph) InEdgeSources() []VertexID { return g.inSrc }

// MaxInDegree returns the largest in-degree in the graph.
func (g *Graph) MaxInDegree() int64 {
	var m int64
	for v := 0; v < g.n; v++ {
		if d := g.inOff[v+1] - g.inOff[v]; d > m {
			m = d
		}
	}
	return m
}

// MaxOutDegree returns the largest out-degree in the graph.
func (g *Graph) MaxOutDegree() int64 {
	var m int64
	for v := 0; v < g.n; v++ {
		if d := g.outOff[v+1] - g.outOff[v]; d > m {
			m = d
		}
	}
	return m
}

// CountZeroInDegree returns the number of vertices with in-degree zero.
func (g *Graph) CountZeroInDegree() int {
	c := 0
	for v := 0; v < g.n; v++ {
		if g.inOff[v+1] == g.inOff[v] {
			c++
		}
	}
	return c
}

// CountZeroOutDegree returns the number of vertices with out-degree zero.
func (g *Graph) CountZeroOutDegree() int {
	c := 0
	for v := 0; v < g.n; v++ {
		if g.outOff[v+1] == g.outOff[v] {
			c++
		}
	}
	return c
}

// InDegrees returns a freshly allocated slice of all in-degrees.
func (g *Graph) InDegrees() []int64 {
	d := make([]int64, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.inOff[v+1] - g.inOff[v]
	}
	return d
}

// OutDegrees returns a freshly allocated slice of all out-degrees.
func (g *Graph) OutDegrees() []int64 {
	d := make([]int64, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.outOff[v+1] - g.outOff[v]
	}
	return d
}

// Edges materializes the edge list in CSR order (sorted by source, then by
// the order destinations appear in the CSR arrays).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, len(g.outDst))
	for v := 0; v < g.n; v++ {
		for i := g.outOff[v]; i < g.outOff[v+1]; i++ {
			edges = append(edges, Edge{Src: VertexID(v), Dst: g.outDst[i], Weight: g.outW[i]})
		}
	}
	return edges
}

// FromEdges builds a Graph from an edge list. The edge list may be in any
// order; self-loops and parallel edges are retained (graph frameworks such as
// Ligra keep them, and the balance analysis counts every edge). weighted
// controls whether the per-edge weights are preserved; when false all weights
// are forced to 1.
func FromEdges(n int, edges []Edge, weighted bool) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.Src, e.Dst, n)
		}
	}
	g := &Graph{n: n, weighted: weighted}
	g.outOff = make([]int64, n+1)
	g.inOff = make([]int64, n+1)
	for _, e := range edges {
		g.outOff[e.Src+1]++
		g.inOff[e.Dst+1]++
	}
	for v := 0; v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	m := int64(len(edges))
	g.outDst = make([]VertexID, m)
	g.outW = make([]int32, m)
	g.inSrc = make([]VertexID, m)
	g.inW = make([]int32, m)
	outNext := make([]int64, n)
	inNext := make([]int64, n)
	copy(outNext, g.outOff[:n])
	copy(inNext, g.inOff[:n])
	for _, e := range edges {
		w := e.Weight
		if !weighted || w == 0 {
			w = 1
		}
		oi := outNext[e.Src]
		g.outDst[oi] = e.Dst
		g.outW[oi] = w
		outNext[e.Src]++
		ii := inNext[e.Dst]
		g.inSrc[ii] = e.Src
		g.inW[ii] = w
		inNext[e.Dst]++
	}
	// Keep neighbour lists sorted for deterministic traversal and binary
	// searchability.
	g.sortAdjacency()
	return g, nil
}

// sortAdjacency sorts each vertex's out- and in-neighbour list ascending by
// (neighbor, weight), keeping weights parallel. Ordering parallel edges by
// weight too makes row content a pure function of the edge multiset, so
// graphs built by FromEdges and graphs patched row-wise by PatchEdges are
// byte-identical for identical multisets.
func (g *Graph) sortAdjacency() {
	for v := 0; v < g.n; v++ {
		sortAdjRange(g.outDst, g.outW, g.outOff[v], g.outOff[v+1])
		sortAdjRange(g.inSrc, g.inW, g.inOff[v], g.inOff[v+1])
	}
}

func sortAdjRange(ids []VertexID, ws []int32, lo, hi int64) {
	if hi-lo < 2 {
		return
	}
	seg := adjSegment{ids: ids[lo:hi], ws: ws[lo:hi]}
	sort.Sort(seg)
}

type adjSegment struct {
	ids []VertexID
	ws  []int32
}

func (s adjSegment) Len() int { return len(s.ids) }
func (s adjSegment) Less(i, j int) bool {
	if s.ids[i] != s.ids[j] {
		return s.ids[i] < s.ids[j]
	}
	return s.ws[i] < s.ws[j]
}
func (s adjSegment) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// Transpose returns the graph with every edge reversed.
func (g *Graph) Transpose() *Graph {
	t := &Graph{
		n:        g.n,
		weighted: g.weighted,
		outOff:   g.inOff,
		outDst:   g.inSrc,
		outW:     g.inW,
		inOff:    g.outOff,
		inSrc:    g.outDst,
		inW:      g.outW,
	}
	return t
}

// Relabel returns a new graph in which every vertex v of g becomes perm[v].
// perm must be a permutation of [0, n). Edge (u,v) becomes
// (perm[u], perm[v]); the result is isomorphic to g.
func (g *Graph) Relabel(perm []VertexID) (*Graph, error) {
	if len(perm) != g.n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), g.n)
	}
	seen := make([]bool, g.n)
	for _, p := range perm {
		if int(p) >= g.n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.n; v++ {
		for i := g.outOff[v]; i < g.outOff[v+1]; i++ {
			edges = append(edges, Edge{
				Src:    perm[v],
				Dst:    perm[g.outDst[i]],
				Weight: g.outW[i],
			})
		}
	}
	return FromEdges(g.n, edges, g.weighted)
}

// RelabelInto relabels g into a vertex space of size nNew ≥ n through the
// injection perm (length n, injective into [0, nNew)). New IDs with no
// preimage become isolated vertices — empty adjacency rows. With nNew == n
// this is exactly Relabel; larger spaces are how slotted VEBO orderings
// (core.Result.SlotCounts) materialize reserved headroom positions.
func (g *Graph) RelabelInto(nNew int, perm []VertexID) (*Graph, error) {
	if nNew < g.n {
		return nil, fmt.Errorf("graph: relabel target %d smaller than n %d", nNew, g.n)
	}
	if len(perm) != g.n {
		return nil, fmt.Errorf("graph: injection length %d != n %d", len(perm), g.n)
	}
	seen := make([]bool, nNew)
	for _, p := range perm {
		if int(p) >= nNew || seen[p] {
			return nil, fmt.Errorf("graph: perm is not injective into [0, %d) (value %d)", nNew, p)
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.n; v++ {
		for i := g.outOff[v]; i < g.outOff[v+1]; i++ {
			edges = append(edges, Edge{
				Src:    perm[v],
				Dst:    perm[g.outDst[i]],
				Weight: g.outW[i],
			})
		}
	}
	return FromEdges(nNew, edges, g.weighted)
}

// DegreeHistogramIn returns counts[d] = number of vertices with in-degree d,
// for d in [0, MaxInDegree].
func (g *Graph) DegreeHistogramIn() []int64 {
	maxd := g.MaxInDegree()
	counts := make([]int64, maxd+1)
	for v := 0; v < g.n; v++ {
		counts[g.inOff[v+1]-g.inOff[v]]++
	}
	return counts
}

// HasEdge reports whether the directed edge (u,v) exists, using binary search
// over u's sorted out-neighbour list.
func (g *Graph) HasEdge(u, v VertexID) bool {
	nbrs := g.OutNeighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Stats summarizes a graph in the shape of the paper's Table I row.
type Stats struct {
	Vertices       int
	Edges          int64
	MaxInDegree    int64
	MaxOutDegree   int64
	ZeroInDegree   int     // count of vertices with in-degree 0
	ZeroOutDegree  int     // count of vertices with out-degree 0
	ZeroInPercent  float64 // 100*ZeroInDegree/Vertices
	ZeroOutPercent float64
}

// Characterize computes the Table I characterization of g.
func (g *Graph) Characterize() Stats {
	s := Stats{
		Vertices:      g.n,
		Edges:         g.NumEdges(),
		MaxInDegree:   g.MaxInDegree(),
		MaxOutDegree:  g.MaxOutDegree(),
		ZeroInDegree:  g.CountZeroInDegree(),
		ZeroOutDegree: g.CountZeroOutDegree(),
	}
	if g.n > 0 {
		s.ZeroInPercent = 100 * float64(s.ZeroInDegree) / float64(g.n)
		s.ZeroOutPercent = 100 * float64(s.ZeroOutDegree) / float64(g.n)
	}
	return s
}

// Equal reports whether two graphs have identical vertex counts and identical
// sorted adjacency structure (weights included).
func Equal(a, b *Graph) bool {
	if a.n != b.n || len(a.outDst) != len(b.outDst) {
		return false
	}
	for v := 0; v <= a.n; v++ {
		if a.outOff[v] != b.outOff[v] {
			return false
		}
	}
	for i := range a.outDst {
		if a.outDst[i] != b.outDst[i] || a.outW[i] != b.outW[i] {
			return false
		}
	}
	return true
}

// IsIsomorphicUnder verifies that h is the image of g under the vertex
// permutation perm, i.e. that (u,v) ∈ g ⇔ (perm[u],perm[v]) ∈ h with equal
// multiplicity and weight multiset. It is used by tests to validate
// reordering implementations.
func IsIsomorphicUnder(g, h *Graph, perm []VertexID) bool {
	if g.n != h.n || g.NumEdges() != h.NumEdges() || len(perm) != g.n {
		return false
	}
	type key struct {
		s, d VertexID
		w    int32
	}
	counts := make(map[key]int, g.NumEdges())
	for v := 0; v < g.n; v++ {
		for i := g.outOff[v]; i < g.outOff[v+1]; i++ {
			counts[key{perm[v], perm[g.outDst[i]], g.outW[i]}]++
		}
	}
	for v := 0; v < h.n; v++ {
		for i := h.outOff[v]; i < h.outOff[v+1]; i++ {
			k := key{VertexID(v), h.outDst[i], h.outW[i]}
			counts[k]--
			if counts[k] == 0 {
				delete(counts, k)
			}
		}
	}
	return len(counts) == 0
}
