package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 2.5 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	if s.Mean != 2.5 {
		t.Errorf("mean = %v", s.Mean)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	if m := Summarize([]float64{9, 1, 5}).Median; m != 5 {
		t.Errorf("median = %v, want 5", m)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int64{10, 20})
	if s.Mean != 15 {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestSpread(t *testing.T) {
	if sp := Summarize([]float64{2, 4, 8}).Spread(); sp != 4 {
		t.Errorf("spread = %v", sp)
	}
	if sp := Summarize([]float64{0, 5}).Spread(); !math.IsInf(sp, 1) {
		t.Errorf("zero-min spread = %v", sp)
	}
	if sp := Summarize([]float64{0, 0}).Spread(); sp != 1 {
		t.Errorf("all-zero spread = %v", sp)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Errorf("degenerate geomean = %v", g)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10, 5); s != 2 {
		t.Errorf("speedup = %v", s)
	}
	if s := Speedup(10, 0); !math.IsInf(s, 1) {
		t.Errorf("zero-variant speedup = %v", s)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{5, "5"}, {1500, "1.5k"}, {2_500_000, "2.500M"}, {3_000_000_000, "3.000G"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Errorf("FormatDuration(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: Min ≤ Median ≤ Max and Min ≤ Mean ≤ Max.
func TestSummaryOrderingQuick(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// keep magnitudes small enough that the sum cannot overflow
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
