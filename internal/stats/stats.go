// Package stats provides the summary statistics the paper's tables report:
// min, median, standard deviation, max (Table IV), spreads and speedups.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample in the shape of the paper's Table IV rows.
type Summary struct {
	N      int
	Min    float64
	Median float64
	Mean   float64
	StdDev float64
	Max    float64
}

// Summarize computes summary statistics of xs. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:   len(xs),
		Min: sorted[0],
		Max: sorted[len(sorted)-1],
	}
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	return s
}

// SummarizeInts converts and summarizes an int64 sample.
func SummarizeInts(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Spread returns Max/Min, the paper's "n-x spread" notion (e.g. "6.9x").
// A zero minimum yields +Inf unless the maximum is also zero.
func (s Summary) Spread() float64 {
	if s.Min == 0 {
		if s.Max == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return s.Max / s.Min
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// GeoMean returns the geometric mean of positive values; zero or negative
// entries are skipped.
func GeoMean(xs []float64) float64 {
	var logs float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logs += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logs / float64(n))
}

// Speedup formats a baseline/variant ratio: >1 means the variant is faster.
func Speedup(baseline, variant float64) float64 {
	if variant == 0 {
		return math.Inf(1)
	}
	return baseline / variant
}

// FormatDuration renders a modeled time (arbitrary units) compactly.
func FormatDuration(units int64) string {
	switch {
	case units >= 1_000_000_000:
		return fmt.Sprintf("%.3fG", float64(units)/1e9)
	case units >= 1_000_000:
		return fmt.Sprintf("%.3fM", float64(units)/1e6)
	case units >= 1_000:
		return fmt.Sprintf("%.1fk", float64(units)/1e3)
	default:
		return fmt.Sprintf("%d", units)
	}
}
