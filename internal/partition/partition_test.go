package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestByDestinationCoversAllVertices(t *testing.T) {
	g := chainGraph(t, 100)
	parts, err := ByDestination(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 7 {
		t.Fatalf("got %d partitions, want 7", len(parts))
	}
	var v graph.VertexID
	for i, pt := range parts {
		if pt.Lo != v {
			t.Fatalf("partition %d starts at %d, want %d", i, pt.Lo, v)
		}
		v = pt.Hi
	}
	if int(v) != g.NumVertices() {
		t.Fatalf("coverage ends at %d, want %d", v, g.NumVertices())
	}
}

func TestByDestinationEdgeTotals(t *testing.T) {
	g := chainGraph(t, 50)
	parts, err := ByDestination(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, pt := range parts {
		total += pt.Edges
	}
	if total != g.NumEdges() {
		t.Fatalf("edge total %d != %d", total, g.NumEdges())
	}
}

func TestByDestinationChainIsBalanced(t *testing.T) {
	// A chain has uniform in-degree (1 except vertex 0): Algorithm 1 should
	// split it nearly evenly.
	g := chainGraph(t, 101) // 100 edges
	parts, err := ByDestination(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range parts {
		if pt.Edges < 9 || pt.Edges > 12 {
			t.Errorf("partition %d has %d edges; expected ≈10", i, pt.Edges)
		}
	}
}

func TestByDestinationRejectsBadP(t *testing.T) {
	g := chainGraph(t, 10)
	if _, err := ByDestination(g, 0); err == nil {
		t.Error("expected error for p=0")
	}
}

func TestByDestinationMorePartitionsThanVertices(t *testing.T) {
	g := chainGraph(t, 4)
	parts, err := ByDestination(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("got %d partitions, want 10 (padded)", len(parts))
	}
	var total int64
	for _, pt := range parts {
		total += pt.Edges
	}
	if total != g.NumEdges() {
		t.Fatalf("edge total %d", total)
	}
}

func TestByVertexRanges(t *testing.T) {
	g := chainGraph(t, 10)
	parts, err := ByVertexRanges(g, []int64{0, 3, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	// in-degrees: vertex 0 has 0, others 1 → edges per range: [2,4,3]
	want := []int64{2, 4, 3}
	for i, pt := range parts {
		if pt.Edges != want[i] {
			t.Errorf("partition %d edges = %d, want %d", i, pt.Edges, want[i])
		}
	}
	if _, err := ByVertexRanges(g, []int64{0, 5}); err == nil {
		t.Error("expected error for bounds not ending at n")
	}
	if _, err := ByVertexRanges(g, []int64{0, 7, 3, 10}); err == nil {
		t.Error("expected error for decreasing bounds")
	}
}

func TestOf(t *testing.T) {
	g := chainGraph(t, 30)
	parts, err := ByDestination(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		i := Of(parts, graph.VertexID(v))
		if graph.VertexID(v) < parts[i].Lo || graph.VertexID(v) >= parts[i].Hi {
			t.Fatalf("Of(%d) = %d, range [%d,%d)", v, i, parts[i].Lo, parts[i].Hi)
		}
	}
}

func TestSummarizeChain(t *testing.T) {
	g := chainGraph(t, 101)
	parts, err := ByDestination(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(g, parts)
	if s.TotalEdges != g.NumEdges() {
		t.Errorf("TotalEdges = %d", s.TotalEdges)
	}
	if s.TotalVertices != int64(g.NumVertices()) {
		t.Errorf("TotalVertices = %d", s.TotalVertices)
	}
	if s.EdgeSpread != s.MaxEdges-s.MinEdges {
		t.Error("EdgeSpread inconsistent")
	}
}

func TestUniqueSources(t *testing.T) {
	// Star: vertex 0 points at everyone; each partition sees exactly one
	// unique source.
	n := 20
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.VertexID(i)})
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := ByDestination(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range UniqueSources(g, parts) {
		if parts[i].Edges > 0 && s != 1 {
			t.Errorf("partition %d unique sources = %d, want 1", i, s)
		}
	}
}

// The paper's pipeline: VEBO reorder + Algorithm 1 must yield Δ ≤ 1 and
// δ ≤ 1 on a power-law graph meeting the theorem preconditions — and
// crucially, Algorithm 1's chunking must recover exactly VEBO's intended
// partitions.
func TestVEBOThenAlgorithm1(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		N: 30000, S: 1.0, MaxDegree: 150, ZeroInFrac: 0.10, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	const P = 48
	r, err := core.Reorder(g, P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeImbalance() > 1 || r.VertexImbalance() > 1 {
		t.Fatalf("VEBO imbalance Δ=%d δ=%d on theorem-conforming graph",
			r.EdgeImbalance(), r.VertexImbalance())
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := ByVertexRanges(rg, r.Boundaries())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(rg, parts)
	if s.EdgeSpread > 1 {
		t.Errorf("after reorder+range partition, edge spread = %d", s.EdgeSpread)
	}
	if s.VertexSpread > 1 {
		t.Errorf("after reorder+range partition, vertex spread = %d", s.VertexSpread)
	}
}

// Compare partitioning the original graph with Algorithm 1 against the
// paper's pipeline (VEBO reorder + VEBO's own partition end points). VEBO
// must be dramatically better on vertex spread and no worse on edge spread.
// Additionally, even when the greedy Algorithm 1 is re-run on the VEBO
// graph, the edge overshoot at chunk boundaries must shrink: on the original
// graph a high-degree vertex at a boundary overloads a chunk (the effect in
// the paper's Figure 1), whereas after VEBO the boundary vertices are the
// low-degree tail.
func TestVEBOImprovesAlgorithm1Balance(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		N: 20000, S: 1.0, MaxDegree: 400, ZeroInFrac: 0.14, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	const P = 32
	orig, err := ByDestination(g, P)
	if err != nil {
		t.Fatal(err)
	}
	so := Summarize(g, orig)

	r, err := core.Reorder(g, P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		t.Fatal(err)
	}
	vparts, err := ByVertexRanges(rg, r.Boundaries())
	if err != nil {
		t.Fatal(err)
	}
	sv := Summarize(rg, vparts)

	if sv.VertexSpread >= so.VertexSpread {
		t.Errorf("VEBO vertex spread %d not better than original %d",
			sv.VertexSpread, so.VertexSpread)
	}
	if sv.EdgeSpread > so.EdgeSpread {
		t.Errorf("VEBO edge spread %d worse than original %d", sv.EdgeSpread, so.EdgeSpread)
	}

	// Greedy Algorithm 1 re-run on the VEBO graph: edge spread must not
	// exceed the original graph's (low-degree boundary vertices).
	greedy, err := ByDestination(rg, P)
	if err != nil {
		t.Fatal(err)
	}
	sg := Summarize(rg, greedy)
	if sg.EdgeSpread > so.EdgeSpread {
		t.Errorf("greedy-on-VEBO edge spread %d worse than original %d",
			sg.EdgeSpread, so.EdgeSpread)
	}
}

// Property: partitions always tile [0, n) and edge totals always match.
func TestPartitionTilingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		m := int64(rng.Intn(600))
		g, err := gen.ErdosRenyi(n, m, seed)
		if err != nil {
			return false
		}
		p := rng.Intn(16) + 1
		parts, err := ByDestination(g, p)
		if err != nil {
			return false
		}
		if len(parts) != p {
			return false
		}
		var v graph.VertexID
		var total int64
		for _, pt := range parts {
			if pt.Lo != v || pt.Hi < pt.Lo {
				return false
			}
			v = pt.Hi
			total += pt.Edges
		}
		return int(v) == n && total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
