package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func communityGraph(t *testing.T) *graph.Graph {
	t.Helper()
	// two dense communities joined by a few bridges: streaming partitioners
	// should separate them.
	rng := rand.New(rand.NewSource(5))
	var edges []graph.Edge
	addCommunity := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			for k := 0; k < 6; k++ {
				w := lo + rng.Intn(hi-lo)
				if w != v {
					edges = append(edges,
						graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(w)},
						graph.Edge{Src: graph.VertexID(w), Dst: graph.VertexID(v)})
				}
			}
		}
	}
	addCommunity(0, 100)
	addCommunity(100, 200)
	for i := 0; i < 5; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(100 + i)})
	}
	g, err := graph.FromEdges(200, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLDGBasics(t *testing.T) {
	g := communityGraph(t)
	a, err := LDG(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes()
	if sizes[0]+sizes[1] != 200 {
		t.Fatalf("sizes %v", sizes)
	}
	// capacity constraint: no partition beyond n/p + 1
	for i, s := range sizes {
		if float64(s) > 200.0/2+1 {
			t.Errorf("partition %d oversized: %d", i, s)
		}
	}
	if _, err := LDG(g, 0); err == nil {
		t.Error("expected error for p=0")
	}
}

func TestFennelBasics(t *testing.T) {
	g := communityGraph(t)
	a, err := Fennel(g, 4, FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range a.Sizes() {
		total += s
	}
	if total != 200 {
		t.Fatalf("total %d", total)
	}
	if _, err := Fennel(g, -1, FennelConfig{}); err == nil {
		t.Error("expected error for negative p")
	}
}

func TestStreamingPartitionersCutLessThanRandom(t *testing.T) {
	g := communityGraph(t)
	// random assignment baseline
	rng := rand.New(rand.NewSource(8))
	randomA := &Assignment{P: 2, PartOf: make([]uint32, g.NumVertices())}
	for v := range randomA.PartOf {
		randomA.PartOf[v] = uint32(rng.Intn(2))
	}
	randCut := randomA.EdgeCut(g)

	ldg, err := LDG(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	fennel, err := Fennel(g, 2, FennelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cut := ldg.EdgeCut(g); cut >= randCut {
		t.Errorf("LDG cut %d not below random %d", cut, randCut)
	}
	if cut := fennel.EdgeCut(g); cut >= randCut {
		t.Errorf("Fennel cut %d not below random %d", cut, randCut)
	}
}

func TestAssignmentRelabel(t *testing.T) {
	g := communityGraph(t)
	a, err := LDG(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	perm, bounds := a.Relabel()
	// perm must be a permutation
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if seen[p] {
			t.Fatal("duplicate in relabel permutation")
		}
		seen[p] = true
	}
	// every vertex's new ID must fall inside its partition's bounds
	for v, p := range a.PartOf {
		newID := int64(perm[v])
		if newID < bounds[p] || newID >= bounds[p+1] {
			t.Fatalf("vertex %d: new ID %d outside bounds of partition %d", v, newID, p)
		}
	}
	// the relabelled graph is isomorphic
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsIsomorphicUnder(g, h, perm) {
		t.Fatal("relabelled graph not isomorphic")
	}
}

func TestFromRanges(t *testing.T) {
	g := communityGraph(t)
	parts, err := ByDestination(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := FromRanges(parts, g.NumVertices())
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if int(a.PartOf[v]) != Of(parts, graph.VertexID(v)) {
			t.Fatalf("vertex %d: assignment %d != Of %d", v, a.PartOf[v], Of(parts, graph.VertexID(v)))
		}
	}
}

// The trade-off the paper describes: streaming partitioners get lower edge
// cut; VEBO gets strictly better vertex/edge balance and never worse than
// the capacity slack the streaming heuristics allow.
func TestVEBOBeatsStreamingOnBalance(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		N: 5000, S: 1.0, MaxDegree: 200, ZeroInFrac: 0.1, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	const P = 16
	r, err := core.Reorder(g, P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spreadOf := func(xs []int64) int64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	for name, build := range map[string]func() (*Assignment, error){
		"ldg":    func() (*Assignment, error) { return LDG(g, P) },
		"fennel": func() (*Assignment, error) { return Fennel(g, P, FennelConfig{}) },
	} {
		a, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if es := spreadOf(a.EdgeCounts(g)); es <= r.EdgeImbalance() {
			t.Errorf("%s edge spread %d not worse than VEBO's %d", name, es, r.EdgeImbalance())
		}
	}
}

// Property: assignments are always valid and conserve vertices.
func TestStreamingValidityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 1
		g, err := gen.ErdosRenyi(n, int64(rng.Intn(400)), seed)
		if err != nil {
			return false
		}
		p := rng.Intn(7) + 1
		ldg, err := LDG(g, p)
		if err != nil || ldg.Validate() != nil {
			return false
		}
		fen, err := Fennel(g, p, FennelConfig{})
		if err != nil || fen.Validate() != nil {
			return false
		}
		var s1, s2 int64
		for _, s := range ldg.Sizes() {
			s1 += s
		}
		for _, s := range fen.Sizes() {
			s2 += s
		}
		return s1 == int64(n) && s2 == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
