// Package partition implements the paper's Algorithm 1: locality-preserving
// edge-balanced partitioning of the destination vertices. Each partition is
// a chunk of consecutively numbered vertices owning all edges whose
// destination falls in the chunk. The greedy chunking closes a partition as
// soon as it has reached the average edge count, so partition quality is
// entirely determined by the vertex ordering — which is exactly the lever
// VEBO pulls.
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Partition is a contiguous destination-vertex range [Lo, Hi) together with
// the number of in-edges it owns.
type Partition struct {
	Lo, Hi graph.VertexID // destination vertices [Lo, Hi)
	Edges  int64          // total in-edges of the range
}

// Vertices returns the number of destination vertices in the partition.
func (p Partition) Vertices() int64 { return int64(p.Hi) - int64(p.Lo) }

// ByDestination partitions g's destination vertices into p chunks using the
// paper's Algorithm 1: walk the vertices in ID order, accumulating in-edges,
// and close the current chunk once it holds at least |E|/p edges. The last
// chunk absorbs the remainder. Every vertex belongs to exactly one chunk.
func ByDestination(g *graph.Graph, p int) ([]Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: count must be positive, got %d", p)
	}
	n := g.NumVertices()
	avg := g.NumEdges() / int64(p)
	parts := make([]Partition, 0, p)
	cur := Partition{Lo: 0}
	for v := 0; v < n; v++ {
		if cur.Edges >= avg && avg > 0 && len(parts) < p-1 {
			cur.Hi = graph.VertexID(v)
			parts = append(parts, cur)
			cur = Partition{Lo: graph.VertexID(v)}
		}
		cur.Edges += g.InDegree(graph.VertexID(v))
	}
	cur.Hi = graph.VertexID(n)
	parts = append(parts, cur)
	// Pad with empty partitions if the graph ran out of vertices early
	// (e.g. p > n): downstream engines index partitions 0..p-1.
	for len(parts) < p {
		parts = append(parts, Partition{Lo: graph.VertexID(n), Hi: graph.VertexID(n)})
	}
	return parts, nil
}

// ByVertexRanges builds partitions from explicit boundaries (e.g. VEBO's
// Result.Boundaries), counting the in-edges per range. bounds must have p+1
// non-decreasing entries starting at 0 and ending at n.
func ByVertexRanges(g *graph.Graph, bounds []int64) ([]Partition, error) {
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != int64(g.NumVertices()) {
		return nil, fmt.Errorf("partition: invalid bounds %v for n=%d", bounds, g.NumVertices())
	}
	parts := make([]Partition, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] > bounds[i+1] {
			return nil, fmt.Errorf("partition: decreasing bounds at %d", i)
		}
		pt := Partition{Lo: graph.VertexID(bounds[i]), Hi: graph.VertexID(bounds[i+1])}
		for v := pt.Lo; v < pt.Hi; v++ {
			pt.Edges += g.InDegree(v)
		}
		parts[i] = pt
	}
	return parts, nil
}

// Summary captures the balance statistics the paper reports per
// partitioning: edge spread (Δ), destination-vertex spread (δ) and the
// unique-source spread discussed around Figure 1.
type Summary struct {
	Partitions    int
	MinEdges      int64
	MaxEdges      int64
	MinVertices   int64
	MaxVertices   int64
	MinSources    int64
	MaxSources    int64
	EdgeSpread    int64 // MaxEdges - MinEdges (the paper's Δ(n))
	VertexSpread  int64 // MaxVertices - MinVertices (the paper's δ(n))
	TotalEdges    int64
	TotalVertices int64
}

// Summarize computes balance statistics for a partitioning of g, including
// the number of unique source vertices feeding each partition (the bottom
// row of Figure 1).
func Summarize(g *graph.Graph, parts []Partition) Summary {
	s := Summary{Partitions: len(parts)}
	if len(parts) == 0 {
		return s
	}
	seen := make([]uint32, g.NumVertices()) // epoch mark per source vertex
	for i, pt := range parts {
		epoch := uint32(i + 1)
		var sources int64
		for v := pt.Lo; v < pt.Hi; v++ {
			for _, src := range g.InNeighbors(v) {
				if seen[src] != epoch {
					seen[src] = epoch
					sources++
				}
			}
		}
		nv := pt.Vertices()
		if i == 0 {
			s.MinEdges, s.MaxEdges = pt.Edges, pt.Edges
			s.MinVertices, s.MaxVertices = nv, nv
			s.MinSources, s.MaxSources = sources, sources
		}
		s.TotalEdges += pt.Edges
		s.TotalVertices += nv
		if pt.Edges < s.MinEdges {
			s.MinEdges = pt.Edges
		}
		if pt.Edges > s.MaxEdges {
			s.MaxEdges = pt.Edges
		}
		if nv < s.MinVertices {
			s.MinVertices = nv
		}
		if nv > s.MaxVertices {
			s.MaxVertices = nv
		}
		if sources < s.MinSources {
			s.MinSources = sources
		}
		if sources > s.MaxSources {
			s.MaxSources = sources
		}
	}
	s.EdgeSpread = s.MaxEdges - s.MinEdges
	s.VertexSpread = s.MaxVertices - s.MinVertices
	return s
}

// UniqueSources returns, per partition, the number of distinct source
// vertices with at least one edge into the partition.
func UniqueSources(g *graph.Graph, parts []Partition) []int64 {
	out := make([]int64, len(parts))
	seen := make([]uint32, g.NumVertices())
	for i, pt := range parts {
		epoch := uint32(i + 1)
		for v := pt.Lo; v < pt.Hi; v++ {
			for _, src := range g.InNeighbors(v) {
				if seen[src] != epoch {
					seen[src] = epoch
					out[i]++
				}
			}
		}
	}
	return out
}

// Of returns the index of the partition owning destination vertex v, by
// binary search over the contiguous ranges.
func Of(parts []Partition, v graph.VertexID) int {
	lo, hi := 0, len(parts)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v >= parts[mid].Hi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
