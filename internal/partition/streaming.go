package partition

// Streaming partitioners from the paper's related-work section (Section VI):
// LDG (Stanton & Kliot, KDD'12) and Fennel (Tsourakakis et al., WSDM'14).
// Both assign vertices to partitions in a single pass using a limited view
// of the graph, optimizing edge cut under a balance constraint — the
// computationally cheaper end of the partitioning spectrum the paper
// contrasts VEBO against. They are provided as comparison baselines for the
// "partitioners" extension experiment; VEBO deliberately ignores edge cut
// (Section VI: "VEBO is different. It explicitly avoids minimizing
// replication factor and edge cut").

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Assignment maps every vertex to a partition in [0, P).
type Assignment struct {
	P      int
	PartOf []uint32
}

// Validate checks that the assignment covers exactly [0, P).
func (a *Assignment) Validate() error {
	for v, p := range a.PartOf {
		if int(p) >= a.P {
			return fmt.Errorf("partition: vertex %d assigned to %d ≥ P=%d", v, p, a.P)
		}
	}
	return nil
}

// Sizes returns the number of vertices per partition.
func (a *Assignment) Sizes() []int64 {
	sizes := make([]int64, a.P)
	for _, p := range a.PartOf {
		sizes[p]++
	}
	return sizes
}

// EdgeCounts returns the number of in-edges per partition (edges are owned
// by their destination's partition, as in Algorithm 1).
func (a *Assignment) EdgeCounts(g *graph.Graph) []int64 {
	counts := make([]int64, a.P)
	for v := 0; v < g.NumVertices(); v++ {
		counts[a.PartOf[v]] += g.InDegree(graph.VertexID(v))
	}
	return counts
}

// EdgeCut returns the number of edges whose endpoints lie in different
// partitions — the objective streaming partitioners minimize and VEBO
// ignores.
func (a *Assignment) EdgeCut(g *graph.Graph) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		pv := a.PartOf[v]
		for _, w := range g.OutNeighbors(graph.VertexID(v)) {
			if a.PartOf[w] != pv {
				cut++
			}
		}
	}
	return cut
}

// Relabel converts the assignment into a vertex permutation that makes each
// partition a contiguous ID range (grouped in partition order, original
// order within a partition), so that assignment-based partitioners can feed
// the same engines as VEBO. It returns the permutation and the partition
// boundaries.
func (a *Assignment) Relabel() (perm []graph.VertexID, bounds []int64) {
	n := len(a.PartOf)
	sizes := a.Sizes()
	bounds = make([]int64, a.P+1)
	for p := 0; p < a.P; p++ {
		bounds[p+1] = bounds[p] + sizes[p]
	}
	next := make([]int64, a.P)
	copy(next, bounds[:a.P])
	perm = make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		p := a.PartOf[v]
		perm[v] = graph.VertexID(next[p])
		next[p]++
	}
	return perm, bounds
}

// neighborCounts tallies how many already-placed neighbours (either
// direction) of v sit in each partition.
func neighborCounts(g *graph.Graph, v graph.VertexID, placed []bool, partOf []uint32, counts []int64) {
	for i := range counts {
		counts[i] = 0
	}
	for _, w := range g.OutNeighbors(v) {
		if placed[w] {
			counts[partOf[w]]++
		}
	}
	for _, w := range g.InNeighbors(v) {
		if placed[w] {
			counts[partOf[w]]++
		}
	}
}

// LDG runs the Linear Deterministic Greedy streaming partitioner: vertices
// arrive in ID order and are placed on the partition maximizing
// |N(v) ∩ P_i| · (1 − |P_i|/C), where C is the per-partition capacity.
func LDG(g *graph.Graph, p int) (*Assignment, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: LDG partition count must be positive, got %d", p)
	}
	n := g.NumVertices()
	capacity := float64(n)/float64(p) + 1
	a := &Assignment{P: p, PartOf: make([]uint32, n)}
	placed := make([]bool, n)
	sizes := make([]int64, p)
	counts := make([]int64, p)
	for v := 0; v < n; v++ {
		neighborCounts(g, graph.VertexID(v), placed, a.PartOf, counts)
		best, bestScore := 0, math.Inf(-1)
		for i := 0; i < p; i++ {
			if float64(sizes[i]) >= capacity {
				continue
			}
			score := float64(counts[i]) * (1 - float64(sizes[i])/capacity)
			if score > bestScore || (score == bestScore && sizes[i] < sizes[best]) {
				best, bestScore = i, score
			}
		}
		a.PartOf[v] = uint32(best)
		sizes[best]++
		placed[v] = true
	}
	return a, nil
}

// FennelConfig tunes the Fennel objective. The zero value selects the
// paper-recommended γ=1.5 with α = m·(p^(γ-1))/n^γ.
type FennelConfig struct {
	Gamma float64 // balance exponent γ (0 → 1.5)
	Alpha float64 // balance weight α (0 → the Fennel default)
}

// Fennel runs the Fennel streaming partitioner: vertex v goes to the
// partition maximizing |N(v) ∩ P_i| − α·γ·|P_i|^(γ−1), interpolating between
// edge-cut minimization and balance.
func Fennel(g *graph.Graph, p int, cfg FennelConfig) (*Assignment, error) {
	if p <= 0 {
		return nil, fmt.Errorf("partition: Fennel partition count must be positive, got %d", p)
	}
	n := g.NumVertices()
	m := float64(g.NumEdges())
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	alpha := cfg.Alpha
	if alpha == 0 && n > 0 {
		alpha = m * math.Pow(float64(p), gamma-1) / math.Pow(float64(n), gamma)
		if alpha == 0 {
			alpha = 1
		}
	}
	// hard cap to prevent degenerate all-in-one assignments on empty graphs
	capacity := 2*float64(n)/float64(p) + 1
	a := &Assignment{P: p, PartOf: make([]uint32, n)}
	placed := make([]bool, n)
	sizes := make([]int64, p)
	counts := make([]int64, p)
	for v := 0; v < n; v++ {
		neighborCounts(g, graph.VertexID(v), placed, a.PartOf, counts)
		best, bestScore := 0, math.Inf(-1)
		for i := 0; i < p; i++ {
			if float64(sizes[i]) >= capacity {
				continue
			}
			score := float64(counts[i]) - alpha*gamma*math.Pow(float64(sizes[i]), gamma-1)
			if score > bestScore || (score == bestScore && sizes[i] < sizes[best]) {
				best, bestScore = i, score
			}
		}
		a.PartOf[v] = uint32(best)
		sizes[best]++
		placed[v] = true
	}
	return a, nil
}

// FromRanges converts contiguous range partitions into an Assignment, so
// Algorithm 1 and VEBO boundaries can be compared with streaming
// partitioners under the same metrics.
func FromRanges(parts []Partition, n int) *Assignment {
	a := &Assignment{P: len(parts), PartOf: make([]uint32, n)}
	for i, pt := range parts {
		for v := pt.Lo; v < pt.Hi; v++ {
			a.PartOf[v] = uint32(i)
		}
	}
	return a
}
