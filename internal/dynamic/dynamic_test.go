package dynamic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// applyStream replays updates in batches, failing the test on any error.
func applyStream(t *testing.T, d *Graph, updates []graph.EdgeUpdate, batch int) {
	t.Helper()
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			t.Fatalf("ApplyBatch(%d:%d): %v", lo, hi, err)
		}
	}
}

// referenceSurvivors replays the stream against a plain edge multiset,
// mirroring the subsystem's cancellation order: a deletion removes the most
// recently inserted live (s,d) occurrence, else the earliest base occurrence.
// On unweighted graphs every occurrence of a pair is identical, so any
// cancellation order yields the same multiset.
func referenceSurvivors(g *graph.Graph, updates []graph.EdgeUpdate) []graph.Edge {
	type key struct{ s, d graph.VertexID }
	count := make(map[key]int64)
	for _, e := range g.Edges() {
		count[key{e.Src, e.Dst}]++
	}
	for _, u := range updates {
		k := key{u.Src, u.Dst}
		if u.Del {
			count[k]--
		} else {
			count[k]++
		}
	}
	var edges []graph.Edge
	for k, c := range count {
		for i := int64(0); i < c; i++ {
			edges = append(edges, graph.Edge{Src: k.s, Dst: k.d, Weight: 1})
		}
	}
	return edges
}

// TestSnapshotMatchesFromEdges is the compaction property test: after any
// stream of valid inserts and deletes, a snapshot is edge-for-edge identical
// to graph.FromEdges over the surviving edge multiset.
func TestSnapshotMatchesFromEdges(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g, err := gen.ErdosRenyi(300, 2000, seed)
		if err != nil {
			t.Fatal(err)
		}
		updates, err := gen.EdgeStream(g, gen.StreamConfig{
			Ops: 5000, DeleteFrac: 0.4, PreferentialFrac: 0.5, Seed: seed + 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(g, Config{Partitions: 16, CompactEvery: 512})
		if err != nil {
			t.Fatal(err)
		}
		applyStream(t, d, updates, 128)

		want, err := graph.FromEdges(g.NumVertices(), referenceSurvivors(g, updates), false)
		if err != nil {
			t.Fatal(err)
		}
		snap := d.Snapshot()
		if !graph.Equal(snap, want) {
			t.Fatalf("seed %d: snapshot differs from FromEdges over survivors (snap %d edges, want %d)",
				seed, snap.NumEdges(), want.NumEdges())
		}
		if d.NumEdges() != want.NumEdges() {
			t.Fatalf("seed %d: live edge count %d, want %d", seed, d.NumEdges(), want.NumEdges())
		}
		if d.Stats().Compactions == 0 {
			t.Fatalf("seed %d: expected at least one compaction with CompactEvery=512", seed)
		}
	}
}

// TestCountersMatchScratch checks the incremental Δ(n)/δ(n) accounting: the
// per-partition counters maintained in O(1) per update must equal the counts
// recomputed from scratch from the current assignment and snapshot, and
// after a forced full rebuild Δ(n)/δ(n) must equal core.Reorder run from
// scratch on the snapshot.
func TestCountersMatchScratch(t *testing.T) {
	const P = 24
	g, err := gen.ErdosRenyi(400, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := gen.EdgeStream(g, gen.StreamConfig{
		Ops: 4000, DeleteFrac: 0.35, PreferentialFrac: 0.6, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: P})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, 100)

	snap := d.Snapshot()
	wantEdges := make([]int64, P)
	wantVerts := make([]int64, P)
	for v := 0; v < snap.NumVertices(); v++ {
		p := d.PartitionOf(graph.VertexID(v))
		wantEdges[p] += snap.InDegree(graph.VertexID(v))
		wantVerts[p]++
		if d.InDegree(graph.VertexID(v)) != snap.InDegree(graph.VertexID(v)) {
			t.Fatalf("vertex %d: tracked degree %d, snapshot degree %d",
				v, d.InDegree(graph.VertexID(v)), snap.InDegree(graph.VertexID(v)))
		}
	}
	gotEdges, gotVerts := d.EdgeCounts(), d.VertexCounts()
	for p := 0; p < P; p++ {
		if gotEdges[p] != wantEdges[p] {
			t.Fatalf("partition %d: incremental edge count %d, recomputed %d", p, gotEdges[p], wantEdges[p])
		}
		if gotVerts[p] != wantVerts[p] {
			t.Fatalf("partition %d: incremental vertex count %d, recomputed %d", p, gotVerts[p], wantVerts[p])
		}
	}

	d.Rebuild()
	scratch, err := core.Reorder(snap, P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.EdgeImbalance() != scratch.EdgeImbalance() {
		t.Fatalf("post-rebuild Δ(n) = %d, core.Reorder from scratch = %d",
			d.EdgeImbalance(), scratch.EdgeImbalance())
	}
	if d.VertexImbalance() != scratch.VertexImbalance() {
		t.Fatalf("post-rebuild δ(n) = %d, core.Reorder from scratch = %d",
			d.VertexImbalance(), scratch.VertexImbalance())
	}
}

// TestOrderingIsValid checks that Ordering() returns a genuine permutation
// grouping each partition into a contiguous new-ID range consistent with the
// tracked vertex counts, and that applying it to the snapshot yields an
// isomorphic graph.
func TestOrderingIsValid(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 1500, 11)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := gen.EdgeStream(g, gen.StreamConfig{
		Ops: 1000, DeleteFrac: 0.3, PreferentialFrac: 0.4, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, 64)

	r := d.Ordering()
	bounds := r.Boundaries()
	for v := 0; v < d.NumVertices(); v++ {
		p := r.PartitionOf[v]
		newID := int64(r.Perm[v])
		if newID < bounds[p] || newID >= bounds[p+1] {
			t.Fatalf("vertex %d: new ID %d outside partition %d range [%d,%d)",
				v, newID, p, bounds[p], bounds[p+1])
		}
	}
	snap := d.Snapshot()
	rg, err := snap.Relabel(r.Perm)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsIsomorphicUnder(snap, rg, r.Perm) {
		t.Fatal("relabelled snapshot is not isomorphic under the ordering permutation")
	}
}

// TestIncrementalWithinTwiceOfScratch is the acceptance property at unit
// scale: after a churn stream on the powerlaw recipe, threshold-gated
// incremental maintenance lands within 2× of the Δ(n) a full re-reorder
// achieves, while doing measurably fewer placements than re-reordering after
// every batch.
func TestIncrementalWithinTwiceOfScratch(t *testing.T) {
	const batch = 512
	g, updates, err := gen.StreamFromRecipe("powerlaw", 0.05, 20_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 32})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, batch)

	scratch, err := core.Reorder(d.Snapshot(), 32, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	limit := 2 * scratch.EdgeImbalance()
	if limit < 2 {
		limit = 2
	}
	if d.EdgeImbalance() > limit {
		t.Fatalf("incremental Δ(n) = %d, more than 2× the from-scratch Δ(n) = %d",
			d.EdgeImbalance(), scratch.EdgeImbalance())
	}
	batches := (len(updates) + batch - 1) / batch
	rebuildEvery := int64(batches) * int64(g.NumVertices())
	st := d.Stats()
	if st.Placements >= rebuildEvery {
		t.Fatalf("incremental placements %d not less than rebuild-every-batch %d",
			st.Placements, rebuildEvery)
	}
}

// TestApplyBatchRejectsInvalid checks range and existence validation.
func TestApplyBatchRejectsInvalid(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch([]graph.EdgeUpdate{{Src: 0, Dst: 9}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := d.ApplyBatch([]graph.EdgeUpdate{{Src: 2, Dst: 3, Del: true}}); err == nil {
		t.Fatal("expected delete-of-missing-edge error")
	}
	// Deleting the only edge twice: first succeeds, second fails.
	if _, err := d.ApplyBatch([]graph.EdgeUpdate{{Src: 0, Dst: 1, Del: true}, {Src: 0, Dst: 1, Del: true}}); err == nil {
		t.Fatal("expected second delete to fail")
	}
	if d.NumEdges() != 0 {
		t.Fatalf("live edges = %d, want 0", d.NumEdges())
	}
}

// TestInsertDeleteRoundTrip interleaves inserts and deletes of the same pair
// and checks multiplicity bookkeeping across a compaction.
func TestInsertDeleteRoundTrip(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 2, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ups := []graph.EdgeUpdate{
		{Src: 0, Dst: 1},            // multiplicity 2
		{Src: 0, Dst: 1, Del: true}, // back to 1 (cancels the log insert)
		{Src: 0, Dst: 1, Del: true}, // 0 (cancels the base edge)
		{Src: 0, Dst: 1},            // 1 again
		{Src: 2, Dst: 1},
	}
	if _, err := d.ApplyBatch(ups); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if snap.NumEdges() != 2 || !snap.HasEdge(0, 1) || !snap.HasEdge(2, 1) {
		t.Fatalf("unexpected snapshot: %d edges", snap.NumEdges())
	}
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Fatal("HasEdge bookkeeping wrong")
	}
}

// TestRandomizedMixedChurn hammers the subsystem with uniformly random valid
// operations (not via gen) to probe cancellation corner cases.
func TestRandomizedMixedChurn(t *testing.T) {
	const n = 50
	rng := rand.New(rand.NewSource(5))
	g, err := gen.ErdosRenyi(n, 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 4, CompactEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	live := g.Edges()
	var stream []graph.EdgeUpdate
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(live))
			e := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			stream = append(stream, graph.EdgeUpdate{Src: e.Src, Dst: e.Dst, Del: true})
		} else {
			e := graph.Edge{Src: graph.VertexID(rng.Intn(n)), Dst: graph.VertexID(rng.Intn(n)), Weight: 1}
			live = append(live, e)
			stream = append(stream, graph.EdgeUpdate{Src: e.Src, Dst: e.Dst})
		}
	}
	applyStream(t, d, stream, 17)
	want, err := graph.FromEdges(n, live, false)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(d.Snapshot(), want) {
		t.Fatalf("snapshot differs after mixed churn: %d edges vs %d", d.Snapshot().NumEdges(), want.NumEdges())
	}
}

// referenceSurvivorsWeighted replays a stream whose deletions all carry
// explicit weight selectors against a plain (src,dst,weight) multiset. With
// selectors, which occurrence dies is fully determined by the triple, so the
// multiset reference predicts the exact surviving edge set.
func referenceSurvivorsWeighted(g *graph.Graph, updates []graph.EdgeUpdate) map[graph.Edge]int64 {
	count := make(map[graph.Edge]int64)
	for _, e := range g.Edges() {
		count[e]++
	}
	for _, u := range updates {
		e := graph.Edge{Src: u.Src, Dst: u.Dst, Weight: u.Weight}
		if u.Del {
			count[e]--
			if count[e] == 0 {
				delete(count, e)
			}
		} else {
			count[e]++
		}
	}
	return count
}

// TestWeightedDeletionSemantics is the weighted edge-for-edge property test:
// EdgeUpdate.Weight selects which parallel edge a deletion cancels, so after
// any weighted churn stream the snapshot's (src,dst,weight) multiset matches
// the reference replay exactly, across compactions.
func TestWeightedDeletionSemantics(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		g, err := gen.ErdosRenyiWeighted(200, 1500, seed)
		if err != nil {
			t.Fatal(err)
		}
		updates, err := gen.EdgeStream(g, gen.StreamConfig{
			Ops: 4000, DeleteFrac: 0.45, PreferentialFrac: 0.5, Weighted: true, Seed: seed + 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range updates {
			if u.Del && u.Weight == 0 {
				t.Fatalf("update %d: weighted stream emitted deletion without weight selector", i)
			}
		}
		d, err := New(g, Config{Partitions: 16, CompactEvery: 700})
		if err != nil {
			t.Fatal(err)
		}
		applyStream(t, d, updates, 128)

		want := referenceSurvivorsWeighted(g, updates)
		got := make(map[graph.Edge]int64)
		var total int64
		for _, e := range d.Snapshot().Edges() {
			got[e]++
			total++
		}
		for e, c := range want {
			if got[e] != c {
				t.Fatalf("seed %d: edge %+v multiplicity %d, want %d", seed, e, got[e], c)
			}
		}
		if int64(len(got)) != int64(len(want)) || total != d.NumEdges() {
			t.Fatalf("seed %d: %d distinct triples (want %d), %d edges (want %d)",
				seed, len(got), len(want), total, d.NumEdges())
		}
		if d.Stats().Compactions == 0 {
			t.Fatalf("seed %d: expected compactions with CompactEvery=700", seed)
		}
	}
}

// TestWeightedDeleteSelectorValidation checks that a weight selector only
// cancels an edge carrying exactly that weight, and that unselected
// deletions on weighted graphs resolve deterministically (most recent
// pending insertion first, else earliest base occurrence).
func TestWeightedDeleteSelectorValidation(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 5}, {Src: 0, Dst: 1, Weight: 9}}, true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Selector matching no live weight fails; the edges stay live.
	if _, err := d.ApplyBatch([]graph.EdgeUpdate{{Src: 0, Dst: 1, Weight: 7, Del: true}}); err == nil {
		t.Fatal("expected error deleting (0,1) weight 7")
	}
	if d.NumEdges() != 2 {
		t.Fatalf("live edges %d, want 2", d.NumEdges())
	}
	// Selector 9 kills exactly the weight-9 parallel edge.
	if _, err := d.ApplyBatch([]graph.EdgeUpdate{{Src: 0, Dst: 1, Weight: 9, Del: true}}); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if snap.NumEdges() != 1 || snap.OutWeights(0)[0] != 5 {
		t.Fatalf("surviving edge wrong: %d edges, weights %v", snap.NumEdges(), snap.OutWeights(0))
	}
	// Unselected delete after inserting weight 3: the pending insertion dies
	// first, leaving the base weight-5 edge.
	if _, err := d.ApplyBatch([]graph.EdgeUpdate{
		{Src: 0, Dst: 1, Weight: 3},
		{Src: 0, Dst: 1, Del: true},
	}); err != nil {
		t.Fatal(err)
	}
	snap = d.Snapshot()
	if snap.NumEdges() != 1 || snap.OutWeights(0)[0] != 5 {
		t.Fatalf("unselected delete resolved wrongly: weights %v", snap.OutWeights(0))
	}
}

// TestVertexImbalanceBounded is the δ(n)-gating regression test: under
// edge-only gating the 100k-update powerlaw stream drifted to δ(n) ≈ 35
// while Δ(n) stayed ≤ 2 (the ROADMAP item); with the δ gate and the
// vertex-balance repair the post-stream δ(n) is bounded by the threshold.
func TestVertexImbalanceBounded(t *testing.T) {
	const batch = 1024
	g, updates, err := gen.StreamFromRecipe("powerlaw", 0.2, 100_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, batch)
	if got, want := d.VertexImbalance(), int64(DefaultVertexThreshold); got > want {
		t.Fatalf("post-stream δ(n) = %d exceeds the gate threshold %d", got, want)
	}
	if d.EdgeImbalance() > 2*2 {
		t.Fatalf("post-stream Δ(n) = %d degraded past 2× the edge threshold", d.EdgeImbalance())
	}
	// The gate must not degrade incrementality: far fewer placements than
	// re-running Algorithm 2 after every batch.
	batches := int64((len(updates) + batch - 1) / batch)
	if st := d.Stats(); st.Placements*2 >= batches*int64(g.NumVertices()) {
		t.Fatalf("placements %d not well under rebuild-every-batch %d",
			st.Placements, batches*int64(g.NumVertices()))
	}
}

// TestSwapRepairPreservesPlacementShape is the placement-preserving repair
// invariant test: under the default (preserve) mode, per-partition vertex
// counts — and therefore the ordering's segment boundaries — never change
// between full rebuilds, repairs are pure ID swaps (RenumEpoch stays at its
// initial value), and the edge balance still lands under the effective
// threshold.
func TestSwapRepairPreservesPlacementShape(t *testing.T) {
	const batch = 256
	g, updates, err := gen.StreamFromRecipe("powerlaw", 0.05, 20_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 32})
	if err != nil {
		t.Fatal(err)
	}
	initCounts := d.VertexCounts()
	initRenum := d.RenumEpoch()
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		res, err := d.ApplyBatch(updates[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if res.Rebuilt {
			t.Fatalf("batch at %d fell back to a full rebuild in preserve mode", lo)
		}
		counts := d.VertexCounts()
		for p := range counts {
			if counts[p] != initCounts[p] {
				t.Fatalf("batch at %d: partition %d vertex count drifted %d -> %d",
					lo, p, initCounts[p], counts[p])
			}
		}
	}
	st := d.Stats()
	if st.Swaps == 0 {
		t.Fatal("stream triggered no swap repairs; the test exercises nothing")
	}
	if st.FullRebuilds != 0 {
		t.Fatalf("preserve mode fell back to %d full rebuilds", st.FullRebuilds)
	}
	if d.RenumEpoch() != initRenum {
		t.Fatalf("renumbering epoch moved %d -> %d without a rebuild", initRenum, d.RenumEpoch())
	}
	if got, limit := d.EdgeImbalance(), d.EffectiveRebuildThreshold(); got > limit {
		t.Fatalf("post-stream Δ(n) = %d exceeds the effective threshold %d", got, limit)
	}
	// The permutation must still be a valid segment-contiguous ordering.
	r := d.Ordering()
	bounds := r.Boundaries()
	seen := make([]bool, d.NumVertices())
	for v := 0; v < d.NumVertices(); v++ {
		newID := int64(r.Perm[v])
		if seen[newID] {
			t.Fatalf("perm maps two vertices to %d", newID)
		}
		seen[newID] = true
		p := r.PartitionOf[v]
		if newID < bounds[p] || newID >= bounds[p+1] {
			t.Fatalf("vertex %d: new ID %d outside partition %d segment [%d,%d)",
				v, newID, p, bounds[p], bounds[p+1])
		}
	}
}

// uniformInDegreeGraph builds a graph where every vertex has in-degree
// exactly k (sources are the k cyclic successors).
func uniformInDegreeGraph(t *testing.T, n, k int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			edges = append(edges, graph.Edge{
				Src: graph.VertexID((v + j) % n), Dst: graph.VertexID(v), Weight: 1,
			})
		}
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAdaptiveThresholdUniformDegrees is the threshold-adaptivity
// regression test (ROADMAP): on uniform-degree streams the Δ(n) gate scales
// to twice the degree granularity, so maintenance picks the swap repair —
// which can meet the scaled gate — instead of falling back to a full
// rebuild on most batches, which is what a fixed threshold of 2 forces
// (repairs cannot balance below whole-vertex degree granularity).
func TestAdaptiveThresholdUniformDegrees(t *testing.T) {
	const (
		n     = 1000
		k     = 5
		batch = 100
	)
	g := uniformInDegreeGraph(t, n, k)
	rng := rand.New(rand.NewSource(3))
	live := g.Edges()
	// Same-destination churn keeps every in-degree at exactly k: with
	// 1000 % 16 != 0 the vertex counts force Δ(n) = k permanently, and no
	// whole-vertex move can express less than k.
	var exact []graph.EdgeUpdate
	for i := 0; i < 2000; i++ {
		j := rng.Intn(len(live))
		e := live[j]
		ne := graph.Edge{Src: graph.VertexID(rng.Intn(n)), Dst: e.Dst, Weight: 1}
		exact = append(exact, graph.EdgeUpdate{Src: e.Src, Dst: e.Dst, Del: true},
			graph.EdgeUpdate{Src: ne.Src, Dst: ne.Dst})
		live[j] = ne
	}
	// Random-destination churn drifts degrees to k±ε, the near-uniform
	// regime where swaps of granularity 1 exist but Δ(n) wanders well past
	// the scaled gate, so repairs actually run.
	var drift []graph.EdgeUpdate
	for i := 0; i < 4000; i++ {
		j := rng.Intn(len(live))
		e := live[j]
		ne := graph.Edge{Src: e.Src, Dst: graph.VertexID(rng.Intn(n)), Weight: 1}
		drift = append(drift, graph.EdgeUpdate{Src: e.Src, Dst: e.Dst, Del: true},
			graph.EdgeUpdate{Src: ne.Src, Dst: ne.Dst})
		live[j] = ne
	}

	d, err := New(g, Config{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.EffectiveRebuildThreshold(); got < 2*k {
		t.Fatalf("uniform-degree effective threshold = %d, want >= %d", got, 2*k)
	}
	applyStream(t, d, exact, batch)
	applyStream(t, d, drift, batch)
	st := d.Stats()
	if st.FullRebuilds != 0 {
		t.Fatalf("adaptive gate still fell back to %d full rebuilds", st.FullRebuilds)
	}
	if st.Repairs == 0 || st.Swaps == 0 {
		t.Fatalf("stream triggered no swap repairs (repairs=%d swaps=%d); the gate never fired", st.Repairs, st.Swaps)
	}
	if got, limit := d.EdgeImbalance(), d.EffectiveRebuildThreshold(); got > limit {
		t.Fatalf("post-stream Δ(n) = %d exceeds the effective threshold %d", got, limit)
	}

	// Ablation: with the fixed threshold of 2, the exactly-uniform stream
	// rebuilds over and over — Δ(n) = k is over the gate after every batch
	// and neither repair nor rebuild can do better — the futile-work
	// regression the adaptive gate exists to prevent.
	df, err := New(g, Config{Partitions: 16, DisableAdaptiveThreshold: true})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, df, exact, batch)
	if df.Stats().FullRebuilds == 0 {
		t.Fatal("fixed threshold avoided rebuilds on a uniform-degree stream; the ablation is vacuous")
	}

	// The powerlaw recipe keeps granularity 1, so the adaptive gate must
	// leave its configured threshold alone.
	pg, _, err := gen.StreamFromRecipe("powerlaw", 0.05, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := New(pg, Config{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := dp.EffectiveRebuildThreshold(); got != 2 {
		t.Fatalf("powerlaw effective threshold = %d, want the configured 2", got)
	}
}

// TestNewRejectsUnknownRepairMode guards the mode dispatch: an undefined
// RepairMode must fail construction instead of silently degrading to
// rebuild-per-batch.
func TestNewRejectsUnknownRepairMode(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, Config{Partitions: 2, Repair: RepairMode(7)}); err == nil {
		t.Fatal("expected error for unknown repair mode")
	}
}
