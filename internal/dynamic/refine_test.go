package dynamic

import (
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestDeriveRefinePlanUnrollsMultiplicities(t *testing.T) {
	e1 := graph.Edge{Src: 1, Dst: 2, Weight: 1}
	e2 := graph.Edge{Src: 1, Dst: 3, Weight: 1}
	e3 := graph.Edge{Src: 4, Dst: 1, Weight: 7}
	vd := ViewDelta{
		Net:   map[graph.Edge]int64{e1: 2, e2: -1, e3: -3},
		Moved: map[graph.VertexID]struct{}{9: {}, 5: {}},
		Grown: []int64{1, 0, 2},
	}
	p := DeriveRefinePlan(vd)

	if len(p.Adds) != 2 || p.Adds[0] != e1 || p.Adds[1] != e1 {
		t.Fatalf("Adds = %v, want [%v %v]", p.Adds, e1, e1)
	}
	dels := append([]graph.Edge(nil), p.Dels...)
	sort.Slice(dels, func(i, j int) bool {
		return dels[i].Src < dels[j].Src || (dels[i].Src == dels[j].Src && dels[i].Dst < dels[j].Dst)
	})
	if len(dels) != 4 || dels[0] != e2 || dels[1] != e3 || dels[2] != e3 || dels[3] != e3 {
		t.Fatalf("Dels = %v, want [%v %v %v %v]", dels, e2, e3, e3, e3)
	}
	if p.OutDegDelta[1] != 1 || p.OutDegDelta[4] != -3 {
		t.Fatalf("OutDegDelta = %v, want {1:1, 4:-3}", p.OutDegDelta)
	}
	if len(p.Moved) != 2 || p.Moved[0] != 5 || p.Moved[1] != 9 {
		t.Fatalf("Moved = %v, want sorted [5 9]", p.Moved)
	}
	if p.GrownTotal != 3 {
		t.Fatalf("GrownTotal = %d, want 3", p.GrownTotal)
	}
	if p.Empty() {
		t.Fatal("plan with changes reports Empty")
	}
}

func TestDeriveRefinePlanKeepsNetZeroDegreeSources(t *testing.T) {
	// A source whose insertions and deletions balance must still appear in
	// OutDegDelta (zero entry): its edge set changed even though its degree
	// did not, and PageRank's contribution sweep keys off that map.
	a := graph.Edge{Src: 2, Dst: 5, Weight: 1}
	b := graph.Edge{Src: 2, Dst: 6, Weight: 1}
	p := DeriveRefinePlan(ViewDelta{Net: map[graph.Edge]int64{a: 1, b: -1}})
	if dd, ok := p.OutDegDelta[2]; !ok || dd != 0 {
		t.Fatalf("OutDegDelta[2] = %d (present=%v), want 0 present", dd, ok)
	}
	if p.Touched() != 3 {
		t.Fatalf("Touched = %d, want 3 (vertices 2, 5, 6)", p.Touched())
	}
}

func TestDeriveRefinePlanEmpty(t *testing.T) {
	if p := DeriveRefinePlan(ViewDelta{}); !p.Empty() {
		t.Fatalf("empty delta yields non-empty plan: %+v", p)
	}
	// PlacementChanged alone (pure renumbering) is a no-op for results: they
	// live in original-ID space.
	if p := DeriveRefinePlan(ViewDelta{PlacementChanged: true}); !p.Empty() {
		t.Fatalf("placement-only delta yields non-empty plan: %+v", p)
	}
}
