package dynamic

import (
	"strconv"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// instrumented builds a dynamic graph with a live registry and tracer, the
// configuration every trace regression below scrapes.
func instrumented(t *testing.T, g *graph.Graph, cfg Config) (*Graph, *obs.Registry, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(256)
	cfg.Metrics = reg
	cfg.Tracer = tr
	d, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, reg, tr
}

// findEvent returns the last trace event matching kind (and cause, when
// non-empty).
func findEvent(evs []obs.Event, kind, cause string) *obs.Event {
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == kind && (cause == "" || evs[i].Cause == cause) {
			return &evs[i]
		}
	}
	return nil
}

// TestTraceThresholdTrip pins the first required cause annotation: a
// Δ(n)-gated repair must leave a "repair" event with cause "threshold-trip"
// carrying the before/after imbalances, so the epoch's story is readable
// from the trace alone.
func TestTraceThresholdTrip(t *testing.T) {
	const D = 10
	g := hostileDegreeGraph(t)
	d, reg, tr := instrumented(t, g, Config{
		Partitions:               3,
		RebuildThreshold:         D/2 + 1,
		VertexRebuildThreshold:   1 << 40,
		DisableAdaptiveThreshold: true,
		DisableSegmentResort:     true,
	})
	// Same overload as TestSwapRepairRotationFallback: one coarse-class
	// vertex gains exactly D in-edges, which the pair search cannot fix but
	// a three-way rotation can.
	qmid := int(d.PartitionOf(8))
	X := -1
	var target, qv graph.VertexID
	for v := graph.VertexID(0); v < 8; v++ {
		switch int(d.PartitionOf(v)) {
		case qmid:
			qv = v
		default:
			if X < 0 {
				X = int(d.PartitionOf(v))
			}
			if int(d.PartitionOf(v)) == X {
				target = v
			}
		}
	}
	var batch []graph.EdgeUpdate
	for i := 0; i < D; i++ {
		batch = append(batch, graph.EdgeUpdate{Src: graph.VertexID(10 + i), Dst: target})
	}
	batch = append(batch, graph.EdgeUpdate{Src: 20, Dst: qv})
	res, err := d.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repaired || res.Rebuilt {
		t.Fatalf("expected a pure repair batch, got %+v", res)
	}

	ev := findEvent(tr.Events(), "repair", "threshold-trip")
	if ev == nil {
		t.Fatalf("no repair/threshold-trip event in trace: %+v", tr.Events())
	}
	if ev.Epoch != d.Epoch() {
		t.Fatalf("repair event epoch %d, graph epoch %d", ev.Epoch, d.Epoch())
	}
	if ev.N["delta_before"] <= ev.N["threshold"] {
		t.Fatalf("repair event claims gate did not trip: %+v", ev.N)
	}
	if ev.N["delta_after"] >= ev.N["delta_before"] {
		t.Fatalf("repair event shows no improvement: %+v", ev.N)
	}
	if ev.N["rotations"] == 0 || ev.N["stalled"] != 0 {
		t.Fatalf("hostile-degree repair should rotate without stalling: %+v", ev.N)
	}
	if ev.Dur <= 0 {
		t.Fatalf("repair event missing wall-clock duration")
	}
	// The batch summary event closes the epoch.
	if be := findEvent(tr.Events(), "batch", ""); be == nil || be.N["repaired"] != 1 {
		t.Fatalf("batch event missing or not marked repaired: %+v", be)
	}

	// Registry counters mirror the trace.
	if got := reg.Counter("vebo_repairs_total").Value(); got != 1 {
		t.Fatalf("vebo_repairs_total = %d", got)
	}
	if got := reg.Counter("vebo_rotation_search_total", "result", "attempt").Value(); got == 0 {
		t.Fatalf("rotation attempts not counted")
	}
	st := d.Stats()
	if st.RotationAttempts == 0 || st.RotationStalls != 0 {
		t.Fatalf("rotation stats = %+v", st)
	}
}

// TestTraceRotationStall pins the second required cause annotation: when the
// pair search finds nothing and no intermediate partition exists (P=2), the
// repair stalls and the forced full rebuild must be annotated
// "rotation-stall" — the trace alone answers "why did epoch E rebuild
// instead of patch".
func TestTraceRotationStall(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 1, Dst: 0, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	d, reg, tr := instrumented(t, g, Config{
		Partitions:               2,
		RebuildThreshold:         1,
		VertexRebuildThreshold:   1 << 40,
		DisableAdaptiveThreshold: true,
		DisableSegmentResort:     true,
	})
	// Pile all new mass on vertex 0: every candidate transfer is 0 or the
	// whole gap, so no swap strictly improves, and with P=2 there is no
	// intermediate partition to rotate through.
	var batch []graph.EdgeUpdate
	for i := 0; i < 10; i++ {
		batch = append(batch, graph.EdgeUpdate{Src: graph.VertexID(1 + i%3), Dst: 0})
	}
	res, err := d.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebuilt {
		t.Fatalf("scenario no longer forces a rebuild: %+v", res)
	}

	evs := tr.Events()
	reb := findEvent(evs, "rebuild", "")
	if reb == nil {
		t.Fatalf("no rebuild event in trace: %+v", evs)
	}
	if reb.Cause != "rotation-stall" {
		t.Fatalf("rebuild cause = %q, want rotation-stall", reb.Cause)
	}
	// The full epoch story: EventsForEpoch(E) alone explains the rebuild —
	// a gated repair that stalled, then the rebuild naming the stall.
	story := tr.EventsForEpoch(reb.Epoch)
	rep := findEvent(story, "repair", "threshold-trip")
	if rep == nil || rep.N["stalled"] != 1 {
		t.Fatalf("epoch %d story lacks a stalled repair: %+v", reb.Epoch, story)
	}
	if rep.Seq >= reb.Seq {
		t.Fatalf("repair (seq %d) not ordered before rebuild (seq %d)", rep.Seq, reb.Seq)
	}

	if got := reg.Counter("vebo_rebuilds_total", "cause", "rotation-stall").Value(); got != 1 {
		t.Fatalf("vebo_rebuilds_total{cause=rotation-stall} = %d", got)
	}
	if st := d.Stats(); st.RotationStalls == 0 {
		t.Fatalf("RotationStalls = 0, want > 0 (stats: %+v)", st)
	}
}

// TestTraceGrowthSpill pins the third required cause annotation: admissions
// served entirely from reserved headroom slots are annotated
// "growth-headroom"; a batch forced through a relabeling epoch because every
// segment's headroom was exhausted is "growth-spill" and bumps
// vebo_headroom_spill_total.
func TestTraceGrowthSpill(t *testing.T) {
	g, err := graph.FromEdges(12, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 3, Weight: 1},
		{Src: 4, Dst: 5, Weight: 1}, {Src: 6, Dst: 7, Weight: 1},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	d, reg, tr := instrumented(t, g, Config{Partitions: 4})
	if first := d.Grow(3); first != 12 {
		t.Fatalf("first admitted ID %d, want 12", first)
	}
	ev := findEvent(tr.Events(), "grow", "")
	if ev == nil {
		t.Fatalf("no grow event in trace: %+v", tr.Events())
	}
	if ev.Cause != "growth-headroom" {
		t.Fatalf("grow cause = %q, want growth-headroom (N=%+v)", ev.Cause, ev.N)
	}
	if ev.N["admitted"] != 3 || ev.N["vertices"] != 15 || ev.N["spills"] != 0 {
		t.Fatalf("grow event N = %+v", ev.N)
	}
	free, capacity := d.Headroom()
	if capacity == 0 || ev.N["headroom_free"] != free {
		t.Fatalf("Headroom() = (%d, %d), event free %d", free, capacity, ev.N["headroom_free"])
	}
	// The conversion of a compact lineage to a slotted one is not a spill.
	if got := reg.Counter("vebo_headroom_spill_total").Value(); got != 0 {
		t.Fatalf("vebo_headroom_spill_total = %d after headroom admissions", got)
	}
	// Per-partition slot gauges mirror the free headroom.
	var gaugeFree int64
	for p := 0; p < d.Partitions(); p++ {
		gaugeFree += reg.Gauge("vebo_headroom_slots", "partition", strconv.Itoa(p)).Value()
	}
	if gaugeFree != free {
		t.Fatalf("vebo_headroom_slots sum = %d, Headroom() free = %d", gaugeFree, free)
	}

	// Minimal headroom (one slot per partition, no proportional term) forces
	// an exhaustion spill mid-batch: two admissions fill the slots, the third
	// triggers a relabeling epoch.
	g2, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	d2, reg2, tr2 := instrumented(t, g2, Config{Partitions: 2, MinHeadroom: 1, HeadroomFrac: -1})
	d2.Grow(3)
	ev2 := findEvent(tr2.Events(), "grow", "")
	if ev2 == nil || ev2.Cause != "growth-spill" {
		t.Fatalf("exhausted grow cause = %+v, want growth-spill", ev2)
	}
	if ev2.N["spills"] != 1 {
		t.Fatalf("spill grow event N = %+v", ev2.N)
	}
	if got := reg2.Counter("vebo_headroom_spill_total").Value(); got != 1 {
		t.Fatalf("vebo_headroom_spill_total = %d, want 1", got)
	}
	if st := d2.Stats(); st.HeadroomSpills != 1 {
		t.Fatalf("Stats().HeadroomSpills = %d, want 1", st.HeadroomSpills)
	}
}

// TestTraceGaugesTrackState checks that the registry gauges published after
// every batch agree with the structure's own accessors.
func TestTraceGaugesTrackState(t *testing.T) {
	g := hostileDegreeGraph(t)
	d, reg, _ := instrumented(t, g, Config{Partitions: 3})
	if _, err := d.ApplyBatch([]graph.EdgeUpdate{
		{Src: 11, Dst: 0}, {Src: 12, Dst: 1}, {Src: 13, Dst: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := reg.Gauge("vebo_epoch").Value(), d.Epoch(); got != want {
		t.Fatalf("vebo_epoch = %d, want %d", got, want)
	}
	if got, want := reg.Gauge("vebo_vertices").Value(), int64(d.NumVertices()); got != want {
		t.Fatalf("vebo_vertices = %d, want %d", got, want)
	}
	if got, want := reg.Gauge("vebo_live_edges").Value(), d.NumEdges(); got != want {
		t.Fatalf("vebo_live_edges = %d, want %d", got, want)
	}
	if got, want := reg.Gauge("vebo_edge_imbalance").Value(), d.EdgeImbalance(); got != want {
		t.Fatalf("vebo_edge_imbalance = %d, want %d", got, want)
	}
}
