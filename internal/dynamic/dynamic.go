// Package dynamic keeps a graph and its VEBO ordering live under a stream of
// edge insertions and deletions, so that engines never pay a full
// O(n log P) reorder plus O(m) CSR/CSC rebuild per update batch.
//
// The design has four parts:
//
//   - Delta-log storage. The last compacted graph.Graph is kept immutable;
//     inserted edges accumulate in an append-only log and deletions in a
//     cancellation multiset keyed by (src,dst,weight). Snapshot materializes
//     the surviving edge set into a fresh CSR/CSC graph on demand (cached per
//     mutation epoch) and Compact promotes that snapshot to the new base.
//     Freeze captures the same state immutably so concurrent readers can
//     materialize a snapshot without touching the live structures.
//
//   - Incremental balance accounting. Per-partition in-edge counts (the
//     paper's w[p]) and vertex counts (u[p]) are updated in O(1) per edge
//     update, so the tracked edge imbalance Δ(n) and vertex imbalance δ(n)
//     are always available without touching the graph.
//
//   - Incremental ordering maintenance, gated on the imbalances. The gate
//     (Δ(n) over the effective rebuild threshold, which scales with the
//     graph's degree granularity unless disabled) triggers a repair whose
//     strategy is the configured RepairMode. The default, RepairPreserve,
//     fixes the edge balance with vertex swaps: a vertex of the most-loaded
//     partition trades places — partition AND new ID — with a lower-degree
//     vertex of the least-loaded one, so per-partition vertex counts, the
//     segment boundaries of the ordering, and the new IDs of every unmoved
//     vertex are all invariant. When no improving pair exists, a three-way
//     rotation through an intermediate partition is tried before giving up.
//     The legacy RepairReplace re-runs the paper's Algorithm 2 greedy
//     placement over the vertices whose in-degree class changed
//     (O(k log k + kP) for k dirty vertices), followed by a vertex-balance
//     pass; it reaches slightly tighter balance but renumbers the whole
//     ordering. Either way, if the repair cannot pull the imbalances back
//     under their thresholds the subsystem falls back to a full
//     core.ReorderDegrees rebuild. A background re-sort additionally
//     restores the degree-descending order inside one partition segment
//     after each batch whose repairs or admissions disturbed it.
//
//   - A growable vertex space. Grow (and AutoGrow, for dense-ID streams;
//     see Allocator for sparse external IDs) admits zero-degree vertices to
//     the least-vertex partitions, filling reserved headroom slots at each
//     partition segment's tail: internal IDs are append-only, the cached
//     ordering is extended in place (the first admission in a lineage
//     converts it to slotted form with amortized per-segment headroom), and
//     the numbering lineage (RenumEpoch) is preserved with an identity
//     injection on the pre-existing vertices, so engine-side patching
//     across growth epochs is O(delta). Exhausted headroom spills to a
//     relabeling epoch that reserves fresh slots everywhere.
//
//   - View-delta tracking. Between drains (one per published facade view)
//     the subsystem records the net resolved edge changes, the set of
//     vertices repositioned by placement-preserving swaps, rotations and
//     re-sorts (Moved), the per-partition admission counts (Grown), and
//     whether the whole numbering was invalidated (PlacementChanged). The
//     facade derives the exact set of dirty partitions from the delta's
//     destination endpoints plus the moved and admitted positions, builds
//     the segment-local injection from the two epochs' orderings, and
//     patches engine-side structures for unchanged partitions instead of
//     rebuilding them (see the vebo.View API).
//
// See DESIGN.md §5 for how this subsystem fits the rest of the system.
package dynamic

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// RepairMode selects how threshold-gated maintenance restores balance.
type RepairMode int

const (
	// RepairPreserve (the default) repairs the edge balance with vertex
	// swaps that keep per-partition vertex counts — and therefore the
	// partition segment boundaries of the ordering — fixed. Only the swapped
	// vertices change new IDs (a segment-local permutation), so engine-side
	// structures of untouched partitions stay patchable across repair
	// epochs. δ(n) cannot drift in this mode: every move is a 1-for-1
	// exchange.
	RepairPreserve RepairMode = iota
	// RepairReplace is the legacy mode: Algorithm 2's greedy placement
	// re-runs over the dirty vertices, followed by a vertex-balance pass.
	// It converges to slightly better Δ(n) on hostile streams but moves
	// vertices across partitions freely, renumbering the whole ordering and
	// invalidating every cached engine.
	RepairReplace
)

// Config tunes a dynamic graph. The zero value selects the defaults below.
type Config struct {
	// Partitions is the VEBO partition count P (default 64).
	Partitions int
	// RebuildThreshold is the Δ(n) value above which maintenance runs: first
	// the incremental repair (swap-based by default, see RepairMode), then —
	// if an imbalance is still above its threshold — a full reorder.
	// Default 2, the paper's power-law bound (Theorem 1 gives Δ ≤ 1; one
	// in-flight batch may add one more). Unless DisableAdaptiveThreshold is
	// set, the effective threshold additionally scales with the graph's
	// degree spread: see EffectiveRebuildThreshold.
	RebuildThreshold int64
	// VertexRebuildThreshold is the δ(n) value above which maintenance runs.
	// Replace-mode repair placement balances edges first, so δ(n) drifts
	// under edge-only gating (to ~35 on the 100k-update powerlaw stream);
	// gating on δ(n) too bounds it. Default 4 (2× Theorem 2's δ ≤ ~1 static
	// bound, with slack for in-flight batches). In RepairPreserve mode δ(n)
	// is frozen at its initial value, so this gate never fires between full
	// rebuilds.
	VertexRebuildThreshold int64
	// CompactEvery bounds the delta log: once the number of pending
	// insertions plus pending deletions reaches it, ApplyBatch compacts the
	// log into a fresh base graph. 0 selects an adaptive bound,
	// max(8192, liveEdges/8): compaction costs O(m), so a fixed small bound
	// would pay it every few batches on large graphs.
	CompactEvery int
	// Repair selects the maintenance strategy (default RepairPreserve).
	Repair RepairMode
	// DisableAdaptiveThreshold pins the Δ(n) gate to RebuildThreshold
	// exactly instead of scaling it with the degree spread. Repairs move
	// whole vertices, so the achievable Δ(n) is bounded below by the
	// in-degrees of the vertices available to move: on near-uniform-degree
	// graphs (usaroad) a fixed threshold below that granularity forces a
	// futile full rebuild every batch. Exists for the adaptivity ablation.
	DisableAdaptiveThreshold bool
	// AutoGrow admits vertices on demand: an insertion whose endpoint is at
	// or beyond the current vertex count grows the vertex space (via Grow)
	// up to that endpoint instead of failing the batch. Internal IDs are
	// dense, so callers feeding sparse external IDs should map them through
	// an Allocator first; deletions never grow.
	AutoGrow bool
	// DisableSegmentResort turns off the background segment re-sort that
	// restores degree-descending order inside one partition segment after
	// batches whose repairs or admissions disturbed it (RepairPreserve
	// only). Exists for the locality-decay ablation.
	DisableSegmentResort bool
	// MinHeadroom is the minimum number of reserved admission slots per
	// partition segment in a slotted ordering (default 4). Once the vertex
	// space starts growing, every full ordering sort reserves
	// max(MinHeadroom, HeadroomFrac·occupied) free slots at each segment's
	// tail so admissions land in pre-allocated positions instead of
	// shifting later segments; see Grow.
	MinHeadroom int64
	// HeadroomFrac is the fraction of a segment's occupied length reserved
	// as admission headroom on top of MinHeadroom's floor (default 0.125,
	// vector-doubling-style amortization: the reservation cost is paid once
	// per relabeling epoch and covers proportionally many admissions).
	// Negative disables the proportional term, leaving MinHeadroom alone —
	// the knob spill tests use to force headroom exhaustion quickly.
	HeadroomFrac float64
	// Metrics, when set, receives the subsystem's counters, gauges and
	// latency histograms (the vebo_* series; see DESIGN.md §6). Nil disables
	// metric collection at zero cost: the handles degrade to no-ops.
	Metrics *obs.Registry
	// Tracer, when set, receives one structured event per lifecycle step
	// (batch, repair, rebuild, grow, resort, compact) with the cause and
	// wall-clock duration alongside the modeled work counts. Nil disables
	// tracing.
	Tracer *obs.Tracer
	// Spans, when set, receives causal spans for the same lifecycle steps:
	// each batch opens an "ingest" span, maintenance work (repair, rebuild,
	// grow, spill, resort, compact) files child spans of the batch that
	// triggered it, and the facade layer parents publish and query spans
	// onto the batch chain (LastBatchSpan). Nil disables span collection.
	Spans *obs.Spans
}

// DefaultPartitions is the default VEBO partition count for dynamic graphs,
// deliberately smaller than GraphGrind's 384: a live system repartitions
// continuously, and the repair cost scales with P.
const DefaultPartitions = 64

// DefaultVertexThreshold is the default δ(n) maintenance threshold.
const DefaultVertexThreshold = 4

// DefaultMinHeadroom and DefaultHeadroomFrac are the default per-segment
// admission headroom parameters; see Config.MinHeadroom.
const (
	DefaultMinHeadroom  = 4
	DefaultHeadroomFrac = 0.125
)

func (c Config) withDefaults() Config {
	if c.Partitions == 0 {
		c.Partitions = DefaultPartitions
	}
	if c.RebuildThreshold == 0 {
		c.RebuildThreshold = 2
	}
	if c.VertexRebuildThreshold == 0 {
		c.VertexRebuildThreshold = DefaultVertexThreshold
	}
	if c.MinHeadroom == 0 {
		c.MinHeadroom = DefaultMinHeadroom
	}
	if c.HeadroomFrac == 0 {
		c.HeadroomFrac = DefaultHeadroomFrac
	}
	return c
}

// headroom returns the number of reserved tail slots for a segment holding
// occ vertices: max(MinHeadroom, HeadroomFrac·occ).
func (c Config) headroom(occ int64) int64 {
	h := int64(float64(occ) * c.HeadroomFrac)
	if h < c.MinHeadroom {
		h = c.MinHeadroom
	}
	return h
}

// compactBound is the current delta-log size triggering compaction.
func (d *Graph) compactBound() int64 {
	if d.cfg.CompactEvery > 0 {
		return int64(d.cfg.CompactEvery)
	}
	b := d.liveEdges / 8
	if b < 8192 {
		b = 8192
	}
	return b
}

// Stats counts the work the subsystem has done, in units comparable with a
// full reorder (one placement = one arg-min probe + assignment, the unit
// Algorithm 2 performs n of).
type Stats struct {
	// Updates is the number of edge updates applied (inserts + deletes).
	Updates int64
	// Inserts and Deletes split Updates.
	Inserts, Deletes int64
	// Placements is the total number of greedy vertex placements performed,
	// including the initial full ordering and any full rebuilds. A swap
	// counts as two placements (both ends are re-placed).
	Placements int64
	// Repairs is the number of incremental repair passes (swap-based or
	// dirty-vertex, per the configured RepairMode).
	Repairs int64
	// RepairedVertices is the number of placements done by repairs alone.
	RepairedVertices int64
	// Swaps is the number of placement-preserving vertex pair exchanges
	// performed by RepairPreserve passes.
	Swaps int64
	// Rotations is the number of three-way placement-preserving exchanges
	// performed when no improving pair swap existed.
	Rotations int64
	// RotationAttempts counts rotation searches started (one per repair step
	// that found no improving pair swap); RotationFallbacks counts the ones
	// where the degree-indexed candidate scan found no positive-gain rotation
	// and the exhaustive sweep ran; RotationStalls counts the ones where even
	// the exhaustive sweep found nothing — the step that forces the caller's
	// full-rebuild fallback.
	RotationAttempts  int64
	RotationFallbacks int64
	RotationStalls    int64
	// Admitted is the number of vertices added to the graph after
	// construction (Grow and AutoGrow admissions).
	Admitted int64
	// HeadroomSpills is the number of times an admission found every
	// partition's reserved headroom exhausted and forced a relabeling epoch
	// (which reserves fresh headroom everywhere); see Grow.
	HeadroomSpills int64
	// Resorts is the number of background segment re-sort passes that moved
	// at least one vertex; ResortedVertices counts the moved vertices.
	Resorts          int64
	ResortedVertices int64
	// VertexMoves is the number of single-vertex moves performed by the
	// δ(n) vertex-balance repair.
	VertexMoves int64
	// FullRebuilds is the number of full Algorithm 2 re-runs (not counting
	// the initial ordering).
	FullRebuilds int64
	// Compactions is the number of delta-log compactions.
	Compactions int64
}

// BatchResult reports what one ApplyBatch call did.
type BatchResult struct {
	Applied int
	// Admitted is the number of vertices auto-admitted by this batch.
	Admitted        int
	Repaired        bool
	Rebuilt         bool
	Compacted       bool
	EdgeImbalance   int64
	VertexImbalance int64
}

type edgeKey uint64

func keyOf(s, d graph.VertexID) edgeKey { return edgeKey(s)<<32 | edgeKey(d) }

// wkey addresses one (src,dst,weight) edge class; weights are stored
// normalized (1 on unweighted graphs and for zero input weights).
type wkey struct {
	k edgeKey
	w int32
}

// Graph is a mutable graph with an incrementally maintained VEBO ordering.
// Mutation is single-writer: callers serialize ApplyBatch/Compact/Rebuild.
// Concurrent readers use Freeze (or the facade's View API), or keep an old
// immutable Snapshot.
type Graph struct {
	cfg      Config
	n        int
	weighted bool

	// base is the last compacted immutable graph; pendingAdd and the
	// cancellation counts below are the delta log on top of it.
	base       *graph.Graph
	pendingAdd []graph.Edge
	// addAlive[k] holds the weights of the surviving pending insertions of
	// pair k in insertion order (top = most recent). Its length is the
	// surviving pending multiplicity of the pair.
	addAlive map[edgeKey][]int32
	// delBase[{k,w}] counts pending deletions cancelling base occurrences of
	// (k, weight w), earliest-in-CSR-order first; delPair[k] is the per-pair
	// total of those counts.
	delBase     map[wkey]int64
	delPair     map[edgeKey]int64
	pendingDels int64
	liveEdges   int64

	// Live per-vertex in-degrees and the current placement.
	degIn  []int64
	assign []uint32
	// partEdges[p] and partVerts[p] are the paper's w[p] and u[p],
	// maintained incrementally.
	partEdges []int64
	partVerts []int64
	// dirty holds the vertices whose in-degree class changed since they were
	// last placed.
	dirty map[graph.VertexID]struct{}

	stats Stats

	// epoch increments on every mutation; snapCache is valid for snapEpoch.
	epoch     int64
	snapCache *graph.Graph
	snapEpoch int64

	// placeEpoch increments whenever any vertex changes partition (repair or
	// rebuild). renumEpoch increments only when the whole numbering is
	// invalidated (full rebuild or a replace-mode repair): swap repairs bump
	// placeEpoch but not renumEpoch, because they permute IDs only inside
	// the affected partitions' segments and the rest of the numbering
	// survives. The cached permutation is stable across epochs that only
	// change degrees and is maintained copy-on-write across swap repairs,
	// which is what makes engine-side patching possible.
	placeEpoch int64
	renumEpoch int64
	ordPerm    []graph.VertexID
	ordPartOf  []uint32
	ordPlace   int64

	// segCap[q] is partition q's slot capacity in the cached slotted
	// ordering — the occupied prefix plus reserved admission headroom — and
	// slotBase (len P+1) its cumulative boundaries: partition q owns new
	// IDs [slotBase[q], slotBase[q+1]), of which [slotBase[q],
	// slotBase[q]+partVerts[q]) are occupied. Both are nil while the
	// ordering is compact. growing flips on the first Grow and stays set:
	// from then on every full ordering sort reserves headroom, so workloads
	// that never grow keep exact compact permutations.
	segCap   []int64
	slotBase []int64
	growing  bool

	// adaptGran caches the repair granularity estimate (a low quantile of
	// the nonzero in-degrees); adaptNext is the Updates count at which it is
	// recomputed.
	adaptGran int64
	adaptNext int64

	// members holds the per-partition member lists the swap repair picks
	// exchange pairs from, maintained incrementally across repair passes
	// (swaps move entries between lists in place); nil when stale — any
	// placement change outside the swap path invalidates it. Avoids an
	// O(n) re-bucketing per pass in the serving regime, where repairs fire
	// almost every batch.
	members [][]graph.VertexID

	// resortNext is the round-robin cursor of the background segment
	// re-sort; resortPending records an out-of-band disturbance of the
	// intra-segment order since the last re-sort opportunity. Headroom
	// admissions do not set it — they append in degree-sorted position —
	// so today only the swap/rotation counters trigger re-sorts, but the
	// flag stays as the hook for any future order-decaying path that runs
	// outside a batch.
	resortNext    int
	resortPending bool

	// View-delta accumulators, drained by DrainViewDelta.
	viewNet   map[graph.Edge]int64
	viewMoved map[graph.VertexID]struct{}
	viewGrow  []int64
	viewPlace bool

	// m holds the metric handles (no-ops when Config.Metrics is nil — the
	// struct is always populated so call sites never nil-check) and tr the
	// lifecycle tracer (nil-tolerant itself).
	m  dynMetrics
	tr *obs.Tracer

	// sp collects causal spans (nil-tolerant); curBatch is the in-flight
	// batch span maintenance steps parent onto, lastBatch the context of the
	// most recently finished one — the causal anchor the facade's publish
	// span links to. Both are writer-side state like everything above.
	sp        *obs.Spans
	curBatch  *obs.ActiveSpan
	lastBatch obs.SpanContext
}

// New wraps g in a dynamic graph, computing the initial VEBO ordering.
func New(g *graph.Graph, cfg Config) (*Graph, error) {
	if cfg.Repair != RepairPreserve && cfg.Repair != RepairReplace {
		return nil, fmt.Errorf("dynamic: unknown repair mode %d", cfg.Repair)
	}
	cfg = cfg.withDefaults()
	r, err := core.Reorder(g, cfg.Partitions, core.Options{})
	if err != nil {
		return nil, err
	}
	d := &Graph{
		cfg:       cfg,
		n:         g.NumVertices(),
		weighted:  g.Weighted(),
		base:      g,
		addAlive:  make(map[edgeKey][]int32),
		delBase:   make(map[wkey]int64),
		delPair:   make(map[edgeKey]int64),
		liveEdges: g.NumEdges(),
		degIn:     g.InDegrees(),
		assign:    make([]uint32, g.NumVertices()),
		partEdges: append([]int64(nil), r.EdgeCounts...),
		partVerts: append([]int64(nil), r.VertexCounts...),
		dirty:     make(map[graph.VertexID]struct{}),
		viewNet:   make(map[graph.Edge]int64),
		viewMoved: make(map[graph.VertexID]struct{}),
	}
	copy(d.assign, r.PartitionOf)
	d.stats.Placements = int64(d.n)
	d.snapCache, d.snapEpoch = g, 0
	d.m = newDynMetrics(cfg.Metrics, cfg.Partitions)
	d.tr = cfg.Tracer
	d.sp = cfg.Spans
	d.tr.Emit(obs.Event{Kind: "graph", Cause: "build", N: map[string]int64{
		"vertices": int64(d.n), "edges": d.liveEdges, "partitions": int64(cfg.Partitions)}})
	d.syncGauges()
	return d, nil
}

// NumVertices reports the current vertex count; Grow and AutoGrow
// admissions raise it, and internal IDs are append-only (an ID, once
// assigned, always names the same vertex).
func (d *Graph) NumVertices() int { return d.n }

// NumEdges reports the number of live edges (base − pending deletions +
// pending insertions).
func (d *Graph) NumEdges() int64 { return d.liveEdges }

// Weighted reports whether the graph carries non-unit edge weights.
func (d *Graph) Weighted() bool { return d.weighted }

// Partitions reports the partition count P.
func (d *Graph) Partitions() int { return d.cfg.Partitions }

// EdgeImbalance returns the tracked Δ(n) = max_p w[p] − min_p w[p].
func (d *Graph) EdgeImbalance() int64 { return core.Spread(d.partEdges) }

// VertexImbalance returns the tracked δ(n) = max_p u[p] − min_p u[p].
func (d *Graph) VertexImbalance() int64 { return core.Spread(d.partVerts) }

// EdgeCounts returns a copy of the per-partition in-edge counts w[p].
func (d *Graph) EdgeCounts() []int64 { return append([]int64(nil), d.partEdges...) }

// VertexCounts returns a copy of the per-partition vertex counts u[p].
func (d *Graph) VertexCounts() []int64 { return append([]int64(nil), d.partVerts...) }

// PartitionOf returns the current partition of v.
func (d *Graph) PartitionOf(v graph.VertexID) uint32 { return d.assign[v] }

// InDegree returns the live in-degree of v.
func (d *Graph) InDegree(v graph.VertexID) int64 { return d.degIn[v] }

// Stats returns the accumulated work counters.
func (d *Graph) Stats() Stats { return d.stats }

// Epoch returns the mutation epoch, incremented on every applied update.
func (d *Graph) Epoch() int64 { return d.epoch }

// PlaceEpoch returns the placement epoch, incremented whenever any vertex
// changes partition.
func (d *Graph) PlaceEpoch() int64 { return d.placeEpoch }

// RenumEpoch returns the renumbering epoch, incremented only when the whole
// ordering is invalidated (full rebuild or replace-mode repair). Swap
// repairs preserve it: between equal renumbering epochs, new IDs of all
// vertices outside the drained ViewDelta.Moved set are identical.
func (d *Graph) RenumEpoch() int64 { return d.renumEpoch }

// EffectiveRebuildThreshold returns the Δ(n) gate currently in force:
// RebuildThreshold, raised to twice the repair granularity — the 10th
// percentile of the nonzero live in-degrees — unless adaptivity is
// disabled. Repairs move whole vertices, so they cannot balance below the
// degrees of the vertices available to move; on near-uniform-degree graphs
// the granularity equals the common degree and a fixed low threshold would
// trigger a futile full rebuild every batch.
func (d *Graph) EffectiveRebuildThreshold() int64 { return d.effEdgeThreshold() }

// PendingOps reports the current delta-log size (pending insertions plus
// pending deletions against the base graph).
func (d *Graph) PendingOps() int64 { return int64(len(d.pendingAdd)) + d.pendingDels }

// baseMultiplicity counts edge (s,d) occurrences in the base graph via
// binary search over s's sorted out-neighbour list. Vertices admitted after
// the base was compacted have no base row.
func (d *Graph) baseMultiplicity(s, dst graph.VertexID) int64 {
	if int(s) >= d.base.NumVertices() {
		return 0
	}
	nbrs := d.base.OutNeighbors(s)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= dst })
	var c int64
	for ; i < len(nbrs) && nbrs[i] == dst; i++ {
		c++
	}
	return c
}

// baseMultiplicityW counts base occurrences of (s,d) with exactly weight w.
func (d *Graph) baseMultiplicityW(s, dst graph.VertexID, w int32) int64 {
	if int(s) >= d.base.NumVertices() {
		return 0
	}
	nbrs := d.base.OutNeighbors(s)
	ws := d.base.OutWeights(s)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= dst })
	var c int64
	for ; i < len(nbrs) && nbrs[i] == dst; i++ {
		if ws[i] == w {
			c++
		}
	}
	return c
}

// liveMultiplicity counts the surviving occurrences of edge (s,d).
func (d *Graph) liveMultiplicity(s, dst graph.VertexID) int64 {
	k := keyOf(s, dst)
	return d.baseMultiplicity(s, dst) + int64(len(d.addAlive[k])) - d.delPair[k]
}

// HasEdge reports whether at least one live (s,d) edge exists.
func (d *Graph) HasEdge(s, dst graph.VertexID) bool {
	return d.liveMultiplicity(s, dst) > 0
}

// normWeight maps an input weight to its stored form.
func (d *Graph) normWeight(w int32) int32 {
	if !d.weighted || w == 0 {
		return 1
	}
	return w
}

// ApplyBatch applies the updates in order, maintains the per-partition
// counters, and runs the threshold-gated ordering maintenance once at the
// end of the batch. An invalid update (vertex out of range without
// AutoGrow, deletion of a non-existent edge) stops processing and returns
// an error; updates before it remain applied. With AutoGrow, insertions
// mentioning endpoints at or beyond the current vertex count admit the
// missing dense IDs as zero-degree vertices (see Grow) at the start of the
// batch — one Grow call covers every arrival, and the admissions stand
// like any applied update even if a later update aborts the batch.
func (d *Graph) ApplyBatch(updates []graph.EdgeUpdate) (BatchResult, error) {
	start := time.Now()
	// The batch span is the causal root of this epoch: maintenance spans
	// (repair, rebuild, grow, spill) file as its children, and the facade's
	// publish span links to it via LastBatchSpan. finishBatch ends it on
	// every return path, error or not.
	d.curBatch = d.sp.Start("batch", "ingest", d.epoch, obs.SpanContext{})
	var res BatchResult
	if d.cfg.AutoGrow {
		// Admit for the whole batch up front: one Grow call claims headroom
		// slots for every arrival in the batch (batched per-partition
		// admission, one trace event and one gauge sync per batch instead of
		// per out-of-range update). The admissions stand even if a later
		// update aborts the batch, like any update applied before the
		// failure.
		mx := d.n - 1
		for _, u := range updates {
			if u.Del {
				continue
			}
			if int(u.Src) > mx {
				mx = int(u.Src)
			}
			if int(u.Dst) > mx {
				mx = int(u.Dst)
			}
		}
		if k := mx + 1 - d.n; k > 0 {
			d.Grow(k)
			res.Admitted += k
		}
	}
	for i, u := range updates {
		if int(u.Src) >= d.n || int(u.Dst) >= d.n {
			return d.finishBatch(res, start), fmt.Errorf("dynamic: update %d: edge (%d,%d) out of range n=%d", i, u.Src, u.Dst, d.n)
		}
		if u.Del {
			if err := d.deleteEdge(u.Src, u.Dst, u.Weight); err != nil {
				return d.finishBatch(res, start), fmt.Errorf("dynamic: update %d: %w", i, err)
			}
		} else {
			d.insertEdge(u.Src, u.Dst, u.Weight)
		}
		res.Applied++
	}
	return d.finishBatch(res, start), nil
}

// overThreshold reports whether either tracked imbalance exceeds its
// maintenance threshold.
func (d *Graph) overThreshold() bool {
	return d.EdgeImbalance() > d.effEdgeThreshold() ||
		d.VertexImbalance() > d.cfg.VertexRebuildThreshold
}

// adaptCap bounds the degree histogram used for the granularity quantile;
// a granularity estimate above it is clamped (the threshold is then 2×cap,
// which only an extremely dense uniform-degree graph reaches).
const adaptCap = 1024

// effEdgeThreshold returns the Δ(n) gate currently in force, refreshing the
// cached granularity estimate when enough updates have landed since the
// last computation (the degree distribution drifts slowly, and the O(n)
// quantile should not be paid per batch).
func (d *Graph) effEdgeThreshold() int64 {
	t := d.cfg.RebuildThreshold
	if d.cfg.DisableAdaptiveThreshold {
		return t
	}
	if d.adaptNext == 0 || d.stats.Updates >= d.adaptNext {
		d.refreshGranularity()
	}
	if a := 2 * d.adaptGran; a > t {
		t = a
	}
	return t
}

// refreshGranularity recomputes the repair granularity: the 10th percentile
// of the nonzero live in-degrees. Power-law graphs keep it at 1 (degree-1
// vertices are abundant, so repairs can fine-tune the balance in steps of
// 1); near-uniform-degree graphs (usaroad sits at 4) push it to the common
// degree, the smallest imbalance a whole-vertex move can express.
func (d *Graph) refreshGranularity() {
	hist := make([]int64, adaptCap+1)
	var nonzero int64
	for _, deg := range d.degIn {
		if deg <= 0 {
			continue
		}
		nonzero++
		if deg > adaptCap {
			deg = adaptCap
		}
		hist[deg]++
	}
	d.adaptGran = 0
	if nonzero > 0 {
		tenth := (nonzero + 9) / 10
		var cum int64
		for b := int64(1); b <= adaptCap; b++ {
			cum += hist[b]
			if cum >= tenth {
				d.adaptGran = b
				break
			}
		}
	}
	step := int64(d.n) / 2
	if step < 4096 {
		step = 4096
	}
	d.adaptNext = d.stats.Updates + step
}

// finishBatch runs the end-of-batch maintenance and fills the result, emitting
// the lifecycle trace events that answer "what did this epoch do, and why":
// a "repair" event (cause "threshold-trip") when a gate fired, a "rebuild"
// event whose cause names which escape hatch forced it, and one "batch"
// event summarizing the epoch.
func (d *Graph) finishBatch(res BatchResult, start time.Time) BatchResult {
	preMoves := d.stats.Swaps + d.stats.Rotations
	if d.overThreshold() {
		preDelta, preVert := d.EdgeImbalance(), d.VertexImbalance()
		rstart := time.Now()
		var swaps, rots int64
		var stalled bool
		if d.cfg.Repair == RepairPreserve {
			swaps, rots, stalled = d.swapRepair()
		} else {
			d.repair()
		}
		rdur := time.Since(rstart)
		d.m.repairs.Inc()
		d.m.repairNS.Observe(int64(rdur))
		res.Repaired = true
		d.sp.Record(obs.Span{
			Parent: d.curBatch.Context().ID, Name: "repair", Kind: "maintain",
			Cause: "threshold-trip", Epoch: d.epoch, Start: rstart, Dur: rdur,
			Attrs: map[string]int64{"swaps": swaps, "rotations": rots, "stalled": b2i(stalled)},
		})
		d.tr.Emit(obs.Event{Epoch: d.epoch, Kind: "repair", Cause: "threshold-trip", Dur: rdur,
			N: map[string]int64{
				"delta_before": preDelta, "delta_after": d.EdgeImbalance(),
				"vertex_before": preVert, "vertex_after": d.VertexImbalance(),
				"threshold": d.effEdgeThreshold(), "swaps": swaps, "rotations": rots,
				"stalled": b2i(stalled),
			}})
		if d.overThreshold() {
			// The repair could not pull the imbalances back under their
			// gates; name why before falling back to the full reorder.
			cause, ctr := "repair-shortfall", d.m.rebuildShortfall
			if d.cfg.Repair == RepairPreserve {
				switch {
				case stalled:
					cause, ctr = "rotation-stall", d.m.rebuildRotStall
				case d.VertexImbalance() > d.cfg.VertexRebuildThreshold:
					cause, ctr = "vertex-threshold", d.m.rebuildVertex
				}
			}
			bstart := time.Now()
			d.rebuild()
			bdur := time.Since(bstart)
			ctr.Inc()
			d.m.rebuildNS.Observe(int64(bdur))
			res.Rebuilt = true
			d.sp.Record(obs.Span{
				Parent: d.curBatch.Context().ID, Name: "rebuild", Kind: "maintain",
				Cause: cause, Epoch: d.epoch, Start: bstart, Dur: bdur,
				Attrs: map[string]int64{"placements": int64(d.n)},
			})
			d.tr.Emit(obs.Event{Epoch: d.epoch, Kind: "rebuild", Cause: cause, Dur: bdur,
				N: map[string]int64{
					"placements":   int64(d.n),
					"delta_after":  d.EdgeImbalance(),
					"vertex_after": d.VertexImbalance(),
				}})
		}
	}
	// Swaps and rotations decay the degree-descending order inside
	// segments (a moved vertex parks at its partner's old position);
	// re-sort one segment per disturbing batch. Headroom admissions are
	// not disturbances — they append in sorted position. A rebuild just
	// re-established the order everywhere.
	if !res.Rebuilt && d.cfg.Repair == RepairPreserve && !d.cfg.DisableSegmentResort &&
		(d.resortPending || d.stats.Swaps+d.stats.Rotations > preMoves) {
		sstart := time.Now()
		d.resortSegment()
		d.sp.Record(obs.Span{
			Parent: d.curBatch.Context().ID, Name: "resort", Kind: "maintain",
			Epoch: d.epoch, Start: sstart, Dur: time.Since(sstart),
		})
	}
	d.resortPending = false
	if d.PendingOps() >= d.compactBound() {
		cstart := time.Now()
		d.Compact()
		res.Compacted = true
		d.sp.Record(obs.Span{
			Parent: d.curBatch.Context().ID, Name: "compact", Kind: "maintain",
			Epoch: d.epoch, Start: cstart, Dur: time.Since(cstart),
		})
	}
	res.EdgeImbalance = d.EdgeImbalance()
	res.VertexImbalance = d.VertexImbalance()
	d.m.batches.Inc()
	d.m.batchNS.ObserveSince(start)
	d.tr.Emit(obs.Event{Epoch: d.epoch, Kind: "batch", Dur: time.Since(start),
		N: map[string]int64{
			"applied": int64(res.Applied), "admitted": int64(res.Admitted),
			"edge_imbalance": res.EdgeImbalance, "vertex_imbalance": res.VertexImbalance,
			"repaired": b2i(res.Repaired), "rebuilt": b2i(res.Rebuilt),
			"compacted": b2i(res.Compacted),
		}})
	// Close out the epoch's causal root. The post-batch epoch is what views
	// of this batch will be pinned to, so the span settles there.
	d.curBatch.SetEpoch(d.epoch).
		Attr("applied", int64(res.Applied)).Attr("admitted", int64(res.Admitted)).
		Attr("repaired", b2i(res.Repaired)).Attr("rebuilt", b2i(res.Rebuilt)).
		End()
	d.lastBatch = d.curBatch.Context()
	d.curBatch = nil
	d.syncGauges()
	return res
}

// LastBatchSpan returns the causal context of the most recently finished
// batch span (the zero context before any batch, or without a Spans
// collector). The facade parents each epoch's publish span onto it.
func (d *Graph) LastBatchSpan() obs.SpanContext { return d.lastBatch }

// Grow admits count new zero-degree vertices, returning the first new
// internal ID (they are assigned densely: first, first+1, …). Each admitted
// vertex goes to the partition holding the fewest vertices among those with
// free headroom — Algorithm 1's least-loaded-bin rule applied incrementally,
// the same rule phase 2 uses for zero-degree vertices — and fills the next
// reserved slot at that partition's segment tail. The first Grow in a
// numbering lineage converts the cached ordering to slotted form (a
// relabeling epoch that reserves max(MinHeadroom, HeadroomFrac·occupied)
// free slots at every segment tail; see Config); after that, admissions
// extend the ordering in place — no copy, no shift of later segments — so
// pre-existing vertices keep their exact new IDs, the old→new injection
// across a growth epoch is the identity, and engine-side patching is
// O(delta). Only when every partition's headroom is exhausted does Grow
// spill to another relabeling epoch (Stats.HeadroomSpills,
// vebo_headroom_spill_total), which reserves fresh headroom everywhere —
// amortized O(1) per admission, vector-doubling style. The per-partition
// admission counts are accumulated into the view delta's growth vector.
func (d *Graph) Grow(count int) graph.VertexID {
	first := graph.VertexID(d.n)
	if count <= 0 {
		return first
	}
	gstart := time.Now()
	d.growing = true
	d.ensureOrdering()
	if d.segCap == nil {
		// First growth in this lineage: the cached ordering predates growing
		// and has no reserved slots. Relabel into slotted form.
		d.spillRelabel()
	}
	p := d.cfg.Partitions
	grow := make([]int64, p)
	spills := int64(0)
	for i := 0; i < count; i++ {
		q := d.admitTarget()
		if q < 0 {
			d.spillRelabel()
			spills++
			q = d.admitTarget()
		}
		// The admission occupies the next free slot of q's segment: appends
		// only, never a rewrite of an occupied position, so readers sharing
		// the published slices (bounded by their own lengths) are unaffected.
		slot := graph.VertexID(d.slotBase[q] + d.partVerts[q])
		d.ordPerm = append(d.ordPerm, slot)
		d.ordPartOf = append(d.ordPartOf, uint32(q))
		d.assign = append(d.assign, uint32(q))
		d.degIn = append(d.degIn, 0)
		if d.members != nil {
			d.members[q] = append(d.members[q], graph.VertexID(d.n))
		}
		d.partVerts[q]++
		grow[q]++
		d.n++
	}
	d.placeEpoch++
	d.ordPlace = d.placeEpoch
	if d.viewGrow == nil {
		d.viewGrow = make([]int64, p)
	}
	for q, c := range grow {
		d.viewGrow[q] += c
	}
	d.stats.Admitted += int64(count)
	d.stats.Placements += int64(count)
	// No resortPending: a headroom admission appends a zero-degree vertex
	// with the largest ID at its segment's occupied tail, which is exactly
	// where the degree-descending (ID-ascending on ties) order wants it —
	// admissions no longer decay the layout the background re-sort repairs.
	d.touch()
	cause := "growth-headroom"
	if spills > 0 {
		cause = "growth-spill"
	}
	free, _ := d.Headroom()
	d.m.admitted.Add(int64(count))
	d.m.growNS.ObserveSince(gstart)
	d.tr.Emit(obs.Event{Epoch: d.epoch, Kind: "grow", Cause: cause, Dur: time.Since(gstart),
		N: map[string]int64{"admitted": int64(count), "vertices": int64(d.n),
			"spills": spills, "headroom_free": free}})
	d.sp.Record(obs.Span{
		Parent: d.curBatch.Context().ID, Name: "grow", Kind: "maintain",
		Cause: cause, Epoch: d.epoch, Start: gstart, Dur: time.Since(gstart),
		Attrs: map[string]int64{"admitted": int64(count), "spills": spills, "headroom_free": free},
	})
	d.syncGauges()
	return first
}

// admitTarget returns the partition the next admission should fill: the
// fewest-vertices partition among those with free headroom, ties broken by
// edge load. Returns -1 when every partition's headroom is exhausted (or the
// ordering is not slotted yet).
func (d *Graph) admitTarget() int {
	if d.segCap == nil {
		return -1
	}
	best := -1
	for q := range d.partVerts {
		if d.partVerts[q] >= d.segCap[q] {
			continue
		}
		if best < 0 || d.partVerts[q] < d.partVerts[best] ||
			(d.partVerts[q] == d.partVerts[best] && d.partEdges[q] < d.partEdges[best]) {
			best = q
		}
	}
	return best
}

// spillRelabel converts the ordering to freshly slotted form through a
// relabeling epoch: the numbering lineage breaks (placementChanged), and the
// rebuilt ordering reserves headroom at every segment tail, guaranteeing
// admitTarget succeeds. Called on the first growth of a lineage and on
// headroom exhaustion; only the latter counts as a spill.
func (d *Graph) spillRelabel() {
	spill := d.segCap != nil
	if spill {
		d.stats.HeadroomSpills++
		d.m.headroomSpills.Inc()
	}
	sstart := time.Now()
	d.placementChanged()
	d.ensureOrdering()
	d.sp.Record(obs.Span{
		Parent: d.curBatch.Context().ID, Name: "spill", Kind: "maintain",
		Cause: map[bool]string{true: "headroom-exhausted", false: "first-growth"}[spill],
		Epoch: d.epoch, Start: sstart, Dur: time.Since(sstart),
	})
}

// Headroom reports the admission headroom of the cached slotted ordering:
// free reserved slots and total slot capacity, summed over partitions. Both
// are zero while the ordering is compact (no Grow yet) or stale (a
// renumbering is pending and the next ensureOrdering re-reserves).
func (d *Graph) Headroom() (free, capacity int64) {
	if d.segCap == nil || d.ordPlace != d.placeEpoch {
		return 0, 0
	}
	for q, c := range d.segCap {
		capacity += c
		free += c - d.partVerts[q]
	}
	return free, capacity
}

// SlotCounts returns a copy of the per-partition slot capacities of the
// cached slotted ordering (occupied plus reserved headroom), or nil while
// the ordering is compact.
func (d *Graph) SlotCounts() []int64 {
	if d.segCap == nil {
		return nil
	}
	return append([]int64(nil), d.segCap...)
}

// b2i renders a bool as a trace count.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// resortSegment restores the degree-descending (ID-ascending on ties) order
// phase 3 establishes inside one partition's segment, advancing a
// round-robin cursor one partition per call. Preserve-mode swaps park a
// moved vertex at its partner's old position and admissions append at the
// tail, so segments slowly lose the layout that gives dense traversal its
// locality; the re-sort is a segment-local permutation — exactly the shape
// the engine patch paths already handle — recorded in the view delta's
// moved set like any swap.
func (d *Graph) resortSegment() {
	d.ensureOrdering()
	d.ensureMembers()
	q := d.resortNext % d.cfg.Partitions
	d.resortNext++
	l := d.members[q]
	if len(l) < 2 {
		return
	}
	byPos := append([]graph.VertexID(nil), l...)
	sort.Slice(byPos, func(i, j int) bool { return d.ordPerm[byPos[i]] < d.ordPerm[byPos[j]] })
	want := append([]graph.VertexID(nil), l...)
	sort.Slice(want, func(i, j int) bool {
		if d.degIn[want[i]] != d.degIn[want[j]] {
			return d.degIn[want[i]] > d.degIn[want[j]]
		}
		return want[i] < want[j]
	})
	var moved []graph.VertexID
	for i := range want {
		if want[i] != byPos[i] {
			moved = append(moved, want[i])
		}
	}
	if len(moved) == 0 {
		return
	}
	pos := make([]graph.VertexID, len(byPos))
	for i, v := range byPos {
		pos[i] = d.ordPerm[v]
	}
	perm := append([]graph.VertexID(nil), d.ordPerm...) // copy-on-write
	for i, v := range want {
		perm[v] = pos[i]
	}
	d.ordPerm = perm
	d.placeEpoch++
	d.ordPlace = d.placeEpoch
	for _, v := range moved {
		d.viewMoved[v] = struct{}{}
	}
	d.stats.Resorts++
	d.stats.ResortedVertices += int64(len(moved))
	d.m.resorts.Inc()
	d.tr.Emit(obs.Event{Epoch: d.epoch, Kind: "resort", Cause: "locality-decay",
		N: map[string]int64{"partition": int64(q), "moved": int64(len(moved))}})
}

func (d *Graph) insertEdge(s, dst graph.VertexID, w int32) {
	w = d.normWeight(w)
	k := keyOf(s, dst)
	d.pendingAdd = append(d.pendingAdd, graph.Edge{Src: s, Dst: dst, Weight: w})
	d.addAlive[k] = append(d.addAlive[k], w)
	d.liveEdges++
	d.degIn[dst]++
	d.partEdges[d.assign[dst]]++
	d.markDirty(dst)
	d.noteChange(graph.Edge{Src: s, Dst: dst, Weight: w}, +1)
	d.touch()
	d.stats.Updates++
	d.stats.Inserts++
	d.m.inserts.Inc()
}

// deleteEdge cancels one live (s,dst) occurrence. A non-zero wSel on a
// weighted graph selects among parallel edges: only an occurrence carrying
// exactly that weight may die. With no selector (wSel == 0, or any value on
// unweighted graphs) the most recent pending log insertion dies first, else
// the earliest surviving base occurrence — deterministic either way, and the
// resolved weight is recorded so snapshots and view deltas agree
// edge-for-edge.
func (d *Graph) deleteEdge(s, dst graph.VertexID, wSel int32) error {
	k := keyOf(s, dst)
	if !d.weighted {
		wSel = 0
	}
	var died int32
	if wSel == 0 {
		if alive := d.addAlive[k]; len(alive) > 0 {
			died = alive[len(alive)-1]
			d.popAlive(k, len(alive)-1)
		} else {
			w, ok := d.earliestLiveBase(s, dst)
			if !ok {
				return fmt.Errorf("delete of non-existent edge (%d,%d)", s, dst)
			}
			died = w
			d.cancelBase(k, w)
		}
	} else {
		alive := d.addAlive[k]
		i := len(alive) - 1
		for ; i >= 0; i-- {
			if alive[i] == wSel {
				break
			}
		}
		switch {
		case i >= 0:
			died = wSel
			d.popAlive(k, i)
		case d.baseMultiplicityW(s, dst, wSel)-d.delBase[wkey{k, wSel}] > 0:
			died = wSel
			d.cancelBase(k, wSel)
		default:
			return fmt.Errorf("delete of non-existent edge (%d,%d) with weight %d", s, dst, wSel)
		}
	}
	d.liveEdges--
	d.degIn[dst]--
	d.partEdges[d.assign[dst]]--
	d.markDirty(dst)
	d.noteChange(graph.Edge{Src: s, Dst: dst, Weight: died}, -1)
	d.touch()
	d.stats.Updates++
	d.stats.Deletes++
	d.m.deletes.Inc()
	return nil
}

// popAlive removes index i from pair k's surviving-pending weight list.
func (d *Graph) popAlive(k edgeKey, i int) {
	alive := d.addAlive[k]
	alive = append(alive[:i], alive[i+1:]...)
	if len(alive) == 0 {
		delete(d.addAlive, k)
	} else {
		d.addAlive[k] = alive
	}
	// The log entry itself is dropped lazily at snapshot/compaction.
}

// cancelBase records a deletion against a base occurrence of (k, w).
func (d *Graph) cancelBase(k edgeKey, w int32) {
	d.delBase[wkey{k, w}]++
	d.delPair[k]++
	d.pendingDels++
}

// earliestLiveBase locates the earliest base occurrence of (s,dst) not yet
// cancelled and returns its weight. Cancellations are per-weight prefixes of
// the parallel-edge run, so an occurrence is live iff the number of
// same-weight occurrences before it covers the weight's cancellation count.
func (d *Graph) earliestLiveBase(s, dst graph.VertexID) (int32, bool) {
	if int(s) >= d.base.NumVertices() {
		return 0, false
	}
	nbrs := d.base.OutNeighbors(s)
	ws := d.base.OutWeights(s)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= dst })
	k := keyOf(s, dst)
	var seen map[int32]int64
	for ; i < len(nbrs) && nbrs[i] == dst; i++ {
		w := ws[i]
		cancelled := d.delBase[wkey{k, w}]
		if cancelled == 0 {
			return w, true
		}
		if seen == nil {
			seen = make(map[int32]int64, 4)
		}
		if seen[w] >= cancelled {
			return w, true
		}
		seen[w]++
	}
	return 0, false
}

// noteChange accumulates the view delta for one resolved edge change.
func (d *Graph) noteChange(e graph.Edge, sign int64) {
	d.viewNet[e] += sign
	if d.viewNet[e] == 0 {
		delete(d.viewNet, e)
	}
}

func (d *Graph) touch() {
	d.epoch++
}

// markDirty records that dst's in-degree class changed. Only the
// replace-mode repair consumes the dirty set; the swap repair picks movers
// by current load, so preserve mode skips the bookkeeping.
func (d *Graph) markDirty(dst graph.VertexID) {
	if d.cfg.Repair == RepairReplace {
		d.dirty[dst] = struct{}{}
	}
}

// ensureMembers (re)builds the per-partition member lists when stale.
func (d *Graph) ensureMembers() {
	if d.members != nil {
		return
	}
	d.members = make([][]graph.VertexID, d.cfg.Partitions)
	for v := 0; v < d.n; v++ {
		q := d.assign[v]
		d.members[q] = append(d.members[q], graph.VertexID(v))
	}
}

// rotScanK bounds the degree-indexed rotation search: per (receiver,donor)
// pair, at most this many valid intermediates are gain-evaluated (and at most
// 8× as many index slots scanned past skipped pmax/pmin residents). The
// candidates nearest deg(a) carry almost all the gain — anything further
// disturbs the intermediate partition more — so a short window finds the
// same rotations the exhaustive pmin×P sweep does in practice, and the
// sweep remains as a fallback when the window finds none.
const rotScanK = 12

// swapRepair pulls Δ(n) back under the effective threshold without moving
// the partition segment boundaries: each step exchanges a vertex v of the
// most-loaded partition with a lower-degree vertex u of the least-loaded
// one, transferring deg(v)−deg(u) edges while both vertex counts stay
// fixed. The pair is chosen to maximize the edge-balance gain (transfer
// closest to half the gap), breaking ties toward the lowest-degree u. The
// two vertices exchange new IDs, so the ordering permutation changes at
// exactly the swapped positions — a segment-local permutation the view
// layer can patch engines across (ViewDelta.Moved). The shared cached
// permutation is never mutated: a repair pass that swaps clones it once
// (copy-on-write) so views pinned to earlier epochs keep their numbering.
//
// The return reports the pass outcome: the exchange counts, and stalled —
// the pass ended with the gap still over threshold and neither an improving
// pair swap nor a positive-gain rotation left, the state that forces the
// caller's full-rebuild fallback.
func (d *Graph) swapRepair() (swaps, rots int64, stalled bool) {
	th := d.effEdgeThreshold()
	if core.Spread(d.partEdges) <= th {
		return 0, 0, false
	}
	d.ensureOrdering()
	d.ensureMembers()
	p := d.cfg.Partitions
	lists := d.members
	// Partition member lists are sorted by ascending live degree lazily, on
	// first use as a donor or receiver in this pass (degrees drift between
	// passes, so sortedness never carries over); a typical pass touches a
	// handful of partitions, not all P.
	sorted := make([]bool, p)
	byDeg := func(l []graph.VertexID) func(i, j int) bool {
		return func(i, j int) bool {
			if d.degIn[l[i]] != d.degIn[l[j]] {
				return d.degIn[l[i]] < d.degIn[l[j]]
			}
			return l[i] < l[j]
		}
	}
	sortList := func(q int) {
		if !sorted[q] {
			sort.Slice(lists[q], byDeg(lists[q]))
			sorted[q] = true
		}
	}
	// insertSorted keeps a sorted list sorted after adding w.
	insertSorted := func(q int, w graph.VertexID) {
		l := lists[q]
		i := sort.Search(len(l), func(i int) bool {
			if d.degIn[l[i]] != d.degIn[w] {
				return d.degIn[l[i]] > d.degIn[w]
			}
			return l[i] >= w
		})
		l = append(l, 0)
		copy(l[i+1:], l[i:])
		l[i] = w
		lists[q] = l
	}
	var perm []graph.VertexID
	var partOf []uint32
	var moved []graph.VertexID
	// cow clones the shared cached permutation once per pass, so views
	// pinned to earlier epochs keep their numbering.
	cow := func() {
		if perm == nil {
			perm = append([]graph.VertexID(nil), d.ordPerm...)
			partOf = append([]uint32(nil), d.ordPartOf...)
		}
	}
	// rotIdx is the degree-indexed rotation candidate index: every vertex,
	// sorted by (live in-degree, ID). Degrees are fixed within a pass, so it
	// is built lazily on the first rotation attempt and shared by the rest of
	// the pass. It lets the search find intermediate vertices b with degree
	// near deg(a) — the choice that least disturbs b's partition — by binary
	// search plus a short two-sided scan, instead of probing every partition.
	var rotIdx []graph.VertexID
	ensureRotIdx := func() {
		if rotIdx != nil {
			return
		}
		rotIdx = make([]graph.VertexID, d.n)
		for v := range rotIdx {
			rotIdx[v] = graph.VertexID(v)
		}
		sort.Slice(rotIdx, func(i, j int) bool {
			if d.degIn[rotIdx[i]] != d.degIn[rotIdx[j]] {
				return d.degIn[rotIdx[i]] < d.degIn[rotIdx[j]]
			}
			return rotIdx[i] < rotIdx[j]
		})
	}
	// rotate attempts a three-way exchange when no improving pair swap
	// exists: a ∈ pmax moves to an intermediate partition q, b ∈ q moves to
	// pmin, and c ∈ pmin moves to pmax, the three exchanging new IDs
	// cyclically so all vertex counts and segment boundaries stay fixed.
	// Per-pair transfers that are individually too coarse (deg(a)−deg(c)
	// ∉ (0, gap) for every direct pair) can compose into a fine-grained
	// net flow through q. The rotation is accepted only if it strictly
	// decreases the sum of squared loads of the three partitions, which
	// bounds the repair loop the same way pair swaps do.
	rotate := func(pmax, pmin int, gap int64) bool {
		d.stats.RotationAttempts++
		d.m.rotAttempts.Inc()
		lmax, lmin := lists[pmax], lists[pmin]
		bestQ, bestA, bestB, bestC := -1, -1, -1, -1
		var bestGain int64
		// Gain of moving loads x→x+t is −(2xt+t²) summed over the three
		// partitions; positive gain = smaller Σ load².
		gainOf := func(load, t int64) int64 { return -(2*load*t + t*t) }
		consider := func(q, aj, bj, ci int) {
			a, b, c := lmax[aj], lists[q][bj], lmin[ci]
			da, db, dc := d.degIn[a], d.degIn[b], d.degIn[c]
			gain := gainOf(d.partEdges[pmax], dc-da) +
				gainOf(d.partEdges[q], da-db) +
				gainOf(d.partEdges[pmin], db-dc)
			if gain > bestGain {
				bestQ, bestA, bestB, bestC, bestGain = q, aj, bj, ci, gain
			}
		}
		// Indexed search: for each receiver c, take the donors a bracketing
		// the ideal transfer (as the pair search does) and probe the degree
		// index around deg(a) for intermediates b, nearest degree first.
		ensureRotIdx()
		posInList := func(q int, b graph.VertexID) int {
			sortList(q)
			l := lists[q]
			return sort.Search(len(l), func(i int) bool {
				if d.degIn[l[i]] != d.degIn[b] {
					return d.degIn[l[i]] > d.degIn[b]
				}
				return l[i] >= b
			})
		}
		probe := func(aj, ci int) {
			da := d.degIn[lmax[aj]]
			i0 := sort.Search(len(rotIdx), func(i int) bool { return d.degIn[rotIdx[i]] >= da })
			taken, scanned := 0, 0
			for lo, hi := i0-1, i0; taken < rotScanK && scanned < 8*rotScanK && (lo >= 0 || hi < len(rotIdx)); {
				var b graph.VertexID
				// Expand toward whichever side's next candidate is nearer
				// in degree.
				switch {
				case lo < 0:
					b = rotIdx[hi]
					hi++
				case hi >= len(rotIdx):
					b = rotIdx[lo]
					lo--
				case da-d.degIn[rotIdx[lo]] <= d.degIn[rotIdx[hi]]-da:
					b = rotIdx[lo]
					lo--
				default:
					b = rotIdx[hi]
					hi++
				}
				scanned++
				q := int(d.assign[b])
				if q == pmax || q == pmin {
					continue
				}
				consider(q, aj, posInList(q, b), ci)
				taken++
			}
		}
		for ci, c := range lmin {
			target := d.degIn[c] + (gap+1)/2
			ai := sort.Search(len(lmax), func(i int) bool { return d.degIn[lmax[i]] >= target })
			for _, aj := range [2]int{ai - 1, ai} {
				if aj < 0 || aj >= len(lmax) {
					continue
				}
				probe(aj, ci)
			}
		}
		if bestQ < 0 {
			// The indexed scan found no positive-gain rotation; fall back to
			// the exhaustive pmin×P sweep so repair capability never
			// regresses relative to the unindexed search.
			d.stats.RotationFallbacks++
			d.m.rotFallbacks.Inc()
			for q := 0; q < p; q++ {
				if q == pmax || q == pmin || len(lists[q]) == 0 {
					continue
				}
				sortList(q)
				lq := lists[q]
				for ci, c := range lmin {
					target := d.degIn[c] + (gap+1)/2
					ai := sort.Search(len(lmax), func(i int) bool { return d.degIn[lmax[i]] >= target })
					for _, aj := range [2]int{ai - 1, ai} {
						if aj < 0 || aj >= len(lmax) {
							continue
						}
						a := lmax[aj]
						// b ideally matches deg(a) so q's load barely moves.
						bi := sort.Search(len(lq), func(i int) bool { return d.degIn[lq[i]] >= d.degIn[a] })
						for _, bj := range [2]int{bi - 1, bi} {
							if bj < 0 || bj >= len(lq) {
								continue
							}
							consider(q, aj, bj, ci)
						}
					}
				}
			}
		}
		if bestQ < 0 {
			d.stats.RotationStalls++
			d.m.rotStalls.Inc()
			return false
		}
		q := bestQ
		a, b, c := lists[pmax][bestA], lists[q][bestB], lists[pmin][bestC]
		cow()
		da, db, dc := d.degIn[a], d.degIn[b], d.degIn[c]
		d.assign[a], d.assign[b], d.assign[c] = uint32(q), uint32(pmin), uint32(pmax)
		partOf[a], partOf[b], partOf[c] = uint32(q), uint32(pmin), uint32(pmax)
		d.partEdges[pmax] += dc - da
		d.partEdges[q] += da - db
		d.partEdges[pmin] += db - dc
		// a takes b's position, b takes c's, c takes a's.
		perm[a], perm[b], perm[c] = perm[b], perm[c], perm[a]
		moved = append(moved, a, b, c)
		rots++
		lists[pmax] = append(lists[pmax][:bestA], lists[pmax][bestA+1:]...)
		lists[q] = append(lists[q][:bestB], lists[q][bestB+1:]...)
		lists[pmin] = append(lists[pmin][:bestC], lists[pmin][bestC+1:]...)
		insertSorted(q, a)
		insertSorted(pmin, b)
		insertSorted(pmax, c)
		return true
	}
	for iter := 0; iter < d.n; iter++ {
		pmax := argMin2Neg(d.partEdges)
		pmin := argMin2(d.partEdges, d.partVerts)
		gap := d.partEdges[pmax] - d.partEdges[pmin]
		if gap <= th {
			break
		}
		sortList(pmax)
		sortList(pmin)
		lmax, lmin := lists[pmax], lists[pmin]
		// Best pair: minimize |transfer − gap/2| over transfers in (0, gap),
		// which strictly shrinks this pair's imbalance (and the sum of
		// squared loads, so the loop terminates). For each candidate u the
		// two donors bracketing the ideal degree suffice, since degrees are
		// sorted.
		bestV, bestU := -1, -1
		var bestScore int64
		for ui, u := range lmin {
			target := d.degIn[u] + (gap+1)/2
			i := sort.Search(len(lmax), func(i int) bool { return d.degIn[lmax[i]] >= target })
			for _, j := range [2]int{i - 1, i} {
				if j < 0 || j >= len(lmax) {
					continue
				}
				t := d.degIn[lmax[j]] - d.degIn[u]
				if t <= 0 || t >= gap {
					continue
				}
				score := gap - 2*t
				if score < 0 {
					score = -score
				}
				if bestV < 0 || score < bestScore {
					bestV, bestU, bestScore = j, ui, score
				}
			}
		}
		if bestV < 0 {
			// No improving pair exchange exists; try a three-way rotation
			// through an intermediate partition before giving up (the
			// caller falls back to a full rebuild).
			if !rotate(pmax, pmin, gap) {
				stalled = true
				break
			}
			continue
		}
		v, u := lmax[bestV], lmin[bestU]
		cow()
		dv, du := d.degIn[v], d.degIn[u]
		d.assign[v], d.assign[u] = uint32(pmin), uint32(pmax)
		partOf[v], partOf[u] = uint32(pmin), uint32(pmax)
		d.partEdges[pmax] += du - dv
		d.partEdges[pmin] += dv - du
		perm[v], perm[u] = perm[u], perm[v]
		moved = append(moved, v, u)
		swaps++
		lists[pmax] = append(lmax[:bestV], lmax[bestV+1:]...)
		lists[pmin] = append(lmin[:bestU], lmin[bestU+1:]...)
		insertSorted(pmax, u)
		insertSorted(pmin, v)
	}
	if swaps > 0 || rots > 0 {
		d.ordPerm, d.ordPartOf = perm, partOf
		d.placeEpoch++
		d.ordPlace = d.placeEpoch
		for _, w := range moved {
			d.viewMoved[w] = struct{}{}
		}
		d.stats.Swaps += swaps
		d.stats.Rotations += rots
		d.stats.Placements += 2*swaps + 3*rots
		d.stats.RepairedVertices += 2*swaps + 3*rots
		d.m.swaps.Add(swaps)
		d.m.rotations.Add(rots)
	}
	d.stats.Repairs++
	return swaps, rots, stalled
}

// repair re-runs Algorithm 2's greedy placement over the dirty vertices
// only: each is removed from its partition and re-placed in decreasing live
// degree order onto the currently least-loaded partition — least edges for
// non-zero-degree vertices (phase 1), least vertices for zero-degree
// vertices (phase 2).
func (d *Graph) repair() {
	if len(d.dirty) == 0 {
		return
	}
	verts := make([]graph.VertexID, 0, len(d.dirty))
	for v := range d.dirty {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool {
		if d.degIn[verts[i]] != d.degIn[verts[j]] {
			return d.degIn[verts[i]] > d.degIn[verts[j]]
		}
		return verts[i] < verts[j]
	})
	for _, v := range verts {
		p := d.assign[v]
		d.partEdges[p] -= d.degIn[v]
		d.partVerts[p]--
	}
	for _, v := range verts {
		var q int
		if d.degIn[v] > 0 {
			// Least-edges placement as in phase 1, but ties broken toward the
			// least-vertex partition: repairs run continuously, and an
			// edge-only arg-min lets δ(n) drift batch over batch (ROADMAP's
			// δ-drift item) while the tie-break keeps it near the static
			// bound at no cost to Δ(n).
			q = argMin2(d.partEdges, d.partVerts)
		} else {
			q = argMin2(d.partVerts, d.partEdges)
		}
		d.assign[v] = uint32(q)
		d.partEdges[q] += d.degIn[v]
		d.partVerts[q]++
	}
	d.stats.Repairs++
	d.stats.RepairedVertices += int64(len(verts))
	d.stats.Placements += int64(len(verts))
	d.dirty = make(map[graph.VertexID]struct{})
	d.placementChanged()
	if d.VertexImbalance() > d.cfg.VertexRebuildThreshold {
		d.vertexRepair()
	}
}

// vertexRepair pulls δ(n) back under its threshold by moving the
// lowest-degree vertices of overfull partitions onto the least-vertex
// partition. Edge-focused repairs run continuously and place by least-edges,
// so vertex counts drift batch over batch (the ROADMAP δ-drift item); this
// pass corrects them directly, preferring zero-degree vertices whose move
// cannot disturb Δ(n). If it runs out of useful moves the caller's
// threshold check falls through to a full rebuild.
func (d *Graph) vertexRepair() {
	th := d.cfg.VertexRebuildThreshold
	p := d.cfg.Partitions
	lists := make([][]graph.VertexID, p)
	for v := 0; v < d.n; v++ {
		q := d.assign[v]
		lists[q] = append(lists[q], graph.VertexID(v))
	}
	// Bucketing is O(n); sorting is deferred until a partition actually
	// becomes the overfull donor, so a typical invocation sorts one or two
	// partitions (O(n/P log n/P)) instead of all of them.
	sorted := make([]bool, p)
	ptr := make([]int, p)
	var moves int64
	for i := 0; i < d.n; i++ {
		pmax := argMin2Neg(d.partVerts)
		pmin := argMin2(d.partVerts, d.partEdges)
		if d.partVerts[pmax]-d.partVerts[pmin] <= th {
			break
		}
		if !sorted[pmax] {
			l := lists[pmax]
			sort.Slice(l, func(i, j int) bool {
				if d.degIn[l[i]] != d.degIn[l[j]] {
					return d.degIn[l[i]] < d.degIn[l[j]]
				}
				return l[i] < l[j]
			})
			sorted[pmax] = true
		}
		var v graph.VertexID
		found := false
		for ptr[pmax] < len(lists[pmax]) {
			cand := lists[pmax][ptr[pmax]]
			ptr[pmax]++
			if d.assign[cand] == uint32(pmax) {
				v, found = cand, true
				break
			}
		}
		if !found {
			break
		}
		d.assign[v] = uint32(pmin)
		d.partVerts[pmax]--
		d.partVerts[pmin]++
		d.partEdges[pmax] -= d.degIn[v]
		d.partEdges[pmin] += d.degIn[v]
		moves++
	}
	if moves > 0 {
		d.stats.Placements += moves
		d.stats.VertexMoves += moves
		d.placementChanged()
	}
}

// argMin2Neg returns the index of the maximum value (lowest index wins ties).
func argMin2Neg(xs []int64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// rebuild runs the full Algorithm 2 over the live degree array.
func (d *Graph) rebuild() {
	r, err := core.ReorderDegrees(d.degIn, d.cfg.Partitions, core.Options{})
	if err != nil {
		// Unreachable: the config validated P at New time.
		panic(err)
	}
	copy(d.assign, r.PartitionOf)
	copy(d.partEdges, r.EdgeCounts)
	copy(d.partVerts, r.VertexCounts)
	d.dirty = make(map[graph.VertexID]struct{})
	d.stats.FullRebuilds++
	d.stats.Placements += int64(d.n)
	d.placementChanged()
}

// placementChanged invalidates everything keyed to the placement: the cached
// permutation and the patchability of engine-side structures. Swap repairs
// do NOT go through here — they maintain the permutation copy-on-write and
// record their moves in viewMoved instead, keeping the numbering lineage
// (renumEpoch) intact.
func (d *Graph) placementChanged() {
	d.placeEpoch++
	d.renumEpoch++
	d.viewPlace = true
	// Per-vertex move tracking is moot once the whole numbering changed,
	// and the swap repair's member lists no longer match the assignment.
	d.viewMoved = make(map[graph.VertexID]struct{})
	d.members = nil
}

// Rebuild forces a full reorder regardless of the thresholds.
func (d *Graph) Rebuild() {
	bstart := time.Now()
	d.rebuild()
	d.m.rebuildForced.Inc()
	d.m.rebuildNS.ObserveSince(bstart)
	d.tr.Emit(obs.Event{Epoch: d.epoch, Kind: "rebuild", Cause: "forced", Dur: time.Since(bstart),
		N: map[string]int64{"placements": int64(d.n)}})
	d.syncGauges()
}

// argMin2 returns the index minimizing primary, breaking ties by secondary.
func argMin2(primary, secondary []int64) int {
	best := 0
	for i := 1; i < len(primary); i++ {
		if primary[i] < primary[best] ||
			(primary[i] == primary[best] && secondary[i] < secondary[best]) {
			best = i
		}
	}
	return best
}

// Frozen is an immutable capture of the live edge multiset at one epoch. It
// shares the base graph and the append-only prefix of the pending log with
// the live structure and copies only the (small) cancellation bookkeeping,
// so freezing costs O(pending) regardless of graph size. A Frozen may be
// materialized from any goroutine, concurrently with further ApplyBatch
// calls on the source graph.
//
//vebo:frozen
type Frozen struct {
	n         int
	weighted  bool
	epoch     int64
	liveEdges int64
	base      *graph.Graph
	pending   []graph.Edge
	needW     map[wkey]int64 // surviving pending insertions per (s,d,w)
	delBase   map[wkey]int64 // base cancellations per (s,d,w)
}

// Freeze captures the current live edge multiset.
func (d *Graph) Freeze() Frozen {
	f := Frozen{
		n:         d.n,
		weighted:  d.weighted,
		epoch:     d.epoch,
		liveEdges: d.liveEdges,
		base:      d.base,
		pending:   d.pendingAdd[:len(d.pendingAdd):len(d.pendingAdd)],
	}
	if len(d.addAlive) > 0 {
		f.needW = make(map[wkey]int64, len(d.addAlive))
		for k, alive := range d.addAlive {
			for _, w := range alive {
				f.needW[wkey{k, w}]++
			}
		}
	}
	if len(d.delBase) > 0 {
		f.delBase = make(map[wkey]int64, len(d.delBase))
		for k, c := range d.delBase {
			f.delBase[k] = c
		}
	}
	return f
}

// Epoch returns the mutation epoch the capture was taken at.
func (f Frozen) Epoch() int64 { return f.epoch }

// NumVertices reports the vertex count.
func (f Frozen) NumVertices() int { return f.n }

// NumEdges reports the live edge count of the capture.
func (f Frozen) NumEdges() int64 { return f.liveEdges }

// Materialize builds the captured edge multiset as an immutable CSR+CSC
// graph, in deterministic order: base edges in CSR order with cancellations
// consuming the earliest same-weight occurrences, then surviving log
// insertions in arrival order.
func (f Frozen) Materialize() *graph.Graph {
	edges := make([]graph.Edge, 0, f.liveEdges)
	var dels map[wkey]int64
	if len(f.delBase) > 0 {
		dels = make(map[wkey]int64, len(f.delBase))
		for k, c := range f.delBase {
			dels[k] = c
		}
	}
	for _, e := range f.base.Edges() {
		k := wkey{keyOf(e.Src, e.Dst), e.Weight}
		if dels[k] > 0 {
			dels[k]--
			continue
		}
		edges = append(edges, e)
	}
	if len(f.pending) > 0 {
		emitted := make(map[wkey]int64, len(f.needW))
		for _, e := range f.pending {
			k := wkey{keyOf(e.Src, e.Dst), e.Weight}
			if emitted[k] >= f.needW[k] {
				continue // cancelled by a later deletion
			}
			emitted[k]++
			edges = append(edges, e)
		}
	}
	g, err := graph.FromEdges(f.n, edges, f.weighted)
	if err != nil {
		// Unreachable: every applied update was range-checked.
		panic(err)
	}
	return g
}

// Snapshot materializes the live graph as an immutable CSR+CSC graph.Graph
// the processing engines can traverse. The result is cached until the next
// mutation; callers must not retain it across ApplyBatch if they need the
// newest state, but may keep using an old snapshot safely (it is never
// mutated).
func (d *Graph) Snapshot() *graph.Graph {
	if d.snapCache != nil && d.snapEpoch == d.epoch {
		return d.snapCache
	}
	g := d.Freeze().Materialize()
	d.snapCache, d.snapEpoch = g, d.epoch
	return g
}

// Compact promotes the current snapshot to the new base graph and clears the
// delta log. Engines holding older snapshots (and views holding older
// freezes) are unaffected: the old base and log prefix stay immutable.
func (d *Graph) Compact() {
	cstart := time.Now()
	pending := d.PendingOps()
	d.base = d.Snapshot()
	d.pendingAdd = nil
	d.addAlive = make(map[edgeKey][]int32)
	d.delBase = make(map[wkey]int64)
	d.delPair = make(map[edgeKey]int64)
	d.pendingDels = 0
	d.stats.Compactions++
	d.m.compactions.Inc()
	d.m.compactNS.ObserveSince(cstart)
	d.tr.Emit(obs.Event{Epoch: d.epoch, Kind: "compact", Cause: "log-bound", Dur: time.Since(cstart),
		N: map[string]int64{"pending_ops": pending, "base_edges": d.liveEdges}})
}

// ensureOrdering makes the cached permutation current. The full
// (partition, degree desc, ID) sort runs only when the numbering lineage
// broke (initial call, full rebuild, replace-mode repair, headroom spill);
// swap repairs update the cached permutation copy-on-write themselves, and
// Grow extends it in place, so between renumbering events the new IDs of
// unmoved vertices never change. Once the vertex space has started growing,
// the sort produces a slotted ordering: each partition's segment is followed
// by reserved headroom slots (Config.headroom) that future admissions fill
// without renumbering anything; before the first Grow the ordering stays
// compact, so non-growing workloads see exact permutations.
func (d *Graph) ensureOrdering() {
	if d.ordPerm != nil && d.ordPlace == d.placeEpoch {
		return
	}
	order := make([]int, d.n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if d.assign[a] != d.assign[b] {
			return d.assign[a] < d.assign[b]
		}
		if d.degIn[a] != d.degIn[b] {
			return d.degIn[a] > d.degIn[b]
		}
		return a < b
	})
	perm := make([]graph.VertexID, d.n)
	if d.growing {
		p := d.cfg.Partitions
		d.segCap = make([]int64, p)
		d.slotBase = make([]int64, p+1)
		for q := 0; q < p; q++ {
			d.segCap[q] = d.partVerts[q] + d.cfg.headroom(d.partVerts[q])
			d.slotBase[q+1] = d.slotBase[q] + d.segCap[q]
		}
		next := append([]int64(nil), d.slotBase[:p]...)
		// order is sorted by partition first, so assigning sequentially from
		// each partition's slot base keeps the occupied positions a
		// contiguous prefix of every segment.
		for _, v := range order {
			q := d.assign[v]
			perm[v] = graph.VertexID(next[q])
			next[q]++
		}
	} else {
		d.segCap, d.slotBase = nil, nil
		for newID, v := range order {
			perm[v] = graph.VertexID(newID)
		}
	}
	d.ordPerm = perm
	d.ordPartOf = append([]uint32(nil), d.assign...)
	d.ordPlace = d.placeEpoch
}

// Ordering returns the current placement as a core.Result: the permutation
// renumbers vertices so each partition owns a contiguous new-ID range, with
// vertices in decreasing degree order (as of the last renumbering event)
// inside it, as Algorithm 2's phase 3 does. The permutation is recomputed
// only when the numbering lineage breaks (full rebuild or replace-mode
// repair); swap repairs permute it copy-on-write at exactly the swapped
// positions, and degree-only epochs keep the exact numbering — which is
// what lets engine-side structures of unchanged partitions be reused —
// while the returned per-partition counts are always current. Once the
// vertex space has grown, the result is slotted (SlotCounts non-nil): each
// segment carries reserved headroom slots after its occupied prefix, the
// permutation is an injection into the slot space, and admissions fill
// slots without renumbering anyone. The Perm and PartitionOf slices are
// shared and immutable; callers must not modify them.
func (d *Graph) Ordering() *core.Result {
	d.ensureOrdering()
	return &core.Result{
		P:            d.cfg.Partitions,
		Perm:         d.ordPerm,
		PartitionOf:  d.ordPartOf,
		VertexCounts: d.VertexCounts(),
		EdgeCounts:   d.EdgeCounts(),
		SlotCounts:   d.SlotCounts(),
	}
}

// ViewDelta describes everything that changed between two drains: the net
// resolved edge changes and whether the placement moved. The facade
// publishes one view per drain and uses the delta to patch engine-side
// structures instead of rebuilding them; the exact set of dirty partitions
// is derived from the delta's destination endpoints.
type ViewDelta struct {
	// Net maps an edge triple (Src, Dst, normalized Weight) to its net
	// multiplicity change since the last drain. Entries are never zero.
	Net map[graph.Edge]int64
	// Moved holds the original-ID vertices repositioned by
	// placement-preserving swap repairs since the last drain: their
	// partition and new ID changed, but the partition segment boundaries
	// did not, and every vertex outside the set kept its exact new ID. The
	// set may over-approximate after window arithmetic (an entry whose
	// endpoint positions turn out equal is harmless — its segment
	// permutation entry is the identity).
	Moved map[graph.VertexID]struct{}
	// PlacementChanged reports whether the whole numbering was invalidated
	// since the last drain (full rebuild or replace-mode repair); swap
	// repairs set Moved instead.
	PlacementChanged bool
	// Grown is the per-partition count of vertices admitted since the last
	// drain (nil when none): partition p absorbed Grown[p] admissions into
	// its reserved headroom slots, leaving every pre-existing vertex's new
	// ID unchanged — the cross-epoch injection is the identity on the old
	// vertices. Internal IDs are append-only, so the admitted vertices are
	// exactly the IDs in [n − GrownTotal(), n) of the drained epoch's
	// space; their new IDs are scattered per-partition tail slots, not a
	// contiguous range. A spill (headroom exhaustion) renumbers instead and
	// sets PlacementChanged.
	Grown []int64
	// Updates counts the net edge changes covered by this delta.
	Updates int64
}

// GrownTotal returns the number of vertices admitted in the delta's window.
func (vd ViewDelta) GrownTotal() int64 {
	var t int64
	for _, c := range vd.Grown {
		t += c
	}
	return t
}

// addGrown adds sign×b into a elementwise, allocating on first use; a nil
// result stands for the zero vector.
func addGrown(a, b []int64, sign int64) []int64 {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		a = make([]int64, len(b))
	}
	for p, c := range b {
		a[p] += sign * c
	}
	return a
}

// DrainViewDelta returns the accumulated delta and resets the accumulators.
// Single-writer: call only from the goroutine that applies batches.
func (d *Graph) DrainViewDelta() ViewDelta {
	vd := ViewDelta{
		Net:              d.viewNet,
		Moved:            d.viewMoved,
		PlacementChanged: d.viewPlace,
		Grown:            d.viewGrow,
	}
	for _, c := range vd.Net {
		if c > 0 {
			vd.Updates += c
		} else {
			vd.Updates -= c
		}
	}
	d.viewNet = make(map[graph.Edge]int64)
	d.viewMoved = make(map[graph.VertexID]struct{})
	d.viewGrow = nil
	d.viewPlace = false
	return vd
}

// mergeMoved unions two moved sets; a nil result stands for the empty set.
func mergeMoved(a, b map[graph.VertexID]struct{}) map[graph.VertexID]struct{} {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(map[graph.VertexID]struct{}, len(a)+len(b))
	for v := range a {
		out[v] = struct{}{}
	}
	for v := range b {
		out[v] = struct{}{}
	}
	return out
}

// Merge combines vd (earlier) with later into a fresh delta covering both
// windows. Moved is the union even when the combined window contains a
// renumbering (PlacementChanged): a later re-anchor onto a view published
// after the rebuild clears PlacementChanged again, and the swaps that
// landed after the rebuild must still be there for it to trim against —
// dropping them would leave the delta claiming an identity permutation
// across a real move. Neither input is mutated.
func (vd ViewDelta) Merge(later ViewDelta) ViewDelta {
	out := ViewDelta{
		Net:              make(map[graph.Edge]int64, len(vd.Net)+len(later.Net)),
		Moved:            mergeMoved(vd.Moved, later.Moved),
		PlacementChanged: vd.PlacementChanged || later.PlacementChanged,
		Grown:            addGrown(addGrown(nil, vd.Grown, 1), later.Grown, 1),
		Updates:          vd.Updates + later.Updates,
	}
	for e, c := range vd.Net {
		out.Net[e] = c
	}
	for e, c := range later.Net {
		out.Net[e] += c
		if out.Net[e] == 0 {
			delete(out.Net, e)
		}
	}
	return out
}

// Subtract returns the delta covering this delta's window minus a prefix of
// it: Net is the exact multiset difference; Moved is the union of both
// windows' sets (a safe over-approximation — the caller can trim entries
// whose endpoint positions agree); PlacementChanged is left for the caller
// to set from renumbering epochs. Neither input is mutated.
func (vd ViewDelta) Subtract(prefix ViewDelta) ViewDelta {
	out := ViewDelta{
		Net:   make(map[graph.Edge]int64, len(vd.Net)),
		Moved: mergeMoved(vd.Moved, prefix.Moved),
		// Admissions are cumulative and prefix-closed: the prefix's
		// admissions are a per-partition prefix of this window's.
		Grown: addGrown(addGrown(nil, vd.Grown, 1), prefix.Grown, -1),
	}
	for e, c := range vd.Net {
		out.Net[e] = c
	}
	for e, c := range prefix.Net {
		out.Net[e] -= c
		if out.Net[e] == 0 {
			delete(out.Net, e)
		}
	}
	for _, c := range out.Net {
		if c > 0 {
			out.Updates += c
		} else {
			out.Updates -= c
		}
	}
	return out
}

// dynMetrics bundles the subsystem's metric handles. It is populated even
// with a nil registry (every handle is then a nil no-op), so instrumented
// paths never branch on whether metrics are enabled.
type dynMetrics struct {
	batches, inserts, deletes            *obs.Counter
	repairs, swaps, rotations            *obs.Counter
	rotAttempts, rotFallbacks, rotStalls *obs.Counter
	rebuildRotStall, rebuildVertex       *obs.Counter
	rebuildShortfall, rebuildForced      *obs.Counter
	resorts, compactions                 *obs.Counter
	admitted, headroomSpills             *obs.Counter

	batchNS, repairNS, rebuildNS *obs.Histogram
	growNS, compactNS            *obs.Histogram

	epoch, vertices, liveEdges  *obs.Gauge
	edgeImb, vertImb, effThresh *obs.Gauge
	pendingOps                  *obs.Gauge
	// headroomSlots[q] tracks partition q's free reserved admission slots
	// (vebo_headroom_slots{partition=q}); zero while the ordering is compact.
	headroomSlots []*obs.Gauge
}

func newDynMetrics(r *obs.Registry, p int) dynMetrics {
	slots := make([]*obs.Gauge, p)
	for q := range slots {
		slots[q] = r.Gauge("vebo_headroom_slots", "partition", strconv.Itoa(q))
	}
	return dynMetrics{
		batches:          r.Counter("vebo_batches_total"),
		inserts:          r.Counter("vebo_updates_total", "op", "insert"),
		deletes:          r.Counter("vebo_updates_total", "op", "delete"),
		repairs:          r.Counter("vebo_repairs_total"),
		swaps:            r.Counter("vebo_swaps_total"),
		rotations:        r.Counter("vebo_rotations_total"),
		rotAttempts:      r.Counter("vebo_rotation_search_total", "result", "attempt"),
		rotFallbacks:     r.Counter("vebo_rotation_search_total", "result", "fallback"),
		rotStalls:        r.Counter("vebo_rotation_search_total", "result", "stall"),
		rebuildRotStall:  r.Counter("vebo_rebuilds_total", "cause", "rotation-stall"),
		rebuildVertex:    r.Counter("vebo_rebuilds_total", "cause", "vertex-threshold"),
		rebuildShortfall: r.Counter("vebo_rebuilds_total", "cause", "repair-shortfall"),
		rebuildForced:    r.Counter("vebo_rebuilds_total", "cause", "forced"),
		resorts:          r.Counter("vebo_resorts_total"),
		compactions:      r.Counter("vebo_compactions_total"),
		admitted:         r.Counter("vebo_admitted_total"),
		headroomSpills:   r.Counter("vebo_headroom_spill_total"),
		batchNS:          r.Histogram("vebo_batch_ns"),
		repairNS:         r.Histogram("vebo_repair_ns"),
		rebuildNS:        r.Histogram("vebo_rebuild_ns"),
		growNS:           r.Histogram("vebo_grow_ns"),
		compactNS:        r.Histogram("vebo_compact_ns"),
		epoch:            r.Gauge("vebo_epoch"),
		vertices:         r.Gauge("vebo_vertices"),
		liveEdges:        r.Gauge("vebo_live_edges"),
		edgeImb:          r.Gauge("vebo_edge_imbalance"),
		vertImb:          r.Gauge("vebo_vertex_imbalance"),
		effThresh:        r.Gauge("vebo_effective_threshold"),
		pendingOps:       r.Gauge("vebo_pending_ops"),
		headroomSlots:    slots,
	}
}

// syncGauges refreshes the instantaneous-state gauges after a lifecycle step.
func (d *Graph) syncGauges() {
	if d.m.epoch == nil {
		return
	}
	d.m.epoch.Set(d.epoch)
	d.m.vertices.Set(int64(d.n))
	d.m.liveEdges.Set(d.liveEdges)
	d.m.edgeImb.Set(d.EdgeImbalance())
	d.m.vertImb.Set(d.VertexImbalance())
	d.m.effThresh.Set(d.effEdgeThreshold())
	d.m.pendingOps.Set(d.PendingOps())
	slotted := d.segCap != nil && d.ordPlace == d.placeEpoch
	for q, g := range d.m.headroomSlots {
		var free int64
		if slotted {
			free = d.segCap[q] - d.partVerts[q]
		}
		g.Set(free)
	}
}

// AddsDels expands the net delta into explicit insertion and deletion lists
// (multiplicities unrolled).
func (vd ViewDelta) AddsDels() (adds, dels []graph.Edge) {
	for e, c := range vd.Net {
		for ; c > 0; c-- {
			adds = append(adds, e)
		}
		for ; c < 0; c++ {
			dels = append(dels, e)
		}
	}
	return adds, dels
}
