// Package dynamic keeps a graph and its VEBO ordering live under a stream of
// edge insertions and deletions, so that engines never pay a full
// O(n log P) reorder plus O(m) CSR/CSC rebuild per update batch.
//
// The design has three parts:
//
//   - Delta-log storage. The last compacted graph.Graph is kept immutable;
//     inserted edges accumulate in an append-only log and deletions in a
//     cancellation multiset keyed by (src,dst). Snapshot materializes the
//     surviving edge set into a fresh CSR/CSC graph on demand (cached per
//     mutation epoch) and Compact promotes that snapshot to the new base.
//
//   - Incremental balance accounting. Per-partition in-edge counts (the
//     paper's w[p]) and vertex counts (u[p]) are updated in O(1) per edge
//     update, so the tracked edge imbalance Δ(n) and vertex imbalance δ(n)
//     are always available without touching the graph.
//
//   - Incremental ordering maintenance. Each update dirties its destination
//     vertex — the vertex whose in-degree class changed. When Δ(n) exceeds
//     the configured threshold, the paper's Algorithm 2 greedy placement is
//     re-run over the dirty vertices only: they are pulled out of their
//     partitions and re-placed in decreasing-degree order onto the
//     least-loaded partition (least-edge for non-zero degrees, least-vertex
//     for zero degrees), exactly as phases 1 and 2 do for the full vertex
//     set. Vertices whose degree class did not change keep their placement,
//     so the repair costs O(k log k + kP) for k dirty vertices instead of
//     O(n log P). If the repair cannot pull Δ(n) back under the threshold
//     (for example after deleting a hub whose partition cannot be refilled
//     from dirty vertices alone) the subsystem falls back to a full
//     core.ReorderDegrees rebuild.
//
// See DESIGN.md §5 for how this subsystem fits the rest of the system.
package dynamic

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Config tunes a dynamic graph. The zero value selects the defaults below.
type Config struct {
	// Partitions is the VEBO partition count P (default 64).
	Partitions int
	// RebuildThreshold is the Δ(n) value above which maintenance runs: first
	// the dirty-vertex incremental repair, then — if Δ(n) is still above the
	// threshold — a full reorder. Default 2, the paper's power-law bound
	// (Theorem 1 gives Δ ≤ 1; one in-flight batch may add one more).
	RebuildThreshold int64
	// CompactEvery bounds the delta log: once the number of pending
	// insertions plus pending deletions reaches it, ApplyBatch compacts the
	// log into a fresh base graph. 0 selects an adaptive bound,
	// max(8192, liveEdges/8): compaction costs O(m), so a fixed small bound
	// would pay it every few batches on large graphs.
	CompactEvery int
}

// DefaultPartitions is the default VEBO partition count for dynamic graphs,
// deliberately smaller than GraphGrind's 384: a live system repartitions
// continuously, and the repair cost scales with P.
const DefaultPartitions = 64

func (c Config) withDefaults() Config {
	if c.Partitions == 0 {
		c.Partitions = DefaultPartitions
	}
	if c.RebuildThreshold == 0 {
		c.RebuildThreshold = 2
	}
	return c
}

// compactBound is the current delta-log size triggering compaction.
func (d *Graph) compactBound() int64 {
	if d.cfg.CompactEvery > 0 {
		return int64(d.cfg.CompactEvery)
	}
	b := d.liveEdges / 8
	if b < 8192 {
		b = 8192
	}
	return b
}

// Stats counts the work the subsystem has done, in units comparable with a
// full reorder (one placement = one arg-min probe + assignment, the unit
// Algorithm 2 performs n of).
type Stats struct {
	// Updates is the number of edge updates applied (inserts + deletes).
	Updates int64
	// Inserts and Deletes split Updates.
	Inserts, Deletes int64
	// Placements is the total number of greedy vertex placements performed,
	// including the initial full ordering and any full rebuilds.
	Placements int64
	// Repairs is the number of incremental dirty-vertex repairs.
	Repairs int64
	// RepairedVertices is the number of placements done by repairs alone.
	RepairedVertices int64
	// FullRebuilds is the number of full Algorithm 2 re-runs (not counting
	// the initial ordering).
	FullRebuilds int64
	// Compactions is the number of delta-log compactions.
	Compactions int64
}

// BatchResult reports what one ApplyBatch call did.
type BatchResult struct {
	Applied         int
	Repaired        bool
	Rebuilt         bool
	Compacted       bool
	EdgeImbalance   int64
	VertexImbalance int64
}

type edgeKey uint64

func keyOf(s, d graph.VertexID) edgeKey { return edgeKey(s)<<32 | edgeKey(d) }

// Graph is a mutable graph with an incrementally maintained VEBO ordering.
// It is not safe for concurrent use; callers serialize ApplyBatch against
// reads, or read from an immutable Snapshot.
type Graph struct {
	cfg      Config
	n        int
	weighted bool

	// base is the last compacted immutable graph; pendingAdd and the del/add
	// cancellation counts are the delta log on top of it.
	base       *graph.Graph
	pendingAdd []graph.Edge
	addCount   map[edgeKey]int64 // multiplicity of (s,d) within pendingAdd
	delCount   map[edgeKey]int64 // pending deletions of (s,d), cancelling
	// occurrences in base-then-pendingAdd order
	pendingDels int64
	liveEdges   int64

	// Live per-vertex in-degrees and the current placement.
	degIn  []int64
	assign []uint32
	// partEdges[p] and partVerts[p] are the paper's w[p] and u[p],
	// maintained incrementally.
	partEdges []int64
	partVerts []int64
	// dirty holds the vertices whose in-degree class changed since they were
	// last placed.
	dirty map[graph.VertexID]struct{}

	stats Stats

	// epoch increments on every mutation; snapCache is valid for snapEpoch.
	epoch     int64
	snapCache *graph.Graph
	snapEpoch int64

	ordCache *core.Result
	ordEpoch int64
}

// New wraps g in a dynamic graph, computing the initial VEBO ordering.
func New(g *graph.Graph, cfg Config) (*Graph, error) {
	cfg = cfg.withDefaults()
	r, err := core.Reorder(g, cfg.Partitions, core.Options{})
	if err != nil {
		return nil, err
	}
	d := &Graph{
		cfg:       cfg,
		n:         g.NumVertices(),
		weighted:  g.Weighted(),
		base:      g,
		addCount:  make(map[edgeKey]int64),
		delCount:  make(map[edgeKey]int64),
		liveEdges: g.NumEdges(),
		degIn:     g.InDegrees(),
		assign:    make([]uint32, g.NumVertices()),
		partEdges: append([]int64(nil), r.EdgeCounts...),
		partVerts: append([]int64(nil), r.VertexCounts...),
		dirty:     make(map[graph.VertexID]struct{}),
	}
	copy(d.assign, r.PartitionOf)
	d.stats.Placements = int64(d.n)
	d.snapCache, d.snapEpoch = g, 0
	return d, nil
}

// NumVertices reports the (fixed) vertex count.
func (d *Graph) NumVertices() int { return d.n }

// NumEdges reports the number of live edges (base − pending deletions +
// pending insertions).
func (d *Graph) NumEdges() int64 { return d.liveEdges }

// Partitions reports the partition count P.
func (d *Graph) Partitions() int { return d.cfg.Partitions }

// EdgeImbalance returns the tracked Δ(n) = max_p w[p] − min_p w[p].
func (d *Graph) EdgeImbalance() int64 { return core.Spread(d.partEdges) }

// VertexImbalance returns the tracked δ(n) = max_p u[p] − min_p u[p].
func (d *Graph) VertexImbalance() int64 { return core.Spread(d.partVerts) }

// EdgeCounts returns a copy of the per-partition in-edge counts w[p].
func (d *Graph) EdgeCounts() []int64 { return append([]int64(nil), d.partEdges...) }

// VertexCounts returns a copy of the per-partition vertex counts u[p].
func (d *Graph) VertexCounts() []int64 { return append([]int64(nil), d.partVerts...) }

// PartitionOf returns the current partition of v.
func (d *Graph) PartitionOf(v graph.VertexID) uint32 { return d.assign[v] }

// InDegree returns the live in-degree of v.
func (d *Graph) InDegree(v graph.VertexID) int64 { return d.degIn[v] }

// Stats returns the accumulated work counters.
func (d *Graph) Stats() Stats { return d.stats }

// PendingOps reports the current delta-log size (pending insertions plus
// pending deletions against the base graph).
func (d *Graph) PendingOps() int64 { return int64(len(d.pendingAdd)) + d.pendingDels }

// baseMultiplicity counts edge (s,d) occurrences in the base graph via
// binary search over s's sorted out-neighbour list.
func (d *Graph) baseMultiplicity(s, dst graph.VertexID) int64 {
	nbrs := d.base.OutNeighbors(s)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= dst })
	var c int64
	for ; i < len(nbrs) && nbrs[i] == dst; i++ {
		c++
	}
	return c
}

// liveMultiplicity counts the surviving occurrences of edge (s,d).
func (d *Graph) liveMultiplicity(s, dst graph.VertexID) int64 {
	k := keyOf(s, dst)
	return d.baseMultiplicity(s, dst) + d.addCount[k] - d.delCount[k]
}

// HasEdge reports whether at least one live (s,d) edge exists.
func (d *Graph) HasEdge(s, dst graph.VertexID) bool {
	return d.liveMultiplicity(s, dst) > 0
}

// ApplyBatch applies the updates in order, maintains the per-partition
// counters, and runs the threshold-gated ordering maintenance once at the
// end of the batch. An invalid update (vertex out of range, deletion of a
// non-existent edge) stops processing and returns an error; updates before
// it remain applied.
func (d *Graph) ApplyBatch(updates []graph.EdgeUpdate) (BatchResult, error) {
	var res BatchResult
	for i, u := range updates {
		if int(u.Src) >= d.n || int(u.Dst) >= d.n {
			return d.finishBatch(res), fmt.Errorf("dynamic: update %d: edge (%d,%d) out of range n=%d", i, u.Src, u.Dst, d.n)
		}
		if u.Del {
			if err := d.deleteEdge(u.Src, u.Dst); err != nil {
				return d.finishBatch(res), fmt.Errorf("dynamic: update %d: %w", i, err)
			}
		} else {
			d.insertEdge(u.Src, u.Dst, u.Weight)
		}
		res.Applied++
	}
	return d.finishBatch(res), nil
}

// finishBatch runs the end-of-batch maintenance and fills the result.
func (d *Graph) finishBatch(res BatchResult) BatchResult {
	if d.EdgeImbalance() > d.cfg.RebuildThreshold {
		d.repair()
		res.Repaired = true
		if d.EdgeImbalance() > d.cfg.RebuildThreshold {
			d.rebuild()
			res.Rebuilt = true
		}
	}
	if d.PendingOps() >= d.compactBound() {
		d.Compact()
		res.Compacted = true
	}
	res.EdgeImbalance = d.EdgeImbalance()
	res.VertexImbalance = d.VertexImbalance()
	return res
}

func (d *Graph) insertEdge(s, dst graph.VertexID, w int32) {
	if !d.weighted || w == 0 {
		w = 1
	}
	k := keyOf(s, dst)
	d.pendingAdd = append(d.pendingAdd, graph.Edge{Src: s, Dst: dst, Weight: w})
	d.addCount[k]++
	d.liveEdges++
	d.degIn[dst]++
	d.partEdges[d.assign[dst]]++
	d.dirty[dst] = struct{}{}
	d.touch()
	d.stats.Updates++
	d.stats.Inserts++
}

func (d *Graph) deleteEdge(s, dst graph.VertexID) error {
	k := keyOf(s, dst)
	if d.liveMultiplicity(s, dst) <= 0 {
		return fmt.Errorf("delete of non-existent edge (%d,%d)", s, dst)
	}
	// Cancel a pending log insertion of the same pair first (the most
	// recently inserted surviving occurrence); otherwise record a deletion
	// against the base graph, which cancels base occurrences earliest-in-
	// CSR-order first at snapshot time. Either way, which physical
	// occurrence dies is deterministic. On unweighted graphs all
	// occurrences of a pair are identical; on weighted graphs the rule is
	// arbitrary but stable (see ROADMAP: weight-aware deletion).
	if d.addCount[k] > 0 {
		d.addCount[k]--
		if d.addCount[k] == 0 {
			delete(d.addCount, k)
		}
		// The log entry itself is dropped lazily at snapshot/compaction.
	} else {
		d.delCount[k]++
		d.pendingDels++
	}
	d.liveEdges--
	d.degIn[dst]--
	d.partEdges[d.assign[dst]]--
	d.dirty[dst] = struct{}{}
	d.touch()
	d.stats.Updates++
	d.stats.Deletes++
	return nil
}

func (d *Graph) touch() {
	d.epoch++
}

// repair re-runs Algorithm 2's greedy placement over the dirty vertices
// only: each is removed from its partition and re-placed in decreasing live
// degree order onto the currently least-loaded partition — least edges for
// non-zero-degree vertices (phase 1), least vertices for zero-degree
// vertices (phase 2).
func (d *Graph) repair() {
	if len(d.dirty) == 0 {
		return
	}
	verts := make([]graph.VertexID, 0, len(d.dirty))
	for v := range d.dirty {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool {
		if d.degIn[verts[i]] != d.degIn[verts[j]] {
			return d.degIn[verts[i]] > d.degIn[verts[j]]
		}
		return verts[i] < verts[j]
	})
	for _, v := range verts {
		p := d.assign[v]
		d.partEdges[p] -= d.degIn[v]
		d.partVerts[p]--
	}
	for _, v := range verts {
		var q int
		if d.degIn[v] > 0 {
			q = argMin(d.partEdges)
		} else {
			q = argMin(d.partVerts)
		}
		d.assign[v] = uint32(q)
		d.partEdges[q] += d.degIn[v]
		d.partVerts[q]++
	}
	d.stats.Repairs++
	d.stats.RepairedVertices += int64(len(verts))
	d.stats.Placements += int64(len(verts))
	d.dirty = make(map[graph.VertexID]struct{})
	d.ordCache = nil
}

// rebuild runs the full Algorithm 2 over the live degree array.
func (d *Graph) rebuild() {
	r, err := core.ReorderDegrees(d.degIn, d.cfg.Partitions, core.Options{})
	if err != nil {
		// Unreachable: the config validated P at New time.
		panic(err)
	}
	copy(d.assign, r.PartitionOf)
	copy(d.partEdges, r.EdgeCounts)
	copy(d.partVerts, r.VertexCounts)
	d.dirty = make(map[graph.VertexID]struct{})
	d.stats.FullRebuilds++
	d.stats.Placements += int64(d.n)
	d.ordCache = nil
}

// Rebuild forces a full reorder regardless of the threshold.
func (d *Graph) Rebuild() { d.rebuild() }

func argMin(xs []int64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

// survivingEdges materializes the live edge multiset in deterministic order:
// base edges in CSR order with pending deletions cancelling their earliest
// occurrences, followed by surviving log insertions in arrival order.
func (d *Graph) survivingEdges() []graph.Edge {
	edges := make([]graph.Edge, 0, d.liveEdges)
	var dels map[edgeKey]int64
	if len(d.delCount) > 0 {
		dels = make(map[edgeKey]int64, len(d.delCount))
		for k, c := range d.delCount {
			dels[k] = c
		}
	}
	for _, e := range d.base.Edges() {
		k := keyOf(e.Src, e.Dst)
		if dels[k] > 0 {
			dels[k]--
			continue
		}
		edges = append(edges, e)
	}
	// Of each pair's log entries, the first addCount[k] survive: deletions
	// consumed the most recently inserted ones.
	if len(d.pendingAdd) > 0 {
		adds := make(map[edgeKey]int64, len(d.addCount))
		for _, e := range d.pendingAdd {
			k := keyOf(e.Src, e.Dst)
			if adds[k] >= d.addCount[k] {
				continue // cancelled by a later deletion
			}
			adds[k]++
			edges = append(edges, e)
		}
	}
	return edges
}

// Snapshot materializes the live graph as an immutable CSR+CSC graph.Graph
// the processing engines can traverse. The result is cached until the next
// mutation; callers must not retain it across ApplyBatch if they need the
// newest state, but may keep using an old snapshot safely (it is never
// mutated).
func (d *Graph) Snapshot() *graph.Graph {
	if d.snapCache != nil && d.snapEpoch == d.epoch {
		return d.snapCache
	}
	g, err := graph.FromEdges(d.n, d.survivingEdges(), d.weighted)
	if err != nil {
		// Unreachable: every applied update was range-checked.
		panic(err)
	}
	d.snapCache, d.snapEpoch = g, d.epoch
	return g
}

// Compact promotes the current snapshot to the new base graph and clears the
// delta log. Engines holding older snapshots are unaffected.
func (d *Graph) Compact() {
	d.base = d.Snapshot()
	d.pendingAdd = nil
	d.addCount = make(map[edgeKey]int64)
	d.delCount = make(map[edgeKey]int64)
	d.pendingDels = 0
	d.stats.Compactions++
}

// Ordering returns the current placement as a core.Result: the permutation
// renumbers vertices so each partition owns a contiguous new-ID range with
// vertices in decreasing live-degree order inside it, exactly as Algorithm
// 2's phase 3 does. The result is cached until the next placement change.
func (d *Graph) Ordering() *core.Result {
	if d.ordCache != nil && d.ordEpoch == d.epoch {
		return d.ordCache
	}
	p := d.cfg.Partitions
	r := &core.Result{
		P:            p,
		Perm:         make([]graph.VertexID, d.n),
		PartitionOf:  append([]uint32(nil), d.assign...),
		VertexCounts: d.VertexCounts(),
		EdgeCounts:   d.EdgeCounts(),
	}
	order := make([]int, d.n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if d.assign[a] != d.assign[b] {
			return d.assign[a] < d.assign[b]
		}
		if d.degIn[a] != d.degIn[b] {
			return d.degIn[a] > d.degIn[b]
		}
		return a < b
	})
	for newID, v := range order {
		r.Perm[v] = graph.VertexID(newID)
	}
	d.ordCache, d.ordEpoch = r, d.epoch
	return r
}
