package dynamic

import (
	"sync"

	"repro/internal/graph"
)

// Allocator maps sparse, application-chosen external vertex IDs onto the
// dense internal ID space the dynamic subsystem and the engines work in.
// Internal IDs are allocated in arrival order and never reused or reshuffled,
// so the internal space is append-only: a view pinned to an epoch with n
// vertices addresses exactly the first n allocations, and result arrays of
// later (larger) epochs extend earlier ones position-for-position.
//
// Intern is writer-side (the goroutine applying batches); Lookup, External
// and Externals may run concurrently from any number of reader goroutines.
type Allocator struct {
	mu sync.RWMutex
	//vebo:guardedby mu
	extToInt map[uint64]graph.VertexID
	//vebo:guardedby mu
	intToExt []uint64
}

// NewAllocator returns an empty allocator.
func NewAllocator() *Allocator {
	return &Allocator{extToInt: make(map[uint64]graph.VertexID)}
}

// SeedIdentity registers the externals 0..n-1 as their own internal IDs, the
// convention for graphs that were constructed with dense IDs before external
// ingest began. It is a no-op for already-registered externals.
func (a *Allocator) SeedIdentity(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.intToExt); i < n; i++ {
		a.extToInt[uint64(i)] = graph.VertexID(i)
		a.intToExt = append(a.intToExt, uint64(i))
	}
}

// Len reports the number of allocated internal IDs.
func (a *Allocator) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.intToExt)
}

// Intern returns the internal ID of ext, allocating the next dense ID when
// ext was never seen before; isNew reports an allocation.
func (a *Allocator) Intern(ext uint64) (id graph.VertexID, isNew bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id, ok := a.extToInt[ext]; ok {
		return id, false
	}
	id = graph.VertexID(len(a.intToExt))
	a.extToInt[ext] = id
	a.intToExt = append(a.intToExt, ext)
	return id, true
}

// Lookup resolves ext without allocating.
func (a *Allocator) Lookup(ext uint64) (graph.VertexID, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	id, ok := a.extToInt[ext]
	return id, ok
}

// External returns the external ID of internal v.
func (a *Allocator) External(v graph.VertexID) (uint64, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if int(v) >= len(a.intToExt) {
		return 0, false
	}
	return a.intToExt[v], true
}

// Externals returns the first n allocations as an immutable internal→external
// slice. The returned slice aliases the allocator's append-only storage (a
// later append may copy to a fresh array, never rewrite the prefix), so it is
// safe to retain and read concurrently with further Intern calls.
func (a *Allocator) Externals(n int) []uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if n > len(a.intToExt) {
		n = len(a.intToExt)
	}
	return a.intToExt[:n:n]
}
