package dynamic

import (
	"testing"

	"repro/internal/graph"
)

// FuzzAllocatorSequence fuzzes whole operation sequences — identity
// seeding, interleaved interns (with collisions forced by a narrow
// external-ID space), lookups and reverse mappings — against a flat model
// of the external↔internal correspondence. The single-ID round-trip fuzz
// (FuzzAllocatorRoundTrip) stays as the quick regression; this target
// covers ordering and append-only invariants across operations.
func FuzzAllocatorSequence(f *testing.F) {
	f.Add(uint8(0), []byte{1, 0, 1, 2, 0, 1, 3, 0, 2})
	f.Add(uint8(4), []byte{0, 0, 0, 0, 0, 1})
	f.Add(uint8(16), []byte{2, 0, 9, 1, 0, 9, 3, 0, 9, 0, 0, 9})
	f.Fuzz(func(t *testing.T, seed uint8, ops []byte) {
		a := NewAllocator()
		var model []uint64              // internal ID -> external ID
		index := make(map[uint64]int)   // external ID -> internal ID
		if n := int(seed % 32); n > 0 { // dense-prefix convention
			a.SeedIdentity(n)
			for i := 0; i < n; i++ {
				model = append(model, uint64(i))
				index[uint64(i)] = i
			}
		}
		for i := 0; i+2 < len(ops); i += 3 {
			op := ops[i] % 4
			// A narrow external space makes re-interns common.
			ext := uint64(ops[i+1])<<8 | uint64(ops[i+2])
			switch op {
			case 0: // Intern
				id, isNew := a.Intern(ext)
				if prev, ok := index[ext]; ok {
					if isNew || int(id) != prev {
						t.Fatalf("re-intern %d: got (%d,%v) want (%d,false)", ext, id, isNew, prev)
					}
				} else {
					if !isNew || int(id) != len(model) {
						t.Fatalf("fresh intern %d: got (%d,%v) want (%d,true)", ext, id, isNew, len(model))
					}
					index[ext] = len(model)
					model = append(model, ext)
				}
			case 1: // Lookup
				id, ok := a.Lookup(ext)
				want, wantOK := index[ext]
				if ok != wantOK || (ok && int(id) != want) {
					t.Fatalf("Lookup(%d)=(%d,%v) want (%d,%v)", ext, id, ok, want, wantOK)
				}
			case 2: // External (reverse map), probed by internal ID
				probe := graph.VertexID(0)
				if len(model) > 0 {
					probe = graph.VertexID(int(ext) % (len(model) + 1)) // may be one past the end
				}
				back, ok := a.External(probe)
				if int(probe) < len(model) {
					if !ok || back != model[probe] {
						t.Fatalf("External(%d)=(%d,%v) want (%d,true)", probe, back, ok, model[probe])
					}
				} else if ok {
					t.Fatalf("External(%d) resolved out-of-range to %d", probe, back)
				}
			case 3: // Externals prefix
				n := int(ext) % (len(model) + 1)
				exts := a.Externals(n)
				if len(exts) != n {
					t.Fatalf("Externals(%d) returned %d entries", n, len(exts))
				}
				for j, e := range exts {
					if e != model[j] {
						t.Fatalf("Externals(%d)[%d]=%d want %d", n, j, e, model[j])
					}
				}
			}
			if a.Len() != len(model) {
				t.Fatalf("Len()=%d want %d", a.Len(), len(model))
			}
		}
	})
}
