package dynamic

import (
	"sort"

	"repro/internal/graph"
)

// RefinePlan is the lineage delta of a view, reshaped for result refinement
// (View.Refine*, DESIGN.md §5d): explicit insertion/deletion lists with
// multiplicities unrolled, the net out-degree change per source (PageRank's
// contribution terms depend on source degrees), the repositioned vertices,
// and the admission count. Everything is in original-ID space — the space
// algorithm results live in — which is why a plan derived from a ViewDelta
// stays applicable even across full renumbering epochs: internal IDs are
// append-only, so a basis result array indexed by original ID is a valid
// seed no matter how the placement moved underneath.
type RefinePlan struct {
	// Adds and Dels are the net edge changes between the basis and the view,
	// multiplicities unrolled, original-ID endpoints, normalized weights.
	Adds, Dels []graph.Edge
	// OutDegDelta maps each source with any changed out-edge to its net
	// out-degree change (may be zero when insertions and deletions balance:
	// the degree is unchanged but the edge set is not).
	OutDegDelta map[graph.VertexID]int64
	// Moved holds the vertices repositioned by placement-preserving repairs,
	// sorted. Their results are untouched by the move (original-ID space),
	// but refinement seeds them into the repair frontier conservatively.
	Moved []graph.VertexID
	// GrownTotal counts the vertices admitted in the delta's window; they
	// occupy the tail of the view's original-ID space.
	GrownTotal int64
}

// Empty reports whether the plan carries no change at all, in which case the
// basis result is the view's result verbatim.
func (p RefinePlan) Empty() bool {
	return len(p.Adds) == 0 && len(p.Dels) == 0 && len(p.Moved) == 0 && p.GrownTotal == 0
}

// Touched returns the number of distinct endpoints the edge delta touches —
// the input to the scratch-fallback gate (a delta touching a large fraction
// of the graph refines slower than a cold start).
func (p RefinePlan) Touched() int {
	seen := make(map[graph.VertexID]struct{}, 2*(len(p.Adds)+len(p.Dels)))
	for _, e := range p.Adds {
		seen[e.Src] = struct{}{}
		seen[e.Dst] = struct{}{}
	}
	for _, e := range p.Dels {
		seen[e.Src] = struct{}{}
		seen[e.Dst] = struct{}{}
	}
	return len(seen)
}

// DeriveRefinePlan reshapes a view's lineage delta into a refinement plan.
// The delta's Net map is exact over the basis→view window (Subtract keeps
// the edge multiset exact through re-anchoring), so the plan is too.
func DeriveRefinePlan(vd ViewDelta) RefinePlan {
	p := RefinePlan{GrownTotal: vd.GrownTotal()}
	if len(vd.Net) > 0 {
		p.OutDegDelta = make(map[graph.VertexID]int64, len(vd.Net))
	}
	for e, c := range vd.Net {
		if c == 0 {
			continue
		}
		p.OutDegDelta[e.Src] += c
		for i := c; i > 0; i-- {
			p.Adds = append(p.Adds, e)
		}
		for i := c; i < 0; i++ {
			p.Dels = append(p.Dels, e)
		}
	}
	if len(vd.Moved) > 0 {
		p.Moved = make([]graph.VertexID, 0, len(vd.Moved))
		for w := range vd.Moved {
			p.Moved = append(p.Moved, w)
		}
		sort.Slice(p.Moved, func(i, j int) bool { return p.Moved[i] < p.Moved[j] })
	}
	return p
}
