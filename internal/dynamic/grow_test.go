package dynamic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestGrowAdmitsZeroDegreeLeastLoaded checks the admission rule: every
// admitted vertex is zero-degree, lands on a partition minimizing the vertex
// count, and the per-partition counters stay consistent.
func TestGrowAdmitsZeroDegreeLeastLoaded(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 1200, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	preVerts := d.VertexCounts()
	first := d.Grow(5)
	if first != 200 {
		t.Fatalf("first admitted ID %d, want 200", first)
	}
	if d.NumVertices() != 205 {
		t.Fatalf("n=%d, want 205", d.NumVertices())
	}
	var total int64
	for _, c := range d.VertexCounts() {
		total += c
	}
	if total != 205 {
		t.Fatalf("vertex counts sum %d, want 205", total)
	}
	// Least-loaded admission can raise δ(n) by at most one step (5 < P
	// partitions each gained at most one vertex).
	if before := core.Spread(preVerts); d.VertexImbalance() > before+1 {
		t.Fatalf("admission worsened δ(n): %d -> %d", before, d.VertexImbalance())
	}
	for v := graph.VertexID(200); v < 205; v++ {
		if d.InDegree(v) != 0 {
			t.Fatalf("admitted vertex %d has degree %d", v, d.InDegree(v))
		}
	}
	if st := d.Stats(); st.Admitted != 5 {
		t.Fatalf("Admitted=%d, want 5", st.Admitted)
	}
}

// TestGrowOrderingSegmentTails checks the segment-growth policy: after
// admissions the cached ordering is still a valid segment-contiguous
// injection into the slot space, every partition's IDs stay inside its
// capacity range, and pinned (pre-growth) orderings are untouched.
func TestGrowOrderingSegmentTails(t *testing.T) {
	g, err := gen.ErdosRenyi(300, 2500, 11)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Ordering()
	beforePerm := append([]graph.VertexID(nil), before.Perm...)
	d.Grow(9)
	after := d.Ordering()
	if len(after.Perm) != 309 {
		t.Fatalf("ordering length %d, want 309", len(after.Perm))
	}
	// Valid injection into the slot space, segment-contiguous by partition.
	if after.Slots() < 309 {
		t.Fatalf("slot space %d smaller than vertex count 309", after.Slots())
	}
	seen := make([]bool, after.Slots())
	bounds := after.Boundaries()
	for v, nw := range after.Perm {
		if seen[nw] {
			t.Fatalf("duplicate new ID %d", nw)
		}
		seen[nw] = true
		p := after.PartitionOf[v]
		if int64(nw) < bounds[p] || int64(nw) >= bounds[p+1] {
			t.Fatalf("vertex %d new ID %d outside partition %d segment [%d,%d)", v, nw, p, bounds[p], bounds[p+1])
		}
	}
	// The pinned pre-growth ordering must not have been mutated.
	for v, nw := range beforePerm {
		if before.Perm[v] != nw {
			t.Fatalf("pre-growth ordering mutated at %d", v)
		}
	}
	// The old→new position map must be the per-partition shift: positions
	// within one partition keep their relative order.
	for v := 0; v < 300; v++ {
		for u := v + 1; u < 300; u++ {
			if before.PartitionOf[v] == before.PartitionOf[u] &&
				after.PartitionOf[v] == after.PartitionOf[u] &&
				(beforePerm[v] < beforePerm[u]) != (after.Perm[v] < after.Perm[u]) {
				t.Fatalf("growth reordered %d and %d within their segment", v, u)
			}
		}
	}
}

// TestAutoGrowApplyBatch checks the dense-ID auto-admission path: inserts
// mentioning out-of-range endpoints grow the graph, deletions never do, and
// the snapshot matches a scratch rebuild over the grown space.
func TestAutoGrowApplyBatch(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 8, AutoGrow: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.ApplyBatch([]graph.EdgeUpdate{
		{Src: 100, Dst: 3},   // one new vertex as source
		{Src: 4, Dst: 103},   // three more, 101..103
		{Src: 103, Dst: 100}, // edge between admitted vertices
		{Src: 100, Dst: 3, Del: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 4 || d.NumVertices() != 104 {
		t.Fatalf("admitted %d (n=%d), want 4 (104)", res.Admitted, d.NumVertices())
	}
	want, err := graph.FromEdges(104, append(g.Edges(),
		graph.Edge{Src: 4, Dst: 103, Weight: 1},
		graph.Edge{Src: 103, Dst: 100, Weight: 1}), false)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(d.Snapshot(), want) {
		t.Fatal("snapshot after auto-growth differs from scratch rebuild")
	}
	// Deleting through an out-of-range endpoint must not grow.
	if _, err := d.ApplyBatch([]graph.EdgeUpdate{{Src: 500, Dst: 0, Del: true}}); err == nil {
		t.Fatal("expected error for out-of-range deletion")
	}
	if d.NumVertices() != 104 {
		t.Fatalf("deletion grew the graph to %d", d.NumVertices())
	}
	// Without AutoGrow, out-of-range inserts still fail.
	d2, err := New(g, Config{Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.ApplyBatch([]graph.EdgeUpdate{{Src: 100, Dst: 0}}); err == nil {
		t.Fatal("expected error without AutoGrow")
	}
}

// TestGrowStreamSnapshotMatchesReference replays a growth stream (vertex
// arrivals interleaved with churn, including deletes of post-growth edges
// after compaction) and checks the final snapshot, live-edge count and
// balance counters against a scratch reference.
func TestGrowStreamSnapshotMatchesReference(t *testing.T) {
	g, err := gen.ErdosRenyi(250, 1500, 9)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := gen.EdgeStream(g, gen.StreamConfig{
		Ops: 4000, DeleteFrac: 0.35, PreferentialFrac: 0.5, GrowFrac: 0.05, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 16, AutoGrow: true, CompactEvery: 700})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, 128)
	if d.Stats().Admitted == 0 {
		t.Fatal("stream admitted no vertices; growth not exercised")
	}
	want, err := graph.FromEdges(d.NumVertices(), referenceSurvivors(g, updates), false)
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if !graph.Equal(snap, want) {
		t.Fatal("snapshot after growth stream differs from reference")
	}
	if d.NumEdges() != want.NumEdges() {
		t.Fatalf("live edges %d, want %d", d.NumEdges(), want.NumEdges())
	}
	// Tracked counters must match a recount over the final placement.
	edges := make([]int64, d.Partitions())
	verts := make([]int64, d.Partitions())
	for v := 0; v < d.NumVertices(); v++ {
		p := d.PartitionOf(graph.VertexID(v))
		verts[p]++
		edges[p] += snap.InDegree(graph.VertexID(v))
	}
	for p, c := range d.EdgeCounts() {
		if c != edges[p] {
			t.Fatalf("partition %d tracked %d edges, recount %d", p, c, edges[p])
		}
	}
	for p, c := range d.VertexCounts() {
		if c != verts[p] {
			t.Fatalf("partition %d tracked %d vertices, recount %d", p, c, verts[p])
		}
	}
}

// TestGrowViewDeltaVector checks the drained growth vector: per-partition
// counts sum to the admissions of the window and Merge/Subtract compose it.
func TestGrowViewDeltaVector(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 700, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 4, AutoGrow: true})
	if err != nil {
		t.Fatal(err)
	}
	d.DrainViewDelta() // clear the initial window
	d.Grow(3)
	first := d.DrainViewDelta()
	if first.GrownTotal() != 3 {
		t.Fatalf("GrownTotal=%d, want 3", first.GrownTotal())
	}
	d.Grow(2)
	second := d.DrainViewDelta()
	if second.GrownTotal() != 2 {
		t.Fatalf("GrownTotal=%d, want 2", second.GrownTotal())
	}
	merged := first.Merge(second)
	if merged.GrownTotal() != 5 {
		t.Fatalf("merged GrownTotal=%d, want 5", merged.GrownTotal())
	}
	back := merged.Subtract(first)
	if back.GrownTotal() != 2 {
		t.Fatalf("subtracted GrownTotal=%d, want 2", back.GrownTotal())
	}
	for p, c := range back.Grown {
		if c != second.Grown[p] {
			t.Fatalf("partition %d: subtracted growth %d, want %d", p, c, second.Grown[p])
		}
	}
	if d.DrainViewDelta().Grown != nil {
		t.Fatal("drain did not reset the growth vector")
	}
}

// hostileDegreeGraph builds the degree distribution on which the greedy
// donor/receiver pair search provably stalls: with P=3, in-degrees come in
// one coarse class D (eight vertices — Algorithm 2 balances them 3/3/2) and
// one mid class D/2 (two vertices, both placed on the 2-count partition,
// equalizing every load at exactly 3D), plus zero-degree sources. After a
// batch raises one partition's load by exactly D, every direct max→min
// transfer is deg(a)−deg(u) ∈ {0, D, 2D} — never strictly inside (0, gap=D)
// — while the isolated D/2 class on the third partition admits a
// D → D/2 → 0 rotation with strictly positive gain.
func hostileDegreeGraph(t *testing.T) *graph.Graph {
	t.Helper()
	const D = 10
	var edges []graph.Edge
	rng := rand.New(rand.NewSource(31))
	addIn := func(dst graph.VertexID, k int) {
		for i := 0; i < k; i++ {
			edges = append(edges, graph.Edge{Src: 10 + graph.VertexID(rng.Intn(30)), Dst: dst, Weight: 1})
		}
	}
	for v := graph.VertexID(0); v < 8; v++ {
		addIn(v, D)
	}
	addIn(8, D/2)
	addIn(9, D/2)
	g, err := graph.FromEdges(40, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSwapRepairRotationFallback pins the hostile-degree regression: when no
// donor/receiver pair offers a transfer inside (0, gap), the repair must fix
// the imbalance with a three-way rotation instead of falling back to a full
// rebuild.
func TestSwapRepairRotationFallback(t *testing.T) {
	const D = 10
	g := hostileDegreeGraph(t)
	d, err := New(g, Config{
		Partitions:               3,
		RebuildThreshold:         D/2 + 1,
		VertexRebuildThreshold:   1 << 40,
		DisableAdaptiveThreshold: true,
		DisableSegmentResort:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.EdgeImbalance() != 0 {
		t.Fatalf("construction assumes equal initial loads, got Δ(n)=%d", d.EdgeImbalance())
	}
	// The D/2 class lives together on one partition (qmid). Overload a
	// different partition X by exactly D (one vertex D→2D), and nudge qmid
	// by one edge so the remaining partition is the unambiguous arg-min —
	// the pair search then faces only {2D, D, 0} vs {D, 0} movers.
	qmid := int(d.PartitionOf(8))
	if int(d.PartitionOf(9)) != qmid {
		t.Fatalf("mid-degree class split across partitions %d and %d", qmid, d.PartitionOf(9))
	}
	X := -1
	var target, qv graph.VertexID
	for v := graph.VertexID(0); v < 8; v++ {
		switch int(d.PartitionOf(v)) {
		case qmid:
			qv = v
		default:
			if X < 0 {
				X = int(d.PartitionOf(v))
			}
			if int(d.PartitionOf(v)) == X {
				target = v
			}
		}
	}
	var batch []graph.EdgeUpdate
	for i := 0; i < D; i++ {
		batch = append(batch, graph.EdgeUpdate{Src: graph.VertexID(10 + i), Dst: target})
	}
	batch = append(batch, graph.EdgeUpdate{Src: 20, Dst: qv})
	res, err := d.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if !res.Repaired {
		t.Fatalf("repair did not run: %+v", res)
	}
	if st.FullRebuilds != 0 {
		t.Fatalf("fell back to a full rebuild (rotations=%d swaps=%d)", st.Rotations, st.Swaps)
	}
	if st.Rotations == 0 {
		t.Fatalf("pair search should have failed and rotated: %+v", st)
	}
	if d.EdgeImbalance() > d.EffectiveRebuildThreshold() {
		t.Fatalf("rotation left Δ(n)=%d above threshold %d", d.EdgeImbalance(), d.EffectiveRebuildThreshold())
	}
}

// TestSegmentResortRestoresDegreeOrder checks the background re-sort: after
// churn and swap repairs decay the intra-segment degree order, repeated
// batches re-establish degree-descending layout segment by segment, via
// segment-local permutations only (no renumbering epoch change).
func TestSegmentResortRestoresDegreeOrder(t *testing.T) {
	g, err := gen.ErdosRenyi(400, 4000, 17)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := gen.EdgeStream(g, gen.StreamConfig{
		Ops: 6000, DeleteFrac: 0.3, PreferentialFrac: 0.6, Seed: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, 64)
	st := d.Stats()
	if st.Resorts == 0 {
		t.Skipf("no re-sorts fired (swaps=%d); stream too calm for the property", st.Swaps)
	}
	if d.RenumEpoch() != 0 {
		t.Fatalf("re-sorts must preserve the numbering lineage, RenumEpoch=%d", d.RenumEpoch())
	}
	// Quiesce: with no further churn, P consecutive disturbance-free batches
	// leave nothing to re-sort, so force one pass over every segment.
	for p := 0; p < d.Partitions(); p++ {
		d.resortSegment()
	}
	ord := d.Ordering()
	pos := make([]graph.VertexID, d.NumVertices()) // new ID -> vertex
	for v, nw := range ord.Perm {
		pos[nw] = graph.VertexID(v)
	}
	bounds := ord.Boundaries()
	for p := 0; p < d.Partitions(); p++ {
		for i := bounds[p] + 1; i < bounds[p+1]; i++ {
			prev, cur := pos[i-1], pos[i]
			if d.InDegree(prev) < d.InDegree(cur) {
				t.Fatalf("partition %d: degree order broken at new IDs %d,%d (%d < %d)",
					p, i-1, i, d.InDegree(prev), d.InDegree(cur))
			}
		}
	}
}

// TestDisableSegmentResort pins the ablation switch.
func TestDisableSegmentResort(t *testing.T) {
	g, err := gen.ErdosRenyi(400, 4000, 17)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := gen.EdgeStream(g, gen.StreamConfig{
		Ops: 6000, DeleteFrac: 0.3, PreferentialFrac: 0.6, Seed: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(g, Config{Partitions: 8, DisableSegmentResort: true})
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, d, updates, 64)
	if st := d.Stats(); st.Resorts != 0 {
		t.Fatalf("re-sorts fired despite DisableSegmentResort: %d", st.Resorts)
	}
}
