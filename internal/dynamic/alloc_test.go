package dynamic

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestAllocatorRoundTrip drives random intern/lookup traffic and checks the
// external↔internal mapping is a bijection over everything seen: internal
// IDs are dense and allocated in first-arrival order, and both directions
// agree at every step.
func TestAllocatorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := NewAllocator()
	ref := make(map[uint64]graph.VertexID)
	var order []uint64
	for step := 0; step < 20000; step++ {
		var ext uint64
		if len(order) > 0 && rng.Intn(2) == 0 {
			ext = order[rng.Intn(len(order))] // revisit a known external
		} else {
			ext = rng.Uint64() >> uint(rng.Intn(40)) // mix dense and sparse
		}
		id, isNew := a.Intern(ext)
		want, seen := ref[ext]
		if seen != !isNew {
			t.Fatalf("step %d: ext %d isNew=%v but seen=%v", step, ext, isNew, seen)
		}
		if seen && id != want {
			t.Fatalf("step %d: ext %d interned to %d, previously %d", step, ext, id, want)
		}
		if !seen {
			if int(id) != len(order) {
				t.Fatalf("step %d: new ext %d got id %d, want dense %d", step, ext, id, len(order))
			}
			ref[ext] = id
			order = append(order, ext)
		}
		if got, ok := a.Lookup(ext); !ok || got != ref[ext] {
			t.Fatalf("step %d: Lookup(%d)=%d,%v want %d", step, ext, got, ok, ref[ext])
		}
		if back, ok := a.External(ref[ext]); !ok || back != ext {
			t.Fatalf("step %d: External(%d)=%d,%v want %d", step, ref[ext], back, ok, ext)
		}
	}
	if a.Len() != len(order) {
		t.Fatalf("Len=%d, want %d", a.Len(), len(order))
	}
	exts := a.Externals(a.Len())
	for i, ext := range exts {
		if order[i] != ext {
			t.Fatalf("Externals[%d]=%d, want arrival-order %d", i, ext, order[i])
		}
	}
	// A snapshot taken now must be unaffected by later interning.
	prefix := a.Externals(10)
	a.Intern(rng.Uint64() | 1<<63)
	for i, ext := range prefix {
		if ext != order[i] {
			t.Fatalf("prefix snapshot mutated at %d", i)
		}
	}
}

// FuzzAllocatorRoundTrip fuzzes single external IDs through the
// intern→lookup→external cycle.
func FuzzAllocatorRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1) << 63)
	f.Add(uint64(42))
	a := NewAllocator()
	f.Fuzz(func(t *testing.T, ext uint64) {
		id, _ := a.Intern(ext)
		id2, isNew := a.Intern(ext)
		if isNew || id2 != id {
			t.Fatalf("re-intern of %d not idempotent: %d vs %d", ext, id, id2)
		}
		got, ok := a.Lookup(ext)
		if !ok || got != id {
			t.Fatalf("Lookup(%d)=%d,%v want %d", ext, got, ok, id)
		}
		back, ok := a.External(id)
		if !ok || back != ext {
			t.Fatalf("External(%d)=%d,%v want %d", id, back, ok, ext)
		}
	})
}

// TestAllocatorSeedIdentity checks the dense-prefix convention used when a
// graph predates external ingest.
func TestAllocatorSeedIdentity(t *testing.T) {
	a := NewAllocator()
	a.SeedIdentity(4)
	for i := uint64(0); i < 4; i++ {
		if id, ok := a.Lookup(i); !ok || uint64(id) != i {
			t.Fatalf("Lookup(%d)=%d,%v want identity", i, id, ok)
		}
	}
	if id, _ := a.Intern(100); id != 4 {
		t.Fatalf("post-seed intern got %d, want 4", id)
	}
	a.SeedIdentity(3) // no-op: already longer
	if a.Len() != 5 {
		t.Fatalf("Len=%d, want 5", a.Len())
	}
}

// TestAllocatorConcurrentReaders exercises Lookup/External/Externals racing
// with writer-side interning (run with -race).
func TestAllocatorConcurrentReaders(t *testing.T) {
	a := NewAllocator()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if id, ok := a.Lookup(i % 1000); ok {
					if ext, ok2 := a.External(id); !ok2 || ext != i%1000 {
						t.Errorf("reader %d: round trip broke for %d", r, i%1000)
						return
					}
				}
				_ = a.Externals(a.Len())
			}
		}(r)
	}
	for i := uint64(0); i < 1000; i++ {
		a.Intern(i)
	}
	close(done)
	wg.Wait()
}
