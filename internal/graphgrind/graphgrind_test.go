package graphgrind

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/numa"
)

var top = numa.Topology{Sockets: 2, ThreadsPerSocket: 2}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 2000, S: 1.0, MaxDegree: 100, ZeroInFrac: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newEngine(t *testing.T, g *graph.Graph, parts int, o layout.Order, bounds []int64) *GraphGrind {
	t.Helper()
	gg, err := New(g, Config{
		Engine:     engine.Config{Topology: top},
		Partitions: parts,
		Order:      o,
		Bounds:     bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gg
}

func TestNewDefaults(t *testing.T) {
	g := testGraph(t)
	gg, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gg.Partitions()) != DefaultPartitions {
		t.Fatalf("partitions = %d, want %d", len(gg.Partitions()), DefaultPartitions)
	}
	if gg.Name() != "graphgrind" {
		t.Fatal("wrong name")
	}
	if gg.EdgeOrder() != layout.CSROrder {
		t.Fatalf("default order = %v", gg.EdgeOrder())
	}
}

func TestBoundsValidation(t *testing.T) {
	g := testGraph(t)
	_, err := New(g, Config{Partitions: 4, Bounds: []int64{0, 10}})
	if err == nil {
		t.Fatal("expected bounds length error")
	}
}

func TestDenseEdgeMapRecordsPartitionCosts(t *testing.T) {
	g := testGraph(t)
	gg := newEngine(t, g, 16, layout.CSROrder, nil)
	k := engine.EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { return true },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { return true },
	}
	gg.EdgeMap(frontier.All(g), k)
	step := gg.Metrics().LastStep()
	if step.Kind != engine.StepEdgeMapDense {
		t.Fatalf("step kind = %v", step.Kind)
	}
	if len(step.PartitionCosts) != 16 {
		t.Fatalf("partition costs = %d entries", len(step.PartitionCosts))
	}
	if step.Makespan <= 0 || step.TotalCost <= 0 {
		t.Fatalf("bad accounting: %+v", step)
	}
}

func TestSparseEdgeMapUsed(t *testing.T) {
	g := testGraph(t)
	gg := newEngine(t, g, 16, layout.CSROrder, nil)
	k := engine.EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { return false },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { return false },
	}
	gg.EdgeMap(frontier.FromVertex(g, 5), k)
	if got := gg.Metrics().LastStep().Kind; got != engine.StepEdgeMapSparse {
		t.Fatalf("tiny frontier used %v", got)
	}
}

// VEBO bounds must produce near-equal per-partition dense costs, unlike
// Algorithm 1 on the original order.
func TestVEBOBalancesPartitionCosts(t *testing.T) {
	g := testGraph(t)
	const P = 16
	r, err := core.Reorder(g, P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		t.Fatal(err)
	}
	k := engine.EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { return true },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { return true },
	}

	spread := func(gg *GraphGrind, g *graph.Graph) float64 {
		gg.EdgeMap(frontier.All(g), k)
		costs := gg.Metrics().LastStep().PartitionCosts
		lo, hi := costs[0], costs[0]
		for _, c := range costs {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if lo == 0 {
			lo = 1
		}
		return float64(hi) / float64(lo)
	}

	orig := spread(newEngine(t, g, P, layout.CSROrder, nil), g)
	vebo := spread(newEngine(t, rg, P, layout.CSROrder, r.Boundaries()), rg)
	if vebo >= orig {
		t.Errorf("VEBO cost spread %.2f not better than original %.2f", vebo, orig)
	}
	if vebo > 1.2 {
		t.Errorf("VEBO cost spread %.2f, want near 1", vebo)
	}
}

func TestHilbertAndCSRProduceSameResults(t *testing.T) {
	g := testGraph(t)
	counts := func(o layout.Order) []int64 {
		c := make([]int64, g.NumVertices())
		k := engine.EdgeKernel{
			Update: func(s, d graph.VertexID, _ int32) bool { c[d]++; return false },
		}
		k.UpdateAtomic = k.Update
		gg := newEngine(t, g, 8, o, nil)
		gg.EdgeMap(frontier.All(g), k)
		return c
	}
	a := counts(layout.CSROrder)
	b := counts(layout.HilbertOrder)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("order-dependent result at %d: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestVertexMapStaticMakespan(t *testing.T) {
	g := testGraph(t)
	gg := newEngine(t, g, 8, layout.CSROrder, nil)
	out := gg.VertexMap(frontier.All(g), func(v graph.VertexID) bool { return v%2 == 0 })
	if out.Count() != int64((g.NumVertices()+1)/2) {
		t.Fatalf("vertexmap kept %d vertices", out.Count())
	}
	if gg.Metrics().LastStep().Kind != engine.StepVertexMap {
		t.Fatal("missing vertexmap step")
	}
}
