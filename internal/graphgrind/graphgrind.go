// Package graphgrind models the GraphGrind framework (Sun, Vandierendonck &
// Nikolopoulos, ICS'17): the graph is cut into many more partitions than
// threads (384 by default), partitions are statically bound to sockets and
// processed dynamically within a socket, and dense frontiers traverse a
// per-partition COO whose edge order is either the Hilbert space-filling
// curve (GraphGrind's default) or CSR order (the paper's Section V-G
// finding: CSR order is superior once VEBO equalizes the per-partition
// degree mix).
package graphgrind

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/partition"
)

// DefaultPartitions is the partition count the GraphGrind paper recommends
// and this paper uses throughout.
const DefaultPartitions = 384

// Config parameterizes the GraphGrind model.
type Config struct {
	Engine engine.Config
	// Partitions is the partition count (default 384).
	Partitions int
	// Order is the COO edge order for dense traversal: layout.HilbertOrder
	// (GraphGrind's default) or layout.CSROrder (best with VEBO).
	Order layout.Order
	// Bounds optionally supplies partition boundaries (Partitions+1
	// entries), e.g. VEBO's Result.Boundaries; nil selects Algorithm 1.
	Bounds []int64
}

// GraphGrind is an Engine with GraphGrind's partitioning and scheduling.
type GraphGrind struct {
	g       *graph.Graph
	cfg     Config
	parts   []partition.Partition
	ranges  []engine.Range
	coos    []*layout.COO
	partOf  []uint32 // destination vertex -> partition index
	metrics engine.Metrics
}

// New builds a GraphGrind engine, materializing one COO per partition.
func New(g *graph.Graph, cfg Config) (*GraphGrind, error) {
	cfg.Engine = cfg.Engine.WithDefaults()
	if cfg.Partitions <= 0 {
		cfg.Partitions = DefaultPartitions
	}
	var parts []partition.Partition
	var err error
	if cfg.Bounds != nil {
		if len(cfg.Bounds) != cfg.Partitions+1 {
			return nil, fmt.Errorf("graphgrind: bounds must have %d entries, got %d",
				cfg.Partitions+1, len(cfg.Bounds))
		}
		parts, err = partition.ByVertexRanges(g, cfg.Bounds)
	} else {
		parts, err = partition.ByDestination(g, cfg.Partitions)
	}
	if err != nil {
		return nil, err
	}
	ranges := make([]engine.Range, len(parts))
	for i, pt := range parts {
		ranges[i] = engine.Range{Lo: pt.Lo, Hi: pt.Hi}
	}
	coos, err := engine.BuildPartitionCOOs(g, ranges, cfg.Order, cfg.Engine.Topology.Threads())
	if err != nil {
		return nil, err
	}
	partOf := make([]uint32, g.NumVertices())
	for i, pt := range parts {
		for v := pt.Lo; v < pt.Hi; v++ {
			partOf[v] = uint32(i)
		}
	}
	return &GraphGrind{g: g, cfg: cfg, parts: parts, ranges: ranges, coos: coos, partOf: partOf}, nil
}

// Patch builds a GraphGrind engine over g — a graph whose edge content
// differs from gg's only inside partitions for which dirty reports true —
// reusing gg's materialized per-partition COOs and metadata for every clean
// partition. The caller guarantees that gg's partition structure still
// applies to g in one of two shapes. With bounds == nil, g has the same
// vertex count and the boundaries are unchanged: either the vertex
// placement did not change between the two graphs (perm == nil), or it
// changed by a segment-local permutation perm (old ID → new ID, identity
// outside the moved vertices) that kept every partition's vertex count —
// and therefore the boundaries — fixed. Headroom growth (dynamic.Graph
// admitting vertices into reserved slots at a segment's tail) is the
// bounds == nil, perm == nil case: the slot-space boundaries are constant
// across the lineage and the admitted rows appear inside their partition's
// fixed range, so only the grown partitions are dirty and the COO rewrite
// is confined to them — every other partition shares its COO outright with
// no remap pass. With non-nil bounds (len(parts)+1 entries), the vertex
// space may additionally have grown with moved boundaries: bounds are the
// new partition boundaries, perm is an injection of the old ID space into
// [0, bounds[last]) (the pre-headroom segment-growth shape: a
// per-partition shift plus swaps), and g has bounds[last] vertices. The
// caller must flag partitions owning a moved or admitted vertex as dirty,
// and partitions whose COO references a moved source vertex via srcMoved
// (nil = none). Dirty and grown partitions are rebuilt from g; partitions
// that merely shifted or hold stale source references are remapped — a
// linear copy with IDs rewritten through perm — and everything else shares
// the previous epoch's structures outright.
//
// Remapped COOs keep their entry order, so a Hilbert- or CSR-ordered COO is
// no longer strictly sorted at the handful of rewritten entries. Entry
// order only shapes the modeled memory-access locality (dense traversal
// applies the kernel per edge regardless of order), so correctness is
// unaffected; the order fully heals at the partition's next rebuild.
func (gg *GraphGrind) Patch(g *graph.Graph, perm []graph.VertexID, bounds []int64, dirty, srcMoved func(lo, hi graph.VertexID) bool) (*GraphGrind, engine.PatchStats, error) {
	var st engine.PatchStats
	nNew := gg.g.NumVertices()
	if bounds != nil {
		if len(bounds) != len(gg.parts)+1 {
			return nil, st, fmt.Errorf("graphgrind: patch bounds must have %d entries, got %d", len(gg.parts)+1, len(bounds))
		}
		nNew = int(bounds[len(bounds)-1])
	}
	if g.NumVertices() != nNew {
		return nil, st, fmt.Errorf("graphgrind: patch vertex count %d != %d", g.NumVertices(), nNew)
	}
	parts := make([]partition.Partition, len(gg.parts))
	coos := make([]*layout.COO, len(gg.coos))
	rebuild := func(i int, lo, hi graph.VertexID) error {
		np := partition.Partition{Lo: lo, Hi: hi}
		for v := lo; v < hi; v++ {
			np.Edges += g.InDegree(v)
		}
		c, err := layout.BuildRange(g, lo, hi, gg.cfg.Order)
		if err != nil {
			return err
		}
		parts[i] = np
		coos[i] = c
		st.PartsRebuilt++
		st.EdgesRebuilt += np.Edges
		return nil
	}
	for i, pt := range gg.parts {
		newLo, newHi := pt.Lo, pt.Hi
		if bounds != nil {
			newLo, newHi = graph.VertexID(bounds[i]), graph.VertexID(bounds[i+1])
		}
		shifted := newLo != pt.Lo
		grown := newHi-newLo != pt.Hi-pt.Lo
		if dirty(newLo, newHi) || grown || (shifted && perm == nil) {
			if err := rebuild(i, newLo, newHi); err != nil {
				return nil, st, err
			}
			continue
		}
		if perm != nil && (shifted || (srcMoved != nil && srcMoved(newLo, newHi))) {
			c, rewritten, ok := remapCOO(gg.coos[i], perm, int64(newLo)-int64(pt.Lo))
			if !ok {
				// A destination moved (or a vertex was admitted) inside a
				// partition the caller claimed clean; rebuild defensively
				// rather than trust the contract.
				if err := rebuild(i, newLo, newHi); err != nil {
					return nil, st, err
				}
				continue
			}
			parts[i] = partition.Partition{Lo: newLo, Hi: newHi, Edges: pt.Edges}
			coos[i] = c
			st.PartsRemapped++
			st.EdgesRemapped += rewritten
			st.EdgesReused += pt.Edges - rewritten
			continue
		}
		parts[i] = pt
		coos[i] = gg.coos[i]
		st.PartsReused++
		st.EdgesReused += pt.Edges
	}
	ranges := gg.ranges
	partOf := gg.partOf
	if bounds != nil {
		ranges = make([]engine.Range, len(parts))
		partOf = make([]uint32, nNew)
		for i, pt := range parts {
			ranges[i] = engine.Range{Lo: pt.Lo, Hi: pt.Hi}
			for v := pt.Lo; v < pt.Hi; v++ {
				partOf[v] = uint32(i)
			}
		}
	}
	return &GraphGrind{
		g:      g,
		cfg:    gg.cfg,
		parts:  parts,
		ranges: ranges,
		coos:   coos,
		partOf: partOf,
	}, st, nil
}

// remapCOO copies c with stale endpoint IDs rewritten through perm. A clean
// partition's in-edge content is unchanged, so its destinations must map
// uniformly by the partition's shift delta (a swapped or admitted
// destination would mean the content changed); ok=false reports a violation
// so the caller can rebuild. Source vertices may move arbitrarily.
// rewritten counts the entries whose stored IDs actually changed — with a
// zero delta that is only the entries referencing a moved source, and the
// rewrite is restricted to them: identity entries block-copy, the
// destination array is shared, and a COO with no stale entry at all is
// shared outright without allocating. The weight array is always shared
// with c, which is immutable.
func remapCOO(c *layout.COO, perm []graph.VertexID, delta int64) (*layout.COO, int64, bool) {
	for _, d := range c.Dst {
		if int(d) >= len(perm) || int64(perm[d]) != int64(d)+delta {
			return nil, 0, false
		}
	}
	var stale int64
	for _, s := range c.Src {
		if int(s) >= len(perm) {
			return nil, 0, false
		}
		if perm[s] != s {
			stale++
		}
	}
	if delta == 0 && stale == 0 {
		return c, 0, true
	}
	src := make([]graph.VertexID, len(c.Src))
	for i, s := range c.Src {
		src[i] = perm[s]
	}
	dst := c.Dst
	rewritten := stale
	if delta != 0 {
		dst = make([]graph.VertexID, len(c.Dst))
		for i, d := range c.Dst {
			dst[i] = graph.VertexID(int64(d) + delta)
		}
		rewritten = int64(len(c.Src))
	}
	return &layout.COO{Src: src, Dst: dst, Weight: c.Weight, Ordering: c.Ordering}, rewritten, true
}

// Name implements Engine.
func (gg *GraphGrind) Name() string { return "graphgrind" }

// Graph implements Engine.
func (gg *GraphGrind) Graph() *graph.Graph { return gg.g }

// Metrics implements Engine.
func (gg *GraphGrind) Metrics() *engine.Metrics { return &gg.metrics }

// Partitions returns the partition list.
func (gg *GraphGrind) Partitions() []partition.Partition { return gg.parts }

// EdgeOrder returns the dense-traversal COO order in use.
func (gg *GraphGrind) EdgeOrder() layout.Order { return gg.cfg.Order }

// EdgeMap implements Engine. Dense frontiers traverse per-partition COOs
// with two-level (static-across-sockets, dynamic-within) scheduling; sparse
// frontiers push with intra-socket dynamic scheduling.
func (gg *GraphGrind) EdgeMap(f *frontier.Frontier, k engine.EdgeKernel) *frontier.Frontier {
	top := gg.cfg.Engine.Topology
	if f.ShouldBeDense(gg.g.NumEdges()) {
		out, costs := engine.DenseCOO(gg.g, f, k, gg.coos, gg.ranges, top.Threads())
		gg.metrics.Add(engine.Step{
			Kind:           engine.StepEdgeMapDense,
			ActiveVertices: f.Count(),
			ActiveEdges:    f.OutEdges(),
			TotalCost:      engine.Sum(costs),
			Makespan:       engine.MakespanGrouped(costs, top.Sockets, top.ThreadsPerSocket),
			UnitCosts:      costs,
			PartitionCosts: costs,
		})
		return out
	}
	// Sparse traversal still pushes along the frontier's out-edges, but
	// GraphGrind's work is bound to the destination partitions, which are
	// statically assigned to sockets: a sparse iteration whose active edges
	// concentrate in few partitions serializes on their sockets. This is
	// exactly the effect the paper's Table IV measures — VEBO's uniform
	// distribution of high- and low-degree vertices over partitions raises
	// the per-partition minimum and cuts the spread.
	out, _ := engine.SparsePush(gg.g, f, k, gg.cfg.Engine.SparseChunk, top.Threads())
	partCosts := make([]int64, len(gg.parts))
	for _, s := range f.Sparse() {
		for _, d := range gg.g.OutNeighbors(s) {
			partCosts[gg.partOf[d]] += engine.CostEdge
		}
	}
	gg.metrics.Add(engine.Step{
		Kind:           engine.StepEdgeMapSparse,
		ActiveVertices: f.Count(),
		ActiveEdges:    f.OutEdges(),
		TotalCost:      engine.Sum(partCosts),
		Makespan:       engine.MakespanGrouped(partCosts, top.Sockets, top.ThreadsPerSocket),
		UnitCosts:      partCosts,
		PartitionCosts: partCosts,
	})
	return out
}

// VertexMap implements Engine: iterations spread statically over all
// threads, as in Polymer.
func (gg *GraphGrind) VertexMap(f *frontier.Frontier, fn func(v graph.VertexID) bool) *frontier.Frontier {
	threads := gg.cfg.Engine.Topology.Threads()
	out, costs := engine.VertexMapStatic(gg.g, f, fn, threads, threads)
	gg.metrics.Add(engine.Step{
		Kind:           engine.StepVertexMap,
		ActiveVertices: f.Count(),
		ActiveEdges:    f.OutEdges(),
		TotalCost:      engine.Sum(costs),
		Makespan:       engine.MakespanStatic(costs, threads),
		UnitCosts:      costs,
	})
	return out
}
