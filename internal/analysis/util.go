package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// derefNamed unwraps aliases and at most one pointer and returns the named
// type underneath, or nil.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// namedIs reports whether n is the type pkgPath.name.
func namedIs(n *types.Named, pkgPath, name string) bool {
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// namedKey splits a named type into (package path, type name); ok is false
// for builtins and universe types.
func namedKey(n *types.Named) (pkgPath, name string, ok bool) {
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return "", "", false
	}
	return n.Obj().Pkg().Path(), n.Obj().Name(), true
}

// fieldOf resolves sel to a struct field access and returns the field
// object and the named type of the struct that declares it (the deepest
// embedded owner). Non-field selections (methods, qualified identifiers)
// return (nil, nil).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) (*types.Var, *types.Named) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	// Walk the selection's index path to the struct that actually declares
	// the field, so embedded promotions attribute to the right owner.
	t := s.Recv()
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		st, ok := types.Unalias(deref(t)).Underlying().(*types.Struct)
		if !ok {
			return fld, derefNamed(s.Recv())
		}
		t = st.Field(i).Type()
	}
	return fld, derefNamed(t)
}

func deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// parentMap records each node's syntactic parent within one file.
type parentMap map[ast.Node]ast.Node

func parentsOf(f *ast.File) parentMap {
	pm := make(parentMap)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// enclosingFuncs returns every function literal and declaration containing
// n, innermost first.
func (pm parentMap) enclosingFuncs(n ast.Node) []ast.Node {
	var out []ast.Node
	for cur := pm[n]; cur != nil; cur = pm[cur] {
		switch cur.(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			out = append(out, cur)
		}
	}
	return out
}

// signatureOf returns the type-checked signature of a FuncDecl or FuncLit.
func signatureOf(info *types.Info, fn ast.Node) *types.Signature {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
			if sig, ok := obj.Type().(*types.Signature); ok {
				return sig
			}
		}
	case *ast.FuncLit:
		if tv, ok := info.Types[fn]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// returnsType reports whether any result of sig is (a pointer to) the type
// pkgPath.name — the "builder by return" test.
func returnsType(sig *types.Signature, pkgPath, name string) bool {
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if namedIs(derefNamed(res.At(i).Type()), pkgPath, name) {
			return true
		}
	}
	return false
}

// funcDeclName returns the bare name of a FuncDecl node ("" for literals).
func funcDeclName(fn ast.Node) string {
	if d, ok := fn.(*ast.FuncDecl); ok {
		return d.Name.Name
	}
	return ""
}

// inOnceDoOf reports whether n sits inside a func literal passed to
// once.Do(...) where once is a sync.Once field of the type pkgPath.name —
// the lazy-build exemption for frozen types.
func inOnceDoOf(pm parentMap, info *types.Info, n ast.Node, pkgPath, name string) bool {
	for cur := pm[n]; cur != nil; cur = pm[cur] {
		lit, ok := cur.(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := pm[lit].(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || call.Args[0] != ast.Expr(lit) {
			continue
		}
		doSel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || doSel.Sel.Name != "Do" {
			continue
		}
		onceSel, ok := doSel.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		fld, owner := fieldOf(info, onceSel)
		if fld == nil || !namedIs(derefNamed(fld.Type()), "sync", "Once") {
			continue
		}
		if namedIs(owner, pkgPath, name) {
			return true
		}
	}
	return false
}

// exprKey renders a stable identity for simple receiver chains
// ("a", "t.inner"); expressions it cannot canonicalize get a position-based
// key so they never alias anything else.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	default:
		return fmt.Sprintf("@%d", e.Pos())
	}
}

// stringConst returns the compile-time string value of e, if it has one.
func stringConst(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
