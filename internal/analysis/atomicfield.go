package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicfield enforces the all-or-nothing atomicity contract on struct
// fields (DESIGN.md §5): once any code takes a field's address into a
// sync/atomic call (or the module's atomicf CAS helpers), every other
// access to that field must also be atomic — a plain load or store on
// another goroutine is exactly the race -race only catches on a lucky
// schedule. Fields of sync/atomic value types (atomic.Int64, atomic.Pointer
// etc.) are likewise flagged when copied by value, which silently drops the
// atomicity of subsequent operations.
//
// Functions returning the owning type are treated as builders: the value is
// unpublished there, so plain initialization is allowed.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed through sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicfield,
}

func runAtomicfield(pass *Pass) error {
	type fieldKey struct {
		pkg, typ, name string
	}
	key := func(fld *types.Var, owner *types.Named) (fieldKey, bool) {
		pkg, typ, ok := namedKey(owner)
		if !ok {
			return fieldKey{}, false
		}
		return fieldKey{pkg, typ, fld.Name()}, true
	}

	// First pass: find every field whose address feeds a sync/atomic (or
	// repro/internal/atomicf) call, remembering the selector nodes that
	// are those atomic accesses.
	firstAtomic := make(map[fieldKey]token.Pos)
	atomicSite := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fld, owner := fieldOf(pass.Info, sel)
				if fld == nil {
					continue
				}
				if k, ok := key(fld, owner); ok {
					if _, seen := firstAtomic[k]; !seen {
						firstAtomic[k] = sel.Pos()
					}
					atomicSite[sel] = true
				}
			}
			return true
		})
	}

	// Second pass: flag non-atomic accesses to those fields, and by-value
	// copies of sync/atomic-typed fields.
	for _, f := range pass.Files {
		pm := parentsOf(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld, owner := fieldOf(pass.Info, sel)
			if fld == nil {
				return true
			}
			k, ok := key(fld, owner)
			if !ok {
				return true
			}
			if first, mixed := firstAtomic[k]; mixed && !atomicSite[sel] {
				if !inBuilderOf(pm, pass.Info, sel, k.pkg, k.typ) {
					pass.Reportf(sel.Pos(),
						"non-atomic access of %s.%s, which is accessed with sync/atomic at %s",
						k.typ, k.name, pass.Fset.Position(first))
				}
			}
			if atomicValueType(fld.Type()) != "" && copiesAtomicValue(pm, sel) {
				pass.Reportf(sel.Pos(),
					"%s.%s (%s) copied by value; atomic values must be used through methods on the original",
					k.typ, k.name, atomicValueType(fld.Type()))
			}
			return true
		})
	}
	return nil
}

// isAtomicCall matches calls into sync/atomic and the module's atomicf
// helper package (CAS-loop min helpers used by the kernels).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == "sync/atomic" || strings.HasSuffix(path, "internal/atomicf")
}

// atomicValueType returns "atomic.Int64"-style names for sync/atomic value
// types, or "".
func atomicValueType(t types.Type) string {
	n := derefNamed(t)
	pkg, name, ok := namedKey(n)
	if !ok || pkg != "sync/atomic" {
		return ""
	}
	switch name {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return "atomic." + name
	}
	return ""
}

// copiesAtomicValue reports whether sel reads the atomic-typed field as a
// value rather than operating through it: method calls (v.cnt.Load()),
// address-taking (&v.cnt) and further field selection keep the original;
// anything else copies it.
func copiesAtomicValue(pm parentMap, sel *ast.SelectorExpr) bool {
	var node ast.Node = sel
	for {
		switch p := pm[node].(type) {
		case *ast.SelectorExpr:
			return false // v.cnt.Load, or deeper selection
		case *ast.UnaryExpr:
			return p.Op != token.AND
		case *ast.StarExpr:
			return false // deref of *atomic.T field keeps the original
		case *ast.ParenExpr:
			node = p
		default:
			return true
		}
	}
}

// inBuilderOf reports whether n is inside a function whose signature
// returns (a pointer to) pkg.typ — construction before publication.
func inBuilderOf(pm parentMap, info *types.Info, n ast.Node, pkg, typ string) bool {
	for _, fn := range pm.enclosingFuncs(n) {
		if returnsType(signatureOf(info, fn), pkg, typ) {
			return true
		}
	}
	return false
}
