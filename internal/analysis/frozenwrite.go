package analysis

import (
	"go/ast"
	"go/types"
)

// Frozenwrite enforces immutability of types annotated //vebo:frozen
// (epoch captures, published views, COW ordering results — DESIGN.md
// §5–§5b): outside the type's builders, both direct field writes and
// mutations of data reached through its fields (slice/map element stores,
// append-into, delete, copy-into) are flagged, because frozen values are
// shared across goroutines by pointer publication and any in-place
// mutation races with readers on other epochs.
//
// Allowed contexts:
//   - functions whose signature returns (a pointer to) the frozen type —
//     builders construct before publication;
//   - functions named in the annotation's allow= list — in-package build
//     helpers that mutate through a receiver;
//   - func literals passed to once.Do where once is a sync.Once field of
//     the same frozen type — the lazy-build idiom used by View caches.
var Frozenwrite = &Analyzer{
	Name: "frozenwrite",
	Doc:  "types marked //vebo:frozen may only be mutated by their builders",
	Run:  runFrozenwrite,
}

func runFrozenwrite(pass *Pass) error {
	for _, f := range pass.Files {
		pm := parentsOf(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkFrozenTarget(pass, pm, lhs, true)
				}
			case *ast.IncDecStmt:
				checkFrozenTarget(pass, pm, st.X, true)
			case *ast.CallExpr:
				// Builtins that mutate their first argument's contents in
				// place — an aliased mutation even when the argument is the
				// field itself.
				if id, ok := st.Fun.(*ast.Ident); ok && len(st.Args) > 0 {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
						switch b.Name() {
						case "copy", "delete", "clear":
							checkFrozenTarget(pass, pm, st.Args[0], false)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkFrozenTarget walks the access path of a mutation target (x.f,
// x.f[i], *x.f, x.a.b[i:j]) and reports if any selector along it reaches a
// field of a frozen type outside an allowed context. When direct is true
// the outermost selector is a plain field write; deeper selectors (and
// builtin-mutated targets) are aliased mutations of data the frozen value
// owns.
func checkFrozenTarget(pass *Pass, pm parentMap, target ast.Expr, direct bool) {
	for e := target; ; {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e, direct = x.X, false
		case *ast.SliceExpr:
			e, direct = x.X, false
		case *ast.StarExpr:
			e, direct = x.X, false
		case *ast.SelectorExpr:
			fld, owner := fieldOf(pass.Info, x)
			if fld != nil {
				if pkg, typ, ok := namedKey(owner); ok {
					if fi, frozen := pass.Ann.Frozen(pkg, typ); frozen &&
						!frozenWriteAllowed(pass, pm, x, fi, pkg, typ) {
						if direct {
							pass.Reportf(x.Pos(),
								"write to field %s of frozen type %s outside its builders (//vebo:frozen)",
								fld.Name(), typ)
						} else {
							pass.Reportf(x.Pos(),
								"mutation through field %s aliases data of frozen type %s (//vebo:frozen)",
								fld.Name(), typ)
						}
						return // one report per target
					}
				}
			}
			e, direct = x.X, false // anything deeper aliases through x
		default:
			return
		}
	}
}

func frozenWriteAllowed(pass *Pass, pm parentMap, n ast.Node, fi frozenInfo, pkg, typ string) bool {
	for _, fn := range pm.enclosingFuncs(n) {
		if returnsType(signatureOf(pass.Info, fn), pkg, typ) {
			return true
		}
		// allow= names bind to the type's own package only.
		if name := funcDeclName(fn); name != "" && fi.allow[name] && pass.Pkg.Path() == pkg {
			return true
		}
	}
	return inOnceDoOf(pm, pass.Info, n, pkg, typ)
}
