// Package analysis is the project's static-analysis suite: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// core (Analyzer, Pass, a module loader and an analysistest-style harness)
// plus four project-specific analyzers that turn the prose concurrency
// contracts of DESIGN.md §5–§7 into machine-checked rules:
//
//   - atomicfield: a struct field accessed once through sync/atomic must be
//     accessed atomically everywhere; plain loads/stores race.
//   - frozenwrite: types annotated //vebo:frozen are immutable outside
//     their builder functions (epoch captures, published views, COW
//     ordering results).
//   - lockedfield: fields annotated //vebo:guardedby mu may only be touched
//     while the named sibling mutex is held (allocator and registry maps).
//   - obshandle: obs metric/trace handles come from the nil-safe
//     constructors, and registered metric names follow the canonical
//     vebo_* vocabulary.
//
// The suite runs via cmd/vebovet, either standalone (vebovet ./...) or as a
// go vet tool (go vet -vettool=$(command -v vebovet) ./...). It is built on
// the standard library only — go/ast, go/types and the gc export-data
// importer — because this module deliberately has no third-party
// dependencies; the x/tools analysis runtime is re-derived here at the
// scale this suite needs, not vendored.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. Run inspects a single package
// (one Pass) and reports findings through the Pass; it returns an error
// only for analyzer-internal failures, never for findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work: the package's syntax,
// type information and the module-wide annotation index.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Ann      *Annotations

	report func(Diagnostic)
}

// A Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the full vebovet suite, the analyzers CI runs over every
// package.
func All() []*Analyzer {
	return []*Analyzer{Atomicfield, Frozenwrite, Lockedfield, Obshandle}
}

// Run applies every analyzer to every package and returns the findings in
// (file, line, column) order. All packages must share one token.FileSet.
// Analyzer-internal errors abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer, ann *Annotations) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Ann:      ann,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if len(pkgs) > 0 {
		SortDiagnostics(pkgs[0].Fset, diags)
	}
	return diags, nil
}

// SortDiagnostics orders findings by position then analyzer name.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// NewInfo returns a types.Info with every map the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
