package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one fully parsed and type-checked unit ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds soft type-checking errors; analyzers still run on
	// the partial information when it is non-empty.
	TypeErrors []error
}

// Loader loads module packages for analysis without any tooling
// dependencies. Module-internal imports are type-checked from source;
// standard-library imports resolve through gc export data discovered with
// `go list -export` (falling back to the source importer when export data
// is unavailable, e.g. a cold build cache).
type Loader struct {
	Fset    *token.FileSet
	Root    string // module root directory
	ModPath string // module path from go.mod
	Ann     *Annotations

	goVersion string

	exportOnce sync.Once
	export     map[string]string // import path -> export data file
	gcImp      types.Importer
	srcImpOnce sync.Once
	srcImp     types.Importer

	imports map[string]*types.Package // import-variant cache (no _test.go files)
	loading map[string]bool           // import cycle guard
}

// NewLoader locates the module containing dir and prepares a loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, goVer, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The source-importer fallback cannot process cgo files; stdlib cgo
	// packages (net, os/user) all have pure-Go fallbacks gated on this.
	build.Default.CgoEnabled = false
	return &Loader{
		Fset:      token.NewFileSet(),
		Root:      root,
		ModPath:   modPath,
		Ann:       NewAnnotations(root, modPath),
		goVersion: goVer,
		imports:   make(map[string]*types.Package),
		loading:   make(map[string]bool),
	}, nil
}

func findModule(dir string) (root, modPath, goVer string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					modPath = strings.TrimSpace(rest)
				} else if rest, ok := strings.CutPrefix(line, "go "); ok {
					goVer = "go" + strings.TrimSpace(rest)
				}
			}
			if modPath == "" {
				return "", "", "", fmt.Errorf("%s/go.mod: no module directive", d)
			}
			return d, modPath, goVer, nil
		}
		if filepath.Dir(d) == d {
			return "", "", "", fmt.Errorf("no go.mod above %s", dir)
		}
	}
}

// Import implements types.Importer for the dependencies of analyzed
// packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		return l.importInternal(path)
	}
	return l.importStdlib(path)
}

func (l *Loader) importStdlib(path string) (*types.Package, error) {
	l.exportOnce.Do(l.initExport)
	if l.gcImp != nil {
		if pkg, err := l.gcImp.Import(path); err == nil {
			return pkg, nil
		}
	}
	l.srcImpOnce.Do(func() {
		l.srcImp = importer.ForCompiler(l.Fset, "source", nil)
	})
	return l.srcImp.Import(path)
}

// initExport indexes gc export data for the module's whole dependency
// closure (including test deps) out of the build cache.
func (l *Loader) initExport() {
	l.export = make(map[string]string)
	cmd := exec.Command("go", "list", "-export", "-deps", "-test",
		"-f", "{{.ImportPath}}\x01{{.Export}}", "./...")
	cmd.Dir = l.Root
	out, err := cmd.Output()
	if err != nil {
		return // leave the map empty; srcimporter takes over
	}
	for _, line := range strings.Split(string(out), "\n") {
		ip, exp, ok := strings.Cut(line, "\x01")
		if !ok || exp == "" || strings.Contains(ip, " ") {
			continue
		}
		l.export[ip] = exp
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := l.export[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	l.gcImp = importer.ForCompiler(l.Fset, "gc", lookup)
}

// importInternal type-checks a module package from its non-test sources.
func (l *Loader) importInternal(path string) (*types.Package, error) {
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	for _, f := range files {
		l.Ann.AddFile(path, f)
	}
	l.Ann.MarkScanned(path)
	pkg, _, errs := l.check(path, files)
	if len(errs) > 0 {
		return pkg, fmt.Errorf("type-checking %s: %v", path, errs[0])
	}
	l.imports[path] = pkg
	return pkg, nil
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.Root)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) parseDir(dir string, keep func(string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !keep(name) {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !buildConstraintsOK(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// buildConstraintsOK rejects files carrying a //go:build line, which this
// loader does not evaluate; the module has none on its analyzed paths.
func buildConstraintsOK(src []byte) bool {
	for _, line := range bytes.Split(src, []byte("\n")) {
		trimmed := bytes.TrimSpace(line)
		if bytes.HasPrefix(trimmed, []byte("//go:build")) {
			return false
		}
		if len(trimmed) > 0 && !bytes.HasPrefix(trimmed, []byte("//")) {
			return true // reached package clause: no constraint
		}
	}
	return true
}

func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	info := NewInfo()
	var errs []error
	conf := types.Config{
		Importer:  l,
		GoVersion: l.goVersion,
		Error:     func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && len(errs) == 0 {
		errs = append(errs, err)
	}
	return pkg, info, errs
}

// LoadDir loads the single package rooted at dir — including its test
// files — as import path asPath, returning the base package and, when
// external (_test-suffixed) test files exist, that package too.
func (l *Loader) LoadDir(dir, asPath string) ([]*Package, error) {
	all, err := l.parseDir(dir, func(string) bool { return true })
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	// Split files into the base package and the external test package.
	var baseName string
	for _, f := range all {
		name := f.Name.Name
		if !strings.HasSuffix(name, "_test") {
			baseName = name
			break
		}
	}
	if baseName == "" {
		baseName = strings.TrimSuffix(all[0].Name.Name, "_test")
	}
	var baseFiles, extFiles []*ast.File
	for _, f := range all {
		if f.Name.Name == baseName {
			baseFiles = append(baseFiles, f)
		} else if f.Name.Name == baseName+"_test" {
			extFiles = append(extFiles, f)
		} else {
			return nil, fmt.Errorf("%s: mixed packages %q and %q", dir, baseName, f.Name.Name)
		}
	}

	var pkgs []*Package
	for _, f := range baseFiles {
		l.Ann.AddFile(asPath, f)
	}
	l.Ann.MarkScanned(asPath)
	basePkg, baseInfo, baseErrs := l.check(asPath, baseFiles)
	pkgs = append(pkgs, &Package{
		Path: asPath, Name: baseName, Fset: l.Fset,
		Files: baseFiles, Types: basePkg, Info: baseInfo, TypeErrors: baseErrs,
	})

	if len(extFiles) > 0 {
		// External test files import the base package; make that import
		// resolve to the in-package test variant just checked, so helpers
		// exported via _test.go files are visible.
		prev, hadPrev := l.imports[asPath]
		l.imports[asPath] = basePkg
		extPkg, extInfo, extErrs := l.check(asPath+"_test", extFiles)
		if hadPrev {
			l.imports[asPath] = prev
		} else {
			delete(l.imports, asPath)
		}
		pkgs = append(pkgs, &Package{
			Path: asPath + "_test", Name: baseName + "_test", Fset: l.Fset,
			Files: extFiles, Types: extPkg, Info: extInfo, TypeErrors: extErrs,
		})
	}
	return pkgs, nil
}

// Load expands go-style package patterns (".", "./...", "./internal/obs",
// "dir/...") relative to cwd and loads every matched package with its test
// files.
func (l *Loader) Load(cwd string, patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(cwd, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		got, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", dir, err)
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

func (l *Loader) expand(cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, filepath.FromSlash(pat))
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") {
				add(filepath.Dir(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
