package analysis

import (
	"go/ast"
	"go/types"
)

// Lockedfield enforces //vebo:guardedby annotations (DESIGN.md §5c, §6):
// a field annotated `//vebo:guardedby mu` may only be accessed while the
// named sibling mutex of the same receiver is held on every path reaching
// the access — reads require the mutex in read or write mode, writes
// require write mode (a write under RLock is still a race). The walk is a
// simple forward lockset pass: Lock/RLock on a statement adds the
// receiver's mutex to the held set, Unlock/RUnlock removes it, branches
// analyze with a copy of the set (acquisitions inside a branch do not leak
// out), `defer mu.Unlock()` is neutral, and goroutine bodies start with an
// empty set because they run on another schedule.
//
// Functions returning the owning type are builders (the value is
// unpublished) and are exempt.
var Lockedfield = &Analyzer{
	Name: "lockedfield",
	Doc:  "fields marked //vebo:guardedby must be accessed with the named mutex held",
	Run:  runLockedfield,
}

func runLockedfield(pass *Pass) error {
	for _, f := range pass.Files {
		pm := parentsOf(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &lockChecker{pass: pass, pm: pm}
			c.stmts(fd.Body.List, newLockSet())
		}
	}
	return nil
}

type lockSet struct {
	r, w map[string]int // "recv.mu" -> acquisition depth
}

func newLockSet() *lockSet {
	return &lockSet{r: make(map[string]int), w: make(map[string]int)}
}

func (s *lockSet) clone() *lockSet {
	c := newLockSet()
	for k, v := range s.r {
		c.r[k] = v
	}
	for k, v := range s.w {
		c.w[k] = v
	}
	return c
}

type lockChecker struct {
	pass *Pass
	pm   parentMap
}

func (c *lockChecker) stmts(list []ast.Stmt, held *lockSet) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func (c *lockChecker) stmt(s ast.Stmt, held *lockSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := c.lockEvent(s.X); ok {
			applyLock(held, key, op)
			return
		}
		c.scan(s.X, held)
	case *ast.DeferStmt:
		if _, _, ok := c.lockEvent(s.Call); ok {
			return // deferred unlocks run at exit; neutral for the walk
		}
		// Argument expressions evaluate now; a deferred func literal runs
		// at exit under an unknown lockset — treat as empty.
		for _, arg := range s.Call.Args {
			c.scan(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(lit.Body.List, newLockSet())
		} else {
			c.scan(s.Call.Fun, held)
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			c.scan(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(lit.Body.List, newLockSet())
		} else {
			c.scan(s.Call.Fun, held)
		}
	case *ast.BlockStmt:
		c.stmts(s.List, held)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.scan(s.Cond, held)
		c.stmts(s.Body.List, held.clone())
		if s.Else != nil {
			c.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		body := held.clone()
		if s.Cond != nil {
			c.scan(s.Cond, body)
		}
		c.stmts(s.Body.List, body)
		if s.Post != nil {
			c.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		c.scan(s.X, held)
		body := held.clone()
		if s.Key != nil {
			c.scanWrite(s.Key, body)
		}
		if s.Value != nil {
			c.scanWrite(s.Value, body)
		}
		c.stmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scan(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				body := held.clone()
				for _, e := range cc.List {
					c.scan(e, body)
				}
				c.stmts(cc.Body, body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.stmt(s.Assign, held)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				body := held.clone()
				if cc.Comm != nil {
					c.stmt(cc.Comm, body)
				}
				c.stmts(cc.Body, body)
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.scan(rhs, held)
		}
		for _, lhs := range s.Lhs {
			c.scanWrite(lhs, held)
		}
	case *ast.IncDecStmt:
		c.scanWrite(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scan(e, held)
		}
	case *ast.SendStmt:
		c.scan(s.Chan, held)
		c.scan(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scan(v, held)
					}
				}
			}
		}
	}
}

func applyLock(held *lockSet, key string, op string) {
	switch op {
	case "Lock":
		held.w[key]++
	case "Unlock":
		if held.w[key] > 0 {
			held.w[key]--
		}
	case "RLock":
		held.r[key]++
	case "RUnlock":
		if held.r[key] > 0 {
			held.r[key]--
		}
	}
}

// lockEvent matches `recv.mu.Lock()`-shaped calls on sync.Mutex/RWMutex
// fields and returns the held-set key ("recv.mu") and the method name.
func (c *lockChecker) lockEvent(e ast.Expr) (key, op string, ok bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, ok := c.pass.Info.Types[sel.X]
	if !ok {
		return "", "", false
	}
	n := derefNamed(tv.Type)
	if !namedIs(n, "sync", "Mutex") && !namedIs(n, "sync", "RWMutex") {
		return "", "", false
	}
	return exprKey(sel.X), sel.Sel.Name, true
}

// scan inspects an expression for guarded-field reads; nested func
// literals are walked with a copy of the current set (they are assumed to
// run synchronously — go/defer literals are handled by stmt).
func (c *lockChecker) scan(e ast.Expr, held *lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, held.clone())
			return false
		case *ast.CallExpr:
			// copy/delete/clear mutate their first argument.
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) > 0 {
				if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "copy", "delete", "clear":
						c.scanWrite(n.Args[0], held)
						for _, a := range n.Args[1:] {
							c.scan(a, held)
						}
						return false
					}
				}
			}
		case *ast.SelectorExpr:
			c.checkAccess(n, held, false)
		}
		return true
	})
}

// scanWrite checks a mutation target: the outermost guarded selector on
// the path needs the mutex in write mode; everything beneath it is a read.
func (c *lockChecker) scanWrite(e ast.Expr, held *lockSet) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			c.scan(x.Index, held)
			e = x.X
		case *ast.SliceExpr:
			if x.Low != nil {
				c.scan(x.Low, held)
			}
			if x.High != nil {
				c.scan(x.High, held)
			}
			if x.Max != nil {
				c.scan(x.Max, held)
			}
			e = x.X
		case *ast.SelectorExpr:
			if c.checkAccess(x, held, true) {
				c.scan(x.X, held)
				return
			}
			e = x.X
		default:
			c.scan(e, held)
			return
		}
	}
}

// checkAccess reports an unguarded access to an annotated field; returns
// whether the selector resolved to a guarded field.
func (c *lockChecker) checkAccess(sel *ast.SelectorExpr, held *lockSet, write bool) bool {
	fld, owner := fieldOf(c.pass.Info, sel)
	if fld == nil {
		return false
	}
	pkg, typ, ok := namedKey(owner)
	if !ok {
		return false
	}
	mu, guarded := c.pass.Ann.GuardedBy(pkg, typ, fld.Name())
	if !guarded {
		return false
	}
	// Builders construct the value before publication.
	for _, fn := range c.pm.enclosingFuncs(sel) {
		if returnsType(signatureOf(c.pass.Info, fn), pkg, typ) {
			return true
		}
	}
	key := exprKey(sel.X) + "." + mu
	switch {
	case held.w[key] > 0:
	case !write && held.r[key] > 0:
	case write && held.r[key] > 0:
		c.pass.Reportf(sel.Pos(),
			"write to %s.%s with %s held in read mode; Lock it for writing (//vebo:guardedby)",
			typ, fld.Name(), mu)
	default:
		c.pass.Reportf(sel.Pos(),
			"access to %s.%s without holding %s.%s (//vebo:guardedby)",
			typ, fld.Name(), exprKey(sel.X), mu)
	}
	return true
}
