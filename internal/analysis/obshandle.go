package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// Obshandle enforces the observability-facade contract (DESIGN.md §6):
// metric and trace handles come from the nil-safe constructors
// (obs.NewRegistry, obs.NewTracer) or from registry getters — a raw
// composite literal skips map initialization and breaks the documented
// "nil receiver is a no-op" property. Registered series must also follow
// the canonical naming vocabulary so dashboards and the CI report
// validator can rely on it: names match vebo_[a-z0-9_]*, counters end in
// _total, histograms in _ns, gauges in neither, and labels come in
// key/value pairs.
//
// The obs package itself (and its tests) is exempt from the literal rule:
// it is the one place allowed to build handles by hand.
var Obshandle = &Analyzer{
	Name: "obshandle",
	Doc:  "obs handles use nil-safe constructors; metric names follow the vebo_* vocabulary",
	Run:  runObshandle,
}

var (
	obsHandleTypes = map[string]bool{
		"Registry": true, "Tracer": true, "Counter": true,
		"Gauge": true, "Histogram": true,
	}
	metricNameRE = regexp.MustCompile(`^vebo_[a-z0-9_]*[a-z0-9]$`)
)

func isObsPath(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return strings.HasSuffix(path, "internal/obs")
}

func runObshandle(pass *Pass) error {
	inObs := isObsPath(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if inObs {
					return true
				}
				named := derefNamed(pass.Info.Types[n].Type)
				if pkg, typ, ok := namedKey(named); ok && isObsPath(pkg) && obsHandleTypes[typ] {
					pass.Reportf(n.Pos(),
						"raw obs.%s literal bypasses the nil-safe constructors; use obs.New%s or a registry getter",
						typ, constructorFor(typ))
				}
			case *ast.CallExpr:
				// The obs package's own tests exercise registry mechanics
				// with synthetic names; the vocabulary binds everyone else.
				if !inObs {
					checkMetricCall(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func constructorFor(typ string) string {
	switch typ {
	case "Counter", "Gauge", "Histogram":
		return "Registry plus Registry." + typ
	default:
		return typ
	}
}

// checkMetricCall validates names and label shape at Registry.Counter /
// Gauge / Histogram registration sites.
func checkMetricCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	kind := sel.Sel.Name
	switch kind {
	case "Counter", "Gauge", "Histogram":
	default:
		return
	}
	recv := derefNamed(pass.Info.Types[sel.X].Type)
	if pkg, typ, ok := namedKey(recv); !ok || !isObsPath(pkg) || typ != "Registry" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	if name, ok := stringConst(pass.Info, call.Args[0]); ok {
		if !metricNameRE.MatchString(name) {
			pass.Reportf(call.Args[0].Pos(),
				"metric name %q outside the canonical vocabulary (want vebo_[a-z0-9_]*)", name)
		} else {
			total := strings.HasSuffix(name, "_total")
			ns := strings.HasSuffix(name, "_ns")
			switch {
			case kind == "Counter" && !total:
				pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
			case kind == "Histogram" && !ns:
				pass.Reportf(call.Args[0].Pos(), "histogram %q must end in _ns", name)
			case kind == "Gauge" && (total || ns):
				pass.Reportf(call.Args[0].Pos(),
					"gauge %q must not use the _total/_ns suffixes reserved for counters and histograms", name)
			}
		}
	}
	// Labels are key/value pairs; a slice spread is opaque to this check.
	if call.Ellipsis.IsValid() {
		return
	}
	if nlabels := len(call.Args) - 1; nlabels%2 != 0 {
		pass.Reportf(call.Args[1].Pos(),
			"odd label count %d in %s registration; labels are key/value pairs", nlabels, kind)
	}
}
