package analysis

import (
	"fmt"
	"go/ast"
	"regexp"
	"sort"
	"strings"
)

// Obshandle enforces the observability-facade contract (DESIGN.md §6):
// metric, trace and span handles come from the nil-safe constructors
// (obs.NewRegistry, obs.NewTracer, obs.NewSpans, Spans.Start) or from
// registry getters — a raw composite literal skips map/ring initialization
// and breaks the documented "nil receiver is a no-op" property. Registered
// series must also follow the canonical naming vocabulary so dashboards
// and the CI report validator can rely on it: names match vebo_[a-z0-9_]*
// (or go_* for the runtime-sampler series), counters end in _total,
// histograms in _ns, gauges in neither, and labels come in key/value
// pairs. The staleness-plane series additionally carry a pinned contract:
// vebo_epoch_age_ns and vebo_publish_lag_ns are unlabeled histograms,
// vebo_delta_backlog an unlabeled gauge, vebo_query_ns a histogram labeled
// exactly {alg, sys} — serve's [stats] line, bench -wall and the baseline
// gate all read these series by that shape.
//
// The obs package itself (and its tests) is exempt from the literal rule:
// it is the one place allowed to build handles by hand.
var Obshandle = &Analyzer{
	Name: "obshandle",
	Doc:  "obs handles use nil-safe constructors; metric names follow the vebo_*/go_* vocabulary",
	Run:  runObshandle,
}

var (
	obsHandleTypes = map[string]bool{
		"Registry": true, "Tracer": true, "Counter": true,
		"Gauge": true, "Histogram": true,
		"Spans": true, "ActiveSpan": true,
	}
	metricNameRE = regexp.MustCompile(`^(?:vebo|go)_[a-z0-9_]*[a-z0-9]$`)
)

// metricContracts pins registration kind and exact label-key sets for the
// series the serving plane, bench -wall and the baseline gate consume by
// name; a registration with the wrong kind or label shape would silently
// split or empty those series.
var metricContracts = map[string]struct {
	kind   string
	labels []string // sorted; nil means "no labels"
}{
	"vebo_epoch_age_ns":   {kind: "Histogram"},
	"vebo_publish_lag_ns": {kind: "Histogram"},
	"vebo_delta_backlog":  {kind: "Gauge"},
	"vebo_query_ns":       {kind: "Histogram", labels: []string{"alg", "sys"}},
}

func isObsPath(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return strings.HasSuffix(path, "internal/obs")
}

func runObshandle(pass *Pass) error {
	inObs := isObsPath(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if inObs {
					return true
				}
				named := derefNamed(pass.Info.Types[n].Type)
				if pkg, typ, ok := namedKey(named); ok && isObsPath(pkg) && obsHandleTypes[typ] {
					pass.Reportf(n.Pos(),
						"raw obs.%s literal bypasses the nil-safe constructors; use %s",
						typ, constructorFor(typ))
				}
			case *ast.CallExpr:
				// The obs package's own tests exercise registry mechanics
				// with synthetic names; the vocabulary binds everyone else.
				if !inObs {
					checkMetricCall(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func constructorFor(typ string) string {
	switch typ {
	case "Counter", "Gauge", "Histogram":
		return "obs.NewRegistry plus Registry." + typ
	case "ActiveSpan":
		return "obs.NewSpans plus Spans.Start"
	default:
		return "obs.New" + typ
	}
}

// checkMetricCall validates names and label shape at Registry.Counter /
// Gauge / Histogram registration sites.
func checkMetricCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	kind := sel.Sel.Name
	switch kind {
	case "Counter", "Gauge", "Histogram":
	default:
		return
	}
	recv := derefNamed(pass.Info.Types[sel.X].Type)
	if pkg, typ, ok := namedKey(recv); !ok || !isObsPath(pkg) || typ != "Registry" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	if name, ok := stringConst(pass.Info, call.Args[0]); ok {
		if !metricNameRE.MatchString(name) {
			pass.Reportf(call.Args[0].Pos(),
				"metric name %q outside the canonical vocabulary (want vebo_[a-z0-9_]* or go_[a-z0-9_]*)", name)
		} else {
			total := strings.HasSuffix(name, "_total")
			ns := strings.HasSuffix(name, "_ns")
			switch {
			case kind == "Counter" && !total:
				pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
			case kind == "Histogram" && !ns:
				pass.Reportf(call.Args[0].Pos(), "histogram %q must end in _ns", name)
			case kind == "Gauge" && (total || ns):
				pass.Reportf(call.Args[0].Pos(),
					"gauge %q must not use the _total/_ns suffixes reserved for counters and histograms", name)
			}
		}
		checkMetricContract(pass, call, kind, name)
	}
	// Labels are key/value pairs; a slice spread is opaque to this check.
	if call.Ellipsis.IsValid() {
		return
	}
	if nlabels := len(call.Args) - 1; nlabels%2 != 0 {
		pass.Reportf(call.Args[1].Pos(),
			"odd label count %d in %s registration; labels are key/value pairs", nlabels, kind)
	}
}

// checkMetricContract enforces the pinned kind and label-key set of the
// contract series. Label values may be dynamic; the keys (even argument
// positions) must be constants to be checkable — a spread or non-constant
// key leaves the site unchecked rather than misreported.
func checkMetricContract(pass *Pass, call *ast.CallExpr, kind, name string) {
	c, ok := metricContracts[name]
	if !ok {
		return
	}
	if kind != c.kind {
		pass.Reportf(call.Fun.Pos(),
			"%s is pinned as a %s by the serving/bench contract, not a %s",
			name, strings.ToLower(c.kind), strings.ToLower(kind))
	}
	if call.Ellipsis.IsValid() || (len(call.Args)-1)%2 != 0 {
		return
	}
	var keys []string
	for i := 1; i < len(call.Args); i += 2 {
		k, kok := stringConst(pass.Info, call.Args[i])
		if !kok {
			return
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := append([]string(nil), c.labels...)
	if !equalStrings(keys, want) {
		pass.Reportf(call.Fun.Pos(),
			"%s must carry exactly the label keys %s (got %s)",
			name, labelSet(want), labelSet(keys))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func labelSet(keys []string) string {
	if len(keys) == 0 {
		return "{}"
	}
	return fmt.Sprintf("{%s}", strings.Join(keys, ", "))
}
