package analysis

import (
	"path/filepath"
	"testing"
)

// TestSuiteCleanOnTree is the local mirror of the CI vebovet gate: the
// full analyzer suite must come back empty over every package in the
// module (tests included). A finding here means either a real contract
// violation to fix or a rule that needs narrowing — never a suppression.
func TestSuiteCleanOnTree(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing module paths", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.Path, terr)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	diags, err := Run(pkgs, All(), l.Ann)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
