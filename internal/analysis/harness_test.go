package analysis

// An analysistest-style harness: each testdata package seeds violations
// annotated with `// want "regex"` trailing comments; the test fails on
// any unmatched want or unexpected diagnostic. The fixed/ variants hold
// the canonical fixes and must come back clean.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestAtomicfield(t *testing.T) { runWant(t, Atomicfield, "atomicfield") }
func TestFrozenwrite(t *testing.T) { runWant(t, Frozenwrite, "frozenwrite") }
func TestLockedfield(t *testing.T) { runWant(t, Lockedfield, "lockedfield") }
func TestObshandle(t *testing.T)   { runWant(t, Obshandle, "obshandle") }

func runWant(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	for _, variant := range []string{"a", "fixed"} {
		t.Run(variant, func(t *testing.T) {
			checkDir(t, a, filepath.Join(name, variant))
		})
	}
}

func checkDir(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", filepath.FromSlash(rel))
	pkgs, err := l.LoadDir(dir, "test/"+strings.ReplaceAll(rel, string(filepath.Separator), "/"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("type error in %s: %v", pkg.Path, terr)
		}
	}
	diags, err := Run(pkgs, []*Analyzer{a}, l.Ann)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		rest := wants[key][:0]
		for _, re := range wants[key] {
			if !matched && re.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, re)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("missing diagnostic at %s matching %q", key, re)
		}
	}
}

var wantTokenRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, pkgs []*Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantTokenRE.FindAllStringSubmatch(rest, -1) {
						expr := m[1]
						if expr == "" {
							expr = m[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, expr, err)
						}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}
	return wants
}
