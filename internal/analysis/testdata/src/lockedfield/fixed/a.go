// The canonical fix for lockedfield/a: every guarded access takes the
// right mutex on the right instance, and writes upgrade to Lock.
package fixed

import "sync"

type table struct {
	mu sync.RWMutex
	//vebo:guardedby mu
	m map[string]int
	//vebo:guardedby mu
	seq int
}

func newTable() *table {
	t := &table{m: map[string]int{}}
	t.seq = 1
	return t
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.seq++
	t.mu.Unlock()
}

func (t *table) racyGet(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) racyPut(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

func (t *table) leak() {
	go func() {
		t.mu.Lock()
		t.seq++
		t.mu.Unlock()
	}()
}

func (t *table) wrongInstance(u *table) int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.m["k"]
}
