// Seeded violations for the lockedfield analyzer: m and seq are
// //vebo:guardedby mu, mirroring the allocator's ID maps and the trace
// ring.
package a

import "sync"

type table struct {
	mu sync.RWMutex
	//vebo:guardedby mu
	m map[string]int
	//vebo:guardedby mu
	seq int
}

func newTable() *table {
	t := &table{m: map[string]int{}}
	t.seq = 1 // builder: the value is unpublished here
	return t
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.seq++
	t.mu.Unlock()
}

func (t *table) sorted() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.m))
	for k := range t.m {
		out = append(out, k)
	}
	return out
}

func (t *table) racyGet(k string) int {
	return t.m[k] // want `access to table\.m without holding t\.mu`
}

func (t *table) racyPut(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = v // want `write to table\.m with mu held in read mode`
}

func (t *table) leak() {
	t.mu.Lock()
	go func() {
		t.seq++ // want `access to table\.seq without holding t\.mu`
	}()
	t.mu.Unlock()
}

func (t *table) wrongInstance(u *table) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return u.m["k"] // want `access to table\.m without holding u\.mu`
}
