// Seeded violations for the frozenwrite analyzer: capture and lazy are
// //vebo:frozen, so mutation is legal only in builders, allow-listed
// helpers, and once-guarded lazy initializers.
package a

import "sync"

// capture stands in for an epoch snapshot shared across goroutines.
//
//vebo:frozen allow=scrub
type capture struct {
	n    int
	rows []int
	meta map[string]int
}

func build(n int) *capture {
	c := &capture{n: n, rows: make([]int, n+2), meta: map[string]int{}}
	c.rows[0] = 1 // builder: construction before publication
	c.meta["a"] = 1
	return c
}

func scrub(c *capture) {
	c.rows[0] = 0 // allow-listed by the annotation
}

func taint(c *capture) {
	c.n = 2                    // want `write to field n of frozen type capture`
	c.rows[1] = 9              // want `mutation through field rows aliases data of frozen type capture`
	delete(c.meta, "a")        // want `mutation through field meta aliases data of frozen type capture`
	c.rows = append(c.rows, 3) // want `write to field rows of frozen type capture`
}

//vebo:frozen
type lazy struct {
	once sync.Once
	val  []int
}

func (l *lazy) get() []int {
	l.once.Do(func() { l.val = []int{1} }) // once-guarded lazy build
	return l.val
}

func (l *lazy) poke() {
	l.val = nil // want `write to field val of frozen type lazy`
}
