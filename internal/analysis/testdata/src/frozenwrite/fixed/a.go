// The canonical fix for frozenwrite/a: mutation happens only in builders
// (taint became a copy-on-write builder returning the modified capture),
// matching how repair epochs copy the ordering before permuting it.
package fixed

import "sync"

//vebo:frozen allow=scrub
type capture struct {
	n    int
	rows []int
	meta map[string]int
}

func build(n int) *capture {
	c := &capture{n: n, rows: make([]int, n+2), meta: map[string]int{}}
	c.rows[0] = 1
	c.meta["a"] = 1
	return c
}

func scrub(c *capture) {
	c.rows[0] = 0
}

func taint(c *capture) *capture {
	next := &capture{n: 2, rows: make([]int, len(c.rows), len(c.rows)+1), meta: map[string]int{}}
	copy(next.rows, c.rows)
	next.rows[1] = 9
	next.rows = append(next.rows, 3)
	for k, v := range c.meta {
		if k != "a" {
			next.meta[k] = v
		}
	}
	return next
}

//vebo:frozen
type lazy struct {
	once sync.Once
	val  []int
}

func (l *lazy) get() []int {
	l.once.Do(func() { l.val = []int{1} })
	return l.val
}
