// Seeded violations for the atomicfield analyzer: hits is published through
// sync/atomic in bump, so every other access must be atomic too.
package a

import "sync/atomic"

type counterSet struct {
	hits  int64
	other int64
}

func newCounterSet() *counterSet {
	c := &counterSet{}
	c.hits = 1 // builder: the value is unpublished here
	return c
}

func (c *counterSet) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counterSet) read() int64 {
	return c.hits // want `non-atomic access of counterSet\.hits`
}

func (c *counterSet) reset() {
	c.hits = 0 // want `non-atomic access of counterSet\.hits`
}

func (c *counterSet) plain() int64 {
	return c.other // never touched atomically; plain access is fine
}

type gauges struct {
	cur atomic.Int64
}

func (g *gauges) ok() int64 { return g.cur.Load() }

func (g *gauges) ref() *atomic.Int64 { return &g.cur }

func snapshot(g *gauges) atomic.Int64 {
	return g.cur // want `copied by value`
}
