// The canonical fix for atomicfield/a: every access to hits goes through
// sync/atomic, and the atomic value is read through its methods instead of
// being copied.
package fixed

import "sync/atomic"

type counterSet struct {
	hits  int64
	other int64
}

func newCounterSet() *counterSet {
	c := &counterSet{}
	c.hits = 1
	return c
}

func (c *counterSet) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counterSet) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counterSet) reset() {
	atomic.StoreInt64(&c.hits, 0)
}

func (c *counterSet) plain() int64 {
	return c.other
}

type gauges struct {
	cur atomic.Int64
}

func (g *gauges) ok() int64 { return g.cur.Load() }

func snapshot(g *gauges) int64 {
	return g.cur.Load()
}
