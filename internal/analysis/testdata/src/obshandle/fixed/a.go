// The canonical fix for obshandle/a: handles come from the nil-safe
// constructors and names follow the vebo_* vocabulary.
package fixed

import "repro/internal/obs"

func handles() (*obs.Registry, *obs.Tracer) {
	return obs.NewRegistry(), obs.NewTracer(0)
}

func names(r *obs.Registry) {
	r.Counter("vebo_requests_total")
	r.Counter("vebo_requests_total", "op", "insert")
	r.Histogram("vebo_lat_ns")
	r.Gauge("vebo_live_edges")
}
