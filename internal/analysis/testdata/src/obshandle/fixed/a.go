// The canonical fix for obshandle/a: handles come from the nil-safe
// constructors, names follow the vebo_*/go_* vocabulary, and the
// contract series keep their pinned kind and label shape.
package fixed

import "repro/internal/obs"

func handles() (*obs.Registry, *obs.Tracer, *obs.Spans, *obs.ActiveSpan) {
	s := obs.NewSpans(0)
	return obs.NewRegistry(), obs.NewTracer(0), s, s.Start("batch", "ingest", 0, obs.SpanContext{})
}

func names(r *obs.Registry) {
	r.Counter("vebo_requests_total")
	r.Counter("vebo_requests_total", "op", "insert")
	r.Histogram("vebo_lat_ns")
	r.Gauge("vebo_live_edges")
	r.Gauge("go_goroutines")
}

func contracts(r *obs.Registry) {
	r.Histogram("vebo_epoch_age_ns")
	r.Histogram("vebo_publish_lag_ns")
	r.Gauge("vebo_delta_backlog")
	r.Histogram("vebo_query_ns", "alg", "pagerank", "sys", "polymer")
}
