// Seeded violations for the obshandle analyzer: raw handle literals and
// off-vocabulary metric names.
package a

import "repro/internal/obs"

func handles() (*obs.Registry, obs.Tracer) {
	r := &obs.Registry{} // want `raw obs\.Registry literal`
	t := obs.Tracer{}    // want `raw obs\.Tracer literal`
	return r, t
}

func names(r *obs.Registry) {
	r.Counter("requests_total")            // want `metric name "requests_total" outside the canonical vocabulary`
	r.Counter("vebo_requests")             // want `counter "vebo_requests" must end in _total`
	r.Histogram("vebo_lat_ms")             // want `histogram "vebo_lat_ms" must end in _ns`
	r.Gauge("vebo_live_ns")                // want `gauge "vebo_live_ns" must not use`
	r.Counter("vebo_requests_total", "op") // want `odd label count 1`
}

func canonical(r *obs.Registry) {
	r.Counter("vebo_requests_total", "op", "insert").Inc()
	r.Gauge("vebo_epoch").Set(3)
	r.Histogram("vebo_query_ns", "alg", "bfs").Observe(10)
}
