// Seeded violations for the obshandle analyzer: raw handle literals,
// off-vocabulary metric names and contract-series shape mismatches.
package a

import "repro/internal/obs"

func handles() (*obs.Registry, obs.Tracer) {
	r := &obs.Registry{} // want `raw obs\.Registry literal`
	t := obs.Tracer{}    // want `raw obs\.Tracer literal`
	return r, t
}

func spanHandles() (*obs.Spans, *obs.ActiveSpan) {
	s := &obs.Spans{}     // want `raw obs\.Spans literal bypasses the nil-safe constructors; use obs\.NewSpans`
	a := obs.ActiveSpan{} // want `raw obs\.ActiveSpan literal bypasses the nil-safe constructors; use obs\.NewSpans plus Spans\.Start`
	return s, &a
}

func names(r *obs.Registry) {
	r.Counter("requests_total")            // want `metric name "requests_total" outside the canonical vocabulary`
	r.Counter("vebo_requests")             // want `counter "vebo_requests" must end in _total`
	r.Histogram("vebo_lat_ms")             // want `histogram "vebo_lat_ms" must end in _ns`
	r.Gauge("vebo_live_ns")                // want `gauge "vebo_live_ns" must not use`
	r.Counter("vebo_requests_total", "op") // want `odd label count 1`
	r.Gauge("rust_goroutines")             // want `metric name "rust_goroutines" outside the canonical vocabulary`
}

func contracts(r *obs.Registry) {
	r.Gauge("vebo_epoch_age_ns")                        // want `vebo_epoch_age_ns is pinned as a histogram by the serving/bench contract, not a gauge` `gauge "vebo_epoch_age_ns" must not use`
	r.Histogram("vebo_delta_backlog")                   // want `vebo_delta_backlog is pinned as a gauge by the serving/bench contract, not a histogram` `histogram "vebo_delta_backlog" must end in _ns`
	r.Histogram("vebo_query_ns", "alg", "bfs")          // want `vebo_query_ns must carry exactly the label keys \{alg, sys\} \(got \{alg\}\)`
	r.Histogram("vebo_publish_lag_ns", "sys", "x")      // want `vebo_publish_lag_ns must carry exactly the label keys \{\} \(got \{sys\}\)`
	r.Histogram("vebo_query_ns", "sys", "l", "op", "q") // want `vebo_query_ns must carry exactly the label keys \{alg, sys\} \(got \{op, sys\}\)`
}

func canonical(r *obs.Registry) {
	r.Counter("vebo_requests_total", "op", "insert").Inc()
	r.Gauge("vebo_epoch").Set(3)
	r.Gauge("go_goroutines").Set(8)
	r.Histogram("vebo_query_ns", "alg", "bfs", "sys", "ligra").Observe(10)
	r.Histogram("vebo_epoch_age_ns").Observe(10)
	r.Histogram("vebo_publish_lag_ns").Observe(10)
	r.Gauge("vebo_delta_backlog").Set(2)
}
