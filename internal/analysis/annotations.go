package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// Annotations is the module-wide index of //vebo:* source directives.
//
// Two directives exist (DESIGN.md §7):
//
//	//vebo:frozen [allow=f,g]
//	    On a type declaration: values of the type are immutable outside
//	    builder functions (functions whose signature returns the type) and
//	    the optional comma-separated allow list of same-package functions.
//	//vebo:guardedby <mutexField>
//	    On a struct field: the field may only be accessed while the named
//	    sibling mutex field is held.
//
// The index is populated from the syntax of every package a Pass analyzes,
// and lazily from parse-only scans of other module packages when an
// analyzer asks about a type defined elsewhere (annotations never need type
// information to read, so a comment-level parse is enough).
type Annotations struct {
	modRoot string // module root directory ("" disables cross-package scans)
	modPath string // module import path, e.g. "repro"

	scanned map[string]bool       // package import paths already indexed
	frozen  map[string]frozenInfo // "pkgpath.Type" -> info
	guarded map[string]string     // "pkgpath.Type.field" -> mutex field name
}

type frozenInfo struct {
	allow map[string]bool // extra same-package functions allowed to mutate
}

// NewAnnotations returns an empty index rooted at the module. modRoot may
// be "" when cross-package lazy scanning is unavailable (unit tests on
// synthetic ASTs).
func NewAnnotations(modRoot, modPath string) *Annotations {
	return &Annotations{
		modRoot: modRoot,
		modPath: modPath,
		scanned: make(map[string]bool),
		frozen:  make(map[string]frozenInfo),
		guarded: make(map[string]string),
	}
}

// AddFile indexes every //vebo:* directive in f, attributing the
// annotated types to package pkgPath.
func (a *Annotations) AddFile(pkgPath string, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			doc := ts.Doc
			if doc == nil && len(gd.Specs) == 1 {
				doc = gd.Doc
			}
			for _, line := range directiveLines(doc, ts.Comment) {
				if rest, ok := strings.CutPrefix(line, "vebo:frozen"); ok {
					a.frozen[pkgPath+"."+ts.Name.Name] = parseFrozen(rest)
				}
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, fl := range st.Fields.List {
				for _, line := range directiveLines(fl.Doc, fl.Comment) {
					rest, ok := strings.CutPrefix(line, "vebo:guardedby")
					if !ok {
						continue
					}
					mu := strings.TrimSpace(rest)
					if mu == "" {
						continue
					}
					for _, name := range fl.Names {
						a.guarded[pkgPath+"."+ts.Name.Name+"."+name.Name] = mu
					}
				}
			}
		}
	}
}

// Frozen reports whether the named type carries //vebo:frozen, and if so
// which extra functions its allow list names.
func (a *Annotations) Frozen(pkgPath, typeName string) (frozenInfo, bool) {
	a.ensure(pkgPath)
	fi, ok := a.frozen[pkgPath+"."+typeName]
	return fi, ok
}

// GuardedBy returns the mutex field guarding pkgPath.Type.field, if the
// field carries //vebo:guardedby.
func (a *Annotations) GuardedBy(pkgPath, typeName, field string) (string, bool) {
	a.ensure(pkgPath)
	mu, ok := a.guarded[pkgPath+"."+typeName+"."+field]
	return mu, ok
}

// ensure lazily indexes a module-internal package the current Pass did not
// load, by parsing its sources for comments only.
func (a *Annotations) ensure(pkgPath string) {
	if a.scanned[pkgPath] || a.modRoot == "" {
		return
	}
	a.scanned[pkgPath] = true
	rel, ok := strings.CutPrefix(pkgPath, a.modPath)
	if !ok {
		return // not this module; nothing to scan
	}
	dir := filepath.Join(a.modRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		a.AddFile(pkgPath, f)
	}
}

// MarkScanned records that pkgPath's syntax has already been fed to
// AddFile, so ensure will not re-parse it from disk.
func (a *Annotations) MarkScanned(pkgPath string) { a.scanned[pkgPath] = true }

// directiveLines extracts the "vebo:..." payload of directive comments
// ("//vebo:frozen", tolerating a space after "//") from the given groups.
func directiveLines(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if strings.HasPrefix(text, "vebo:") {
				out = append(out, text)
			}
		}
	}
	return out
}

func parseFrozen(rest string) frozenInfo {
	fi := frozenInfo{allow: make(map[string]bool)}
	for _, tok := range strings.Fields(rest) {
		if names, ok := strings.CutPrefix(tok, "allow="); ok {
			for _, n := range strings.Split(names, ",") {
				if n = strings.TrimSpace(n); n != "" {
					fi.allow[n] = true
				}
			}
		}
	}
	return fi
}
