// Package numa models the NUMA topology of the paper's evaluation machine
// (a 4-socket Xeon E7-4860 v2, 48 threads) in software. The reproduction
// cannot pin memory pages to physical sockets, but the properties the paper
// exploits are software-visible: which logical socket owns a partition's
// data, which logical thread executes it, and whether an access is
// socket-local or remote. The memsim package consumes this classification to
// reproduce the paper's local/remote LLC statistics.
package numa

import "fmt"

// Topology describes a virtual NUMA machine.
type Topology struct {
	Sockets          int
	ThreadsPerSocket int
}

// Default returns the paper's evaluation machine: 4 sockets × 12 threads.
func Default() Topology {
	return Topology{Sockets: 4, ThreadsPerSocket: 12}
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.Sockets <= 0 || t.ThreadsPerSocket <= 0 {
		return fmt.Errorf("numa: invalid topology %+v", t)
	}
	return nil
}

// Threads returns the total logical thread count.
func (t Topology) Threads() int { return t.Sockets * t.ThreadsPerSocket }

// SocketOfThread returns the socket on which logical thread tid runs.
// Threads are numbered socket-major: threads [s*TPS, (s+1)*TPS) live on
// socket s, matching the paper's "thread t executes partitions 8t..8t+7"
// mapping.
func (t Topology) SocketOfThread(tid int) int {
	return tid / t.ThreadsPerSocket
}

// SocketOfPartition returns the home socket of partition p when
// numPartitions partitions are distributed blockwise over sockets, as
// Polymer and GraphGrind do.
func (t Topology) SocketOfPartition(p, numPartitions int) int {
	if numPartitions <= 0 {
		return 0
	}
	per := (numPartitions + t.Sockets - 1) / t.Sockets
	s := p / per
	if s >= t.Sockets {
		s = t.Sockets - 1
	}
	return s
}

// PartitionRangeOfSocket returns the partitions [lo, hi) homed on socket s.
func (t Topology) PartitionRangeOfSocket(s, numPartitions int) (lo, hi int) {
	per := (numPartitions + t.Sockets - 1) / t.Sockets
	lo = s * per
	hi = lo + per
	if lo > numPartitions {
		lo = numPartitions
	}
	if hi > numPartitions {
		hi = numPartitions
	}
	return lo, hi
}

// ThreadsOfSocket returns the logical thread IDs [lo, hi) on socket s.
func (t Topology) ThreadsOfSocket(s int) (lo, hi int) {
	return s * t.ThreadsPerSocket, (s + 1) * t.ThreadsPerSocket
}

// HomeOfVertex returns the socket owning destination-vertex data for v,
// given the partition boundaries in the (reordered) ID space. bounds has
// P+1 entries. Vertex data is homed with its partition.
func (t Topology) HomeOfVertex(v int64, bounds []int64) int {
	// binary search for the partition containing v
	lo, hi := 0, len(bounds)-2
	for lo < hi {
		mid := (lo + hi) / 2
		if v >= bounds[mid+1] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return t.SocketOfPartition(lo, len(bounds)-1)
}
