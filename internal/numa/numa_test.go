package numa

import "testing"

func TestDefaultTopology(t *testing.T) {
	top := Default()
	if top.Sockets != 4 || top.ThreadsPerSocket != 12 {
		t.Fatalf("Default() = %+v, want 4x12", top)
	}
	if top.Threads() != 48 {
		t.Fatalf("Threads() = %d, want 48", top.Threads())
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Topology{Sockets: 0, ThreadsPerSocket: 1}).Validate(); err == nil {
		t.Error("expected error for 0 sockets")
	}
	if err := (Topology{Sockets: 2, ThreadsPerSocket: -1}).Validate(); err == nil {
		t.Error("expected error for negative threads")
	}
}

func TestSocketOfThread(t *testing.T) {
	top := Default()
	cases := []struct{ tid, want int }{
		{0, 0}, {11, 0}, {12, 1}, {23, 1}, {24, 2}, {47, 3},
	}
	for _, c := range cases {
		if got := top.SocketOfThread(c.tid); got != c.want {
			t.Errorf("SocketOfThread(%d) = %d, want %d", c.tid, got, c.want)
		}
	}
}

func TestSocketOfPartition(t *testing.T) {
	top := Default()
	// 384 partitions over 4 sockets: 96 per socket.
	if got := top.SocketOfPartition(0, 384); got != 0 {
		t.Errorf("partition 0 -> socket %d", got)
	}
	if got := top.SocketOfPartition(95, 384); got != 0 {
		t.Errorf("partition 95 -> socket %d", got)
	}
	if got := top.SocketOfPartition(96, 384); got != 1 {
		t.Errorf("partition 96 -> socket %d", got)
	}
	if got := top.SocketOfPartition(383, 384); got != 3 {
		t.Errorf("partition 383 -> socket %d", got)
	}
	// degenerate: fewer partitions than sockets
	if got := top.SocketOfPartition(1, 2); got < 0 || got >= 4 {
		t.Errorf("partition 1 of 2 -> socket %d", got)
	}
	if got := top.SocketOfPartition(0, 0); got != 0 {
		t.Errorf("empty partitioning -> socket %d", got)
	}
}

func TestPartitionRangeOfSocketTilesAll(t *testing.T) {
	top := Default()
	for _, np := range []int{1, 3, 4, 48, 384, 385} {
		covered := 0
		prevHi := 0
		for s := 0; s < top.Sockets; s++ {
			lo, hi := top.PartitionRangeOfSocket(s, np)
			if lo != prevHi {
				t.Fatalf("np=%d socket %d: lo=%d, want %d", np, s, lo, prevHi)
			}
			for p := lo; p < hi; p++ {
				if top.SocketOfPartition(p, np) != s {
					t.Fatalf("np=%d: partition %d not homed on socket %d", np, p, s)
				}
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != np {
			t.Fatalf("np=%d: covered %d partitions", np, covered)
		}
	}
}

func TestThreadsOfSocket(t *testing.T) {
	top := Default()
	lo, hi := top.ThreadsOfSocket(2)
	if lo != 24 || hi != 36 {
		t.Errorf("ThreadsOfSocket(2) = [%d,%d), want [24,36)", lo, hi)
	}
}

func TestHomeOfVertex(t *testing.T) {
	top := Topology{Sockets: 2, ThreadsPerSocket: 2}
	bounds := []int64{0, 10, 20, 30, 40} // 4 partitions
	// partitions 0,1 -> socket 0; partitions 2,3 -> socket 1
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {9, 0}, {10, 0}, {19, 0}, {20, 1}, {39, 1},
	}
	for _, c := range cases {
		if got := top.HomeOfVertex(c.v, bounds); got != c.want {
			t.Errorf("HomeOfVertex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}
