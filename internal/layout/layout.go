// Package layout materializes COO (coordinate-format) edge arrays in the
// traversal orders studied in Section V-G of the paper: CSR order (edges
// sorted by source vertex), CSC/destination order, and Hilbert space-filling
// curve order. GraphGrind-style engines traverse the COO directly for dense
// frontiers, so the edge order determines the memory-access pattern.
package layout

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/hilbert"
)

// Order selects a COO edge ordering.
type Order int

const (
	// CSROrder sorts edges by (source, destination): the traversal order of
	// a CSR walk by increasing source ID.
	CSROrder Order = iota
	// CSCOrder sorts edges by (destination, source): the traversal order of
	// a CSC walk by increasing destination ID.
	CSCOrder
	// HilbertOrder sorts edges by their position along the Hilbert curve
	// over the (source, destination) grid.
	HilbertOrder
)

func (o Order) String() string {
	switch o {
	case CSROrder:
		return "csr"
	case CSCOrder:
		return "csc"
	case HilbertOrder:
		return "hilbert"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// COO is a coordinate-format edge list with parallel arrays.
type COO struct {
	Src, Dst []graph.VertexID
	Weight   []int32
	Ordering Order

	keys []uint64 // scratch Hilbert keys, non-nil only during sorting
}

// Len returns the number of edges.
func (c *COO) Len() int { return len(c.Src) }

// Build materializes g's edges as a COO in the requested order.
func Build(g *graph.Graph, o Order) (*COO, error) {
	m := int(g.NumEdges())
	c := &COO{
		Src:      make([]graph.VertexID, 0, m),
		Dst:      make([]graph.VertexID, 0, m),
		Weight:   make([]int32, 0, m),
		Ordering: o,
	}
	// Start from CSC order (destination-major) since engines partition by
	// destination; re-sort as requested.
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.InWeights(graph.VertexID(v))
		for i, s := range g.InNeighbors(graph.VertexID(v)) {
			c.Src = append(c.Src, s)
			c.Dst = append(c.Dst, graph.VertexID(v))
			c.Weight = append(c.Weight, ws[i])
		}
	}
	switch o {
	case CSCOrder:
		// already destination-major with ascending sources within a
		// destination
	case CSROrder:
		c.sortBy(func(i, j int) bool {
			if c.Src[i] != c.Src[j] {
				return c.Src[i] < c.Src[j]
			}
			return c.Dst[i] < c.Dst[j]
		})
	case HilbertOrder:
		k := hilbert.OrderFor(g.NumVertices())
		keys := make([]uint64, m)
		for i := range keys {
			keys[i] = hilbert.XY2D(k, uint32(c.Src[i]), uint32(c.Dst[i]))
		}
		c.keys = keys
		c.sortBy(func(i, j int) bool { return keys[i] < keys[j] })
		c.keys = nil
	default:
		return nil, fmt.Errorf("layout: unknown order %v", o)
	}
	return c, nil
}

// BuildRange materializes the in-edges of the destination range [lo, hi) in
// the requested order. GraphGrind builds one COO per partition.
func BuildRange(g *graph.Graph, lo, hi graph.VertexID, o Order) (*COO, error) {
	if lo > hi || int(hi) > g.NumVertices() {
		return nil, fmt.Errorf("layout: invalid range [%d,%d)", lo, hi)
	}
	c := &COO{Ordering: o}
	for v := lo; v < hi; v++ {
		ws := g.InWeights(v)
		for i, s := range g.InNeighbors(v) {
			c.Src = append(c.Src, s)
			c.Dst = append(c.Dst, v)
			c.Weight = append(c.Weight, ws[i])
		}
	}
	switch o {
	case CSCOrder:
	case CSROrder:
		c.sortBy(func(i, j int) bool {
			if c.Src[i] != c.Src[j] {
				return c.Src[i] < c.Src[j]
			}
			return c.Dst[i] < c.Dst[j]
		})
	case HilbertOrder:
		k := hilbert.OrderFor(g.NumVertices())
		keys := make([]uint64, c.Len())
		for i := range keys {
			keys[i] = hilbert.XY2D(k, uint32(c.Src[i]), uint32(c.Dst[i]))
		}
		c.keys = keys
		c.sortBy(func(i, j int) bool { return keys[i] < keys[j] })
		c.keys = nil
	default:
		return nil, fmt.Errorf("layout: unknown order %v", o)
	}
	return c, nil
}

type cooSorter struct {
	c    *COO
	less func(i, j int) bool
}

func (s cooSorter) Len() int           { return s.c.Len() }
func (s cooSorter) Less(i, j int) bool { return s.less(i, j) }
func (s cooSorter) Swap(i, j int) {
	c := s.c
	c.Src[i], c.Src[j] = c.Src[j], c.Src[i]
	c.Dst[i], c.Dst[j] = c.Dst[j], c.Dst[i]
	c.Weight[i], c.Weight[j] = c.Weight[j], c.Weight[i]
	if c.keys != nil {
		c.keys[i], c.keys[j] = c.keys[j], c.keys[i]
	}
}

// keys is scratch space used while sorting by Hilbert index.
// It is nil outside Build/BuildRange.
func (c *COO) sortBy(less func(i, j int) bool) {
	sort.Stable(cooSorter{c: c, less: less})
}
