package layout

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hilbert"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 300, S: 1.0, MaxDegree: 40, Seed: 8, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// edgeMultiset counts (src,dst,w) triples.
func edgeMultiset(c *COO) map[[3]int64]int {
	m := make(map[[3]int64]int)
	for i := 0; i < c.Len(); i++ {
		m[[3]int64{int64(c.Src[i]), int64(c.Dst[i]), int64(c.Weight[i])}]++
	}
	return m
}

func TestBuildPreservesEdgeMultiset(t *testing.T) {
	g := testGraph(t)
	var ref map[[3]int64]int
	for _, o := range []Order{CSROrder, CSCOrder, HilbertOrder} {
		c, err := Build(g, o)
		if err != nil {
			t.Fatalf("Build(%v): %v", o, err)
		}
		if int64(c.Len()) != g.NumEdges() {
			t.Fatalf("%v: %d edges, want %d", o, c.Len(), g.NumEdges())
		}
		ms := edgeMultiset(c)
		if ref == nil {
			ref = ms
			continue
		}
		if len(ms) != len(ref) {
			t.Fatalf("%v: edge multiset size differs", o)
		}
		for k, v := range ref {
			if ms[k] != v {
				t.Fatalf("%v: edge %v count %d, want %d", o, k, ms[k], v)
			}
		}
	}
}

func TestCSROrderSorted(t *testing.T) {
	g := testGraph(t)
	c, err := Build(g, CSROrder)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < c.Len(); i++ {
		if c.Src[i-1] > c.Src[i] ||
			(c.Src[i-1] == c.Src[i] && c.Dst[i-1] > c.Dst[i]) {
			t.Fatalf("CSR order violated at %d: (%d,%d) > (%d,%d)",
				i, c.Src[i-1], c.Dst[i-1], c.Src[i], c.Dst[i])
		}
	}
}

func TestCSCOrderSorted(t *testing.T) {
	g := testGraph(t)
	c, err := Build(g, CSCOrder)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < c.Len(); i++ {
		if c.Dst[i-1] > c.Dst[i] {
			t.Fatalf("CSC order violated at %d", i)
		}
	}
}

func TestHilbertOrderSortedByCurveIndex(t *testing.T) {
	g := testGraph(t)
	c, err := Build(g, HilbertOrder)
	if err != nil {
		t.Fatal(err)
	}
	k := hilbert.OrderFor(g.NumVertices())
	var prev uint64
	for i := 0; i < c.Len(); i++ {
		d := hilbert.XY2D(k, uint32(c.Src[i]), uint32(c.Dst[i]))
		if i > 0 && d < prev {
			t.Fatalf("Hilbert order violated at %d: %d < %d", i, d, prev)
		}
		prev = d
	}
}

func TestBuildRange(t *testing.T) {
	g := testGraph(t)
	lo, hi := graph.VertexID(50), graph.VertexID(120)
	c, err := BuildRange(g, lo, hi, CSROrder)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for v := lo; v < hi; v++ {
		want += g.InDegree(v)
	}
	if int64(c.Len()) != want {
		t.Fatalf("range COO has %d edges, want %d", c.Len(), want)
	}
	for i := 0; i < c.Len(); i++ {
		if c.Dst[i] < lo || c.Dst[i] >= hi {
			t.Fatalf("edge %d destination %d outside [%d,%d)", i, c.Dst[i], lo, hi)
		}
	}
}

func TestBuildRangeInvalid(t *testing.T) {
	g := testGraph(t)
	if _, err := BuildRange(g, 10, 5, CSROrder); err == nil {
		t.Error("expected error for reversed range")
	}
	if _, err := BuildRange(g, 0, graph.VertexID(g.NumVertices()+5), CSROrder); err == nil {
		t.Error("expected error for out-of-range hi")
	}
}

func TestBuildRangeWholeGraphMatchesBuild(t *testing.T) {
	g := testGraph(t)
	a, err := Build(g, HilbertOrder)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRange(g, 0, graph.VertexID(g.NumVertices()), HilbertOrder)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Src[i] != b.Src[i] || a.Dst[i] != b.Dst[i] {
			t.Fatalf("edge %d differs: (%d,%d) vs (%d,%d)",
				i, a.Src[i], a.Dst[i], b.Src[i], b.Dst[i])
		}
	}
}

func TestOrderString(t *testing.T) {
	if CSROrder.String() != "csr" || CSCOrder.String() != "csc" || HilbertOrder.String() != "hilbert" {
		t.Error("Order.String labels wrong")
	}
	if Order(99).String() == "" {
		t.Error("unknown order should stringify")
	}
}
