// Package frontier implements the active-vertex sets used by the
// edgemap/vertexmap engines. A frontier is either sparse (an explicit vertex
// list) or dense (a bitmap); engines switch representation with the
// direction-optimization heuristic of Beamer et al., as all three systems in
// the paper do: a frontier is traversed densely (pull) when
// |active vertices| + |active out-edges| exceeds |E|/20.
package frontier

import (
	"repro/internal/graph"
)

// DenseThresholdDenominator is Ligra's direction-reversal constant: dense
// traversal is used when count+outEdges > |E|/20.
const DenseThresholdDenominator = 20

// Frontier is a set of active vertices with cached activity statistics.
type Frontier struct {
	n        int
	isDense  bool
	dense    []bool
	sparse   []graph.VertexID // sorted ascending
	count    int64            // number of active vertices
	outEdges int64            // sum of out-degrees of active vertices
}

// NewEmpty returns an empty frontier over n vertices.
func NewEmpty(n int) *Frontier {
	return &Frontier{n: n}
}

// FromVertex returns a frontier containing only v.
func FromVertex(g *graph.Graph, v graph.VertexID) *Frontier {
	return &Frontier{
		n:        g.NumVertices(),
		sparse:   []graph.VertexID{v},
		count:    1,
		outEdges: g.OutDegree(v),
	}
}

// FromVertices builds a sparse frontier from a sorted, duplicate-free vertex
// list.
func FromVertices(g *graph.Graph, vs []graph.VertexID) *Frontier {
	f := &Frontier{n: g.NumVertices(), sparse: vs, count: int64(len(vs))}
	for _, v := range vs {
		f.outEdges += g.OutDegree(v)
	}
	return f
}

// All returns a dense frontier with every vertex active.
func All(g *graph.Graph) *Frontier {
	n := g.NumVertices()
	d := make([]bool, n)
	for i := range d {
		d[i] = true
	}
	return &Frontier{
		n:        n,
		isDense:  true,
		dense:    d,
		count:    int64(n),
		outEdges: g.NumEdges(),
	}
}

// FromDense builds a frontier from a bitmap, computing activity statistics.
func FromDense(g *graph.Graph, bits []bool) *Frontier {
	f := &Frontier{n: g.NumVertices(), isDense: true, dense: bits}
	for v, b := range bits {
		if b {
			f.count++
			f.outEdges += g.OutDegree(graph.VertexID(v))
		}
	}
	return f
}

// NumVertices returns the size of the vertex universe.
func (f *Frontier) NumVertices() int { return f.n }

// Count returns the number of active vertices.
func (f *Frontier) Count() int64 { return f.count }

// OutEdges returns the number of out-edges of active vertices.
func (f *Frontier) OutEdges() int64 { return f.outEdges }

// IsEmpty reports whether no vertex is active.
func (f *Frontier) IsEmpty() bool { return f.count == 0 }

// IsDense reports the current representation.
func (f *Frontier) IsDense() bool { return f.isDense }

// ShouldBeDense applies the direction-optimization heuristic given the
// graph's total edge count.
func (f *Frontier) ShouldBeDense(totalEdges int64) bool {
	return f.count+f.outEdges > totalEdges/DenseThresholdDenominator
}

// Has reports whether v is active. Works on both representations; on a
// sparse frontier it binary-searches the sorted list.
func (f *Frontier) Has(v graph.VertexID) bool {
	if f.isDense {
		return f.dense[v]
	}
	lo, hi := 0, len(f.sparse)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.sparse[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(f.sparse) && f.sparse[lo] == v
}

// Dense returns the bitmap view, converting if necessary.
func (f *Frontier) Dense() []bool {
	if !f.isDense {
		f.dense = make([]bool, f.n)
		for _, v := range f.sparse {
			f.dense[v] = true
		}
		f.isDense = true
		f.sparse = nil
	}
	return f.dense
}

// Sparse returns the sorted active-vertex list, converting if necessary.
func (f *Frontier) Sparse() []graph.VertexID {
	if f.isDense {
		vs := make([]graph.VertexID, 0, f.count)
		for v, b := range f.dense {
			if b {
				vs = append(vs, graph.VertexID(v))
			}
		}
		f.sparse = vs
		f.isDense = false
		f.dense = nil
	}
	return f.sparse
}

// Density returns (count+outEdges)/totalEdges, the paper's frontier-density
// measure.
func Density(f *Frontier, totalEdges int64) float64 {
	if totalEdges == 0 {
		return 0
	}
	return float64(f.count+f.outEdges) / float64(totalEdges)
}
