package frontier

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.ErdosRenyi(100, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	f := NewEmpty(10)
	if !f.IsEmpty() || f.Count() != 0 || f.OutEdges() != 0 {
		t.Fatal("NewEmpty not empty")
	}
	if f.Has(3) {
		t.Fatal("empty frontier claims membership")
	}
}

func TestFromVertex(t *testing.T) {
	g := testGraph(t)
	f := FromVertex(g, 7)
	if f.Count() != 1 || !f.Has(7) || f.Has(8) {
		t.Fatal("FromVertex wrong membership")
	}
	if f.OutEdges() != g.OutDegree(7) {
		t.Fatalf("OutEdges = %d, want %d", f.OutEdges(), g.OutDegree(7))
	}
}

func TestFromVerticesAndHas(t *testing.T) {
	g := testGraph(t)
	vs := []graph.VertexID{3, 17, 42, 99}
	f := FromVertices(g, vs)
	for _, v := range vs {
		if !f.Has(v) {
			t.Fatalf("missing %d", v)
		}
	}
	for _, v := range []graph.VertexID{0, 4, 50, 98} {
		if f.Has(v) {
			t.Fatalf("spurious %d", v)
		}
	}
	var want int64
	for _, v := range vs {
		want += g.OutDegree(v)
	}
	if f.OutEdges() != want {
		t.Fatalf("OutEdges = %d, want %d", f.OutEdges(), want)
	}
}

func TestAll(t *testing.T) {
	g := testGraph(t)
	f := All(g)
	if f.Count() != int64(g.NumVertices()) {
		t.Fatalf("Count = %d", f.Count())
	}
	if f.OutEdges() != g.NumEdges() {
		t.Fatalf("OutEdges = %d", f.OutEdges())
	}
	if !f.IsDense() {
		t.Fatal("All should be dense")
	}
}

func TestConversionRoundTrip(t *testing.T) {
	g := testGraph(t)
	vs := []graph.VertexID{1, 2, 50}
	f := FromVertices(g, vs)
	d := f.Dense()
	if !f.IsDense() {
		t.Fatal("not dense after Dense()")
	}
	for _, v := range vs {
		if !d[v] {
			t.Fatalf("dense bitmap missing %d", v)
		}
	}
	s := f.Sparse()
	if f.IsDense() {
		t.Fatal("still dense after Sparse()")
	}
	if len(s) != 3 || s[0] != 1 || s[1] != 2 || s[2] != 50 {
		t.Fatalf("sparse = %v", s)
	}
	// counts survive conversions
	if f.Count() != 3 {
		t.Fatalf("Count = %d after conversions", f.Count())
	}
}

func TestFromDense(t *testing.T) {
	g := testGraph(t)
	bits := make([]bool, g.NumVertices())
	bits[5], bits[10] = true, true
	f := FromDense(g, bits)
	if f.Count() != 2 {
		t.Fatalf("Count = %d", f.Count())
	}
	if f.OutEdges() != g.OutDegree(5)+g.OutDegree(10) {
		t.Fatalf("OutEdges = %d", f.OutEdges())
	}
}

func TestShouldBeDense(t *testing.T) {
	g := testGraph(t)
	m := g.NumEdges()
	if NewEmpty(g.NumVertices()).ShouldBeDense(m) {
		t.Error("empty frontier should not be dense")
	}
	if !All(g).ShouldBeDense(m) {
		t.Error("full frontier should be dense")
	}
}

func TestDensity(t *testing.T) {
	g := testGraph(t)
	if Density(All(g), g.NumEdges()) <= 1.0 {
		t.Error("full frontier density should exceed 1 (vertices + edges)")
	}
	if Density(NewEmpty(10), 0) != 0 {
		t.Error("zero-edge graph density should be 0")
	}
}
