package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 800, S: 1.0, MaxDegree: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, 2*(n-1))
	for i := 0; i < n-1; i++ {
		edges = append(edges,
			graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)},
			graph.Edge{Src: graph.VertexID(i + 1), Dst: graph.VertexID(i)})
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIdentity(t *testing.T) {
	g := testGraph(t)
	perm := Identity(g)
	for v, p := range perm {
		if int(p) != v {
			t.Fatalf("Identity[%d] = %d", v, p)
		}
	}
}

func TestRandomIsPermutationAndSeeded(t *testing.T) {
	g := testGraph(t)
	a := Random(g, 1)
	b := Random(g, 1)
	c := Random(g, 2)
	if !IsPermutation(a) {
		t.Fatal("Random not a permutation")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Error("same seed gave different permutations")
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds gave identical permutations")
	}
}

func TestDegreeSortOrdersByInDegree(t *testing.T) {
	g := testGraph(t)
	perm := DegreeSort(g)
	if !IsPermutation(perm) {
		t.Fatal("DegreeSort not a permutation")
	}
	// invert: newID -> old
	inv := make([]graph.VertexID, len(perm))
	for old, p := range perm {
		inv[p] = graph.VertexID(old)
	}
	for i := 1; i < len(inv); i++ {
		if g.InDegree(inv[i-1]) < g.InDegree(inv[i]) {
			t.Fatalf("degree order violated at new IDs %d,%d", i-1, i)
		}
	}
}

func TestRCMIsPermutation(t *testing.T) {
	g := testGraph(t)
	perm := RCM(g)
	if !IsPermutation(perm) {
		t.Fatal("RCM not a permutation")
	}
}

// bandwidth computes max |perm[u]-perm[v]| over edges.
func bandwidth(g *graph.Graph, perm []graph.VertexID) int64 {
	var bw int64
	for _, e := range g.Edges() {
		d := int64(perm[e.Src]) - int64(perm[e.Dst])
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	return bw
}

func TestRCMReducesBandwidthOnShuffledPath(t *testing.T) {
	// A path has optimal bandwidth 1. Shuffle it, then RCM must restore a
	// near-optimal bandwidth, far below the shuffled one.
	g := pathGraph(t, 300)
	shuffled, err := g.Relabel(Random(g, 7))
	if err != nil {
		t.Fatal(err)
	}
	before := bandwidth(shuffled, Identity(shuffled))
	perm := RCM(shuffled)
	after := bandwidth(shuffled, perm)
	if after > 3 {
		t.Errorf("RCM bandwidth on path = %d, want <= 3", after)
	}
	if after >= before {
		t.Errorf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// two disjoint triangles + isolated vertices
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
	}
	g, err := graph.FromEdges(8, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPermutation(RCM(g)) {
		t.Fatal("RCM on disconnected graph not a permutation")
	}
}

func TestGorderIsPermutation(t *testing.T) {
	g := testGraph(t)
	perm := Gorder(g, GorderConfig{})
	if !IsPermutation(perm) {
		t.Fatal("Gorder not a permutation")
	}
}

func TestGorderImprovesWindowLocality(t *testing.T) {
	// Gorder maximizes co-access within a sliding window of size w: count
	// the edges whose endpoints land within w of each other. On a graph
	// with real structure (a road grid) Gorder must beat a random order.
	g, err := gen.RoadNetwork(20, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	const w = 5
	windowHits := func(perm []graph.VertexID) int {
		hits := 0
		for _, e := range g.Edges() {
			d := int64(perm[e.Src]) - int64(perm[e.Dst])
			if d < 0 {
				d = -d
			}
			if d <= w {
				hits++
			}
		}
		return hits
	}
	gorder := windowHits(Gorder(g, GorderConfig{Window: w}))
	random := windowHits(Random(g, 3))
	if gorder <= random {
		t.Errorf("Gorder window hits %d not better than random %d", gorder, random)
	}
}

func TestGorderEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if perm := Gorder(g, GorderConfig{}); len(perm) != 0 {
		t.Fatalf("Gorder on empty graph returned %v", perm)
	}
}

func TestGorderDisconnected(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}
	g, err := graph.FromEdges(6, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPermutation(Gorder(g, GorderConfig{Window: 2})) {
		t.Fatal("Gorder on disconnected graph not a permutation")
	}
}

func TestSlashBurnIsPermutation(t *testing.T) {
	g := testGraph(t)
	perm, err := SlashBurn(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPermutation(perm) {
		t.Fatal("SlashBurn not a permutation")
	}
	if _, err := SlashBurn(g, 0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestSlashBurnPutsHubsFirst(t *testing.T) {
	g := testGraph(t)
	perm, err := SlashBurn(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// the global top-3 degree vertices must receive new IDs 0..2
	deg := make([]int64, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		deg[v] = g.InDegree(graph.VertexID(v)) + g.OutDegree(graph.VertexID(v))
	}
	hubs := topKAlive(deg, allTrue(g.NumVertices()), 3)
	for _, h := range hubs {
		if perm[h] > 2 {
			t.Errorf("hub %d (deg %d) got new ID %d, want < 3", h, deg[h], perm[h])
		}
	}
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func TestCompose(t *testing.T) {
	first := []graph.VertexID{1, 2, 0}
	second := []graph.VertexID{2, 0, 1}
	got, err := Compose(first, second)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.VertexID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Compose = %v, want %v", got, want)
		}
	}
	if _, err := Compose(first, second[:2]); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]graph.VertexID{2, 0, 1}) {
		t.Error("valid permutation rejected")
	}
	if IsPermutation([]graph.VertexID{0, 0, 1}) {
		t.Error("duplicate accepted")
	}
	if IsPermutation([]graph.VertexID{0, 1, 7}) {
		t.Error("out-of-range accepted")
	}
}

// Property: every ordering algorithm emits a valid permutation on random
// graphs, and relabelling preserves isomorphism.
func TestAllOrderingsValidQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 2
		g, err := gen.ErdosRenyi(n, int64(rng.Intn(240)), seed)
		if err != nil {
			return false
		}
		perms := [][]graph.VertexID{
			Identity(g),
			Random(g, seed),
			DegreeSort(g),
			RCM(g),
			Gorder(g, GorderConfig{Window: 3}),
		}
		if sb, err := SlashBurn(g, 2); err == nil {
			perms = append(perms, sb)
		} else {
			return false
		}
		for _, p := range perms {
			if !IsPermutation(p) {
				return false
			}
			h, err := g.Relabel(p)
			if err != nil {
				return false
			}
			if !graph.IsIsomorphicUnder(g, h, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
