// Package order implements the vertex-reordering baselines the paper
// compares VEBO against: the original (identity) order, a uniformly random
// permutation, plain degree sorting, Reverse Cuthill-McKee (RCM) and Gorder,
// plus a SlashBurn-style hub ordering as an extension. Every algorithm
// returns a permutation perm with perm[old] = new, the same convention as
// internal/core.
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Identity returns the identity permutation (the paper's "Orig." column).
func Identity(g *graph.Graph) []graph.VertexID {
	perm := make([]graph.VertexID, g.NumVertices())
	for i := range perm {
		perm[i] = graph.VertexID(i)
	}
	return perm
}

// Random returns a uniformly random permutation (Section V-C).
func Random(g *graph.Graph, seed int64) []graph.VertexID {
	rng := rand.New(rand.NewSource(seed))
	perm := make([]graph.VertexID, g.NumVertices())
	for i, p := range rng.Perm(g.NumVertices()) {
		perm[i] = graph.VertexID(p)
	}
	return perm
}

// DegreeSort orders vertices by decreasing in-degree (ties by ascending
// original ID). This is the "high-to-low" order of Section V-G.
func DegreeSort(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	deg := g.InDegrees()
	sort.SliceStable(idx, func(a, b int) bool { return deg[idx[a]] > deg[idx[b]] })
	perm := make([]graph.VertexID, n)
	for newID, old := range idx {
		perm[old] = graph.VertexID(newID)
	}
	return perm
}

// RCM computes the Reverse Cuthill-McKee ordering: a BFS from a low-degree
// peripheral vertex, visiting neighbours in increasing-degree order, with
// the final level order reversed. RCM minimizes matrix bandwidth; the paper
// uses it as a locality-oriented baseline. Directions are ignored (the
// union of in- and out-neighbours is traversed) and disconnected components
// are each seeded from their lowest-degree unvisited vertex.
func RCM(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	// total degree per vertex for seed and neighbour ordering
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = g.InDegree(graph.VertexID(v)) + g.OutDegree(graph.VertexID(v))
	}
	// vertices sorted by degree: candidate seeds
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	sort.SliceStable(seeds, func(a, b int) bool { return deg[seeds[a]] < deg[seeds[b]] })

	visited := make([]bool, n)
	cm := make([]graph.VertexID, 0, n) // Cuthill-McKee visit order
	queue := make([]graph.VertexID, 0, 1024)
	var nbrBuf []graph.VertexID
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], graph.VertexID(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			cm = append(cm, v)
			nbrBuf = nbrBuf[:0]
			nbrBuf = append(nbrBuf, g.OutNeighbors(v)...)
			nbrBuf = append(nbrBuf, g.InNeighbors(v)...)
			sort.Slice(nbrBuf, func(a, b int) bool {
				if deg[nbrBuf[a]] != deg[nbrBuf[b]] {
					return deg[nbrBuf[a]] < deg[nbrBuf[b]]
				}
				return nbrBuf[a] < nbrBuf[b]
			})
			for _, w := range nbrBuf {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	// reverse
	perm := make([]graph.VertexID, n)
	for i, v := range cm {
		perm[v] = graph.VertexID(n - 1 - i)
	}
	return perm
}

// GorderConfig parameterizes Gorder. The zero value uses the paper's
// defaults (window 5, unbounded sibling enumeration).
type GorderConfig struct {
	Window int // sliding window size w; 0 means the Gorder default of 5
	// MaxSiblingDegree caps the sibling pass: in-neighbours with more than
	// this many out-edges are skipped when propagating shared-parent scores
	// (0 = unlimited). Gorder is O(Σ deg_in·deg_out), which explodes on
	// graphs with prolific sources; the cap bounds it at the cost of
	// slightly weaker hub placement. The benchmarks use a cap so that the
	// Table III/VI sweeps finish; the comparison remains conservative since
	// capping only makes Gorder faster.
	MaxSiblingDegree int
}

// Gorder computes the Gorder ordering (Wei et al., SIGMOD'16): a greedy
// sequence that repeatedly appends the vertex with the largest number of
// relations — direct edges or shared in-neighbours (siblings) — to the last
// w placed vertices. Priorities are kept in a lazy max-heap; when a vertex
// enters or leaves the window, the scores of its out-neighbours and of its
// in-neighbours' out-neighbours are adjusted. The sibling pass makes the
// algorithm O(Σ_v deg_in(v)·deg_out(v)) — far more expensive than VEBO,
// which is part of the paper's Table VI comparison.
func Gorder(g *graph.Graph, cfg GorderConfig) []graph.VertexID {
	w := cfg.Window
	if w <= 0 {
		w = 5
	}
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	score := make([]int64, n)
	placed := make([]bool, n)
	// lazy max-heap of (score, vertex)
	h := &lazyMaxHeap{}
	// start from the highest in-degree vertex (Gorder's convention: start
	// from the vertex with max degree).
	start := graph.VertexID(0)
	var bestDeg int64 = -1
	for v := 0; v < n; v++ {
		if d := g.InDegree(graph.VertexID(v)); d > bestDeg {
			bestDeg = d
			start = graph.VertexID(v)
		}
	}
	maxSib := int64(cfg.MaxSiblingDegree)
	adjustFrom := func(u graph.VertexID, delta int64, bump func(graph.VertexID, int64)) {
		for _, v := range g.OutNeighbors(u) {
			bump(v, delta)
		}
		for _, p := range g.InNeighbors(u) {
			if maxSib > 0 && g.OutDegree(p) > maxSib {
				continue
			}
			for _, v := range g.OutNeighbors(p) {
				bump(v, delta)
			}
		}
	}
	bump := func(v graph.VertexID, delta int64) {
		if placed[v] {
			return
		}
		score[v] += delta
		if delta > 0 {
			h.push(heapItem{score[v], v})
		}
		// negative deltas are handled lazily: stale heap entries are
		// discarded on pop.
	}

	seq := make([]graph.VertexID, 0, n)
	window := make([]graph.VertexID, 0, w)
	place := func(v graph.VertexID) {
		placed[v] = true
		seq = append(seq, v)
		window = append(window, v)
		adjustFrom(v, 1, bump)
		if len(window) > w {
			old := window[0]
			window = window[1:]
			adjustFrom(old, -1, bump)
		}
	}
	place(start)
	for len(seq) < n {
		var next graph.VertexID
		found := false
		for h.len() > 0 {
			it := h.pop()
			if !placed[it.v] && score[it.v] == it.score {
				next = it.v
				found = true
				break
			}
		}
		if !found {
			// disconnected remainder: take the unplaced vertex with the
			// highest in-degree for determinism.
			bestDeg = -1
			for v := 0; v < n; v++ {
				if !placed[v] {
					if d := g.InDegree(graph.VertexID(v)); d > bestDeg {
						bestDeg = d
						next = graph.VertexID(v)
					}
				}
			}
		}
		place(next)
	}
	perm := make([]graph.VertexID, n)
	for newID, v := range seq {
		perm[v] = graph.VertexID(newID)
	}
	return perm
}

type heapItem struct {
	score int64
	v     graph.VertexID
}

// lazyMaxHeap is a binary max-heap of (score, vertex) pairs that tolerates
// stale entries; consumers must validate popped items against the current
// score table.
type lazyMaxHeap struct{ items []heapItem }

func (h *lazyMaxHeap) len() int { return len(h.items) }

func (h *lazyMaxHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.greater(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *lazyMaxHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.items) && h.greater(l, largest) {
			largest = l
		}
		if r < len(h.items) && h.greater(r, largest) {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}

func (h *lazyMaxHeap) greater(a, b int) bool {
	if h.items[a].score != h.items[b].score {
		return h.items[a].score > h.items[b].score
	}
	return h.items[a].v < h.items[b].v
}

// SlashBurn computes a SlashBurn-style hub ordering (Lim et al.): repeatedly
// move the k highest-degree vertices ("hubs") to the front of the order and
// the vertices of all non-giant connected components ("spokes") to the back,
// then recurse on the giant component. Provided as a related-work extension;
// not part of the paper's main comparison.
func SlashBurn(g *graph.Graph, k int) ([]graph.VertexID, error) {
	if k <= 0 {
		return nil, fmt.Errorf("order: SlashBurn k must be positive, got %d", k)
	}
	n := g.NumVertices()
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = g.InDegree(graph.VertexID(v)) + g.OutDegree(graph.VertexID(v))
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n
	front := make([]graph.VertexID, 0, n)
	back := make([]graph.VertexID, 0, n)

	comp := make([]int, n)
	queue := make([]graph.VertexID, 0, 1024)
	for aliveCount > 0 {
		// 1. slash: take the k highest-degree alive vertices as hubs.
		hubs := topKAlive(deg, alive, k)
		for _, h := range hubs {
			alive[h] = false
			aliveCount--
			front = append(front, h)
		}
		if aliveCount == 0 {
			break
		}
		// 2. find connected components of the remainder (undirected view).
		for i := range comp {
			comp[i] = -1
		}
		compSizes := []int{}
		for v := 0; v < n; v++ {
			if !alive[v] || comp[v] >= 0 {
				continue
			}
			id := len(compSizes)
			size := 0
			comp[v] = id
			queue = append(queue[:0], graph.VertexID(v))
			for len(queue) > 0 {
				u := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				size++
				for _, w := range g.OutNeighbors(u) {
					if alive[w] && comp[w] < 0 {
						comp[w] = id
						queue = append(queue, w)
					}
				}
				for _, w := range g.InNeighbors(u) {
					if alive[w] && comp[w] < 0 {
						comp[w] = id
						queue = append(queue, w)
					}
				}
			}
			compSizes = append(compSizes, size)
		}
		// 3. burn: giant component stays; all other components go to the
		// back of the order.
		giant := 0
		for id, sz := range compSizes {
			if sz > compSizes[giant] {
				giant = id
			}
		}
		for v := n - 1; v >= 0; v-- {
			if alive[v] && comp[v] != giant {
				alive[v] = false
				aliveCount--
				back = append(back, graph.VertexID(v))
			}
		}
	}
	perm := make([]graph.VertexID, n)
	i := 0
	for _, v := range front {
		perm[v] = graph.VertexID(i)
		i++
	}
	for j := len(back) - 1; j >= 0; j-- {
		perm[back[j]] = graph.VertexID(i)
		i++
	}
	return perm, nil
}

func topKAlive(deg []int64, alive []bool, k int) []graph.VertexID {
	type dv struct {
		d int64
		v graph.VertexID
	}
	cand := make([]dv, 0, len(deg))
	for v, a := range alive {
		if a {
			cand = append(cand, dv{deg[v], graph.VertexID(v)})
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].d != cand[b].d {
			return cand[a].d > cand[b].d
		}
		return cand[a].v < cand[b].v
	})
	if k > len(cand) {
		k = len(cand)
	}
	out := make([]graph.VertexID, k)
	for i := 0; i < k; i++ {
		out[i] = cand[i].v
	}
	return out
}

// Compose returns the permutation equivalent to applying first then second:
// out[v] = second[first[v]].
func Compose(first, second []graph.VertexID) ([]graph.VertexID, error) {
	if len(first) != len(second) {
		return nil, fmt.Errorf("order: length mismatch %d vs %d", len(first), len(second))
	}
	out := make([]graph.VertexID, len(first))
	for v := range first {
		out[v] = second[first[v]]
	}
	return out, nil
}

// IsPermutation reports whether perm is a bijection on [0, len(perm)).
func IsPermutation(perm []graph.VertexID) bool {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if int(p) >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}
