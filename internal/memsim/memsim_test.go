package memsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/numa"
	"repro/internal/partition"
)

func TestSetAssocCacheBasics(t *testing.T) {
	c := newSetAssocCache(1024, 2, 64) // 16 lines, 8 sets x 2 ways
	if c.access(0) {
		t.Fatal("cold access hit")
	}
	if !c.access(0) {
		t.Fatal("warm access missed")
	}
	if !c.access(32) {
		t.Fatal("same-line access missed")
	}
	if c.access(64) {
		t.Fatal("different line hit")
	}
}

func TestSetAssocCacheLRUEviction(t *testing.T) {
	c := newSetAssocCache(128, 1, 64) // direct-mapped, 2 sets
	// two addresses mapping to the same set evict each other
	a := uint64(0)
	b := uint64(2 * 64) // same set (set count 2 → line 0 and line 2 collide)
	c.access(a)
	c.access(b)
	if c.access(a) {
		t.Fatal("direct-mapped conflict should have evicted a")
	}
}

func TestSetAssocCacheAssociativityHoldsBoth(t *testing.T) {
	c := newSetAssocCache(256, 2, 64) // 4 lines, 2 sets x 2 ways
	a := uint64(0)
	b := uint64(2 * 64) // same set, second way
	c.access(a)
	c.access(b)
	if !c.access(a) || !c.access(b) {
		t.Fatal("2-way set should hold both lines")
	}
}

func TestLoopPredictor(t *testing.T) {
	var p loopPredictor
	if p.observe(5) != 1 {
		t.Fatal("first observation should mispredict")
	}
	if p.observe(5) != 0 {
		t.Fatal("repeated trip count should predict")
	}
	if p.observe(7) != 1 {
		t.Fatal("changed trip count should mispredict")
	}
}

func TestCountersMPKI(t *testing.T) {
	c := Counters{Instructions: 2000, LocalMisses: 4, RemoteMisses: 2, TLBMisses: 1, BranchMiss: 8}
	if c.LocalMPKI() != 2 || c.RemoteMPKI() != 1 || c.TLBMKI() != 0.5 || c.BranchMPKI() != 4 {
		t.Fatalf("MPKI wrong: %v %v %v %v", c.LocalMPKI(), c.RemoteMPKI(), c.TLBMKI(), c.BranchMPKI())
	}
	if (Counters{}).LocalMPKI() != 0 {
		t.Fatal("zero-instruction MPKI should be 0")
	}
}

func testSetup(t *testing.T) (*graph.Graph, numa.Topology) {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 12000, S: 1.0, MaxDegree: 300, ZeroInFrac: 0.14, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return g, numa.Topology{Sockets: 4, ThreadsPerSocket: 2}
}

func TestEdgeMapPullRuns(t *testing.T) {
	g, top := testSetup(t)
	parts, err := partition.ByDestination(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{}, top)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.EdgeMapPull(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != top.Threads() {
		t.Fatalf("threads = %d", len(res.Threads))
	}
	var instr int64
	for _, c := range res.Threads {
		instr += c.Instructions
	}
	if instr == 0 {
		t.Fatal("no instructions simulated")
	}
	// total partition instructions must equal thread instructions
	var pinstr int64
	for _, pi := range res.Partitions {
		pinstr += pi.Instructions
	}
	if pinstr != instr {
		t.Fatalf("partition instr %d != thread instr %d", pinstr, instr)
	}
	// per-partition cycle model must be positive where there is work
	for p, pi := range res.Partitions {
		if pi.Instructions > 0 && pi.Cycles() <= pi.Instructions {
			t.Fatalf("partition %d cycles %d not above instructions %d",
				p, pi.Cycles(), pi.Instructions)
		}
	}
}

func TestEdgeMapPullRejectsTooFewPartitions(t *testing.T) {
	g, top := testSetup(t)
	parts, err := partition.ByDestination(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{}, top)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EdgeMapPull(g, parts); err == nil {
		t.Fatal("expected error: fewer partitions than threads")
	}
}

// The paper's Figure 4e: VEBO's degree-sorted order makes the inner-loop
// exit branch predictable, cutting branch MPKI versus the original order.
func TestVEBOReducesBranchMispredictions(t *testing.T) {
	g, top := testSetup(t)
	const P = 64

	run := func(g *graph.Graph, parts []partition.Partition) Summary {
		m, err := New(Config{}, top)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.EdgeMapPull(g, parts)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(res.Threads)
	}

	origParts, err := partition.ByDestination(g, P)
	if err != nil {
		t.Fatal(err)
	}
	so := run(g, origParts)

	r, err := core.Reorder(g, P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		t.Fatal(err)
	}
	vparts, err := partition.ByVertexRanges(rg, r.Boundaries())
	if err != nil {
		t.Fatal(err)
	}
	sv := run(rg, vparts)

	if sv.BranchMPKI >= so.BranchMPKI {
		t.Errorf("VEBO branch MPKI %.3f not below original %.3f", sv.BranchMPKI, so.BranchMPKI)
	}
	if sv.BranchMPKI > so.BranchMPKI/2 {
		t.Errorf("VEBO branch MPKI %.3f should be well below original %.3f (paper: 0.04 vs 0.11)",
			sv.BranchMPKI, so.BranchMPKI)
	}
}

// The paper's Table V: with the original order, Algorithm 1's vertex-count
// imbalance makes static vertexmap blocks misalign with NUMA homes, raising
// remote misses; VEBO's vertex balance aligns them.
func TestVEBOReducesVertexMapRemoteMisses(t *testing.T) {
	g, top := testSetup(t)
	const P = 64

	run := func(g *graph.Graph, parts []partition.Partition) Summary {
		m, err := New(Config{}, top)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.VertexMap(g, parts)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(res.Threads)
	}

	origParts, err := partition.ByDestination(g, P)
	if err != nil {
		t.Fatal(err)
	}
	so := run(g, origParts)

	r, err := core.Reorder(g, P, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		t.Fatal(err)
	}
	vparts, err := partition.ByVertexRanges(rg, r.Boundaries())
	if err != nil {
		t.Fatal(err)
	}
	sv := run(rg, vparts)

	if sv.RemoteMPKI >= so.RemoteMPKI {
		t.Errorf("VEBO vertexmap remote MPKI %.3f not below original %.3f",
			sv.RemoteMPKI, so.RemoteMPKI)
	}
}

func TestMachineReset(t *testing.T) {
	g, top := testSetup(t)
	parts, err := partition.ByDestination(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{}, top)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EdgeMapPull(g, parts); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	for _, c := range m.Counters() {
		if c.Instructions != 0 || c.LocalMisses != 0 {
			t.Fatal("Reset left counters")
		}
	}
}

func TestSummarizeSkipsIdleThreads(t *testing.T) {
	s := Summarize([]Counters{
		{Instructions: 1000, LocalMisses: 10},
		{}, // idle
	})
	if s.LocalMPKI != 10 {
		t.Fatalf("LocalMPKI = %v, want 10 (idle thread excluded)", s.LocalMPKI)
	}
}

func buildCOOs(t *testing.T, g *graph.Graph, parts []partition.Partition, o layout.Order) []*layout.COO {
	t.Helper()
	coos := make([]*layout.COO, len(parts))
	for i, pt := range parts {
		c, err := layout.BuildRange(g, pt.Lo, pt.Hi, o)
		if err != nil {
			t.Fatal(err)
		}
		coos[i] = c
	}
	return coos
}

func TestEdgeMapCOOOrdersDifferOnlyInMisses(t *testing.T) {
	g, top := testSetup(t)
	parts, err := partition.ByDestination(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	run := func(o layout.Order) []Counters {
		m, err := New(Config{}, top)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.EdgeMapCOO(g, parts, buildCOOs(t, g, parts, o))
		if err != nil {
			t.Fatal(err)
		}
		return res.Threads
	}
	csr := run(layout.CSROrder)
	hil := run(layout.HilbertOrder)
	var iCSR, iHil, mCSR, mHil int64
	for i := range csr {
		iCSR += csr[i].Instructions
		iHil += hil[i].Instructions
		mCSR += csr[i].LocalMisses + csr[i].RemoteMisses
		mHil += hil[i].LocalMisses + hil[i].RemoteMisses
	}
	// Destination-change accounting differs between orders, so instruction
	// counts are close but not identical; miss counts must differ.
	if iCSR == 0 || iHil == 0 {
		t.Fatal("no instructions")
	}
	if mCSR == mHil {
		t.Error("CSR and Hilbert orders produced identical miss counts; ordering has no effect")
	}
}

func TestEdgeMapCOOValidation(t *testing.T) {
	g, top := testSetup(t)
	parts, err := partition.ByDestination(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{}, top)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EdgeMapCOO(g, parts, nil); err == nil {
		t.Fatal("expected COO count mismatch error")
	}
	few, err := partition.ByDestination(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EdgeMapCOO(g, few, buildCOOs(t, g, few, layout.CSROrder)); err == nil {
		t.Fatal("expected too-few-partitions error")
	}
}
