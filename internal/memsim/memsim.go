// Package memsim is a software model of the micro-architectural statistics
// the paper reports from hardware performance counters (Figure 4 and Table
// V): last-level cache misses split into locally and remotely serviced,
// TLB misses, and branch mispredictions, all normalized per thousand
// instructions (MPKI).
//
// The reproduction cannot read real counters (and the effects the paper
// measures come from a 4-socket NUMA machine), so the engines' memory-access
// patterns are replayed against an explicit machine model: one set-
// associative LLC per socket, one small TLB per thread, and a trip-count
// loop predictor per thread. A cache miss is "local" when the missing
// data's home socket (determined by which partition owns the vertex) equals
// the accessing thread's socket, "remote" otherwise — the same
// classification the paper's counters make.
package memsim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/numa"
	"repro/internal/partition"
)

// Config sets the machine geometry. The defaults scale the paper's Xeon
// E7-4860 v2 (30 MB LLC per socket for graphs of 40M+ vertices) down to the
// reproduction's ~10^5-vertex graphs.
type Config struct {
	LLCBytes   int // per-socket LLC capacity (default 256 KiB)
	LLCWays    int // associativity (default 16)
	LineBytes  int // cache line size (default 64)
	TLBEntries int // per-thread TLB entries (default 64)
	PageBytes  int // page size (default 4096)
	// Instruction cost model, used as the MPKI denominator.
	InstrPerEdge       int64 // default 8
	InstrPerVertex     int64 // default 12
	InstrPerMapVertex  int64 // default 6 (vertexmap body)
	InstrPerMapVisited int64 // default 2 (vertexmap skip of inactive slot)
}

func (c Config) withDefaults() Config {
	if c.LLCBytes == 0 {
		c.LLCBytes = 256 << 10
	}
	if c.LLCWays == 0 {
		c.LLCWays = 16
	}
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.TLBEntries == 0 {
		c.TLBEntries = 64
	}
	if c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.InstrPerEdge == 0 {
		c.InstrPerEdge = 8
	}
	if c.InstrPerVertex == 0 {
		c.InstrPerVertex = 12
	}
	if c.InstrPerMapVertex == 0 {
		c.InstrPerMapVertex = 6
	}
	if c.InstrPerMapVisited == 0 {
		c.InstrPerMapVisited = 2
	}
	return c
}

// Counters accumulates simulated events for one thread.
type Counters struct {
	Instructions int64
	Hits         int64
	LocalMisses  int64 // LLC misses serviced by the thread's own socket
	RemoteMisses int64 // LLC misses serviced by another socket
	TLBMisses    int64
	BranchMiss   int64
}

// MPKI returns misses-per-kilo-instruction for the given event count.
func (c Counters) MPKI(events int64) float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(events) / float64(c.Instructions)
}

// LocalMPKI, RemoteMPKI, TLBMKI and BranchMPKI mirror the paper's reported
// metrics.
func (c Counters) LocalMPKI() float64  { return c.MPKI(c.LocalMisses) }
func (c Counters) RemoteMPKI() float64 { return c.MPKI(c.RemoteMisses) }
func (c Counters) TLBMKI() float64     { return c.MPKI(c.TLBMisses) }
func (c Counters) BranchMPKI() float64 { return c.MPKI(c.BranchMiss) }

// Latency model (in cycles) used by Cycles. Remote misses cost roughly 3x a
// local miss on the paper's 4-socket machine.
const (
	cyclesLocalMiss  = 30
	cyclesRemoteMiss = 90
	cyclesTLBMiss    = 15
	cyclesBranchMiss = 12
)

// Cycles converts the counters into a modeled execution time in cycles:
// one cycle per instruction plus the latency model above. This is the
// per-partition "processing time" proxy used to regenerate Figures 1, 4a
// and 6.
func (c Counters) Cycles() int64 {
	return c.Instructions +
		cyclesLocalMiss*c.LocalMisses +
		cyclesRemoteMiss*c.RemoteMisses +
		cyclesTLBMiss*c.TLBMisses +
		cyclesBranchMiss*c.BranchMiss
}

// add accumulates other into c.
func (c *Counters) add(other Counters) {
	c.Instructions += other.Instructions
	c.Hits += other.Hits
	c.LocalMisses += other.LocalMisses
	c.RemoteMisses += other.RemoteMisses
	c.TLBMisses += other.TLBMisses
	c.BranchMiss += other.BranchMiss
}

// Machine is the simulated NUMA machine.
type Machine struct {
	cfg  Config
	top  numa.Topology
	llcs []*setAssocCache // one per socket
	tlbs []*setAssocCache // one per thread
	lps  []loopPredictor  // one per thread
	cnt  []Counters       // one per thread
}

// New builds a machine for the given topology.
func New(cfg Config, top numa.Topology) (*Machine, error) {
	if err := top.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg, top: top}
	for s := 0; s < top.Sockets; s++ {
		m.llcs = append(m.llcs, newSetAssocCache(cfg.LLCBytes, cfg.LLCWays, cfg.LineBytes))
	}
	for t := 0; t < top.Threads(); t++ {
		m.tlbs = append(m.tlbs, newSetAssocCache(cfg.TLBEntries*cfg.PageBytes, 4, cfg.PageBytes))
		m.lps = append(m.lps, loopPredictor{})
		m.cnt = append(m.cnt, Counters{})
	}
	return m, nil
}

// Counters returns a copy of the per-thread counters.
func (m *Machine) Counters() []Counters {
	out := make([]Counters, len(m.cnt))
	copy(out, m.cnt)
	return out
}

// Reset clears counters (cache contents persist; call Cold to flush).
func (m *Machine) Reset() {
	for i := range m.cnt {
		m.cnt[i] = Counters{}
	}
}

// Array identifiers place each logical array in a disjoint address region.
type arrayID uint64

const (
	arrDstValues arrayID = iota + 1 // destination-indexed values (e.g. rank)
	arrSrcValues                    // source-indexed values (e.g. contributions)
	arrIndex                        // per-partition edge index structures
)

func address(a arrayID, index int64, elem int64) uint64 {
	return uint64(a)<<40 + uint64(index*elem)
}

// access simulates one data access by thread t to the element at the given
// home socket.
func (m *Machine) access(t int, a arrayID, index int64, elem int64, home int) {
	addr := address(a, index, elem)
	if !m.tlbs[t].access(addr) {
		m.cnt[t].TLBMisses++
	}
	socket := m.top.SocketOfThread(t)
	if m.llcs[socket].access(addr) {
		m.cnt[t].Hits++
		return
	}
	if home == socket {
		m.cnt[t].LocalMisses++
	} else {
		m.cnt[t].RemoteMisses++
	}
}

// EdgeMapResult carries per-thread and per-partition counters of a replay.
type EdgeMapResult struct {
	Threads    []Counters
	Partitions []Counters
}

// homeOf returns the home socket of vertex v under the partition layout.
func homeOf(top numa.Topology, parts []partition.Partition, v graph.VertexID) int {
	return top.SocketOfPartition(partition.Of(parts, v), len(parts))
}

// EdgeMapPull replays the memory behaviour of one pull-direction dense
// edgemap (e.g. one PageRank iteration) over the given partitioning.
// Partitions are assigned to threads blockwise, as the paper states:
// "thread t executes partitions 8t to 8t+7". Destination values are homed
// with their partition; source values are homed with the partition owning
// the source vertex; per-partition index structures are local.
func (m *Machine) EdgeMapPull(g *graph.Graph, parts []partition.Partition) (*EdgeMapResult, error) {
	threads := m.top.Threads()
	if len(parts) < threads {
		return nil, fmt.Errorf("memsim: %d partitions for %d threads", len(parts), threads)
	}
	res := &EdgeMapResult{
		Threads:    make([]Counters, threads),
		Partitions: make([]Counters, len(parts)),
	}
	perThread := (len(parts) + threads - 1) / threads
	const elem = 8
	for t := 0; t < threads; t++ {
		lo := t * perThread
		hi := lo + perThread
		if hi > len(parts) {
			hi = len(parts)
		}
		socket := m.top.SocketOfThread(t)
		for p := lo; p < hi; p++ {
			pt := parts[p]
			before := m.cnt[t]
			var idx int64 // streaming position in the partition's index array
			for d := pt.Lo; d < pt.Hi; d++ {
				m.cnt[t].Instructions += m.cfg.InstrPerVertex
				// destination value access: home is this partition's socket
				m.access(t, arrDstValues, int64(d), elem, m.top.SocketOfPartition(p, len(parts)))
				deg := g.InDegree(d)
				m.cnt[t].BranchMiss += m.lps[t].observe(deg)
				for _, s := range g.InNeighbors(d) {
					m.cnt[t].Instructions += m.cfg.InstrPerEdge
					// streaming index structure: local to the partition
					m.access(t, arrIndex, int64(p)<<24+idx, 4, socket)
					idx++
					// source value: homed with the source's partition
					m.access(t, arrSrcValues, int64(s), elem, homeOf(m.top, parts, s))
				}
			}
			res.Partitions[p] = diff(m.cnt[t], before)
		}
	}
	copy(res.Threads, m.cnt)
	return res, nil
}

// diff returns after - before, field-wise.
func diff(after, before Counters) Counters {
	return Counters{
		Instructions: after.Instructions - before.Instructions,
		Hits:         after.Hits - before.Hits,
		LocalMisses:  after.LocalMisses - before.LocalMisses,
		RemoteMisses: after.RemoteMisses - before.RemoteMisses,
		TLBMisses:    after.TLBMisses - before.TLBMisses,
		BranchMiss:   after.BranchMiss - before.BranchMiss,
	}
}

// EdgeMapCOO replays a dense edgemap that traverses each partition's edges
// in the order stored in its COO (CSR or Hilbert order), as GraphGrind's
// dense traversal does. Per-edge accesses touch the source and destination
// value arrays in COO order, which is exactly where edge ordering changes
// cache behaviour (the paper's Section V-G / Figure 6).
func (m *Machine) EdgeMapCOO(g *graph.Graph, parts []partition.Partition, coos []*layout.COO) (*EdgeMapResult, error) {
	threads := m.top.Threads()
	if len(parts) < threads {
		return nil, fmt.Errorf("memsim: %d partitions for %d threads", len(parts), threads)
	}
	if len(coos) != len(parts) {
		return nil, fmt.Errorf("memsim: %d COOs for %d partitions", len(coos), len(parts))
	}
	res := &EdgeMapResult{
		Threads:    make([]Counters, threads),
		Partitions: make([]Counters, len(parts)),
	}
	perThread := (len(parts) + threads - 1) / threads
	const elem = 8
	for t := 0; t < threads; t++ {
		lo := t * perThread
		hi := lo + perThread
		if hi > len(parts) {
			hi = len(parts)
		}
		socket := m.top.SocketOfThread(t)
		for p := lo; p < hi; p++ {
			before := m.cnt[t]
			c := coos[p]
			home := m.top.SocketOfPartition(p, len(parts))
			var lastSrc, lastDst graph.VertexID
			first := true
			for i := 0; i < c.Len(); i++ {
				m.cnt[t].Instructions += m.cfg.InstrPerEdge
				// streaming COO arrays: local to the partition
				m.access(t, arrIndex, int64(p)<<24+int64(i), 8, socket)
				// Value accesses benefit from register reuse while the
				// coordinate repeats: CSR order groups sources, Hilbert
				// order alternates both coordinates in a window. Charge an
				// access (plus reload instructions) only on change.
				if first || c.Src[i] != lastSrc {
					m.cnt[t].Instructions += 2
					m.access(t, arrSrcValues, int64(c.Src[i]), elem, homeOf(m.top, parts, c.Src[i]))
					lastSrc = c.Src[i]
				}
				if first || c.Dst[i] != lastDst {
					m.cnt[t].Instructions += 2
					m.access(t, arrDstValues, int64(c.Dst[i]), elem, home)
					lastDst = c.Dst[i]
				}
				first = false
			}
			res.Partitions[p] = diff(m.cnt[t], before)
		}
	}
	copy(res.Threads, m.cnt)
	return res, nil
}

// VertexMap replays the memory behaviour of one vertexmap: the vertex range
// [0, n) is statically divided over all threads (as Polymer and GraphGrind
// do), while the vertex values remain homed with their partitions. When the
// partitioning has unbalanced vertex counts, thread blocks misalign with
// partition homes and remote misses rise — the effect in the paper's
// Table V.
func (m *Machine) VertexMap(g *graph.Graph, parts []partition.Partition) (*EdgeMapResult, error) {
	threads := m.top.Threads()
	n := g.NumVertices()
	res := &EdgeMapResult{
		Threads:    make([]Counters, threads),
		Partitions: make([]Counters, len(parts)),
	}
	per := (n + threads - 1) / threads
	const elem = 8
	for t := 0; t < threads; t++ {
		lo := t * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			m.cnt[t].Instructions += m.cfg.InstrPerMapVertex
			m.access(t, arrDstValues, int64(v), elem, homeOf(m.top, parts, graph.VertexID(v)))
		}
	}
	copy(res.Threads, m.cnt)
	return res, nil
}

// Summary averages per-thread MPKI values, mirroring the "Average Values"
// annotations in the paper's Figure 4.
type Summary struct {
	LocalMPKI, RemoteMPKI, TLBMKI, BranchMPKI float64
}

// Summarize averages the counters.
func Summarize(cs []Counters) Summary {
	var s Summary
	n := 0
	for _, c := range cs {
		if c.Instructions == 0 {
			continue
		}
		s.LocalMPKI += c.LocalMPKI()
		s.RemoteMPKI += c.RemoteMPKI()
		s.TLBMKI += c.TLBMKI()
		s.BranchMPKI += c.BranchMPKI()
		n++
	}
	if n > 0 {
		s.LocalMPKI /= float64(n)
		s.RemoteMPKI /= float64(n)
		s.TLBMKI /= float64(n)
		s.BranchMPKI /= float64(n)
	}
	return s
}
