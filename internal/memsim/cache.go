package memsim

// setAssocCache is a set-associative cache with LRU replacement, used to
// model the per-socket last-level cache and (with small geometry) the
// per-thread TLB.
type setAssocCache struct {
	sets     int
	ways     int
	lineBits uint // log2 of line (or page) size
	tags     []uint64
	valid    []bool
	stamps   []uint64
	clock    uint64
}

// newSetAssocCache builds a cache of capacityBytes with the given
// associativity and line size. Sizes are rounded to powers of two.
func newSetAssocCache(capacityBytes, ways, lineBytes int) *setAssocCache {
	if ways < 1 {
		ways = 1
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	lines := capacityBytes / (1 << lineBits)
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	// round sets down to a power of two for cheap indexing
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	c := &setAssocCache{
		sets:     sets,
		ways:     ways,
		lineBits: lineBits,
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
		stamps:   make([]uint64, sets*ways),
	}
	return c
}

// access touches addr and reports whether it hit.
func (c *setAssocCache) access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	c.clock++
	// hit?
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.stamps[base+w] = c.clock
			return true
		}
	}
	// miss: fill LRU way
	victim := base
	for w := 1; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.stamps[base+w] < c.stamps[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.stamps[victim] = c.clock
	return false
}

// loopPredictor models a trip-count loop-exit predictor: it predicts the
// inner loop will run as many iterations as it did last time. A vertex whose
// degree matches its predecessor's incurs no mispredict; a change costs one.
// This captures the paper's Section V-E observation that VEBO's
// degree-sorted order makes the CSR/CSC loop-exit branch predictable.
type loopPredictor struct {
	lastTrip int64
	primed   bool
}

// observe records a loop execution of trip iterations and returns the number
// of branch mispredictions it caused.
func (p *loopPredictor) observe(trip int64) int64 {
	if !p.primed {
		p.primed = true
		p.lastTrip = trip
		return 1
	}
	if trip == p.lastTrip {
		return 0
	}
	p.lastTrip = trip
	return 1
}
