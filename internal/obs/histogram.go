package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the log-bucketed histogram: bucket 0
// holds non-positive observations, bucket i (1 ≤ i ≤ 63) the range
// [2^(i-1), 2^i − 1]. Power-of-two bucketing bounds the quantile error at
// 2× while keeping Observe a single atomic add — the fidelity/throughput
// trade a hot serving path wants.
const histBuckets = 64

// Histogram is a race-safe log-bucketed histogram, typically holding
// latencies in nanoseconds. The zero value is ready to use; all methods are
// no-ops on a nil receiver. Quantiles are computed on demand from the live
// buckets with linear interpolation inside the winning bucket.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observations recorded
// so far, 0 when empty. Concurrent Observe calls may skew an in-flight
// Quantile by the racing observations — acceptable for monitoring reads.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if target < cum+c {
			if i == 0 {
				return 0
			}
			lo := int64(1) << uint(i-1)
			hi := int64((uint64(1) << uint(i)) - 1)
			// Interpolate by rank position inside the bucket.
			pos := target - cum // 0-based within bucket
			if c > 1 {
				return lo + (hi-lo)*pos/(c-1)
			}
			return lo + (hi-lo)/2
		}
		cum += c
	}
	return 0 // unreachable
}
