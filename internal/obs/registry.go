// Package obs is the zero-dependency observability substrate of the serving
// stack: a race-safe metrics registry (atomic counters, gauges and
// log-bucketed latency histograms, with optional label sets per series) and
// an epoch-lifecycle tracer (a bounded ring buffer of structured events
// recording, per epoch, what the ingest/repair/publish/patch pipeline did
// and why). Both sides are deliberately nil-tolerant: every method is a
// no-op on a nil receiver, so instrumented packages thread handles through
// unconditionally and pay nothing when observability is disabled.
//
// Metric names follow the Prometheus convention (snake_case, `_total`
// suffix on counters); WritePrometheus renders the registry in the
// Prometheus text exposition format with histograms as quantile summaries.
// See DESIGN.md §6 for the metric and trace vocabulary the system emits.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers keep counters monotone; Add does not enforce it).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// all methods are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered series.
type entry struct {
	name   string
	labels string // canonical `k="v",k2="v2"` form, "" when unlabeled
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metric series. Get-or-create lookups and renderers
// may run from any goroutine; the returned handles are lock-free. All
// methods are no-ops (returning nil handles) on a nil receiver.
type Registry struct {
	mu sync.Mutex
	//vebo:guardedby mu
	byKey map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// canonLabels renders alternating key,value label pairs in canonical
// (key-sorted) form. Label values must not contain `"` or newlines.
func canonLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := ""
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", p.k, p.v)
	}
	return out
}

// lookup returns the entry for (name, labels), creating it with mk when
// absent. A kind mismatch on an existing key returns a fresh detached entry
// (never registered — the caller's handle still works, the series is not
// exported twice under one key).
func (r *Registry) lookup(name string, labels []string, kind metricKind, mk func(*entry)) *entry {
	ls := canonLabels(labels)
	key := name
	if ls != "" {
		key = name + "{" + ls + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind == kind {
			return e
		}
		e = &entry{name: name, labels: ls, kind: kind}
		mk(e)
		return e
	}
	e := &entry{name: name, labels: ls, kind: kind}
	mk(e)
	r.byKey[key] = e
	return e
}

// Counter returns the counter named name with the given alternating
// key,value label pairs, creating it on first use. Returns nil (a usable
// no-op handle) on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge named name, creating it on first use. Returns nil
// (a usable no-op handle) on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the histogram named name, creating it on first use.
// Returns nil (a usable no-op handle) on a nil registry.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindHistogram, func(e *entry) { e.h = &Histogram{} }).h
}

// MetricValue is one series rendered for export.
type MetricValue struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"` // canonical `k="v",...` form
	Kind   string `json:"kind"`
	// Value carries counters and gauges.
	Value int64 `json:"value"`
	// Count/Sum/quantiles carry histograms (same unit as the observations).
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
	P50   int64 `json:"p50,omitempty"`
	P95   int64 `json:"p95,omitempty"`
	P99   int64 `json:"p99,omitempty"`
}

// Gather renders every registered series, sorted by name then label set.
// Returns nil on a nil registry.
func (r *Registry) Gather() []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.byKey))
	for _, e := range r.byKey {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	out := make([]MetricValue, 0, len(entries))
	for _, e := range entries {
		mv := MetricValue{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
		switch e.kind {
		case kindCounter:
			mv.Value = e.c.Value()
		case kindGauge:
			mv.Value = e.g.Value()
		default:
			mv.Count = e.h.Count()
			mv.Sum = e.h.Sum()
			mv.P50 = e.h.Quantile(0.50)
			mv.P95 = e.h.Quantile(0.95)
			mv.P99 = e.h.Quantile(0.99)
		}
		out = append(out, mv)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Histograms render as summaries: `{quantile="0.5"|"0.95"|"0.99"}`
// series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, mv := range r.Gather() {
		if mv.Name != lastName {
			typ := mv.Kind
			if typ == "histogram" {
				typ = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", mv.Name, typ); err != nil {
				return err
			}
			lastName = mv.Name
		}
		var err error
		switch mv.Kind {
		case "counter", "gauge":
			err = writeSample(w, mv.Name, mv.Labels, "", mv.Value)
		default:
			for _, q := range [...]struct {
				q string
				v int64
			}{{"0.5", mv.P50}, {"0.95", mv.P95}, {"0.99", mv.P99}} {
				ls := mv.Labels
				if ls != "" {
					ls += ","
				}
				ls += `quantile="` + q.q + `"`
				if err = writeSample(w, mv.Name, ls, "", q.v); err != nil {
					return err
				}
			}
			if err = writeSample(w, mv.Name, mv.Labels, "_sum", mv.Sum); err != nil {
				return err
			}
			err = writeSample(w, mv.Name, mv.Labels, "_count", mv.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, name, labels, suffix string, v int64) error {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s%s %d\n", name, suffix, labels, v)
	return err
}

// WriteJSON renders Gather() as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Gather())
}
