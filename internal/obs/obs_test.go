package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total"); again != c {
		t.Fatalf("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatalf("nil counter accumulated")
	}
	g := r.Gauge("x")
	g.Set(9)
	if g.Value() != 0 {
		t.Fatalf("nil gauge accumulated")
	}
	h := r.Histogram("x_ns")
	h.Observe(123)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram accumulated")
	}
	if r.Gather() != nil {
		t.Fatalf("nil registry gathered values")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestLabeledSeriesCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "sys", "ligra", "alg", "bfs")
	b := r.Counter("reqs_total", "alg", "bfs", "sys", "ligra")
	if a != b {
		t.Fatalf("label order produced distinct series")
	}
	a.Inc()
	other := r.Counter("reqs_total", "alg", "pr", "sys", "ligra")
	other.Add(2)
	vals := r.Gather()
	if len(vals) != 2 {
		t.Fatalf("Gather returned %d series, want 2", len(vals))
	}
	// Sorted by label set: alg="bfs" before alg="pr".
	if vals[0].Labels != `alg="bfs",sys="ligra"` || vals[0].Value != 1 {
		t.Fatalf("series 0 = %+v", vals[0])
	}
	if vals[1].Labels != `alg="pr",sys="ligra"` || vals[1].Value != 2 {
		t.Fatalf("series 1 = %+v", vals[1])
	}
}

func TestKindMismatchReturnsDetachedHandle(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual").Inc()
	g := r.Gauge("dual") // same key, wrong kind
	g.Set(42)            // must not panic, must not clobber the counter
	vals := r.Gather()
	if len(vals) != 1 || vals[0].Kind != "counter" || vals[0].Value != 1 {
		t.Fatalf("registered series corrupted: %+v", vals)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// Log-bucketing bounds the error at 2×: each estimate must land within
	// a factor of two of the true quantile.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}} {
		got := h.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Fatalf("q%v = %d, want within 2x of %d", tc.q, got, tc.want)
		}
	}
	if got := h.Quantile(0); got < 1 || got > 2 {
		t.Fatalf("q0 = %d, want ~1", got)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile != 0")
	}
	h.Observe(-5) // non-positive lands in bucket 0
	h.Observe(0)
	if h.Quantile(0.99) != 0 {
		t.Fatalf("bucket-0 quantile != 0")
	}
	var big Histogram
	big.Observe(1 << 62) // near the top bucket; must not overflow
	if q := big.Quantile(0.5); q <= 0 {
		t.Fatalf("top-bucket quantile = %d", q)
	}
	if h.Mean() != -5.0/2 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("vebo_batches_total").Add(3)
	r.Gauge("vebo_epoch").Set(17)
	r.Counter("vebo_updates_total", "op", "insert").Add(9)
	h := r.Histogram("vebo_query_ns", "alg", "bfs", "sys", "ligra")
	h.Observe(1000)
	h.Observe(2000)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE vebo_batches_total counter\n",
		"vebo_batches_total 3\n",
		"# TYPE vebo_epoch gauge\n",
		"vebo_epoch 17\n",
		`vebo_updates_total{op="insert"} 9` + "\n",
		"# TYPE vebo_query_ns summary\n",
		`vebo_query_ns{alg="bfs",sys="ligra",quantile="0.5"}`,
		`vebo_query_ns_sum{alg="bfs",sys="ligra"} 3000` + "\n",
		`vebo_query_ns_count{alg="bfs",sys="ligra"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	// One TYPE header per metric name, even with several labeled series.
	if n := strings.Count(out, "# TYPE vebo_query_ns "); n != 1 {
		t.Fatalf("TYPE header count = %d", n)
	}
}

// TestConcurrentRegistry hammers get-or-create lookups, observations and
// renders from many goroutines; run under -race this is the registry's
// safety proof.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sys := []string{"ligra", "polymer", "graphgrind"}[w%3]
			for i := 0; i < 2000; i++ {
				r.Counter("ops_total", "sys", sys).Inc()
				r.Gauge("epoch").Set(int64(i))
				r.Histogram("lat_ns", "sys", sys).Observe(int64(i%1000 + 1))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			_ = r.Gather()
		}
	}()
	wg.Wait()
	var total int64
	for _, sys := range []string{"ligra", "polymer", "graphgrind"} {
		total += r.Counter("ops_total", "sys", sys).Value()
	}
	if total != 8*2000 {
		t.Fatalf("lost increments: %d", total)
	}
}
