package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a Spans collector. IDs are assigned
// monotonically from 1 when a span starts (or is recorded); 0 means "no
// span" and is what a zero SpanContext carries.
type SpanID uint64

// SpanContext is the causal handle a finished or in-flight span hands to
// its children: enough to parent-link without retaining the span itself.
// The zero value is a valid "no parent" context.
type SpanContext struct {
	ID    SpanID
	Epoch int64
}

// Span is one completed, causally linked unit of work in the epoch
// lifecycle. Parent links express causality — a repair span is a child of
// the batch that tripped it, a query span is a child of the publish span
// of the epoch it read — and Epoch pins the span to the mutation epoch it
// acted on. Kind buckets spans onto exporter tracks ("ingest", "maintain",
// "publish", "build", "query"); Cause carries the decision vocabulary the
// tracer already uses (rebuild causes, refine answer paths); see DESIGN.md
// §6.
type Span struct {
	ID     SpanID           `json:"id"`
	Parent SpanID           `json:"parent,omitempty"`
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Cause  string           `json:"cause,omitempty"`
	Sys    string           `json:"sys,omitempty"`
	Epoch  int64            `json:"epoch"`
	Start  time.Time        `json:"start"`
	Dur    time.Duration    `json:"dur_ns"`
	Attrs  map[string]int64 `json:"attrs,omitempty"`
}

// DefaultSpanCapacity is the ring size NewSpans(0) selects.
const DefaultSpanCapacity = 4096

// Spans is a bounded ring of completed Spans plus the ID allocator for
// in-flight ones. Start/Record may be called from any goroutine (the
// ingest side starts batch spans while reader goroutines record query
// spans); when the ring is full the oldest spans are overwritten — Dropped
// counts them. All methods are no-ops on a nil receiver, so an
// uninstrumented caller pays nothing.
type Spans struct {
	nextID atomic.Uint64

	mu sync.Mutex
	//vebo:guardedby mu
	buf []Span
	//vebo:guardedby mu
	recorded uint64 // total spans ever recorded; buf holds the newest len(buf)
}

// NewSpans returns a collector retaining the newest capacity spans
// (DefaultSpanCapacity when capacity ≤ 0).
func NewSpans(capacity int) *Spans {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Spans{buf: make([]Span, 0, capacity)}
}

// Start opens a span: the ID is assigned immediately so children can link
// to it via Context before it ends. The span reaches the ring only when
// End is called. Returns nil on a nil collector (and every ActiveSpan
// method is nil-safe), so call sites need no guards.
func (s *Spans) Start(name, kind string, epoch int64, parent SpanContext) *ActiveSpan {
	if s == nil {
		return nil
	}
	return &ActiveSpan{c: s, sp: Span{
		ID:     SpanID(s.nextID.Add(1)),
		Parent: parent.ID,
		Name:   name,
		Kind:   kind,
		Epoch:  epoch,
		Start:  time.Now(),
	}}
}

// Record files an after-the-fact span measured around an already-finished
// call (the query paths use this: the span is only known complete when the
// algorithm returns). The ID is assigned here; sp.Start is kept if set,
// otherwise back-dated by sp.Dur. Returns the assigned ID (0 on a nil
// collector).
func (s *Spans) Record(sp Span) SpanID {
	if s == nil {
		return 0
	}
	sp.ID = SpanID(s.nextID.Add(1))
	if sp.Start.IsZero() {
		sp.Start = time.Now().Add(-sp.Dur)
	}
	s.file(sp)
	return sp.ID
}

func (s *Spans) file(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recorded++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, sp)
		return
	}
	// Overwrite the oldest slot, like the tracer ring: completion order is
	// the ring order.
	s.buf[int((s.recorded-1)%uint64(cap(s.buf)))] = sp
}

// Recorded returns the total number of spans ever filed into the ring.
func (s *Spans) Recorded() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recorded
}

// Dropped returns how many spans were overwritten by ring wrap-around.
func (s *Spans) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recorded - uint64(len(s.buf))
}

// Snapshot returns the retained spans in completion order, oldest first.
func (s *Spans) Snapshot() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, 0, len(s.buf))
	if len(s.buf) < cap(s.buf) {
		return append(out, s.buf...)
	}
	head := int(s.recorded % uint64(cap(s.buf)))
	out = append(out, s.buf[head:]...)
	return append(out, s.buf[:head]...)
}

// ActiveSpan is an in-flight span opened by Spans.Start. It is owned by
// the goroutine that started it (the single-writer ingest paths); End
// files it into the ring. All methods tolerate a nil receiver.
type ActiveSpan struct {
	c  *Spans
	sp Span
}

// Context returns the causal handle children parent-link against. Valid
// from the moment Start returns; the zero context on a nil receiver.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{ID: a.sp.ID, Epoch: a.sp.Epoch}
}

// Attr attaches one modeled work count; returns the receiver for chaining.
func (a *ActiveSpan) Attr(key string, val int64) *ActiveSpan {
	if a == nil {
		return nil
	}
	if a.sp.Attrs == nil {
		a.sp.Attrs = make(map[string]int64, 4)
	}
	a.sp.Attrs[key] = val
	return a
}

// SetCause records why the span's work happened (rebuild cause, growth
// cause, refine answer path).
func (a *ActiveSpan) SetCause(cause string) *ActiveSpan {
	if a == nil {
		return nil
	}
	a.sp.Cause = cause
	return a
}

// SetSys records the framework model a build/query span acted for.
func (a *ActiveSpan) SetSys(sys string) *ActiveSpan {
	if a == nil {
		return nil
	}
	a.sp.Sys = sys
	return a
}

// SetEpoch re-pins the span to epoch — batch spans start before the
// updates apply and settle on the post-batch epoch at End.
func (a *ActiveSpan) SetEpoch(epoch int64) *ActiveSpan {
	if a == nil {
		return nil
	}
	a.sp.Epoch = epoch
	return a
}

// End stamps the duration and files the span. Calling End twice files the
// span twice; don't.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.sp.Dur = time.Since(a.sp.Start)
	a.c.file(a.sp)
}

// Chrome-trace export. The format is the Trace Event JSON the Perfetto UI
// and chrome://tracing load directly: "X" complete events carry the spans
// (ts/dur in microseconds), "M" metadata names the tracks, and "s"/"f"
// flow-event pairs draw the causal arrows for parent links whose parent is
// retained in the export set.

// spanTrack maps a span kind onto a stable pseudo-thread so the viewer
// groups the pipeline stages into readable lanes.
func spanTrack(kind string) (tid int, name string) {
	switch kind {
	case "ingest", "maintain":
		return 1, "ingest+maintain"
	case "publish":
		return 2, "publish"
	case "build":
		return 3, "view-build"
	default: // "query" and anything future
		return 4, "query"
	}
}

// chromeEvent is one Trace Event; field order here fixes the JSON key
// order, keeping the export byte-stable for golden tests.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePid = 1

func usec(t time.Time) float64        { return float64(t.UnixNano()) / 1e3 }
func usecDur(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace renders the retained spans as Chrome Trace Event JSON
// ({"traceEvents": [...]}), loadable in Perfetto. Every span becomes a
// complete ("X") slice on its kind's track; a parent link whose parent
// span is also retained additionally becomes a flow arrow from parent to
// child. Safe on a nil receiver (renders an empty trace).
func (s *Spans) WriteChromeTrace(w io.Writer) error {
	spans := s.Snapshot()
	present := make(map[SpanID]*Span, len(spans))
	for i := range spans {
		present[spans[i].ID] = &spans[i]
	}

	events := make([]chromeEvent, 0, 2*len(spans)+8)
	tracks := make(map[int]string, 4)
	for _, sp := range spans {
		tid, tname := spanTrack(sp.Kind)
		tracks[tid] = tname
		dur := usecDur(sp.Dur)
		args := map[string]any{
			"span_id": uint64(sp.ID),
			"epoch":   sp.Epoch,
		}
		if sp.Parent != 0 {
			args["parent_id"] = uint64(sp.Parent)
		}
		if sp.Cause != "" {
			args["cause"] = sp.Cause
		}
		if sp.Sys != "" {
			args["sys"] = sp.Sys
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Cat: sp.Kind, Ph: "X",
			Ts: usec(sp.Start), Dur: &dur,
			Pid: chromePid, Tid: tid, Args: args,
		})
		if parent, ok := present[sp.Parent]; ok && sp.Parent != sp.ID {
			// Flow arrow: the start point must lie inside the parent slice,
			// so clamp the child's start into the parent's extent.
			ptid, _ := spanTrack(parent.Kind)
			ts := usec(sp.Start)
			if lo := usec(parent.Start); ts < lo {
				ts = lo
			}
			if hi := usec(parent.Start) + usecDur(parent.Dur); ts > hi {
				ts = hi
			}
			id := fmt.Sprintf("%d", uint64(sp.ID))
			events = append(events, chromeEvent{
				Name: "causal", Cat: "causal", Ph: "s",
				Ts: ts, Pid: chromePid, Tid: ptid, ID: id,
			}, chromeEvent{
				Name: "causal", Cat: "causal", Ph: "f", BP: "e",
				Ts: usec(sp.Start), Pid: chromePid, Tid: tid, ID: id,
			})
		}
	}

	// Track-name metadata, emitted in tid order for determinism.
	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	meta := make([]chromeEvent, 0, len(tids)+1)
	meta = append(meta, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "vebo"},
	})
	for _, tid := range tids {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"name": tracks[tid]},
		})
	}

	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		Recorded        uint64        `json:"recordedSpans"`
		Dropped         uint64        `json:"droppedSpans"`
	}{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
		Recorded:        s.Recorded(),
		Dropped:         s.Dropped(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
