package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured epoch-lifecycle record. Kind names what happened
// ("batch", "repair", "rebuild", "grow", "resort", "compact", "publish",
// "graph", "engine"), Cause why ("threshold-trip", "rotation-stall",
// "growth-spill", …); see DESIGN.md §6 for the full vocabulary. Dur carries
// the wall-clock duration of the step, N any modeled work counts alongside
// it.
type Event struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Epoch int64     `json:"epoch"`
	Kind  string    `json:"kind"`
	Cause string    `json:"cause,omitempty"`
	// Sys names the framework model for engine-layer events.
	Sys string           `json:"sys,omitempty"`
	Dur time.Duration    `json:"dur_ns,omitempty"`
	N   map[string]int64 `json:"n,omitempty"`
}

// DefaultTraceCapacity is the ring size NewTracer(0) selects.
const DefaultTraceCapacity = 1024

// Tracer is a bounded ring buffer of Events. Emit may be called from any
// goroutine (the ingest side and lazy engine builds on reader goroutines
// both emit); when the ring is full the oldest events are overwritten —
// Dropped counts them. All methods are no-ops on a nil receiver.
type Tracer struct {
	mu sync.Mutex
	//vebo:guardedby mu
	buf []Event
	//vebo:guardedby mu
	emitted uint64 // total events ever emitted; buf holds the newest len(buf)
}

// NewTracer returns a tracer retaining the newest capacity events
// (DefaultTraceCapacity when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit appends an event, stamping Seq (monotonic from 1) and, when unset,
// Time.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitted++
	e.Seq = t.emitted
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	// Overwrite the oldest slot: the ring index is Seq modulo capacity.
	t.buf[int((e.Seq-1)%uint64(cap(t.buf)))] = e
}

// Emitted returns the total number of events ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	// Full ring: the oldest retained event follows the newest slot.
	head := int(t.emitted % uint64(cap(t.buf)))
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// EventsForEpoch returns the retained events pinned to one epoch, oldest
// first — the "why did epoch E do that?" query.
func (t *Tracer) EventsForEpoch(epoch int64) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Epoch == epoch {
			out = append(out, e)
		}
	}
	return out
}

// traceSnapshot is the JSON rendering of a tracer.
type traceSnapshot struct {
	Emitted uint64  `json:"emitted"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteJSON renders the retained events (with emission/drop totals) as JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	snap := traceSnapshot{Emitted: t.Emitted(), Dropped: t.Dropped(), Events: t.Events()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}
