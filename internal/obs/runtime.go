package obs

import (
	"runtime"
	"sync"
)

// RuntimeSampler syncs Go process health into a Registry: goroutine count,
// heap bytes, GC cycle count as gauges, and per-cycle GC pause durations
// into a histogram. Sample is cheap enough to run on every /metrics scrape
// (one ReadMemStats), which is where Register wires it — serve exposes
// process health without a sidecar exporter. Nil-safe like every obs
// handle.
type RuntimeSampler struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcCycles   *Gauge
	gcPause    *Histogram

	mu sync.Mutex
	//vebo:guardedby mu
	lastGC uint32 // NumGC at the previous Sample; pauses since then are new
}

// NewRuntimeSampler registers the go_* runtime series on r and returns the
// sampler that refreshes them.
func NewRuntimeSampler(r *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		goroutines: r.Gauge("go_goroutines"),
		heapAlloc:  r.Gauge("go_heap_alloc_bytes"),
		heapSys:    r.Gauge("go_heap_sys_bytes"),
		gcCycles:   r.Gauge("go_gc_cycles"),
		gcPause:    r.Histogram("go_gc_pause_ns"),
	}
}

// Sample refreshes the runtime gauges and observes the pause of every GC
// cycle completed since the previous call (up to the depth of the
// runtime's 256-entry circular pause buffer).
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.heapAlloc.Set(int64(ms.HeapAlloc))
	s.heapSys.Set(int64(ms.HeapSys))
	s.gcCycles.Set(int64(ms.NumGC))

	s.mu.Lock()
	last := s.lastGC
	s.lastGC = ms.NumGC
	s.mu.Unlock()
	n := ms.NumGC - last
	if n > uint32(len(ms.PauseNs)) {
		n = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < n; i++ {
		s.gcPause.Observe(int64(ms.PauseNs[(ms.NumGC-1-i)%uint32(len(ms.PauseNs))]))
	}
}
