package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"
	"time"
)

func TestSpansRingOverflowOrdering(t *testing.T) {
	s := NewSpans(4)
	for i := 0; i < 10; i++ {
		s.Record(Span{Name: "q", Kind: "query", Dur: time.Duration(i)})
	}
	if got := s.Recorded(); got != 10 {
		t.Fatalf("Recorded() = %d, want 10", got)
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot() returned %d spans, want 4", len(snap))
	}
	// Oldest-first completion order: the newest 4 of the 10 recorded.
	for i, sp := range snap {
		if want := SpanID(7 + i); sp.ID != want {
			t.Errorf("Snapshot()[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
}

func TestSpansPartialRingKeepsOrder(t *testing.T) {
	s := NewSpans(8)
	for i := 0; i < 3; i++ {
		s.Record(Span{Name: "q", Kind: "query"})
	}
	snap := s.Snapshot()
	if len(snap) != 3 || s.Dropped() != 0 {
		t.Fatalf("Snapshot len=%d Dropped=%d, want 3 and 0", len(snap), s.Dropped())
	}
	for i, sp := range snap {
		if want := SpanID(1 + i); sp.ID != want {
			t.Errorf("Snapshot()[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
}

func TestSpansNilSafety(t *testing.T) {
	var s *Spans
	if a := s.Start("x", "ingest", 0, SpanContext{}); a != nil {
		t.Fatalf("nil.Start returned %v, want nil", a)
	}
	if id := s.Record(Span{Name: "x"}); id != 0 {
		t.Fatalf("nil.Record returned %d, want 0", id)
	}
	if s.Recorded() != 0 || s.Dropped() != 0 || s.Snapshot() != nil {
		t.Fatal("nil collector counters/snapshot not zero")
	}
	if err := s.WriteChromeTrace(io.Discard); err != nil {
		t.Fatalf("nil.WriteChromeTrace: %v", err)
	}

	var a *ActiveSpan
	if ctx := a.Context(); ctx != (SpanContext{}) {
		t.Fatalf("nil ActiveSpan Context = %+v, want zero", ctx)
	}
	// The chained mutators and End must all tolerate nil.
	a.Attr("k", 1).SetCause("c").SetSys("s").SetEpoch(2).End()
}

func TestActiveSpanLifecycle(t *testing.T) {
	s := NewSpans(8)
	parent := s.Start("batch", "ingest", 3, SpanContext{})
	if parent.Context().ID == 0 {
		t.Fatal("Start did not assign an ID before End")
	}
	child := s.Start("repair", "maintain", 3, parent.Context())
	child.Attr("swaps", 7).SetCause("threshold-trip").End()
	parent.SetEpoch(4).Attr("applied", 64).End()

	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(snap))
	}
	// Completion order: the child ended first.
	c, p := snap[0], snap[1]
	if c.Name != "repair" || p.Name != "batch" {
		t.Fatalf("completion order wrong: got %q then %q", c.Name, p.Name)
	}
	if c.Parent != p.ID {
		t.Errorf("child.Parent = %d, want parent ID %d", c.Parent, p.ID)
	}
	if c.Attrs["swaps"] != 7 || c.Cause != "threshold-trip" {
		t.Errorf("child attrs/cause not retained: %+v", c)
	}
	if p.Epoch != 4 {
		t.Errorf("SetEpoch not applied: epoch = %d", p.Epoch)
	}
	if c.Dur < 0 || p.Dur < 0 {
		t.Errorf("negative durations: %v %v", c.Dur, p.Dur)
	}
}

func TestSpansRecordBackdatesStart(t *testing.T) {
	s := NewSpans(2)
	before := time.Now()
	s.Record(Span{Name: "q", Kind: "query", Dur: time.Second})
	sp := s.Snapshot()[0]
	if sp.Start.After(before) {
		t.Errorf("Record did not back-date Start by Dur: start %v, recorded at %v", sp.Start, before)
	}
	fixed := time.Unix(100, 0)
	s.Record(Span{Name: "q2", Kind: "query", Start: fixed, Dur: time.Second})
	if got := s.Snapshot()[1].Start; !got.Equal(fixed) {
		t.Errorf("Record overwrote explicit Start: got %v, want %v", got, fixed)
	}
}

func TestSpansConcurrentEmitAndExport(t *testing.T) {
	s := NewSpans(64)
	const writers = 4
	const perWriter = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(epoch int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if i%2 == 0 {
					a := s.Start("batch", "ingest", epoch, SpanContext{})
					a.Attr("applied", int64(i)).End()
				} else {
					s.Record(Span{Name: "q", Kind: "query", Epoch: epoch, Dur: time.Microsecond})
				}
			}
		}(int64(w))
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Snapshot()
			if err := s.WriteChromeTrace(io.Discard); err != nil {
				t.Errorf("WriteChromeTrace: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if got := s.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded() = %d, want %d", got, writers*perWriter)
	}
}

// chromeTrace mirrors the exporter's output shape for decoding in tests.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   string         `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
	Recorded        uint64 `json:"recordedSpans"`
	Dropped         uint64 `json:"droppedSpans"`
}

func TestWriteChromeTraceGolden(t *testing.T) {
	s := NewSpans(8)
	base := time.Unix(1000, 0)
	pubID := s.Record(Span{
		Name: "publish", Kind: "publish", Epoch: 5,
		Start: base, Dur: 2 * time.Millisecond,
		Attrs: map[string]int64{"delta_backlog": 3},
	})
	s.Record(Span{
		Name: "query:bfs", Kind: "query", Cause: "full", Sys: "ligra", Epoch: 5,
		Parent: pubID, Start: base.Add(10 * time.Millisecond), Dur: time.Millisecond,
	})

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if tr.DisplayTimeUnit != "ms" || tr.Recorded != 2 || tr.Dropped != 0 {
		t.Fatalf("header wrong: unit=%q recorded=%d dropped=%d", tr.DisplayTimeUnit, tr.Recorded, tr.Dropped)
	}

	var xEvents, flows, meta int
	var sawFlowStart, sawFlowEnd bool
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			xEvents++
			if ev.Dur == nil {
				t.Errorf("X event %q missing dur", ev.Name)
			}
			if ev.Name == "query:bfs" {
				// ts is microseconds; the query started 10ms after base.
				want := float64(base.Add(10*time.Millisecond).UnixNano()) / 1e3
				if ev.Ts != want {
					t.Errorf("query ts = %v, want %v", ev.Ts, want)
				}
				if ev.Args["parent_id"] != float64(pubID) {
					t.Errorf("query parent_id = %v, want %d", ev.Args["parent_id"], pubID)
				}
				if ev.Args["cause"] != "full" || ev.Args["sys"] != "ligra" {
					t.Errorf("query args missing cause/sys: %v", ev.Args)
				}
			}
			if ev.Name == "publish" && ev.Args["delta_backlog"] != float64(3) {
				t.Errorf("publish attrs not exported: %v", ev.Args)
			}
		case "s":
			flows++
			sawFlowStart = true
			// The flow must originate inside the parent slice: publish runs
			// [base, base+2ms] but the query starts at +10ms, so the start
			// point is clamped to the slice end.
			hi := float64(base.Add(2*time.Millisecond).UnixNano()) / 1e3
			if ev.Ts != hi {
				t.Errorf("flow start ts = %v, want clamped %v", ev.Ts, hi)
			}
		case "f":
			flows++
			sawFlowEnd = true
			if ev.BP != "e" {
				t.Errorf("flow end bp = %q, want \"e\"", ev.BP)
			}
		}
	}
	if xEvents != 2 {
		t.Errorf("X events = %d, want 2", xEvents)
	}
	if flows != 2 || !sawFlowStart || !sawFlowEnd {
		t.Errorf("flow pair incomplete: %d flow events (s=%v f=%v)", flows, sawFlowStart, sawFlowEnd)
	}
	// process_name + the two touched tracks (publish, query).
	if meta != 3 {
		t.Errorf("metadata events = %d, want 3", meta)
	}
}

func TestWriteChromeTraceOrphanParentNoFlow(t *testing.T) {
	s := NewSpans(2)
	// Parent ID 99 was never retained: the slice must still export, with no
	// dangling flow arrow.
	s.Record(Span{Name: "q", Kind: "query", Parent: 99, Dur: time.Millisecond})
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "s" || ev.Ph == "f" {
			t.Fatalf("orphan parent produced flow event: %+v", ev)
		}
	}
}

func TestSpanTracks(t *testing.T) {
	cases := []struct {
		kind string
		tid  int
	}{
		{"ingest", 1}, {"maintain", 1}, {"publish", 2}, {"build", 3}, {"query", 4}, {"future", 4},
	}
	for _, c := range cases {
		if tid, _ := spanTrack(c.kind); tid != c.tid {
			t.Errorf("spanTrack(%q) tid = %d, want %d", c.kind, tid, c.tid)
		}
	}
}
