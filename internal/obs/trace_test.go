package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Emit(Event{Epoch: int64(i), Kind: "batch"})
	}
	if got := tr.Emitted(); got != 10 {
		t.Fatalf("emitted = %d", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	// The newest capacity events survive, oldest first, with contiguous
	// monotonic sequence numbers.
	for i, e := range evs {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.Epoch != int64(wantSeq) {
			t.Fatalf("event %d = seq %d epoch %d, want seq %d", i, e.Seq, e.Epoch, wantSeq)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
	}
}

func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Kind: "repair", Cause: "threshold-trip"})
	tr.Emit(Event{Kind: "rebuild", Cause: "rotation-stall"})
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Kind != "repair" || evs[1].Cause != "rotation-stall" {
		t.Fatalf("events out of order: %+v", evs)
	}
}

func TestEventsForEpoch(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(Event{Epoch: 5, Kind: "repair", Cause: "threshold-trip"})
	tr.Emit(Event{Epoch: 5, Kind: "rebuild", Cause: "repair-shortfall"})
	tr.Emit(Event{Epoch: 6, Kind: "batch"})
	evs := tr.EventsForEpoch(5)
	if len(evs) != 2 || evs[0].Kind != "repair" || evs[1].Kind != "rebuild" {
		t.Fatalf("epoch 5 events = %+v", evs)
	}
	if got := tr.EventsForEpoch(99); got != nil {
		t.Fatalf("epoch 99 events = %+v", got)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: "batch"}) // must not panic
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatalf("nil tracer retained state")
	}
	if err := tr.WriteJSON(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(4)
	tr.Emit(Event{Epoch: 3, Kind: "grow", Cause: "growth-spill", N: map[string]int64{"admitted": 7}})
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Emitted uint64  `json:"emitted"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if snap.Emitted != 1 || len(snap.Events) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	e := snap.Events[0]
	if e.Kind != "grow" || e.Cause != "growth-spill" || e.N["admitted"] != 7 {
		t.Fatalf("event = %+v", e)
	}
}

// TestConcurrentEmit exercises the tracer from many goroutines; under -race
// this is the ring's safety proof.
func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Kind: "batch"})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = tr.Events()
			_ = tr.Dropped()
		}
	}()
	wg.Wait()
	if got := tr.Emitted(); got != 8*500 {
		t.Fatalf("emitted = %d", got)
	}
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
