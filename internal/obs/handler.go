package obs

import "net/http"

// Register mounts the observability endpoints on mux:
//
//	/metrics      — Prometheus text exposition of the registry
//	/metrics.json — the same registry as a JSON array
//	/trace        — the tracer's retained events as JSON
//	/spans        — the causal span ring as Chrome Trace Event JSON
//	                (load in Perfetto or chrome://tracing)
//
// Any argument may be nil (the endpoint then renders empty). A
// RuntimeSampler is attached to r: each /metrics and /metrics.json scrape
// refreshes the go_* process-health series before rendering.
func Register(mux *http.ServeMux, r *Registry, t *Tracer, s *Spans) {
	rt := NewRuntimeSampler(r)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		rt.Sample()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		rt.Sample()
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.WriteChromeTrace(w)
	})
}

// Handler returns an http.Handler serving the Register endpoints.
func Handler(r *Registry, t *Tracer, s *Spans) http.Handler {
	mux := http.NewServeMux()
	Register(mux, r, t, s)
	return mux
}
