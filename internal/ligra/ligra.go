// Package ligra models the Ligra framework (Shun & Blelloch, PPoPP'13): no
// explicit graph partitioning, Cilk-style dynamic scheduling, and no
// locality optimization. Dense (pull) edgemaps recursively split the whole
// vertex range down to a grain; sparse (push) edgemaps chunk the frontier.
// Because scheduling is dynamic, modeled loop time uses list-scheduling
// makespans — which is why, in the paper, Ligra profits least from VEBO's
// load balancing.
package ligra

import (
	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// Config parameterizes the Ligra model.
type Config struct {
	Engine engine.Config
	// Grain is the number of vertices per Cilk leaf task in dense
	// traversal; 0 selects n/384 (clamped to ≥ 64), mirroring the implicit
	// partitioning the paper observes for Cilk loops.
	Grain int
}

// Ligra is an Engine with Ligra's scheduling policy.
type Ligra struct {
	g       *graph.Graph
	cfg     Config
	units   []engine.Range
	metrics engine.Metrics
}

// New builds a Ligra engine over g.
func New(g *graph.Graph, cfg Config) *Ligra {
	cfg.Engine = cfg.Engine.WithDefaults()
	if cfg.Grain <= 0 {
		cfg.Grain = g.NumVertices() / 384
		if cfg.Grain < 64 {
			cfg.Grain = 64
		}
	}
	return &Ligra{
		g:     g,
		cfg:   cfg,
		units: engine.SplitRange(g.NumVertices(), cfg.Grain),
	}
}

// Rebind returns a Ligra engine over g reusing l's configuration and dense
// scheduling units (which depend only on the vertex count). Ligra keeps no
// partitioned per-edge structures — no stored vertex IDs at all beyond the
// graph itself — so "patching" it across epochs is just a rebind of the
// graph pointer with fresh metrics, valid under any renumbering of the
// vertex space: identical ordering, a segment-local permutation from a
// placement-preserving repair, a full rebuild, or a grown vertex count
// alike. A changed vertex count re-derives the scheduling units (an
// O(n/grain) range split); everything else carries over. Under headroom
// growth the slot space — and with it the unit split — is constant across
// a lineage, so admissions take the sharing path; the count only changes
// at a relabeling spill, which rebuilds from scratch anyway.
func (l *Ligra) Rebind(g *graph.Graph) *Ligra {
	if g.NumVertices() != l.g.NumVertices() {
		return New(g, l.cfg)
	}
	return &Ligra{g: g, cfg: l.cfg, units: l.units}
}

// Name implements Engine.
func (l *Ligra) Name() string { return "ligra" }

// Graph implements Engine.
func (l *Ligra) Graph() *graph.Graph { return l.g }

// Metrics implements Engine.
func (l *Ligra) Metrics() *engine.Metrics { return &l.metrics }

// EdgeMap implements Engine with direction optimization.
func (l *Ligra) EdgeMap(f *frontier.Frontier, k engine.EdgeKernel) *frontier.Frontier {
	threads := l.cfg.Engine.Topology.Threads()
	if f.ShouldBeDense(l.g.NumEdges()) {
		out, costs := engine.DensePull(l.g, f, k, l.units, threads)
		l.metrics.Add(engine.Step{
			Kind:           engine.StepEdgeMapDense,
			ActiveVertices: f.Count(),
			ActiveEdges:    f.OutEdges(),
			TotalCost:      engine.Sum(costs),
			Makespan:       engine.MakespanDynamic(costs, threads),
			UnitCosts:      costs,
		})
		return out
	}
	out, costs := engine.SparsePush(l.g, f, k, l.cfg.Engine.SparseChunk, threads)
	l.metrics.Add(engine.Step{
		Kind:           engine.StepEdgeMapSparse,
		ActiveVertices: f.Count(),
		ActiveEdges:    f.OutEdges(),
		TotalCost:      engine.Sum(costs),
		Makespan:       engine.MakespanDynamic(costs, threads),
		UnitCosts:      costs,
	})
	return out
}

// VertexMap implements Engine with dynamic chunking over active vertices.
func (l *Ligra) VertexMap(f *frontier.Frontier, fn func(v graph.VertexID) bool) *frontier.Frontier {
	threads := l.cfg.Engine.Topology.Threads()
	out, costs := engine.VertexMapDynamic(l.g, f, fn, l.cfg.Engine.SparseChunk, threads)
	l.metrics.Add(engine.Step{
		Kind:           engine.StepVertexMap,
		ActiveVertices: f.Count(),
		ActiveEdges:    f.OutEdges(),
		TotalCost:      engine.Sum(costs),
		Makespan:       engine.MakespanDynamic(costs, threads),
		UnitCosts:      costs,
	})
	return out
}
