package ligra

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
)

var top = numa.Topology{Sockets: 2, ThreadsPerSocket: 2}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 1500, S: 1.0, MaxDegree: 80, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGrainDefault(t *testing.T) {
	g := testGraph(t)
	l := New(g, Config{Engine: engine.Config{Topology: top}})
	if l.cfg.Grain != 64 { // n/384 < 64 → clamped
		t.Fatalf("grain = %d, want 64", l.cfg.Grain)
	}
	if l.Name() != "ligra" || l.Graph() != g {
		t.Fatal("identity accessors wrong")
	}
}

func TestDirectionOptimization(t *testing.T) {
	g := testGraph(t)
	l := New(g, Config{Engine: engine.Config{Topology: top}})
	k := engine.EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { return false },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { return false },
	}
	l.EdgeMap(frontier.All(g), k)
	if got := l.Metrics().LastStep().Kind; got != engine.StepEdgeMapDense {
		t.Fatalf("full frontier used %v", got)
	}
	l.EdgeMap(frontier.FromVertex(g, 0), k)
	if got := l.Metrics().LastStep().Kind; got != engine.StepEdgeMapSparse {
		t.Fatalf("single-vertex frontier used %v", got)
	}
}

func TestDenseMakespanIsDynamic(t *testing.T) {
	// With dynamic list scheduling, the makespan must respect Graham's
	// bound rather than the static max-block cost.
	g := testGraph(t)
	l := New(g, Config{Engine: engine.Config{Topology: top}, Grain: 100})
	k := engine.EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { return true },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { return true },
	}
	l.EdgeMap(frontier.All(g), k)
	step := l.Metrics().LastStep()
	var maxUnit int64
	for _, c := range step.UnitCosts {
		if c > maxUnit {
			maxUnit = c
		}
	}
	w := int64(top.Threads())
	if step.Makespan > step.TotalCost/w+maxUnit {
		t.Errorf("makespan %d exceeds Graham bound %d", step.Makespan, step.TotalCost/w+maxUnit)
	}
}

func TestVertexMapCountsActiveOnly(t *testing.T) {
	g := testGraph(t)
	l := New(g, Config{Engine: engine.Config{Topology: top}})
	f := frontier.FromVertices(g, []graph.VertexID{1, 2, 3})
	visits := 0
	l.VertexMap(f, func(v graph.VertexID) bool { visits++; return false })
	if visits != 3 {
		t.Fatalf("visited %d vertices, want 3", visits)
	}
	if got := l.Metrics().LastStep().TotalCost; got != 3*engine.CostVertex {
		t.Fatalf("vertexmap cost %d", got)
	}
}
