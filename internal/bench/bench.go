// Package bench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index). Each
// experiment builds its workload from the synthetic recipes in internal/gen,
// runs the relevant pipeline and prints the same rows or series the paper
// reports. Absolute numbers are modeled (cost units or simulated cycles, as
// documented in internal/engine and internal/memsim); the comparisons —
// who wins, by roughly what factor, where crossovers fall — are the
// reproduction targets.
package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphgrind"
	"repro/internal/layout"
	"repro/internal/ligra"
	"repro/internal/numa"
	"repro/internal/order"
	"repro/internal/polymer"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies the recipe vertex counts (1.0 ≈ 10^5 vertices).
	Scale float64
	// Seed drives all generators.
	Seed int64
	// Partitions is the GraphGrind partition count (the paper's 384).
	Partitions int
	// Topology is the virtual NUMA machine (the paper's 4×12 by default).
	Topology numa.Topology
	// Out receives the report.
	Out io.Writer
	// Quick selects the CI smoke configuration: the streaming experiments
	// (dynamic, view) replay only a couple of batches so the drivers can't
	// silently rot, and the view experiment fails — instead of merely
	// reporting — when the maintained-row work ratio regresses to ≤ 1×
	// (i.e. when engine patching stops applying under active maintenance).
	Quick bool
	// JSONDir, when non-empty, receives one BENCH_<experiment>.json report
	// per JSON-emitting experiment (wall, view, grow); see Report for the
	// schema. Empty disables emission.
	JSONDir string
}

// WithDefaults fills in the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Partitions == 0 {
		c.Partitions = 384
	}
	if c.Topology.Sockets == 0 {
		c.Topology = numa.Default()
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Experiments lists the available experiment names in paper order.
func Experiments() []string {
	return []string{"fig1", "table1", "table3", "table4", "fig4", "fig5", "table5", "fig6", "table6", "partitioners", "dynamic", "view", "grow", "refine", "wall"}
}

// Run executes the named experiment ("all" runs every one).
func Run(name string, cfg Config) error {
	cfg = cfg.WithDefaults()
	switch name {
	case "fig1":
		return Fig1(cfg)
	case "table1":
		return Table1(cfg)
	case "table3":
		return Table3(cfg)
	case "table4":
		return Table4(cfg)
	case "fig4":
		return Fig4(cfg)
	case "fig5":
		return Fig5(cfg)
	case "table5":
		return Table5(cfg)
	case "fig6":
		return Fig6(cfg)
	case "table6":
		return Table6(cfg)
	case "partitioners":
		return Partitioners(cfg)
	case "dynamic":
		return Dynamic(cfg)
	case "view":
		return View(cfg)
	case "grow":
		return Grow(cfg)
	case "refine":
		return Refine(cfg)
	case "wall":
		return Wall(cfg)
	case "all":
		for _, e := range Experiments() {
			if err := Run(e, cfg); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v or \"all\")", name, Experiments())
	}
}

// buildRecipe generates the named recipe graph at the configured scale.
func buildRecipe(cfg Config, name string) (*graph.Graph, error) {
	r, err := gen.RecipeByName(name)
	if err != nil {
		return nil, err
	}
	return r.Build(cfg.Scale, cfg.Seed)
}

// orderingNames is the paper's Table III column order.
var orderingNames = []string{"orig", "rcm", "gorder", "vebo"}

// ordered holds a reordered graph together with its permutation and, for
// VEBO, partition boundaries.
type ordered struct {
	name   string
	g      *graph.Graph
	perm   []graph.VertexID // old -> new
	bounds map[int][]int64  // VEBO boundaries per partition count (nil otherwise)
}

// applyOrderings produces the four Table III graph variants. VEBO bounds are
// computed for each requested partition count.
func applyOrderings(g *graph.Graph, veboPartitionCounts []int) ([]ordered, error) {
	out := make([]ordered, 0, 4)
	out = append(out, ordered{name: "orig", g: g, perm: order.Identity(g)})

	rcmPerm := order.RCM(g)
	rg, err := g.Relabel(rcmPerm)
	if err != nil {
		return nil, err
	}
	out = append(out, ordered{name: "rcm", g: rg, perm: rcmPerm})

	goPerm := order.Gorder(g, order.GorderConfig{MaxSiblingDegree: 64})
	gg, err := g.Relabel(goPerm)
	if err != nil {
		return nil, err
	}
	out = append(out, ordered{name: "gorder", g: gg, perm: goPerm})

	vo, err := veboOrdered(g, veboPartitionCounts)
	if err != nil {
		return nil, err
	}
	out = append(out, *vo)
	return out, nil
}

// veboOrdered reorders g with VEBO; the permutation uses the largest
// partition count, and bounds are recorded for every requested count.
func veboOrdered(g *graph.Graph, partitionCounts []int) (*ordered, error) {
	if len(partitionCounts) == 0 {
		partitionCounts = []int{graphgrind.DefaultPartitions}
	}
	counts := append([]int(nil), partitionCounts...)
	sort.Ints(counts)
	main := counts[len(counts)-1]
	r, err := core.Reorder(g, main, core.Options{})
	if err != nil {
		return nil, err
	}
	vg, err := core.Apply(g, r)
	if err != nil {
		return nil, err
	}
	o := &ordered{name: "vebo", g: vg, perm: r.Perm, bounds: map[int][]int64{main: r.Boundaries()}}
	for _, p := range counts[:len(counts)-1] {
		// Coarser partitionings reuse the fine boundaries: merging balanced
		// fine partitions groupwise keeps both vertex and edge balance.
		o.bounds[p] = core.CoarsenBounds(o.bounds[main], p)
	}
	return o, nil
}

// systemNames is the paper's framework order.
var systemNames = []string{"ligra", "polymer", "graphgrind"}

// newEngine constructs the named framework model over g. bounds may be nil
// (Algorithm 1 partitioning). ggOrder selects GraphGrind's COO edge order.
func newEngine(sys string, g *graph.Graph, cfg Config, bounds []int64, ggOrder layout.Order, ggParts int) (engine.Engine, error) {
	ecfg := engine.Config{Topology: cfg.Topology}
	switch sys {
	case "ligra":
		return ligra.New(g, ligra.Config{Engine: ecfg}), nil
	case "polymer":
		var b []int64
		if bounds != nil {
			b = core.CoarsenBounds(bounds, cfg.Topology.Sockets)
		}
		return polymer.New(g, polymer.Config{Engine: ecfg, Bounds: b})
	case "graphgrind":
		return graphgrind.New(g, graphgrind.Config{
			Engine: ecfg, Partitions: ggParts, Order: ggOrder, Bounds: bounds,
		})
	default:
		return nil, fmt.Errorf("bench: unknown system %q", sys)
	}
}

// pickRoot returns the vertex with the highest out-degree, the conventional
// root for traversal benchmarks on scale-free graphs.
func pickRoot(g *graph.Graph) graph.VertexID {
	var best graph.VertexID
	var bestDeg int64 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > bestDeg {
			bestDeg = d
			best = graph.VertexID(v)
		}
	}
	return best
}
