package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
)

// Report is the machine-readable result record shared by every experiment
// that emits JSON (wall, view, grow). CI parses these files, so the schema is
// append-only: new fields may be added, existing ones keep their names.
type Report struct {
	Experiment    string          `json:"experiment"`
	GeneratedUnix int64           `json:"generated_unix"`
	Config        ReportConfig    `json:"config"`
	Series        []LatencySeries `json:"series,omitempty"`
	Gates         []Gate          `json:"gates,omitempty"`
	// Modeled carries work-unit numbers (construction edges, ratios) that
	// have no wall-clock dimension; see DESIGN.md §6 on why the two are
	// reported side by side instead of being conflated.
	Modeled map[string]float64 `json:"modeled,omitempty"`
}

// ReportConfig records the knobs that shaped the run.
type ReportConfig struct {
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	Ops   int     `json:"ops,omitempty"`
	Batch int     `json:"batch,omitempty"`
	Quick bool    `json:"quick"`
}

// LatencySeries is one measured operation stream: ingest batches or queries
// of one algorithm on one framework model. Latencies are wall-clock
// milliseconds from the obs registry's log-bucketed histograms (2× quantile
// error bound).
type LatencySeries struct {
	Op        string  `json:"op"`                // "ingest" or "query"
	Alg       string  `json:"alg,omitempty"`     // query algorithm, empty for ingest
	System    string  `json:"system,omitempty"`  // framework model, empty for ingest
	Variant   string  `json:"variant,omitempty"` // query strategy (refine: "refined" vs "scratch")
	Batch     int     `json:"batch,omitempty"`   // ingest batch size shaping the series, when varied
	Count     int64   `json:"count"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
}

// Gate is a pass/fail check the experiment enforces in Quick mode; CI fails
// when any emitted gate has pass=false, mirroring the in-process error.
type Gate struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Pass      bool    `json:"pass"`
}

// seriesFromHistogram converts an obs histogram (nanosecond observations)
// into a LatencySeries over the given wall-clock window.
func seriesFromHistogram(op, alg, system string, h *obs.Histogram, elapsed time.Duration) LatencySeries {
	s := LatencySeries{Op: op, Alg: alg, System: system, Count: h.Count()}
	if elapsed > 0 {
		s.OpsPerSec = float64(s.Count) / elapsed.Seconds()
	}
	const ms = 1e6
	s.P50Ms = float64(h.Quantile(0.50)) / ms
	s.P95Ms = float64(h.Quantile(0.95)) / ms
	s.P99Ms = float64(h.Quantile(0.99)) / ms
	s.MeanMs = h.Mean() / ms
	return s
}

// writeReport writes BENCH_<experiment>.json into cfg.JSONDir; an empty
// JSONDir disables emission (the library/test default).
func writeReport(cfg Config, r Report) error {
	if cfg.JSONDir == "" {
		return nil
	}
	if r.GeneratedUnix == 0 {
		r.GeneratedUnix = time.Now().Unix()
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(cfg.JSONDir, "BENCH_"+r.Experiment+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	fmt.Fprintf(cfg.Out, "wrote %s\n", path)
	return nil
}
