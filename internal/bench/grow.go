package bench

import (
	"fmt"
	"time"

	vebo "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// growOps is the stream length at the default scale (0.2); other scales
// stream proportionally.
const growOps = 10_000

// growBatch matches viewBatch: small batches are the serving regime where
// engine reuse pays.
const growBatch = 64

// growFrac is the per-insertion vertex-arrival probability. At 0.015 and
// batch 64 roughly half the batches admit at least one vertex — well above
// the ≥10% bar the experiment certifies — while the other half exercise the
// pure-churn fast path, the mix a live ingest tier actually sees.
const growFrac = 0.015

// Grow is an extension experiment (not a paper table): it measures engine
// reuse on a stream that interleaves vertex arrivals with edge churn, the
// regime the growable vertex space exists for. A powerlaw churn stream with
// a growth knob is replayed batch by batch; after every batch the freshly
// published view builds all three framework engines, patched from the
// previous epoch's (admissions land in reserved headroom slots, so grown
// partitions rebuild and every other partition is shared outright) or
// rebuilt from scratch (DisableViewReuse). The work ratio compares
// rebuild-from-scratch construction work against the patched runs'; in
// Quick mode a maintained ratio ≤ 2× — growth epochs falling back to
// linear remaps — is an error, as is any relabeled edge in the
// frozen-placement row, where the identity-outside-growth injection must
// make remap work exactly zero.
func Grow(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	ops := int(float64(growOps) * cfg.Scale / 0.2)
	if ops < 4*growBatch {
		ops = 4 * growBatch
	}
	if cfg.Quick {
		// Long enough to amortize the maintained row's warm-up re-sorts;
		// shorter streams under-report its steady-state work ratio.
		ops = 24 * growBatch
	}
	g, updates, err := gen.StreamFromRecipeOpts("powerlaw", cfg.Scale, ops, cfg.Seed,
		gen.RecipeStreamOptions{GrowFrac: growFrac})
	if err != nil {
		return err
	}

	// Count the batches that introduce new vertices (an endpoint at or
	// beyond the running vertex count).
	growBatches, batches := 0, 0
	maxSeen := graph.VertexID(g.NumVertices() - 1)
	for lo := 0; lo < len(updates); lo += growBatch {
		hi := lo + growBatch
		if hi > len(updates) {
			hi = len(updates)
		}
		batches++
		grew := false
		for _, u := range updates[lo:hi] {
			if u.Src > maxSeen {
				maxSeen = u.Src
				grew = true
			}
			if u.Dst > maxSeen {
				maxSeen = u.Dst
				grew = true
			}
		}
		if grew {
			growBatches++
		}
	}
	growBatchFrac := float64(growBatches) / float64(batches)
	fmt.Fprintf(w, "== Extension: growable vertex space (powerlaw, %d updates, batch %d, P=%d) ==\n",
		len(updates), growBatch, 64)
	fmt.Fprintf(w, "vertex arrivals: %d (n %d -> %d); %d of %d batches grow (%.0f%%)\n",
		int(maxSeen)+1-g.NumVertices(), g.NumVertices(), int(maxSeen)+1,
		growBatches, batches, 100*growBatchFrac)

	engOpts := vebo.EngineOptions{
		Sockets:          cfg.Topology.Sockets,
		ThreadsPerSocket: cfg.Topology.ThreadsPerSocket,
	}
	// Same three configurations as the view experiment, all admitting
	// vertices on demand: placement frozen (maximum reuse), scratch rebuilds
	// (the baseline the ratios divide by), and default-threshold maintenance
	// (repairs, re-sorts and growth all active at once).
	stable := vebo.DynamicOptions{
		Partitions:             64,
		RebuildThreshold:       1 << 40,
		VertexRebuildThreshold: 1 << 40,
		AutoGrow:               true,
		Engine:                 engOpts,
	}
	scratch := stable
	scratch.DisableViewReuse = true
	maintained := vebo.DynamicOptions{Partitions: 64, AutoGrow: true, Engine: engOpts}

	type row struct {
		name    string
		work    vebo.ViewWork
		elapsed time.Duration
	}
	run := func(name string, opts vebo.DynamicOptions) (row, error) {
		start := time.Now()
		d, err := vebo.NewDynamic(g, opts)
		if err != nil {
			return row{}, err
		}
		for lo := 0; lo < len(updates); lo += growBatch {
			hi := lo + growBatch
			if hi > len(updates) {
				hi = len(updates)
			}
			if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
				return row{}, err
			}
			v := d.View()
			for _, sys := range []vebo.System{vebo.Ligra, vebo.Polymer, vebo.GraphGrind} {
				if _, err := v.Engine(sys); err != nil {
					return row{}, err
				}
			}
		}
		return row{name: name, work: d.ViewWork(), elapsed: time.Since(start)}, nil
	}

	rows := make([]row, 0, 3)
	for _, c := range []struct {
		name string
		opts vebo.DynamicOptions
	}{
		{"patched", stable},
		{"rebuild", scratch},
		{"maintained", maintained},
	} {
		r, err := run(c.name, c.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		rows = append(rows, r)
	}

	fmt.Fprintf(w, "%-12s %8s %10s %14s %14s %14s %14s %9s\n",
		"config", "epochs", "epochs/s", "rebuildEdges", "patchedEdges", "relabeledEdges", "reusedEdges", "partReuse")
	for _, r := range rows {
		partTotal := r.work.PartitionsRebuilt + r.work.PartitionsReused + r.work.PartitionsRelabeled
		reuseFrac := 0.0
		if partTotal > 0 {
			reuseFrac = float64(r.work.PartitionsReused+r.work.PartitionsRelabeled) / float64(partTotal)
		}
		fmt.Fprintf(w, "%-12s %8d %10.1f %14d %14d %14d %14d %8.0f%%\n",
			r.name, r.work.Epochs,
			float64(r.work.Epochs)/r.elapsed.Seconds(),
			r.work.RebuildEdges, r.work.PatchedEdges, r.work.RelabeledEdges, r.work.ReusedEdges,
			100*reuseFrac)
	}

	constructionWork := func(r row) int64 {
		return r.work.RebuildEdges + r.work.PatchedEdges + r.work.RelabeledEdges
	}
	rebuildWork := constructionWork(rows[1])
	ratio := float64(rebuildWork) / float64(constructionWork(rows[0]))
	maintainedRatio := float64(rebuildWork) / float64(constructionWork(rows[2]))
	// Headroom slots make a growth epoch's injection the identity outside
	// the grown segments: the frozen-placement row must do zero remap work
	// (every relabeled edge would be a fallback to the pre-headroom linear
	// shift), and the bar for the maintained row matches the pure-churn
	// experiment's 2×.
	patchedRelabeled := rows[0].work.RelabeledEdges
	fmt.Fprintf(w, "work ratio (rebuild/patched construction edges): %.1f× (target > 1×: %v)\n",
		ratio, ratio > 1)
	fmt.Fprintf(w, "work ratio (rebuild/maintained construction edges): %.1f× (target > 2×: %v)\n",
		maintainedRatio, maintainedRatio > 2)
	fmt.Fprintf(w, "O(delta) growth: %d relabeled edges in the frozen-placement row (target 0: %v)\n",
		patchedRelabeled, patchedRelabeled == 0)
	fmt.Fprintf(w, "wall ratio (rebuild/patched elapsed): %.1f×\n\n",
		rows[1].elapsed.Seconds()/rows[0].elapsed.Seconds())
	if err := writeReport(cfg, Report{
		Experiment: "grow",
		Config:     ReportConfig{Scale: cfg.Scale, Seed: cfg.Seed, Ops: len(updates), Batch: growBatch, Quick: cfg.Quick},
		// Gates mirror exactly the checks Quick mode enforces in-process.
		Gates: []Gate{
			{Name: "grow_batch_frac", Value: growBatchFrac, Threshold: 0.10, Pass: growBatchFrac >= 0.10},
			{Name: "work_ratio_maintained", Value: maintainedRatio, Threshold: 2, Pass: maintainedRatio > 2},
			{Name: "odelta_relabeled_edges_patched", Value: float64(patchedRelabeled), Threshold: 0, Pass: patchedRelabeled == 0},
		},
		Modeled: map[string]float64{
			"work_ratio_patched":            ratio,
			"rebuild_construction_edges":    float64(rebuildWork),
			"patched_construction_edges":    float64(constructionWork(rows[0])),
			"maintained_construction_edges": float64(constructionWork(rows[2])),
		},
	}); err != nil {
		return err
	}
	if cfg.Quick {
		if growBatchFrac < 0.10 {
			return fmt.Errorf("grow: only %.0f%% of batches introduce vertices — the stream no longer exercises growth", 100*growBatchFrac)
		}
		if maintainedRatio <= 2 {
			return fmt.Errorf("grow: maintained-row work ratio %.2f× regressed to <= 2× — growth epochs are paying linear remaps again", maintainedRatio)
		}
		if patchedRelabeled != 0 {
			return fmt.Errorf("grow: frozen-placement row relabeled %d edges — growth injections are no longer the identity outside grown segments", patchedRelabeled)
		}
	}
	return nil
}
