package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name string, v any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func report(exp string, cfg ReportConfig, gates map[string]float64, modeled map[string]float64) Report {
	r := Report{Experiment: exp, Config: cfg, Modeled: modeled}
	for name, v := range gates {
		r.Gates = append(r.Gates, Gate{Name: name, Value: v, Pass: true})
	}
	return r
}

func diffByMetric(rep *BaselineReport) map[string]BaselineDiff {
	out := make(map[string]BaselineDiff, len(rep.Diffs))
	for _, d := range rep.Diffs {
		out[d.Metric] = d
	}
	return out
}

func TestCompareBaselineDirections(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	cfg := ReportConfig{Scale: 0.2, Seed: 42, Ops: 1000, Batch: 64}
	writeJSON(t, baseDir, "BENCH_grow.json", report("grow", cfg,
		map[string]float64{
			"work_ratio_maintained": 2.0, // higher-is-better: 20% drop regresses
			"grow_batch_frac":       0.4, // equal: drift either way regresses
			"relabeled_edges":       0,   // lower + zero baseline: exact contract
		},
		map[string]float64{"placement_edges": 500}, // raw count: equal under same cfg
	))
	writeJSON(t, curDir, "BENCH_grow.json", report("grow", cfg,
		map[string]float64{
			"work_ratio_maintained": 1.6,
			"grow_batch_frac":       0.41,
			"relabeled_edges":       3,
		},
		map[string]float64{"placement_edges": 500},
	))

	var out bytes.Buffer
	rep, err := CompareBaseline(curDir, baseDir, &out)
	if err != nil {
		t.Fatal(err)
	}
	d := diffByMetric(rep)

	if dd := d["gate:work_ratio_maintained"]; !dd.Regressed || dd.Direction != "higher" {
		t.Errorf("ratio drop 2.0->1.6 not flagged: %+v", dd)
	}
	if dd := d["gate:grow_batch_frac"]; dd.Regressed || dd.Direction != "equal" {
		t.Errorf("frac drift within 15%% wrongly flagged: %+v", dd)
	}
	if dd := d["gate:relabeled_edges"]; !dd.Regressed {
		t.Errorf("zero-baseline contract 0->3 not flagged: %+v", dd)
	}
	if dd := d["modeled:placement_edges"]; dd.Regressed {
		t.Errorf("unchanged raw count flagged: %+v", dd)
	}
	if rep.Regressions != 2 {
		t.Errorf("Regressions = %d, want 2 (ratio drop + relabeled contract)", rep.Regressions)
	}

	// The machine-readable diff landed next to the current reports.
	data, err := os.ReadFile(filepath.Join(curDir, "BENCH_baseline_diff.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk BaselineReport
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Regressions != rep.Regressions || len(onDisk.Diffs) != len(rep.Diffs) {
		t.Errorf("BENCH_baseline_diff.json disagrees with returned report")
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("table output lacks REGRESSED rows:\n%s", out.String())
	}
}

func TestCompareBaselineTolerancesOverride(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	cfg := ReportConfig{Scale: 0.2, Seed: 42}
	writeJSON(t, baseDir, "BENCH_refine.json", report("refine", cfg,
		map[string]float64{"refine_speedup_min": 2.0}, nil))
	writeJSON(t, curDir, "BENCH_refine.json", report("refine", cfg,
		map[string]float64{"refine_speedup_min": 1.2}, nil))

	// 40% drop: regresses at the default 15%, passes with a 50% override,
	// and is skipped entirely under direction "ignore".
	rep, err := CompareBaseline(curDir, baseDir, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 {
		t.Fatalf("default tolerance: Regressions = %d, want 1", rep.Regressions)
	}

	writeJSON(t, baseDir, "tolerances.json", BaselineTolerances{
		DefaultPct: 15,
		Metrics:    map[string]MetricTolerance{"gate:refine_speedup_min": {Pct: 50}},
	})
	rep, err = CompareBaseline(curDir, baseDir, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("widened tolerance: Regressions = %d, want 0", rep.Regressions)
	}

	writeJSON(t, baseDir, "tolerances.json", BaselineTolerances{
		Metrics: map[string]MetricTolerance{"gate:refine_speedup_min": {Direction: "ignore"}},
	})
	rep, err = CompareBaseline(curDir, baseDir, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	d := diffByMetric(rep)["gate:refine_speedup_min"]
	if rep.Regressions != 0 || d.Note != "tracked, never gated" {
		t.Fatalf("ignore direction not honored: %+v", d)
	}
}

func TestCompareBaselineConfigMismatch(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	full := ReportConfig{Scale: 0.2, Seed: 42, Ops: 10000, Batch: 64}
	quick := ReportConfig{Scale: 0.05, Seed: 42, Ops: 768, Batch: 64, Quick: true}
	writeJSON(t, baseDir, "BENCH_grow.json", report("grow", full,
		map[string]float64{"work_ratio_maintained": 2.3},
		map[string]float64{"placement_edges": 90000}))
	writeJSON(t, curDir, "BENCH_grow.json", report("grow", quick,
		map[string]float64{"work_ratio_maintained": 2.1},
		map[string]float64{"placement_edges": 4000}))

	rep, err := CompareBaseline(curDir, baseDir, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	d := diffByMetric(rep)
	// The scale-free ratio is compared across the quick/full config gap...
	if dd := d["gate:work_ratio_maintained"]; dd.Regressed || dd.Note != "" {
		t.Errorf("scale-free ratio not compared across configs: %+v", dd)
	}
	// ...while the raw edge count is skipped, not reported as a 95% crash.
	if dd := d["modeled:placement_edges"]; dd.Regressed || dd.Note == "" {
		t.Errorf("scale-dependent count compared across configs: %+v", dd)
	}
	if rep.Regressions != 0 {
		t.Errorf("Regressions = %d, want 0", rep.Regressions)
	}
}

func TestCompareBaselineMissingAndSkippedFiles(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	cfg := ReportConfig{Scale: 0.2, Seed: 42}
	writeJSON(t, baseDir, "BENCH_view.json", report("view", cfg,
		map[string]float64{"work_ratio": 3.0}, nil))
	// Riders that must be ignored, not treated as baselines: the comparator's
	// own output, a trace export, and a non-report JSON file.
	writeJSON(t, baseDir, "BENCH_baseline_diff.json", BaselineReport{})
	writeJSON(t, baseDir, "BENCH_wall_trace.json", map[string]any{"traceEvents": []any{}})
	writeJSON(t, baseDir, "BENCH_notes.json", map[string]string{"note": "not a report"})

	var out bytes.Buffer
	rep, err := CompareBaseline(curDir, baseDir, &out)
	if err != nil {
		t.Fatal(err)
	}
	// No current BENCH_view.json: noted, never a regression.
	if rep.Regressions != 0 || rep.Compared != 0 {
		t.Fatalf("missing current report counted: %+v", rep)
	}
	found := false
	for _, d := range rep.Diffs {
		if d.Experiment == "view" && strings.Contains(d.Note, "no current report") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-report note absent from diffs: %+v", rep.Diffs)
	}
	if !strings.Contains(out.String(), "skipping BENCH_notes.json") {
		t.Errorf("non-report baseline not announced as skipped:\n%s", out.String())
	}
}
