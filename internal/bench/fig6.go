package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/numa"
	"repro/internal/order"
	"repro/internal/partition"
	"repro/internal/stats"
)

// fig6Machine scales the cache geometry so that the per-partition working
// set exceeds the LLC, matching the paper's footprint-to-cache ratio (their
// per-partition footprint of tens of MB vs a 30 MB LLC); with the default
// 256 KiB model every partition fits and edge-order effects vanish.
var fig6Machine = memsim.Config{LLCBytes: 32 << 10, TLBEntries: 8}

// fig6Replay builds per-partition COOs in the given order and replays one PR
// iteration, returning per-partition cycles.
func fig6Replay(cfg Config, g *graph.Graph, parts []partition.Partition, o layout.Order) ([]float64, error) {
	coos := make([]*layout.COO, len(parts))
	for i, pt := range parts {
		c, err := layout.BuildRange(g, pt.Lo, pt.Hi, o)
		if err != nil {
			return nil, err
		}
		coos[i] = c
	}
	// Single-socket machine model: Figure 6 isolates the effect of edge
	// ordering on cache behaviour; a multi-socket model would overlay a
	// NUMA data-skew effect (most vertex data homes on the last socket
	// under degree-sorted orders) that the paper's figure does not measure.
	top := numa.Topology{Sockets: 1, ThreadsPerSocket: cfg.Topology.Threads()}
	m, err := memsim.New(fig6Machine, top)
	if err != nil {
		return nil, err
	}
	// warm-up pass, then measure steady state
	if _, err := m.EdgeMapCOO(g, parts, coos); err != nil {
		return nil, err
	}
	m.Reset()
	res, err := m.EdgeMapCOO(g, parts, coos)
	if err != nil {
		return nil, err
	}
	cycles := make([]float64, len(parts))
	for i, c := range res.Partitions {
		cycles[i] = float64(c.Cycles())
	}
	return cycles, nil
}

// Fig6 regenerates the paper's Figure 6: per-partition processing time of
// the first PR iteration on the twitter-like graph, comparing (a) a pure
// high-to-low degree sort traversed in Hilbert order against VEBO, and (b)
// Hilbert against CSR edge order under the high-to-low sort. The paper's
// findings: under high-to-low, the first partitions (highest degrees)
// process fastest and the last (degree-one) partitions up to 3x slower than
// VEBO; and CSR order beats Hilbert order for most partitions, motivating
// VEBO's use of CSR-ordered COO.
func Fig6(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	g, err := buildRecipe(cfg, "twitter")
	if err != nil {
		return err
	}

	// high-to-low degree sort + Algorithm 1
	hlPerm := order.DegreeSort(g)
	hl, err := g.Relabel(hlPerm)
	if err != nil {
		return err
	}
	hlParts, err := partition.ByDestination(hl, cfg.Partitions)
	if err != nil {
		return err
	}

	// VEBO
	r, err := core.Reorder(g, cfg.Partitions, core.Options{})
	if err != nil {
		return err
	}
	vg, err := core.Apply(g, r)
	if err != nil {
		return err
	}
	vparts, err := partition.ByVertexRanges(vg, r.Boundaries())
	if err != nil {
		return err
	}

	hlHilbert, err := fig6Replay(cfg, hl, hlParts, layout.HilbertOrder)
	if err != nil {
		return err
	}
	hlCSR, err := fig6Replay(cfg, hl, hlParts, layout.CSROrder)
	if err != nil {
		return err
	}
	veboCSR, err := fig6Replay(cfg, vg, vparts, layout.CSROrder)
	if err != nil {
		return err
	}

	avgRange := func(xs []float64, lo, hi int) float64 {
		if hi > len(xs) {
			hi = len(xs)
		}
		var s float64
		for _, x := range xs[lo:hi] {
			s += x
		}
		return s / float64(hi-lo)
	}
	// restrict to non-empty partitions (Algorithm 1 leaves trailing empty
	// padding at reproduction scale)
	trim := func(cycles []float64, parts []partition.Partition) []float64 {
		out := cycles[:0:0]
		for i := range parts {
			if parts[i].Edges > 0 {
				out = append(out, cycles[i])
			}
		}
		return out
	}
	hlHilbert = trim(hlHilbert, hlParts)
	hlCSR = trim(hlCSR, hlParts)
	veboCSR = trim(veboCSR, vparts)
	nh, nv := len(hlHilbert), len(veboCSR)

	fmt.Fprintf(w, "== Figure 6: per-partition PR time, high-to-low order vs VEBO (P=%d) ==\n", cfg.Partitions)
	fmt.Fprintf(w, "(a) high-to-low+Hilbert: first-partition avg %.0f, last-partition avg %.0f (last/first %.2fx)\n",
		avgRange(hlHilbert, 0, nh/8), avgRange(hlHilbert, nh-nh/8, nh),
		avgRange(hlHilbert, nh-nh/8, nh)/avgRange(hlHilbert, 0, nh/8))
	fmt.Fprintf(w, "    vebo+CSR:            first-partition avg %.0f, last-partition avg %.0f, spread %.2fx\n",
		avgRange(veboCSR, 0, nv/8), avgRange(veboCSR, nv-nv/8, nv),
		stats.Summarize(veboCSR).Spread())
	fmt.Fprintf(w, "    high-to-low tail vs VEBO tail: %.2fx slower (paper: up to 3x)\n",
		avgRange(hlHilbert, nh-nh/8, nh)/avgRange(veboCSR, nv-nv/8, nv))
	fmt.Fprintf(w, "(b) high-to-low, Hilbert total %.3g vs CSR total %.3g; CSR faster on %d%% of partitions\n",
		sum(hlHilbert), sum(hlCSR), percentFaster(hlCSR, hlHilbert))
	fmt.Fprintln(w)
	return nil
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// percentFaster returns the percentage of indices where a[i] < b[i].
func percentFaster(a, b []float64) int {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for i := range a {
		if a[i] < b[i] {
			n++
		}
	}
	return 100 * n / len(a)
}
