package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memsim"
	"repro/internal/partition"
)

// Table5 regenerates the paper's Table V: architectural events (LLC misses
// serviced locally and remotely, TLB misses; MPKI) split between the
// vertexmap and edgemap phases, for the twitter-like and friendster-like
// graphs, original order versus VEBO. The paper's findings: vertexmap
// benefits from VEBO through NUMA alignment (remote misses collapse), while
// edgemap generally sees reduced misses except for PR on Twitter.
func Table5(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	fmt.Fprintf(w, "== Table V: vertexmap vs edgemap architectural events (MPKI) ==\n")
	fmt.Fprintf(w, "%-12s %-6s | %8s %8s %8s | %8s %8s %8s\n",
		"graph", "order", "vmLocal", "vmRmt", "vmTLB", "emLocal", "emRmt", "emTLB")
	for _, gname := range []string{"twitter", "friendster"} {
		g, err := buildRecipe(cfg, gname)
		if err != nil {
			return err
		}
		r, err := core.Reorder(g, cfg.Partitions, core.Options{})
		if err != nil {
			return err
		}
		vg, err := core.Apply(g, r)
		if err != nil {
			return err
		}
		origParts, err := partition.ByDestination(g, cfg.Partitions)
		if err != nil {
			return err
		}
		vparts, err := partition.ByVertexRanges(vg, r.Boundaries())
		if err != nil {
			return err
		}
		type variant struct {
			label string
			g     *graph.Graph
			parts []partition.Partition
		}
		for _, v := range []variant{{"orig", g, origParts}, {"vebo", vg, vparts}} {
			// vertexmap replay
			mv, err := memsim.New(memsim.Config{}, cfg.Topology)
			if err != nil {
				return err
			}
			rv, err := mv.VertexMap(v.g, v.parts)
			if err != nil {
				return err
			}
			sv := memsim.Summarize(rv.Threads)
			// edgemap replay
			me, err := memsim.New(memsim.Config{}, cfg.Topology)
			if err != nil {
				return err
			}
			re, err := me.EdgeMapPull(v.g, v.parts)
			if err != nil {
				return err
			}
			se := memsim.Summarize(re.Threads)
			fmt.Fprintf(w, "%-12s %-6s | %8.2f %8.2f %8.3f | %8.2f %8.2f %8.2f\n",
				gname, v.label,
				sv.LocalMPKI, sv.RemoteMPKI, sv.TLBMKI,
				se.LocalMPKI, se.RemoteMPKI, se.TLBMKI)
		}
	}
	fmt.Fprintf(w, "(paper, Twitter PR: vertexmap remote 4.1→1.6 MPKI with VEBO)\n\n")
	return nil
}
