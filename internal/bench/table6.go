package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/order"
)

// Table6 regenerates the paper's Table VI: the wall-clock cost of vertex
// reordering (RCM, Gorder, VEBO), of edge reordering + partitioning
// (Hilbert order vs CSR order), and the modeled runtime of BFS and PR (50
// iterations) before and after VEBO, for the twitter-like and
// friendster-like graphs. Reordering costs are real measured seconds (the
// algorithms are sequential, so a single-core host measures them
// faithfully); the paper's finding is VEBO ≪ RCM ≪ Gorder (up to 101x and
// 1524x) and CSR-order COO construction cheaper than Hilbert.
func Table6(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	fmt.Fprintf(w, "== Table VI: reordering overhead vs analysis runtime ==\n")
	fmt.Fprintf(w, "%-12s %12s %12s %12s | %12s %12s | %14s %14s %14s %14s\n",
		"graph", "rcm(s)", "gorder(s)", "vebo(s)", "hilbert(s)", "csr(s)",
		"bfs-orig", "bfs-vebo", "pr50-orig", "pr50-vebo")
	for _, gname := range []string{"twitter", "friendster"} {
		g, err := buildRecipe(cfg, gname)
		if err != nil {
			return err
		}
		timeIt := func(f func()) float64 {
			start := time.Now()
			f()
			return time.Since(start).Seconds()
		}
		tRCM := timeIt(func() { order.RCM(g) })
		tGorder := timeIt(func() { order.Gorder(g, order.GorderConfig{MaxSiblingDegree: 64}) })
		var r *core.Result
		tVEBO := timeIt(func() { r, err = core.Reorder(g, cfg.Partitions, core.Options{}) })
		if err != nil {
			return err
		}
		vg, err := core.Apply(g, r)
		if err != nil {
			return err
		}
		tHilbert := timeIt(func() { _, err = layout.Build(vg, layout.HilbertOrder) })
		if err != nil {
			return err
		}
		tCSR := timeIt(func() { _, err = layout.Build(vg, layout.CSROrder) })
		if err != nil {
			return err
		}

		// modeled analysis runtimes on GraphGrind
		root := pickRoot(g)
		model := func(algo string, isVebo bool) int64 {
			var bounds []int64
			coo := layout.HilbertOrder
			gg := g
			rt := root
			if isVebo {
				bounds = r.Boundaries()
				coo = layout.CSROrder
				gg = vg
				rt = r.Perm[root]
			}
			eng, err2 := newEngine("graphgrind", gg, cfg, bounds, coo, cfg.Partitions)
			if err2 != nil {
				err = err2
				return 0
			}
			t, err2 := runAlgorithm(algo, eng, nil, rt)
			if err2 != nil {
				err = err2
				return 0
			}
			return t
		}
		bfsOrig := model("BFS", false)
		bfsVebo := model("BFS", true)
		if err != nil {
			return err
		}
		// PR with 50 iterations: scale the 10-iteration model time by 5
		prOrig := 5 * model("PR", false)
		prVebo := 5 * model("PR", true)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "%-12s %12.3f %12.3f %12.3f | %12.3f %12.3f | %14d %14d %14d %14d\n",
			gname, tRCM, tGorder, tVEBO, tHilbert, tCSR, bfsOrig, bfsVebo, prOrig, prVebo)
		fmt.Fprintf(w, "  speedups: vebo vs rcm %.1fx, vebo vs gorder %.1fx (paper: up to 101x and 1524x)\n",
			tRCM/tVEBO, tGorder/tVEBO)
	}
	fmt.Fprintln(w)
	return nil
}
