package bench

import (
	"fmt"
	"time"

	vebo "repro"
	"repro/internal/gen"
)

// viewOps is the stream length at the default scale (0.2); other scales
// stream proportionally.
const viewOps = 10_000

// viewBatch is deliberately small relative to the partition count: engine
// reuse pays off exactly when a batch leaves most partitions untouched, the
// regime a serving system with frequent small ingest batches lives in.
const viewBatch = 64

// View is an extension experiment (not a paper table): it measures the
// engine-build amortization of the epoch-pinned View API. A powerlaw churn
// stream is replayed batch by batch; after every batch the freshly published
// view builds all three framework engines, either patched from the previous
// epoch's engines (dirty partitions only) or rebuilt from scratch
// (DisableViewReuse). Reported per configuration: published epochs, sustained
// epochs/sec including engine builds, and the construction work split
// (edges through full rebuilds vs patch merges vs carried over untouched).
// The work ratio compares rebuild-from-scratch construction work against the
// patched runs'.
func View(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	ops := int(float64(viewOps) * cfg.Scale / 0.2)
	if ops < 4*viewBatch {
		ops = 4 * viewBatch
	}
	if cfg.Quick {
		ops = 3 * viewBatch
	}
	g, updates, err := gen.StreamFromRecipe("powerlaw", cfg.Scale, ops, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Extension: epoch-pinned views (powerlaw, %d updates, batch %d, P=%d) ==\n",
		len(updates), viewBatch, 64)

	engOpts := vebo.EngineOptions{
		Sockets:          cfg.Topology.Sockets,
		ThreadsPerSocket: cfg.Topology.ThreadsPerSocket,
	}
	// The serving configuration: thresholds high enough that the placement
	// never moves at all, the maximum-reuse regime. The maintained row uses
	// the default thresholds, where placement-preserving swap repairs fire
	// almost every batch: patching must keep applying across those repair
	// epochs (work ratio > 1×), which is the property the quick/CI mode
	// enforces.
	stable := vebo.DynamicOptions{
		Partitions:             64,
		RebuildThreshold:       1 << 40,
		VertexRebuildThreshold: 1 << 40,
		Engine:                 engOpts,
	}
	scratch := stable
	scratch.DisableViewReuse = true
	maintained := vebo.DynamicOptions{Partitions: 64, Engine: engOpts}

	type row struct {
		name    string
		work    vebo.ViewWork
		elapsed time.Duration
	}
	run := func(name string, opts vebo.DynamicOptions) (row, error) {
		start := time.Now()
		d, err := vebo.NewDynamic(g, opts)
		if err != nil {
			return row{}, err
		}
		for lo := 0; lo < len(updates); lo += viewBatch {
			hi := lo + viewBatch
			if hi > len(updates) {
				hi = len(updates)
			}
			if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
				return row{}, err
			}
			v := d.View()
			for _, sys := range []vebo.System{vebo.Ligra, vebo.Polymer, vebo.GraphGrind} {
				if _, err := v.Engine(sys); err != nil {
					return row{}, err
				}
			}
		}
		return row{name: name, work: d.ViewWork(), elapsed: time.Since(start)}, nil
	}

	rows := make([]row, 0, 3)
	for _, c := range []struct {
		name string
		opts vebo.DynamicOptions
	}{
		{"patched", stable},
		{"rebuild", scratch},
		{"maintained", maintained},
	} {
		r, err := run(c.name, c.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		rows = append(rows, r)
	}

	fmt.Fprintf(w, "%-12s %8s %10s %14s %14s %14s %14s %9s\n",
		"config", "epochs", "epochs/s", "rebuildEdges", "patchedEdges", "relabeledEdges", "reusedEdges", "partReuse")
	for _, r := range rows {
		partTotal := r.work.PartitionsRebuilt + r.work.PartitionsReused + r.work.PartitionsRelabeled
		reuseFrac := 0.0
		if partTotal > 0 {
			reuseFrac = float64(r.work.PartitionsReused+r.work.PartitionsRelabeled) / float64(partTotal)
		}
		fmt.Fprintf(w, "%-12s %8d %10.1f %14d %14d %14d %14d %8.0f%%\n",
			r.name, r.work.Epochs,
			float64(r.work.Epochs)/r.elapsed.Seconds(),
			r.work.RebuildEdges, r.work.PatchedEdges, r.work.RelabeledEdges, r.work.ReusedEdges,
			100*reuseFrac)
	}

	// Construction work per configuration: edges through scratch builds plus
	// patch merges plus segment-relabel rewrites (reused edges are free).
	constructionWork := func(r row) int64 {
		return r.work.RebuildEdges + r.work.PatchedEdges + r.work.RelabeledEdges
	}
	rebuildWork := constructionWork(rows[1])
	ratio := float64(rebuildWork) / float64(constructionWork(rows[0]))
	maintainedRatio := float64(rebuildWork) / float64(constructionWork(rows[2]))
	fmt.Fprintf(w, "work ratio (rebuild/patched construction edges): %.1f× (target ≥ 2×: %v)\n",
		ratio, ratio >= 2)
	fmt.Fprintf(w, "work ratio (rebuild/maintained construction edges): %.1f× (target > 1×: %v)\n",
		maintainedRatio, maintainedRatio > 1)
	fmt.Fprintf(w, "wall ratio (rebuild/patched elapsed): %.1f×\n\n",
		rows[1].elapsed.Seconds()/rows[0].elapsed.Seconds())
	if err := writeReport(cfg, Report{
		Experiment: "view",
		Config:     ReportConfig{Scale: cfg.Scale, Seed: cfg.Seed, Ops: len(updates), Batch: viewBatch, Quick: cfg.Quick},
		// The quick/CI contract enforces only the maintained-row ratio; the
		// 2× patched target is a full-scale aspiration, reported as modeled
		// data rather than a gate so short quick runs cannot fail on it.
		Gates: []Gate{
			{Name: "work_ratio_maintained", Value: maintainedRatio, Threshold: 1, Pass: maintainedRatio > 1},
		},
		Modeled: map[string]float64{
			"work_ratio_patched":            ratio,
			"rebuild_construction_edges":    float64(rebuildWork),
			"patched_construction_edges":    float64(constructionWork(rows[0])),
			"maintained_construction_edges": float64(constructionWork(rows[2])),
		},
	}); err != nil {
		return err
	}
	if cfg.Quick && maintainedRatio <= 1 {
		return fmt.Errorf("view: maintained-row work ratio %.2f× regressed to <= 1× — engine patching no longer applies under default-threshold maintenance", maintainedRatio)
	}
	return nil
}
