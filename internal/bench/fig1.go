package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/partition"
	"repro/internal/stats"
)

// pearson computes the Pearson correlation coefficient of two equal-length
// samples.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// fig1Partition replays one PR iteration over parts in Hilbert-ordered COO
// (the Figure 1 configuration) and reports per-partition cycles.
func fig1Cycles(cfg Config, g *graph.Graph, parts []partition.Partition) ([]float64, error) {
	coos := make([]*layout.COO, len(parts))
	for i, pt := range parts {
		c, err := layout.BuildRange(g, pt.Lo, pt.Hi, layout.HilbertOrder)
		if err != nil {
			return nil, err
		}
		coos[i] = c
	}
	// Small cache geometry: match the paper's per-partition footprint to
	// LLC ratio (see fig6Machine); with a relatively large cache the
	// destination/source footprint effects that drive Figure 1's time
	// variation disappear at reproduction scale.
	m, err := memsim.New(fig6Machine, cfg.Topology)
	if err != nil {
		return nil, err
	}
	// Warm-up pass: the paper reports averages over 20 executions, so
	// steady-state (warm-cache) behaviour is what matters.
	if _, err := m.EdgeMapCOO(g, parts, coos); err != nil {
		return nil, err
	}
	m.Reset()
	res, err := m.EdgeMapCOO(g, parts, coos)
	if err != nil {
		return nil, err
	}
	cycles := make([]float64, len(parts))
	for i, c := range res.Partitions {
		cycles[i] = float64(c.Cycles())
	}
	return cycles, nil
}

// nonEmpty filters parallel samples down to partitions with work, returning
// the filtered series and the number of empty partitions. Algorithm 1's
// greedy overshoot leaves trailing empty partitions at reproduction scale;
// including them would make spreads infinite.
func nonEmpty(cycles, edges, dsts, srcs []float64) (c, e, d, s []float64, empty int) {
	for i := range cycles {
		if edges[i] == 0 {
			empty++
			continue
		}
		c = append(c, cycles[i])
		e = append(e, edges[i])
		d = append(d, dsts[i])
		s = append(s, srcs[i])
	}
	return c, e, d, s, empty
}

// Fig1 regenerates the paper's Figure 1: per-partition processing time of
// one PageRank iteration as a function of the partition's edge count, unique
// destination count and unique source count, for the original order
// (Algorithm 1) and for VEBO, on the twitter-like and friendster-like
// graphs. The paper's observations: edges are balanced in both, yet time
// varies 6.9x/2x with the original order and correlates with destination
// and source counts; VEBO collapses the variation.
func Fig1(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	fmt.Fprintf(w, "== Figure 1: per-partition PR time vs edges/destinations/sources (P=%d) ==\n", cfg.Partitions)
	for _, gname := range []string{"twitter", "friendster"} {
		g, err := buildRecipe(cfg, gname)
		if err != nil {
			return err
		}
		variants := []struct {
			label string
			g     *graph.Graph
			parts []partition.Partition
		}{}

		origParts, err := partition.ByDestination(g, cfg.Partitions)
		if err != nil {
			return err
		}
		variants = append(variants, struct {
			label string
			g     *graph.Graph
			parts []partition.Partition
		}{"original", g, origParts})

		r, err := core.Reorder(g, cfg.Partitions, core.Options{})
		if err != nil {
			return err
		}
		vg, err := core.Apply(g, r)
		if err != nil {
			return err
		}
		vparts, err := partition.ByVertexRanges(vg, r.Boundaries())
		if err != nil {
			return err
		}
		variants = append(variants, struct {
			label string
			g     *graph.Graph
			parts []partition.Partition
		}{"vebo", vg, vparts})

		fmt.Fprintf(w, "-- %s (n=%d, m=%d) --\n", gname, g.NumVertices(), g.NumEdges())
		for _, v := range variants {
			cycles, err := fig1Cycles(cfg, v.g, v.parts)
			if err != nil {
				return err
			}
			edges := make([]float64, len(v.parts))
			dsts := make([]float64, len(v.parts))
			for i, pt := range v.parts {
				edges[i] = float64(pt.Edges)
				dsts[i] = float64(pt.Vertices())
			}
			srcsI := partition.UniqueSources(v.g, v.parts)
			srcs := make([]float64, len(srcsI))
			for i, s := range srcsI {
				srcs[i] = float64(s)
			}
			cyc, ed, ds, sr, empty := nonEmpty(cycles, edges, dsts, srcs)
			ts := stats.Summarize(cyc)
			es := stats.Summarize(ed)
			fmt.Fprintf(w, "%-9s time: avg %.0f spread %.2fx | edges: avg %.0f spread %.2fx | corr(time,edges)=%.2f corr(time,dsts)=%.2f corr(time,srcs)=%.2f | empty parts %d\n",
				v.label, ts.Mean, ts.Spread(), es.Mean, es.Spread(),
				pearson(cyc, ed), pearson(cyc, ds), pearson(cyc, sr), empty)
		}
	}
	fmt.Fprintln(w)
	return nil
}
