package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/order"
	"repro/internal/partition"
)

// fig5Variant is one vertex-ID assignment under test.
type fig5Variant struct {
	label  string
	g      *graph.Graph
	perm   []graph.VertexID
	bounds []int64
	coo    layout.Order
}

// hybridTime prices an algorithm run on the GraphGrind model with locality
// awareness: dense edgemap steps cost the grouped makespan of per-partition
// simulated cycles (so a locality-destroying order pays for its cache and
// TLB misses), while sparse and vertexmap steps cost their work-unit
// makespan calibrated to cycles. Pure work-unit accounting would hide the
// locality loss that Figure 5's random permutation demonstrates.
func hybridTime(cfg Config, v fig5Variant, algo string, root graph.VertexID) (int64, error) {
	eng, err := newEngine("graphgrind", v.g, cfg, v.bounds, v.coo, cfg.Partitions)
	if err != nil {
		return 0, err
	}
	engT, err := newEngine("graphgrind", v.g.Transpose(), cfg, nil, v.coo, cfg.Partitions)
	if err != nil {
		return 0, err
	}
	if _, err := runAlgorithm(algo, eng, engT, root); err != nil {
		return 0, err
	}

	// memsim replay of one dense COO pass over this variant's partitions
	var parts []partition.Partition
	if v.bounds != nil {
		parts, err = partition.ByVertexRanges(v.g, v.bounds)
	} else {
		parts, err = partition.ByDestination(v.g, cfg.Partitions)
	}
	if err != nil {
		return 0, err
	}
	coos := make([]*layout.COO, len(parts))
	for i, pt := range parts {
		coos[i], err = layout.BuildRange(v.g, pt.Lo, pt.Hi, v.coo)
		if err != nil {
			return 0, err
		}
	}
	m, err := memsim.New(memsim.Config{}, cfg.Topology)
	if err != nil {
		return 0, err
	}
	if _, err := m.EdgeMapCOO(v.g, parts, coos); err != nil {
		return 0, err
	}
	m.Reset()
	res, err := m.EdgeMapCOO(v.g, parts, coos)
	if err != nil {
		return 0, err
	}
	cycles := make([]int64, len(parts))
	var sumCycles int64
	for i, c := range res.Partitions {
		cycles[i] = c.Cycles()
		sumCycles += cycles[i]
	}
	top := cfg.Topology
	denseCycleMakespan := engine.MakespanGrouped(cycles, top.Sockets, top.ThreadsPerSocket)

	// calibrate cycles per work unit from the dense pass
	var denseWork int64
	for _, s := range eng.Metrics().Steps {
		if s.Kind == engine.StepEdgeMapDense {
			denseWork = s.TotalCost
			break
		}
	}
	cyclesPerUnit := 3.0 // fallback when the run never went dense
	if denseWork > 0 {
		cyclesPerUnit = float64(sumCycles) / float64(denseWork)
	}

	price := func(ms *engine.Metrics) int64 {
		var total int64
		for _, s := range ms.Steps {
			if s.Kind == engine.StepEdgeMapDense {
				total += denseCycleMakespan
			} else {
				total += int64(float64(s.Makespan) * cyclesPerUnit)
			}
		}
		return total
	}
	return price(eng.Metrics()) + price(engT.Metrics()), nil
}

// Fig5 regenerates the paper's Figure 5: GraphGrind performance under four
// vertex-ID assignments — original, VEBO(original), a random permutation,
// and VEBO applied to the random permutation — for PRD, PR, CC and BFS on
// the twitter-like and road graphs, normalized to the original order. The
// paper's findings: random is slowest; VEBO beats original on the power-law
// graph; VEBO(random) recovers nearly all of VEBO(original)'s performance,
// with any residual gap attributable to locality.
func Fig5(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	algos := []string{"PRD", "PR", "CC", "BFS"}
	fmt.Fprintf(w, "== Figure 5: speedup vs original vertex IDs (GraphGrind model, P=%d) ==\n", cfg.Partitions)
	for _, gname := range []string{"twitter", "usaroad"} {
		g, err := buildRecipe(cfg, gname)
		if err != nil {
			return err
		}
		root := pickRoot(g)

		var variants []fig5Variant
		variants = append(variants, fig5Variant{"original", g, order.Identity(g), nil, layout.HilbertOrder})

		rv, err := core.Reorder(g, cfg.Partitions, core.Options{})
		if err != nil {
			return err
		}
		vg, err := core.Apply(g, rv)
		if err != nil {
			return err
		}
		variants = append(variants, fig5Variant{"vebo", vg, rv.Perm, rv.Boundaries(), layout.CSROrder})

		randPerm := order.Random(g, cfg.Seed+7)
		randG, err := g.Relabel(randPerm)
		if err != nil {
			return err
		}
		variants = append(variants, fig5Variant{"random", randG, randPerm, nil, layout.HilbertOrder})

		rrv, err := core.Reorder(randG, cfg.Partitions, core.Options{})
		if err != nil {
			return err
		}
		rvg, err := core.Apply(randG, rrv)
		if err != nil {
			return err
		}
		randVeboPerm, err := order.Compose(randPerm, rrv.Perm)
		if err != nil {
			return err
		}
		variants = append(variants, fig5Variant{"random+vebo", rvg, randVeboPerm, rrv.Boundaries(), layout.CSROrder})

		fmt.Fprintf(w, "-- %s --\n%-12s", gname, "order")
		for _, a := range algos {
			fmt.Fprintf(w, " %8s", a)
		}
		fmt.Fprintln(w)
		base := map[string]int64{}
		for _, v := range variants {
			fmt.Fprintf(w, "%-12s", v.label)
			for _, a := range algos {
				t, err := hybridTime(cfg, v, a, v.perm[root])
				if err != nil {
					return err
				}
				if v.label == "original" {
					base[a] = t
					fmt.Fprintf(w, " %8.2f", 1.0)
				} else {
					fmt.Fprintf(w, " %8.2f", float64(base[a])/float64(t))
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
	return nil
}
