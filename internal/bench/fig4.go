package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memsim"
	"repro/internal/partition"
	"repro/internal/stats"
)

// Fig4 regenerates the paper's Figure 4: per-partition execution time and
// per-thread micro-architectural statistics (LLC local/remote MPKI, TLB MKI,
// branch MPKI) for PageRank on the twitter-like graph under GraphGrind with
// 384 partitions. The paper's findings: the original order spans a 6.9x
// per-partition time spread versus 1.6x for VEBO; average branch MPKI drops
// from 0.11 to 0.04 with VEBO; cache/TLB rates are broadly similar for this
// particular graph (PR on Twitter is the paper's counter-example where VEBO
// slightly raises cache misses).
func Fig4(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	g, err := buildRecipe(cfg, "twitter")
	if err != nil {
		return err
	}
	r, err := core.Reorder(g, cfg.Partitions, core.Options{})
	if err != nil {
		return err
	}
	vg, err := core.Apply(g, r)
	if err != nil {
		return err
	}

	type variant struct {
		label string
		g     *graph.Graph
		parts []partition.Partition
	}
	origParts, err := partition.ByDestination(g, cfg.Partitions)
	if err != nil {
		return err
	}
	vparts, err := partition.ByVertexRanges(vg, r.Boundaries())
	if err != nil {
		return err
	}
	variants := []variant{{"original", g, origParts}, {"vebo", vg, vparts}}

	fmt.Fprintf(w, "== Figure 4: PR on twitter-like, GraphGrind model, P=%d, %d threads ==\n",
		cfg.Partitions, cfg.Topology.Threads())
	for _, v := range variants {
		m, err := memsim.New(memsim.Config{}, cfg.Topology)
		if err != nil {
			return err
		}
		// warm-up pass, then measure steady state (the paper averages over
		// 20 executions)
		if _, err := m.EdgeMapPull(v.g, v.parts); err != nil {
			return err
		}
		m.Reset()
		res, err := m.EdgeMapPull(v.g, v.parts)
		if err != nil {
			return err
		}
		var cycles []float64
		empty := 0
		for i, c := range res.Partitions {
			if v.parts[i].Edges == 0 && v.parts[i].Vertices() == 0 {
				empty++
				continue
			}
			cycles = append(cycles, float64(c.Cycles()))
		}
		ts := stats.Summarize(cycles)
		sum := memsim.Summarize(res.Threads)
		fmt.Fprintf(w, "%-9s (a) partition time: avg %.0f min %.0f max %.0f spread %.2fx (%d empty partitions)\n",
			v.label, ts.Mean, ts.Min, ts.Max, ts.Spread(), empty)
		fmt.Fprintf(w, "%-9s (b) LLC local MPKI avg %.2f  (c) LLC remote MPKI avg %.2f  (d) TLB MKI avg %.2f  (e) branch MPKI avg %.3f\n",
			v.label, sum.LocalMPKI, sum.RemoteMPKI, sum.TLBMKI, sum.BranchMPKI)
	}
	fmt.Fprintf(w, "(paper averages: time 1.22s vs 1.21s; local 11 vs 12; remote 9 vs 11; TLB 8 vs 10; branch 0.11 vs 0.04)\n\n")
	return nil
}
