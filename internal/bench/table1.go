package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
)

// Table1 regenerates the paper's Table I: characterization of the workload
// graphs plus the vertex (δ(n)) and edge (Δ(n)) imbalance VEBO achieves at
// the full partition count. The paper reports δ(n) ≤ 9 and Δ(n) ≤ 3 across
// all eight graphs, with six graphs at exactly 1 and 1.
func Table1(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	fmt.Fprintf(w, "== Table I: graph characterization + VEBO balance at P=%d ==\n", cfg.Partitions)
	fmt.Fprintf(w, "%-12s %10s %12s %9s %8s %8s %6s %6s %9s\n",
		"graph", "vertices", "edges", "maxInDeg", "%0-in", "%0-out", "δ(n)", "Δ(n)", "type")
	for _, r := range gen.Recipes() {
		g, err := r.Build(cfg.Scale, cfg.Seed)
		if err != nil {
			return err
		}
		s := g.Characterize()
		res, err := core.Reorder(g, cfg.Partitions, core.Options{})
		if err != nil {
			return err
		}
		typ := "undirected"
		if r.Directed {
			typ = "directed"
		}
		fmt.Fprintf(w, "%-12s %10d %12d %9d %7.1f%% %7.1f%% %6d %6d %9s\n",
			r.Name, s.Vertices, s.Edges, s.MaxInDegree,
			s.ZeroInPercent, s.ZeroOutPercent,
			res.VertexImbalance(), res.EdgeImbalance(), typ)
	}
	fmt.Fprintln(w)
	return nil
}
