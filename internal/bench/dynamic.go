package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/partition"
)

// dynamicOps is the stream length at the default scale (0.2); other scales
// stream proportionally. The acceptance workload is 100k updates.
const dynamicOps = 100_000

// Dynamic is an extension experiment (not a paper table): it replays a churn
// stream on the powerlaw recipe through the incremental-maintenance
// subsystem (internal/dynamic) and compares its throughput, work and final
// balance against (a) rebuilding the VEBO ordering from scratch after every
// batch and (b) the streaming-partitioner baselines run once on the final
// graph. Work is counted in greedy placements, the unit Algorithm 2 performs
// n of per full run.
func Dynamic(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	const batch = 1024
	p := dynamic.DefaultPartitions
	ops := int(float64(dynamicOps) * cfg.Scale / 0.2)
	if ops < 2*batch {
		ops = 2 * batch
	}
	if cfg.Quick {
		ops = 3 * batch
	}

	g, updates, err := gen.StreamFromRecipe("powerlaw", cfg.Scale, ops, cfg.Seed)
	if err != nil {
		return err
	}
	batches := (len(updates) + batch - 1) / batch
	fmt.Fprintf(w, "== Extension: dynamic-graph maintenance (powerlaw, %d updates, batch %d, P=%d) ==\n",
		len(updates), batch, p)
	fmt.Fprintf(w, "%-16s %12s %12s %10s %10s\n", "method", "time", "placements", "edgeSpread", "vertSpread")

	// (1) Incremental maintenance through the dynamic subsystem.
	start := time.Now()
	d, err := dynamic.New(g, dynamic.Config{Partitions: p})
	if err != nil {
		return err
	}
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			return err
		}
	}
	incElapsed := time.Since(start)
	st := d.Stats()
	incDelta := d.EdgeImbalance()
	fmt.Fprintf(w, "%-16s %12s %12d %10d %10d\n", "incremental",
		incElapsed.Round(time.Microsecond), st.Placements, incDelta, d.VertexImbalance())

	// (2) Full Algorithm 2 rebuild after every batch, over incrementally
	// maintained degrees (charitable: no graph rebuild is charged).
	start = time.Now()
	deg := g.InDegrees()
	var scratch *core.Result
	for lo := 0; lo < len(updates); lo += batch {
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		for _, u := range updates[lo:hi] {
			if u.Del {
				deg[u.Dst]--
			} else {
				deg[u.Dst]++
			}
		}
		if scratch, err = core.ReorderDegrees(deg, p, core.Options{}); err != nil {
			return err
		}
	}
	rebElapsed := time.Since(start)
	rebPlacements := int64(batches) * int64(g.NumVertices())
	rebDelta := scratch.EdgeImbalance()
	fmt.Fprintf(w, "%-16s %12s %12d %10d %10d\n", "rebuild/batch",
		rebElapsed.Round(time.Microsecond), rebPlacements, rebDelta, scratch.VertexImbalance())

	// (3) Streaming-partitioner baselines, one pass over the final graph.
	final := d.Snapshot()
	start = time.Now()
	ldg, err := partition.LDG(final, p)
	if err != nil {
		return err
	}
	ldgElapsed := time.Since(start)
	fmt.Fprintf(w, "%-16s %12s %12d %10d %10d\n", "ldg(final)",
		ldgElapsed.Round(time.Microsecond), int64(final.NumVertices()),
		core.Spread(ldg.EdgeCounts(final)), core.Spread(ldg.Sizes()))
	start = time.Now()
	fen, err := partition.Fennel(final, p, partition.FennelConfig{})
	if err != nil {
		return err
	}
	fenElapsed := time.Since(start)
	fmt.Fprintf(w, "%-16s %12s %12d %10d %10d\n", "fennel(final)",
		fenElapsed.Round(time.Microsecond), int64(final.NumVertices()),
		core.Spread(fen.EdgeCounts(final)), core.Spread(fen.Sizes()))

	// The maintained contract: within 2× of the from-scratch balance, or
	// under the adaptive Δ(n) gate (whole-vertex moves cannot express less
	// than the degree granularity the gate tracks), whichever is looser.
	limit := 2 * rebDelta
	if limit < 2 {
		limit = 2
	}
	gate := d.EffectiveRebuildThreshold()
	if limit < gate {
		limit = gate
	}
	fmt.Fprintf(w, "final Δ(n): incremental %d vs rebuild %d (within max(2×, gate %d): %v); work ratio %.1f× less\n",
		incDelta, rebDelta, gate, incDelta <= limit,
		float64(rebPlacements)/float64(st.Placements))
	fmt.Fprintf(w, "(maintenance: %d repairs over %d vertices with %d swaps, %d full rebuilds, %d compactions)\n\n",
		st.Repairs, st.RepairedVertices, st.Swaps, st.FullRebuilds, st.Compactions)
	return nil
}
