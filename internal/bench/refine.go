package bench

import (
	"fmt"
	"sort"
	"time"

	vebo "repro"
	"repro/internal/gen"
)

// refineEpochs fixes the stream length per batch-size configuration: every
// epoch is queried (the capture chain lives on the queried views — a skipped
// epoch breaks the seed lineage), so the cost knob is the epoch count, not a
// query sampling rate.
const (
	refineEpochs      = 16
	refineQuickEpochs = 6
	refineGrowFrac    = 0.02
)

// refineBatches is the batch-size sweep, largest first; the smallest batch
// is the gated serving regime, where a query-heavy workload leaves the
// per-epoch delta tiny and refinement should win by the widest margin.
var refineBatches = []int{512, 128, 32}
var refineQuickBatches = []int{96, 32}

// Refine is an extension experiment (not a paper table): it measures result
// patching across epochs (View.Refine*, DESIGN.md §5d) against equal-answer
// scratch queries. A powerlaw churn stream with vertex growth is replayed at
// several ingest batch sizes; after every batch the fresh view answers BFS
// and PageRank twice — refined from the basis capture, and from scratch (BFS
// cold traversal; PageRank cold delta-iteration converged to the same ε).
// Engines are pre-built before timing so both variants measure pure query
// work, and the first epoch (scratch seeding of the capture chain) is
// excluded from the timed window. The gate requires refinement to beat
// scratch on both algorithms at the smallest batch.
func Refine(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	epochs := refineEpochs
	batches := refineBatches
	if cfg.Quick {
		epochs = refineQuickEpochs
		batches = refineQuickBatches
	}
	engOpts := vebo.EngineOptions{
		Sockets:          cfg.Topology.Sockets,
		ThreadsPerSocket: cfg.Topology.ThreadsPerSocket,
	}
	const sys = vebo.Ligra
	fmt.Fprintf(w, "== Extension: result refinement across epochs (powerlaw, %d epochs/config, %s) ==\n",
		epochs, sys)

	type cell struct {
		durs    []time.Duration
		elapsed time.Duration
	}
	type config struct {
		batch   int
		refined map[string]*cell // alg -> refined-query latencies
		scratch map[string]*cell // alg -> scratch-query latencies
		paths   map[string]int   // refine path -> count (bfs)
		totalOp int
	}
	var runs []config

	for _, batch := range batches {
		ops := epochs * batch
		g, updates, err := gen.StreamFromRecipeOpts("powerlaw", cfg.Scale, ops, cfg.Seed,
			gen.RecipeStreamOptions{GrowFrac: refineGrowFrac})
		if err != nil {
			return err
		}
		d, err := vebo.NewDynamic(g, vebo.DynamicOptions{
			Partitions: 64, AutoGrow: true, Engine: engOpts,
		})
		if err != nil {
			return err
		}
		c := config{
			batch:   batch,
			refined: map[string]*cell{"bfs": {}, "pagerank": {}},
			scratch: map[string]*cell{"bfs": {}, "pagerank": {}},
			paths:   map[string]int{},
			totalOp: len(updates),
		}
		epoch := 0
		for lo := 0; lo < len(updates); lo += batch {
			hi := lo + batch
			if hi > len(updates) {
				hi = len(updates)
			}
			if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
				return err
			}
			v := d.View()
			if _, err := v.Engine(sys); err != nil {
				return err
			}
			timed := epoch > 0 // epoch 0 seeds the capture chain from scratch

			t0 := time.Now()
			_, st, err := v.RefineBFS(sys, 0)
			if err != nil {
				return err
			}
			if timed {
				c.refined["bfs"].durs = append(c.refined["bfs"].durs, time.Since(t0))
				c.paths[st.Path]++
			}
			t0 = time.Now()
			if _, err := v.BFS(sys, 0); err != nil {
				return err
			}
			if timed {
				c.scratch["bfs"].durs = append(c.scratch["bfs"].durs, time.Since(t0))
			}

			t0 = time.Now()
			if _, _, err := v.RefinePageRank(sys, 0); err != nil {
				return err
			}
			if timed {
				c.refined["pagerank"].durs = append(c.refined["pagerank"].durs, time.Since(t0))
			}
			t0 = time.Now()
			if _, err := v.PageRankDelta(sys, 400, vebo.DefaultRefineEps); err != nil {
				return err
			}
			if timed {
				c.scratch["pagerank"].durs = append(c.scratch["pagerank"].durs, time.Since(t0))
			}
			epoch++
		}
		runs = append(runs, c)
	}

	stats := func(durs []time.Duration) (p50, p95, p99, mean float64) {
		if len(durs) == 0 {
			return
		}
		s := append([]time.Duration(nil), durs...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		q := func(f float64) float64 {
			i := int(f * float64(len(s)-1))
			return float64(s[i]) / 1e6
		}
		var sum time.Duration
		for _, d := range s {
			sum += d
		}
		return q(0.50), q(0.95), q(0.99), float64(sum) / float64(len(s)) / 1e6
	}
	series := func(alg, variant string, batch int, c *cell) LatencySeries {
		p50, p95, p99, mean := stats(c.durs)
		var total time.Duration
		for _, d := range c.durs {
			total += d
		}
		s := LatencySeries{
			Op: "query", Alg: alg, System: sys.String(), Variant: variant, Batch: batch,
			Count: int64(len(c.durs)), P50Ms: p50, P95Ms: p95, P99Ms: p99, MeanMs: mean,
		}
		if total > 0 {
			s.OpsPerSec = float64(s.Count) / total.Seconds()
		}
		return s
	}

	var allSeries []LatencySeries
	speedup := map[string]float64{}
	fmt.Fprintf(w, "%6s %-9s %12s %12s %12s %12s %9s\n",
		"batch", "alg", "refined p50", "refined mean", "scratch p50", "scratch mean", "speedup")
	for _, c := range runs {
		for _, alg := range []string{"bfs", "pagerank"} {
			rs := series(alg, "refined", c.batch, c.refined[alg])
			ss := series(alg, "scratch", c.batch, c.scratch[alg])
			allSeries = append(allSeries, rs, ss)
			ratio := 0.0
			if rs.MeanMs > 0 {
				ratio = ss.MeanMs / rs.MeanMs
			}
			if c.batch == batches[len(batches)-1] {
				speedup[alg] = ratio
			}
			fmt.Fprintf(w, "%6d %-9s %10.3fms %10.3fms %10.3fms %10.3fms %8.1f×\n",
				c.batch, alg, rs.P50Ms, rs.MeanMs, ss.P50Ms, ss.MeanMs, ratio)
		}
		fmt.Fprintf(w, "%6d paths: refined=%d scratch-seed=%d fallback=%d\n",
			c.batch, c.paths[vebo.RefineRefined], c.paths[vebo.RefineScratchSeed],
			c.paths[vebo.RefineScratchFallback])
	}

	small := batches[len(batches)-1]
	gates := []Gate{
		{Name: "refine_speedup_bfs", Value: speedup["bfs"], Threshold: 1, Pass: speedup["bfs"] > 1},
		{Name: "refine_speedup_pagerank", Value: speedup["pagerank"], Threshold: 1, Pass: speedup["pagerank"] > 1},
	}
	fmt.Fprintf(w, "refine speedup at batch %d: bfs %.1f× pagerank %.1f× (target > 1×: %v)\n\n",
		small, speedup["bfs"], speedup["pagerank"],
		gates[0].Pass && gates[1].Pass)
	if err := writeReport(cfg, Report{
		Experiment: "refine",
		Config:     ReportConfig{Scale: cfg.Scale, Seed: cfg.Seed, Ops: runs[len(runs)-1].totalOp, Batch: small, Quick: cfg.Quick},
		Series:     allSeries,
		Gates:      gates,
	}); err != nil {
		return err
	}
	if cfg.Quick {
		for _, g := range gates {
			if !g.Pass {
				return fmt.Errorf("refine: %s = %.2f× regressed to <= 1× — refinement no longer beats scratch at batch %d", g.Name, g.Value, small)
			}
		}
	}
	return nil
}
