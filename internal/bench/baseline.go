package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// The bench-regression baseline gate: CompareBaseline reads the recorded
// BENCH_*.json trajectory in a baseline directory (bench-records/ in this
// repo), matches each record against a freshly emitted report of the same
// experiment, and flags metrics that regressed beyond their tolerance.
// Gates and modeled values are compared — the scale-free ratios, speedups
// and fractions that define the repo's performance trajectory — not raw
// latency series, which depend on the machine. The result is printed as a
// table and written as a machine-readable BENCH_baseline_diff.json so CI
// artifacts carry the comparison alongside the reports it judged.

// BaselineTolerances is the optional tolerances.json schema a baseline
// directory may carry: a default tolerance percentage and per-metric
// overrides (tolerance and/or regression direction).
type BaselineTolerances struct {
	// DefaultPct is the symmetric tolerance applied when a metric has no
	// override (default 15 — the "unexplained >15% regression" bar).
	DefaultPct float64 `json:"default_pct"`
	// Metrics overrides individual metrics, keyed by the diff's metric name
	// ("gate:work_ratio_maintained", "modeled:work_ratio_patched").
	Metrics map[string]MetricTolerance `json:"metrics,omitempty"`
}

// MetricTolerance is one per-metric override.
type MetricTolerance struct {
	// Pct widens (or tightens) the tolerance for this metric.
	Pct float64 `json:"pct,omitempty"`
	// Direction overrides the regression direction: "higher" (bigger is
	// better — ratios, speedups), "lower" (smaller is better — latencies,
	// fallback counts), "equal" (drift either way regresses — deterministic
	// modeled counts), or "ignore" (tracked but never failed — machine- or
	// scale-dependent values).
	Direction string `json:"direction,omitempty"`
}

// BaselineDiff is one compared metric.
type BaselineDiff struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Baseline   float64 `json:"baseline"`
	Current    float64 `json:"current"`
	// DeltaPct is the signed relative change in percent (+ = current above
	// baseline); ±Inf is rendered as ±1e9 to stay valid JSON.
	DeltaPct     float64 `json:"delta_pct"`
	Direction    string  `json:"direction"`
	TolerancePct float64 `json:"tolerance_pct"`
	Regressed    bool    `json:"regressed"`
	// Note explains skipped or special-cased comparisons (missing current
	// report, ignored direction, config mismatch).
	Note string `json:"note,omitempty"`
}

// BaselineReport is the machine-readable comparison record,
// BENCH_baseline_diff.json.
type BaselineReport struct {
	BaselineDir   string         `json:"baseline_dir"`
	GeneratedUnix int64          `json:"generated_unix"`
	Compared      int            `json:"compared"`
	Regressions   int            `json:"regressions"`
	Diffs         []BaselineDiff `json:"diffs"`
}

// DefaultBaselinePct is the tolerance applied without a tolerances.json.
const DefaultBaselinePct = 15

// defaultDirection infers a metric's regression direction from its name,
// mirroring the repo's metric vocabulary (DESIGN.md §6): ratios and
// speedups regress downward, latency-like values upward, fractions and
// deterministic counts by drifting, and the wall gates — pure
// machine-clock population checks — are tracked but never failed.
func defaultDirection(name string) string {
	base := strings.TrimPrefix(strings.TrimPrefix(name, "gate:"), "modeled:")
	switch {
	case strings.Contains(base, "ratio"), strings.Contains(base, "speedup"):
		return "higher"
	case strings.HasPrefix(base, "p99_populated"):
		return "ignore"
	case strings.Contains(base, "relabeled"):
		return "lower"
	case strings.HasSuffix(base, "_frac"):
		return "equal"
	case strings.HasSuffix(base, "_ns"), strings.HasSuffix(base, "_ms"):
		return "lower"
	default:
		return ""
	}
}

// scaleFree reports whether a direction-resolved metric can be compared
// across runs whose ReportConfig differs (quick CI runs against full-scale
// records): ratios, speedups and fractions are dimensionless; anything
// else needs matching configs.
func scaleFree(name string) bool {
	base := strings.TrimPrefix(strings.TrimPrefix(name, "gate:"), "modeled:")
	return strings.Contains(base, "ratio") || strings.Contains(base, "speedup") ||
		strings.HasSuffix(base, "_frac") || strings.Contains(base, "relabeled")
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Experiment == "" {
		return nil, fmt.Errorf("%s: not a bench report (no experiment field)", path)
	}
	return &r, nil
}

func loadTolerances(dir string) (BaselineTolerances, error) {
	tol := BaselineTolerances{DefaultPct: DefaultBaselinePct}
	data, err := os.ReadFile(filepath.Join(dir, "tolerances.json"))
	if os.IsNotExist(err) {
		return tol, nil
	}
	if err != nil {
		return tol, err
	}
	if err := json.Unmarshal(data, &tol); err != nil {
		return tol, fmt.Errorf("tolerances.json: %w", err)
	}
	if tol.DefaultPct <= 0 {
		tol.DefaultPct = DefaultBaselinePct
	}
	return tol, nil
}

// metricValues flattens a report's gates and modeled values into one
// name→value map with the gate:/modeled: prefixes the tolerance config and
// diffs use.
func metricValues(r *Report) map[string]float64 {
	out := make(map[string]float64, len(r.Gates)+len(r.Modeled))
	for _, g := range r.Gates {
		out["gate:"+g.Name] = g.Value
	}
	for name, v := range r.Modeled {
		out["modeled:"+name] = v
	}
	return out
}

func configsMatch(a, b ReportConfig) bool {
	return a.Scale == b.Scale && a.Seed == b.Seed && a.Ops == b.Ops &&
		a.Batch == b.Batch && a.Quick == b.Quick
}

func deltaPct(baseline, current float64) float64 {
	if baseline == 0 {
		switch {
		case current == 0:
			return 0
		case current > 0:
			return 1e9
		default:
			return -1e9
		}
	}
	return 100 * (current - baseline) / math.Abs(baseline)
}

// compareMetric builds the diff for one metric present in the baseline.
func compareMetric(exp, name string, baseVal, curVal float64, sameCfg bool, tol BaselineTolerances) (BaselineDiff, bool) {
	d := BaselineDiff{
		Experiment: exp, Metric: name,
		Baseline: baseVal, Current: curVal,
		DeltaPct:     deltaPct(baseVal, curVal),
		TolerancePct: tol.DefaultPct,
	}
	if mt, ok := tol.Metrics[name]; ok {
		if mt.Pct > 0 {
			d.TolerancePct = mt.Pct
		}
		d.Direction = mt.Direction
	}
	if d.Direction == "" {
		d.Direction = defaultDirection(name)
	}
	if d.Direction == "" {
		if !sameCfg {
			return d, false // raw count under a different config: incomparable
		}
		d.Direction = "equal"
	}
	if d.Direction == "ignore" {
		d.Note = "tracked, never gated"
		return d, true
	}
	if !sameCfg && !scaleFree(name) {
		d.Note = "config mismatch, scale-dependent"
		return d, false
	}
	t := d.TolerancePct / 100
	switch d.Direction {
	case "higher":
		d.Regressed = curVal < baseVal-math.Abs(baseVal)*t
	case "lower":
		d.Regressed = curVal > baseVal+math.Abs(baseVal)*t
	case "equal":
		d.Regressed = math.Abs(curVal-baseVal) > math.Abs(baseVal)*t
		if baseVal == 0 {
			d.Regressed = curVal != 0
		}
	}
	if d.Direction == "lower" && baseVal == 0 {
		// A zero baseline is an exact contract (e.g. zero relabeled edges):
		// any positive value regresses it regardless of tolerance.
		d.Regressed = curVal > 0
	}
	return d, true
}

// CompareBaseline compares the BENCH_*.json reports in currentDir against
// the records in baselineDir, applying baselineDir/tolerances.json when
// present. The human-readable comparison is printed to out; the
// machine-readable BaselineReport is written to
// currentDir/BENCH_baseline_diff.json and returned. A missing current
// report for a recorded experiment is noted but is not a regression (CI
// may run a subset); the caller decides whether Regressions > 0 is fatal.
func CompareBaseline(currentDir, baselineDir string, out io.Writer) (*BaselineReport, error) {
	tol, err := loadTolerances(baselineDir)
	if err != nil {
		return nil, err
	}
	paths, err := filepath.Glob(filepath.Join(baselineDir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	rep := &BaselineReport{BaselineDir: baselineDir, GeneratedUnix: time.Now().Unix()}
	for _, p := range paths {
		name := filepath.Base(p)
		if name == "BENCH_baseline_diff.json" || strings.Contains(name, "_trace") {
			continue
		}
		base, err := loadReport(p)
		if err != nil {
			// Non-report JSON riding along in the records dir is not a
			// baseline; note and move on.
			fmt.Fprintf(out, "baseline: skipping %s: %v\n", name, err)
			continue
		}
		curPath := filepath.Join(currentDir, name)
		cur, err := loadReport(curPath)
		if err != nil {
			if os.IsNotExist(err) {
				rep.Diffs = append(rep.Diffs, BaselineDiff{
					Experiment: base.Experiment, Metric: "report",
					Note: "no current report (experiment not run)",
				})
				continue
			}
			return nil, err
		}
		sameCfg := configsMatch(base.Config, cur.Config)
		curVals := metricValues(cur)
		baseVals := metricValues(base)
		names := make([]string, 0, len(baseVals))
		for n := range baseVals {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			cv, ok := curVals[n]
			if !ok {
				rep.Diffs = append(rep.Diffs, BaselineDiff{
					Experiment: base.Experiment, Metric: n, Baseline: baseVals[n],
					Note: "metric missing from current report",
				})
				continue
			}
			d, compared := compareMetric(base.Experiment, n, baseVals[n], cv, sameCfg, tol)
			if !compared {
				if d.Note == "" {
					d.Note = "incomparable"
				}
				rep.Diffs = append(rep.Diffs, d)
				continue
			}
			rep.Compared++
			if d.Regressed {
				rep.Regressions++
			}
			rep.Diffs = append(rep.Diffs, d)
		}
	}

	fmt.Fprintf(out, "== baseline comparison against %s ==\n", baselineDir)
	fmt.Fprintf(out, "%-8s %-42s %12s %12s %9s %7s %-6s %s\n",
		"exp", "metric", "baseline", "current", "delta", "tol", "dir", "status")
	for _, d := range rep.Diffs {
		status := "ok"
		switch {
		case d.Regressed:
			status = "REGRESSED"
		case d.Note != "":
			status = "skip (" + d.Note + ")"
		}
		fmt.Fprintf(out, "%-8s %-42s %12.4g %12.4g %+8.1f%% %6.0f%% %-6s %s\n",
			d.Experiment, d.Metric, d.Baseline, d.Current, d.DeltaPct,
			d.TolerancePct, d.Direction, status)
	}
	fmt.Fprintf(out, "compared %d metrics: %d regressions\n", rep.Compared, rep.Regressions)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	diffPath := filepath.Join(currentDir, "BENCH_baseline_diff.json")
	if err := os.WriteFile(diffPath, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("bench: writing %s: %w", diffPath, err)
	}
	fmt.Fprintf(out, "wrote %s\n", diffPath)
	return rep, nil
}
