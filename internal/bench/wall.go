package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	vebo "repro"
	"repro/internal/gen"
)

// wallOps is the stream length at the default scale (0.2); other scales
// stream proportionally.
const wallOps = 20_000

// wallBatch is the serve-mode default: one view epoch per 256 updates.
const wallBatch = 256

// wallQueries is the per-(algorithm, system) query count outside Quick mode.
const wallQueries = 5

// Wall is the wall-clock latency harness (not a paper table). Unlike the
// modeled experiments it reports real elapsed time: a powerlaw churn stream
// is ingested batch by batch through the public Dynamic facade, then BFS and
// PageRank run on the final view under all three framework models. Ingest
// latency comes from the obs registry's vebo_batch_ns histogram and query
// latency from vebo_query_ns{alg,sys} — the same series `vebo serve` exports
// on /metrics — so the harness also proves the instrumentation path end to
// end. Results are printed as a table and, when Config.JSONDir is set,
// written as BENCH_wall.json (see Report). Query latencies include lazy
// engine construction on each system's first query; that IS the first-query
// latency a serving tier observes.
func Wall(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	ops := int(float64(wallOps) * cfg.Scale / 0.2)
	if ops < 4*wallBatch {
		ops = 4 * wallBatch
	}
	queries := wallQueries
	if cfg.Quick {
		ops = 3 * wallBatch
		queries = 1
	}
	g, updates, err := gen.StreamFromRecipe("powerlaw", cfg.Scale, ops, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Extension: wall-clock latency harness (powerlaw, %d updates, batch %d, P=%d) ==\n",
		len(updates), wallBatch, 64)

	d, err := vebo.NewDynamic(g, vebo.DynamicOptions{
		Partitions: 64,
		Engine: vebo.EngineOptions{
			Sockets:          cfg.Topology.Sockets,
			ThreadsPerSocket: cfg.Topology.ThreadsPerSocket,
		},
	})
	if err != nil {
		return err
	}

	ingestStart := time.Now()
	for lo := 0; lo < len(updates); lo += wallBatch {
		hi := lo + wallBatch
		if hi > len(updates) {
			hi = len(updates)
		}
		if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
			return err
		}
	}
	ingestElapsed := time.Since(ingestStart)

	reg := d.Metrics()
	series := []LatencySeries{
		seriesFromHistogram("ingest", "", "", reg.Histogram("vebo_batch_ns"), ingestElapsed),
	}

	root := vebo.VertexID(pickRoot(g))
	for _, sys := range []vebo.System{vebo.Ligra, vebo.Polymer, vebo.GraphGrind} {
		for _, alg := range []string{"bfs", "pagerank"} {
			qStart := time.Now()
			for q := 0; q < queries; q++ {
				v := d.View()
				var qerr error
				switch alg {
				case "bfs":
					_, qerr = v.BFS(sys, root)
				case "pagerank":
					_, qerr = v.PageRank(sys, 10)
				}
				if qerr != nil {
					return fmt.Errorf("wall: %s/%s: %w", sys, alg, qerr)
				}
			}
			h := reg.Histogram("vebo_query_ns", "alg", alg, "sys", sys.String())
			series = append(series, seriesFromHistogram("query", alg, sys.String(), h, time.Since(qStart)))
		}
	}

	// The staleness plane: vebo_epoch_age_ns sampled per query (how old the
	// queried epoch was) and vebo_publish_lag_ns sampled per publish (batch
	// receipt → view publication). Reported as series like any latency so
	// the p99s land in the table, the JSON report and the CI gates.
	ageH := reg.Histogram("vebo_epoch_age_ns")
	lagH := reg.Histogram("vebo_publish_lag_ns")
	series = append(series,
		seriesFromHistogram("staleness", "epoch_age", "", ageH, 0),
		seriesFromHistogram("staleness", "publish_lag", "", lagH, 0))

	fmt.Fprintf(w, "%-8s %-10s %-11s %8s %10s %10s %10s %10s\n",
		"op", "alg", "system", "count", "ops/s", "p50_ms", "p99_ms", "mean_ms")
	gates := make([]Gate, 0, len(series))
	for _, s := range series {
		name := s.Op
		if s.Alg != "" {
			name += ":" + s.Alg
			if s.System != "" {
				name += ":" + s.System
			}
		}
		fmt.Fprintf(w, "%-8s %-10s %-11s %8d %10.1f %10.3f %10.3f %10.3f\n",
			s.Op, orDash(s.Alg), orDash(s.System), s.Count, s.OpsPerSec, s.P50Ms, s.P99Ms, s.MeanMs)
		gates = append(gates, Gate{
			Name: "p99_populated:" + name, Value: s.P99Ms, Threshold: 0, Pass: s.Count > 0 && s.P99Ms > 0,
		})
	}
	work := d.ViewWork()
	fmt.Fprintf(w, "wall ingest: %v total; engines: %d built, %d patched over %d epochs\n",
		ingestElapsed.Round(time.Millisecond), work.EngineBuilds, work.EnginePatches, work.Epochs)
	fmt.Fprintf(w, "staleness: vebo_epoch_age_ns p99=%v (p50=%v over %d query samples), vebo_publish_lag_ns p99=%v, vebo_delta_backlog=%d\n\n",
		time.Duration(ageH.Quantile(0.99)).Round(time.Microsecond),
		time.Duration(ageH.Quantile(0.50)).Round(time.Microsecond),
		ageH.Count(),
		time.Duration(lagH.Quantile(0.99)).Round(time.Microsecond),
		reg.Gauge("vebo_delta_backlog").Value())

	report := Report{
		Experiment: "wall",
		Config:     ReportConfig{Scale: cfg.Scale, Seed: cfg.Seed, Ops: len(updates), Batch: wallBatch, Quick: cfg.Quick},
		Series:     series,
		Gates:      gates,
		Modeled: map[string]float64{
			"epochs":         float64(work.Epochs),
			"engine_builds":  float64(work.EngineBuilds),
			"engine_patches": float64(work.EnginePatches),
		},
	}
	if err := writeReport(cfg, report); err != nil {
		return err
	}
	// Export the run's causal spans as a Chrome trace next to the JSON
	// report (CI uploads both): every ingest batch, maintenance step,
	// publish and query of the run, Perfetto-viewable.
	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_wall_trace.json")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("wall: writing %s: %w", path, err)
		}
		werr := d.Spans().WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("wall: writing %s: %w", path, werr)
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	if cfg.Quick {
		for _, gt := range gates {
			if !gt.Pass {
				return fmt.Errorf("wall: gate %s failed — latency series empty (count or p99 is zero)", gt.Name)
			}
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
