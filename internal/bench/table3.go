package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/stats"
)

// algorithmNames is the paper's Table II order.
var algorithmNames = []string{"CC", "BC", "PR", "BFS", "PRD", "SPMV", "BF", "BP"}

// runAlgorithm executes the named algorithm on eng (and engT for BC's
// backward sweep) and returns the modeled time consumed. Metrics are reset
// before the run.
func runAlgorithm(algo string, eng, engT engine.Engine, root graph.VertexID) (int64, error) {
	eng.Metrics().Reset()
	if engT != nil {
		engT.Metrics().Reset()
	}
	g := eng.Graph()
	switch algo {
	case "CC":
		algorithms.CC(eng)
	case "BC":
		if engT == nil {
			return 0, fmt.Errorf("bench: BC requires a transpose engine")
		}
		algorithms.BC(eng, engT, root)
	case "PR":
		algorithms.PageRank(eng, 10)
	case "BFS":
		algorithms.BFS(eng, root)
	case "PRD":
		algorithms.PageRankDelta(eng, 20, 1e-3)
	case "SPMV":
		x := make([]float64, g.NumVertices())
		for i := range x {
			x[i] = 1
		}
		algorithms.SPMV(eng, x)
	case "BF":
		algorithms.BellmanFord(eng, root)
	case "BP":
		prior := make([]float64, g.NumVertices())
		for i := range prior {
			prior[i] = 0.05 * float64(i%7)
		}
		algorithms.BP(eng, 10, prior)
	default:
		return 0, fmt.Errorf("bench: unknown algorithm %q", algo)
	}
	t := eng.Metrics().ModelTime
	if engT != nil {
		t += engT.Metrics().ModelTime
	}
	return t, nil
}

// table3Graphs is the Table III row order (all Table I graphs).
var table3Graphs = []string{
	"twitter", "friendster", "rmat", "powerlaw", "orkut", "livejournal", "yahoo", "usaroad",
}

// Table3 regenerates the paper's Table III: runtime of the eight algorithms
// on eight graphs under four vertex orders across the three framework
// models. Polymer omits BC, as in the paper. Times are modeled cost units;
// the comparison of interest is within a row.
func Table3(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	fmt.Fprintf(w, "== Table III: modeled runtime (cost units), %d-thread model ==\n", cfg.Topology.Threads())
	fmt.Fprintf(w, "GraphGrind COO order: hilbert for orig/rcm/gorder, csr for vebo (Section V-G)\n\n")

	// speedup accumulators: system -> list of orig/vebo ratios
	speedups := map[string][]float64{}

	for _, gname := range table3Graphs {
		g, err := buildRecipe(cfg, gname)
		if err != nil {
			return err
		}
		root := pickRoot(g)
		ords, err := applyOrderings(g, []int{cfg.Topology.Sockets, cfg.Partitions})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- %s (n=%d, m=%d) --\n", gname, g.NumVertices(), g.NumEdges())
		fmt.Fprintf(w, "%-6s %-12s", "algo", "system")
		for _, on := range orderingNames {
			fmt.Fprintf(w, " %12s", on)
		}
		fmt.Fprintln(w, "  best")

		type cell struct{ times map[string]int64 }
		for _, sys := range systemNames {
			// build engines once per ordering and reuse across algorithms
			engs := map[string]engine.Engine{}
			engTs := map[string]engine.Engine{}
			for _, o := range ords {
				ggOrder := layout.HilbertOrder
				var bounds []int64
				if o.name == "vebo" {
					ggOrder = layout.CSROrder
					bounds = o.bounds[cfg.Partitions]
				}
				e, err := newEngine(sys, o.g, cfg, bounds, ggOrder, cfg.Partitions)
				if err != nil {
					return err
				}
				engs[o.name] = e
				et, err := newEngine(sys, o.g.Transpose(), cfg, nil, ggOrder, cfg.Partitions)
				if err != nil {
					return err
				}
				engTs[o.name] = et
			}
			for _, algo := range algorithmNames {
				if algo == "BC" && sys == "polymer" {
					// Polymer provides no BC implementation (paper §IV).
					continue
				}
				c := cell{times: map[string]int64{}}
				for _, o := range ords {
					t, err := runAlgorithm(algo, engs[o.name], engTs[o.name], o.perm[root])
					if err != nil {
						return err
					}
					c.times[o.name] = t
				}
				best := orderingNames[0]
				for _, on := range orderingNames[1:] {
					if c.times[on] < c.times[best] {
						best = on
					}
				}
				fmt.Fprintf(w, "%-6s %-12s", algo, sys)
				for _, on := range orderingNames {
					fmt.Fprintf(w, " %12d", c.times[on])
				}
				fmt.Fprintf(w, "  %s\n", best)
				if c.times["vebo"] > 0 {
					speedups[sys] = append(speedups[sys],
						float64(c.times["orig"])/float64(c.times["vebo"]))
				}
			}
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "-- VEBO speedup over original order (geomean across algorithms and graphs) --")
	for _, sys := range systemNames {
		fmt.Fprintf(w, "%-12s %.2fx (paper: ligra 1.09x, polymer 1.41x, graphgrind 1.65x)\n",
			sys, stats.GeoMean(speedups[sys]))
	}
	fmt.Fprintln(w)
	return nil
}
