package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/stats"
)

// Partitioners is an extension experiment (not a paper table): it puts VEBO
// side by side with the streaming partitioners of the paper's related-work
// section (LDG, Fennel) and with plain Algorithm 1, measuring the trade-off
// the paper argues about — streaming partitioners optimize edge cut at a
// balance cost, while VEBO optimizes balance and ignores edge cut, at a
// fraction of the cost.
func Partitioners(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	fmt.Fprintf(w, "== Extension: VEBO vs streaming partitioners (P=%d) ==\n", cfg.Topology.Sockets*4)
	p := cfg.Topology.Sockets * 4 // streaming partitioners are O(n·P); keep P moderate
	fmt.Fprintf(w, "%-12s %-10s %10s %12s %12s %12s %12s\n",
		"graph", "method", "time", "edgeSpread", "vertSpread", "edgeCut", "cut%")
	for _, gname := range []string{"twitter", "orkut", "usaroad"} {
		g, err := buildRecipe(cfg, gname)
		if err != nil {
			return err
		}
		m := float64(g.NumEdges())

		report := func(method string, elapsed time.Duration, a *partition.Assignment) {
			ec := a.EdgeCounts(g)
			vs := a.Sizes()
			cut := a.EdgeCut(g)
			fmt.Fprintf(w, "%-12s %-10s %10s %12d %12d %12d %11.1f%%\n",
				gname, method, elapsed.Round(time.Microsecond),
				int64(stats.SummarizeInts(ec).Max-stats.SummarizeInts(ec).Min),
				int64(stats.SummarizeInts(vs).Max-stats.SummarizeInts(vs).Min),
				cut, 100*float64(cut)/m)
		}

		start := time.Now()
		parts, err := partition.ByDestination(g, p)
		if err != nil {
			return err
		}
		report("algo1", time.Since(start), partition.FromRanges(parts, g.NumVertices()))

		start = time.Now()
		r, err := core.Reorder(g, p, core.Options{})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		// express VEBO as an assignment on the original graph
		va := &partition.Assignment{P: p, PartOf: make([]uint32, g.NumVertices())}
		copy(va.PartOf, r.PartitionOf)
		report("vebo", elapsed, va)

		start = time.Now()
		ldg, err := partition.LDG(g, p)
		if err != nil {
			return err
		}
		report("ldg", time.Since(start), ldg)

		start = time.Now()
		fen, err := partition.Fennel(g, p, partition.FennelConfig{})
		if err != nil {
			return err
		}
		report("fennel", time.Since(start), fen)
	}
	fmt.Fprintf(w, "(expected: vebo spreads ≤ 1 at minimal cost; ldg/fennel lower edge cut but worse balance)\n\n")
	return nil
}
