package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/atomicf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/partition"
	"repro/internal/stats"
)

// bfsFrontiers runs BFS on eng from root and returns the frontier of each
// iteration (before the edgemap that consumes it).
func bfsFrontiers(eng engine.Engine, root graph.VertexID) []*frontier.Frontier {
	g := eng.Graph()
	parent := make([]int32, g.NumVertices())
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = int32(root)
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, _ int32) bool {
			if parent[d] < 0 {
				parent[d] = int32(s)
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool {
			return atomicf.CASI32(&parent[d], -1, int32(s))
		},
		Cond: func(d graph.VertexID) bool { return parent[d] < 0 },
	}
	var fronts []*frontier.Frontier
	f := frontier.FromVertex(g, root)
	for !f.IsEmpty() {
		fronts = append(fronts, f)
		f = eng.EdgeMap(f, kernel)
	}
	return fronts
}

// activeEdgesPerPartition counts, for each partition, the edges out of the
// frontier whose destination lands in that partition.
func activeEdgesPerPartition(g *graph.Graph, f *frontier.Frontier, parts []partition.Partition) []int64 {
	counts := make([]int64, len(parts))
	for _, s := range f.Sparse() {
		for _, d := range g.OutNeighbors(s) {
			counts[partition.Of(parts, d)]++
		}
	}
	return counts
}

// Table4 regenerates the paper's Table IV: the distribution of active edges
// over the 384 partitions for the sparse iterations of BFS on the
// twitter-like graph, with the original order versus VEBO. The paper's
// finding: original has many partitions with zero active edges and a larger
// standard deviation; VEBO lifts the minimum and median toward the ideal.
func Table4(cfg Config) error {
	cfg = cfg.WithDefaults()
	w := cfg.Out
	g, err := buildRecipe(cfg, "twitter")
	if err != nil {
		return err
	}
	root := pickRoot(g)

	r, err := core.Reorder(g, cfg.Partitions, core.Options{})
	if err != nil {
		return err
	}
	vg, err := core.Apply(g, r)
	if err != nil {
		return err
	}

	type variant struct {
		label  string
		g      *graph.Graph
		root   graph.VertexID
		bounds []int64
	}
	variants := []variant{
		{"orig", g, root, nil},
		{"vebo", vg, r.Perm[root], r.Boundaries()},
	}

	fmt.Fprintf(w, "== Table IV: active edges per partition, sparse BFS iterations (P=%d) ==\n", cfg.Partitions)
	fmt.Fprintf(w, "%-5s %-6s %12s %12s %10s %10s %10s %10s\n",
		"iter", "order", "activeEdges", "ideal/part", "min", "median", "stddev", "max")

	// gather per-iteration counts per variant
	type iterStats struct {
		active int64
		s      stats.Summary
	}
	all := map[string][]iterStats{}
	maxIters := 0
	for _, v := range variants {
		var parts []partition.Partition
		if v.bounds != nil {
			parts, err = partition.ByVertexRanges(v.g, v.bounds)
		} else {
			parts, err = partition.ByDestination(v.g, cfg.Partitions)
		}
		if err != nil {
			return err
		}
		eng, err := newEngine("graphgrind", v.g, cfg, v.bounds, layout.CSROrder, cfg.Partitions)
		if err != nil {
			return err
		}
		for _, f := range bfsFrontiers(eng, v.root) {
			counts := activeEdgesPerPartition(v.g, f, parts)
			var total int64
			for _, c := range counts {
				total += c
			}
			all[v.label] = append(all[v.label], iterStats{total, stats.SummarizeInts(counts)})
		}
		if n := len(all[v.label]); n > maxIters {
			maxIters = n
		}
	}

	for it := 0; it < maxIters; it++ {
		for _, v := range variants {
			if it >= len(all[v.label]) {
				continue
			}
			st := all[v.label][it]
			fmt.Fprintf(w, "%-5d %-6s %12d %12.1f %10.0f %10.1f %10.1f %10.0f\n",
				it, v.label, st.active, float64(st.active)/float64(cfg.Partitions),
				st.s.Min, st.s.Median, st.s.StdDev, st.s.Max)
		}
	}
	// verify sanity: BFS reaches the same set under both orders
	d1 := algorithms.RefBFSDepths(g, root)
	d2 := algorithms.RefBFSDepths(vg, r.Perm[root])
	reach1, reach2 := 0, 0
	for v := range d1 {
		if d1[v] >= 0 {
			reach1++
		}
		if d2[v] >= 0 {
			reach2++
		}
	}
	fmt.Fprintf(w, "reachable vertices: orig %d, vebo %d (must match)\n\n", reach1, reach2)
	return nil
}
