package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/numa"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Scale:      0.05,
		Seed:       7,
		Partitions: 48,
		Topology:   numa.Topology{Sockets: 4, ThreadsPerSocket: 2},
		Out:        buf,
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", Config{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestExperimentsList(t *testing.T) {
	if len(Experiments()) != 15 {
		t.Fatalf("experiment count = %d", len(Experiments()))
	}
}

func TestGrowSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Quick = true
	if err := Run("grow", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vertex arrivals", "patched", "rebuild", "maintained", "work ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRefineSmoke mirrors the CI gate on the refinement experiment: quick
// mode must pass its speedup gates and produce a parseable BENCH_refine.json
// with populated refined + scratch series for both gated algorithms at the
// smallest batch size.
func TestRefineSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Quick = true
	cfg.JSONDir = t.TempDir()
	if err := Run("refine", cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(cfg.JSONDir, "BENCH_refine.json"))
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("BENCH_refine.json invalid: %v", err)
	}
	if r.Experiment != "refine" || r.GeneratedUnix == 0 {
		t.Fatalf("report header = %+v", r)
	}
	gates := map[string]bool{}
	for _, g := range r.Gates {
		gates[g.Name] = g.Pass
	}
	for _, name := range []string{"refine_speedup_bfs", "refine_speedup_pagerank"} {
		if pass, ok := gates[name]; !ok || !pass {
			t.Fatalf("gate %s missing or failed: %+v", name, r.Gates)
		}
	}
	small := 0
	for _, s := range r.Series {
		if small == 0 || s.Batch < small {
			small = s.Batch
		}
	}
	seen := map[string]bool{}
	for _, s := range r.Series {
		if s.Batch != small {
			continue
		}
		seen[s.Alg+":"+s.Variant] = true
		if s.Count == 0 || s.MeanMs <= 0 {
			t.Fatalf("unpopulated series %+v", s)
		}
	}
	for _, want := range []string{"bfs:refined", "bfs:scratch", "pagerank:refined", "pagerank:scratch"} {
		if !seen[want] {
			t.Fatalf("missing series %s at batch %d; have %v", want, small, seen)
		}
	}
}

// TestWallSmoke mirrors the CI gate on the wall-clock harness: quick mode
// must produce a parseable BENCH_wall.json with an ingest series and
// populated p99 fields for BFS and PageRank on all three framework models.
func TestWallSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Quick = true
	cfg.JSONDir = t.TempDir()
	if err := Run("wall", cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(cfg.JSONDir, "BENCH_wall.json"))
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("BENCH_wall.json invalid: %v", err)
	}
	if r.Experiment != "wall" || r.GeneratedUnix == 0 {
		t.Fatalf("report header = %+v", r)
	}
	seen := map[string]bool{}
	for _, s := range r.Series {
		key := s.Op
		if s.Alg != "" {
			key += ":" + s.Alg + ":" + s.System
		}
		seen[key] = true
		if s.Count == 0 || s.P99Ms <= 0 || s.P50Ms <= 0 {
			t.Errorf("series %s not populated: %+v", key, s)
		}
	}
	for _, want := range []string{
		"ingest",
		"query:bfs:ligra", "query:pagerank:ligra",
		"query:bfs:polymer", "query:pagerank:polymer",
		"query:bfs:graphgrind", "query:pagerank:graphgrind",
	} {
		if !seen[want] {
			t.Errorf("missing series %s (have %v)", want, seen)
		}
	}
	for _, gt := range r.Gates {
		if !gt.Pass {
			t.Errorf("gate failed: %+v", gt)
		}
	}
}

// TestViewQuickEmitsJSON checks the satellite: the quick work-ratio gates are
// also emitted as a JSON report with the shared schema.
func TestViewQuickEmitsJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Quick = true
	cfg.JSONDir = t.TempDir()
	if err := Run("view", cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(cfg.JSONDir, "BENCH_view.json"))
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("BENCH_view.json invalid: %v", err)
	}
	if len(r.Gates) != 1 || r.Gates[0].Name != "work_ratio_maintained" {
		t.Fatalf("gates = %+v", r.Gates)
	}
	if !r.Gates[0].Pass {
		t.Errorf("maintained gate failed in JSON but Run returned nil: %+v", r.Gates[0])
	}
	if r.Modeled["work_ratio_patched"] <= 0 {
		t.Errorf("modeled work_ratio_patched missing: %+v", r.Modeled)
	}
}

func TestViewSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("view", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"patched", "rebuild", "maintained", "work ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "twitter", "usaroad", "rmat"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig1Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig1", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "original") || !strings.Contains(out, "vebo") {
		t.Errorf("output missing variants:\n%s", out)
	}
}

func TestTable4Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table4", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "must match") {
		t.Errorf("output missing sanity line:\n%s", buf.String())
	}
}

func TestFig4Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig4", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "branch MPKI") {
		t.Errorf("output missing MPKI:\n%s", buf.String())
	}
}

func TestTable5Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table5", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vmRmt") {
		t.Errorf("output missing columns:\n%s", buf.String())
	}
}

func TestFig6Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig6", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "high-to-low") {
		t.Errorf("output missing series:\n%s", buf.String())
	}
}

func TestFig5Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig5", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"random+vebo", "usaroad"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTable6Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table6", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedups") {
		t.Errorf("output missing speedups:\n%s", buf.String())
	}
}

func TestTable3SmokeSingleGraph(t *testing.T) {
	// Table3 over all 8 graphs is heavy; restrict to two graphs for the
	// smoke test via the package-level list.
	saved := table3Graphs
	table3Graphs = []string{"livejournal", "usaroad"}
	defer func() { table3Graphs = saved }()
	var buf bytes.Buffer
	if err := Run("table3", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ligra", "polymer", "graphgrind", "geomean", "SPMV"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Polymer must skip BC
	if strings.Contains(out, "BC     polymer") {
		t.Error("polymer should not run BC")
	}
}

func TestPartitionersSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("partitioners", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ldg", "fennel", "vebo", "algo1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestDynamicSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("dynamic", tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"incremental", "rebuild/batch", "ldg(final)", "fennel(final)", "): true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGroupBounds(t *testing.T) {
	fine := []int64{0, 10, 20, 30, 40, 50, 60, 70, 80}
	got := core.CoarsenBounds(fine, 4)
	want := []int64{0, 20, 40, 60, 80}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CoarsenBounds = %v, want %v", got, want)
		}
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if p := pearson(x, x); p < 0.999 {
		t.Errorf("self-correlation = %v", p)
	}
	y := []float64{4, 3, 2, 1}
	if p := pearson(x, y); p > -0.999 {
		t.Errorf("anti-correlation = %v", p)
	}
	if p := pearson(x, []float64{5, 5, 5, 5}); p != 0 {
		t.Errorf("constant correlation = %v", p)
	}
}
