// Package sched provides the parallel-loop schedulers that differentiate the
// three graph-processing frameworks in the paper's evaluation:
//
//   - StaticBlocks — Polymer-style static scheduling: the iteration space is
//     cut into one contiguous block per worker up front, so loop time is the
//     time of the slowest block (maximally sensitive to load imbalance).
//   - DynamicChunks — work-sharing over fixed-size chunks pulled from an
//     atomic counter (GraphGrind's intra-socket scheduling).
//   - RecursiveSplit — Cilk-style recursive halving of the range down to a
//     grain size, with work stealing approximated by goroutine scheduling
//     (Ligra's scheduling model).
//   - StaticItems / DynamicItems — the same two policies over an explicit
//     item list (used for partitions rather than vertex ranges).
//
// Every scheduler reports per-worker busy time so the benchmarks can
// reproduce the paper's load-balance figures.
package sched

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats captures per-worker busy time for one parallel loop.
type Stats struct {
	// Busy[w] is the total time worker w spent inside the loop body.
	Busy []time.Duration
}

// Imbalance returns max(Busy)/mean(Busy), the paper's notion of load
// imbalance under static scheduling (1.0 = perfect). Returns 0 for empty
// stats.
func (s *Stats) Imbalance() float64 {
	if len(s.Busy) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, b := range s.Busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.Busy))
	return float64(max) / mean
}

// StaticBlocks runs fn over [0, n) cut into workers contiguous blocks, one
// goroutine per worker. fn receives its worker index and the block range.
func StaticBlocks(workers, n int, fn func(worker, lo, hi int)) *Stats {
	if workers < 1 {
		workers = 1
	}
	st := &Stats{Busy: make([]time.Duration, workers)}
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			start := time.Now()
			if lo < hi {
				fn(w, lo, hi)
			}
			st.Busy[w] = time.Since(start)
		}(w, lo, hi)
	}
	wg.Wait()
	return st
}

// DynamicChunks runs fn over [0, n) in chunks of the given size, pulled
// dynamically by the workers from a shared counter.
func DynamicChunks(workers, n, chunk int, fn func(worker, lo, hi int)) *Stats {
	if workers < 1 {
		workers = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	st := &Stats{Busy: make([]time.Duration, workers)}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
			st.Busy[w] = time.Since(start)
		}(w)
	}
	wg.Wait()
	return st
}

// RecursiveSplit runs fn over [0, n) by recursively halving the range until
// it is at most grain, spawning a goroutine for one half at each split, as a
// Cilk parallel-for would. Worker identity is not exposed (Cilk workers are
// anonymous); concurrency is bounded by maxPar simultaneous goroutines.
func RecursiveSplit(maxPar, n, grain int, fn func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	if maxPar < 1 {
		maxPar = 1
	}
	sem := make(chan struct{}, maxPar)
	var split func(lo, hi int, wg *sync.WaitGroup)
	split = func(lo, hi int, wg *sync.WaitGroup) {
		for hi-lo > grain {
			mid := (lo + hi) / 2
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					split(lo, hi, wg)
					<-sem
				}(mid, hi)
				hi = mid
			default:
				// no worker slot free: keep splitting sequentially to
				// preserve grain-sized work units
				split(mid, hi, wg)
				hi = mid
			}
		}
		if lo < hi {
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	split(0, n, &wg)
	wg.Wait()
}

// StaticItems distributes items [0, n) blockwise over workers, like
// StaticBlocks but invoking fn once per item.
func StaticItems(workers, n int, fn func(worker, item int)) *Stats {
	return StaticBlocks(workers, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
	})
}

// DynamicItems lets workers pull single items from a shared queue.
func DynamicItems(workers, n int, fn func(worker, item int)) *Stats {
	return DynamicChunks(workers, n, 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
	})
}

// GroupedStatic runs nested scheduling as GraphGrind does: items are first
// distributed statically over groups (sockets), then within each group the
// group's workers pull items dynamically. groupOf maps an item to its group;
// items must be pre-sorted so that each group's items are contiguous.
func GroupedStatic(groups, workersPerGroup, n int, groupOf func(item int) int, fn func(worker, item int)) *Stats {
	if groups < 1 {
		groups = 1
	}
	st := &Stats{Busy: make([]time.Duration, groups*workersPerGroup)}
	// find contiguous item ranges per group by binary search on group starts
	bounds := make([]int, groups+1)
	for g := 1; g < groups; g++ {
		// first item whose group >= g
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if groupOf(mid) < g {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[g] = lo
	}
	bounds[0], bounds[groups] = 0, n

	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		lo, hi := bounds[g], bounds[g+1]
		var next int64 = int64(lo)
		for w := 0; w < workersPerGroup; w++ {
			wid := g*workersPerGroup + w
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				start := time.Now()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= hi {
						break
					}
					fn(wid, i)
				}
				st.Busy[wid] = time.Since(start)
			}(wid)
		}
	}
	wg.Wait()
	return st
}
