package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// coverage collects which indices were visited and how often.
type coverage struct {
	mu     sync.Mutex
	counts []int
}

func newCoverage(n int) *coverage { return &coverage{counts: make([]int, n)} }

func (c *coverage) markRange(lo, hi int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := lo; i < hi; i++ {
		c.counts[i]++
	}
}

func (c *coverage) exactlyOnce() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.counts {
		if n != 1 {
			return false
		}
	}
	return true
}

func TestStaticBlocksCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, w := range []int{1, 3, 8, 48} {
			cov := newCoverage(n)
			st := StaticBlocks(w, n, func(_, lo, hi int) { cov.markRange(lo, hi) })
			if !cov.exactlyOnce() {
				t.Fatalf("n=%d w=%d: not exactly-once coverage", n, w)
			}
			if len(st.Busy) != w {
				t.Fatalf("stats for %d workers, want %d", len(st.Busy), w)
			}
		}
	}
}

func TestStaticBlocksWorkerBlocksAreContiguous(t *testing.T) {
	var mu sync.Mutex
	got := map[int][2]int{}
	StaticBlocks(4, 100, func(w, lo, hi int) {
		mu.Lock()
		got[w] = [2]int{lo, hi}
		mu.Unlock()
	})
	if got[0] != [2]int{0, 25} || got[3] != [2]int{75, 100} {
		t.Errorf("unexpected block layout: %v", got)
	}
}

func TestDynamicChunksCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 13, 500} {
		for _, chunk := range []int{1, 7, 64} {
			cov := newCoverage(n)
			DynamicChunks(6, n, chunk, func(_, lo, hi int) { cov.markRange(lo, hi) })
			if !cov.exactlyOnce() {
				t.Fatalf("n=%d chunk=%d: not exactly-once coverage", n, chunk)
			}
		}
	}
}

func TestRecursiveSplitCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 9, 257, 4096} {
		cov := newCoverage(n)
		RecursiveSplit(8, n, 16, func(lo, hi int) { cov.markRange(lo, hi) })
		if !cov.exactlyOnce() {
			t.Fatalf("n=%d: not exactly-once coverage", n)
		}
	}
}

func TestRecursiveSplitRespectsGrain(t *testing.T) {
	var maxSeen int64
	RecursiveSplit(4, 1000, 32, func(lo, hi int) {
		sz := int64(hi - lo)
		for {
			cur := atomic.LoadInt64(&maxSeen)
			if sz <= cur || atomic.CompareAndSwapInt64(&maxSeen, cur, sz) {
				break
			}
		}
	})
	if maxSeen > 32 {
		t.Errorf("range of size %d exceeds grain 32", maxSeen)
	}
}

func TestStaticItemsAndDynamicItems(t *testing.T) {
	for _, n := range []int{0, 1, 17, 300} {
		cov := newCoverage(n)
		StaticItems(5, n, func(_, i int) { cov.markRange(i, i+1) })
		if !cov.exactlyOnce() {
			t.Fatalf("StaticItems n=%d: bad coverage", n)
		}
		cov = newCoverage(n)
		DynamicItems(5, n, func(_, i int) { cov.markRange(i, i+1) })
		if !cov.exactlyOnce() {
			t.Fatalf("DynamicItems n=%d: bad coverage", n)
		}
	}
}

func TestGroupedStaticCoversExactlyOnce(t *testing.T) {
	const n = 384
	const groups = 4
	cov := newCoverage(n)
	st := GroupedStatic(groups, 3, n, func(i int) int { return i * groups / n },
		func(_, i int) { cov.markRange(i, i+1) })
	if !cov.exactlyOnce() {
		t.Fatal("GroupedStatic: bad coverage")
	}
	if len(st.Busy) != groups*3 {
		t.Fatalf("stats for %d workers", len(st.Busy))
	}
}

func TestGroupedStaticConfinesWorkToGroups(t *testing.T) {
	const n = 100
	const groups = 4
	const wpg = 2
	groupOf := func(i int) int { return i * groups / n }
	var mu sync.Mutex
	bad := false
	GroupedStatic(groups, wpg, n, groupOf, func(worker, item int) {
		if worker/wpg != groupOf(item) {
			mu.Lock()
			bad = true
			mu.Unlock()
		}
	})
	if bad {
		t.Error("item processed by a worker outside its group")
	}
}

func TestStatsImbalance(t *testing.T) {
	s := &Stats{Busy: []time.Duration{100, 100, 100, 100}}
	if got := s.Imbalance(); got != 1.0 {
		t.Errorf("balanced imbalance = %v, want 1.0", got)
	}
	s = &Stats{Busy: []time.Duration{300, 100, 100, 100}}
	if got := s.Imbalance(); got != 2.0 {
		t.Errorf("imbalance = %v, want 2.0", got)
	}
	empty := &Stats{}
	if empty.Imbalance() != 0 {
		t.Error("empty stats should report 0")
	}
	zero := &Stats{Busy: []time.Duration{0, 0}}
	if zero.Imbalance() != 1 {
		t.Error("all-zero stats should report 1")
	}
}

func TestStaticSchedulingIsSensitiveToImbalance(t *testing.T) {
	// The property the paper's evaluation rests on: under static scheduling
	// the loop takes as long as its slowest worker, so clustering all the
	// expensive items into one worker's block serializes them; dynamic
	// scheduling spreads them. Items 0..7 are 60x more expensive than the
	// rest, and static blocking with 8 workers over 64 items puts all eight
	// into worker 0's block.
	// The host may have a single CPU, so wall-clock cannot expose the
	// effect; assert it on per-worker accumulated cost, which is what the
	// engines' modeled-time accounting uses.
	cost := func(i int) int64 {
		if i < 8 {
			return 60
		}
		return 1
	}
	maxWorkerCost := func(st *Stats, record []int64) int64 {
		var m int64
		for _, c := range record {
			if c > m {
				m = c
			}
		}
		_ = st
		return m
	}

	staticCost := make([]int64, 8)
	st := StaticItems(8, 64, func(w, i int) { atomic.AddInt64(&staticCost[w], cost(i)) })
	dynCost := make([]int64, 8)
	sd := DynamicItems(8, 64, func(w, i int) {
		atomic.AddInt64(&dynCost[w], cost(i))
		// yield so that all workers share the queue even on a single-CPU
		// host, mimicking truly concurrent workers
		runtime.Gosched()
	})
	if maxWorkerCost(st, staticCost) <= maxWorkerCost(sd, dynCost) {
		t.Errorf("static max worker cost %d not worse than dynamic %d on skewed load",
			maxWorkerCost(st, staticCost), maxWorkerCost(sd, dynCost))
	}
}

//go:noinline
func busyWork() {
	x := 0
	for i := 0; i < 50_000; i++ {
		x += i
	}
	sink = x
}

var sink int

// Property: all schedulers perform the same total amount of work.
func TestSchedulerTotalsQuick(t *testing.T) {
	f := func(n8 uint8, w8 uint8) bool {
		n := int(n8)
		w := int(w8)%8 + 1
		var a, b, c int64
		StaticBlocks(w, n, func(_, lo, hi int) { atomic.AddInt64(&a, int64(hi-lo)) })
		DynamicChunks(w, n, 3, func(_, lo, hi int) { atomic.AddInt64(&b, int64(hi-lo)) })
		RecursiveSplit(w, n, 4, func(lo, hi int) { atomic.AddInt64(&c, int64(hi-lo)) })
		return a == int64(n) && b == int64(n) && c == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
