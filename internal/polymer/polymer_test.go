package polymer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numa"
)

var top = numa.Topology{Sockets: 4, ThreadsPerSocket: 2}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 2000, S: 1.0, MaxDegree: 100, ZeroInFrac: 0.05, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewPartitionsPerSocket(t *testing.T) {
	g := testGraph(t)
	p, err := New(g, Config{Engine: engine.Config{Topology: top}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Partitions()) != top.Sockets {
		t.Fatalf("partitions = %d, want %d", len(p.Partitions()), top.Sockets)
	}
	if p.Name() != "polymer" {
		t.Fatal("wrong name")
	}
}

func TestBoundsValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := New(g, Config{Engine: engine.Config{Topology: top}, Bounds: []int64{0, 5}}); err == nil {
		t.Fatal("expected bounds length error")
	}
}

func TestPartitionCostsCoverTotal(t *testing.T) {
	g := testGraph(t)
	p, err := New(g, Config{Engine: engine.Config{Topology: top}})
	if err != nil {
		t.Fatal(err)
	}
	k := engine.EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { return true },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { return true },
	}
	p.EdgeMap(frontier.All(g), k)
	step := p.Metrics().LastStep()
	if step.Kind != engine.StepEdgeMapDense {
		t.Fatalf("kind = %v", step.Kind)
	}
	if len(step.PartitionCosts) != top.Sockets {
		t.Fatalf("partition costs = %d", len(step.PartitionCosts))
	}
	var sum int64
	for _, c := range step.PartitionCosts {
		sum += c
	}
	if sum != step.TotalCost {
		t.Fatalf("partition costs sum %d != total %d", sum, step.TotalCost)
	}
}

// With static scheduling, VEBO bounds must reduce the dense-edgemap
// makespan relative to Algorithm 1 partitioning of the original graph.
func TestVEBOImprovesStaticMakespan(t *testing.T) {
	g := testGraph(t)
	r, err := core.Reorder(g, top.Sockets, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		t.Fatal(err)
	}
	k := engine.EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { return true },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { return true },
	}
	run := func(g *graph.Graph, bounds []int64) int64 {
		p, err := New(g, Config{Engine: engine.Config{Topology: top}, Bounds: bounds})
		if err != nil {
			t.Fatal(err)
		}
		p.EdgeMap(frontier.All(g), k)
		return p.Metrics().LastStep().Makespan
	}
	orig := run(g, nil)
	vebo := run(rg, r.Boundaries())
	if vebo > orig {
		t.Errorf("VEBO makespan %d worse than original %d", vebo, orig)
	}
}

func TestVertexMapStaticOverFullRange(t *testing.T) {
	g := testGraph(t)
	p, err := New(g, Config{Engine: engine.Config{Topology: top}})
	if err != nil {
		t.Fatal(err)
	}
	out := p.VertexMap(frontier.All(g), func(v graph.VertexID) bool { return v < 10 })
	if out.Count() != 10 {
		t.Fatalf("kept %d", out.Count())
	}
	if p.Metrics().LastStep().Kind != engine.StepVertexMap {
		t.Fatal("missing vertexmap step")
	}
}
