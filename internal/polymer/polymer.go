// Package polymer models the Polymer framework (Zhang, Chen & Chen,
// PPoPP'15): the graph is cut into one partition per NUMA socket, data is
// homed with its partition, and parallel loops are statically scheduled —
// each socket's threads process fixed sub-ranges of the socket's partition.
// Static scheduling makes loop time the time of the slowest thread, which is
// why Polymer is highly sensitive to the load balance VEBO provides.
package polymer

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Config parameterizes the Polymer model.
type Config struct {
	Engine engine.Config
	// Bounds optionally supplies partition boundaries in vertex-ID space
	// (P+1 entries, P = sockets), e.g. VEBO's Result.Boundaries. When nil,
	// the paper's Algorithm 1 (partition.ByDestination) is used.
	Bounds []int64
}

// Polymer is an Engine with Polymer's partitioning and scheduling policy.
type Polymer struct {
	g       *graph.Graph
	cfg     Config
	parts   []partition.Partition
	units   []engine.Range // threads-per-socket sub-ranges per partition
	metrics engine.Metrics
}

// New builds a Polymer engine over g with one partition per socket.
func New(g *graph.Graph, cfg Config) (*Polymer, error) {
	cfg.Engine = cfg.Engine.WithDefaults()
	sockets := cfg.Engine.Topology.Sockets
	var parts []partition.Partition
	var err error
	if cfg.Bounds != nil {
		if len(cfg.Bounds) != sockets+1 {
			return nil, fmt.Errorf("polymer: bounds must have %d entries, got %d",
				sockets+1, len(cfg.Bounds))
		}
		parts, err = partition.ByVertexRanges(g, cfg.Bounds)
	} else {
		parts, err = partition.ByDestination(g, sockets)
	}
	if err != nil {
		return nil, err
	}
	ranges := make([]engine.Range, len(parts))
	for i, pt := range parts {
		ranges[i] = engine.Range{Lo: pt.Lo, Hi: pt.Hi}
	}
	return &Polymer{
		g:     g,
		cfg:   cfg,
		parts: parts,
		units: engine.SubdivideByEdges(g, ranges, cfg.Engine.Topology.ThreadsPerSocket),
	}, nil
}

// Patch builds a Polymer engine over g — a graph whose edge content differs
// from p's only inside socket partitions for which dirty reports true —
// reusing p's partition metadata and edge-balanced thread sub-ranges for
// every clean partition. The caller guarantees that p's partition structure
// still applies to g in one of two shapes. With bounds == nil, g has the
// same vertex count and the boundaries are unchanged: either the vertex
// placement did not change (perm == nil), or it changed by a segment-local
// permutation perm (old ID → new ID, identity outside the moved vertices)
// that kept the boundaries fixed. Headroom growth is the perm == nil case:
// admitted vertices fill reserved slots inside their socket's fixed
// capacity range, so only grown sockets are dirty and every other socket
// reuses its sub-ranges with no sliding at all. With non-nil bounds
// (sockets+1 entries), the vertex space may additionally have grown with
// moved boundaries: bounds are the new socket boundaries, perm is an
// injection of the old ID space into [0, bounds[last]) and g has
// bounds[last] vertices. Polymer's
// per-partition state — edge counts and thread sub-ranges — stores no
// neighbor IDs, so a partition whose range merely shifted is remapped by
// sliding its sub-ranges; a partition containing a moved or admitted vertex
// is upgraded to dirty (its per-vertex in-degree layout changed), whether
// or not the caller flagged it. Dirty partitions are re-scanned and
// re-subdivided.
func (p *Polymer) Patch(g *graph.Graph, perm []graph.VertexID, bounds []int64, dirty func(lo, hi graph.VertexID) bool) (*Polymer, engine.PatchStats, error) {
	var st engine.PatchStats
	nNew := p.g.NumVertices()
	if bounds != nil {
		if len(bounds) != len(p.parts)+1 {
			return nil, st, fmt.Errorf("polymer: patch bounds must have %d entries, got %d", len(p.parts)+1, len(bounds))
		}
		nNew = int(bounds[len(bounds)-1])
	}
	if g.NumVertices() != nNew {
		return nil, st, fmt.Errorf("polymer: patch vertex count %d != %d", g.NumVertices(), nNew)
	}
	// The facade's dirty predicate already flags ranges containing moved or
	// admitted vertices, so this scan is pure defense for other callers of
	// the public API. It only runs over ranges claimed clean, costs one
	// linear pass of integer compares per patch — noise next to
	// re-subdividing even a single socket partition — and keeps Patch
	// self-sufficiently correct when the caller's predicate under-reports:
	// a clean partition's old range must map uniformly by its shift delta.
	uniformShift := func(lo, hi graph.VertexID, delta int64) bool {
		if perm == nil {
			return delta == 0
		}
		for v := lo; v < hi; v++ {
			if int64(perm[v]) != int64(v)+delta {
				return false
			}
		}
		return true
	}
	tps := p.cfg.Engine.Topology.ThreadsPerSocket
	parts := make([]partition.Partition, len(p.parts))
	units := make([]engine.Range, 0, len(p.units))
	ui := 0
	for i, pt := range p.parts {
		lo := ui
		for ui < len(p.units) && p.units[ui].Lo >= pt.Lo && p.units[ui].Lo < pt.Hi {
			ui++
		}
		newLo, newHi := pt.Lo, pt.Hi
		if bounds != nil {
			newLo, newHi = graph.VertexID(bounds[i]), graph.VertexID(bounds[i+1])
		}
		delta := int64(newLo) - int64(pt.Lo)
		if !dirty(newLo, newHi) && newHi-newLo == pt.Hi-pt.Lo && uniformShift(pt.Lo, pt.Hi, delta) {
			if delta == 0 {
				parts[i] = pt
				units = append(units, p.units[lo:ui]...)
				st.PartsReused++
			} else {
				// Pure shift: slide the partition and its sub-ranges; the
				// per-vertex in-degree layout inside is unchanged.
				parts[i] = partition.Partition{Lo: newLo, Hi: newHi, Edges: pt.Edges}
				for _, u := range p.units[lo:ui] {
					units = append(units, engine.Range{
						Lo: graph.VertexID(int64(u.Lo) + delta),
						Hi: graph.VertexID(int64(u.Hi) + delta),
					})
				}
				st.PartsRemapped++
			}
			st.EdgesReused += pt.Edges
			continue
		}
		np := partition.Partition{Lo: newLo, Hi: newHi}
		for v := newLo; v < newHi; v++ {
			np.Edges += g.InDegree(v)
		}
		parts[i] = np
		units = append(units, engine.SubdivideByEdges(g, []engine.Range{{Lo: newLo, Hi: newHi}}, tps)...)
		st.PartsRebuilt++
		st.EdgesRebuilt += np.Edges
	}
	return &Polymer{g: g, cfg: p.cfg, parts: parts, units: units}, st, nil
}

// Name implements Engine.
func (p *Polymer) Name() string { return "polymer" }

// Graph implements Engine.
func (p *Polymer) Graph() *graph.Graph { return p.g }

// Metrics implements Engine.
func (p *Polymer) Metrics() *engine.Metrics { return &p.metrics }

// Partitions returns the per-socket partitions.
func (p *Polymer) Partitions() []partition.Partition { return p.parts }

// partitionCosts folds per-unit costs back onto their partitions by locating
// each unit's start vertex.
func (p *Polymer) partitionCosts(unitCosts []int64) []int64 {
	out := make([]int64, len(p.parts))
	for i, u := range p.units {
		out[partition.Of(p.parts, u.Lo)] += unitCosts[i]
	}
	return out
}

// EdgeMap implements Engine with direction optimization; both directions are
// statically scheduled.
func (p *Polymer) EdgeMap(f *frontier.Frontier, k engine.EdgeKernel) *frontier.Frontier {
	threads := p.cfg.Engine.Topology.Threads()
	if f.ShouldBeDense(p.g.NumEdges()) {
		out, costs := engine.DensePull(p.g, f, k, p.units, threads)
		partCosts := p.partitionCosts(costs)
		// Polymer statically binds one partition to each socket; the
		// socket's threads divide the partition's work near-evenly, so the
		// loop finishes when the most expensive partition does.
		tps := int64(p.cfg.Engine.Topology.ThreadsPerSocket)
		var makespan int64
		for _, c := range partCosts {
			if t := (c + tps - 1) / tps; t > makespan {
				makespan = t
			}
		}
		p.metrics.Add(engine.Step{
			Kind:           engine.StepEdgeMapDense,
			ActiveVertices: f.Count(),
			ActiveEdges:    f.OutEdges(),
			TotalCost:      engine.Sum(costs),
			Makespan:       makespan,
			UnitCosts:      costs,
			PartitionCosts: partCosts,
		})
		return out
	}
	out, costs := engine.SparsePush(p.g, f, k, p.cfg.Engine.SparseChunk, threads)
	p.metrics.Add(engine.Step{
		Kind:           engine.StepEdgeMapSparse,
		ActiveVertices: f.Count(),
		ActiveEdges:    f.OutEdges(),
		TotalCost:      engine.Sum(costs),
		Makespan:       engine.MakespanStatic(costs, threads),
		UnitCosts:      costs,
	})
	return out
}

// VertexMap implements Engine: the full vertex range is statically divided
// over all threads.
func (p *Polymer) VertexMap(f *frontier.Frontier, fn func(v graph.VertexID) bool) *frontier.Frontier {
	threads := p.cfg.Engine.Topology.Threads()
	out, costs := engine.VertexMapStatic(p.g, f, fn, threads, threads)
	p.metrics.Add(engine.Step{
		Kind:           engine.StepVertexMap,
		ActiveVertices: f.Count(),
		ActiveEdges:    f.OutEdges(),
		TotalCost:      engine.Sum(costs),
		Makespan:       engine.MakespanStatic(costs, threads),
		UnitCosts:      costs,
	})
	return out
}
