// Package hilbert implements the Hilbert space-filling curve mapping used to
// reorder COO edge lists (Section V-G of the paper, following the usage in
// Naiad and GraphGrind). The curve visits every cell of a 2^k × 2^k grid
// exactly once, with consecutive curve positions at Manhattan distance 1 —
// traversing edges (src, dst) in curve order therefore keeps both the source
// and the destination working sets compact.
package hilbert

// D2XY converts a distance d along the Hilbert curve of order k (a 2^k × 2^k
// grid) to grid coordinates (x, y). d must be in [0, 4^k).
func D2XY(k uint, d uint64) (x, y uint32) {
	var rx, ry uint64
	t := d
	var xx, yy uint64
	for s := uint64(1); s < 1<<k; s <<= 1 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		xx, yy = rot(s, xx, yy, rx, ry)
		xx += s * rx
		yy += s * ry
		t /= 4
	}
	return uint32(xx), uint32(yy)
}

// XY2D converts grid coordinates (x, y) on the 2^k × 2^k grid to the
// distance along the Hilbert curve of order k.
func XY2D(k uint, x, y uint32) uint64 {
	var rx, ry, d uint64
	xx, yy := uint64(x), uint64(y)
	for s := uint64(1) << (k - 1); s > 0; s >>= 1 {
		if xx&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if yy&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += s * s * ((3 * rx) ^ ry)
		xx, yy = rot(s, xx, yy, rx, ry)
	}
	return d
}

// rot rotates/flips a quadrant appropriately.
func rot(s, x, y, rx, ry uint64) (uint64, uint64) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// OrderFor returns the smallest curve order k such that the 2^k grid covers
// coordinates in [0, n).
func OrderFor(n int) uint {
	k := uint(0)
	for (1 << k) < n {
		k++
	}
	if k == 0 {
		k = 1 // curve of order 0 is a single cell; keep ≥ 2x2 for sanity
	}
	return k
}
