package hilbert

import (
	"testing"
	"testing/quick"
)

func TestRoundTripSmall(t *testing.T) {
	const k = 4
	n := uint64(1) << (2 * k)
	seen := make(map[[2]uint32]bool)
	for d := uint64(0); d < n; d++ {
		x, y := D2XY(k, d)
		if x >= 1<<k || y >= 1<<k {
			t.Fatalf("d=%d maps off-grid to (%d,%d)", d, x, y)
		}
		if seen[[2]uint32{x, y}] {
			t.Fatalf("cell (%d,%d) visited twice", x, y)
		}
		seen[[2]uint32{x, y}] = true
		if back := XY2D(k, x, y); back != d {
			t.Fatalf("XY2D(D2XY(%d)) = %d", d, back)
		}
	}
	if len(seen) != int(n) {
		t.Fatalf("visited %d cells, want %d", len(seen), n)
	}
}

func TestAdjacentCellsAreNeighbours(t *testing.T) {
	const k = 5
	n := uint64(1) << (2 * k)
	px, py := D2XY(k, 0)
	for d := uint64(1); d < n; d++ {
		x, y := D2XY(k, d)
		dist := absDiff(x, px) + absDiff(y, py)
		if dist != 1 {
			t.Fatalf("curve step %d→%d jumps Manhattan distance %d", d-1, d, dist)
		}
		px, py = x, y
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestOrderFor(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := OrderFor(c.n); got != c.want {
			t.Errorf("OrderFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// Property: XY2D and D2XY are inverse bijections on random coordinates for a
// larger grid.
func TestRoundTripQuick(t *testing.T) {
	const k = 12
	f := func(x, y uint32) bool {
		x %= 1 << k
		y %= 1 << k
		gx, gy := D2XY(k, XY2D(k, x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
