package core

// partitionHeap is a binary min-heap over the P partitions, keyed by a
// 64-bit load value with the partition index as deterministic tie-breaker.
// VEBO only ever updates the key of the current minimum (the partition that
// just received a vertex), so the heap needs push-down from the root only;
// arg-min plus update is O(log P), giving the paper's O(n log P) bound.
type partitionHeap struct {
	keys []int64 // load per partition, indexed by partition id
	heap []int   // heap of partition ids
	pos  []int   // pos[p] = index of partition p in heap
}

func newPartitionHeap(p int) *partitionHeap {
	h := &partitionHeap{
		keys: make([]int64, p),
		heap: make([]int, p),
		pos:  make([]int, p),
	}
	for i := 0; i < p; i++ {
		h.heap[i] = i
		h.pos[i] = i
	}
	return h
}

// less orders by (key, partition id).
func (h *partitionHeap) less(a, b int) bool {
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return a < b
}

// min returns the partition with the smallest key.
func (h *partitionHeap) min() int { return h.heap[0] }

// key returns the current key of partition p.
func (h *partitionHeap) key(p int) int64 { return h.keys[p] }

// addToMin increments the minimum partition's key by delta and restores heap
// order. It returns the partition that was the minimum.
func (h *partitionHeap) addToMin(delta int64) int {
	p := h.heap[0]
	h.keys[p] += delta
	h.siftDown(0)
	return p
}

func (h *partitionHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.heap[l], h.heap[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.heap[r], h.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *partitionHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

// maxKey scans for the maximum key (O(P); used only for reporting).
func (h *partitionHeap) maxKey() int64 {
	m := h.keys[0]
	for _, k := range h.keys[1:] {
		if k > m {
			m = k
		}
	}
	return m
}
