package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// fig3Graph reproduces the paper's Figure 3 example: 6 vertices with
// in-degrees v0:1 v1:2 v2:2 v3:2 v4:4 v5:3 (14 edges).
func fig3Graph(t *testing.T) *graph.Graph {
	t.Helper()
	edges := []graph.Edge{
		{Src: 1, Dst: 0},
		{Src: 0, Dst: 1}, {Src: 2, Dst: 1},
		{Src: 1, Dst: 2}, {Src: 3, Dst: 2},
		{Src: 4, Dst: 3}, {Src: 5, Dst: 3},
		{Src: 0, Dst: 4}, {Src: 1, Dst: 4}, {Src: 3, Dst: 4}, {Src: 5, Dst: 4},
		{Src: 0, Dst: 5}, {Src: 2, Dst: 5}, {Src: 4, Dst: 5},
	}
	g, err := graph.FromEdges(6, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFig3Example(t *testing.T) {
	g := fig3Graph(t)
	r, err := Reorder(g, 2, Options{})
	if err != nil {
		t.Fatalf("Reorder: %v", err)
	}
	// Paper: each partition gets 7 incoming edges and 3 destination vertices.
	if got := r.EdgeCounts; !reflect.DeepEqual(got, []int64{7, 7}) {
		t.Errorf("edge counts = %v, want [7 7]", got)
	}
	if got := r.VertexCounts; !reflect.DeepEqual(got, []int64{3, 3}) {
		t.Errorf("vertex counts = %v, want [3 3]", got)
	}
	if r.EdgeImbalance() != 0 || r.VertexImbalance() != 0 {
		t.Errorf("imbalance Δ=%d δ=%d, want 0,0", r.EdgeImbalance(), r.VertexImbalance())
	}
	// The highest-degree vertex (v4, degree 4) must be placed first and so
	// receives new ID 0.
	if r.Perm[4] != 0 {
		t.Errorf("Perm[4] = %d, want 0", r.Perm[4])
	}
}

func TestReorderProducesValidPermutation(t *testing.T) {
	g := fig3Graph(t)
	r, err := Reorder(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.NumVertices())
	for _, p := range r.Perm {
		if seen[p] {
			t.Fatalf("duplicate new ID %d", p)
		}
		seen[p] = true
	}
	h, err := Apply(g, r)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !graph.IsIsomorphicUnder(g, h, r.Perm) {
		t.Error("reordered graph not isomorphic to input")
	}
}

func TestPartitionsContiguousInNewIDSpace(t *testing.T) {
	g := fig3Graph(t)
	r, err := Reorder(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := r.Boundaries()
	for v := 0; v < g.NumVertices(); v++ {
		p := r.PartitionOf[v]
		newID := int64(r.Perm[v])
		if newID < b[p] || newID >= b[p+1] {
			t.Errorf("vertex %d: new ID %d outside partition %d range [%d,%d)",
				v, newID, p, b[p], b[p+1])
		}
	}
	if b[len(b)-1] != int64(g.NumVertices()) {
		t.Errorf("last boundary %d != n %d", b[len(b)-1], g.NumVertices())
	}
}

func TestCountsMatchAssignment(t *testing.T) {
	g := fig3Graph(t)
	r, err := Reorder(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ec := make([]int64, r.P)
	vc := make([]int64, r.P)
	for v := 0; v < g.NumVertices(); v++ {
		p := r.PartitionOf[v]
		vc[p]++
		ec[p] += g.InDegree(graph.VertexID(v))
	}
	if !reflect.DeepEqual(ec, r.EdgeCounts) {
		t.Errorf("edge counts %v != recomputed %v", r.EdgeCounts, ec)
	}
	if !reflect.DeepEqual(vc, r.VertexCounts) {
		t.Errorf("vertex counts %v != recomputed %v", r.VertexCounts, vc)
	}
}

func TestReorderRejectsBadP(t *testing.T) {
	g := fig3Graph(t)
	if _, err := Reorder(g, 0, Options{}); err == nil {
		t.Error("expected error for P=0")
	}
	if _, err := Reorder(g, -3, Options{}); err == nil {
		t.Error("expected error for negative P")
	}
}

func TestMorePartitionsThanVertices(t *testing.T) {
	g := fig3Graph(t)
	r, err := Reorder(g, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var vsum, esum int64
	for p := 0; p < r.P; p++ {
		vsum += r.VertexCounts[p]
		esum += r.EdgeCounts[p]
	}
	if vsum != int64(g.NumVertices()) || esum != g.NumEdges() {
		t.Errorf("totals vsum=%d esum=%d", vsum, esum)
	}
}

func TestEmptyDegreeSequence(t *testing.T) {
	r, err := ReorderDegrees(nil, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Perm) != 0 || r.EdgeImbalance() != 0 {
		t.Errorf("empty sequence result = %+v", r)
	}
}

func TestSortByDegreeDesc(t *testing.T) {
	degrees := []int64{1, 2, 2, 2, 4, 3}
	order := sortByDegreeDesc(degrees)
	want := []int{4, 5, 1, 2, 3, 0} // desc degree, ascending ID within ties
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestSortByDegreeDescAllZero(t *testing.T) {
	order := sortByDegreeDesc([]int64{0, 0, 0})
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Errorf("order = %v", order)
	}
}

// exactZipfDegrees builds a degree sequence following the paper's Zipf model
// exactly in expectation: the number of vertices with degree k-1 is
// round(n·pk) with pk = k^-s/H_{N,s}; any shortfall becomes degree-0
// vertices.
func exactZipfDegrees(n, bigN int, s float64) []int64 {
	h := 0.0
	for k := 1; k <= bigN; k++ {
		h += math.Pow(float64(k), -s)
	}
	degrees := make([]int64, 0, n)
	for k := bigN; k >= 2; k-- { // high degrees first; k=1 (degree 0) fills rest
		cnt := int(math.Round(float64(n) * math.Pow(float64(k), -s) / h))
		for i := 0; i < cnt && len(degrees) < n; i++ {
			degrees = append(degrees, int64(k-1))
		}
	}
	for len(degrees) < n {
		degrees = append(degrees, 0)
	}
	return degrees
}

// TestTheorem1And2 verifies the paper's headline guarantee: on Zipf degree
// sequences satisfying |E| ≥ N(P−1), P < N and n ≥ N·H_{N,s}, VEBO achieves
// Δ(n) ≤ 1 and δ(n) ≤ 1.
func TestTheorem1And2(t *testing.T) {
	for _, tc := range []struct {
		n, bigN int
		s       float64
		p       int
	}{
		{2000, 50, 1.0, 2},
		{2000, 50, 1.0, 8},
		{5000, 100, 1.0, 16},
		{5000, 80, 0.8, 8},
		{10000, 120, 1.2, 24},
	} {
		degrees := exactZipfDegrees(tc.n, tc.bigN, tc.s)
		var edges int64
		for _, d := range degrees {
			edges += d
		}
		if edges < int64(tc.bigN*(tc.p-1)) {
			t.Fatalf("test setup violates |E| >= N(P-1): %d < %d", edges, tc.bigN*(tc.p-1))
		}
		r, err := ReorderDegrees(degrees, tc.p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d := r.EdgeImbalance(); d > 1 {
			t.Errorf("n=%d N=%d s=%v P=%d: Δ(n)=%d > 1", tc.n, tc.bigN, tc.s, tc.p, d)
		}
		if d := r.VertexImbalance(); d > 1 {
			t.Errorf("n=%d N=%d s=%v P=%d: δ(n)=%d > 1", tc.n, tc.bigN, tc.s, tc.p, d)
		}
	}
}

// TestLemma1Invariant replays phase 1 step by step and checks the case
// analysis of Lemma 1: placing a vertex of degree d either leaves the
// maximum load ω unchanged with Δ non-increasing (d ≤ Δ), or raises ω with
// the new Δ bounded by d (d > Δ).
func TestLemma1Invariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	degrees := make([]int64, 500)
	for i := range degrees {
		degrees[i] = int64(rng.Intn(40) + 1)
	}
	order := sortByDegreeDesc(degrees)
	const p = 7
	loads := make([]int64, p)
	spreadOf := func() (omega, delta int64) {
		lo, hi := loads[0], loads[0]
		for _, x := range loads[1:] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi, hi - lo
	}
	for _, v := range order {
		d := degrees[v]
		omegaBefore, deltaBefore := spreadOf()
		// place on min-loaded partition
		best := 0
		for i := 1; i < p; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		loads[best] += d
		omegaAfter, deltaAfter := spreadOf()
		if d <= deltaBefore {
			if deltaAfter > deltaBefore {
				t.Fatalf("Lemma 1 case 2 violated: d=%d Δ %d→%d", d, deltaBefore, deltaAfter)
			}
			if omegaAfter != omegaBefore {
				t.Fatalf("Lemma 1 case 2 violated: ω changed %d→%d with d=%d ≤ Δ=%d",
					omegaBefore, omegaAfter, d, deltaBefore)
			}
		} else {
			if deltaAfter > d {
				t.Fatalf("Lemma 1 case 3 violated: Δ'=%d > d=%d", deltaAfter, d)
			}
		}
	}
}

func TestHeapAndLinearArgMinAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		p := rng.Intn(12) + 1
		degrees := make([]int64, n)
		for i := range degrees {
			degrees[i] = int64(rng.Intn(20))
		}
		a, err := ReorderDegrees(degrees, p, Options{})
		if err != nil {
			return false
		}
		b, err := ReorderDegrees(degrees, p, Options{LinearArgMin: true})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with an abundance of degree-1 and degree-0 vertices, VEBO
// achieves Δ ≤ 1 and δ ≤ 1 for any base sequence (the mechanism behind
// Theorems 1 and 2).
func TestBalanceWithAbundantFillerQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(7) + 2
		base := rng.Intn(60) + 1
		maxd := rng.Intn(30) + 1
		degrees := make([]int64, 0, base*4)
		for i := 0; i < base; i++ {
			degrees = append(degrees, int64(rng.Intn(maxd)+1))
		}
		// enough degree-1 filler to even out edges: (P-1) * maxd each round
		for i := 0; i < p*maxd*2; i++ {
			degrees = append(degrees, 1)
		}
		// enough zero-degree filler to even out vertices
		m := len(degrees)
		for i := 0; i < (p-1)*m; i++ {
			degrees = append(degrees, 0)
		}
		r, err := ReorderDegrees(degrees, p, Options{})
		if err != nil {
			return false
		}
		return r.EdgeImbalance() <= 1 && r.VertexImbalance() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Perm is always a permutation and totals always add up, for
// arbitrary degree sequences.
func TestStructuralInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400)
		p := rng.Intn(15) + 1
		degrees := make([]int64, n)
		var total int64
		for i := range degrees {
			degrees[i] = int64(rng.Intn(50))
			total += degrees[i]
		}
		r, err := ReorderDegrees(degrees, p, Options{})
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, q := range r.Perm {
			if int(q) >= n || seen[q] {
				return false
			}
			seen[q] = true
		}
		var vs, es int64
		for i := 0; i < p; i++ {
			vs += r.VertexCounts[i]
			es += r.EdgeCounts[i]
		}
		return vs == int64(n) && es == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The locality-block refinement must not change per-partition vertex or edge
// counts, only which same-degree vertices land where.
func TestLocalityBlocksPreserveBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 10
		p := rng.Intn(9) + 1
		degrees := make([]int64, n)
		for i := range degrees {
			degrees[i] = int64(rng.Intn(12))
		}
		a, err := ReorderDegrees(degrees, p, Options{})
		if err != nil {
			return false
		}
		b, err := ReorderDegrees(degrees, p, Options{DisableLocalityBlocks: true})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a.VertexCounts, b.VertexCounts) &&
			reflect.DeepEqual(a.EdgeCounts, b.EdgeCounts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// With a uniform degree sequence the locality refinement must assign
// original-ID blocks: PartitionOf is non-decreasing over vertex IDs.
func TestLocalityBlocksKeepConsecutiveIDsTogether(t *testing.T) {
	degrees := make([]int64, 120)
	for i := range degrees {
		degrees[i] = 3
	}
	r, err := ReorderDegrees(degrees, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < len(degrees); v++ {
		if r.PartitionOf[v] < r.PartitionOf[v-1] {
			t.Fatalf("PartitionOf not block-contiguous at %d: %d < %d",
				v, r.PartitionOf[v], r.PartitionOf[v-1])
		}
	}
	// and the permutation must be the identity here: blocks in ID order.
	for v := range degrees {
		if r.Perm[v] != graph.VertexID(v) {
			t.Fatalf("uniform-degree block ordering should be identity; Perm[%d]=%d", v, r.Perm[v])
		}
	}
}

func TestZeroDegreeVerticesCorrectVertexImbalance(t *testing.T) {
	// One giant vertex plus many degree-1 vertices: phase 1 puts 1 vertex on
	// one partition and many on the other; zero-degree vertices must repair
	// δ to ≤ 1.
	degrees := []int64{100}
	for i := 0; i < 100; i++ {
		degrees = append(degrees, 1)
	}
	for i := 0; i < 200; i++ {
		degrees = append(degrees, 0)
	}
	r, err := ReorderDegrees(degrees, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeImbalance() > 1 {
		t.Errorf("Δ = %d, want ≤ 1", r.EdgeImbalance())
	}
	if r.VertexImbalance() > 1 {
		t.Errorf("δ = %d, want ≤ 1", r.VertexImbalance())
	}
}

func TestPartitionHeapOrdering(t *testing.T) {
	h := newPartitionHeap(5)
	// all zero: min must be lowest index
	if h.min() != 0 {
		t.Fatalf("min = %d, want 0", h.min())
	}
	p := h.addToMin(10) // partition 0 now has 10
	if p != 0 {
		t.Fatalf("addToMin returned %d, want 0", p)
	}
	if h.min() != 1 {
		t.Fatalf("min = %d, want 1", h.min())
	}
	for i := 0; i < 4; i++ {
		h.addToMin(10) // fill 1..4 to 10
	}
	// now all 10; tie must break to 0
	if h.min() != 0 {
		t.Fatalf("after filling, min = %d, want 0", h.min())
	}
	if h.maxKey() != 10 {
		t.Fatalf("maxKey = %d", h.maxKey())
	}
}

// VEBO is idempotent on balance: reordering an already-VEBO-ordered graph
// preserves Δ ≤ 1 and δ ≤ 1.
func TestVEBOIdempotentBalance(t *testing.T) {
	degrees := exactZipfDegrees(4000, 60, 1.0)
	r1, err := ReorderDegrees(degrees, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// permute the degree sequence as the reordered graph would see it
	permuted := make([]int64, len(degrees))
	for v, d := range degrees {
		permuted[r1.Perm[v]] = d
	}
	r2, err := ReorderDegrees(permuted, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.EdgeImbalance() > 1 || r2.VertexImbalance() > 1 {
		t.Fatalf("second reorder imbalance Δ=%d δ=%d", r2.EdgeImbalance(), r2.VertexImbalance())
	}
}

// Determinism: identical inputs produce identical orderings.
func TestReorderDeterministic(t *testing.T) {
	g := fig3Graph(t)
	a, err := Reorder(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reorder(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Reorder not deterministic")
	}
}

// Degenerate degree sequences must not break the pipeline.
func TestReorderDegenerateSequences(t *testing.T) {
	cases := map[string][]int64{
		"all-zero":   make([]int64, 50),
		"one-vertex": {7},
		"all-equal":  {3, 3, 3, 3, 3, 3, 3, 3},
		"one-hub":    {1000, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, degrees := range cases {
		r, err := ReorderDegrees(degrees, 4, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen := make([]bool, len(degrees))
		for _, p := range r.Perm {
			if seen[p] {
				t.Fatalf("%s: duplicate new ID", name)
			}
			seen[p] = true
		}
	}
}
