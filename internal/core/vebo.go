// Package core implements VEBO, the paper's primary contribution: a vertex-
// and edge-balanced ordering heuristic that relabels the vertices of a graph
// so that cutting the new vertex range into P equal chunks (the paper's
// Algorithm 1, implemented in internal/partition) yields partitions whose
// in-edge counts differ by at most ~1 and whose vertex counts differ by at
// most ~1 on power-law graphs.
//
// The algorithm (the paper's Algorithm 2) runs in three phases:
//
//  1. Vertices with non-zero in-degree are placed in order of decreasing
//     in-degree, each onto the partition currently holding the fewest edges
//     (Graham's multiprocessor-scheduling heuristic). This bounds the final
//     edge imbalance by 1 when degree-1 vertices are abundant (Theorem 1).
//  2. Zero-in-degree vertices are placed onto the partition currently
//     holding the fewest vertices, correcting any vertex imbalance that
//     phase 1 introduced (Theorem 2).
//  3. Vertices are renumbered so each partition owns a contiguous ID range.
//
// The arg-min is served by an indexed min-heap, giving O(n log P) total
// time; the sort by degree is a counting sort, O(n + maxDegree).
//
// The package also implements the locality-preserving refinement of Section
// III-D: within each in-degree class, blocks of consecutively numbered
// original vertices are assigned to the same partition, preserving whatever
// spatial locality the input ordering carried without changing per-partition
// vertex or edge counts.
package core

import (
	"fmt"

	"repro/internal/graph"
)

// Options configures Reorder. The zero value selects the paper's recommended
// configuration (heap arg-min plus degree-block locality refinement).
type Options struct {
	// DisableLocalityBlocks turns off the Section III-D refinement and
	// renumbers in raw phase-1/2 placement order.
	DisableLocalityBlocks bool
	// LinearArgMin replaces the O(log P) heap with an O(P) linear scan.
	// Functionally identical; exists for the complexity ablation.
	LinearArgMin bool
}

// Result describes a VEBO ordering of a graph with n vertices into P
// partitions. Published results are shared across epochs by the dynamic
// maintenance layer (COW: repairs copy before permuting).
//
//vebo:frozen
type Result struct {
	P int
	// Perm maps old vertex ID to new vertex ID; it is a permutation of
	// [0, n).
	Perm []graph.VertexID
	// PartitionOf maps old vertex ID to its partition.
	PartitionOf []uint32
	// VertexCounts[p] is the number of vertices assigned to partition p
	// (the paper's u[p]).
	VertexCounts []int64
	// EdgeCounts[p] is the number of in-edges assigned to partition p (the
	// paper's w[p]).
	EdgeCounts []int64
	// SlotCounts[p], when non-nil, is the slot capacity of partition p in
	// the new ID space — VertexCounts[p] occupied positions followed by
	// reserved headroom for future admissions (see internal/dynamic). Nil
	// means the ordering is compact: every new ID in [0, n) is occupied and
	// Perm is a permutation. When set, Perm is an injection into
	// [0, Slots()) and unmapped new IDs are empty (zero-degree) rows.
	SlotCounts []int64
}

// EdgeImbalance returns Δ(n) = max_p EdgeCounts − min_p EdgeCounts.
func (r *Result) EdgeImbalance() int64 { return Spread(r.EdgeCounts) }

// VertexImbalance returns δ(n) = max_p VertexCounts − min_p VertexCounts.
func (r *Result) VertexImbalance() int64 { return Spread(r.VertexCounts) }

// Spread returns max(xs) − min(xs), the imbalance measure behind both Δ(n)
// and δ(n) (0 for an empty slice).
func Spread(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

// CoarsenBounds merges fine partition boundaries (len nf+1) into p coarse
// ones by grouping consecutive fine partitions; merging balanced fine
// partitions groupwise keeps both vertex and edge balance. p is clamped to
// the fine partition count.
func CoarsenBounds(fine []int64, p int) []int64 {
	nf := len(fine) - 1
	if p > nf {
		p = nf
	}
	out := make([]int64, p+1)
	for i := 0; i <= p; i++ {
		out[i] = fine[i*nf/p]
	}
	out[p] = fine[nf]
	return out
}

// Boundaries returns the partition end points in the new ID space:
// partition p owns new IDs [bounds[p], bounds[p+1]). len = P+1. For slotted
// orderings the boundaries span the slot space (occupied prefix plus
// reserved headroom), so engines built over them cover every admissible ID.
func (r *Result) Boundaries() []int64 {
	counts := r.VertexCounts
	if r.SlotCounts != nil {
		counts = r.SlotCounts
	}
	b := make([]int64, r.P+1)
	for p := 0; p < r.P; p++ {
		b[p+1] = b[p] + counts[p]
	}
	return b
}

// Slots returns the size of the new ID space: the total slot capacity for
// slotted orderings, or the vertex count for compact ones.
func (r *Result) Slots() int64 {
	if r.SlotCounts == nil {
		var n int64
		for _, c := range r.VertexCounts {
			n += c
		}
		return n
	}
	var n int64
	for _, c := range r.SlotCounts {
		n += c
	}
	return n
}

// Reorder computes a VEBO ordering of g into p partitions, balancing the
// number of in-edges and the number of destination vertices per partition.
func Reorder(g *graph.Graph, p int, opts Options) (*Result, error) {
	if p <= 0 {
		return nil, fmt.Errorf("core: partition count must be positive, got %d", p)
	}
	return ReorderDegrees(g.InDegrees(), p, opts)
}

// ReorderDegrees computes a VEBO ordering directly from an in-degree array.
// It is the core of Reorder and is exposed so the theory tests can exercise
// synthetic degree sequences without materializing graphs.
func ReorderDegrees(degrees []int64, p int, opts Options) (*Result, error) {
	if p <= 0 {
		return nil, fmt.Errorf("core: partition count must be positive, got %d", p)
	}
	n := len(degrees)
	order := sortByDegreeDesc(degrees) // counting sort; stable by vertex ID

	r := &Result{
		P:            p,
		Perm:         make([]graph.VertexID, n),
		PartitionOf:  make([]uint32, n),
		VertexCounts: make([]int64, p),
		EdgeCounts:   make([]int64, p),
	}

	// m = number of vertices with non-zero degree; order[:m] have deg > 0.
	m := 0
	for _, v := range order {
		if degrees[v] == 0 {
			break
		}
		m++
	}

	assign := make([]uint32, n)

	// Phase 1: place non-zero-degree vertices in decreasing degree order on
	// the partition with the fewest edges.
	edgeArgMin := newArgMin(p, opts.LinearArgMin)
	vertexLoad := make([]int64, p)
	for t := 0; t < m; t++ {
		v := order[t]
		pt := edgeArgMin.takeMin(degrees[v])
		assign[v] = uint32(pt)
		vertexLoad[pt]++
	}

	// Phase 2: place zero-degree vertices on the partition with the fewest
	// vertices.
	vertexArgMin := newArgMinWith(vertexLoad, opts.LinearArgMin)
	for t := m; t < n; t++ {
		v := order[t]
		pt := vertexArgMin.takeMin(1)
		assign[v] = uint32(pt)
	}
	for pt := 0; pt < p; pt++ {
		r.EdgeCounts[pt] = edgeArgMin.load(pt)
		r.VertexCounts[pt] = vertexArgMin.load(pt)
	}

	if !opts.DisableLocalityBlocks {
		// Section III-D refinement: per degree class, keep only the
		// per-partition quota from the greedy placement and hand out
		// vertices of that class in original-ID blocks. Per-partition
		// vertex and edge totals are unchanged because all vertices in a
		// class contribute the same degree.
		reassignInBlocks(degrees, order, assign, p)
	}

	// Phase 3: renumber so that each partition owns a contiguous range of
	// new IDs and vertices within a partition keep degree-descending order.
	next := make([]int64, p)
	var acc int64
	for pt := 0; pt < p; pt++ {
		next[pt] = acc
		acc += r.VertexCounts[pt]
	}
	for _, v := range order {
		pt := assign[v]
		r.Perm[v] = graph.VertexID(next[pt])
		next[pt]++
	}
	copy(r.PartitionOf, assign)
	return r, nil
}

// Apply relabels g with the ordering's permutation, returning the reordered
// (isomorphic) graph. For slotted orderings the result spans the slot space:
// reserved headroom positions become empty rows.
func Apply(g *graph.Graph, r *Result) (*graph.Graph, error) {
	if slots := r.Slots(); int(slots) > g.NumVertices() {
		return g.RelabelInto(int(slots), r.Perm)
	}
	return g.Relabel(r.Perm)
}

// sortByDegreeDesc returns the vertex IDs sorted by decreasing degree using
// a stable counting sort (ties resolve to ascending vertex ID), in O(n +
// maxDegree) time.
func sortByDegreeDesc(degrees []int64) []int {
	n := len(degrees)
	var maxd int64
	for _, d := range degrees {
		if d > maxd {
			maxd = d
		}
	}
	counts := make([]int64, maxd+2)
	for _, d := range degrees {
		counts[maxd-d+1]++ // bucket 0 holds degree maxd
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	order := make([]int, n)
	for v := 0; v < n; v++ {
		b := maxd - degrees[v]
		order[counts[b]] = v
		counts[b]++
	}
	return order
}

// reassignInBlocks implements the degree-block locality refinement. For each
// degree class (scanned from high to low degree), it counts how many class
// members the greedy phases sent to each partition, then redistributes the
// class members — which arrive in ascending original-ID order, thanks to the
// stable sort — as contiguous blocks satisfying those quotas.
func reassignInBlocks(degrees []int64, order []int, assign []uint32, p int) {
	n := len(order)
	quota := make([]int64, p)
	for start := 0; start < n; {
		d := degrees[order[start]]
		end := start
		for end < n && degrees[order[end]] == d {
			end++
		}
		for i := range quota {
			quota[i] = 0
		}
		for t := start; t < end; t++ {
			quota[assign[order[t]]]++
		}
		t := start
		for pt := 0; pt < p; pt++ {
			for k := int64(0); k < quota[pt]; k++ {
				assign[order[t]] = uint32(pt)
				t++
			}
		}
		start = end
	}
}

// argMin abstracts the phase-1/2 arg-min structure so the heap and linear
// implementations can be ablated against each other.
type argMin interface {
	// takeMin returns the index with the least load (ties to the lowest
	// index) and adds delta to its load.
	takeMin(delta int64) int
	load(i int) int64
}

func newArgMin(p int, linear bool) argMin {
	return newArgMinWith(make([]int64, p), linear)
}

func newArgMinWith(initial []int64, linear bool) argMin {
	if linear {
		la := &linearArgMin{loads: make([]int64, len(initial))}
		copy(la.loads, initial)
		return la
	}
	h := newPartitionHeap(len(initial))
	copy(h.keys, initial)
	// Initial loads may be arbitrary; heapify.
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return (*heapArgMin)(h)
}

type heapArgMin partitionHeap

func (h *heapArgMin) takeMin(delta int64) int {
	return (*partitionHeap)(h).addToMin(delta)
}

func (h *heapArgMin) load(i int) int64 { return (*partitionHeap)(h).key(i) }

type linearArgMin struct{ loads []int64 }

func (l *linearArgMin) takeMin(delta int64) int {
	best := 0
	for i := 1; i < len(l.loads); i++ {
		if l.loads[i] < l.loads[best] {
			best = i
		}
	}
	l.loads[best] += delta
	return best
}

func (l *linearArgMin) load(i int) int64 { return l.loads[i] }
