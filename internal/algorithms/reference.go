package algorithms

import (
	"math"

	"repro/internal/graph"
)

// This file holds straightforward sequential reference implementations used
// by tests and the benchmark harness to validate the engine-based versions.

// RefPageRank is a sequential power-method PageRank.
func RefPageRank(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for d := 0; d < n; d++ {
			var sum float64
			for _, s := range g.InNeighbors(graph.VertexID(d)) {
				if od := g.OutDegree(s); od > 0 {
					sum += rank[s] / float64(od)
				}
			}
			next[d] = (1-damping)/float64(n) + damping*sum
		}
		rank, next = next, rank
	}
	return rank
}

// RefBFSDepths is a sequential BFS returning depths (-1 unreached).
func RefBFSDepths(g *graph.Graph, root graph.VertexID) []int32 {
	n := g.NumVertices()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(v) {
			if depth[w] < 0 {
				depth[w] = depth[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return depth
}

// RefCC is a sequential label-propagation fixpoint (same semantics as CC).
func RefCC(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	label := make([]uint32, n)
	for i := range label {
		label[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			for _, d := range g.OutNeighbors(graph.VertexID(v)) {
				if label[v] < label[d] {
					label[d] = label[v]
					changed = true
				}
			}
		}
	}
	return label
}

// RefSPMV is a sequential sparse matrix-vector product.
func RefSPMV(g *graph.Graph, x []float64) []float64 {
	n := g.NumVertices()
	y := make([]float64, n)
	for d := 0; d < n; d++ {
		ws := g.InWeights(graph.VertexID(d))
		for i, s := range g.InNeighbors(graph.VertexID(d)) {
			y[d] += float64(ws[i]) * x[s]
		}
	}
	return y
}

// RefSSSP is sequential Bellman-Ford returning distances (Unreached for
// unreachable vertices).
func RefSSSP(g *graph.Graph, root graph.VertexID) []int64 {
	n := g.NumVertices()
	const inf = math.MaxInt64 / 4
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	for round := 0; round < n; round++ {
		changed := false
		for v := 0; v < n; v++ {
			if dist[v] >= inf {
				continue
			}
			ws := g.OutWeights(graph.VertexID(v))
			for i, d := range g.OutNeighbors(graph.VertexID(v)) {
				if nd := dist[v] + int64(ws[i]); nd < dist[d] {
					dist[d] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	out := make([]int64, n)
	for i, d := range dist {
		if d >= inf {
			out[i] = Unreached
		} else {
			out[i] = d
		}
	}
	return out
}

// RefBC is sequential Brandes single-source betweenness centrality over
// directed edges (forward BFS on out-edges).
func RefBC(g *graph.Graph, root graph.VertexID) []float64 {
	n := g.NumVertices()
	sigma := make([]float64, n)
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	sigma[root] = 1
	depth[root] = 0
	var order []graph.VertexID
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.OutNeighbors(v) {
			if depth[w] < 0 {
				depth[w] = depth[v] + 1
				queue = append(queue, w)
			}
			if depth[w] == depth[v]+1 {
				sigma[w] += sigma[v]
			}
		}
	}
	delta := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, w := range g.OutNeighbors(v) {
			if depth[w] == depth[v]+1 {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
		}
	}
	delta[root] = 0
	return delta
}
