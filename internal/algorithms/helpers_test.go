package algorithms

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// reorderForTest applies VEBO with p partitions and returns the permutation
// and the reordered graph.
func reorderForTest(t *testing.T, g *graph.Graph, p int) ([]graph.VertexID, *graph.Graph) {
	t.Helper()
	r, err := core.Reorder(g, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := core.Apply(g, r)
	if err != nil {
		t.Fatal(err)
	}
	return r.Perm, rg
}
