package algorithms

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphgrind"
	"repro/internal/layout"
	"repro/internal/ligra"
	"repro/internal/numa"
	"repro/internal/polymer"
)

// smallTopology keeps engine tests cheap.
var smallTopology = numa.Topology{Sockets: 2, ThreadsPerSocket: 2}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{
		N: 1200, S: 1.0, MaxDegree: 80, ZeroInFrac: 0.1, Weighted: true, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// engines builds the three framework models over g.
func engines(t *testing.T, g *graph.Graph) []engine.Engine {
	t.Helper()
	cfg := engine.Config{Topology: smallTopology}
	l := ligra.New(g, ligra.Config{Engine: cfg})
	p, err := polymer.New(g, polymer.Config{Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := graphgrind.New(g, graphgrind.Config{
		Engine: cfg, Partitions: 16, Order: layout.CSROrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []engine.Engine{l, p, gg}
}

func almostEqual(a, b, tol float64) bool {
	if math.Abs(a-b) <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := RefPageRank(g, 5)
	for _, e := range engines(t, g) {
		got := PageRank(e, 5)
		for v := range want {
			if !almostEqual(got[v], want[v], 1e-9) {
				t.Fatalf("%s: PR[%d] = %g, want %g", e.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestPageRankSumsToOneIsh(t *testing.T) {
	// On a graph without dangling vertices, total rank is conserved at 1.
	g, err := gen.RoadNetwork(20, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines(t, g) {
		got := PageRank(e, 10)
		var sum float64
		for _, r := range got {
			sum += r
		}
		if !almostEqual(sum, 1.0, 1e-6) {
			t.Errorf("%s: rank sum = %g, want 1", e.Name(), sum)
		}
	}
}

func TestBFSMatchesReferenceDepths(t *testing.T) {
	g := testGraph(t)
	root := graph.VertexID(3)
	want := RefBFSDepths(g, root)
	for _, e := range engines(t, g) {
		parent := BFS(e, root)
		got := Depths(parent, root)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: depth[%d] = %d, want %d", e.Name(), v, got[v], want[v])
			}
		}
		// parent edges must exist in the graph
		for v, p := range parent {
			if p >= 0 && graph.VertexID(v) != root {
				if !g.HasEdge(graph.VertexID(p), graph.VertexID(v)) {
					t.Fatalf("%s: parent edge (%d,%d) not in graph", e.Name(), p, v)
				}
			}
		}
	}
}

func TestCCMatchesReference(t *testing.T) {
	g := testGraph(t)
	want := RefCC(g)
	for _, e := range engines(t, g) {
		got := CC(e)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: CC[%d] = %d, want %d", e.Name(), v, got[v], want[v])
			}
		}
		// fixpoint property: label[d] <= label[s] for every edge
		for _, edge := range g.Edges() {
			if got[edge.Dst] > got[edge.Src] {
				t.Fatalf("%s: label fixpoint violated on edge (%d,%d)", e.Name(), edge.Src, edge.Dst)
			}
		}
	}
}

func TestCCOnUndirectedIsComponents(t *testing.T) {
	// two disjoint cliques joined internally: labels must be constant within
	// a component and differ across them.
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				edges = append(edges,
					graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(j)},
					graph.Edge{Src: graph.VertexID(i + 5), Dst: graph.VertexID(j + 5)})
			}
		}
	}
	g, err := graph.FromEdges(10, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines(t, g) {
		got := CC(e)
		for v := 1; v < 5; v++ {
			if got[v] != got[0] {
				t.Fatalf("%s: clique 1 split: %v", e.Name(), got)
			}
			if got[v+5] != got[5] {
				t.Fatalf("%s: clique 2 split: %v", e.Name(), got)
			}
		}
		if got[0] == got[5] {
			t.Fatalf("%s: cliques merged: %v", e.Name(), got)
		}
	}
}

func TestSPMVMatchesReference(t *testing.T) {
	g := testGraph(t)
	x := make([]float64, g.NumVertices())
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	want := RefSPMV(g, x)
	for _, e := range engines(t, g) {
		got := SPMV(e, x)
		for v := range want {
			if !almostEqual(got[v], want[v], 1e-9) {
				t.Fatalf("%s: SPMV[%d] = %g, want %g", e.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestBellmanFordMatchesReference(t *testing.T) {
	g := testGraph(t)
	root := graph.VertexID(3)
	want := RefSSSP(g, root)
	for _, e := range engines(t, g) {
		got := BellmanFord(e, root)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", e.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestBCMatchesReference(t *testing.T) {
	g := testGraph(t)
	gt := g.Transpose()
	root := graph.VertexID(3)
	want := RefBC(g, root)
	cfg := engine.Config{Topology: smallTopology}
	type pair struct{ fwd, bwd engine.Engine }
	lf := ligra.New(g, ligra.Config{Engine: cfg})
	lb := ligra.New(gt, ligra.Config{Engine: cfg})
	pf, err := polymer.New(g, polymer.Config{Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := polymer.New(gt, polymer.Config{Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	gf, err := graphgrind.New(g, graphgrind.Config{Engine: cfg, Partitions: 16, Order: layout.CSROrder})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := graphgrind.New(gt, graphgrind.Config{Engine: cfg, Partitions: 16, Order: layout.CSROrder})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range []pair{{lf, lb}, {pf, pb}, {gf, gb}} {
		got := BC(pr.fwd, pr.bwd, root)
		for v := range want {
			if !almostEqual(got[v], want[v], 1e-6) {
				t.Fatalf("%s: BC[%d] = %g, want %g", pr.fwd.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestPageRankDeltaApproximatesPageRank(t *testing.T) {
	g := testGraph(t)
	exact := RefPageRank(g, 30)
	for _, e := range engines(t, g) {
		approx := PageRankDelta(e, 30, 1e-7)
		var num, den float64
		for v := range exact {
			num += math.Abs(approx[v] - exact[v])
			den += exact[v]
		}
		if rel := num / den; rel > 0.02 {
			t.Errorf("%s: PRD total relative error %.4f > 2%%", e.Name(), rel)
		}
	}
}

func TestPageRankDeltaFrontierShrinks(t *testing.T) {
	// The paper's motivating observation: in PRD, many low-degree vertices
	// converge early, so the active set shrinks over iterations.
	g := testGraph(t)
	e := ligra.New(g, ligra.Config{Engine: engine.Config{Topology: smallTopology}})
	PageRankDelta(e, 10, 1e-3)
	m := e.Metrics()
	var firstActive, lastActive int64 = -1, -1
	for _, s := range m.Steps {
		if s.Kind != engine.StepVertexMap {
			if firstActive < 0 {
				firstActive = s.ActiveVertices
			}
			lastActive = s.ActiveVertices
		}
	}
	if lastActive >= firstActive {
		t.Errorf("PRD frontier did not shrink: first %d, last %d", firstActive, lastActive)
	}
}

func TestBPIsDeterministicAcrossEngines(t *testing.T) {
	g := testGraph(t)
	prior := make([]float64, g.NumVertices())
	for i := range prior {
		prior[i] = math.Sin(float64(i)) * 0.1
	}
	var ref []float64
	for _, e := range engines(t, g) {
		got := BP(e, 5, prior)
		if ref == nil {
			ref = got
			// sanity: beliefs bounded in (-1, 1)
			for v, b := range got {
				if b <= -1 || b >= 1 || math.IsNaN(b) {
					t.Fatalf("belief[%d] = %g out of range", v, b)
				}
			}
			continue
		}
		for v := range ref {
			if !almostEqual(got[v], ref[v], 1e-9) {
				t.Fatalf("%s: BP[%d] = %g, want %g", e.Name(), v, got[v], ref[v])
			}
		}
	}
}

func TestBFSOnDisconnectedRemainderUnreached(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}}
	g, err := graph.FromEdges(6, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines(t, g) {
		parent := BFS(e, 0)
		if parent[3] != -1 || parent[4] != -1 || parent[5] != -1 {
			t.Fatalf("%s: unreachable vertices got parents: %v", e.Name(), parent)
		}
		if parent[1] != 0 || parent[2] != 1 {
			t.Fatalf("%s: wrong parents: %v", e.Name(), parent)
		}
	}
}

// Results must be invariant under VEBO reordering: computing on the
// reordered graph and mapping back through the permutation gives the same
// answer (exactly, for integer algorithms).
func TestReorderInvariance(t *testing.T) {
	g := testGraph(t)
	root := graph.VertexID(3)

	// reorder with VEBO via the core package
	r, rg := reorderForTest(t, g, 8)

	e := ligra.New(g, ligra.Config{Engine: engine.Config{Topology: smallTopology}})
	er := ligra.New(rg, ligra.Config{Engine: engine.Config{Topology: smallTopology}})

	// BFS depths map through the permutation
	d1 := Depths(BFS(e, root), root)
	d2 := Depths(BFS(er, r[root]), r[root])
	for v := range d1 {
		if d1[v] != d2[r[v]] {
			t.Fatalf("BFS depth not reorder-invariant at %d: %d vs %d", v, d1[v], d2[r[v]])
		}
	}

	// Bellman-Ford distances map through the permutation
	s1 := BellmanFord(e, root)
	s2 := BellmanFord(er, r[root])
	for v := range s1 {
		if s1[v] != s2[r[v]] {
			t.Fatalf("BF dist not reorder-invariant at %d", v)
		}
	}

	// PageRank maps through the permutation (tolerance: FP order)
	p1 := PageRank(e, 5)
	p2 := PageRank(er, 5)
	for v := range p1 {
		if !almostEqual(p1[v], p2[r[v]], 1e-9) {
			t.Fatalf("PR not reorder-invariant at %d: %g vs %g", v, p1[v], p2[r[v]])
		}
	}
}
