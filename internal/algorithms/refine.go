package algorithms

import (
	"math"
	"sync/atomic"

	"repro/internal/atomicf"
	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// This file holds the resumable kernel variants behind the View.Refine* API
// (see DESIGN.md §5d): instead of cold-starting from a root or a uniform
// vector, each kernel takes a seed result plus an initial frontier and runs
// the same edgemap iteration the cold-start version uses, so it executes
// unchanged on all three framework models. The seeds come from a converged
// basis-epoch result; the frontiers from the lineage delta between the basis
// view and the queried view.

// RelaxInf is the "unreached" sentinel of the int64 relaxation state used by
// the monotone refinable kernels (BFS depths, canonical CC labels,
// Bellman-Ford distances). It matches BellmanFord's internal infinity, so
// seeded and cold-start relaxations agree bit for bit.
const RelaxInf = math.MaxInt64 / 4

// RelaxResume runs min-relaxation val[d] = min(val[d], val[s]+step) over the
// graph to fixpoint, starting from the given frontier. step is the edge
// weight when weighted, else 1 (BFS depths and packed CC labels both
// propagate with unit steps). The seed values must be valid upper bounds on
// the fixpoint — every finite entry achievable by some path, RelaxInf for
// "unknown" — and the frontier must contain the source of every edge the
// seed leaves violated (val[d] > val[s]+step); under those preconditions the
// returned array is the exact fixpoint. val is mutated in place and
// returned.
func RelaxResume(e engine.Engine, val []int64, weighted bool, f *frontier.Frontier) []int64 {
	n := e.Graph().NumVertices()
	step := func(w int32) int64 {
		if weighted {
			return int64(w)
		}
		return 1
	}
	// Source values may be lowered concurrently by the worker owning that
	// vertex as a destination (the BellmanFord race); atomic loads keep the
	// relaxation race-free, and a stale read only defers it one round.
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, w int32) bool {
			sv := atomic.LoadInt64(&val[s])
			if sv >= RelaxInf {
				return false
			}
			if nd := sv + step(w); nd < atomic.LoadInt64(&val[d]) {
				atomic.StoreInt64(&val[d], nd)
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d graph.VertexID, w int32) bool {
			sv := atomic.LoadInt64(&val[s])
			if sv >= RelaxInf {
				return false
			}
			return atomicf.MinI64(&val[d], sv+step(w))
		},
	}
	for round := 0; round < n && !f.IsEmpty(); round++ {
		f = e.EdgeMap(f, kernel)
	}
	return val
}

// BFSDepthsResume resumes a BFS-depth computation from a seed depth array
// (RelaxInf = unreached) and an initial frontier; see RelaxResume for the
// seed/frontier contract. Depths — unlike parent arrays — are a canonical
// function of the graph, which is what makes them refinable and comparable
// across epochs.
func BFSDepthsResume(e engine.Engine, depth []int64, f *frontier.Frontier) []int64 {
	return RelaxResume(e, depth, false, f)
}

// BFSDepths computes BFS depths from root from scratch in the refinable
// representation (RelaxInf = unreached). Equivalent to Depths(BFS(e, root))
// with RelaxInf in place of -1.
func BFSDepths(e engine.Engine, root graph.VertexID) []int64 {
	g := e.Graph()
	depth := make([]int64, g.NumVertices())
	for i := range depth {
		depth[i] = RelaxInf
	}
	depth[root] = 0
	return BFSDepthsResume(e, depth, frontier.FromVertex(g, root))
}

// PackCC packs a canonical CC propagation state: the component label (the
// smallest original vertex ID that reaches the vertex) in the high 32 bits
// and the hop count of the propagation path in the low 32. Numeric order on
// the packed value is lexicographic (label, hops) order, so min-relaxation
// with unit steps computes, per vertex, the smallest reaching ID and its hop
// distance — a BFS-depth structure that makes KickStarter-style supporting
// -edge reasoning applicable to CC (DESIGN.md §5d).
func PackCC(label uint32, hops int32) int64 {
	return int64(label)<<32 | int64(uint32(hops))
}

// UnpackCCLabel extracts the component label from a packed CC state.
func UnpackCCLabel(state int64) uint32 {
	return uint32(state >> 32)
}

// CCSeededResume resumes canonical-label propagation from a seed of packed
// (label, hops) states; see RelaxResume for the seed/frontier contract.
func CCSeededResume(e engine.Engine, state []int64, f *frontier.Frontier) []int64 {
	return RelaxResume(e, state, false, f)
}

// CCSeeded computes canonical connected-component labels from scratch in the
// refinable representation: every vertex injects its own initial label
// (init[v], the vertex's original ID in the View API) and the fixpoint holds
// the minimum label reaching each vertex plus its hop distance. Unlike CC's
// labels, which are opaque engine-space artifacts, these are stable across
// renumbering epochs.
func CCSeeded(e engine.Engine, init []uint32) []int64 {
	g := e.Graph()
	n := g.NumVertices()
	state := make([]int64, n)
	for v := 0; v < n; v++ {
		state[v] = PackCC(init[v], 0)
	}
	return CCSeededResume(e, state, frontier.All(g))
}

// BellmanFordResume resumes a single-source shortest-path relaxation from a
// seed distance array (RelaxInf = unreached); see RelaxResume for the
// seed/frontier contract. Edge weights must be non-negative for the caller's
// invalidation reasoning to be sound (every stored weight in this module is
// ≥ 1; see dynamic.Graph's weight normalization).
func BellmanFordResume(e engine.Engine, dist []int64, f *frontier.Frontier) []int64 {
	return RelaxResume(e, dist, true, f)
}

// RankDelta describes the perturbation between a converged basis PageRank
// vector and the queried epoch's graph, in the queried engine's vertex
// space: the edge changes (multiplicities unrolled), the prior out-degree of
// every source whose out-edge set changed, the basis and current real vertex
// counts (for the (1-damping)/n base-term shift) and the engine positions of
// the vertices admitted since the basis (which seed with rank 0 and take the
// full new base term — engine orderings scatter them, so they are a list,
// not an index range). len(Grown) must equal NNew − NOld. NNew is the real
// vertex count, which on slotted engines is smaller than the engine's ID
// space (reserved headroom rows are not vertices); NNew == 0 means the
// engine is compact and g.NumVertices() is the count.
type RankDelta struct {
	Adds, Dels []graph.Edge
	OldOutDeg  map[graph.VertexID]int64
	NOld, NNew int
	Grown      []graph.VertexID
}

// PageRankResume resumes PageRank from a converged rank vector after a graph
// delta, GraphBolt-style: the rank recurrence rank = b + damping·Aᵀ·rank is
// linear, so the exact correction for a changed (b, A) is the geometric
// series of the initial residual delta₀ = (b_new − b_old) +
// damping·(A_new − A_old)ᵀ·rank_seed propagated through the new graph. Only
// vertices whose pending delta exceeds eps·rank stay in the frontier
// (PageRankDelta's convergence condition), so a small perturbation touches a
// small, shrinking cone. rank is mutated in place and returned; the seed
// must satisfy the basis graph's recurrence to within the same eps for the
// result to match a converged cold start.
func PageRankResume(e engine.Engine, rank []float64, d RankDelta, iters int, eps float64) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return rank
	}
	delta := make([]float64, n)
	touched := make([]bool, n)
	var touchList []graph.VertexID
	touch := func(v graph.VertexID, dv float64) {
		delta[v] += dv
		if !touched[v] {
			touched[v] = true
			touchList = append(touchList, v)
		}
	}
	// Base-term change: (1-damping)/n_new for every vertex minus
	// (1-damping)/n_old for the ones that existed at the basis. Zero unless
	// the vertex space grew, in which case every vertex takes a (tiny)
	// initial delta and the first round runs dense. The divisors use the real
	// vertex counts, not the engine's ID-space size — on slotted engines the
	// headroom rows swept here are inert (no out-edges, dropped on
	// projection back to real IDs).
	nNew := d.NNew
	if nNew == 0 {
		nNew = n
	}
	if d.NOld != nNew {
		grown := make([]bool, n)
		for _, v := range d.Grown {
			grown[v] = true
		}
		bNew := (1 - damping) / float64(nNew)
		bOld := (1 - damping) / float64(d.NOld)
		for v := 0; v < n; v++ {
			if grown[v] {
				touch(graph.VertexID(v), bNew)
			} else {
				touch(graph.VertexID(v), bNew-bOld)
			}
		}
	}
	// Edge-term change, per changed source s with old degree odOld and new
	// degree odNew: retained edges shift by rank[s]·(1/odNew − 1/odOld), so
	// sweep all current out-edges with that shift, then correct inserted
	// edges up to rank[s]/odNew (+rank[s]/odOld) and deleted ones down by
	// their old contribution (−rank[s]/odOld). rank here is the seed vector,
	// which grown sources hold at 0 — their mass arrives through the
	// propagation rounds with the correct new degrees.
	for s, odOld := range d.OldOutDeg {
		odNew := g.OutDegree(s)
		var cNew, cOld float64
		if odNew > 0 {
			cNew = rank[s] / float64(odNew)
		}
		if odOld > 0 {
			cOld = rank[s] / float64(odOld)
		}
		if diff := cNew - cOld; diff != 0 {
			for _, t := range g.OutNeighbors(s) {
				touch(t, damping*diff)
			}
		}
	}
	oldContrib := func(s graph.VertexID) float64 {
		if od := d.OldOutDeg[s]; od > 0 {
			return rank[s] / float64(od)
		}
		return 0
	}
	for _, ed := range d.Adds {
		touch(ed.Dst, damping*oldContrib(ed.Src))
	}
	for _, ed := range d.Dels {
		touch(ed.Dst, -damping*oldContrib(ed.Src))
	}

	contrib := make([]float64, n)
	acc := make([]uint64, n)
	kernel := engine.EdgeKernel{
		Update: func(s, dst graph.VertexID, _ int32) bool {
			acc[dst] = atomicf.F64Bits(atomicf.F64From(acc[dst]) + contrib[s])
			return true
		},
		UpdateAtomic: func(s, dst graph.VertexID, _ int32) bool {
			atomicf.AddF64(&acc[dst], contrib[s])
			return true
		},
	}
	// Apply the initial delta and keep only material perturbations active.
	f := applyDelta(g, rank, delta, touchList, eps)
	for it := 0; it < iters && !f.IsEmpty(); it++ {
		for _, v := range f.Sparse() {
			if od := g.OutDegree(v); od > 0 {
				contrib[v] = delta[v] / float64(od)
			} else {
				contrib[v] = 0
			}
		}
		moved := e.EdgeMap(f, kernel)
		// Fold the propagated mass into rank sparsely: only destinations the
		// edgemap touched carry new delta, everything else is settled.
		f = e.VertexMap(moved, func(v graph.VertexID) bool {
			nd := damping * atomicf.F64From(acc[v])
			acc[v] = 0
			delta[v] = nd
			rank[v] += nd
			return math.Abs(nd) > eps*math.Abs(rank[v])
		})
	}
	return rank
}

// applyDelta folds the initial perturbation into rank and builds the first
// frontier: the touched vertices whose delta is material relative to their
// rank.
func applyDelta(g *graph.Graph, rank, delta []float64, touchList []graph.VertexID, eps float64) *frontier.Frontier {
	active := make([]bool, len(rank))
	for _, v := range touchList {
		rank[v] += delta[v]
		if math.Abs(delta[v]) > eps*math.Abs(rank[v]) {
			active[v] = true
		}
	}
	return frontier.FromDense(g, active)
}
