// Package algorithms implements the paper's eight benchmark algorithms
// (Table II) against the engine.Engine interface, so each runs unchanged on
// the Ligra, Polymer and GraphGrind models:
//
//	BC    betweenness centrality (vertex-oriented, medium/sparse frontiers)
//	CC    connected components by label propagation (edge-oriented)
//	PR    PageRank, power method, fixed iterations (edge-oriented, dense)
//	BFS   breadth-first search (vertex-oriented, medium/sparse)
//	PRD   PageRank with delta updates (edge-oriented, shrinking frontier)
//	SPMV  sparse matrix-vector product, one iteration (edge-oriented, dense)
//	BF    Bellman-Ford single-source shortest paths (vertex-oriented)
//	BP    belief propagation, fixed iterations (edge-oriented, dense)
//
// Push-mode (sparse) updates use the lock-free primitives in
// internal/atomicf; pull-mode (dense) updates rely on the engines'
// guarantee that a single worker owns each destination.
package algorithms

import (
	"math"
	"sync/atomic"

	"repro/internal/atomicf"
	"repro/internal/engine"
	"repro/internal/frontier"
	"repro/internal/graph"
)

const damping = 0.85

// PageRank runs the power method for iters iterations and returns the rank
// vector. Matches the paper's PR configuration (10 iterations).
func PageRank(e engine.Engine, iters int) []float64 {
	return PageRankN(e, iters, e.Graph().NumVertices())
}

// PageRankN is PageRank with the true vertex count nReal made explicit for
// engines whose ID space is larger than the graph — slotted VEBO orderings
// reserve headroom positions that exist as empty rows. The 1/n terms use
// nReal; the empty rows accumulate only their own base term (they have no
// out-edges, so they never contribute rank), and callers projecting results
// back to real vertex IDs drop them.
func PageRankN(e engine.Engine, iters, nReal int) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	rank := make([]float64, n)
	contrib := make([]float64, n)
	acc := make([]uint64, n) // float64 bits, atomically accumulated in push
	for v := 0; v < n; v++ {
		rank[v] = 1.0 / float64(nReal)
	}
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, _ int32) bool {
			acc[d] = atomicf.F64Bits(atomicf.F64From(acc[d]) + contrib[s])
			return true
		},
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool {
			atomicf.AddF64(&acc[d], contrib[s])
			return true
		},
	}
	all := frontier.All(g)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			if od := g.OutDegree(graph.VertexID(v)); od > 0 {
				contrib[v] = rank[v] / float64(od)
			} else {
				contrib[v] = 0
			}
			acc[v] = 0
		}
		e.EdgeMap(all, kernel)
		e.VertexMap(all, func(v graph.VertexID) bool {
			rank[v] = (1-damping)/float64(nReal) + damping*atomicf.F64From(acc[v])
			return false
		})
	}
	return rank
}

// PageRankDelta runs the delta-update PageRank variant: only vertices whose
// rank changed by more than eps times their accumulated rank stay in the
// frontier. Returns the rank vector. This is the paper's PRD.
func PageRankDelta(e engine.Engine, iters int, eps float64) []float64 {
	return PageRankDeltaN(e, iters, eps, e.Graph().NumVertices())
}

// PageRankDeltaN is PageRankDelta with the true vertex count nReal made
// explicit; see PageRankN for the slotted-ordering contract.
func PageRankDeltaN(e engine.Engine, iters int, eps float64, nReal int) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	// PageRank is the geometric series p = Σ_k (damping·A)^k · (1−damping)/n;
	// delta holds the current term and rank the partial sum, so vertices
	// whose term has become negligible can drop out of the frontier.
	rank := make([]float64, n)
	delta := make([]float64, n)
	contrib := make([]float64, n)
	acc := make([]uint64, n)
	for v := 0; v < n; v++ {
		delta[v] = (1 - damping) / float64(nReal)
		rank[v] = delta[v]
	}
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, _ int32) bool {
			acc[d] = atomicf.F64Bits(atomicf.F64From(acc[d]) + contrib[s])
			return true
		},
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool {
			atomicf.AddF64(&acc[d], contrib[s])
			return true
		},
	}
	f := frontier.All(g)
	all := frontier.All(g)
	for it := 0; it < iters && !f.IsEmpty(); it++ {
		for v := 0; v < n; v++ {
			acc[v] = 0
			if od := g.OutDegree(graph.VertexID(v)); od > 0 {
				contrib[v] = delta[v] / float64(od)
			} else {
				contrib[v] = 0
			}
		}
		e.EdgeMap(f, kernel)
		// All vertices recompute their delta; the next frontier keeps those
		// whose rank moved materially (Ligra's PageRankDelta condition).
		f = e.VertexMap(all, func(v graph.VertexID) bool {
			nd := damping * atomicf.F64From(acc[v])
			delta[v] = nd
			rank[v] += nd
			return math.Abs(nd) > eps*math.Abs(rank[v]) && rank[v] > 0
		})
	}
	return rank
}

// BFS computes a breadth-first search tree from root, returning the parent
// array (-1 for unreached; the root is its own parent).
func BFS(e engine.Engine, root graph.VertexID) []int32 {
	g := e.Graph()
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = int32(root)
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, _ int32) bool {
			if parent[d] < 0 {
				parent[d] = int32(s)
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool {
			return atomicf.CASI32(&parent[d], -1, int32(s))
		},
		// Sparse pushes race Cond against other workers' CAS on the same
		// destination; the atomic load keeps that benign check race-free.
		Cond: func(d graph.VertexID) bool { return atomic.LoadInt32(&parent[d]) < 0 },
	}
	f := frontier.FromVertex(g, root)
	for !f.IsEmpty() {
		f = e.EdgeMap(f, kernel)
	}
	return parent
}

// Depths derives BFS depths from a parent array (root depth 0, -1 for
// unreached).
func Depths(parent []int32, root graph.VertexID) []int32 {
	n := len(parent)
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[root] = 0
	// Repeatedly settle vertices whose parent is settled. O(diameter * n)
	// worst case but only used in tests/verification.
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if depth[v] >= 0 || parent[v] < 0 {
				continue
			}
			if pd := depth[parent[v]]; pd >= 0 {
				depth[v] = pd + 1
				changed = true
			}
		}
	}
	return depth
}

// CC runs label-propagation connected components: every vertex starts with
// its own ID as label, and labels propagate along edges until fixpoint. On
// symmetric graphs this yields connected components; on directed graphs it
// yields the directed-propagation fixpoint (label[d] ≤ label[s] for every
// edge (s,d)). Returns the label array.
func CC(e engine.Engine) []uint32 {
	g := e.Graph()
	n := g.NumVertices()
	label := make([]uint32, n)
	for i := range label {
		label[i] = uint32(i)
	}
	// Label propagation reads source labels that a concurrently processed
	// destination may be lowering (the classic Ligra CC race): loads and the
	// owner's store are atomic so a torn or stale read can never corrupt a
	// label — a stale read only defers the propagation to the next round,
	// where the lowered source re-enters the frontier.
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, _ int32) bool {
			ls := atomic.LoadUint32(&label[s])
			if ls < atomic.LoadUint32(&label[d]) {
				atomic.StoreUint32(&label[d], ls)
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool {
			return atomicf.MinU32(&label[d], atomic.LoadUint32(&label[s]))
		},
	}
	f := frontier.All(g)
	for !f.IsEmpty() {
		f = e.EdgeMap(f, kernel)
	}
	return label
}

// SPMV multiplies the graph's (weighted) adjacency matrix with x in one
// dense edgemap: y[d] = Σ_{(s,d)∈E} w(s,d)·x[s].
func SPMV(e engine.Engine, x []float64) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	y := make([]uint64, n)
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, w int32) bool {
			y[d] = atomicf.F64Bits(atomicf.F64From(y[d]) + float64(w)*x[s])
			return false
		},
		UpdateAtomic: func(s, d graph.VertexID, w int32) bool {
			atomicf.AddF64(&y[d], float64(w)*x[s])
			return false
		},
	}
	e.EdgeMap(frontier.All(g), kernel)
	out := make([]float64, n)
	for i := range out {
		out[i] = atomicf.F64From(y[i])
	}
	return out
}

// BellmanFord computes single-source shortest paths from root over the
// graph's edge weights, returning distances (math.MaxInt64 for unreached).
func BellmanFord(e engine.Engine, root graph.VertexID) []int64 {
	g := e.Graph()
	n := g.NumVertices()
	const inf = math.MaxInt64 / 4
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	// As in CC, source distances may be lowered concurrently by the worker
	// owning that vertex as a destination; atomic loads keep the relaxation
	// race-free, and a stale read only postpones the relaxation to the next
	// round.
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, w int32) bool {
			if nd := atomic.LoadInt64(&dist[s]) + int64(w); nd < atomic.LoadInt64(&dist[d]) {
				atomic.StoreInt64(&dist[d], nd)
				return true
			}
			return false
		},
		UpdateAtomic: func(s, d graph.VertexID, w int32) bool {
			return atomicf.MinI64(&dist[d], atomic.LoadInt64(&dist[s])+int64(w))
		},
	}
	f := frontier.FromVertex(g, root)
	for round := 0; round < n && !f.IsEmpty(); round++ {
		f = e.EdgeMap(f, kernel)
	}
	out := make([]int64, n)
	for i, d := range dist {
		if d >= inf {
			out[i] = math.MaxInt64
		} else {
			out[i] = d
		}
	}
	return out
}

// Unreached is the distance BellmanFord reports for unreachable vertices.
const Unreached = math.MaxInt64

// BC computes single-source betweenness centrality from root using Brandes'
// two-phase algorithm expressed as edgemaps (Ligra's BC): a forward BFS
// accumulating shortest-path counts, then a backward sweep over the BFS
// levels accumulating dependencies. The backward sweep traverses reversed
// edges, so the caller supplies eT, an engine over the transposed graph
// (for symmetric graphs, e itself may be passed). Returns the dependency
// score per vertex.
func BC(e, eT engine.Engine, root graph.VertexID) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	sigma := make([]uint64, n) // path counts, float64 bits
	visited := make([]bool, n)
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	sigma[root] = atomicf.F64Bits(1)
	visited[root] = true
	depth[root] = 0

	fwd := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, _ int32) bool {
			sigma[d] = atomicf.F64Bits(atomicf.F64From(sigma[d]) + atomicf.F64From(sigma[s]))
			return !visited[d]
		},
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool {
			atomicf.AddF64(&sigma[d], atomicf.F64From(sigma[s]))
			return !visited[d]
		},
		Cond: func(d graph.VertexID) bool { return !visited[d] },
	}

	var levels []*frontier.Frontier
	f := frontier.FromVertex(g, root)
	levels = append(levels, f)
	for lvl := int32(1); !f.IsEmpty(); lvl++ {
		f = e.EdgeMap(f, fwd)
		if f.IsEmpty() {
			break
		}
		e.VertexMap(f, func(v graph.VertexID) bool {
			visited[v] = true
			depth[v] = lvl
			return false
		})
		levels = append(levels, f)
	}

	// Backward sweep: dependency delta flows from a vertex v to its BFS
	// predecessors u (edge u→v in g, i.e. v→u in the transpose).
	delta := make([]uint64, n)
	bwd := engine.EdgeKernel{
		Update: func(v, u graph.VertexID, _ int32) bool {
			if depth[u] == depth[v]-1 {
				add := atomicf.F64From(sigma[u]) / atomicf.F64From(sigma[v]) *
					(1 + atomicf.F64From(delta[v]))
				delta[u] = atomicf.F64Bits(atomicf.F64From(delta[u]) + add)
			}
			return false
		},
		UpdateAtomic: func(v, u graph.VertexID, _ int32) bool {
			if depth[u] == depth[v]-1 {
				add := atomicf.F64From(sigma[u]) / atomicf.F64From(sigma[v]) *
					(1 + atomicf.LoadF64(&delta[v]))
				atomicf.AddF64(&delta[u], add)
			}
			return false
		},
	}
	for l := len(levels) - 1; l >= 1; l-- {
		eT.EdgeMap(levels[l], bwd)
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		if graph.VertexID(v) != root {
			out[v] = atomicf.F64From(delta[v])
		}
	}
	return out
}

// BP runs a simplified Bayesian belief-propagation update for iters
// iterations: each vertex holds a belief in (-1, 1); on every iteration each
// edge (s,d) contributes w·tanh(belief[s]) to d's evidence, and beliefs are
// recomputed as tanh(prior[d] + 0.1·evidence[d]). This preserves the
// paper's BP workload profile — a weighted, edge-oriented, fully dense
// computation over 10 iterations — without the full factor-graph machinery
// (see DESIGN.md). Returns the belief vector.
func BP(e engine.Engine, iters int, prior []float64) []float64 {
	g := e.Graph()
	n := g.NumVertices()
	belief := make([]float64, n)
	evidence := make([]uint64, n)
	copy(belief, prior)
	// Normalize each vertex's evidence by its total in-edge weight so the
	// tanh never saturates to exactly ±1 regardless of degree and weights.
	norm := make([]float64, n)
	for v := 0; v < n; v++ {
		var sum float64
		for _, w := range g.InWeights(graph.VertexID(v)) {
			sum += float64(w)
		}
		norm[v] = 1 + sum
	}
	kernel := engine.EdgeKernel{
		Update: func(s, d graph.VertexID, w int32) bool {
			evidence[d] = atomicf.F64Bits(atomicf.F64From(evidence[d]) +
				float64(w)*math.Tanh(belief[s]))
			return true
		},
		UpdateAtomic: func(s, d graph.VertexID, w int32) bool {
			atomicf.AddF64(&evidence[d], float64(w)*math.Tanh(belief[s]))
			return true
		},
	}
	all := frontier.All(g)
	for it := 0; it < iters; it++ {
		for i := range evidence {
			evidence[i] = 0
		}
		e.EdgeMap(all, kernel)
		e.VertexMap(all, func(v graph.VertexID) bool {
			belief[v] = math.Tanh(prior[v] + atomicf.F64From(evidence[v])/norm[v])
			return false
		})
	}
	return belief
}
