package algorithms

import (
	"math"
	"testing"

	"repro/internal/frontier"
	"repro/internal/graph"
)

// seqBFSDepths is a sequential oracle for BFSDepths.
func seqBFSDepths(g *graph.Graph, root graph.VertexID) []int64 {
	depth := make([]int64, g.NumVertices())
	for i := range depth {
		depth[i] = RelaxInf
	}
	depth[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, t := range g.OutNeighbors(u) {
			if depth[t] > depth[u]+1 {
				depth[t] = depth[u] + 1
				queue = append(queue, t)
			}
		}
	}
	return depth
}

// seqMinLabelHops is a sequential oracle for CCSeeded with identity
// injections: per vertex the smallest reaching ID and its hop distance,
// iterated to fixpoint.
func seqMinLabelHops(g *graph.Graph) []int64 {
	n := g.NumVertices()
	state := make([]int64, n)
	for v := 0; v < n; v++ {
		state[v] = PackCC(uint32(v), 0)
	}
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges() {
			if nd := state[e.Src] + 1; nd < state[e.Dst] {
				state[e.Dst] = nd
				changed = true
			}
		}
	}
	return state
}

func TestBFSDepthsMatchesSequential(t *testing.T) {
	g := testGraph(t)
	want := seqBFSDepths(g, 0)
	for _, e := range engines(t, g) {
		got := BFSDepths(e, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: depth[%d] = %d, want %d", e.Name(), v, got[v], want[v])
			}
		}
	}
}

// TestRelaxResumeAfterInsertions checks the resume contract on the
// insert-only case: seeding with the old graph's converged depths (valid
// upper bounds after insertions) and frontiering the inserted-edge sources
// must land on the new graph's exact fixpoint.
func TestRelaxResumeAfterInsertions(t *testing.T) {
	g := testGraph(t)
	n := g.NumVertices()
	seedDepth := seqBFSDepths(g, 0)

	extra := []graph.Edge{
		{Src: 0, Dst: graph.VertexID(n - 1)},
		{Src: graph.VertexID(n - 1), Dst: graph.VertexID(n / 2)},
		{Src: graph.VertexID(n / 3), Dst: graph.VertexID(n - 2)},
	}
	g2, err := graph.FromEdges(n, append(g.Edges(), extra...), g.Weighted())
	if err != nil {
		t.Fatal(err)
	}
	want := seqBFSDepths(g2, 0)
	for _, e := range engines(t, g2) {
		val := make([]int64, n)
		copy(val, seedDepth)
		srcs := []graph.VertexID{0, graph.VertexID(n / 3), graph.VertexID(n - 1)}
		got := BFSDepthsResume(e, val, frontier.FromVertices(g2, srcs))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: resumed depth[%d] = %d, want %d", e.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestPackCCOrderIsLexicographic(t *testing.T) {
	cases := []struct {
		l1, l2 uint32
		h1, h2 int32
	}{
		{0, 1, 100, 0},     // smaller label wins regardless of hops
		{3, 3, 2, 7},       // same label: fewer hops wins
		{7, 8, 0, 0},       // plain label order
		{5, 5, 0, 1 << 30}, // large hop counts stay in the low word
	}
	for _, c := range cases {
		a, b := PackCC(c.l1, c.h1), PackCC(c.l2, c.h2)
		if !(a < b) {
			t.Fatalf("PackCC(%d,%d) = %d not < PackCC(%d,%d) = %d", c.l1, c.h1, a, c.l2, c.h2, b)
		}
		if UnpackCCLabel(a) != c.l1 || UnpackCCLabel(b) != c.l2 {
			t.Fatalf("label round-trip failed for %+v", c)
		}
	}
}

func TestCCSeededMatchesSequential(t *testing.T) {
	g := testGraph(t)
	want := seqMinLabelHops(g)
	init := make([]uint32, g.NumVertices())
	for v := range init {
		init[v] = uint32(v)
	}
	for _, e := range engines(t, g) {
		got := CCSeeded(e, init)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: cc state[%d] = %x, want %x", e.Name(), v, got[v], want[v])
			}
		}
	}
}

// TestPageRankResumeMatchesCold perturbs a converged graph — insertions,
// deletions and vertex growth — and checks that resuming from the basis
// vector lands within tolerance of a cold equal-ε run on the new graph.
func TestPageRankResumeMatchesCold(t *testing.T) {
	const eps = 1e-9
	g := testGraph(t)
	n := g.NumVertices()
	var seed []float64
	for _, e := range engines(t, g) {
		seed = PageRankDelta(e, 400, eps)
		break
	}

	// New graph: two vertices admitted, a handful of edges inserted (some
	// from grown vertices) and the first out-edge of a high-degree vertex
	// deleted.
	n2 := n + 2
	edges := g.Edges()
	var dels []graph.Edge
	var hub graph.VertexID
	for v := 1; v < n; v++ {
		if g.OutDegree(graph.VertexID(v)) > g.OutDegree(hub) {
			hub = graph.VertexID(v)
		}
	}
	victim := graph.Edge{Src: hub, Dst: g.OutNeighbors(hub)[0], Weight: g.OutWeights(hub)[0]}
	kept := edges[:0]
	for _, e := range edges {
		if e != victim || len(dels) > 0 {
			kept = append(kept, e)
		} else {
			dels = append(dels, e)
		}
	}
	adds := []graph.Edge{
		{Src: graph.VertexID(n), Dst: 0, Weight: 1},
		{Src: 4, Dst: graph.VertexID(n + 1), Weight: 1},
		{Src: graph.VertexID(n + 1), Dst: 9, Weight: 1},
		{Src: 9, Dst: 2, Weight: 1},
	}
	g2, err := graph.FromEdges(n2, append(kept, adds...), g.Weighted())
	if err != nil {
		t.Fatal(err)
	}

	oldDeg := map[graph.VertexID]int64{
		hub:                   int64(g.OutDegree(hub)),
		4:                     int64(g.OutDegree(4)),
		9:                     int64(g.OutDegree(9)),
		graph.VertexID(n):     0,
		graph.VertexID(n + 1): 0,
	}
	for _, e := range engines(t, g2) {
		rank := make([]float64, n2)
		copy(rank, seed)
		got := PageRankResume(e, rank, RankDelta{
			Adds: adds, Dels: dels, OldOutDeg: oldDeg, NOld: n,
			Grown: []graph.VertexID{graph.VertexID(n), graph.VertexID(n + 1)},
		}, 400, eps)
		want := PageRankDelta(e, 400, eps)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
				t.Fatalf("%s: resumed rank[%d] = %.12g, want %.12g", e.Name(), v, got[v], want[v])
			}
		}
	}
}
