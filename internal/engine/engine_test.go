package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/layout"
)

func TestMakespanStatic(t *testing.T) {
	// 4 units, 2 workers: blocks {10,1} and {1,1} → makespan 11.
	if got := MakespanStatic([]int64{10, 1, 1, 1}, 2); got != 11 {
		t.Errorf("MakespanStatic = %d, want 11", got)
	}
	if got := MakespanStatic(nil, 4); got != 0 {
		t.Errorf("empty = %d", got)
	}
	if got := MakespanStatic([]int64{5}, 8); got != 5 {
		t.Errorf("single = %d", got)
	}
	// one worker = total
	if got := MakespanStatic([]int64{3, 4, 5}, 1); got != 12 {
		t.Errorf("one worker = %d", got)
	}
}

func TestMakespanDynamic(t *testing.T) {
	// list scheduling spreads the load: {10,1,1,1} on 2 workers → 10 vs 3.
	if got := MakespanDynamic([]int64{10, 1, 1, 1}, 2); got != 10 {
		t.Errorf("MakespanDynamic = %d, want 10", got)
	}
	if got := MakespanDynamic([]int64{3, 4, 5}, 1); got != 12 {
		t.Errorf("one worker = %d", got)
	}
	if got := MakespanDynamic(nil, 3); got != 0 {
		t.Errorf("empty = %d", got)
	}
}

func TestMakespanGrouped(t *testing.T) {
	// 4 units in 2 groups of 2, 1 worker per group: group sums 11 and 2.
	if got := MakespanGrouped([]int64{10, 1, 1, 1}, 2, 1); got != 11 {
		t.Errorf("MakespanGrouped = %d, want 11", got)
	}
	// 2 workers per group: group 0 max(10,1)=10.
	if got := MakespanGrouped([]int64{10, 1, 1, 1}, 2, 2); got != 10 {
		t.Errorf("MakespanGrouped = %d, want 10", got)
	}
}

// Property: both makespans respect the scheduling-theory bounds — at least
// the max unit cost and the average load, at most the total; and dynamic
// list scheduling obeys Graham's bound makespan ≤ total/w + max unit.
func TestMakespanBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		w := rng.Intn(8) + 1
		costs := make([]int64, n)
		var total, maxc int64
		for i := range costs {
			costs[i] = int64(rng.Intn(100))
			total += costs[i]
			if costs[i] > maxc {
				maxc = costs[i]
			}
		}
		d := MakespanDynamic(costs, w)
		s := MakespanStatic(costs, w)
		avg := (total + int64(w) - 1) / int64(w) // ceil(mean), valid lower bound
		if d > total || s > total {
			return false
		}
		if d < maxc || d < avg || s < maxc || s < avg {
			return false
		}
		// Graham's list-scheduling guarantee
		return d <= total/int64(w)+maxc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitRange(t *testing.T) {
	units := SplitRange(10, 3)
	want := []Range{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if !reflect.DeepEqual(units, want) {
		t.Errorf("SplitRange = %v", units)
	}
	if got := SplitRange(0, 5); len(got) != 0 {
		t.Errorf("empty range produced %v", got)
	}
	if got := SplitRange(5, 0); len(got) != 5 {
		t.Errorf("unit 0 should clamp to 1, got %v", got)
	}
}

func TestSubdivideByCount(t *testing.T) {
	sub := SubdivideByCount([]Range{{0, 10}, {10, 12}}, 3)
	// first range: 4+4+2, second: 1+1
	want := []Range{{0, 4}, {4, 8}, {8, 10}, {10, 11}, {11, 12}}
	if !reflect.DeepEqual(sub, want) {
		t.Errorf("SubdivideByCount = %v, want %v", sub, want)
	}
	// empty ranges disappear
	if got := SubdivideByCount([]Range{{5, 5}}, 4); len(got) != 0 {
		t.Errorf("empty range subdivided into %v", got)
	}
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 500, S: 1.0, MaxDegree: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// countKernel counts how many times each destination receives an update from
// an active source; used to validate traversal coverage.
func countKernel(n int) (EdgeKernel, []int64) {
	counts := make([]int64, n)
	k := EdgeKernel{
		Update: func(s, d graph.VertexID, _ int32) bool {
			counts[d]++
			return true
		},
	}
	k.UpdateAtomic = k.Update // tests run single-threaded workers below
	return k, counts
}

func TestDensePullVisitsEveryEdgeOnce(t *testing.T) {
	g := testGraph(t)
	k, counts := countKernel(g.NumVertices())
	units := SplitRange(g.NumVertices(), 64)
	out, costs := DensePull(g, frontier.All(g), k, units, 1)
	for v := 0; v < g.NumVertices(); v++ {
		if counts[v] != g.InDegree(graph.VertexID(v)) {
			t.Fatalf("vertex %d updated %d times, in-degree %d",
				v, counts[v], g.InDegree(graph.VertexID(v)))
		}
	}
	if len(costs) != len(units) {
		t.Fatalf("%d unit costs for %d units", len(costs), len(units))
	}
	// every vertex with an in-edge must be active in the output
	for v := 0; v < g.NumVertices(); v++ {
		wantActive := g.InDegree(graph.VertexID(v)) > 0
		if out.Has(graph.VertexID(v)) != wantActive {
			t.Fatalf("vertex %d active=%v, want %v", v, out.Has(graph.VertexID(v)), wantActive)
		}
	}
}

func TestSparsePushVisitsFrontierEdges(t *testing.T) {
	g := testGraph(t)
	k, counts := countKernel(g.NumVertices())
	srcs := []graph.VertexID{1, 5, 9}
	f := frontier.FromVertices(g, srcs)
	out, _ := SparsePush(g, f, k, 2, 1)
	want := make([]int64, g.NumVertices())
	activeDst := map[graph.VertexID]bool{}
	for _, s := range srcs {
		for _, d := range g.OutNeighbors(s) {
			want[d]++
			activeDst[d] = true
		}
	}
	for v := range counts {
		if counts[v] != want[v] {
			t.Fatalf("dst %d updated %d times, want %d", v, counts[v], want[v])
		}
	}
	if out.Count() != int64(len(activeDst)) {
		t.Fatalf("out frontier has %d vertices, want %d", out.Count(), len(activeDst))
	}
}

func TestDenseCOOMatchesDensePull(t *testing.T) {
	g := testGraph(t)
	units := SplitRange(g.NumVertices(), 100)
	coos, err := BuildPartitionCOOs(g, units, layout.HilbertOrder, 1)
	if err != nil {
		t.Fatal(err)
	}
	k1, c1 := countKernel(g.NumVertices())
	DensePull(g, frontier.All(g), k1, units, 1)
	k2, c2 := countKernel(g.NumVertices())
	DenseCOO(g, frontier.All(g), k2, coos, units, 1)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("DenseCOO and DensePull disagree on update counts")
	}
}

func TestDensePullRespectsCond(t *testing.T) {
	g := testGraph(t)
	// Cond rejects everything: no updates at all.
	called := false
	k := EdgeKernel{
		Update:       func(s, d graph.VertexID, _ int32) bool { called = true; return true },
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool { called = true; return true },
		Cond:         func(d graph.VertexID) bool { return false },
	}
	out, _ := DensePull(g, frontier.All(g), k, SplitRange(g.NumVertices(), 64), 1)
	if called {
		t.Error("kernel called despite Cond == false")
	}
	if !out.IsEmpty() {
		t.Error("output frontier not empty")
	}
}

func TestSparsePushDeduplicatesOutput(t *testing.T) {
	// two sources pointing at the same destination: output contains it once.
	edges := []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}}
	g, err := graph.FromEdges(3, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	k := EdgeKernel{}
	k.Update = func(s, d graph.VertexID, _ int32) bool { return true }
	k.UpdateAtomic = k.Update
	out, _ := SparsePush(g, frontier.FromVertices(g, []graph.VertexID{0, 1}), k, 1, 2)
	if out.Count() != 1 || !out.Has(2) {
		t.Fatalf("out frontier = %v vertices", out.Count())
	}
}

func TestVertexMapVariants(t *testing.T) {
	g := testGraph(t)
	f := frontier.FromVertices(g, []graph.VertexID{2, 4, 6, 8})
	keepEven := func(v graph.VertexID) bool { return v%4 == 0 }
	outD, _ := VertexMapDynamic(g, f, keepEven, 2, 2)
	f2 := frontier.FromVertices(g, []graph.VertexID{2, 4, 6, 8})
	outS, _ := VertexMapStatic(g, f2, keepEven, 4, 2)
	for _, v := range []graph.VertexID{4, 8} {
		if !outD.Has(v) || !outS.Has(v) {
			t.Fatalf("vertex %d missing from output", v)
		}
	}
	if outD.Count() != 2 || outS.Count() != 2 {
		t.Fatalf("counts %d/%d, want 2/2", outD.Count(), outS.Count())
	}
}

func TestStepKindString(t *testing.T) {
	if StepEdgeMapSparse.String() != "edgemap-sparse" ||
		StepEdgeMapDense.String() != "edgemap-dense" ||
		StepVertexMap.String() != "vertexmap" ||
		StepKind(9).String() != "unknown" {
		t.Error("StepKind labels wrong")
	}
}

func TestMetricsAccumulation(t *testing.T) {
	var m Metrics
	m.Add(Step{Kind: StepEdgeMapDense, Makespan: 10})
	m.Add(Step{Kind: StepVertexMap, Makespan: 5})
	if m.ModelTime != 15 {
		t.Errorf("ModelTime = %d", m.ModelTime)
	}
	if m.EdgeMapTime() != 10 || m.VertexMapTime() != 5 {
		t.Errorf("split times wrong: %d/%d", m.EdgeMapTime(), m.VertexMapTime())
	}
	if m.LastStep().Kind != StepVertexMap {
		t.Error("LastStep wrong")
	}
	m.Reset()
	if m.ModelTime != 0 || len(m.Steps) != 0 || m.LastStep() != nil {
		t.Error("Reset incomplete")
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Topology.Threads() != 48 {
		t.Errorf("default topology has %d threads", c.Topology.Threads())
	}
	if c.SparseChunk != 64 {
		t.Errorf("default chunk = %d", c.SparseChunk)
	}
}
