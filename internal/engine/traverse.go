package engine

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/sched"
)

// Range is a half-open destination-vertex range used as a scheduling unit.
type Range struct {
	Lo, Hi graph.VertexID
}

// SplitRange cuts [0, n) into units of the given size.
func SplitRange(n, unit int) []Range {
	if unit < 1 {
		unit = 1
	}
	out := make([]Range, 0, (n+unit-1)/unit)
	for lo := 0; lo < n; lo += unit {
		hi := lo + unit
		if hi > n {
			hi = n
		}
		out = append(out, Range{graph.VertexID(lo), graph.VertexID(hi)})
	}
	return out
}

// SubdivideByCount splits each range into k sub-ranges of near-equal vertex
// count, preserving order (Polymer's intra-socket static split).
func SubdivideByCount(ranges []Range, k int) []Range {
	if k < 1 {
		k = 1
	}
	out := make([]Range, 0, len(ranges)*k)
	for _, r := range ranges {
		n := int(r.Hi - r.Lo)
		per := (n + k - 1) / k
		if per == 0 {
			per = 1
		}
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			out = append(out, Range{r.Lo + graph.VertexID(lo), r.Lo + graph.VertexID(hi)})
		}
	}
	return out
}

// SubdivideByEdges splits each range into at most k sub-ranges of
// near-equal in-edge count (Algorithm-1-style greedy chunking), preserving
// order. This is Polymer's intra-socket work division: threads receive
// edge-balanced chunks of their socket's partition.
func SubdivideByEdges(g *graph.Graph, ranges []Range, k int) []Range {
	if k < 1 {
		k = 1
	}
	out := make([]Range, 0, len(ranges)*k)
	for _, r := range ranges {
		var edges int64
		for v := r.Lo; v < r.Hi; v++ {
			edges += g.InDegree(v)
		}
		target := edges / int64(k)
		lo := r.Lo
		var acc int64
		emitted := 0
		for v := r.Lo; v < r.Hi; v++ {
			if acc >= target && target > 0 && emitted < k-1 {
				out = append(out, Range{lo, v})
				lo = v
				acc = 0
				emitted++
			}
			acc += g.InDegree(v)
		}
		if lo < r.Hi {
			out = append(out, Range{lo, r.Hi})
		}
	}
	return out
}

// DensePull performs a pull-direction edgemap: every destination in every
// unit scans its in-neighbours for active sources while the kernel's Cond
// holds. Units own disjoint destination ranges, so the non-atomic
// kernel.Update is safe. Workers execute units with real goroutines;
// unitCosts are returned for makespan modeling.
func DensePull(g *graph.Graph, f *frontier.Frontier, k EdgeKernel, units []Range, workers int) (*frontier.Frontier, []int64) {
	in := f.Dense()
	out := make([]bool, g.NumVertices())
	unitCosts := make([]int64, len(units))
	sched.DynamicItems(workers, len(units), func(_, u int) {
		r := units[u]
		var cost int64
		for d := r.Lo; d < r.Hi; d++ {
			cost += CostVertex
			if !k.cond(d) {
				continue
			}
			ws := g.InWeights(d)
			for i, s := range g.InNeighbors(d) {
				cost += CostEdge
				if in[s] && k.Update(s, d, ws[i]) {
					out[d] = true
				}
				if !k.cond(d) {
					break
				}
			}
		}
		unitCosts[u] = cost
	})
	return frontier.FromDense(g, out), unitCosts
}

// DenseCOO performs GraphGrind's dense edgemap: each unit is a
// pre-materialized COO of one partition's in-edges, traversed in its stored
// order (CSR or Hilbert). ranges supplies the destination-vertex range of
// each partition: per-unit cost charges every owned vertex (the engine also
// walks per-partition vertex state) plus every edge. Partitions own disjoint
// destination sets, so the non-atomic kernel is safe.
func DenseCOO(g *graph.Graph, f *frontier.Frontier, k EdgeKernel, coos []*layout.COO, ranges []Range, workers int) (*frontier.Frontier, []int64) {
	in := f.Dense()
	out := make([]bool, g.NumVertices())
	unitCosts := make([]int64, len(coos))
	sched.DynamicItems(workers, len(coos), func(_, u int) {
		c := coos[u]
		cost := int64(CostVertex) * int64(ranges[u].Hi-ranges[u].Lo)
		for i := 0; i < c.Len(); i++ {
			cost += CostEdge
			d := c.Dst[i]
			if !in[c.Src[i]] || !k.cond(d) {
				continue
			}
			if k.Update(c.Src[i], d, c.Weight[i]) {
				out[d] = true
			}
		}
		unitCosts[u] = cost
	})
	return frontier.FromDense(g, out), unitCosts
}

// SparsePush performs a push-direction edgemap: active sources push along
// their out-edges using the atomic kernel. The frontier is cut into chunks
// of chunkSize sources; chunk costs are returned for makespan modeling.
func SparsePush(g *graph.Graph, f *frontier.Frontier, k EdgeKernel, chunkSize, workers int) (*frontier.Frontier, []int64) {
	srcs := f.Sparse()
	nChunks := (len(srcs) + chunkSize - 1) / chunkSize
	unitCosts := make([]int64, nChunks)
	flags := make([]uint32, g.NumVertices())
	outPerWorker := make([][]graph.VertexID, workers)
	sched.DynamicChunks(workers, len(srcs), chunkSize, func(w, lo, hi int) {
		var cost int64
		local := outPerWorker[w]
		for _, s := range srcs[lo:hi] {
			cost += CostVertex
			ws := g.OutWeights(s)
			for i, d := range g.OutNeighbors(s) {
				cost += CostEdge
				if !k.cond(d) {
					continue
				}
				if k.UpdateAtomic(s, d, ws[i]) {
					if atomic.CompareAndSwapUint32(&flags[d], 0, 1) {
						local = append(local, d)
					}
				}
			}
		}
		outPerWorker[w] = local
		unitCosts[lo/chunkSize] += cost
	})
	var total int
	for _, l := range outPerWorker {
		total += len(l)
	}
	outs := make([]graph.VertexID, 0, total)
	for _, l := range outPerWorker {
		outs = append(outs, l...)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	return frontier.FromVertices(g, outs), unitCosts
}

// VertexMapDynamic applies fn to the active vertices with dynamic chunking
// (Ligra). Returns the output frontier and per-chunk costs.
func VertexMapDynamic(g *graph.Graph, f *frontier.Frontier, fn func(v graph.VertexID) bool, chunkSize, workers int) (*frontier.Frontier, []int64) {
	vs := f.Sparse()
	nChunks := (len(vs) + chunkSize - 1) / chunkSize
	unitCosts := make([]int64, nChunks)
	keep := make([]bool, len(vs))
	sched.DynamicChunks(workers, len(vs), chunkSize, func(_, lo, hi int) {
		var cost int64
		for i := lo; i < hi; i++ {
			cost += CostVertex
			keep[i] = fn(vs[i])
		}
		unitCosts[lo/chunkSize] += cost
	})
	out := make([]graph.VertexID, 0, len(vs))
	for i, v := range vs {
		if keep[i] {
			out = append(out, v)
		}
	}
	return frontier.FromVertices(g, out), unitCosts
}

// VertexMapStatic applies fn to active vertices with the full vertex range
// [0, n) statically divided into `units` contiguous blocks, as Polymer and
// GraphGrind spread vertexmap iterations over all threads regardless of
// activity. Per-block cost counts only active vertices (inactive slots are
// skipped by the frontier check).
func VertexMapStatic(g *graph.Graph, f *frontier.Frontier, fn func(v graph.VertexID) bool, units, workers int) (*frontier.Frontier, []int64) {
	n := g.NumVertices()
	in := f.Dense()
	out := make([]bool, n)
	ranges := SplitRange(n, (n+units-1)/max(units, 1))
	unitCosts := make([]int64, len(ranges))
	sched.DynamicItems(workers, len(ranges), func(_, u int) {
		var cost int64
		r := ranges[u]
		for v := r.Lo; v < r.Hi; v++ {
			if !in[v] {
				continue
			}
			cost += CostVertex
			if fn(v) {
				out[v] = true
			}
		}
		unitCosts[u] = cost
	})
	return frontier.FromDense(g, out), unitCosts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BuildPartitionCOOs materializes one COO per destination range in the given
// order, in parallel.
func BuildPartitionCOOs(g *graph.Graph, ranges []Range, o layout.Order, workers int) ([]*layout.COO, error) {
	coos := make([]*layout.COO, len(ranges))
	var mu sync.Mutex
	var firstErr error
	sched.DynamicItems(workers, len(ranges), func(_, i int) {
		c, err := layout.BuildRange(g, ranges[i].Lo, ranges[i].Hi, o)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		coos[i] = c
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return coos, nil
}
