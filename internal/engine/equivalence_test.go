package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/frontier"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/layout"
)

// TestPushPullEquivalenceQuick is the central traversal invariant: for any
// graph, any frontier and an order-insensitive kernel, sparse push, dense
// pull and COO traversal must apply the kernel to exactly the same edge
// multiset and activate exactly the same destinations.
func TestPushPullEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(120) + 2
		g, err := gen.ErdosRenyi(n, int64(rng.Intn(500)), seed)
		if err != nil {
			return false
		}
		// random frontier
		var vs []graph.VertexID
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				vs = append(vs, graph.VertexID(v))
			}
		}
		if len(vs) == 0 {
			vs = append(vs, 0)
		}

		run := func(mode int) ([]int64, *frontier.Frontier) {
			counts := make([]int64, n)
			k := EdgeKernel{
				Update: func(s, d graph.VertexID, _ int32) bool {
					atomic.AddInt64(&counts[d], 1)
					return true
				},
			}
			k.UpdateAtomic = k.Update
			fr := frontier.FromVertices(g, append([]graph.VertexID(nil), vs...))
			switch mode {
			case 0:
				out, _ := SparsePush(g, fr, k, 3, 4)
				return counts, out
			case 1:
				out, _ := DensePull(g, fr, k, SplitRange(n, 16), 4)
				return counts, out
			default:
				units := SplitRange(n, 16)
				coos, err := BuildPartitionCOOs(g, units, layout.HilbertOrder, 2)
				if err != nil {
					return nil, nil
				}
				out, _ := DenseCOO(g, fr, k, coos, units, 4)
				return counts, out
			}
		}
		cPush, fPush := run(0)
		cPull, fPull := run(1)
		cCOO, fCOO := run(2)
		if cCOO == nil {
			return false
		}
		for v := 0; v < n; v++ {
			if cPush[v] != cPull[v] || cPull[v] != cCOO[v] {
				return false
			}
			a := fPush.Has(graph.VertexID(v))
			if a != fPull.Has(graph.VertexID(v)) || a != fCOO.Has(graph.VertexID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Concurrency smoke: a racy counting kernel under real goroutine workers
// must still count every edge exactly once (engine-side dedup and chunking
// must not lose or duplicate work).
func TestSparsePushParallelExactness(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 3000, S: 1.0, MaxDegree: 200, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	perDst := make([]int64, g.NumVertices())
	var mu sync.Mutex
	k := EdgeKernel{
		UpdateAtomic: func(s, d graph.VertexID, _ int32) bool {
			atomic.AddInt64(&total, 1)
			mu.Lock()
			perDst[d]++
			mu.Unlock()
			return false
		},
	}
	k.Update = k.UpdateAtomic
	SparsePush(g, frontier.All(g), k, 7, 8)
	if total != g.NumEdges() {
		t.Fatalf("kernel applied %d times, want %d", total, g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if perDst[v] != g.InDegree(graph.VertexID(v)) {
			t.Fatalf("dst %d updated %d times, in-degree %d",
				v, perDst[v], g.InDegree(graph.VertexID(v)))
		}
	}
}
