// Package engine provides the shared edgemap/vertexmap machinery on which
// the three framework models (internal/ligra, internal/polymer,
// internal/graphgrind) are built. It mirrors the programming model common to
// Ligra, Polymer and GraphGrind: algorithms are iterations of
//
//   - EdgeMap(frontier, kernel): apply a kernel to every edge whose source
//     is active, returning the frontier of destinations the kernel
//     activated; traversal direction (sparse push vs dense pull) follows the
//     direction-optimization heuristic, and
//   - VertexMap(frontier, fn): apply fn to every active vertex, returning
//     the frontier of vertices for which fn returned true.
//
// # Modeled time
//
// The paper's results are wall-clock measurements on a 48-thread NUMA
// machine. This reproduction cannot assume multiple cores (the CI host has
// one), so parallel-loop timing is *modeled*: every traversal is decomposed
// into scheduling units (vertex chunks or graph partitions), the work in
// each unit is counted in deterministic cost units (edges scanned plus a
// weight per destination/source vertex touched), and the loop's modeled
// time is the makespan of those units under the engine's scheduling
// discipline — max block cost for static scheduling, greedy list-scheduling
// makespan for dynamic scheduling. Execution itself is still genuinely
// parallel (goroutines with atomic kernels), but reported times come from
// the deterministic model. DESIGN.md §1 documents this substitution.
package engine

import (
	"sort"
	"sync"

	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/numa"
)

// Cost-model weights, in abstract units of one edge scan.
const (
	// CostEdge is the cost of scanning one edge.
	CostEdge = 1
	// CostVertex is the cost of touching one destination vertex's state
	// (frontier check, value load/store, loop overhead).
	CostVertex = 4
)

// EdgeKernel is the per-edge computation supplied by an algorithm.
type EdgeKernel struct {
	// Update applies edge (s→d) with weight w; it returns true if d became
	// newly active. Called in pull (dense) traversal where a single worker
	// owns d, so it may be non-atomic.
	Update func(s, d graph.VertexID, w int32) bool
	// UpdateAtomic is the thread-safe variant used in push (sparse)
	// traversal where multiple workers may target d concurrently.
	UpdateAtomic func(s, d graph.VertexID, w int32) bool
	// Cond reports whether destination d still accepts updates; dense
	// traversal stops scanning d's in-edges once it returns false. A nil
	// Cond means "always true".
	Cond func(d graph.VertexID) bool
}

func (k EdgeKernel) cond(d graph.VertexID) bool {
	return k.Cond == nil || k.Cond(d)
}

// Engine is the interface all three framework models implement, and the
// interface the algorithm suite is written against.
type Engine interface {
	// Name identifies the framework model ("ligra", "polymer",
	// "graphgrind").
	Name() string
	// Graph returns the processed graph.
	Graph() *graph.Graph
	// EdgeMap applies k to all edges with active sources and returns the
	// frontier of activated destinations.
	EdgeMap(f *frontier.Frontier, k EdgeKernel) *frontier.Frontier
	// VertexMap applies fn to all active vertices and returns the frontier
	// of vertices for which fn returned true.
	VertexMap(f *frontier.Frontier, fn func(v graph.VertexID) bool) *frontier.Frontier
	// Metrics exposes the accumulated modeled-time accounting.
	Metrics() *Metrics
}

// StepKind labels one EdgeMap or VertexMap invocation in the metrics log.
type StepKind int

const (
	StepEdgeMapSparse StepKind = iota
	StepEdgeMapDense
	StepVertexMap
)

func (k StepKind) String() string {
	switch k {
	case StepEdgeMapSparse:
		return "edgemap-sparse"
	case StepEdgeMapDense:
		return "edgemap-dense"
	case StepVertexMap:
		return "vertexmap"
	default:
		return "unknown"
	}
}

// Step records the cost accounting of one parallel loop.
type Step struct {
	Kind           StepKind
	ActiveVertices int64
	ActiveEdges    int64 // out-edges of the input frontier
	TotalCost      int64
	Makespan       int64   // modeled loop time in cost units
	UnitCosts      []int64 // per scheduling unit
	// PartitionCosts holds per-graph-partition costs for partitioned
	// engines (Polymer, GraphGrind) in dense steps; nil otherwise.
	PartitionCosts []int64
}

// Metrics accumulates Step records and the total modeled time. Accumulation
// is mutex-guarded so engines cached in a concurrent-read context (the
// facade's View API) stay race-free; when several readers share one engine
// their steps interleave in the log. Direct field reads are safe once the
// engine is quiescent.
type Metrics struct {
	mu        sync.Mutex
	Steps     []Step
	ModelTime int64 // sum of step makespans
}

// Add appends a step and accumulates its makespan.
func (m *Metrics) Add(s Step) {
	m.mu.Lock()
	m.Steps = append(m.Steps, s)
	m.ModelTime += s.Makespan
	m.mu.Unlock()
}

// Sum totals a cost slice.
func Sum(costs []int64) int64 {
	var t int64
	for _, c := range costs {
		t += c
	}
	return t
}

// Reset clears the accumulated metrics.
func (m *Metrics) Reset() {
	m.mu.Lock()
	m.Steps = nil
	m.ModelTime = 0
	m.mu.Unlock()
}

// LastStep returns the most recent step, or nil.
func (m *Metrics) LastStep() *Step {
	if len(m.Steps) == 0 {
		return nil
	}
	return &m.Steps[len(m.Steps)-1]
}

// EdgeMapTime returns the modeled time spent in edgemap steps.
func (m *Metrics) EdgeMapTime() int64 {
	var t int64
	for _, s := range m.Steps {
		if s.Kind != StepVertexMap {
			t += s.Makespan
		}
	}
	return t
}

// VertexMapTime returns the modeled time spent in vertexmap steps.
func (m *Metrics) VertexMapTime() int64 {
	var t int64
	for _, s := range m.Steps {
		if s.Kind == StepVertexMap {
			t += s.Makespan
		}
	}
	return t
}

// MakespanStatic models a statically scheduled parallel loop: the units are
// cut into `workers` contiguous blocks with equal unit counts (the loop
// bounds are divided up front, blind to cost), and the loop takes as long as
// its most expensive block.
func MakespanStatic(costs []int64, workers int) int64 {
	n := len(costs)
	if n == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	per := (n + workers - 1) / workers
	var max int64
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		var sum int64
		for _, c := range costs[lo:hi] {
			sum += c
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// MakespanDynamic models a work-stealing scheduler (Cilk): idle workers
// steal the largest remaining work, which classic scheduling theory
// approximates as LPT list scheduling — assign units in decreasing cost
// order to the least-loaded worker. Plain in-order list scheduling would
// charge an end-of-schedule straggler whenever a large unit happens to come
// last, an artifact of unit ordering that work stealing does not exhibit.
func MakespanDynamic(costs []int64, workers int) int64 {
	if len(costs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), costs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	return makespanFIFO(sorted, workers)
}

// makespanFIFO is in-order list scheduling: units are handed out in index
// order to the first free worker, as a FIFO work queue does.
func makespanFIFO(costs []int64, workers int) int64 {
	if len(costs) == 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		var sum int64
		for _, c := range costs {
			sum += c
		}
		return sum
	}
	loads := make([]int64, workers)
	for _, c := range costs {
		best := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		loads[best] += c
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// MakespanGrouped models GraphGrind's two-level scheduling: units are cut
// into `groups` contiguous blocks (static across sockets), each processed by
// workersPerGroup workers pulling from a FIFO queue; the loop takes as long
// as the slowest group. The FIFO model (not LPT) is deliberate: GraphGrind
// cannot subdivide or reorder partitions at run time.
func MakespanGrouped(costs []int64, groups, workersPerGroup int) int64 {
	n := len(costs)
	if n == 0 {
		return 0
	}
	if groups < 1 {
		groups = 1
	}
	per := (n + groups - 1) / groups
	var max int64
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		if t := makespanFIFO(costs[lo:hi], workersPerGroup); t > max {
			max = t
		}
	}
	return max
}

// PatchStats reports how much of an engine rebuild was avoided by patching:
// partitions whose materialized structures (COOs, partition metadata,
// scheduling units) were carried over from the previous epoch's engine
// versus rebuilt, and the edges owned by each group. Remapped partitions
// sit in between: their edge content is unchanged but a segment-local
// renumbering moved some referenced vertex IDs, so their structures were
// copied with IDs rewritten — a single linear pass, cheaper than the
// gather-and-sort of a rebuild.
type PatchStats struct {
	PartsRebuilt, PartsReused int
	PartsRemapped             int
	EdgesRebuilt, EdgesReused int64
	EdgesRemapped             int64
}

// Add accumulates other into s.
func (s *PatchStats) Add(other PatchStats) {
	s.PartsRebuilt += other.PartsRebuilt
	s.PartsReused += other.PartsReused
	s.PartsRemapped += other.PartsRemapped
	s.EdgesRebuilt += other.EdgesRebuilt
	s.EdgesReused += other.EdgesReused
	s.EdgesRemapped += other.EdgesRemapped
}

// Config carries the knobs shared by the three engines.
type Config struct {
	// Topology is the virtual NUMA machine; the zero value selects the
	// paper's 4×12 topology.
	Topology numa.Topology
	// SparseChunk is the number of frontier vertices per dynamic scheduling
	// unit in sparse traversal (default 64).
	SparseChunk int
}

// WithDefaults fills zero-valued fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.Topology.Sockets == 0 {
		c.Topology = numa.Default()
	}
	if c.SparseChunk <= 0 {
		c.SparseChunk = 64
	}
	return c
}
