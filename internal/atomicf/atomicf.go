// Package atomicf provides the lock-free update primitives the graph
// algorithms use in push-mode (sparse) edge traversal, where multiple
// workers may update the same destination concurrently: float64 accumulation
// and write-min, built on compare-and-swap over the value's bit pattern.
package atomicf

import (
	"math"
	"sync/atomic"
)

// AddF64 atomically adds delta to the float64 stored (as bits) in *p.
func AddF64(p *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(p)
		newVal := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(p, old, newVal) {
			return
		}
	}
}

// LoadF64 atomically loads the float64 stored in *p.
func LoadF64(p *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(p))
}

// StoreF64 atomically stores v into *p.
func StoreF64(p *uint64, v float64) {
	atomic.StoreUint64(p, math.Float64bits(v))
}

// F64Bits converts a float64 slice-compatible value for initialization.
func F64Bits(v float64) uint64 { return math.Float64bits(v) }

// F64From converts stored bits back to float64 (non-atomic).
func F64From(b uint64) float64 { return math.Float64frombits(b) }

// MinI64 atomically lowers *p to v if v < *p; reports whether it wrote.
func MinI64(p *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(p, old, v) {
			return true
		}
	}
}

// MinU32 atomically lowers *p to v if v < *p; reports whether it wrote.
func MinU32(p *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(p, old, v) {
			return true
		}
	}
}

// CASI32 performs a single compare-and-swap on an int32 (re-exported for
// symmetric call sites in the algorithms).
func CASI32(p *int32, old, new int32) bool {
	return atomic.CompareAndSwapInt32(p, old, new)
}
