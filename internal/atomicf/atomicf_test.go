package atomicf

import (
	"math"
	"sync"
	"testing"
)

func TestAddF64Concurrent(t *testing.T) {
	var bits uint64
	const workers = 8
	const adds = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				AddF64(&bits, 0.5)
			}
		}()
	}
	wg.Wait()
	if got := LoadF64(&bits); got != workers*adds*0.5 {
		t.Fatalf("sum = %v, want %v", got, workers*adds*0.5)
	}
}

func TestStoreLoadF64(t *testing.T) {
	var bits uint64
	StoreF64(&bits, -3.25)
	if got := LoadF64(&bits); got != -3.25 {
		t.Fatalf("got %v", got)
	}
	if F64From(F64Bits(math.Pi)) != math.Pi {
		t.Fatal("bits round trip failed")
	}
}

func TestMinI64(t *testing.T) {
	v := int64(100)
	if !MinI64(&v, 50) || v != 50 {
		t.Fatalf("MinI64 lower failed: %d", v)
	}
	if MinI64(&v, 70) || v != 50 {
		t.Fatalf("MinI64 should not raise: %d", v)
	}
	if MinI64(&v, 50) {
		t.Fatal("MinI64 equal should not write")
	}
}

func TestMinI64Concurrent(t *testing.T) {
	v := int64(math.MaxInt64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1000; i > 0; i-- {
				MinI64(&v, int64(i+w))
			}
		}(w)
	}
	wg.Wait()
	if v != 1 {
		t.Fatalf("concurrent min = %d, want 1", v)
	}
}

func TestMinU32(t *testing.T) {
	v := uint32(10)
	if !MinU32(&v, 3) || v != 3 {
		t.Fatalf("MinU32 failed: %d", v)
	}
	if MinU32(&v, 9) {
		t.Fatal("MinU32 raised")
	}
}

func TestCASI32(t *testing.T) {
	v := int32(-1)
	if !CASI32(&v, -1, 7) || v != 7 {
		t.Fatal("CAS failed")
	}
	if CASI32(&v, -1, 9) {
		t.Fatal("stale CAS succeeded")
	}
}
