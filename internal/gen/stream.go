package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// StreamConfig parameterizes a synthetic edge-update stream over an existing
// graph. Streams model the churn a live serving system sees: a mixture of
// edge insertions (new follows, new roads) and deletions (unfollows, road
// closures), with insertion endpoints drawn preferentially toward already
// popular vertices so the degree distribution keeps its shape.
type StreamConfig struct {
	// Ops is the number of logical operations to generate. Without Mirror
	// one logical operation is one update; with Mirror a non-self-loop
	// operation emits two paired updates.
	Ops int
	// DeleteFrac is the probability that an update deletes an existing live
	// edge instead of inserting a new one (skipped when no live edge
	// remains). In [0,1).
	DeleteFrac float64
	// PreferentialFrac is the probability that an inserted edge's endpoints
	// are copied from a uniformly random live edge (source from its source,
	// destination from its destination — i.e. degree-proportional sampling)
	// rather than drawn uniformly. In [0,1].
	PreferentialFrac float64
	// Weighted attaches uniform random weights in [1,100] to insertions and
	// emits deletions carrying the weight of the edge they target, so a
	// weight-aware consumer can cancel the exact parallel edge.
	Weighted bool
	// Mirror emits undirected churn: every insertion or deletion of (u,v)
	// with u ≠ v is immediately followed by the paired reverse update (v,u)
	// with the same weight. Requires a symmetric input graph (every edge's
	// reverse present with equal weight and multiplicity) so that mirrored
	// deletions always target live edges.
	Mirror bool
	// GrowFrac is the probability that an insertion attaches a
	// never-before-seen vertex: new vertices take the next dense IDs beyond
	// the base graph (n, n+1, …), arrive as one endpoint of their first
	// edge (source or destination with equal probability, the other
	// endpoint drawn as usual), and participate in later churn like any
	// other vertex. Consumers must admit out-of-range endpoints (the
	// dynamic subsystem's AutoGrow). In [0,1); incompatible with Mirror.
	GrowFrac float64
	Seed     int64
}

// EdgeStream generates a deterministic, timestamped update stream against g.
// Every deletion targets an edge that is live at its point in the stream
// (counting earlier stream insertions and deletions), so replaying the
// stream in order against g is always valid.
func EdgeStream(g *graph.Graph, cfg StreamConfig) ([]graph.EdgeUpdate, error) {
	if cfg.Ops < 0 {
		return nil, fmt.Errorf("gen: stream op count must be non-negative, got %d", cfg.Ops)
	}
	if cfg.DeleteFrac < 0 || cfg.DeleteFrac >= 1 {
		return nil, fmt.Errorf("gen: DeleteFrac out of range: %v", cfg.DeleteFrac)
	}
	if cfg.PreferentialFrac < 0 || cfg.PreferentialFrac > 1 {
		return nil, fmt.Errorf("gen: PreferentialFrac out of range: %v", cfg.PreferentialFrac)
	}
	if cfg.GrowFrac < 0 || cfg.GrowFrac >= 1 {
		return nil, fmt.Errorf("gen: GrowFrac out of range: %v", cfg.GrowFrac)
	}
	if cfg.GrowFrac > 0 && cfg.Mirror {
		return nil, fmt.Errorf("gen: GrowFrac and Mirror cannot be combined")
	}
	n := g.NumVertices()
	if n == 0 && cfg.Ops > 0 {
		return nil, fmt.Errorf("gen: cannot stream over an empty graph")
	}
	if cfg.Mirror {
		return mirroredEdgeStream(g, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// live mirrors the evolving edge multiset; index order is irrelevant
	// (deletions swap-remove), only membership matters. next is the next
	// unseen dense vertex ID a growth insertion will mint.
	live := g.Edges()
	next := graph.VertexID(n)
	updates := make([]graph.EdgeUpdate, 0, cfg.Ops)
	pickExisting := func() graph.VertexID {
		if len(live) > 0 && rng.Float64() < cfg.PreferentialFrac {
			e := live[rng.Intn(len(live))]
			if rng.Intn(2) == 0 {
				return e.Src
			}
			return e.Dst
		}
		return graph.VertexID(rng.Intn(int(next)))
	}
	for t := 0; t < cfg.Ops; t++ {
		if len(live) > 0 && rng.Float64() < cfg.DeleteFrac {
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			del := graph.EdgeUpdate{Time: int64(t), Src: e.Src, Dst: e.Dst, Del: true}
			if cfg.Weighted {
				del.Weight = e.Weight
			}
			updates = append(updates, del)
			continue
		}
		var src, dst graph.VertexID
		if cfg.GrowFrac > 0 && rng.Float64() < cfg.GrowFrac {
			// A vertex arrival: the newcomer's first edge connects it to
			// the existing graph (either direction — a new account follows
			// someone, or is discovered and followed). The partner is drawn
			// before next is minted, so it is always an existing vertex.
			other := pickExisting()
			nv := next
			next++
			if rng.Intn(2) == 0 {
				src, dst = nv, other
			} else {
				src, dst = other, nv
			}
		} else if len(live) > 0 && rng.Float64() < cfg.PreferentialFrac {
			// Sampling a uniform live edge and copying its endpoints draws
			// src ∝ out-degree and dst ∝ in-degree: preferential attachment
			// without any auxiliary weight structure.
			src = live[rng.Intn(len(live))].Src
			dst = live[rng.Intn(len(live))].Dst
		} else {
			src = graph.VertexID(rng.Intn(int(next)))
			dst = graph.VertexID(rng.Intn(int(next)))
		}
		w := int32(1)
		if cfg.Weighted {
			w = int32(rng.Intn(100) + 1)
		}
		live = append(live, graph.Edge{Src: src, Dst: dst, Weight: w})
		updates = append(updates, graph.EdgeUpdate{Time: int64(t), Src: src, Dst: dst, Weight: w})
	}
	return updates, nil
}

// mirroredEdgeStream is the Mirror variant of EdgeStream: the live multiset
// is tracked in canonical orientation (Src ≤ Dst, one entry per undirected
// edge) and every operation on (u,v) with u ≠ v emits the paired reverse
// update, so the live edge set stays symmetric throughout the stream.
func mirroredEdgeStream(g *graph.Graph, cfg StreamConfig) ([]graph.EdgeUpdate, error) {
	if err := checkSymmetric(g); err != nil {
		return nil, fmt.Errorf("gen: Mirror requires a symmetric graph: %w", err)
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var live []graph.Edge
	for _, e := range g.Edges() {
		if e.Src <= e.Dst {
			live = append(live, e)
		}
	}
	updates := make([]graph.EdgeUpdate, 0, 2*cfg.Ops)
	t := int64(0)
	emit := func(u graph.EdgeUpdate) {
		u.Time = t
		t++
		updates = append(updates, u)
	}
	for op := 0; op < cfg.Ops; op++ {
		if len(live) > 0 && rng.Float64() < cfg.DeleteFrac {
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			var w int32
			if cfg.Weighted {
				w = e.Weight
			}
			emit(graph.EdgeUpdate{Src: e.Src, Dst: e.Dst, Weight: w, Del: true})
			if e.Src != e.Dst {
				emit(graph.EdgeUpdate{Src: e.Dst, Dst: e.Src, Weight: w, Del: true})
			}
			continue
		}
		var u, v graph.VertexID
		if len(live) > 0 && rng.Float64() < cfg.PreferentialFrac {
			// Degree-proportional endpoint sampling. Entries are stored in
			// canonical orientation (Src ≤ Dst), so taking a fixed side
			// would bias toward low (or high) vertex IDs; a coin flip per
			// sampled edge restores the undirected degree distribution.
			pick := func() graph.VertexID {
				e := live[rng.Intn(len(live))]
				if rng.Intn(2) == 0 {
					return e.Src
				}
				return e.Dst
			}
			u, v = pick(), pick()
		} else {
			u = graph.VertexID(rng.Intn(n))
			v = graph.VertexID(rng.Intn(n))
		}
		w := int32(1)
		if cfg.Weighted {
			w = int32(rng.Intn(100) + 1)
		}
		if u > v {
			u, v = v, u
		}
		live = append(live, graph.Edge{Src: u, Dst: v, Weight: w})
		emit(graph.EdgeUpdate{Src: u, Dst: v, Weight: w})
		if u != v {
			emit(graph.EdgeUpdate{Src: v, Dst: u, Weight: w})
		}
	}
	return updates, nil
}

// checkSymmetric verifies that every adjacency row's reverse content matches:
// for each vertex, the multiset of (neighbor, weight) out-entries equals the
// multiset of in-entries.
func checkSymmetric(g *graph.Graph) error {
	type entry struct {
		id graph.VertexID
		w  int32
	}
	for v := 0; v < g.NumVertices(); v++ {
		out := g.OutNeighbors(graph.VertexID(v))
		in := g.InNeighbors(graph.VertexID(v))
		if len(out) != len(in) {
			return fmt.Errorf("vertex %d has out-degree %d but in-degree %d", v, len(out), len(in))
		}
		ow, iw := g.OutWeights(graph.VertexID(v)), g.InWeights(graph.VertexID(v))
		oe := make([]entry, len(out))
		ie := make([]entry, len(in))
		for i := range out {
			oe[i] = entry{out[i], ow[i]}
			ie[i] = entry{in[i], iw[i]}
		}
		less := func(s []entry) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i].id != s[j].id {
					return s[i].id < s[j].id
				}
				return s[i].w < s[j].w
			}
		}
		sort.Slice(oe, less(oe))
		sort.Slice(ie, less(ie))
		for i := range oe {
			if oe[i] != ie[i] {
				return fmt.Errorf("vertex %d edge (%d,%d,w%d) lacks its reverse", v, v, oe[i].id, oe[i].w)
			}
		}
	}
	return nil
}

// streamShape maps a workload recipe to the churn profile its real-world
// counterpart exhibits.
var streamShape = map[string]struct {
	deleteFrac       float64
	preferentialFrac float64
}{
	"twitter":     {0.30, 0.7}, // follow/unfollow churn, strong rich-get-richer
	"friendster":  {0.35, 0.5}, // decaying social network: heavy deletion
	"orkut":       {0.30, 0.5},
	"livejournal": {0.25, 0.6},
	"yahoo":       {0.20, 0.7},
	"usaroad":     {0.10, 0.1}, // road openings/closures: rare, spatially uniform
	"powerlaw":    {0.30, 0.6},
	"rmat":        {0.25, 0.6},
}

// RecipeStreamOptions tunes StreamFromRecipeOpts beyond the churn profile.
type RecipeStreamOptions struct {
	// Mirror emits paired (u,v)/(v,u) updates so the stream preserves the
	// symmetry of an undirected recipe graph. Only valid for undirected
	// recipes (orkut, usaroad, powerlaw).
	Mirror bool
	// GrowFrac interleaves vertex arrivals with the edge churn: each
	// insertion mints a never-before-seen vertex with this probability
	// (see StreamConfig.GrowFrac). Incompatible with Mirror.
	GrowFrac float64
}

// StreamFromRecipe builds the named workload graph (as Recipe.Build does)
// and derives a matching update stream: the churn profile (deletion rate,
// attachment skew) follows the recipe's real-world counterpart, and the
// stream is weighted exactly when the recipe graph is. Both the graph and
// the stream are deterministic in (scale, seed).
func StreamFromRecipe(name string, scale float64, ops int, seed int64) (*graph.Graph, []graph.EdgeUpdate, error) {
	return StreamFromRecipeOpts(name, scale, ops, seed, RecipeStreamOptions{})
}

// StreamFromRecipeOpts is StreamFromRecipe with extra options.
func StreamFromRecipeOpts(name string, scale float64, ops int, seed int64, opts RecipeStreamOptions) (*graph.Graph, []graph.EdgeUpdate, error) {
	r, err := RecipeByName(name)
	if err != nil {
		return nil, nil, err
	}
	if opts.Mirror && r.Directed {
		return nil, nil, fmt.Errorf("gen: recipe %q is directed; Mirror applies to undirected recipes only", name)
	}
	g, err := r.Build(scale, seed)
	if err != nil {
		return nil, nil, err
	}
	shape := streamShape[name]
	updates, err := EdgeStream(g, StreamConfig{
		Ops:              ops,
		DeleteFrac:       shape.deleteFrac,
		PreferentialFrac: shape.preferentialFrac,
		Weighted:         g.Weighted(),
		Mirror:           opts.Mirror,
		GrowFrac:         opts.GrowFrac,
		Seed:             seed + 1,
	})
	if err != nil {
		return nil, nil, err
	}
	return g, updates, nil
}
