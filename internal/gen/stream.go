package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// StreamConfig parameterizes a synthetic edge-update stream over an existing
// graph. Streams model the churn a live serving system sees: a mixture of
// edge insertions (new follows, new roads) and deletions (unfollows, road
// closures), with insertion endpoints drawn preferentially toward already
// popular vertices so the degree distribution keeps its shape.
type StreamConfig struct {
	// Ops is the number of updates to generate.
	Ops int
	// DeleteFrac is the probability that an update deletes an existing live
	// edge instead of inserting a new one (skipped when no live edge
	// remains). In [0,1).
	DeleteFrac float64
	// PreferentialFrac is the probability that an inserted edge's endpoints
	// are copied from a uniformly random live edge (source from its source,
	// destination from its destination — i.e. degree-proportional sampling)
	// rather than drawn uniformly. In [0,1].
	PreferentialFrac float64
	// Weighted attaches uniform random weights in [1,100] to insertions.
	Weighted bool
	Seed     int64
}

// EdgeStream generates a deterministic, timestamped update stream against g.
// Every deletion targets an edge that is live at its point in the stream
// (counting earlier stream insertions and deletions), so replaying the
// stream in order against g is always valid.
func EdgeStream(g *graph.Graph, cfg StreamConfig) ([]graph.EdgeUpdate, error) {
	if cfg.Ops < 0 {
		return nil, fmt.Errorf("gen: stream op count must be non-negative, got %d", cfg.Ops)
	}
	if cfg.DeleteFrac < 0 || cfg.DeleteFrac >= 1 {
		return nil, fmt.Errorf("gen: DeleteFrac out of range: %v", cfg.DeleteFrac)
	}
	if cfg.PreferentialFrac < 0 || cfg.PreferentialFrac > 1 {
		return nil, fmt.Errorf("gen: PreferentialFrac out of range: %v", cfg.PreferentialFrac)
	}
	n := g.NumVertices()
	if n == 0 && cfg.Ops > 0 {
		return nil, fmt.Errorf("gen: cannot stream over an empty graph")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// live mirrors the evolving edge multiset; index order is irrelevant
	// (deletions swap-remove), only membership matters.
	live := g.Edges()
	updates := make([]graph.EdgeUpdate, 0, cfg.Ops)
	for t := 0; t < cfg.Ops; t++ {
		if len(live) > 0 && rng.Float64() < cfg.DeleteFrac {
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			updates = append(updates, graph.EdgeUpdate{Time: int64(t), Src: e.Src, Dst: e.Dst, Del: true})
			continue
		}
		var src, dst graph.VertexID
		if len(live) > 0 && rng.Float64() < cfg.PreferentialFrac {
			// Sampling a uniform live edge and copying its endpoints draws
			// src ∝ out-degree and dst ∝ in-degree: preferential attachment
			// without any auxiliary weight structure.
			src = live[rng.Intn(len(live))].Src
			dst = live[rng.Intn(len(live))].Dst
		} else {
			src = graph.VertexID(rng.Intn(n))
			dst = graph.VertexID(rng.Intn(n))
		}
		w := int32(1)
		if cfg.Weighted {
			w = int32(rng.Intn(100) + 1)
		}
		live = append(live, graph.Edge{Src: src, Dst: dst, Weight: w})
		updates = append(updates, graph.EdgeUpdate{Time: int64(t), Src: src, Dst: dst, Weight: w})
	}
	return updates, nil
}

// streamShape maps a workload recipe to the churn profile its real-world
// counterpart exhibits.
var streamShape = map[string]struct {
	deleteFrac       float64
	preferentialFrac float64
}{
	"twitter":     {0.30, 0.7}, // follow/unfollow churn, strong rich-get-richer
	"friendster":  {0.35, 0.5}, // decaying social network: heavy deletion
	"orkut":       {0.30, 0.5},
	"livejournal": {0.25, 0.6},
	"yahoo":       {0.20, 0.7},
	"usaroad":     {0.10, 0.1}, // road openings/closures: rare, spatially uniform
	"powerlaw":    {0.30, 0.6},
	"rmat":        {0.25, 0.6},
}

// StreamFromRecipe builds the named workload graph (as Recipe.Build does)
// and derives a matching update stream: the churn profile (deletion rate,
// attachment skew) follows the recipe's real-world counterpart, and the
// stream is weighted exactly when the recipe graph is. Both the graph and
// the stream are deterministic in (scale, seed).
func StreamFromRecipe(name string, scale float64, ops int, seed int64) (*graph.Graph, []graph.EdgeUpdate, error) {
	r, err := RecipeByName(name)
	if err != nil {
		return nil, nil, err
	}
	g, err := r.Build(scale, seed)
	if err != nil {
		return nil, nil, err
	}
	shape := streamShape[name]
	updates, err := EdgeStream(g, StreamConfig{
		Ops:              ops,
		DeleteFrac:       shape.deleteFrac,
		PreferentialFrac: shape.preferentialFrac,
		Weighted:         g.Weighted(),
		Seed:             seed + 1,
	})
	if err != nil {
		return nil, nil, err
	}
	return g, updates, nil
}
