package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Recipe describes a scaled-down analogue of one of the paper's Table I
// graphs. Scale multiplies the default vertex count; Scale = 1 yields sizes
// small enough for CI while preserving the graph's shape parameters (degree
// skew, zero-degree fractions, directedness).
type Recipe struct {
	Name       string
	PaperName  string // the data set the recipe stands in for
	Directed   bool
	Build      func(scale float64, seed int64) (*graph.Graph, error)
	PaperStats string // the Table I row being mimicked, for documentation
}

// scaled returns max(floor(base*scale), min).
func scaled(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		return min
	}
	return v
}

// Recipes lists the eight workload graphs in the order of the paper's
// Table I.
func Recipes() []Recipe {
	return []Recipe{
		{
			Name:      "twitter",
			PaperName: "Twitter (41.7M v, 1.467B e)",
			Directed:  true,
			Build: func(scale float64, seed int64) (*graph.Graph, error) {
				n := scaled(100_000, scale, 2_000)
				return PowerLaw(PowerLawConfig{
					N: n, S: 1.0, MaxDegree: n / 50,
					ZeroInFrac: 0.14, Weighted: true, SourceSkew: 0.6, IDCorrelation: 0.5, Seed: seed,
				})
			},
			PaperStats: "max in-degree 770155, 14% zero in-degree, directed",
		},
		{
			Name:      "friendster",
			PaperName: "Friendster (125M v, 1.81B e)",
			Directed:  true,
			Build: func(scale float64, seed int64) (*graph.Graph, error) {
				n := scaled(120_000, scale, 2_000)
				// Friendster's degree cap is comparatively low (4223 on
				// 125M vertices); keep the max degree small relative to n.
				return PowerLaw(PowerLawConfig{
					N: n, S: 0.8, MaxDegree: n / 400,
					ZeroInFrac: 0.48, Weighted: true, SourceSkew: 0.4, IDCorrelation: 0.4, Seed: seed,
				})
			},
			PaperStats: "max degree 4223, 48% zero in-degree, directed",
		},
		{
			Name:      "orkut",
			PaperName: "Orkut (3.07M v, 234M e)",
			Directed:  false,
			Build: func(scale float64, seed int64) (*graph.Graph, error) {
				n := scaled(40_000, scale, 1_000)
				return UndirectedPowerLaw(PowerLawConfig{
					N: n, S: 1.0, MaxDegree: n / 90,
					ZeroInFrac: 0, Weighted: true, IDCorrelation: 0.4, Seed: seed,
				})
			},
			PaperStats: "undirected, ~0% zero-degree vertices",
		},
		{
			Name:      "livejournal",
			PaperName: "LiveJournal (4.85M v, 69M e)",
			Directed:  true,
			Build: func(scale float64, seed int64) (*graph.Graph, error) {
				n := scaled(60_000, scale, 1_000)
				return PowerLaw(PowerLawConfig{
					N: n, S: 1.1, MaxDegree: n / 60,
					ZeroInFrac: 0.07, Weighted: true, SourceSkew: 0.5, IDCorrelation: 0.5, Seed: seed,
				})
			},
			PaperStats: "max degree 13906, 7% zero in-degree, directed",
		},
		{
			Name:      "yahoo",
			PaperName: "Yahoo_mem (1.64M v, 30.4M e)",
			Directed:  false,
			Build: func(scale float64, seed int64) (*graph.Graph, error) {
				n := scaled(25_000, scale, 1_000)
				return UndirectedPowerLaw(PowerLawConfig{
					N: n, S: 0.85, MaxDegree: n / 8,
					ZeroInFrac: 0, Weighted: true, IDCorrelation: 0.4, Seed: seed,
				})
			},
			PaperStats: "undirected, 0% zero-degree, high skew (the paper's worst balance row: δ=9, Δ=3)",
		},
		{
			Name:      "usaroad",
			PaperName: "USAroad (23.9M v, 58M e)",
			Directed:  false,
			Build: func(scale float64, seed int64) (*graph.Graph, error) {
				side := scaled(260, scale, 40) // side^2 vertices
				return RoadNetwork(side, side, seed)
			},
			PaperStats: "max degree 9, near-uniform degree, undirected, strong spatial locality",
		},
		{
			Name:      "powerlaw",
			PaperName: "Powerlaw α=2 (100M v, 294M e, SNAP generator)",
			Directed:  false,
			Build: func(scale float64, seed int64) (*graph.Graph, error) {
				n := scaled(100_000, scale, 2_000)
				// α = 2 corresponds to s = 1/(α-1) = 1.
				return UndirectedPowerLaw(PowerLawConfig{
					N: n, S: 1.0, MaxDegree: n / 100,
					ZeroInFrac: 0, Weighted: false, IDCorrelation: 0.3, Seed: seed,
				})
			},
			PaperStats: "synthetic power-law with α=2, undirected",
		},
		{
			Name:      "rmat",
			PaperName: "RMAT27 (134M v, 1.342B e)",
			Directed:  true,
			Build: func(scale float64, seed int64) (*graph.Graph, error) {
				sc := uint(16)
				switch {
				case scale < 0.3:
					sc = 13
				case scale < 1:
					sc = 14
				case scale >= 4:
					sc = 18
				}
				// Milder skew than RMAT27's canonical (0.57, 0.19, 0.19):
				// the Theorem 1 precondition |E| ≥ N(P-1) requires
				// (a+c)^-scale ≥ P, which the canonical parameters violate
				// at reproduction scale (they hold only at scale 27). The
				// paper's 69% isolated vertices come from RMAT's sparse ID
				// space; PadIsolated reproduces that. See DESIGN.md §1.
				g, err := RMAT(sc, 10, 0.42, 0.21, 0.21, seed)
				if err != nil {
					return nil, err
				}
				return PadIsolated(g, 2.5, seed+1)
			},
			PaperStats: "max degree 812983, 69% zero in- and out-degree, directed",
		},
	}
}

// RecipeByName returns the recipe with the given Name.
func RecipeByName(name string) (Recipe, error) {
	for _, r := range Recipes() {
		if r.Name == name {
			return r, nil
		}
	}
	names := make([]string, 0, 8)
	for _, r := range Recipes() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return Recipe{}, fmt.Errorf("gen: unknown recipe %q (have %v)", name, names)
}
