package gen

import (
	"testing"

	"repro/internal/graph"
)

// replayable checks that every deletion targets a live edge when replayed in
// order, and returns the final live edge count.
func replayable(t *testing.T, g *graph.Graph, updates []graph.EdgeUpdate) int64 {
	t.Helper()
	type key struct{ s, d graph.VertexID }
	count := make(map[key]int64)
	live := g.NumEdges()
	for _, e := range g.Edges() {
		count[key{e.Src, e.Dst}]++
	}
	for i, u := range updates {
		k := key{u.Src, u.Dst}
		if u.Del {
			if count[k] <= 0 {
				t.Fatalf("update %d deletes non-live edge (%d,%d)", i, u.Src, u.Dst)
			}
			count[k]--
			live--
		} else {
			count[k]++
			live++
		}
	}
	return live
}

func TestEdgeStreamValidAndDeterministic(t *testing.T) {
	g, err := ErdosRenyi(500, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{Ops: 4000, DeleteFrac: 0.35, PreferentialFrac: 0.6, Seed: 17}
	a, err := EdgeStream(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Ops {
		t.Fatalf("got %d updates, want %d", len(a), cfg.Ops)
	}
	replayable(t, g, a)

	b, err := EdgeStream(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at update %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := EdgeStream(g, StreamConfig{Ops: cfg.Ops, DeleteFrac: cfg.DeleteFrac, PreferentialFrac: cfg.PreferentialFrac, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestEdgeStreamTimestampsAndMix(t *testing.T) {
	g, err := ErdosRenyi(200, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := EdgeStream(g, StreamConfig{Ops: 5000, DeleteFrac: 0.3, PreferentialFrac: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var dels int
	for i, u := range updates {
		if u.Time != int64(i) {
			t.Fatalf("update %d has time %d", i, u.Time)
		}
		if u.Del {
			dels++
		}
	}
	frac := float64(dels) / float64(len(updates))
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("deletion fraction %.3f far from configured 0.3", frac)
	}
}

func TestEdgeStreamWeights(t *testing.T) {
	g, err := ErdosRenyi(50, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := EdgeStream(g, StreamConfig{Ops: 500, Weighted: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range updates {
		if u.Del {
			continue
		}
		if u.Weight < 1 || u.Weight > 100 {
			t.Fatalf("update %d has weight %d outside [1,100]", i, u.Weight)
		}
	}
}

func TestEdgeStreamValidatesConfig(t *testing.T) {
	g, err := ErdosRenyi(10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EdgeStream(g, StreamConfig{Ops: -1}); err == nil {
		t.Error("expected error for negative ops")
	}
	if _, err := EdgeStream(g, StreamConfig{Ops: 1, DeleteFrac: 1}); err == nil {
		t.Error("expected error for DeleteFrac = 1")
	}
	if _, err := EdgeStream(g, StreamConfig{Ops: 1, PreferentialFrac: 1.5}); err == nil {
		t.Error("expected error for PreferentialFrac > 1")
	}
}

func TestStreamFromRecipe(t *testing.T) {
	for _, name := range []string{"powerlaw", "usaroad", "twitter"} {
		g, updates, err := StreamFromRecipe(name, 0.05, 2000, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(updates) != 2000 {
			t.Fatalf("%s: got %d updates", name, len(updates))
		}
		replayable(t, g, updates)
		for i, u := range updates {
			if !u.Del && !g.Weighted() && u.Weight != 1 {
				t.Fatalf("%s: unweighted recipe produced weight %d at update %d", name, u.Weight, i)
			}
		}
	}
	if _, _, err := StreamFromRecipe("nope", 1, 10, 1); err == nil {
		t.Error("expected error for unknown recipe")
	}
}
