package gen

import (
	"testing"

	"repro/internal/graph"
)

// replayable checks that every deletion targets a live edge when replayed in
// order, and returns the final live edge count.
func replayable(t *testing.T, g *graph.Graph, updates []graph.EdgeUpdate) int64 {
	t.Helper()
	type key struct{ s, d graph.VertexID }
	count := make(map[key]int64)
	live := g.NumEdges()
	for _, e := range g.Edges() {
		count[key{e.Src, e.Dst}]++
	}
	for i, u := range updates {
		k := key{u.Src, u.Dst}
		if u.Del {
			if count[k] <= 0 {
				t.Fatalf("update %d deletes non-live edge (%d,%d)", i, u.Src, u.Dst)
			}
			count[k]--
			live--
		} else {
			count[k]++
			live++
		}
	}
	return live
}

func TestEdgeStreamValidAndDeterministic(t *testing.T) {
	g, err := ErdosRenyi(500, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{Ops: 4000, DeleteFrac: 0.35, PreferentialFrac: 0.6, Seed: 17}
	a, err := EdgeStream(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Ops {
		t.Fatalf("got %d updates, want %d", len(a), cfg.Ops)
	}
	replayable(t, g, a)

	b, err := EdgeStream(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at update %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := EdgeStream(g, StreamConfig{Ops: cfg.Ops, DeleteFrac: cfg.DeleteFrac, PreferentialFrac: cfg.PreferentialFrac, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestEdgeStreamTimestampsAndMix(t *testing.T) {
	g, err := ErdosRenyi(200, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := EdgeStream(g, StreamConfig{Ops: 5000, DeleteFrac: 0.3, PreferentialFrac: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var dels int
	for i, u := range updates {
		if u.Time != int64(i) {
			t.Fatalf("update %d has time %d", i, u.Time)
		}
		if u.Del {
			dels++
		}
	}
	frac := float64(dels) / float64(len(updates))
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("deletion fraction %.3f far from configured 0.3", frac)
	}
}

func TestEdgeStreamWeights(t *testing.T) {
	g, err := ErdosRenyi(50, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	updates, err := EdgeStream(g, StreamConfig{Ops: 500, Weighted: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range updates {
		if u.Del {
			continue
		}
		if u.Weight < 1 || u.Weight > 100 {
			t.Fatalf("update %d has weight %d outside [1,100]", i, u.Weight)
		}
	}
}

func TestEdgeStreamValidatesConfig(t *testing.T) {
	g, err := ErdosRenyi(10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EdgeStream(g, StreamConfig{Ops: -1}); err == nil {
		t.Error("expected error for negative ops")
	}
	if _, err := EdgeStream(g, StreamConfig{Ops: 1, DeleteFrac: 1}); err == nil {
		t.Error("expected error for DeleteFrac = 1")
	}
	if _, err := EdgeStream(g, StreamConfig{Ops: 1, PreferentialFrac: 1.5}); err == nil {
		t.Error("expected error for PreferentialFrac > 1")
	}
}

func TestStreamFromRecipe(t *testing.T) {
	for _, name := range []string{"powerlaw", "usaroad", "twitter"} {
		g, updates, err := StreamFromRecipe(name, 0.05, 2000, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(updates) != 2000 {
			t.Fatalf("%s: got %d updates", name, len(updates))
		}
		replayable(t, g, updates)
		for i, u := range updates {
			if !u.Del && !g.Weighted() && u.Weight != 1 {
				t.Fatalf("%s: unweighted recipe produced weight %d at update %d", name, u.Weight, i)
			}
		}
	}
	if _, _, err := StreamFromRecipe("nope", 1, 10, 1); err == nil {
		t.Error("expected error for unknown recipe")
	}
}

// TestMirroredStreamSymmetry is the undirected-stream property test: over an
// undirected recipe, a mirrored stream emits paired (u,v)/(v,u) updates, and
// replaying it keeps the live edge multiset symmetric at every pair
// boundary — in particular the final multiset equals its own transpose.
func TestMirroredStreamSymmetry(t *testing.T) {
	for _, name := range []string{"powerlaw", "usaroad", "orkut"} {
		g, updates, err := StreamFromRecipeOpts(name, 0.05, 1500, 7, RecipeStreamOptions{Mirror: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Every non-self-loop update is immediately followed by its mirror.
		for i := 0; i < len(updates); {
			u := updates[i]
			if u.Src == u.Dst {
				i++
				continue
			}
			if i+1 >= len(updates) {
				t.Fatalf("%s: update %d (%d,%d) has no paired mirror", name, i, u.Src, u.Dst)
			}
			m := updates[i+1]
			if m.Src != u.Dst || m.Dst != u.Src || m.Del != u.Del || m.Weight != u.Weight {
				t.Fatalf("%s: update %d mirror mismatch: %+v then %+v", name, i, u, m)
			}
			i += 2
		}
		// Replay onto the edge multiset and check symmetry of the result.
		count := make(map[graph.Edge]int64)
		for _, e := range g.Edges() {
			count[e]++
		}
		for i, u := range updates {
			e := graph.Edge{Src: u.Src, Dst: u.Dst, Weight: u.Weight}
			if !g.Weighted() {
				e.Weight = 1
			}
			if u.Del {
				if count[e] <= 0 {
					t.Fatalf("%s: update %d deletes non-live edge %+v", name, i, e)
				}
				count[e]--
			} else {
				count[e]++
			}
		}
		for e, c := range count {
			rev := graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
			if count[rev] != c {
				t.Fatalf("%s: final multiset asymmetric: %+v ×%d vs reverse ×%d", name, e, c, count[rev])
			}
		}
	}
}

// TestMirrorRejectsDirected checks the option is gated to undirected
// recipes and asymmetric graphs.
func TestMirrorRejectsDirected(t *testing.T) {
	if _, _, err := StreamFromRecipeOpts("twitter", 0.05, 100, 1, RecipeStreamOptions{Mirror: true}); err == nil {
		t.Error("expected error mirroring a directed recipe")
	}
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EdgeStream(g, StreamConfig{Ops: 10, Mirror: true, Seed: 1}); err == nil {
		t.Error("expected error mirroring an asymmetric graph")
	}
}

// TestMirroredStreamDeterminism checks determinism, timestamping and op
// accounting of the mirrored generator (replay through the dynamic subsystem
// is covered by the facade view tests).
func TestMirroredStreamDeterminism(t *testing.T) {
	_, a, err := StreamFromRecipeOpts("powerlaw", 0.04, 800, 3, RecipeStreamOptions{Mirror: true})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := StreamFromRecipeOpts("powerlaw", 0.04, 800, 3, RecipeStreamOptions{Mirror: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) < 800 || len(a) > 1600 {
		t.Fatalf("800 logical ops emitted %d updates (want within [800,1600])", len(a))
	}
	for i, u := range a {
		if u.Time != int64(i) {
			t.Fatalf("update %d has time %d (want strictly increasing from 0)", i, u.Time)
		}
	}
}

// TestEdgeStreamGrowth checks the vertex-arrival knob: new endpoints appear
// densely (n, n+1, … with no gaps), every deletion still targets a live
// edge, arrivals scale with GrowFrac, and a zero knob leaves the stream
// byte-identical to the pre-growth generator.
func TestEdgeStreamGrowth(t *testing.T) {
	g, err := ErdosRenyi(300, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{Ops: 5000, DeleteFrac: 0.3, PreferentialFrac: 0.5, GrowFrac: 0.04, Seed: 21}
	updates, err := EdgeStream(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayable(t, g, updates)
	next := graph.VertexID(g.NumVertices())
	arrivals := 0
	for i, u := range updates {
		mx := u.Src
		if u.Dst > mx {
			mx = u.Dst
		}
		if mx >= next {
			if u.Del {
				t.Fatalf("update %d: deletion mentions unseen vertex %d", i, mx)
			}
			if mx != next {
				t.Fatalf("update %d: arrival skipped IDs (%d, expected %d)", i, mx, next)
			}
			if u.Src >= next && u.Dst >= next {
				t.Fatalf("update %d: arrival not anchored to an existing vertex", i)
			}
			next++
			arrivals++
		}
	}
	if arrivals == 0 {
		t.Fatal("GrowFrac produced no arrivals")
	}
	// Arrival rate ≈ GrowFrac × insert rate; allow wide slack.
	inserts := 0
	for _, u := range updates {
		if !u.Del {
			inserts++
		}
	}
	want := cfg.GrowFrac * float64(inserts)
	if float64(arrivals) < want/2 || float64(arrivals) > want*2 {
		t.Fatalf("arrivals=%d, expected about %.0f", arrivals, want)
	}

	// GrowFrac: 0 must not perturb the generator's random sequence.
	base := cfg
	base.GrowFrac = 0
	a, err := EdgeStream(g, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EdgeStream(g, StreamConfig{Ops: cfg.Ops, DeleteFrac: cfg.DeleteFrac, PreferentialFrac: cfg.PreferentialFrac, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("GrowFrac=0 changed the stream at %d", i)
		}
	}

	// Config validation.
	if _, err := EdgeStream(g, StreamConfig{Ops: 1, GrowFrac: 1.5}); err == nil {
		t.Error("expected range error for GrowFrac")
	}
	if _, err := EdgeStream(g, StreamConfig{Ops: 1, GrowFrac: 0.1, Mirror: true}); err == nil {
		t.Error("expected error for GrowFrac+Mirror")
	}
}
