package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRMATBasics(t *testing.T) {
	g, err := RMAT(10, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() != 8*1024 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 8*1024)
	}
	// RMAT with skewed quadrants must produce a skewed degree distribution:
	// max in-degree far above the average.
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxInDegree()) < 5*avg {
		t.Errorf("max in-degree %d not skewed vs avg %.1f", g.MaxInDegree(), avg)
	}
	// and a substantial fraction of zero-in-degree vertices.
	if frac := float64(g.CountZeroInDegree()) / float64(g.NumVertices()); frac < 0.2 {
		t.Errorf("zero-in-degree fraction %.2f too small for RMAT", frac)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(8, 4, 0.57, 0.19, 0.19, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(8, 4, 0.57, 0.19, 0.19, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a, b) {
		t.Error("same seed produced different RMAT graphs")
	}
	c, err := RMAT(8, 4, 0.57, 0.19, 0.19, 43)
	if err != nil {
		t.Fatal(err)
	}
	if graph.Equal(a, c) {
		t.Error("different seeds produced identical RMAT graphs")
	}
}

func TestRMATRejectsBadArgs(t *testing.T) {
	if _, err := RMAT(8, 4, 0.9, 0.9, 0.9, 1); err == nil {
		t.Error("expected error for probabilities summing over 1")
	}
	if _, err := RMAT(31, 4, 0.5, 0.2, 0.2, 1); err == nil {
		t.Error("expected error for oversized scale")
	}
}

func TestPowerLawShape(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{
		N: 20000, S: 1.0, MaxDegree: 400, ZeroInFrac: 0.14, Seed: 7,
	})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	if g.NumVertices() != 20000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	frac := float64(g.CountZeroInDegree()) / float64(g.NumVertices())
	// forced 14% plus natural Zipf zeros: must be at least the forced share.
	if frac < 0.14 {
		t.Errorf("zero-in fraction %.3f below forced 0.14", frac)
	}
	if g.MaxInDegree() > 400 {
		t.Errorf("max in-degree %d exceeds cap 400", g.MaxInDegree())
	}
	// Under the Zipf law the per-degree vertex count decays like d^-s:
	// each decade of degree must be rarer than the previous.
	hist := g.DegreeHistogramIn()
	at := func(d int) int64 {
		if d < len(hist) {
			return hist[d]
		}
		return 0
	}
	if !(at(1) > at(10) && at(10) > at(100)) {
		t.Errorf("degree counts not Zipf-decaying: c(1)=%d c(10)=%d c(100)=%d",
			at(1), at(10), at(100))
	}
}

func TestPowerLawValidation(t *testing.T) {
	bad := []PowerLawConfig{
		{N: 0, S: 1, MaxDegree: 5},
		{N: 10, S: 0, MaxDegree: 5},
		{N: 10, S: 1, MaxDegree: 0},
		{N: 10, S: 1, MaxDegree: 5, ZeroInFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := PowerLaw(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	cfg := PowerLawConfig{N: 3000, S: 1, MaxDegree: 100, Seed: 5}
	a, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a, b) {
		t.Error("same config produced different power-law graphs")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(1000, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5000 {
		t.Fatalf("edges = %d, want 5000", g.NumEdges())
	}
	// ER in-degrees are approximately Poisson(5): max should be modest.
	if g.MaxInDegree() > 40 {
		t.Errorf("max in-degree %d implausibly high for ER", g.MaxInDegree())
	}
	if _, err := ErdosRenyi(0, 5, 1); err == nil {
		t.Error("expected error for n=0")
	}
}

func TestRoadNetworkShape(t *testing.T) {
	g, err := RoadNetwork(50, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d, want 2000", g.NumVertices())
	}
	if g.MaxInDegree() > 9 {
		t.Errorf("max degree %d exceeds road cap 9", g.MaxInDegree())
	}
	if g.CountZeroInDegree() != 0 {
		t.Errorf("road network has %d isolated vertices", g.CountZeroInDegree())
	}
	// Symmetry: every edge has its reverse.
	for _, e := range g.Edges() {
		if !g.HasEdge(e.Dst, e.Src) {
			t.Fatalf("missing reverse edge of (%d,%d)", e.Src, e.Dst)
		}
	}
}

func TestRoadNetworkLocality(t *testing.T) {
	// Row-major IDs: the mean |src-dst| gap must be tiny relative to n.
	g, err := RoadNetwork(60, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sumGap float64
	for _, e := range g.Edges() {
		sumGap += math.Abs(float64(int64(e.Src) - int64(e.Dst)))
	}
	meanGap := sumGap / float64(g.NumEdges())
	if meanGap > 65 {
		t.Errorf("mean ID gap %.1f; road network should be local (≈ width)", meanGap)
	}
}

func TestUndirected(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{N: 500, S: 1, MaxDegree: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Undirected(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range u.Edges() {
		if !u.HasEdge(e.Dst, e.Src) {
			t.Fatalf("edge (%d,%d) has no reverse after Undirected", e.Src, e.Dst)
		}
	}
	if u.NumEdges() < g.NumEdges() {
		t.Error("Undirected lost edges")
	}
}

func TestRecipesBuildAll(t *testing.T) {
	for _, r := range Recipes() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			g, err := r.Build(0.05, 1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if g.NumVertices() == 0 || g.NumEdges() == 0 {
				t.Fatalf("recipe %s produced empty graph", r.Name)
			}
			if !r.Directed {
				// undirected recipes must be symmetric
				for _, e := range g.Edges()[:min(200, int(g.NumEdges()))] {
					if !g.HasEdge(e.Dst, e.Src) {
						t.Fatalf("undirected recipe %s asymmetric at (%d,%d)", r.Name, e.Src, e.Dst)
					}
				}
			}
		})
	}
}

func TestRecipeShapeParameters(t *testing.T) {
	// Twitter-like: ~14%+ zero in-degree; Friendster-like: ~48%+; RMAT: large.
	check := func(name string, minZeroFrac, maxZeroFrac float64) {
		r, err := RecipeByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := r.Build(0.2, 3)
		if err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		frac := float64(g.CountZeroInDegree()) / float64(g.NumVertices())
		if frac < minZeroFrac || frac > maxZeroFrac {
			t.Errorf("%s zero-in fraction %.2f outside [%.2f, %.2f]",
				name, frac, minZeroFrac, maxZeroFrac)
		}
	}
	check("twitter", 0.14, 0.60)
	check("friendster", 0.48, 0.85)
	check("rmat", 0.30, 0.90)
	check("usaroad", 0, 0)
}

func TestRecipeByNameUnknown(t *testing.T) {
	if _, err := RecipeByName("nope"); err == nil {
		t.Error("expected error for unknown recipe")
	}
}

// Property: generators are deterministic in their seed and always produce
// structurally valid graphs.
func TestGeneratorDeterminismQuick(t *testing.T) {
	f := func(seed int64) bool {
		a, err := ErdosRenyi(200, 600, seed)
		if err != nil {
			return false
		}
		b, err := ErdosRenyi(200, 600, seed)
		if err != nil {
			return false
		}
		return graph.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
