// Package gen generates the synthetic graphs that stand in for the paper's
// data sets. The real evaluation graphs (Twitter, Friendster, Orkut,
// LiveJournal, Yahoo_mem, USAroad) are multi-gigabyte downloads; the VEBO
// results depend only on the shape of the degree distribution (power-law
// skew, abundance of low-degree and zero-in-degree vertices, directedness),
// so each paper graph is replaced by a recipe that reproduces those shape
// parameters at laptop scale. See DESIGN.md §1.
//
// All generators are deterministic for a given seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// RMAT generates a recursive-matrix graph (Chakrabarti et al.) with 2^scale
// vertices and edgeFactor*2^scale directed edges. The probabilities a, b, c
// address the four quadrants (d = 1-a-b-c). RMAT graphs have power-law in-
// and out-degree distributions and a large fraction of isolated vertices,
// matching the paper's RMAT27 workload.
func RMAT(scale uint, edgeFactor int, a, b, c float64, seed int64) (*graph.Graph, error) {
	if a < 0 || b < 0 || c < 0 || a+b+c > 1 {
		return nil, fmt.Errorf("gen: invalid RMAT probabilities a=%v b=%v c=%v", a, b, c)
	}
	if scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d too large", scale)
	}
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := 0; i < m; i++ {
		var src, dst uint32
		for level := uint(0); level < scale; level++ {
			// Add ±10% noise per level, as is conventional, to avoid
			// exactly self-similar structure.
			an := clampProb(a * (0.9 + 0.2*rng.Float64()))
			bn := clampProb(b * (0.9 + 0.2*rng.Float64()))
			cn := clampProb(c * (0.9 + 0.2*rng.Float64()))
			r := rng.Float64() * (an + bn + cn + clampProb((1-a-b-c)*(0.9+0.2*rng.Float64())))
			switch {
			case r < an:
				// top-left: neither bit set
			case r < an+bn:
				dst |= 1 << level
			case r < an+bn+cn:
				src |= 1 << level
			default:
				src |= 1 << level
				dst |= 1 << level
			}
		}
		edges[i] = graph.Edge{Src: src, Dst: dst, Weight: 1}
	}
	return graph.FromEdges(n, edges, false)
}

// zipfDegrees samples in-degrees from the paper's truncated Zipf law:
// P(deg = k-1) = k^-s / H_{N,s}, k = 1..N where N = maxDegree+1.
type zipfDegrees struct {
	cdf []float64 // cdf[i] = P(deg <= i-1); len = N
}

func newZipfDegrees(s float64, maxDegree int) *zipfDegrees {
	n := maxDegree + 1
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += math.Pow(float64(k), -s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfDegrees{cdf: cdf}
}

// sample returns a degree in [0, maxDegree].
func (z *zipfDegrees) sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// PowerLawConfig parameterizes a configuration-model graph whose in-degree
// distribution follows the truncated Zipf law of the paper's Section III-A:
// P(deg = k-1) ∝ k^-s for k = 1..N.
type PowerLawConfig struct {
	N          int     // number of vertices
	S          float64 // Zipf exponent s (> 0); paper's α = 1 + 1/s
	MaxDegree  int     // highest permitted in-degree (paper's N-1)
	ZeroInFrac float64 // additional fraction of vertices forced to in-degree 0
	Weighted   bool    // attach uniform random weights in [1,100]
	// SourceSkew, when positive, draws edge sources from a Zipf-rank
	// distribution with this exponent instead of uniformly, giving the
	// heavy-tailed out-degree distribution of real social graphs (a few
	// prolific sources supply many edges). Zero selects uniform sources
	// (approximately Poisson out-degrees).
	SourceSkew float64
	// IDCorrelation in [0,1] controls how strongly vertex degree correlates
	// with vertex ID: 0 shuffles identities uniformly; 1 numbers vertices in
	// strictly decreasing degree order. Real crawled graphs sit in between
	// (popular vertices are discovered early), which is what makes the
	// paper's Algorithm 1 chunks vertex-imbalanced in the first place.
	IDCorrelation float64
	Seed          int64
}

// correlatedPerm returns a permutation assigning new IDs so that
// higher-degree vertices tend toward lower IDs with strength c in [0,1].
func correlatedPerm(degrees []int, c float64, rng *rand.Rand) []graph.VertexID {
	n := len(degrees)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if c <= 0 {
		perm := make([]graph.VertexID, n)
		for i, p := range rng.Perm(n) {
			perm[i] = graph.VertexID(p)
		}
		return perm
	}
	// rank vertices by decreasing degree (stable), then blend rank with
	// uniform noise
	sort.SliceStable(idx, func(a, b int) bool { return degrees[idx[a]] > degrees[idx[b]] })
	rankOf := make([]float64, n)
	for r, v := range idx {
		rankOf[v] = float64(r) / float64(n)
	}
	key := make([]float64, n)
	for v := 0; v < n; v++ {
		key[v] = c*rankOf[v] + (1-c)*rng.Float64()
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return key[order[a]] < key[order[b]] })
	perm := make([]graph.VertexID, n)
	for newID, v := range order {
		perm[v] = graph.VertexID(newID)
	}
	return perm
}

// PowerLaw generates a directed graph by sampling each vertex's in-degree
// from a Zipf distribution and then drawing that many sources uniformly at
// random. Out-degrees are consequently approximately Poisson on top of the
// skewed in-degrees, giving a natural population of zero-out-degree vertices
// as in the paper's Table I.
func PowerLaw(cfg PowerLawConfig) (*graph.Graph, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("gen: power-law N must be positive, got %d", cfg.N)
	}
	if cfg.S <= 0 {
		return nil, fmt.Errorf("gen: Zipf exponent must be positive, got %v", cfg.S)
	}
	if cfg.MaxDegree < 1 {
		return nil, fmt.Errorf("gen: MaxDegree must be >= 1, got %d", cfg.MaxDegree)
	}
	if cfg.ZeroInFrac < 0 || cfg.ZeroInFrac >= 1 {
		return nil, fmt.Errorf("gen: ZeroInFrac out of range: %v", cfg.ZeroInFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The paper models in-degree as P(deg = k-1) = k^-s / H_{N,s} for
	// k = 1..N (Section III-A): the most frequent in-degree is 0 and the
	// least frequent is N-1. Sample it exactly by inverse CDF.
	zipf := newZipfDegrees(cfg.S, cfg.MaxDegree)
	n := cfg.N
	forcedZero := int(cfg.ZeroInFrac * float64(n))
	degrees := make([]int, n)
	var m int64
	for v := 0; v < n; v++ {
		if v < forcedZero {
			continue // forced zero in-degree
		}
		d := zipf.sample(rng)
		degrees[v] = d
		m += int64(d)
	}
	var srcSampler *zipfDegrees
	if cfg.SourceSkew > 0 {
		srcSampler = newZipfDegrees(cfg.SourceSkew, n-1)
	}
	pickSrc := func() graph.VertexID {
		if srcSampler == nil {
			return graph.VertexID(rng.Intn(n))
		}
		return graph.VertexID(srcSampler.sample(rng))
	}
	edges := make([]graph.Edge, 0, m)
	for v := 0; v < n; v++ {
		for i := 0; i < degrees[v]; i++ {
			w := int32(1)
			if cfg.Weighted {
				w = int32(rng.Intn(100) + 1)
			}
			edges = append(edges, graph.Edge{
				Src:    pickSrc(),
				Dst:    graph.VertexID(v),
				Weight: w,
			})
		}
	}
	// Renumber vertices: either a uniform shuffle (IDCorrelation 0) or a
	// crawl-like numbering where popular vertices receive early IDs.
	perm := correlatedPerm(degrees, cfg.IDCorrelation, rng)
	for i := range edges {
		edges[i].Src = perm[edges[i].Src]
		edges[i].Dst = perm[edges[i].Dst]
	}
	return graph.FromEdges(n, edges, cfg.Weighted)
}

// UndirectedPowerLaw generates a symmetric graph whose degree sequence
// follows the truncated Zipf law exactly, using a configuration model:
// each vertex receives deg(v) half-edges, the half-edges are shuffled and
// matched pairwise, and every matched pair becomes two directed edges (one
// per direction). Unlike symmetrizing a directed configuration model, this
// preserves the abundance of degree-1 vertices that VEBO's Theorem 1 relies
// on. Self-pairs are dropped.
func UndirectedPowerLaw(cfg PowerLawConfig) (*graph.Graph, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("gen: power-law N must be positive, got %d", cfg.N)
	}
	if cfg.S <= 0 {
		return nil, fmt.Errorf("gen: Zipf exponent must be positive, got %v", cfg.S)
	}
	if cfg.MaxDegree < 1 {
		return nil, fmt.Errorf("gen: MaxDegree must be >= 1, got %d", cfg.MaxDegree)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := newZipfDegrees(cfg.S, cfg.MaxDegree)
	n := cfg.N
	forcedZero := int(cfg.ZeroInFrac * float64(n))
	degrees := make([]int, n)
	var stubs []graph.VertexID
	for v := 0; v < n; v++ {
		if v < forcedZero {
			continue
		}
		d := zipf.sample(rng)
		degrees[v] = d
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.VertexID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	edges := make([]graph.Edge, 0, len(stubs))
	for i := 0; i+1 < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		if a == b {
			continue // drop self-pairs
		}
		w := int32(1)
		if cfg.Weighted {
			w = int32(rng.Intn(100) + 1)
		}
		edges = append(edges, graph.Edge{Src: a, Dst: b, Weight: w},
			graph.Edge{Src: b, Dst: a, Weight: w})
	}
	// renumber vertices with the configured degree-ID correlation
	perm := correlatedPerm(degrees, cfg.IDCorrelation, rng)
	for i := range edges {
		edges[i].Src = perm[edges[i].Src]
		edges[i].Dst = perm[edges[i].Dst]
	}
	return graph.FromEdges(n, edges, cfg.Weighted)
}

// ErdosRenyi generates a directed G(n, m) graph with m edges drawn uniformly
// with replacement.
func ErdosRenyi(n int, m int64, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: n must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: 1,
		}
	}
	return graph.FromEdges(n, edges, false)
}

// ErdosRenyiWeighted is ErdosRenyi with uniform random weights in [1,10];
// the narrow weight range makes parallel edges with distinct weights common,
// exercising weight-aware deletion semantics.
func ErdosRenyiWeighted(n int, m int64, seed int64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: n must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: int32(rng.Intn(10) + 1),
		}
	}
	return graph.FromEdges(n, edges, true)
}

// RoadNetwork generates a road-network-like graph: a width×height grid in
// row-major vertex order where each cell connects to its 4 axial neighbours,
// plus a sprinkling of short diagonal "shortcut" roads. Edges are symmetric
// (both directions present). The maximum degree is small and near-constant
// (≤ 9, like the paper's USAroad) and consecutive vertex IDs are spatially
// adjacent, giving the strong locality that VEBO is expected to destroy
// (Section V-B).
func RoadNetwork(width, height int, seed int64) (*graph.Graph, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("gen: invalid grid %dx%d", width, height)
	}
	n := width * height
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	id := func(x, y int) graph.VertexID { return graph.VertexID(y*width + x) }
	addBoth := func(a, b graph.VertexID, w int32) {
		edges = append(edges, graph.Edge{Src: a, Dst: b, Weight: w}, graph.Edge{Src: b, Dst: a, Weight: w})
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			w := int32(rng.Intn(20) + 1) // road length
			if x+1 < width {
				addBoth(id(x, y), id(x+1, y), w)
			}
			if y+1 < height {
				addBoth(id(x, y), id(x, y+1), w)
			}
			// ~12% of cells get one diagonal shortcut, pushing max degree
			// toward (but not past) the USAroad-like cap.
			if x+1 < width && y+1 < height && rng.Float64() < 0.12 {
				addBoth(id(x, y), id(x+1, y+1), w+1)
			}
		}
	}
	return graph.FromEdges(n, edges, true)
}

// PadIsolated embeds g into a vertex set factor times larger and shuffles
// vertex identities; the added vertices are isolated. RMAT graphs owe their
// large isolated-vertex fraction (69% for the paper's RMAT27) to a sparse
// ID space, which this reproduces at small scale.
func PadIsolated(g *graph.Graph, factor float64, seed int64) (*graph.Graph, error) {
	if factor < 1 {
		return nil, fmt.Errorf("gen: pad factor must be >= 1, got %v", factor)
	}
	n := int(float64(g.NumVertices()) * factor)
	rng := rand.New(rand.NewSource(seed))
	perm := make([]graph.VertexID, n)
	for i, p := range rng.Perm(n) {
		perm[i] = graph.VertexID(p)
	}
	edges := g.Edges()
	for i := range edges {
		edges[i].Src = perm[edges[i].Src]
		edges[i].Dst = perm[edges[i].Dst]
	}
	return graph.FromEdges(n, edges, g.Weighted())
}

// Undirected symmetrizes g: for every edge (u,v) the reverse (v,u) is added
// unless already present. Used for the undirected recipes (Orkut, Yahoo_mem,
// USAroad, PowerLaw in Table I).
func Undirected(g *graph.Graph) (*graph.Graph, error) {
	edges := g.Edges()
	out := make([]graph.Edge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e)
		if !g.HasEdge(e.Dst, e.Src) {
			out = append(out, graph.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
		}
	}
	return graph.FromEdges(g.NumVertices(), out, g.Weighted())
}
