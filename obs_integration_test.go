package vebo

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
)

// scrape fetches one endpoint off the observability handler.
func scrape(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts an unlabeled sample value from Prometheus text.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape:\n%s", name, text)
	return 0
}

// TestObsHandlerLiveScrape is the serve-mode integration test: a Dynamic
// under concurrent ingest and queries exposes /metrics, and successive
// scrapes show the epoch counter and per-algorithm latency series advancing.
func TestObsHandlerLiveScrape(t *testing.T) {
	g, updates, err := gen.StreamFromRecipe("powerlaw", 0.05, 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(g, DynamicOptions{Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.ObsHandler())
	defer srv.Close()

	first := scrape(t, srv.URL, "/metrics")
	if ct := "text/plain"; !strings.Contains(first, "vebo_epoch") {
		t.Fatalf("first scrape (%s) lacks vebo_epoch:\n%s", ct, first)
	}
	epoch0 := metricValue(t, first, "vebo_epoch")

	// Ingest on one goroutine, query on another, scrape from the test body —
	// the topology `vebo serve` runs.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		const batch = 128
		for lo := 0; lo < len(updates); lo += batch {
			hi := min(lo+batch, len(updates))
			if _, err := d.ApplyBatch(updates[lo:hi]); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := d.View().BFS(GraphGrind, 0); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	second := scrape(t, srv.URL, "/metrics")
	if epoch1 := metricValue(t, second, "vebo_epoch"); epoch1 <= epoch0 {
		t.Fatalf("vebo_epoch did not advance: %d -> %d", epoch0, epoch1)
	}
	if got := metricValue(t, second, "vebo_batches_total"); got != 8 {
		t.Fatalf("vebo_batches_total = %d, want 8", got)
	}
	// The per-algorithm latency summary for the queried (alg, sys) pair must
	// be populated with all three quantiles plus sum/count.
	for _, want := range []string{
		`vebo_query_ns{alg="bfs",sys="graphgrind",quantile="0.5"}`,
		`vebo_query_ns{alg="bfs",sys="graphgrind",quantile="0.99"}`,
		`vebo_query_ns_count{alg="bfs",sys="graphgrind"} 3`,
		`vebo_queries_total{alg="bfs",sys="graphgrind"} 3`,
	} {
		if !strings.Contains(second, want) {
			t.Fatalf("scrape missing %q:\n%s", want, second)
		}
	}

	// /metrics.json round-trips, and /trace serves the epoch event ring.
	var series []struct {
		Name  string `json:"name"`
		Value int64  `json:"value"`
	}
	if err := json.Unmarshal([]byte(scrape(t, srv.URL, "/metrics.json")), &series); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if len(series) == 0 {
		t.Fatalf("/metrics.json empty")
	}
	var snap struct {
		Emitted uint64            `json:"emitted"`
		Events  []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(scrape(t, srv.URL, "/trace")), &snap); err != nil {
		t.Fatalf("/trace invalid: %v", err)
	}
	if snap.Emitted == 0 || len(snap.Events) == 0 {
		t.Fatalf("/trace has no events: %+v", snap)
	}
}
