package vebo

import (
	"bytes"
	"testing"
)

func TestFacadePipeline(t *testing.T) {
	g, err := Generate("twitter", 0.03, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reorder(g, 48)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeImbalance() > 1 || res.VertexImbalance() > 1 {
		t.Fatalf("imbalance Δ=%d δ=%d", res.EdgeImbalance(), res.VertexImbalance())
	}
	rg, err := res.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	opts := EngineOptions{Sockets: 2, ThreadsPerSocket: 2, Partitions: 48, Bounds: res.Boundaries()}
	for _, sys := range []System{Ligra, Polymer, GraphGrind} {
		o := opts
		if sys == Polymer {
			o.Bounds = nil // Polymer needs sockets+1 bounds; use Algorithm 1
		}
		eng, err := NewEngine(sys, rg, o)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		ranks := PageRank(eng, 3)
		if len(ranks) != rg.NumVertices() {
			t.Fatalf("%v: rank length %d", sys, len(ranks))
		}
		root := res.Perm()[0]
		if p := BFS(eng, root); p[root] != int32(root) {
			t.Fatalf("%v: BFS root parent %d", sys, p[root])
		}
	}
}

func TestFacadeIO(t *testing.T) {
	g, err := FromEdges(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := LoadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 3 || h.NumEdges() != 2 {
		t.Fatalf("round trip: %d vertices %d edges", h.NumVertices(), h.NumEdges())
	}
}

func TestFacadeOrderings(t *testing.T) {
	g, err := Generate("usaroad", 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, perm := range map[string][]VertexID{
		"rcm":    OrderRCM(g),
		"gorder": OrderGorder(g, 3),
		"random": OrderRandom(g, 4),
		"degree": OrderDegreeSort(g),
	} {
		seen := make([]bool, g.NumVertices())
		for _, p := range perm {
			if int(p) >= g.NumVertices() || seen[p] {
				t.Fatalf("%s: invalid permutation", name)
			}
			seen[p] = true
		}
	}
}

func TestSystemString(t *testing.T) {
	if Ligra.String() != "ligra" || Polymer.String() != "polymer" || GraphGrind.String() != "graphgrind" {
		t.Error("System labels wrong")
	}
	if System(42).String() == "" {
		t.Error("unknown system should stringify")
	}
	if _, err := NewEngine(System(42), nil, EngineOptions{}); err == nil {
		t.Error("expected error for unknown system")
	}
}
